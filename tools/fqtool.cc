/**
 * @file
 * fqtool — command-line front end for the FrozenQubits pipeline.
 *
 * Subcommands:
 *   generate --class ba1|ba2|ba3|3reg|sk --n <N> [--seed S]
 *       Emit a random benchmark instance in the text model format.
 *   analyze [--file F]
 *       Read a model (file or stdin) and print graph/hotspot statistics.
 *   run [--file F] --device <name> [--freeze M] [--seed S] [--threads T]
 *       Read a model, run baseline-vs-FrozenQubits, print the report.
 *   plan [--file F] --device <name> [--freeze M] [--max-depth D]
 *        [--max-circuits B] [--partition W]
 *       Build the SolveTree, rank its leaves with the classical scheduler
 *       and print the tree plus the budget trace (cut line included) —
 *       without executing any circuit. The leaf table's tier column shows
 *       how each leaf's fused program would materialize (hit / bind /
 *       compile — the parametric-template tiers; --no-param-templates
 *       forces the legacy compile-only path).
 *   solve [--file F] --device <name> [--freeze M] [--shots K] [--seed S]
 *         [--threads T] [--max-depth D] [--max-circuits B]
 *         [--partition W] [--rerank N|off] [--deadline D]
 *         [--checkpoint FILE] [--checkpoint-every N] [--resume FILE]
 *         [--suspend-after K] [--stats]
 *       Sampled end-to-end solve over the SolveTree: recursive freezing
 *       (--max-depth), budgeted best-first partial execution
 *       (--max-circuits), hybrid bisection (--partition), adaptive budget
 *       re-ranking every N folded leaves (--rerank, plus a plan-vs-
 *       adaptive schedule trace). --stats prints template-cache counters.
 *       Durable solves: --checkpoint writes a crash-safe snapshot every
 *       checkpoint boundary (--checkpoint-every folded leaves, default 1);
 *       --resume restarts a killed/suspended solve from that snapshot
 *       (same model/options; the result is bit-identical to the
 *       uninterrupted run); --suspend-after K stops after K folded leaves
 *       with a degraded anytime result; --deadline D admits only what
 *       fits a 2^width cost budget of D units.
 *   serve-batch --trace FILE [--device NAME] [--threads T] [--wave-size W]
 *               [--queue-depth D] [--shots K] [--serial] [--stats]
 *       Replay a multi-request trace through a SolveService sharing ONE
 *       engine: requests are submitted concurrently and their leaves ride
 *       shared executor waves (per-request results bit-identical to solo
 *       solves; --queue-depth bounds admission). One request per line:
 *         <model-file> [freeze=M] [shots=K] [seed=S] [device=NAME]
 *                      [max-depth=D] [max-circuits=B] [partition=W]
 *                      [wave-share=C] [rerank=N] [deadline=D]
 *                      [checkpoint=N] [migrate=K]
 *       '#' starts a comment. deadline=D rejects requests whose cost (or
 *       projected backlog) exceeds D units; migrate=K suspends a request
 *       at its first checkpoint boundary past K folded leaves and resumes
 *       it via submit_resume after the first drain — exercising live
 *       request migration. --serial replays the same trace one solve
 *       at a time on the same engine (the A/B throughput baseline).
 *   worker --listen ADDR [--threads T]
 *       Distributed leaf-execution worker (net/worker.h): serves the
 *       framed wire protocol on ADDR (unix:/path.sock or host:port),
 *       plans nothing, executes leaves against its own TemplateCache
 *       until killed. Pair with --workers on solve / serve-batch.
 *   devices
 *       List the device catalog.
 *
 * Distributed execution: solve and serve-batch accept
 * --workers a,b,c (comma-separated worker addresses). Leaves are then
 * split across the local executor and the workers by cost-weighted
 * assignment, with hedged local re-dispatch when a worker dies —
 * results stay bit-identical to a local-only run (the determinism
 * contract; see README "Distributed execution"). The serve-batch trace
 * accepts workers=0 to pin one request local.
 *
 * run and solve execute on the ExecutionEngine: sub-problem circuits are
 * batched over a thread pool (--threads, default all cores; results are
 * identical for any thread count) and each invocation ends with a
 * wall-clock summary line.
 *
 * Examples:
 *   fqtool generate --class ba1 --n 16 > problem.ising
 *   fqtool run --file problem.ising --device ibm-montreal --freeze 2
 *   fqtool plan --file problem.ising --freeze 3 --max-circuits 2
 *   fqtool solve --file problem.ising --freeze 2 --max-depth 2 --stats
 */
#include <array>
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/table.h"
#include "device/catalog.h"
#include "engine/engine.h"
#include "engine/solve_service.h"
#include "frozenqubits/budget.h"
#include "frozenqubits/driver.h"
#include "frozenqubits/hotspot.h"
#include "graph/generators.h"
#include "graph/powerlaw.h"
#include "ising/io.h"
#include "ising/maxcut.h"
#include "net/worker.h"
#include "net/worker_pool.h"

namespace {

using namespace fq;

/** Parsed --key value options. */
using Options = std::map<std::string, std::string>;

/** True for valueless switches (--flag rather than --key value). */
bool
is_flag(const std::string& key)
{
    return key == "no-fusion" || key == "no-param-templates" ||
           key == "stats" || key == "prune-dominated" ||
           key == "serial" || key == "no-sparsify";
}

Options
parse_options(int argc, char** argv, int first)
{
    Options opts;
    for (int a = first; a < argc; ++a) {
        std::string key = argv[a];
        FQ_REQUIRE(key.rfind("--", 0) == 0, "expected --option, got " + key);
        key = key.substr(2);
        if (is_flag(key)) {
            opts[key] = "1";
            continue;
        }
        FQ_REQUIRE(a + 1 < argc, "missing value for --" + key);
        opts[key] = argv[++a];
    }
    return opts;
}

std::string
option(const Options& opts, const std::string& key,
       const std::string& fallback)
{
    const auto it = opts.find(key);
    return it == opts.end() ? fallback : it->second;
}

int
int_option(const Options& opts, const std::string& key, int fallback)
{
    const auto it = opts.find(key);
    if (it == opts.end())
        return fallback;
    try {
        std::size_t consumed = 0;
        const int value = std::stoi(it->second, &consumed);
        if (consumed == it->second.size())
            return value;
    } catch (const std::logic_error&) {
    }
    throw Error("--" + key + " expects an integer, got " + it->second);
}

/** 64-bit variant for options that take circuit budgets (saturating
 *  budget arithmetic upstream supports values up to LLONG_MAX). */
long long
long_option(const Options& opts, const std::string& key, long long fallback)
{
    const auto it = opts.find(key);
    if (it == opts.end())
        return fallback;
    try {
        std::size_t consumed = 0;
        const long long value = std::stoll(it->second, &consumed);
        if (consumed == it->second.size())
            return value;
    } catch (const std::logic_error&) {
    }
    throw Error("--" + key + " expects an integer, got " + it->second);
}

/** Fractional variant (keep fractions and the like). */
double
double_option(const Options& opts, const std::string& key, double fallback)
{
    const auto it = opts.find(key);
    if (it == opts.end())
        return fallback;
    try {
        std::size_t consumed = 0;
        const double value = std::stod(it->second, &consumed);
        if (consumed == it->second.size())
            return value;
    } catch (const std::logic_error&) {
    }
    throw Error("--" + key + " expects a number, got " + it->second);
}

ising::IsingModel
load_model(const Options& opts)
{
    const auto file = option(opts, "file", "");
    if (file.empty())
        return ising::read_model(std::cin);
    std::ifstream in(file);
    FQ_REQUIRE(in.good(), "cannot open " + file);
    return ising::read_model(in);
}

int
cmd_generate(const Options& opts)
{
    const auto klass = option(opts, "class", "ba1");
    const int n = int_option(opts, "n", 16);
    Rng rng(static_cast<std::uint64_t>(int_option(opts, "seed", 1)));

    graph::Graph g;
    if (klass == "ba1")
        g = graph::barabasi_albert(n, 1, rng);
    else if (klass == "ba2")
        g = graph::barabasi_albert(n, 2, rng);
    else if (klass == "ba3")
        g = graph::barabasi_albert(n, 3, rng);
    else if (klass == "3reg")
        g = graph::random_regular(n, 3, rng);
    else if (klass == "sk")
        g = graph::complete(n);
    else
        FQ_REQUIRE(false, "unknown class: " + klass);
    graph::assign_random_pm1_weights(g, rng);

    std::cout << "# " << klass << " benchmark, N=" << n << "\n";
    ising::write_model(std::cout, ising::maxcut_hamiltonian(g));
    return 0;
}

int
cmd_analyze(const Options& opts)
{
    const auto model = load_model(opts);
    const auto g = model.to_graph();
    const auto stats = graph::degree_stats(g, 5);

    Table t("instance analysis");
    t.set_header({"metric", "value"});
    t.add_row({"spins", Table::num(model.num_spins())});
    t.add_row({"quadratic terms", Table::num(model.num_quadratic_terms())});
    t.add_row({"flip-symmetric (h==0)",
               model.has_zero_linear_terms() ? "yes" : "no"});
    t.add_row({"average degree", Table::num(stats.average_degree, 2)});
    t.add_row({"max degree", Table::num(stats.max_degree)});
    t.add_row({"top-5 hotspot ratio", Table::factor(stats.hotspot_ratio)});
    t.print(std::cout);

    Rng rng(1);
    Table hotspots("hotspots (iterative max-degree order)");
    hotspots.set_header({"rank", "spin", "edges dropped cumulatively"});
    const auto picks = frozenqubits::select_hotspots(
        model, std::min(5, model.num_spins() - 1),
        frozenqubits::HotspotPolicy::MaxDegree, rng);
    for (std::size_t k = 0; k < picks.size(); ++k) {
        const std::vector<int> prefix(picks.begin(),
                                      picks.begin() + k + 1);
        hotspots.add_row({Table::num(k + 1), "z" + Table::num(picks[k]),
                          Table::num(frozenqubits::dropped_edge_count(
                              model, prefix))});
    }
    hotspots.print(std::cout);
    return 0;
}

/**
 * --freeze N or --freeze auto (Section 3.4 recommendation). With auto and
 * --max-depth > 1 the whole-tree recommendation picks the deepest depth
 * whose leaf count fits the budget (config.max_depth is updated to it).
 * Call after apply_tree_options so the depth cap is in effect.
 */
void
resolve_freeze(const Options& opts, const ising::IsingModel& model,
               frozenqubits::DriverConfig& config)
{
    if (option(opts, "freeze", "1") != "auto") {
        config.num_freeze = int_option(opts, "freeze", 1);
        return;
    }
    frozenqubits::FreezeBudget budget;
    budget.max_circuits = long_option(opts, "budget", 4);
    const auto rec = frozenqubits::recommend_tree_freeze(
        model, budget, std::max(1, config.max_depth));
    std::cout << "auto freeze: m=" << rec.num_freeze;
    if (config.max_depth > 1)
        std::cout << ", depth=" << rec.depth << " ("
                  << rec.leaf_circuits << " leaf circuits)";
    for (const auto& step : rec.base.steps)
        std::cout << "  [z" << step.spin << " drops "
                  << step.edges_dropped << " edges]";
    std::cout << "\n";
    config.num_freeze = std::max(1, rec.num_freeze);
    config.max_depth = rec.depth;
}

/** Engine wall-clock summary: printed after every run/solve. */
void
print_wall_clock(const engine::ExecutionEngine& eng)
{
    const auto& d = eng.last_diagnostics();
    std::cout << "wall-clock: " << Table::num(d.wall_ms, 1) << " ms | "
              << d.threads << " thread" << (d.threads == 1 ? "" : "s")
              << " | " << d.tasks_executed << "/" << d.num_subproblems
              << " sub-circuits executed (" << d.mirrors_inferred
              << " mirrored, " << d.template_edits << " template edits"
              << (d.template_cache_hit ? ", template cached" : "")
              << (d.fused_simulation ? ", fused sim" : "") << ")\n";
    if (d.leaves_scalar_backend > 0 || d.leaves_simd_backend > 0)
        std::cout << "backends: " << d.leaves_scalar_backend
                  << " scalar / " << d.leaves_simd_backend
                  << " simd leaves (vector isa: "
                  << sim::BackendRegistry::vector_isa() << ")\n";
    if (d.leaves_tier_hit > 0 || d.leaves_tier_bind > 0 ||
        d.leaves_tier_compile > 0)
        std::cout << "template tiers: " << d.leaves_tier_hit << " hit / "
                  << d.leaves_tier_bind << " bind / "
                  << d.leaves_tier_compile << " compile leaves\n";
    if (d.leaves_beyond_budget > 0 || d.leaves_pruned > 0 ||
        d.tree_depth > 1) {
        std::cout << "solve tree: depth " << d.tree_depth << ", "
                  << d.tree_nodes << " nodes, " << d.leaves_total
                  << " leaves (" << d.tasks_executed << " executed, "
                  << d.leaves_beyond_budget << " beyond budget, "
                  << d.leaves_pruned << " dominated)"
                  << (d.scheduler_scored ? ", SA-ranked" : "") << "\n";
    }
    if (d.reranks > 0) {
        std::cout << "adaptive re-rank: " << d.reranks << " re-rank"
                  << (d.reranks == 1 ? "" : "s") << " over " << d.epochs
                  << " epoch" << (d.epochs == 1 ? "" : "s") << " ("
                  << d.rerank_promoted << " promoted, "
                  << d.rerank_demoted << " demoted, " << d.rerank_pruned
                  << " pruned stale)\n";
    }
}

/** SolveTree controls shared by plan and solve. */
void
apply_tree_options(const Options& opts, frozenqubits::DriverConfig& config)
{
    config.max_depth = int_option(opts, "max-depth", 1);
    config.max_circuits = long_option(opts, "max-circuits", 0);
    config.partition_width = int_option(opts, "partition", 0);
    config.prune_dominated = opts.find("prune-dominated") != opts.end();
    // --no-param-templates: resolve templates through the legacy
    // structure-keyed tier only (the A/B escape hatch mirroring
    // --no-fusion). Results are bit-identical either way; only plan
    // latency and cache residency change.
    config.parametric_templates =
        opts.find("no-param-templates") == opts.end();
    // --rerank off (default) keeps the plan-time ranking final;
    // --rerank N re-ranks the un-dispatched tail every N folded leaves.
    const auto rerank = option(opts, "rerank", "off");
    config.rerank_interval =
        rerank == "off" ? 0 : long_option(opts, "rerank", 0);
    FQ_REQUIRE(rerank == "off" || config.rerank_interval >= 1,
               "--rerank expects a positive interval or 'off'");
    FQ_REQUIRE(sim::parse_backend_selection(
                   option(opts, "backend", "auto"), &config.backend),
               "--backend expects auto, scalar or simd");
    // --sparsify F: Red-QAOA edge sparsification — tune each leaf's
    // angles on a proxy keeping fraction F of its couplings (spanning
    // structure always retained); sampling and energies use the full
    // model. --no-sparsify forces it off, bit-identical to omitting
    // --sparsify entirely (the escape hatch).
    config.sparsify_keep = double_option(opts, "sparsify", 0.0);
    FQ_REQUIRE(config.sparsify_keep >= 0.0 && config.sparsify_keep < 1.0,
               "--sparsify expects a keep fraction in [0, 1)");
    if (opts.find("no-sparsify") != opts.end())
        config.sparsify_keep = 0.0;
}

/** Recursive tree printer: one line per node, indented by depth. */
void
print_tree_node(const engine::SolveTree& tree, int ni, int indent)
{
    const auto& node = tree.nodes[static_cast<std::size_t>(ni)];
    // Name comes from the kind-metadata table (engine/expander.h), so a
    // new expander prints correctly here without a new branch; only the
    // kind-specific annotations below need one.
    std::cout << std::string(static_cast<std::size_t>(indent) * 2, ' ')
              << "node " << node.index << " ["
              << engine::node_kind_info(node.kind).name << "] "
              << node.sub.model.num_spins() << " spins";
    if (node.kind == engine::NodeKind::Freeze) {
        std::cout << ", freezes {";
        for (std::size_t h = 0; h < node.plan.hotspots.size(); ++h)
            std::cout << (h ? "," : "") << "z"
                      << node.sub.original_of[static_cast<std::size_t>(
                             node.plan.hotspots[h])];
        std::cout << "} -> " << node.children.size() << " children";
    } else if (node.kind == engine::NodeKind::Partition) {
        std::cout << ", cut " << node.cut_edges << " edges (|J| "
                  << Table::num(node.cut_weight, 2) << ") -> "
                  << node.children.size() << " fragments";
    } else if (node.kind == engine::NodeKind::Sparsify) {
        std::cout << ", pruned " << node.cut_edges
                  << " proxy edges (|J| " << Table::num(node.cut_weight, 2)
                  << ") -> optimizer proxy";
    } else if (node.mirror_of >= 0) {
        std::cout << ", mirror of leaf " << node.mirror_of;
    } else {
        std::cout << ", leaf " << node.leaf_id;
    }
    std::cout << "\n";
    for (int child : node.children)
        print_tree_node(tree, child, indent + 1);
}

int
cmd_plan(const Options& opts)
{
    const auto model = load_model(opts);
    const auto dev = device::make_device(
        option(opts, "device", "ibm-montreal"));
    frozenqubits::DriverConfig config;
    config.seed = static_cast<std::uint64_t>(int_option(opts, "seed", 7));
    apply_tree_options(opts, config);
    resolve_freeze(opts, model, config);

    engine::TemplateCache cache;
    Rng rng(config.seed);
    const auto tree =
        engine::build_solve_tree(model, dev, config, cache, rng);
    const auto schedule =
        engine::make_schedule(model, tree, config, /*force_scoring=*/true);

    std::cout << "solve tree (depth " << config.max_depth << ", "
              << tree.nodes.size() << " nodes, "
              << tree.num_executable_leaves() << " executable leaves, "
              << tree.num_leaf_nodes() - tree.num_executable_leaves()
              << " mirrors):\n";
    print_tree_node(tree, 0, 0);

    std::cout << "\nclassical presolve: cost "
              << Table::num(schedule.presolve_cost, 3) << "\n";
    Table t("leaf schedule (best-first; SA score ranks, ties by leaf id)");
    const std::vector<std::string> header = {
        "rank", "leaf", "node", "arm",  "spins", "frozen",
        "SA score", "bound", "backend", "tier", "status"};
    t.set_header(header);
    int rank = 0;
    const auto add_leaf_row = [&](int leaf_id, const std::string& status) {
        const auto& leaf =
            tree.leaves[static_cast<std::size_t>(leaf_id)];
        const auto& node =
            tree.nodes[static_cast<std::size_t>(leaf.node)];
        const auto& score =
            schedule.scores[static_cast<std::size_t>(leaf_id)];
        // Arm glyph straight from the kind-metadata table — new node
        // kinds appear here with zero printer changes.
        const auto& arm =
            engine::node_kind_info(engine::leaf_arm_kind(tree, leaf_id));
        t.add_row({Table::num(++rank), Table::num(leaf_id),
                   Table::num(leaf.node), arm.glyph,
                   Table::num(node.sub.model.num_spins()),
                   Table::num(static_cast<int>(node.sub.frozen.size())),
                   Table::num(score.score, 3),
                   leaf.needs_repair ? "n/a" : Table::num(score.bound, 3),
                   leaf.fuse ? sim::backend_kind_name(leaf.backend)
                             : "naive",
                   engine::template_tier_name(leaf.tier), status});
    };
    for (int leaf_id : schedule.executed)
        add_leaf_row(leaf_id, "execute");
    if (!schedule.beyond_budget.empty()) {
        // Generated from the header so a grown vocabulary (extra columns)
        // can never shear the cut line out of alignment again.
        std::vector<std::string> cut(header.size() - 1, "----");
        cut.push_back("budget cut (max-circuits=" +
                      Table::num(config.max_circuits) + ")");
        t.add_row(cut);
        for (int leaf_id : schedule.beyond_budget)
            add_leaf_row(leaf_id, "skip: beyond budget");
    }
    for (int leaf_id : schedule.pruned)
        add_leaf_row(leaf_id, "skip: dominated");
    t.print(std::cout);

    std::cout << "budget trace: " << schedule.executed.size()
              << " of " << tree.num_executable_leaves()
              << " leaves scheduled";
    if (config.max_circuits > 0)
        std::cout << " (max-circuits " << config.max_circuits << ")";
    std::cout << "\n";
    return 0;
}

/** Per-reduction-arm counter report (--stats): one row per node kind
 *  that planned any work, keyed by the metadata table's diagnostics key
 *  — so a new expander shows up here without printer changes. */
void
print_kind_stats(
    const std::array<int, engine::kNumNodeKinds>& executed,
    const std::array<int, engine::kNumNodeKinds>& pruned,
    const std::array<long long, engine::kNumNodeKinds>& units)
{
    Table t("reduction arms");
    t.set_header({"arm", "leaves executed", "leaves pruned",
                  "budget units"});
    for (const auto& info : engine::node_kind_table()) {
        const auto k = engine::node_kind_index(info.kind);
        if (executed[k] == 0 && pruned[k] == 0 && units[k] == 0)
            continue;
        t.add_row({info.diagnostics_key, Table::num(executed[k]),
                   Table::num(pruned[k]), Table::num(units[k])});
    }
    t.print(std::cout);
}

/** Compact per-arm executed split for one serve-batch row, e.g.
 *  "frz:6 spr:2" (glyphs from the kind-metadata table; "-" when the
 *  request ran nothing). */
std::string
format_kind_split(const std::array<int, engine::kNumNodeKinds>& executed)
{
    std::string out;
    for (const auto& info : engine::node_kind_table()) {
        const auto k = engine::node_kind_index(info.kind);
        if (executed[k] == 0)
            continue;
        if (!out.empty())
            out += " ";
        out += std::string(info.glyph) + ":" + Table::num(executed[k]);
    }
    return out.empty() ? "-" : out;
}

/** Template-cache counter report (--stats). */
void
print_cache_stats(const engine::ExecutionEngine& eng)
{
    const auto s = eng.template_cache().stats();
    Table t("template cache");
    t.set_header({"counter", "value"});
    t.add_row({"template lookups", Table::num(s.lookups)});
    t.add_row({"template hits", Table::num(s.hits)});
    t.add_row({"template misses", Table::num(s.misses())});
    t.add_row({"template compiles", Table::num(s.compiles)});
    t.add_row({"template evictions", Table::num(s.evictions)});
    t.add_row({"fused-sim lookups", Table::num(s.sim_lookups)});
    t.add_row({"fused-sim hits", Table::num(s.sim_hits)});
    t.add_row({"fused-sim misses", Table::num(s.sim_misses())});
    t.add_row({"fused-sim compiles", Table::num(s.sim_fusions)});
    t.add_row({"fused-sim evictions", Table::num(s.sim_evictions)});
    t.add_row({"family lookups", Table::num(s.family_lookups)});
    t.add_row({"family hits", Table::num(s.family_hits)});
    t.add_row({"family misses", Table::num(s.family_misses())});
    t.add_row({"family structural compiles",
               Table::num(s.family_structural_compiles)});
    t.add_row({"family binds", Table::num(s.family_binds)});
    t.add_row({"family evictions", Table::num(s.family_evictions)});
    t.add_row({"structure bytes (shared)", Table::num(s.structure_bytes)});
    t.add_row({"bind bytes (per value)", Table::num(s.bind_bytes)});
    t.add_row({"resident entries", Table::num(eng.template_cache().size())});
    t.add_row({"resident bytes", Table::num(eng.template_cache().bytes())});
    t.print(std::cout);
}

std::vector<std::string>
split_list(const std::string& csv)
{
    std::vector<std::string> out;
    std::istringstream in(csv);
    std::string item;
    while (std::getline(in, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

/**
 * --workers a,b,c: connect a WorkerPool over the engine's local executor
 * and install it behind the executor seam. Returns nullptr when the
 * option is absent (pure local execution). The pool must outlive every
 * solve on the engine — callers keep the unique_ptr on their stack.
 */
std::unique_ptr<net::WorkerPool>
attach_workers(const Options& opts, engine::ExecutionEngine& eng)
{
    const auto csv = option(opts, "workers", "");
    if (csv.empty())
        return nullptr;
    const auto addresses = split_list(csv);
    FQ_REQUIRE(!addresses.empty(),
               "--workers expects a comma-separated address list");
    auto pool = std::make_unique<net::WorkerPool>(
        eng.local_leaf_executor(), eng.num_threads(), addresses);
    eng.set_leaf_executor(pool.get());
    std::cout << "workers: attached " << pool->num_workers()
              << " remote worker(s)\n";
    return pool;
}

void
print_distributed(const engine::ExecutionEngine& eng,
                  const net::WorkerPool& pool)
{
    const auto& d = eng.last_diagnostics();
    std::cout << "distributed: " << d.leaves_remote << " remote / "
              << d.leaves_local << " local leaves";
    if (d.leaves_redispatched > 0)
        std::cout << " (" << d.leaves_redispatched
                  << " re-dispatched after worker death)";
    std::cout << " | " << d.remote_bytes_sent << " B out / "
              << d.remote_bytes_received << " B in | "
              << pool.live_workers() << "/" << pool.num_workers()
              << " workers live\n";
    for (const auto& [address, leaves] : d.worker_dispatches)
        std::cout << "  worker " << address << ": " << leaves
                  << " leaves dispatched\n";
}

int
cmd_run(const Options& opts)
{
    const auto model = load_model(opts);
    const auto dev = device::make_device(
        option(opts, "device", "ibm-montreal"));
    frozenqubits::DriverConfig config;
    resolve_freeze(opts, model, config);
    config.seed = static_cast<std::uint64_t>(int_option(opts, "seed", 7));
    config.threads = int_option(opts, "threads", 0);
    // No --no-fusion here: run evaluates analytically, nothing simulates.

    engine::ExecutionEngine eng(config.threads);
    const auto r = eng.run(model, dev, config);
    Table t("baseline vs FrozenQubits(m=" +
            Table::num(config.num_freeze) + ") on " + dev.name);
    t.set_header({"arm", "circuits", "CXs", "SWAPs", "depth", "EPS",
                  "EV ideal", "EV noisy", "ARG"});
    t.add_row({"baseline", "1", Table::num(r.baseline.post_routing_cx),
               Table::num(r.baseline.swaps), Table::num(r.baseline.depth),
               Table::num(r.baseline.eps, 4),
               Table::num(r.baseline.ev_ideal, 3),
               Table::num(r.baseline.ev_noisy, 3),
               Table::num(r.arg_baseline, 2)});
    t.add_row({"FrozenQubits", Table::num(r.num_executed),
               Table::num(r.executed[0].post_routing_cx),
               Table::num(r.executed[0].swaps),
               Table::num(r.executed[0].depth),
               Table::num(r.executed[0].eps, 4),
               Table::num(r.ev_ideal_fq, 3), Table::num(r.ev_noisy_fq, 3),
               Table::num(r.arg_fq, 2)});
    t.print(std::cout);
    std::cout << "fidelity improvement: "
              << Table::factor(r.improvement()) << "\n";
    print_wall_clock(eng);
    return 0;
}

int
cmd_solve(const Options& opts)
{
    const auto model = load_model(opts);
    const auto dev = device::make_device(
        option(opts, "device", "ibm-montreal"));
    frozenqubits::DriverConfig config;
    config.threads = int_option(opts, "threads", 0);
    config.fuse_simulation = opts.find("no-fusion") == opts.end();
    config.seed = static_cast<std::uint64_t>(int_option(opts, "seed", 7));
    apply_tree_options(opts, config);
    resolve_freeze(opts, model, config);

    // Durability controls. A checkpoint file or a suspension point arms
    // snapshot boundaries (every folded leaf unless --checkpoint-every
    // widens them); --resume restarts from a snapshot written by an
    // earlier (possibly killed) invocation — the other options must match
    // that run's, which the restore fingerprint-checks.
    config.deadline_cost_units = long_option(opts, "deadline", 0);
    const auto checkpoint_path = option(opts, "checkpoint", "");
    const auto resume_path = option(opts, "resume", "");
    const long long suspend_after = long_option(opts, "suspend-after", 0);
    const bool durable = !checkpoint_path.empty() || suspend_after > 0;
    config.checkpoint_interval =
        long_option(opts, "checkpoint-every", durable ? 1 : 0);
    const int shots = int_option(opts, "shots", 8192);

    engine::CheckpointSink sink;
    if (durable)
        sink = [&](const engine::SolveCheckpoint& snapshot) {
            if (!checkpoint_path.empty())
                engine::write_checkpoint_file(checkpoint_path, snapshot);
            // --suspend-after K: stop once K leaves folded; the snapshot
            // just written resumes the remainder.
            return suspend_after <= 0 ||
                   snapshot.cursor <
                       static_cast<std::uint64_t>(suspend_after);
        };

    engine::ExecutionEngine eng(config.threads);
    const auto pool = attach_workers(opts, eng);
    frozenqubits::SampledSolve solved;
    if (!resume_path.empty()) {
        const auto snapshot =
            engine::read_checkpoint_file(resume_path);
        solved = eng.resume(model, dev, config, shots, snapshot, sink);
        std::cout << "resumed from checkpoint " << resume_path
                  << " (cursor " << snapshot.cursor << ")\n";
    } else {
        // The seed overload records config.seed in the request, which is
        // what lets a remote worker replan the identical tree; it is
        // bit-identical to the Rng overload with Rng(config.seed).
        solved = eng.solve(model, dev, config, shots, config.seed, sink);
    }
    // Plan-vs-adaptive trace: the engine snapshots the plan-time order
    // before any re-rank rewrites the tail.
    if (!eng.last_diagnostics().planned_subproblems.empty()) {
        std::cout << "schedule trace (plan -> adaptive):\n  plan:    ";
        for (int id : eng.last_diagnostics().planned_subproblems)
            std::cout << " " << id;
        std::cout << "\n  adaptive:";
        for (int id : eng.last_diagnostics().executed_subproblems)
            std::cout << " " << id;
        std::cout << "\n";
    }
    std::cout << "best cost: " << solved.best_cost << " ("
              << (solved.from_subproblem < 0
                      ? std::string("classical presolve")
                      : "sub-problem " + Table::num(solved.from_subproblem))
              << ")\n";
    if (solved.from_subproblem < 0)
        std::cout << "quantum decode: " << solved.best_quantum_cost
                  << " (sub-problem " << solved.best_quantum_leaf << ")\n";
    std::cout << "assignment: ";
    for (auto z : solved.best_assignment)
        std::cout << (z > 0 ? '+' : '-');
    std::cout << "\n";
    if (!solved.anytime.empty()) {
        std::cout << "anytime quality (circuits -> incumbent cost):";
        for (const auto& point : solved.anytime)
            std::cout << "  " << point.circuits << " -> "
                      << Table::num(point.incumbent_cost, 3);
        std::cout << "\n";
    }
    if (solved.degraded)
        std::cout << "degraded: anytime incumbent ("
                  << (solved.deadline_trimmed > 0
                          ? Table::num(solved.deadline_trimmed) +
                                " leaves trimmed by the deadline"
                          : std::string("suspended mid-schedule"))
                  << ")\n";
    const auto& diag = eng.last_diagnostics();
    if (diag.checkpoints > 0 || diag.resumed_from >= 0)
        std::cout << "durability: " << diag.checkpoints
                  << " checkpoints written, resumed from "
                  << (diag.resumed_from < 0
                          ? std::string("-")
                          : "cursor " + Table::num(diag.resumed_from))
                  << "\n";
    print_wall_clock(eng);
    if (pool)
        print_distributed(eng, *pool);
    if (opts.find("stats") != opts.end()) {
        print_kind_stats(diag.kind_leaves_executed,
                         diag.kind_leaves_pruned, diag.kind_budget_units);
        print_cache_stats(eng);
    }
    return 0;
}

/** One parsed trace line of a serve-batch replay. */
struct TraceRequest
{
    std::string model_file;
    std::string device;
    frozenqubits::DriverConfig config;
    int shots = 4096;
    std::uint64_t seed = 7;
    /** migrate=K: suspend at the first checkpoint boundary with K or more
     *  leaves folded, then resume the remainder via submit_resume. */
    long long migrate_after = 0;
    ising::IsingModel model;
};

std::vector<TraceRequest>
load_trace(const std::string& path, const Options& opts)
{
    std::ifstream in(path);
    FQ_REQUIRE(in.good(), "cannot open trace " + path);
    const auto default_device = option(opts, "device", "ibm-montreal");
    const int default_shots = int_option(opts, "shots", 4096);

    std::vector<TraceRequest> requests;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        std::istringstream tokens(line);
        TraceRequest req;
        if (!(tokens >> req.model_file))
            continue; // blank / comment-only line
        req.device = default_device;
        req.shots = default_shots;

        const std::string where =
            " (trace line " + Table::num(lineno) + ")";
        std::string tok;
        while (tokens >> tok) {
            const auto eq = tok.find('=');
            FQ_REQUIRE(eq != std::string::npos && eq > 0,
                       "expected key=value, got '" + tok + "'" + where);
            const auto key = tok.substr(0, eq);
            const auto value = tok.substr(eq + 1);
            if (key == "device") { // non-numeric value
                req.device = value;
                continue;
            }
            if (key == "backend") { // non-numeric value
                FQ_REQUIRE(sim::parse_backend_selection(
                               value, &req.config.backend),
                           "backend expects auto, scalar or simd" + where);
                continue;
            }
            long long parsed = 0;
            try {
                std::size_t consumed = 0;
                parsed = std::stoll(value, &consumed);
                FQ_REQUIRE(consumed == value.size(),
                           key + " expects an integer, got '" + value +
                               "'" + where);
            } catch (const std::logic_error&) {
                FQ_REQUIRE(false, key + " expects an integer, got '" +
                                      value + "'" + where);
            }
            if (key == "freeze")
                req.config.num_freeze = static_cast<int>(parsed);
            else if (key == "shots")
                req.shots = static_cast<int>(parsed);
            else if (key == "seed")
                req.seed = static_cast<std::uint64_t>(parsed);
            else if (key == "max-depth")
                req.config.max_depth = static_cast<int>(parsed);
            else if (key == "max-circuits")
                req.config.max_circuits = parsed;
            else if (key == "partition")
                req.config.partition_width = static_cast<int>(parsed);
            else if (key == "wave-share")
                req.config.wave_share = static_cast<int>(parsed);
            else if (key == "rerank") {
                FQ_REQUIRE(parsed >= 0, "rerank expects a non-negative "
                                        "interval (0 = off)" +
                                            where);
                req.config.rerank_interval = parsed;
            } else if (key == "deadline") {
                FQ_REQUIRE(parsed >= 0, "deadline expects a non-negative "
                                        "cost budget (0 = off)" +
                                            where);
                req.config.deadline_cost_units = parsed;
            } else if (key == "sparsify") {
                // Integer percent (trace values are all integers):
                // sparsify=50 keeps half the couplings in each leaf's
                // optimizer proxy; 0 = off.
                FQ_REQUIRE(parsed >= 0 && parsed < 100,
                           "sparsify expects a keep percentage in "
                           "[0, 100)" +
                               where);
                req.config.sparsify_keep =
                    static_cast<double>(parsed) / 100.0;
            } else if (key == "checkpoint") {
                FQ_REQUIRE(parsed >= 0, "checkpoint expects a non-negative "
                                        "interval (0 = off)" +
                                            where);
                req.config.checkpoint_interval = parsed;
            } else if (key == "migrate") {
                FQ_REQUIRE(parsed > 0,
                           "migrate expects a positive fold count" + where);
                req.migrate_after = parsed;
            } else if (key == "workers") {
                // workers=0 pins this tenant's leaves to the local arm
                // even when --workers attached a pool.
                req.config.allow_remote = parsed != 0;
            } else
                FQ_REQUIRE(false, "unknown trace key '" + key + "'" + where);
        }
        req.config.seed = req.seed;

        std::ifstream model_in(req.model_file);
        FQ_REQUIRE(model_in.good(),
                   "cannot open model " + req.model_file + where);
        req.model = ising::read_model(model_in);
        requests.push_back(std::move(req));
    }
    FQ_REQUIRE(!requests.empty(), "trace has no requests: " + path);
    return requests;
}

int
cmd_serve_batch(const Options& opts)
{
    const auto trace_path = option(opts, "trace", "");
    FQ_REQUIRE(!trace_path.empty(), "serve-batch needs --trace FILE");
    auto requests = load_trace(trace_path, opts);

    engine::ExecutionEngine eng(int_option(opts, "threads", 0));
    const auto pool = attach_workers(opts, eng);
    const bool serial = opts.find("serial") != opts.end();
    using Clock = std::chrono::steady_clock;
    const auto start = Clock::now();

    Table t(std::string(serial ? "serial replay" : "batched replay") + " (" +
            Table::num(requests.size()) + " requests, " +
            Table::num(eng.num_threads()) + " threads)");
    if (serial) {
        t.set_header({"req", "model", "leaves", "best cost", "from"});
        for (std::size_t k = 0; k < requests.size(); ++k) {
            auto& req = requests[k];
            const auto dev = device::make_device(req.device);
            // Seed overload so a worker pool can replan remotely;
            // bit-identical to the Rng overload with Rng(req.seed).
            const auto solved =
                eng.solve(req.model, dev, req.config, req.shots, req.seed);
            t.add_row({Table::num(k + 1), req.model_file,
                       Table::num(solved.leaves_executed),
                       Table::num(solved.best_cost, 3),
                       solved.from_subproblem < 0
                           ? std::string("presolve")
                           : "leaf " + Table::num(solved.from_subproblem)});
        }
        t.print(std::cout);
    } else {
        engine::SolveService::Config service_config;
        service_config.wave_size = int_option(opts, "wave-size", 0);
        service_config.max_queue_depth = int_option(opts, "queue-depth", 0);
        engine::SolveService service(eng, service_config);

        // migrate=K slots: the assembler thread writes each suspended
        // request's snapshot here (one writer), the main thread reads it
        // only after drain() — no lock needed.
        std::vector<std::unique_ptr<engine::SolveCheckpoint>> snapshots(
            requests.size());

        std::vector<engine::SolveService::Ticket> tickets;
        tickets.reserve(requests.size());
        int rejected = 0;
        for (std::size_t k = 0; k < requests.size(); ++k) {
            auto& req = requests[k];
            engine::SolveService::CheckpointCallback on_checkpoint;
            if (req.migrate_after > 0) {
                if (req.config.checkpoint_interval <= 0)
                    req.config.checkpoint_interval = 1;
                auto* slot = &snapshots[k];
                const auto after =
                    static_cast<std::uint64_t>(req.migrate_after);
                on_checkpoint =
                    [slot, after](std::uint64_t,
                                  const engine::SolveCheckpoint& ck) {
                        if (ck.cursor < after)
                            return true;
                        *slot = std::make_unique<engine::SolveCheckpoint>(
                            ck);
                        return false; // suspend; resumed after drain
                    };
            }
            try {
                tickets.push_back(
                    service.submit(req.model,
                                   device::make_device(req.device),
                                   req.config, req.shots, req.seed,
                                   nullptr, std::move(on_checkpoint)));
            } catch (const engine::DeadlineError& e) {
                // deadline=D projected this request past its budget.
                ++rejected;
                tickets.emplace_back();
                std::cout << "deadline-rejected: " << req.model_file
                          << " — " << e.what() << "\n";
            } catch (const engine::AdmissionError& e) {
                // Admission control (--queue-depth) shed this request;
                // report it instead of aborting the replay.
                ++rejected;
                tickets.emplace_back();
                std::cout << "rejected: " << req.model_file << " — "
                          << e.what() << "\n";
            }
        }
        service.drain();

        // Migration phase: resume every suspended request from its
        // captured snapshot on the same service (same engine, fresh
        // request id) and let the resumed remainder drain.
        std::vector<std::pair<std::size_t, engine::SolveService::Ticket>>
            resumed;
        for (std::size_t k = 0; k < requests.size(); ++k) {
            if (!snapshots[k])
                continue;
            auto& req = requests[k];
            resumed.emplace_back(
                k, service.submit_resume(req.model,
                                         device::make_device(req.device),
                                         req.config, req.shots,
                                         *snapshots[k]));
        }
        if (!resumed.empty())
            service.drain();

        t.set_header({"req", "model", "leaves", "arms", "workers",
                      "best cost", "from", "waves", "occupancy", "reranks",
                      "fused hit%", "tier h/b/c", "binds", "queue ms",
                      "wall ms"});
        std::map<std::string, long long> worker_totals;
        for (std::size_t k = 0; k < tickets.size(); ++k) {
            auto& ticket = tickets[k];
            if (ticket.id() == 0) { // shed by admission control
                t.add_row({Table::num(k + 1), requests[k].model_file, "-",
                           "-", "-", "-", "rejected", "-", "-", "-", "-",
                           "-", "-", "-", "-"});
                continue;
            }
            // Diagnostics are FIFO-retained (~4k most recent); on a huge
            // trace the oldest rows fall back to dashes rather than
            // aborting the whole report.
            engine::SolveService::TenantDiagnostics diag;
            bool have_diag = true;
            try {
                diag = service.diagnostics(ticket.id());
            } catch (const fq::Error&) {
                have_diag = false;
            }
            std::string best = "FAILED", from = "-";
            try {
                const auto solved = ticket.get();
                best = Table::num(solved.best_cost, 3);
                from = solved.from_subproblem < 0
                           ? std::string("presolve")
                           : "leaf " + Table::num(solved.from_subproblem);
                if (solved.degraded)
                    from += snapshots[k] ? " [suspended]" : " [degraded]";
            } catch (const fq::Error& e) {
                from = e.what();
            }
            if (have_diag) {
                for (const auto& [address, leaves] : diag.worker_dispatches)
                    worker_totals[address] += leaves;
                t.add_row({Table::num(k + 1), requests[k].model_file,
                           Table::num(diag.leaves_executed) + "/" +
                               Table::num(diag.leaves_scheduled),
                           format_kind_split(diag.kind_leaves_executed),
                           pool ? Table::num(diag.leaves_remote) + "/" +
                                      Table::num(diag.leaves_local)
                                : std::string("-"),
                           best, from, Table::num(diag.waves),
                           Table::num(diag.wave_occupancy, 2),
                           Table::num(diag.reranks),
                           Table::num(100.0 * diag.cache_hit_share, 1),
                           Table::num(diag.leaves_tier_hit) + "/" +
                               Table::num(diag.leaves_tier_bind) + "/" +
                               Table::num(diag.leaves_tier_compile),
                           Table::num(diag.family_binds),
                           Table::num(diag.queue_latency_ms, 1),
                           Table::num(diag.wall_ms, 1)});
            } else
                t.add_row({Table::num(k + 1), requests[k].model_file, "-",
                           "-", "-", best, from, "-", "-", "-", "-", "-",
                           "-", "-", "-"});
        }
        t.print(std::cout);

        for (auto& [k, ticket] : resumed) {
            std::string best = "FAILED";
            int cursor = static_cast<int>(snapshots[k]->cursor);
            try {
                best = Table::num(ticket.get().best_cost, 3);
            } catch (const fq::Error& e) {
                best = e.what();
            }
            std::cout << "migrated: req " << (k + 1) << " ("
                      << requests[k].model_file << ") suspended at cursor "
                      << cursor << ", resumed as request "
                      << ticket.id() << " -> best cost " << best << "\n";
        }

        const auto stats = service.stats();
        std::cout << "service: " << stats.requests_completed << " completed, "
                  << stats.requests_failed << " failed, " << rejected
                  << " rejected | "
                  << stats.waves_executed << " waves, "
                  << Table::num(stats.waves_executed == 0
                                    ? 0.0
                                    : static_cast<double>(stats.wave_slots) /
                                          static_cast<double>(
                                              stats.waves_executed),
                                1)
                  << " leaves/wave, pool fill "
                  << Table::num(stats.mean_pool_fill, 2) << "\n";
        if (pool) {
            std::cout << "workers: " << pool->live_workers() << "/"
                      << pool->num_workers() << " live";
            for (const auto& [address, leaves] : worker_totals)
                std::cout << " | " << address << " " << leaves << " leaves";
            std::cout << "\n";
        }
    }

    const double wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    std::cout << "replayed " << requests.size() << " requests in "
              << Table::num(wall_ms, 1) << " ms ("
              << Table::num(1000.0 * static_cast<double>(requests.size()) /
                                wall_ms,
                            2)
              << " solves/s)\n";
    if (opts.find("stats") != opts.end())
        print_cache_stats(eng);
    return 0;
}

int
cmd_worker(const Options& opts)
{
    const auto listen = option(opts, "listen", "");
    FQ_REQUIRE(!listen.empty(),
               "worker needs --listen unix:/path.sock or host:port");
    net::WorkerServer::Options wopts;
    wopts.threads = int_option(opts, "threads", 1);
    // Fault injection for tests/CI: crash mid-batch after N leaves.
    wopts.die_after_leaves = long_option(opts, "die-after", 0);
    net::WorkerServer server(listen, wopts);
    std::cout << "fqtool worker: listening on " << listen << " ("
              << server.num_threads() << " executor thread"
              << (server.num_threads() == 1 ? "" : "s") << ")"
              << std::endl; // flush: CI waits for this readiness line
    server.run();
    return 0;
}

int
cmd_devices()
{
    Table t("device catalog");
    t.set_header({"name", "qubits", "couplings", "avg CX error",
                  "avg readout error"});
    for (const auto& name : device::ibm_device_names()) {
        const auto dev = device::make_device(name);
        t.add_row({name, Table::num(dev.num_qubits()),
                   Table::num(dev.topology.num_couplings()),
                   Table::num(dev.calibration.average_cx_error(), 4),
                   Table::num(dev.calibration.average_readout_error(), 4)});
    }
    t.print(std::cout);
    return 0;
}

int
usage()
{
    std::cerr <<
        "usage: fqtool <command> [options]\n"
        "  generate --class ba1|ba2|ba3|3reg|sk --n N [--seed S]\n"
        "  analyze  [--file F]\n"
        "  run      [--file F] --device NAME [--freeze M|auto] [--seed S]\n"
        "           [--threads T]\n"
        "  plan     [--file F] --device NAME [--freeze M|auto]\n"
        "           [--max-depth D] [--max-circuits B] [--partition W]\n"
        "           [--sparsify F] [--no-sparsify] [--prune-dominated]\n"
        "           [--backend auto|scalar|simd] [--no-param-templates]\n"
        "  solve    [--file F] --device NAME [--freeze M|auto] [--shots K]\n"
        "           [--threads T] [--max-depth D] [--max-circuits B]\n"
        "           [--partition W] [--sparsify F] [--no-sparsify]\n"
        "           [--prune-dominated] [--rerank N|off]\n"
        "           [--backend auto|scalar|simd] [--no-fusion]\n"
        "           [--no-param-templates]\n"
        "           [--deadline D] [--checkpoint FILE] [--checkpoint-every N]\n"
        "           [--resume FILE] [--suspend-after K] [--stats]\n"
        "           [--workers a,b,c]\n"
        "  serve-batch --trace FILE [--device NAME] [--threads T]\n"
        "           [--wave-size W] [--queue-depth D] [--shots K]\n"
        "           [--serial] [--stats] [--workers a,b,c]\n"
        "           trace keys: freeze shots seed device backend max-depth\n"
        "           max-circuits partition sparsify wave-share rerank\n"
        "           deadline checkpoint migrate workers\n"
        "  worker   --listen unix:/path.sock|host:port [--threads T]\n"
        "  devices\n";
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    try {
        const auto opts = parse_options(argc, argv, 2);
        if (command == "generate")
            return cmd_generate(opts);
        if (command == "analyze")
            return cmd_analyze(opts);
        if (command == "run")
            return cmd_run(opts);
        if (command == "plan")
            return cmd_plan(opts);
        if (command == "solve")
            return cmd_solve(opts);
        if (command == "serve-batch")
            return cmd_serve_batch(opts);
        if (command == "worker")
            return cmd_worker(opts);
        if (command == "devices")
            return cmd_devices();
        return usage();
    } catch (const fq::Error& e) {
        std::cerr << "fqtool: " << e.what() << "\n";
        return 1;
    }
}
