/**
 * @file
 * fqtool — command-line front end for the FrozenQubits pipeline.
 *
 * Subcommands:
 *   generate --class ba1|ba2|ba3|3reg|sk --n <N> [--seed S]
 *       Emit a random benchmark instance in the text model format.
 *   analyze [--file F]
 *       Read a model (file or stdin) and print graph/hotspot statistics.
 *   run [--file F] --device <name> [--freeze M] [--seed S] [--threads T]
 *       Read a model, run baseline-vs-FrozenQubits, print the report.
 *   solve [--file F] --device <name> [--freeze M] [--shots K] [--seed S]
 *         [--threads T]
 *       Sampled end-to-end solve (N - M <= 22 for the statevector).
 *   devices
 *       List the device catalog.
 *
 * run and solve execute on the ExecutionEngine: the 2^{m-1} sub-problem
 * circuits are batched over a thread pool (--threads, default all cores;
 * results are identical for any thread count) and each invocation ends
 * with a wall-clock summary line.
 *
 * Examples:
 *   fqtool generate --class ba1 --n 16 > problem.ising
 *   fqtool run --file problem.ising --device ibm-montreal --freeze 2
 */
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "common/error.h"
#include "common/table.h"
#include "device/catalog.h"
#include "engine/engine.h"
#include "frozenqubits/budget.h"
#include "frozenqubits/driver.h"
#include "frozenqubits/hotspot.h"
#include "graph/generators.h"
#include "graph/powerlaw.h"
#include "ising/io.h"
#include "ising/maxcut.h"

namespace {

using namespace fq;

/** Parsed --key value options. */
using Options = std::map<std::string, std::string>;

/** True for valueless switches (--flag rather than --key value). */
bool
is_flag(const std::string& key)
{
    return key == "no-fusion";
}

Options
parse_options(int argc, char** argv, int first)
{
    Options opts;
    for (int a = first; a < argc; ++a) {
        std::string key = argv[a];
        FQ_REQUIRE(key.rfind("--", 0) == 0, "expected --option, got " + key);
        key = key.substr(2);
        if (is_flag(key)) {
            opts[key] = "1";
            continue;
        }
        FQ_REQUIRE(a + 1 < argc, "missing value for --" + key);
        opts[key] = argv[++a];
    }
    return opts;
}

std::string
option(const Options& opts, const std::string& key,
       const std::string& fallback)
{
    const auto it = opts.find(key);
    return it == opts.end() ? fallback : it->second;
}

int
int_option(const Options& opts, const std::string& key, int fallback)
{
    const auto it = opts.find(key);
    if (it == opts.end())
        return fallback;
    try {
        std::size_t consumed = 0;
        const int value = std::stoi(it->second, &consumed);
        if (consumed == it->second.size())
            return value;
    } catch (const std::logic_error&) {
    }
    throw Error("--" + key + " expects an integer, got " + it->second);
}

ising::IsingModel
load_model(const Options& opts)
{
    const auto file = option(opts, "file", "");
    if (file.empty())
        return ising::read_model(std::cin);
    std::ifstream in(file);
    FQ_REQUIRE(in.good(), "cannot open " + file);
    return ising::read_model(in);
}

int
cmd_generate(const Options& opts)
{
    const auto klass = option(opts, "class", "ba1");
    const int n = int_option(opts, "n", 16);
    Rng rng(static_cast<std::uint64_t>(int_option(opts, "seed", 1)));

    graph::Graph g;
    if (klass == "ba1")
        g = graph::barabasi_albert(n, 1, rng);
    else if (klass == "ba2")
        g = graph::barabasi_albert(n, 2, rng);
    else if (klass == "ba3")
        g = graph::barabasi_albert(n, 3, rng);
    else if (klass == "3reg")
        g = graph::random_regular(n, 3, rng);
    else if (klass == "sk")
        g = graph::complete(n);
    else
        FQ_REQUIRE(false, "unknown class: " + klass);
    graph::assign_random_pm1_weights(g, rng);

    std::cout << "# " << klass << " benchmark, N=" << n << "\n";
    ising::write_model(std::cout, ising::maxcut_hamiltonian(g));
    return 0;
}

int
cmd_analyze(const Options& opts)
{
    const auto model = load_model(opts);
    const auto g = model.to_graph();
    const auto stats = graph::degree_stats(g, 5);

    Table t("instance analysis");
    t.set_header({"metric", "value"});
    t.add_row({"spins", Table::num(model.num_spins())});
    t.add_row({"quadratic terms", Table::num(model.num_quadratic_terms())});
    t.add_row({"flip-symmetric (h==0)",
               model.has_zero_linear_terms() ? "yes" : "no"});
    t.add_row({"average degree", Table::num(stats.average_degree, 2)});
    t.add_row({"max degree", Table::num(stats.max_degree)});
    t.add_row({"top-5 hotspot ratio", Table::factor(stats.hotspot_ratio)});
    t.print(std::cout);

    Rng rng(1);
    Table hotspots("hotspots (iterative max-degree order)");
    hotspots.set_header({"rank", "spin", "edges dropped cumulatively"});
    const auto picks = frozenqubits::select_hotspots(
        model, std::min(5, model.num_spins() - 1),
        frozenqubits::HotspotPolicy::MaxDegree, rng);
    for (std::size_t k = 0; k < picks.size(); ++k) {
        const std::vector<int> prefix(picks.begin(),
                                      picks.begin() + k + 1);
        hotspots.add_row({Table::num(k + 1), "z" + Table::num(picks[k]),
                          Table::num(frozenqubits::dropped_edge_count(
                              model, prefix))});
    }
    hotspots.print(std::cout);
    return 0;
}

/** --freeze N or --freeze auto (Section 3.4 recommendation). */
int
resolve_freeze_count(const Options& opts, const ising::IsingModel& model)
{
    if (option(opts, "freeze", "1") != "auto")
        return int_option(opts, "freeze", 1);
    frozenqubits::FreezeBudget budget;
    budget.max_circuits = int_option(opts, "budget", 4);
    const auto rec = frozenqubits::recommend_num_freeze(model, budget);
    std::cout << "auto freeze: m=" << rec.num_freeze;
    for (const auto& step : rec.steps)
        std::cout << "  [z" << step.spin << " drops "
                  << step.edges_dropped << " edges]";
    std::cout << "\n";
    return std::max(1, rec.num_freeze);
}

/** Engine wall-clock summary: printed after every run/solve. */
void
print_wall_clock(const engine::ExecutionEngine& eng)
{
    const auto& d = eng.last_diagnostics();
    std::cout << "wall-clock: " << Table::num(d.wall_ms, 1) << " ms | "
              << d.threads << " thread" << (d.threads == 1 ? "" : "s")
              << " | " << d.tasks_executed << "/" << d.num_subproblems
              << " sub-circuits executed (" << d.mirrors_inferred
              << " mirrored, " << d.template_edits << " template edits"
              << (d.template_cache_hit ? ", template cached" : "")
              << (d.fused_simulation ? ", fused sim" : "") << ")\n";
}

int
cmd_run(const Options& opts)
{
    const auto model = load_model(opts);
    const auto dev = device::make_device(
        option(opts, "device", "ibm-montreal"));
    frozenqubits::DriverConfig config;
    config.num_freeze = resolve_freeze_count(opts, model);
    config.seed = static_cast<std::uint64_t>(int_option(opts, "seed", 7));
    config.threads = int_option(opts, "threads", 0);
    // No --no-fusion here: run evaluates analytically, nothing simulates.

    engine::ExecutionEngine eng(config.threads);
    const auto r = eng.run(model, dev, config);
    Table t("baseline vs FrozenQubits(m=" +
            Table::num(config.num_freeze) + ") on " + dev.name);
    t.set_header({"arm", "circuits", "CXs", "SWAPs", "depth", "EPS",
                  "EV ideal", "EV noisy", "ARG"});
    t.add_row({"baseline", "1", Table::num(r.baseline.post_routing_cx),
               Table::num(r.baseline.swaps), Table::num(r.baseline.depth),
               Table::num(r.baseline.eps, 4),
               Table::num(r.baseline.ev_ideal, 3),
               Table::num(r.baseline.ev_noisy, 3),
               Table::num(r.arg_baseline, 2)});
    t.add_row({"FrozenQubits", Table::num(r.num_executed),
               Table::num(r.executed[0].post_routing_cx),
               Table::num(r.executed[0].swaps),
               Table::num(r.executed[0].depth),
               Table::num(r.executed[0].eps, 4),
               Table::num(r.ev_ideal_fq, 3), Table::num(r.ev_noisy_fq, 3),
               Table::num(r.arg_fq, 2)});
    t.print(std::cout);
    std::cout << "fidelity improvement: "
              << Table::factor(r.improvement()) << "\n";
    print_wall_clock(eng);
    return 0;
}

int
cmd_solve(const Options& opts)
{
    const auto model = load_model(opts);
    const auto dev = device::make_device(
        option(opts, "device", "ibm-montreal"));
    frozenqubits::DriverConfig config;
    config.num_freeze = resolve_freeze_count(opts, model);
    config.threads = int_option(opts, "threads", 0);
    config.fuse_simulation = opts.find("no-fusion") == opts.end();
    Rng rng(static_cast<std::uint64_t>(int_option(opts, "seed", 7)));

    engine::ExecutionEngine eng(config.threads);
    const auto solved = eng.solve(model, dev, config,
                                  int_option(opts, "shots", 8192), rng);
    std::cout << "best cost: " << solved.best_cost << " (sub-problem "
              << solved.from_subproblem << ")\nassignment: ";
    for (auto z : solved.best_assignment)
        std::cout << (z > 0 ? '+' : '-');
    std::cout << "\n";
    print_wall_clock(eng);
    return 0;
}

int
cmd_devices()
{
    Table t("device catalog");
    t.set_header({"name", "qubits", "couplings", "avg CX error",
                  "avg readout error"});
    for (const auto& name : device::ibm_device_names()) {
        const auto dev = device::make_device(name);
        t.add_row({name, Table::num(dev.num_qubits()),
                   Table::num(dev.topology.num_couplings()),
                   Table::num(dev.calibration.average_cx_error(), 4),
                   Table::num(dev.calibration.average_readout_error(), 4)});
    }
    t.print(std::cout);
    return 0;
}

int
usage()
{
    std::cerr <<
        "usage: fqtool <command> [options]\n"
        "  generate --class ba1|ba2|ba3|3reg|sk --n N [--seed S]\n"
        "  analyze  [--file F]\n"
        "  run      [--file F] --device NAME [--freeze M|auto] [--seed S]\n"
        "           [--threads T]\n"
        "  solve    [--file F] --device NAME [--freeze M|auto] [--shots K]\n"
        "           [--threads T] [--no-fusion]\n"
        "  devices\n";
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    try {
        const auto opts = parse_options(argc, argv, 2);
        if (command == "generate")
            return cmd_generate(opts);
        if (command == "analyze")
            return cmd_analyze(opts);
        if (command == "run")
            return cmd_run(opts);
        if (command == "solve")
            return cmd_solve(opts);
        if (command == "devices")
            return cmd_devices();
        return usage();
    } catch (const fq::Error& e) {
        std::cerr << "fqtool: " << e.what() << "\n";
        return 1;
    }
}
