/**
 * @file
 * Cross-module property suites: parameterized sweeps of the library's
 * invariants over graph classes, devices, and random instances — the
 * "does the whole stack commute" checks that single-module tests miss.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/bitops.h"
#include "device/catalog.h"
#include "frozenqubits/decoder.h"
#include "frozenqubits/driver.h"
#include "frozenqubits/freeze.h"
#include "frozenqubits/hotspot.h"
#include "frozenqubits/template_editor.h"
#include "graph/generators.h"
#include "ising/exact_solver.h"
#include "ising/qubo.h"
#include "ising/symmetry.h"
#include "qaoa/analytic_p1.h"
#include "qaoa/qaoa_builder.h"
#include "sim/noise_model.h"
#include "sim/statevector.h"
#include "transpiler/pipeline.h"
#include "transpiler/router.h"

namespace {

using namespace fq;

/** The benchmark graph classes, generated per index. */
graph::Graph
graph_of_class(int which, int n, Rng& rng)
{
    switch (which) {
      case 0:
        return graph::barabasi_albert(n, 1, rng);
      case 1:
        return graph::barabasi_albert(n, 2, rng);
      case 2:
        return graph::random_regular(n - (n % 2), 3, rng);
      case 3:
        return graph::complete(n);
      case 4:
        return graph::star(n);
      default:
        return graph::path(n);
    }
}

constexpr const char* kClassNames[] = {"BA1", "BA2", "3reg", "SK",
                                       "star", "path"};

/** Freeze partition property across every graph class. */
class FreezeAcrossClasses : public ::testing::TestWithParam<int>
{
};

TEST_P(FreezeAcrossClasses, MinOverSubproblemsIsGlobalMin)
{
    const int which = GetParam();
    Rng rng(50 + which);
    auto g = graph_of_class(which, 10, rng);
    graph::assign_random_pm1_weights(g, rng);
    const auto model = ising::IsingModel::from_graph(g);
    const auto exact = ising::solve_exact(model);

    const auto hotspots = frozenqubits::select_hotspots(
        model, 2, frozenqubits::HotspotPolicy::MaxDegree, rng);
    const auto subs = frozenqubits::freeze_all(model, hotspots);
    double best = 1e300;
    for (const auto& sub : subs)
        best = std::min(best, ising::solve_exact(sub.model).min_cost);
    EXPECT_NEAR(best, exact.min_cost, 1e-9) << kClassNames[which];
}

TEST_P(FreezeAcrossClasses, SymmetryPruningRecoversAllSubspaces)
{
    const int which = GetParam();
    Rng rng(60 + which);
    auto g = graph_of_class(which, 9, rng);
    graph::assign_random_pm1_weights(g, rng);
    const auto model = ising::IsingModel::from_graph(g);

    // Max-Cut models are flip-symmetric; the plan must pair every index.
    const auto plan = frozenqubits::plan_executions(model, 3);
    std::set<int> covered;
    for (const auto& entry : plan) {
        covered.insert(entry.solve);
        for (int m : entry.mirrors)
            covered.insert(m);
    }
    EXPECT_EQ(covered.size(), 8u) << kClassNames[which];
}

INSTANTIATE_TEST_SUITE_P(GraphClasses, FreezeAcrossClasses,
                         ::testing::Range(0, 6));

/** Analytic p=1 vs statevector over structured classes with fields. */
class AnalyticAcrossClasses : public ::testing::TestWithParam<int>
{
};

TEST_P(AnalyticAcrossClasses, EnergyMatchesStatevector)
{
    const int which = GetParam();
    Rng rng(70 + which);
    auto g = graph_of_class(which, 7, rng);
    graph::assign_random_pm1_weights(g, rng);
    auto model = ising::IsingModel::from_graph(g);
    // Add fields to exercise the h-dependent terms.
    for (int i = 0; i < model.num_spins(); ++i)
        if (rng.bernoulli(0.5))
            model.set_linear(i, rng.uniform(-1.0, 1.0));

    const qaoa::P1Angles angles{rng.uniform(0.1, 1.2),
                                rng.uniform(0.1, 1.2)};
    qaoa::BuildOptions opts;
    opts.include_measurements = false;
    const auto circuit = qaoa::build_qaoa_circuit(model, opts)
                             .bind({angles.gamma}, {angles.beta});
    const auto sv = sim::run_circuit(circuit);
    EXPECT_NEAR(qaoa::evaluate_p1_energy(model, angles),
                sv.expectation_ising(model), 1e-8)
        << kClassNames[which];
}

INSTANTIATE_TEST_SUITE_P(GraphClasses, AnalyticAcrossClasses,
                         ::testing::Range(0, 6));

/** Full driver consistency across devices. */
class DriverAcrossDevices : public ::testing::TestWithParam<int>
{
};

TEST_P(DriverAcrossDevices, ReportInvariantsHold)
{
    const auto names = device::ibm_device_names();
    const auto dev = device::make_device(names[GetParam()]);

    Rng rng(80);
    auto g = graph::barabasi_albert(12, 1, rng);
    graph::assign_random_pm1_weights(g, rng);
    const auto model = ising::IsingModel::from_graph(g);

    frozenqubits::DriverConfig config;
    config.num_freeze = 2;
    const auto r = frozenqubits::run_pipeline(model, dev, config);

    EXPECT_EQ(r.num_subproblems, 4);
    EXPECT_EQ(r.num_executed, 2);
    for (const auto& sub : r.executed) {
        EXPECT_EQ(sub.num_qubits, 10);
        EXPECT_LE(sub.pre_routing_cx, r.baseline.pre_routing_cx);
        EXPECT_LE(sub.post_routing_cx, r.baseline.post_routing_cx);
        EXPECT_GE(sub.eps, r.baseline.eps);
        EXPECT_GE(sub.ev_noisy, sub.ev_ideal - 1e-9)
            << "noise cannot beat the ideal EV";
    }
    EXPECT_GE(r.arg_baseline, 0.0);
    EXPECT_GE(r.arg_fq, 0.0);
    EXPECT_LE(r.arg_fq, r.arg_baseline + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllDevices, DriverAcrossDevices,
                         ::testing::Range(0, 8));

TEST(DriverDeterminism, SameSeedSameReport)
{
    const auto dev = device::make_device("ibm-toronto");
    Rng rng(90);
    auto g = graph::barabasi_albert(10, 1, rng);
    graph::assign_random_pm1_weights(g, rng);
    const auto model = ising::IsingModel::from_graph(g);

    frozenqubits::DriverConfig config;
    config.num_freeze = 1;
    const auto a = frozenqubits::run_pipeline(model, dev, config);
    const auto b = frozenqubits::run_pipeline(model, dev, config);
    EXPECT_DOUBLE_EQ(a.arg_baseline, b.arg_baseline);
    EXPECT_DOUBLE_EQ(a.arg_fq, b.arg_fq);
    EXPECT_EQ(a.baseline.post_routing_cx, b.baseline.post_routing_cx);
    EXPECT_EQ(a.hotspots, b.hotspots);
}

TEST(RouterOnGrid, EquivalenceWithNontrivialLayout)
{
    // 3x3 grid device, 9-qubit random circuit, greedy layout: the routed
    // circuit plus the final permutation must equal the logical unitary.
    const auto topo = device::make_grid(3, 3);
    Rng rng(91);
    circuit::Circuit logical(9);
    for (int k = 0; k < 40; ++k) {
        const int q = static_cast<int>(rng.uniform_int(std::uint64_t(9)));
        int r = static_cast<int>(rng.uniform_int(std::uint64_t(9)));
        if (r == q)
            r = (q + 1) % 9;
        if (rng.bernoulli(0.5))
            logical.cx(q, r);
        else
            logical.rx(q, rng.uniform(-1.0, 1.0));
    }
    const auto layout = transpiler::compute_layout(
        logical, topo, nullptr, transpiler::LayoutStrategy::DegreeGreedy);
    const auto routed = transpiler::route(logical, topo, layout);
    ASSERT_TRUE(transpiler::respects_coupling(routed.physical, topo));

    const auto sv_logical = sim::run_circuit(logical);
    const auto sv_physical = sim::run_circuit(routed.physical);
    for (std::uint64_t s = 0; s < sv_logical.dimension(); ++s) {
        std::uint64_t mapped = 0;
        for (int i = 0; i < 9; ++i)
            if (s & (std::uint64_t(1) << i))
                mapped |= std::uint64_t(1) << routed.final_layout[i];
        ASSERT_NEAR(std::abs(sv_logical.amplitude(s) -
                             sv_physical.amplitude(mapped)),
                    0.0, 1e-9);
    }
}

TEST(NoiseSampling, EvMatchesSurvivalPrediction)
{
    // Under the sampled channel, EV ~= survival * EV_ideal (readout off):
    // a direct statistical check of the global-depolarizing semantics.
    Rng rng(92);
    auto g = graph::barabasi_albert(8, 1, rng);
    graph::assign_random_pm1_weights(g, rng);
    const auto model = ising::IsingModel::from_graph(g);
    const auto tuned = qaoa::optimize_p1(model, 24);
    qaoa::BuildOptions opts;
    opts.include_measurements = false;
    const auto state = sim::run_circuit(
        qaoa::build_qaoa_circuit(model, opts)
            .bind({tuned.angles.gamma}, {tuned.angles.beta}));
    const double ev_ideal = state.expectation_ising(model);

    const std::vector<double> no_flip(8, 0.0);
    for (double survival : {1.0, 0.6, 0.2}) {
        const auto counts = sim::sample_noisy_counts(state, survival,
                                                     no_flip, 60000, rng);
        EXPECT_NEAR(counts.expectation(model), survival * ev_ideal,
                    0.12 * std::abs(ev_ideal) + 0.05)
            << "survival " << survival;
    }
}

TEST(TemplateEditing, MetricsInvariantAcrossSiblings)
{
    // Editing rewrites angles only: every structural metric must be
    // byte-identical across the 2^m sibling executables.
    Rng rng(93);
    auto g = graph::barabasi_albert(12, 2, rng);
    graph::assign_random_pm1_weights(g, rng);
    const auto model = ising::IsingModel::from_graph(g);
    const auto dev = device::make_device("ibm-cairo");

    const auto hotspots = frozenqubits::select_hotspots(
        model, 2, frozenqubits::HotspotPolicy::MaxDegree, rng);
    const auto subs = frozenqubits::freeze_all(model, hotspots);

    qaoa::BuildOptions build;
    build.keep_zero_linear_rz = true;
    const auto compiled = transpiler::compile(
        qaoa::build_qaoa_circuit(subs[0].model, build), dev);
    const auto base_metrics = compiled.metrics;

    for (std::size_t s = 1; s < subs.size(); ++s) {
        ASSERT_TRUE(
            frozenqubits::templates_compatible(subs[0].model,
                                               subs[s].model));
        const auto edited =
            frozenqubits::edit_template(compiled.physical, subs[s].model);
        const auto m = circuit::compute_metrics(edited);
        EXPECT_EQ(m.cx_gates, base_metrics.cx_gates);
        EXPECT_EQ(m.depth, base_metrics.depth);
        EXPECT_EQ(m.total_gates, base_metrics.total_gates);
    }
}

TEST(DecoderProperty, LiftedCostsAlwaysMatch)
{
    // Fuzz: random sub-problem chains of depth 1..3, random outcomes; the
    // lift must preserve the cost exactly (offset bookkeeping).
    Rng rng(94);
    for (int trial = 0; trial < 20; ++trial) {
        const int n = 6 + static_cast<int>(rng.uniform_int(std::uint64_t(5)));
        ising::IsingModel model(n);
        for (int i = 0; i < n; ++i)
            if (rng.bernoulli(0.4))
                model.set_linear(i, rng.normal());
        for (int i = 0; i < n; ++i)
            for (int j = i + 1; j < n; ++j)
                if (rng.bernoulli(0.4))
                    model.add_quadratic(i, j, rng.normal());
        model.set_offset(rng.normal());

        auto sub = frozenqubits::as_subproblem(model);
        const int depth =
            1 + static_cast<int>(rng.uniform_int(std::uint64_t(3)));
        for (int d = 0; d < depth; ++d) {
            const int pick = sub.original_of[rng.uniform_int(
                static_cast<std::uint64_t>(sub.original_of.size()))];
            sub = frozenqubits::freeze_spin(sub, pick, rng.sign());
        }
        sim::Counts counts(sub.model.num_spins());
        for (int k = 0; k < 20; ++k)
            counts.add(rng() &
                       ((std::uint64_t(1) << sub.model.num_spins()) - 1));
        EXPECT_NEAR(
            frozenqubits::decoding_consistency_error(model, sub, counts),
            0.0, 1e-9)
            << "trial " << trial;
    }
}

TEST(QuboThroughFrozenQubits, EndToEndOptimum)
{
    // QUBO -> Ising -> FrozenQubits sampling -> binary decode recovers the
    // brute-force QUBO optimum on a clean device.
    Rng rng(95);
    ising::QuboModel qubo(10);
    for (int i = 0; i < 10; ++i)
        qubo.add_linear(i, rng.uniform(-1.0, 1.0));
    const auto g = graph::barabasi_albert(10, 1, rng);
    for (const auto& e : g.edges())
        qubo.add_quadratic(e.u, e.v, rng.uniform(-2.0, 2.0));

    const auto model = qubo.to_ising();
    device::Device dev;
    dev.topology = device::make_grid(3, 4);
    dev.name = "clean";
    dev.calibration =
        device::Calibration::uniform(dev.topology, 1e-5, 1e-4, 5000.0);

    frozenqubits::DriverConfig config;
    config.num_freeze = 1;
    Rng solve_rng(96);
    const auto solved = frozenqubits::solve_with_sampling(
        model, dev, config, 8192, solve_rng);

    double best = 1e300;
    for (std::uint64_t bits = 0; bits < 1024; ++bits) {
        ising::BinaryVector x(10);
        for (int i = 0; i < 10; ++i)
            x[i] = (bits >> i) & 1;
        best = std::min(best, qubo.evaluate(x));
    }
    EXPECT_NEAR(qubo.evaluate(ising::spins_to_binary(
                    solved.best_assignment)),
                best, 1e-9);
}

TEST(MetricsProperty, DepthBoundedByGateCount)
{
    Rng rng(97);
    for (int trial = 0; trial < 10; ++trial) {
        circuit::Circuit c(5);
        const int gates =
            1 + static_cast<int>(rng.uniform_int(std::uint64_t(60)));
        for (int k = 0; k < gates; ++k) {
            const int q =
                static_cast<int>(rng.uniform_int(std::uint64_t(5)));
            if (rng.bernoulli(0.5))
                c.h(q);
            else
                c.cx(q, (q + 1) % 5);
        }
        const int depth = circuit::circuit_depth(c);
        EXPECT_LE(depth, static_cast<int>(c.size()));
        EXPECT_GE(depth, static_cast<int>(c.size() + 4) / 5)
            << "depth below the width-parallelism bound";
    }
}

TEST(EpsProperty, GateOrderInvariantOnDisjointQubits)
{
    const auto dev = device::make_grid_device(3, 3);
    circuit::Circuit a(9), b(9);
    a.cx(0, 1);
    a.cx(3, 4);
    a.cx(6, 7);
    b.cx(6, 7);
    b.cx(0, 1);
    b.cx(3, 4);
    EXPECT_DOUBLE_EQ(
        sim::expected_probability_of_success(a, dev.calibration),
        sim::expected_probability_of_success(b, dev.calibration));
}

TEST(HotspotProperty, FreezingHotspotsMaximizesDroppedEdges)
{
    // Greedy max-degree freezing must drop at least as many edges as any
    // random selection of the same size (verified over draws).
    Rng rng(98);
    auto g = graph::barabasi_albert(30, 1, rng);
    const auto model = ising::IsingModel::from_graph(g);
    const auto greedy = frozenqubits::select_hotspots(
        model, 3, frozenqubits::HotspotPolicy::MaxDegree, rng);
    const int greedy_drop =
        frozenqubits::dropped_edge_count(model, greedy);
    for (int trial = 0; trial < 20; ++trial) {
        const auto random = frozenqubits::select_hotspots(
            model, 3, frozenqubits::HotspotPolicy::Random, rng);
        EXPECT_GE(greedy_drop,
                  frozenqubits::dropped_edge_count(model, random));
    }
}

TEST(MirrorProperty, SolvedAndInferredDistributionsAgree)
{
    // Solving the mirror sub-problem directly must give the same best
    // cost as inferring it by flipping the solved distribution.
    Rng rng(99);
    auto g = graph::barabasi_albert(10, 1, rng);
    graph::assign_random_pm1_weights(g, rng);
    const auto model = ising::IsingModel::from_graph(g);

    const auto hotspots = frozenqubits::select_hotspots(
        model, 1, frozenqubits::HotspotPolicy::MaxDegree, rng);
    const auto subs = frozenqubits::freeze_all(model, hotspots);

    // Exhaustive "distribution" for sub 0; infer sub 1 by flipping.
    sim::Counts counts0(9);
    for (std::uint64_t s = 0; s < 512; ++s)
        counts0.add(s);
    const auto counts1 = counts0.flip_all_bits();
    EXPECT_NEAR(counts0.best(subs[0].model).cost,
                counts1.best(subs[1].model).cost, 1e-9);
}

} // namespace
