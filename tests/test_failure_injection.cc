/**
 * @file
 * Failure-injection battery: every public API must reject misuse with
 * fq::Error (not UB, not silent wrong answers). One test per API family.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include <unistd.h>

#include <sys/socket.h>

#include "common/error.h"
#include "device/catalog.h"
#include "engine/checkpoint.h"
#include "engine/engine.h"
#include "engine/solve_service.h"
#include "frozenqubits/decoder.h"
#include "frozenqubits/driver.h"
#include "frozenqubits/freeze.h"
#include "frozenqubits/hotspot.h"
#include "frozenqubits/template_editor.h"
#include "graph/generators.h"
#include "ising/exact_solver.h"
#include "ising/qubo.h"
#include "ising/sa_solver.h"
#include "ising/symmetry.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/wire.h"
#include "net/worker.h"
#include "net/worker_pool.h"
#include "optimizer/grid_search.h"
#include "optimizer/landscape.h"
#include "optimizer/nelder_mead.h"
#include "qaoa/analytic_p1.h"
#include "qaoa/multilayer.h"
#include "qaoa/qaoa_builder.h"
#include "runtime/runtime_model.h"
#include "solve_test_util.h"
#include "sim/counts.h"
#include "sim/noise_model.h"
#include "sim/statevector.h"
#include "sim/trajectory.h"
#include "transpiler/pipeline.h"

namespace {

using namespace fq;

TEST(FailureInjection, GraphGenerators)
{
    Rng rng(1);
    EXPECT_THROW(graph::barabasi_albert(1, 1, rng), Error);
    EXPECT_THROW(graph::barabasi_albert(5, 5, rng), Error);
    EXPECT_THROW(graph::random_regular(5, 5, rng), Error);
    EXPECT_THROW(graph::erdos_renyi(10, 1.5, rng), Error);
    EXPECT_THROW(graph::star(1), Error);
    EXPECT_THROW(graph::airport_network(5, 5, rng), Error);
}

TEST(FailureInjection, IsingModel)
{
    ising::IsingModel m(3);
    EXPECT_THROW(m.linear(3), Error);
    EXPECT_THROW(m.add_linear(-1, 1.0), Error);
    EXPECT_THROW(m.add_quadratic(0, 0, 1.0), Error);
    EXPECT_THROW(m.add_quadratic(0, 9, 1.0), Error);
    EXPECT_THROW(m.evaluate({1, 1}), Error);          // wrong width
    EXPECT_THROW(m.flip_delta({1, 1, 1}, 5), Error);  // bad index
    EXPECT_THROW(ising::spins_to_state({1, 0, -1}), Error); // 0 not a spin
}

TEST(FailureInjection, ExactAndAnnealingSolvers)
{
    ising::IsingModel empty(0);
    EXPECT_THROW(ising::solve_exact(empty), Error);
    ising::IsingModel big(30);
    EXPECT_THROW(ising::solve_exact(big, 26), Error);
    EXPECT_THROW(ising::all_costs(big), Error);

    ising::SaConfig bad;
    bad.num_restarts = 0;
    ising::IsingModel m(4);
    Rng rng(2);
    EXPECT_THROW(ising::solve_annealing(m, bad, rng), Error);
    EXPECT_THROW(ising::verify_flip_symmetry_exhaustive(big), Error);
}

TEST(FailureInjection, Qubo)
{
    ising::QuboModel q(2);
    EXPECT_THROW(q.add_quadratic(1, 1, 1.0), Error);
    EXPECT_THROW(q.add_linear(2, 1.0), Error);
    EXPECT_THROW(q.evaluate({1}), Error);
    EXPECT_THROW(q.evaluate({1, 2}), Error);
}

TEST(FailureInjection, CircuitAndBuilder)
{
    circuit::Circuit c(2);
    EXPECT_THROW(c.h(-1), Error);
    EXPECT_THROW(c.cx(1, 1), Error);
    EXPECT_THROW(c.remap_qubits({0}, 3), Error);
    c.rz(0, circuit::Parameter::gamma(0, 1.0));
    EXPECT_THROW(c.bind({}, {}), Error); // missing gamma layer

    ising::IsingModel m(2);
    qaoa::BuildOptions opts;
    opts.num_layers = 0;
    EXPECT_THROW(qaoa::build_qaoa_circuit(m, opts), Error);
}

TEST(FailureInjection, Statevector)
{
    EXPECT_THROW(sim::Statevector(0), Error);
    EXPECT_THROW(sim::Statevector(27), Error);
    sim::Statevector sv(2);
    EXPECT_THROW(sv.amplitude(4), Error);
    EXPECT_THROW(sv.apply_pauli(0, 4), Error);
    circuit::Circuit wide(3);
    EXPECT_THROW(sv.apply_circuit(wide), Error);
    circuit::Circuit param(2);
    param.rz(0, circuit::Parameter::gamma(0, 1.0));
    EXPECT_THROW(sv.apply_circuit(param), Error); // unbound parameter
    ising::IsingModel m(3);
    EXPECT_THROW(sv.expectation_ising(m), Error);
}

TEST(FailureInjection, CountsAndNoise)
{
    EXPECT_THROW(sim::Counts(0), Error);
    sim::Counts c(2);
    EXPECT_THROW(c.add(4), Error);
    ising::IsingModel m(2);
    EXPECT_THROW(c.expectation(m), Error); // empty distribution
    c.add(1);
    ising::IsingModel wrong(3);
    EXPECT_THROW(c.expectation(wrong), Error);
    sim::Counts other(3);
    EXPECT_THROW(c.merge(other), Error);

    sim::Statevector sv(2);
    Rng rng(3);
    EXPECT_THROW(
        sim::sample_noisy_counts(sv, 1.5, {0.0, 0.0}, 10, rng), Error);
    EXPECT_THROW(sim::sample_noisy_counts(sv, 0.5, {0.0}, 10, rng), Error);
    EXPECT_THROW(sim::approximation_ratio(-1.0, 2.0), Error);
}

TEST(FailureInjection, AttenuationAndTrajectory)
{
    const auto dev = device::make_device("ibm-montreal");
    circuit::Circuit too_wide(30);
    EXPECT_THROW(sim::compute_attenuation(too_wide, dev.calibration),
                 Error);

    sim::NoiseAttenuation att;
    att.gate_survival = {1.0};
    att.decoherence = {1.0};
    att.readout = {1.0};
    EXPECT_THROW(att.z_survival(2), Error);

    circuit::Circuit c(23);
    c.h(0);
    ising::IsingModel m(2);
    sim::TrajectoryConfig cfg;
    Rng rng(4);
    EXPECT_THROW(sim::simulate_trajectories(c, dev.calibration, m, {0, 1},
                                            cfg, rng),
                 Error); // > 22 qubits
}

TEST(FailureInjection, TranspilerPipeline)
{
    const auto dev = device::make_device("ibm-montreal");
    circuit::Circuit empty(0);
    EXPECT_THROW(transpiler::compile(empty, dev), Error);

    const auto topo = device::make_linear(3);
    circuit::Circuit c(2);
    c.cx(0, 1);
    EXPECT_THROW(transpiler::compute_layout(
                     c, topo, nullptr,
                     transpiler::LayoutStrategy::NoiseAdaptive),
                 Error); // noise-adaptive without calibration
}

TEST(FailureInjection, FrozenQubitsCore)
{
    ising::IsingModel m(4);
    m.add_quadratic(0, 1, 1.0);
    Rng rng(5);
    EXPECT_THROW(frozenqubits::select_hotspots(
                     m, 4, frozenqubits::HotspotPolicy::MaxDegree, rng),
                 Error); // cannot freeze all spins
    EXPECT_THROW(frozenqubits::freeze_all(m, {0, 0}), Error)
        << "freezing the same spin twice must fail";
    EXPECT_THROW(frozenqubits::dropped_edge_count(m, {9}), Error);

    auto sub = frozenqubits::as_subproblem(m);
    EXPECT_THROW(frozenqubits::lift_assignment(sub, {1, 1}), Error);

    const auto dev = device::make_device("ibm-montreal");
    frozenqubits::DriverConfig config;
    config.num_freeze = 0;
    EXPECT_THROW(frozenqubits::run_pipeline(m, dev, config), Error);
}

TEST(FailureInjection, DecoderRejectsEmpty)
{
    ising::IsingModel m(4);
    m.add_quadratic(0, 1, 1.0);
    const auto subs = frozenqubits::freeze_all(m, {0});
    std::vector<sim::Counts> empty_counts(2, sim::Counts(3));
    EXPECT_THROW(frozenqubits::decode_best(m, subs, empty_counts), Error);
    std::vector<sim::Counts> mismatched(1, sim::Counts(3));
    EXPECT_THROW(frozenqubits::decode_best(m, subs, mismatched), Error);
}

TEST(FailureInjection, TemplateEditor)
{
    ising::IsingModel a(3), b(3);
    a.add_quadratic(0, 1, 1.0);
    b.add_quadratic(0, 1, 1.0);
    b.add_quadratic(1, 2, 1.0);
    qaoa::BuildOptions opts;
    opts.keep_zero_linear_rz = true;
    const auto tmpl = qaoa::build_qaoa_circuit(a, opts);
    // Editing against a target with MORE quadratic terms than the
    // template has tags for must fail loudly.
    EXPECT_FALSE(frozenqubits::templates_compatible(a, b));
    const auto tmpl_b = qaoa::build_qaoa_circuit(b, opts);
    EXPECT_THROW(frozenqubits::edit_template(tmpl_b, a), Error);
}

TEST(FailureInjection, Optimizers)
{
    EXPECT_THROW(optimizer::nelder_mead(
                     [](const std::vector<double>&) { return 0.0; }, {}),
                 Error);
    optimizer::GridAxis bad{0.0, 1.0, 0};
    EXPECT_THROW(optimizer::grid_search_2d(
                     [](double, double) { return 0.0; }, bad, bad),
                 Error);
    EXPECT_THROW(optimizer::scan_landscape(
                     [](double, double) { return 0.0; }, 1, 5, 1.0, 1.0),
                 Error);
    optimizer::Landscape land;
    EXPECT_THROW(optimizer::landscape_stats(land), Error);
}

TEST(FailureInjection, RuntimeModel)
{
    runtime::WorkflowParams params;
    runtime::ExecutionModel exec{"x", 0, 0.0};
    EXPECT_THROW(runtime::end_to_end_runtime_s(1, exec, params), Error);
    runtime::ExecutionModel ok{"x", 1, 0.0};
    EXPECT_THROW(runtime::end_to_end_runtime_s(0, ok, params), Error);
}

TEST(FailureInjection, MultilayerBounds)
{
    ising::IsingModel big(21);
    EXPECT_THROW(qaoa::evaluate_multilayer(big, {0.1}, {0.1}), Error);
}

// ------------------------------------------------- durable solves --

/** Small durable solve that yields at least one snapshot. */
engine::SolveCheckpoint
sample_snapshot(const ising::IsingModel& model,
                const frozenqubits::DriverConfig& config)
{
    const auto dev = device::make_device("ibm-montreal");
    engine::ExecutionEngine eng(1);
    engine::SolveCheckpoint first;
    bool captured = false;
    eng.solve(model, dev, config, 128, config.seed,
              [&](const engine::SolveCheckpoint& ck) {
                  if (!captured) {
                      first = ck;
                      captured = true;
                  }
                  return true;
              });
    FQ_REQUIRE(captured, "workload produced no checkpoint boundary");
    return first;
}

ising::IsingModel
durable_model()
{
    Rng rng(11);
    auto g = graph::barabasi_albert(12, 2, rng);
    graph::assign_random_pm1_weights(g, rng);
    return ising::IsingModel::from_graph(g);
}

frozenqubits::DriverConfig
durable_config()
{
    frozenqubits::DriverConfig config;
    config.num_freeze = 3;
    config.checkpoint_interval = 1;
    config.seed = 7;
    return config;
}

TEST(FailureInjection, CheckpointFileCorruption)
{
    const auto model = durable_model();
    const auto config = durable_config();
    const auto snapshot = sample_snapshot(model, config);
    auto bytes = engine::encode_checkpoint(snapshot);
    ASSERT_GT(bytes.size(), 24u);

    // Truncated at every framing boundary and mid-payload.
    for (std::size_t keep : {std::size_t{0}, std::size_t{3},
                             std::size_t{7}, std::size_t{19},
                             bytes.size() - 1})
        EXPECT_THROW(engine::decode_checkpoint(bytes.data(), keep), Error);

    // A single bit flip anywhere in the payload must fail the CRC.
    for (std::size_t at : {std::size_t{20}, bytes.size() / 2,
                           bytes.size() - 1}) {
        auto flipped = bytes;
        flipped[at] ^= 0x40;
        EXPECT_THROW(
            engine::decode_checkpoint(flipped.data(), flipped.size()),
            Error);
    }

    // Wrong magic and unknown format version.
    auto bad_magic = bytes;
    bad_magic[0] ^= 0xFF;
    EXPECT_THROW(
        engine::decode_checkpoint(bad_magic.data(), bad_magic.size()),
        Error);
    auto bad_version = bytes;
    bad_version[4] = static_cast<std::uint8_t>(
        engine::kCheckpointFormatVersion + 1);
    EXPECT_THROW(
        engine::decode_checkpoint(bad_version.data(), bad_version.size()),
        Error);

    // The original bytes still decode — the injections above were the
    // only reason for failure.
    EXPECT_NO_THROW(engine::decode_checkpoint(bytes.data(), bytes.size()));

    // Unreadable path.
    EXPECT_THROW(engine::read_checkpoint_file("/nonexistent/ck.bin"),
                 Error);
}

TEST(FailureInjection, CheckpointUnknownNodeKindFrame)
{
    const auto model = durable_model();
    const auto config = durable_config();
    auto snapshot = sample_snapshot(model, config);
    ASSERT_FALSE(snapshot.folded.empty());

    // A frame tagged with a node kind this build's metadata table cannot
    // name (a snapshot from a newer reduction vocabulary): the CRC is
    // valid — encode_checkpoint frames the bogus tag faithfully — so only
    // the typed vocabulary check can catch it.
    auto foreign = snapshot;
    foreign.folded.front().arm_tag = 0x7E;
    const auto bytes = engine::encode_checkpoint(foreign);
    try {
        engine::decode_checkpoint(bytes.data(), bytes.size());
        FAIL() << "unknown node-kind tag decoded without error";
    } catch (const engine::CheckpointError& e) {
        EXPECT_NE(std::string(e.what()).find("unknown node kind"),
                  std::string::npos);
    }

    // A KNOWN tag on the wrong arm decodes (the frame is well formed)
    // but must fail the restore-time cross-check against the replanned
    // tree: these leaves run under Freeze, not Partition.
    auto wrong_arm = snapshot;
    wrong_arm.folded.front().arm_tag =
        engine::node_kind_info(engine::NodeKind::Partition).frame_tag;
    const auto wrong_bytes = engine::encode_checkpoint(wrong_arm);
    const auto decoded =
        engine::decode_checkpoint(wrong_bytes.data(), wrong_bytes.size());
    const auto dev = device::make_device("ibm-montreal");
    engine::ExecutionEngine eng(1);
    EXPECT_THROW(eng.resume(model, dev, config, 128, decoded),
                 engine::CheckpointError);
}

TEST(FailureInjection, CheckpointOfFinishedRequestRejected)
{
    const auto model = durable_model();
    const auto config = durable_config();
    const auto dev = device::make_device("ibm-montreal");
    engine::TemplateCache cache;
    Rng rng(config.seed);

    auto tree = engine::build_solve_tree(model, dev, config, cache, rng);
    auto schedule = engine::make_schedule(model, tree, config);
    engine::StreamingReducer reducer(model, tree, schedule);
    engine::WaveRequest request;
    request.model = &model;
    request.tree = &tree;
    request.schedule = &schedule;
    request.reducer = &reducer;
    request.dev = &dev;
    request.config = &config;
    request.shots = 128;
    request.seed = config.seed;
    request.dispatched = schedule.executed.size(); // pretend finished
    EXPECT_THROW(engine::capture_checkpoint(request), Error);
}

TEST(FailureInjection, ResumeIdentityMismatchesRejected)
{
    const auto model = durable_model();
    const auto config = durable_config();
    const auto dev = device::make_device("ibm-montreal");
    const auto snapshot = sample_snapshot(model, config);

    engine::ExecutionEngine eng(1);

    // Mismatched DriverConfig: a different freeze count replans a
    // different tree — the restore must refuse, not silently mix plans.
    auto other_config = config;
    other_config.num_freeze = 2;
    EXPECT_THROW(eng.resume(model, dev, other_config, 128, snapshot),
                 Error);

    // Mismatched model.
    Rng rng(99);
    auto g = graph::barabasi_albert(12, 2, rng);
    graph::assign_random_pm1_weights(g, rng);
    const auto other_model = ising::IsingModel::from_graph(g);
    EXPECT_THROW(eng.resume(other_model, dev, config, 128, snapshot),
                 Error);

    // Mismatched shot count and device.
    EXPECT_THROW(eng.resume(model, dev, config, 64, snapshot), Error);
    const auto other_dev = device::make_device("ibm-toronto");
    EXPECT_THROW(eng.resume(model, other_dev, config, 128, snapshot),
                 Error);
}

TEST(FailureInjection, DeadlineRejection)
{
    const auto model = durable_model();
    auto config = durable_config();
    config.checkpoint_interval = 0;
    config.deadline_cost_units = 1; // cheapest leaf costs 2^width >> 1
    const auto dev = device::make_device("ibm-montreal");
    engine::ExecutionEngine eng(1);
    EXPECT_THROW(eng.solve(model, dev, config, 128, config.seed), Error);

    engine::SolveService service(eng);
    EXPECT_THROW(
        service.submit(model, dev, config, 128, config.seed).get(), Error);
    const auto stats = service.stats();
    EXPECT_EQ(stats.requests_rejected_deadline, 1u);
}

// --------------------------------------------- remote worker faults --

/**
 * A hand-rolled worker that speaks the handshake correctly, then
 * misbehaves on its first ExecBatch. Each misbehavior exercises a
 * distinct validation layer in the coordinator: CorruptFrame fails the
 * CRC in read_frame, WrongLeafId fails the outstanding-ledger check,
 * WrongWidth fails the reply-vs-plan width check. All three must mark
 * the worker dead and hedge its leaves onto the local arm — with the
 * final results bitwise-equal to an uninterrupted local solve.
 */
struct MockWorker
{
    enum class Mode { CorruptFrame, WrongLeafId, WrongWidth };

    std::string address;
    net::Fd listen_fd;
    Mode mode;
    std::thread thread;

    explicit MockWorker(Mode mode)
        : address(mock_address()), listen_fd(net::listen_on(address)),
          mode(mode), thread([this] { serve(); })
    {
    }

    ~MockWorker()
    {
        if (listen_fd.valid())
            ::shutdown(listen_fd.get(), SHUT_RDWR);
        if (thread.joinable())
            thread.join();
    }

    static std::string mock_address()
    {
        static std::atomic<int> counter{0};
        return "unix:/tmp/fq_test_mockw_" + std::to_string(::getpid()) +
               "_" + std::to_string(counter.fetch_add(1)) + ".sock";
    }

    void serve()
    {
        try {
            net::Fd client = net::accept_client(listen_fd.get());
            net::write_frame(client.get(), net::kMsgWorkerHello,
                             net::encode_worker_hello(
                                 {net::kProtocolVersion, 1}));
            for (;;) {
                const auto frame = net::read_frame(client.get());
                if (frame.type == net::kMsgOpenSession) {
                    const auto open =
                        net::decode_open_session(frame.payload);
                    net::write_frame(
                        client.get(), net::kMsgSessionReady,
                        net::encode_session_ready({open.session_id, 1}));
                    continue;
                }
                if (frame.type != net::kMsgExecBatch)
                    return;
                const auto batch = net::decode_exec_batch(frame.payload);
                net::LeafCounts reply;
                reply.session_id = batch.session_id;
                reply.leaf_id = batch.leaf_ids.front();
                reply.width = 1;
                reply.histogram = {{0, 64}, {1, 64}};
                switch (mode) {
                case Mode::CorruptFrame: {
                    auto bytes = net::encode_frame(
                        net::kMsgLeafCounts,
                        net::encode_leaf_counts(reply));
                    bytes.back() ^= 0x01; // CRC now lies
                    (void)::write(client.get(), bytes.data(),
                                  bytes.size());
                    return;
                }
                case Mode::WrongLeafId:
                    reply.leaf_id = 1 << 20; // never dispatched
                    break;
                case Mode::WrongWidth:
                    reply.width = 1; // plan says wider
                    break;
                }
                net::write_frame(client.get(), net::kMsgLeafCounts,
                                 net::encode_leaf_counts(reply));
                return; // one poisoned reply, then hang up
            }
        } catch (const net::NetError&) {
            // coordinator hung up first: fine
        }
    }
};

class RemoteWorkerFaults
    : public ::testing::TestWithParam<MockWorker::Mode>
{
};

TEST_P(RemoteWorkerFaults, HedgedRedispatchKeepsResultsIdentical)
{
    Rng model_rng(31);
    auto g = graph::barabasi_albert(14, 3, model_rng);
    graph::assign_random_pm1_weights(g, model_rng);
    const auto model = ising::IsingModel::from_graph(g);
    const auto dev = device::make_device("ibm-montreal");
    frozenqubits::DriverConfig config;
    config.num_freeze = 3;
    config.threads = 1;
    config.seed = 33;

    engine::ExecutionEngine local_eng(config.threads);
    const auto expected =
        local_eng.solve(model, dev, config, 256, config.seed);

    MockWorker worker(GetParam());
    engine::ExecutionEngine eng(config.threads);
    net::WorkerPool pool(eng.local_leaf_executor(), eng.num_threads(),
                         {worker.address});
    eng.set_leaf_executor(&pool);
    const auto got = eng.solve(model, dev, config, 256, config.seed);

    EXPECT_DOUBLE_EQ(expected.best_cost, got.best_cost);
    EXPECT_EQ(expected.best_assignment, got.best_assignment);
    EXPECT_EQ(expected.from_subproblem, got.from_subproblem);
    ASSERT_EQ(expected.distributions.size(), got.distributions.size());
    for (std::size_t s = 0; s < expected.distributions.size(); ++s)
        EXPECT_EQ(expected.distributions[s].histogram(),
                  got.distributions[s].histogram());

    EXPECT_EQ(pool.live_workers(), 0) << "fault must mark the worker dead";
    EXPECT_GT(eng.last_diagnostics().leaves_redispatched, 0);
}

INSTANTIATE_TEST_SUITE_P(FailureInjection, RemoteWorkerFaults,
                         ::testing::Values(
                             MockWorker::Mode::CorruptFrame,
                             MockWorker::Mode::WrongLeafId,
                             MockWorker::Mode::WrongWidth));

std::string
worker_address()
{
    static std::atomic<int> counter{0};
    return "unix:/tmp/fq_test_fi_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1)) + ".sock";
}

TEST(FailureInjection, WorkerLeafFailureDefaultHooksPropagates)
{
    // A worker whose simulate throws (injected) reports kMsgLeafFailed.
    // With the default WaveHooks — the ExecutionEngine::solve path, no
    // failure hook — that must propagate out of the solve exactly like
    // a local leaf throw: NEVER a normally-completing solve with that
    // leaf's counts silently missing. And the worker is healthy, so it
    // must not be marked dead or have leaves hedged away from it.
    const auto model = test::ba_model(14, 3, 53);
    const auto dev = device::make_device("ibm-montreal");
    frozenqubits::DriverConfig config;
    config.num_freeze = 3;
    config.threads = 1;
    config.seed = 59;

    net::WorkerServer::Options wopts;
    wopts.fail_leaves = true;
    net::WorkerServer server(worker_address(), wopts);
    server.start();

    engine::ExecutionEngine eng(config.threads);
    net::WorkerPool pool(eng.local_leaf_executor(), eng.num_threads(),
                         {server.address()});
    eng.set_leaf_executor(&pool);
    try {
        eng.solve(model, dev, config, 256, config.seed);
        FAIL() << "worker-side leaf failure completed silently";
    } catch (const net::NetError& e) {
        EXPECT_NE(std::string(e.what()).find("injected leaf failure"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_EQ(pool.live_workers(), 1)
        << "a failing leaf is not a transport fault";
    server.stop();
}

TEST(FailureInjection, WorkerLeafFailureIsolatedToTenant)
{
    // Same injected worker under the service (hooks.failed set): only
    // the remote-capable tenant fails; the local-pinned co-tenant still
    // matches its uninterrupted local solve, and the worker stays alive.
    const auto dev = device::make_device("ibm-montreal");
    const auto model_a = test::ba_model(14, 3, 61);
    const auto model_b = test::ba_model(12, 3, 67);
    frozenqubits::DriverConfig config_a;
    config_a.num_freeze = 3;
    config_a.threads = 2;
    config_a.seed = 71;
    auto config_b = config_a;
    config_b.allow_remote = false;
    config_b.seed = 73;

    engine::ExecutionEngine ref(config_b.threads);
    const auto expected_b =
        ref.solve(model_b, dev, config_b, 256, config_b.seed);

    net::WorkerServer::Options wopts;
    wopts.fail_leaves = true;
    // Advertise far more capacity than the local arm: whatever wave
    // composition the service's admission timing produces, tenant A's
    // first remote-eligible leaf always scores lower on the worker, so
    // the injected failure is guaranteed to be exercised.
    wopts.threads = 8;
    net::WorkerServer server(worker_address(), wopts);
    server.start();

    engine::ExecutionEngine eng(2);
    net::WorkerPool pool(eng.local_leaf_executor(), eng.num_threads(),
                         {server.address()});
    eng.set_leaf_executor(&pool);
    engine::SolveService service(eng, {});

    auto ta = service.submit(model_a, dev, config_a, 256, config_a.seed);
    auto tb = service.submit(model_b, dev, config_b, 256, config_b.seed);
    service.drain();

    EXPECT_THROW(ta.get(), net::NetError);
    test::expect_solves_identical(expected_b, tb.get());
    EXPECT_EQ(pool.live_workers(), 1);
    server.stop();
}

} // namespace
