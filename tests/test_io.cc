/**
 * @file
 * Tests for the text model format: round trips, comments/blank-line
 * tolerance, and malformed-input rejection with line context.
 */
#include <gtest/gtest.h>

#include "common/error.h"
#include "graph/generators.h"
#include "ising/io.h"

namespace {

using namespace fq;
using namespace fq::ising;

TEST(ModelIo, RoundTripPreservesEverything)
{
    Rng rng(1);
    auto g = graph::barabasi_albert(12, 2, rng);
    graph::assign_random_pm1_weights(g, rng);
    auto model = IsingModel::from_graph(g);
    model.set_linear(3, 0.75);
    model.set_linear(9, -1.25);
    model.set_offset(2.5);

    const auto parsed = parse_model(to_text(model));
    EXPECT_EQ(parsed.num_spins(), model.num_spins());
    EXPECT_EQ(parsed.num_quadratic_terms(), model.num_quadratic_terms());
    EXPECT_DOUBLE_EQ(parsed.offset(), model.offset());
    for (int i = 0; i < model.num_spins(); ++i)
        EXPECT_DOUBLE_EQ(parsed.linear(i), model.linear(i));
    for (const auto& term : model.quadratic_terms())
        EXPECT_DOUBLE_EQ(parsed.quadratic(term.i, term.j),
                         term.coefficient);
}

TEST(ModelIo, EvaluationAgreesAfterRoundTrip)
{
    Rng rng(2);
    auto g = graph::complete(8);
    graph::assign_random_pm1_weights(g, rng);
    const auto model = IsingModel::from_graph(g);
    const auto parsed = parse_model(to_text(model));
    for (std::uint64_t s = 0; s < 256; s += 7)
        EXPECT_DOUBLE_EQ(parsed.evaluate_state(s), model.evaluate_state(s));
}

TEST(ModelIo, CommentsAndBlanksIgnored)
{
    const auto model = parse_model(
        "# a comment\n"
        "\n"
        "ising 3   # trailing comment\n"
        "offset 1.5\n"
        "h 0 -0.5\n"
        "\n"
        "J 0 2 2.0\n");
    EXPECT_EQ(model.num_spins(), 3);
    EXPECT_DOUBLE_EQ(model.offset(), 1.5);
    EXPECT_DOUBLE_EQ(model.linear(0), -0.5);
    EXPECT_DOUBLE_EQ(model.quadratic(0, 2), 2.0);
}

TEST(ModelIo, RejectsMalformedInput)
{
    EXPECT_THROW(parse_model(""), Error);                 // no header
    EXPECT_THROW(parse_model("h 0 1.0\n"), Error);        // term first
    EXPECT_THROW(parse_model("ising 0\n"), Error);        // empty model
    EXPECT_THROW(parse_model("ising 2\nising 2\n"), Error); // dup header
    EXPECT_THROW(parse_model("ising 2\nJ 0 0 1.0\n"), Error); // diagonal
    EXPECT_THROW(parse_model("ising 2\nJ 0 5 1.0\n"), Error); // range
    EXPECT_THROW(parse_model("ising 2\nbogus 1\n"), Error);   // keyword
    EXPECT_THROW(parse_model("ising 2\nh 0\n"), Error);       // truncated
}

TEST(ModelIo, ErrorsCarryLineNumbers)
{
    try {
        parse_model("ising 2\nJ 0 0 1.0\n");
        FAIL() << "should have thrown";
    } catch (const Error& e) {
        // The diagonal-term failure happens inside add_quadratic; the
        // header-level failures carry "at line N" context.
    }
    try {
        parse_model("ising 2\nbogus 1\n");
        FAIL() << "should have thrown";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    }
}

TEST(ModelIo, CanonicalFormIsStable)
{
    const std::string text = "ising 4\nJ 1 3 -1\nJ 0 2 1\nh 2 0.5\n";
    const auto once = to_text(parse_model(text));
    const auto twice = to_text(parse_model(once));
    EXPECT_EQ(once, twice);
}

} // namespace
