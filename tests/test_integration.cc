/**
 * @file
 * Cross-module integration tests: the paper's qualitative claims
 * reproduced end-to-end on seeded instances — FrozenQubits improves ARG on
 * power-law graphs, gains grow with m, hotspot selection beats random,
 * and the practical-scale (grid-device) pipeline holds together.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "device/catalog.h"
#include "frozenqubits/driver.h"
#include "frozenqubits/freeze.h"
#include "frozenqubits/hotspot.h"
#include "graph/generators.h"
#include "ising/ising_model.h"
#include "qaoa/qaoa_builder.h"
#include "sim/noise_model.h"
#include "transpiler/pipeline.h"

namespace {

using namespace fq;
using namespace fq::frozenqubits;

ising::IsingModel
ba_model(int n, int d, std::uint64_t seed)
{
    Rng rng(seed);
    auto g = graph::barabasi_albert(n, d, rng);
    graph::assign_random_pm1_weights(g, rng);
    return ising::IsingModel::from_graph(g);
}

TEST(Integration, FrozenQubitsImprovesArgOnPowerLawSweep)
{
    const auto dev = device::make_device("ibm-montreal");
    int wins = 0, total = 0;
    double gain_sum = 0.0;
    for (int n : {12, 16, 20}) {
        for (std::uint64_t seed : {1u, 2u, 3u}) {
            const auto model = ba_model(n, 1, seed);
            DriverConfig config;
            config.num_freeze = 1;
            const auto report = run_pipeline(model, dev, config);
            ++total;
            if (report.arg_fq <= report.arg_baseline + 1e-9)
                ++wins;
            gain_sum += report.improvement();
        }
    }
    // FrozenQubits must win on every power-law instance and deliver a
    // meaningful mean gain (the paper reports 6.75x for m=1 on BA d=1).
    EXPECT_EQ(wins, total);
    EXPECT_GT(gain_sum / total, 1.2);
}

TEST(Integration, FreezingMoreQubitsHelpsMore)
{
    const auto dev = device::make_device("ibm-montreal");
    const auto model = ba_model(18, 1, 4);

    DriverConfig m1;
    m1.num_freeze = 1;
    DriverConfig m2;
    m2.num_freeze = 2;
    const auto r1 = run_pipeline(model, dev, m1);
    const auto r2 = run_pipeline(model, dev, m2);

    // m=2 drops at least as many CNOTs as m=1 and must not be worse.
    EXPECT_LE(r2.executed[0].post_routing_cx,
              r1.executed[0].post_routing_cx);
    EXPECT_LE(r2.arg_fq, r1.arg_fq + 1e-9);
    // Quantum cost doubles: 2 executed circuits instead of 1.
    EXPECT_EQ(r1.num_executed, 1);
    EXPECT_EQ(r2.num_executed, 2);
}

TEST(Integration, HotspotSelectionBeatsRandomOnStar)
{
    // On an extreme hotspot graph the policy choice is decisive: freezing
    // the hub deletes every edge; a random pick almost surely does not.
    const int n = 14;
    graph::Graph g = graph::star(n);
    Rng wrng(5);
    graph::assign_random_pm1_weights(g, wrng);
    const auto model = ising::IsingModel::from_graph(g);
    Rng rng(6);

    const auto hub =
        select_hotspots(model, 1, HotspotPolicy::MaxDegree, rng);
    EXPECT_EQ(dropped_edge_count(model, hub), n - 1);

    int random_dropped = 0;
    for (int trial = 0; trial < 8; ++trial) {
        const auto pick =
            select_hotspots(model, 1, HotspotPolicy::Random, rng);
        random_dropped += dropped_edge_count(model, pick);
    }
    EXPECT_LT(random_dropped / 8.0, n - 1);
}

TEST(Integration, BaselineArgGrowsWithProblemSize)
{
    // Figure 8's baseline trend: fidelity decays rapidly with size.
    const auto dev = device::make_device("ibm-montreal");
    DriverConfig config;
    config.num_freeze = 1;
    double previous = -1.0;
    for (int n : {8, 14, 20}) {
        const auto model = ba_model(n, 1, 7);
        const auto report = run_pipeline(model, dev, config);
        EXPECT_GT(report.arg_baseline, previous);
        previous = report.arg_baseline;
    }
}

TEST(Integration, DenseGraphsSeeSmallerGains)
{
    // Figures 8 vs 10-11: power-law (d=1) gains exceed dense-graph gains
    // because hotspots carry a larger share of the CNOTs.
    const auto dev = device::make_device("ibm-montreal");
    DriverConfig config;
    config.num_freeze = 1;

    double gain_sparse = 0.0, gain_dense = 0.0;
    for (std::uint64_t seed : {11u, 12u, 13u}) {
        gain_sparse +=
            run_pipeline(ba_model(14, 1, seed), dev, config).improvement();
        gain_dense +=
            run_pipeline(ba_model(14, 3, seed), dev, config).improvement();
    }
    EXPECT_GT(gain_sparse, gain_dense);
}

TEST(Integration, PracticalScaleGridPipeline)
{
    // Section 6 in miniature: a 100-qubit BA instance on a 12x12 grid
    // device with the optimistic error model.
    const auto dev = device::make_grid_device(12, 12);
    const auto model = ba_model(100, 1, 21);

    Rng rng(22);
    const auto hotspots =
        select_hotspots(model, 3, HotspotPolicy::MaxDegree, rng);
    const auto subs = freeze_all(model, hotspots);
    EXPECT_EQ(subs.size(), 8u);

    // Compile baseline and the first sub-problem; count the reduction.
    const auto base_circuit = qaoa::build_qaoa_circuit(model);
    const auto base = transpiler::compile(base_circuit, dev);

    qaoa::BuildOptions opts;
    opts.keep_zero_linear_rz = true;
    const auto sub_circuit = qaoa::build_qaoa_circuit(subs[0].model, opts);
    const auto sub = transpiler::compile(sub_circuit, dev);

    EXPECT_LT(sub.metrics.cx_gates, base.metrics.cx_gates);
    EXPECT_LT(sub.metrics.depth, base.metrics.depth);

    const double eps_base = sim::expected_probability_of_success(
        base.physical, dev.calibration);
    const double eps_sub = sim::expected_probability_of_success(
        sub.physical, dev.calibration);
    EXPECT_GT(eps_sub, eps_base); // Figure 16's direction
}

TEST(Integration, DecoherenceDominatesOnSlowDevices)
{
    // Same circuit, two calibrations differing only in T1: the shorter
    // coherence must produce a strictly worse ARG.
    const auto model = ba_model(12, 1, 31);
    const auto logical = qaoa::build_qaoa_circuit(model);

    auto make_dev = [](double t1_us) {
        device::Device dev;
        dev.topology = device::make_grid(4, 4);
        dev.name = "grid";
        dev.calibration = device::Calibration::uniform(
            dev.topology, 5e-3, 2e-2, t1_us);
        return dev;
    };

    DriverConfig config;
    config.num_freeze = 1;
    const auto fast = run_pipeline(model, make_dev(500.0), config);
    const auto slow = run_pipeline(model, make_dev(20.0), config);
    EXPECT_GT(slow.arg_baseline, fast.arg_baseline);
}

TEST(Integration, ReportEpsConsistentWithCxCounts)
{
    const auto dev = device::make_device("ibm-auckland");
    const auto model = ba_model(16, 2, 41);
    DriverConfig config;
    config.num_freeze = 2;
    const auto report = run_pipeline(model, dev, config);

    // EPS must decay roughly exponentially in CX count: the sub-circuit
    // with fewer CXs cannot have smaller EPS.
    for (const auto& sub : report.executed) {
        EXPECT_GT(sub.eps, 0.0);
        EXPECT_GE(sub.eps, report.baseline.eps);
    }
}

} // namespace
