/**
 * @file
 * Reduction-vocabulary tests: the kind-metadata table and expander
 * registry contracts (every non-Leaf kind has an expander with working
 * scoring and lift hooks — the suite that fails when a new reduction is
 * registered half-wired), the deterministic edge sparsifier, and the
 * Sparsify node kind end to end: proxy structure, plan-time determinism,
 * the --no-sparsify escape hatch and thread/service bit-identity.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>

#include "device/catalog.h"
#include "engine/checkpoint.h"
#include "engine/engine.h"
#include "engine/expander.h"
#include "engine/scheduler.h"
#include "engine/solve_service.h"
#include "engine/solve_tree.h"
#include "engine/template_cache.h"
#include "graph/generators.h"
#include "graph/sparsify.h"
#include "ising/ising_model.h"
#include "solve_test_util.h"

namespace {

using namespace fq;
using namespace fq::engine;
using fq::test::ba_model;
using fq::test::expect_solves_identical;

SolveTree
build(const ising::IsingModel& model,
      const frozenqubits::DriverConfig& config)
{
    const auto dev = device::make_device("ibm-montreal");
    TemplateCache cache;
    Rng rng(config.seed);
    return build_solve_tree(model, dev, config, cache, rng);
}

frozenqubits::DriverConfig
sparsify_config(double keep)
{
    frozenqubits::DriverConfig config;
    config.num_freeze = 2;
    config.sparsify_keep = keep;
    config.seed = 11;
    return config;
}

TEST(KindMetadata, TableIsCompleteAndUnique)
{
    const auto& table = node_kind_table();
    ASSERT_EQ(table.size(), kNumNodeKinds);

    std::set<std::string> names, glyphs, diag_keys;
    std::set<int> tags;
    std::set<NodeKind> kinds;
    for (const auto& info : table) {
        EXPECT_TRUE(kinds.insert(info.kind).second);
        EXPECT_TRUE(names.insert(info.name).second);
        EXPECT_TRUE(glyphs.insert(info.glyph).second);
        EXPECT_TRUE(diag_keys.insert(info.diagnostics_key).second);
        EXPECT_TRUE(tags.insert(info.frame_tag).second);
        EXPECT_NE(info.frame_tag, kNoKindTag);
        EXPECT_FALSE(std::string(info.name).empty());
        EXPECT_FALSE(std::string(info.glyph).empty());
        EXPECT_FALSE(std::string(info.diagnostics_key).empty());
        // Lookup round trips.
        EXPECT_EQ(node_kind_info(info.kind).frame_tag, info.frame_tag);
        ASSERT_NE(node_kind_info_by_tag(info.frame_tag), nullptr);
        EXPECT_EQ(node_kind_info_by_tag(info.frame_tag)->kind, info.kind);
        EXPECT_LT(node_kind_index(info.kind), kNumNodeKinds);
    }
    // Unknown tags resolve to null, never to a wrong row.
    EXPECT_EQ(node_kind_info_by_tag(kNoKindTag), nullptr);
    EXPECT_EQ(node_kind_info_by_tag(0x7E), nullptr);
    // The printable name still routes through the table.
    EXPECT_STREQ(node_kind_name(NodeKind::Sparsify), "sparsify");
}

TEST(ExpanderRegistry, EveryNonLeafKindIsFullyWired)
{
    const auto& registry = ExpanderRegistry::instance();
    // Leaves are made, not expanded.
    EXPECT_EQ(registry.find(NodeKind::Leaf), nullptr);

    // A representative reduced node: the hooks must answer for it.
    SolveNode node;
    node.cut_edges = 3;
    node.cut_weight = 2.0;

    std::size_t wired = 0;
    for (const auto& info : node_kind_table()) {
        if (info.kind == NodeKind::Leaf)
            continue;
        // Registry completeness: a metadata row without an expander (or
        // one whose identity disagrees) is a half-registered reduction.
        const auto* expander = registry.find(info.kind);
        ASSERT_NE(expander, nullptr)
            << "node kind '" << info.name << "' has no expander";
        EXPECT_EQ(expander->info().kind, info.kind);
        // Scoring hook: finite, non-negative pessimism.
        const double penalty = expander->score_penalty(node);
        EXPECT_TRUE(std::isfinite(penalty)) << info.name;
        EXPECT_GE(penalty, 0.0) << info.name;
        // Lift hook: only reductions that lose couplings from the lifted
        // assignment may demand decode repair.
        if (info.kind == NodeKind::Partition)
            EXPECT_TRUE(expander->lift_requires_repair());
        else
            EXPECT_FALSE(expander->lift_requires_repair());
        ++wired;
    }
    EXPECT_EQ(wired, kNumNodeKinds - 1);
    // Consultation order is policy: every registered expander appears,
    // and recursive reductions are consulted before terminal wrappers.
    EXPECT_EQ(registry.all().size(), wired);
    EXPECT_TRUE(registry.all().back()->info().kind == NodeKind::Sparsify);
}

TEST(SparsifyEdges, KeepsSpanningStructureDeterministically)
{
    Rng rng(5);
    auto g = graph::barabasi_albert(24, 3, rng);
    graph::assign_random_pm1_weights(g, rng);
    std::vector<graph::EdgeRef> edges;
    for (const auto& e : g.edges())
        edges.push_back({e.u, e.v, e.weight});

    const auto plan = graph::sparsify_edges(24, edges, 0.3, 99);
    EXPECT_EQ(plan.kept + plan.pruned, static_cast<int>(edges.size()));
    EXPECT_GT(plan.pruned, 0);
    EXPECT_GT(plan.pruned_weight, 0.0);
    EXPECT_GE(plan.kept, plan.forest_edges);
    EXPECT_EQ(plan.forest_edges, graph::spanning_forest_size(24, edges));
    // Connectivity is preserved: the kept subgraph has exactly the
    // components of the full graph.
    EXPECT_EQ(graph::num_components(24, edges, plan.keep),
              graph::num_components(24, edges));

    // Same inputs, same proxy — bit for bit.
    const auto again = graph::sparsify_edges(24, edges, 0.3, 99);
    EXPECT_EQ(plan.keep, again.keep);

    // Position independence: shuffling the edge list never changes WHICH
    // edges survive (ranks hash endpoints, not positions), so plans are
    // stable under any upstream reordering.
    auto shuffled = edges;
    std::reverse(shuffled.begin(), shuffled.end());
    const auto reversed = graph::sparsify_edges(24, shuffled, 0.3, 99);
    std::set<std::pair<int, int>> kept_a, kept_b;
    for (std::size_t k = 0; k < edges.size(); ++k)
        if (plan.keep[k])
            kept_a.insert({std::min(edges[k].u, edges[k].v),
                           std::max(edges[k].u, edges[k].v)});
    for (std::size_t k = 0; k < shuffled.size(); ++k)
        if (reversed.keep[k])
            kept_b.insert({std::min(shuffled[k].u, shuffled[k].v),
                           std::max(shuffled[k].u, shuffled[k].v)});
    EXPECT_EQ(kept_a, kept_b);
}

TEST(SparsifyTree, WrapsLeavesWithConnectedProxies)
{
    const auto model = ba_model(16, 3, 7);
    const auto tree = build(model, sparsify_config(0.5));

    EXPECT_EQ(tree.nodes.front().kind, NodeKind::Freeze);
    EXPECT_FALSE(tree.flat()); // sparsify interposes a level
    ASSERT_FALSE(tree.leaves.empty());
    int sparsified = 0;
    for (const auto& leaf : tree.leaves) {
        ASSERT_EQ(leaf_arm_kind(tree, leaf.leaf_id), NodeKind::Sparsify);
        const auto& node =
            tree.nodes[static_cast<std::size_t>(leaf.node)];
        const auto& arm =
            tree.nodes[static_cast<std::size_t>(node.parent)];
        EXPECT_EQ(arm.kind, NodeKind::Sparsify);
        EXPECT_GT(arm.cut_edges, 0);
        EXPECT_GT(arm.cut_weight, 0.0);
        // The proxy drives ONLY the optimizer loop: fewer couplings than
        // the full leaf model, same spins, preserved connectivity.
        ASSERT_NE(leaf.proxy, nullptr);
        EXPECT_EQ(leaf.proxy->num_spins(), node.sub.model.num_spins());
        EXPECT_LT(leaf.proxy->num_quadratic_terms(),
                  node.sub.model.num_quadratic_terms());
        std::vector<graph::EdgeRef> full, kept;
        for (const auto& term : node.sub.model.quadratic_terms())
            full.push_back({term.i, term.j, term.coefficient});
        for (const auto& term : leaf.proxy->quadratic_terms())
            kept.push_back({term.i, term.j, term.coefficient});
        EXPECT_EQ(graph::num_components(leaf.proxy->num_spins(), kept),
                  graph::num_components(node.sub.model.num_spins(), full));
        // Sparsify loses no decode information (sampling runs the full
        // model), so its leaves never need greedy repair and mirrors
        // stay valid.
        EXPECT_FALSE(leaf.needs_repair);
        EXPECT_EQ(leaf.mirror_nodes.size(), 1u);
        ++sparsified;
    }
    EXPECT_EQ(sparsified, tree.num_executable_leaves());

    // Proxies are fixed at plan time: rebuilding the tree reproduces
    // them term for term (the plan fingerprint covers them).
    const auto again = build(model, sparsify_config(0.5));
    EXPECT_EQ(plan_fingerprint(tree), plan_fingerprint(again));
    for (std::size_t k = 0; k < tree.leaves.size(); ++k) {
        const auto& a = *tree.leaves[k].proxy;
        const auto& b = *again.leaves[k].proxy;
        ASSERT_EQ(a.num_quadratic_terms(), b.num_quadratic_terms());
        for (int t = 0; t < a.num_quadratic_terms(); ++t) {
            EXPECT_EQ(a.quadratic_terms()[t].i, b.quadratic_terms()[t].i);
            EXPECT_EQ(a.quadratic_terms()[t].j, b.quadratic_terms()[t].j);
        }
    }
}

TEST(SparsifyTree, DisabledLeavesTreeByteIdentical)
{
    const auto model = ba_model(16, 3, 7);
    // keep = 0 (the default / --no-sparsify) and keep >= 1 (nothing to
    // prune) must both leave the vocabulary exactly as before the
    // Sparsify expander existed.
    for (double keep : {0.0, 1.0}) {
        auto config = sparsify_config(keep);
        const auto tree = build(model, config);
        EXPECT_TRUE(tree.flat());
        for (const auto& node : tree.nodes)
            EXPECT_NE(node.kind, NodeKind::Sparsify);
        for (const auto& leaf : tree.leaves) {
            EXPECT_EQ(leaf.proxy, nullptr);
            EXPECT_EQ(leaf_arm_kind(tree, leaf.leaf_id),
                      NodeKind::Freeze);
        }
        frozenqubits::DriverConfig off;
        off.num_freeze = 2;
        off.seed = 11;
        EXPECT_EQ(plan_fingerprint(tree), plan_fingerprint(build(model, off)));
        // And the config fingerprint matches the pre-sparsify hash only
        // for the genuinely-off spelling (keep >= 1 plans the same tree
        // but is a distinct config).
        if (keep == 0.0)
            EXPECT_EQ(config_fingerprint(config), config_fingerprint(off));
    }
}

TEST(SparsifyTree, PenaltyChargesPrunedWeightIntoScores)
{
    const auto model = ba_model(16, 3, 7);
    const auto tree = build(model, sparsify_config(0.5));
    for (const auto& leaf : tree.leaves) {
        const auto& arm = tree.nodes[static_cast<std::size_t>(
            tree.nodes[static_cast<std::size_t>(leaf.node)].parent)];
        EXPECT_DOUBLE_EQ(lineage_score_penalty(tree, leaf.leaf_id),
                         0.25 * arm.cut_weight);
    }
}

TEST(SparsifySolve, BitIdenticalAcrossThreadsAndService)
{
    const auto model = ba_model(16, 3, 7);
    const auto dev = device::make_device("ibm-montreal");
    const auto config = sparsify_config(0.5);
    const int shots = 512;
    const std::uint64_t seed = 11;

    ExecutionEngine serial(1);
    ExecutionEngine parallel(4);
    const auto a = serial.solve(model, dev, config, shots, seed);
    const auto b = parallel.solve(model, dev, config, shots, seed);
    expect_solves_identical(a, b);
    // The executed leaves all ran under the sparsify arm and the
    // per-kind diagnostics say so.
    const auto& diag = parallel.last_diagnostics();
    const auto spr = node_kind_index(NodeKind::Sparsify);
    EXPECT_EQ(diag.kind_leaves_executed[spr], a.leaves_executed);
    EXPECT_GT(diag.kind_budget_units[spr], 0);

    // Solo vs service: a co-tenant never changes sparsified counts.
    ExecutionEngine shared(4);
    SolveService service(shared);
    auto ticket = service.submit(model, dev, config, shots, seed);
    auto co = service.submit(ba_model(12, 2, 3), dev, sparsify_config(0.0),
                             shots, 5);
    expect_solves_identical(a, ticket.get());
    co.get();
    const auto tenant = service.diagnostics(ticket.id());
    EXPECT_EQ(tenant.kind_leaves_executed[spr], a.leaves_executed);
}

} // namespace
