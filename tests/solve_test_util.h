/**
 * @file
 * Shared helpers for the engine/service/wave-loop suites. The bit-identity
 * comparator lives here ONCE so that when SampledSolve grows a field,
 * every determinism suite starts enforcing it in the same commit —
 * duplicated copies silently kept passing while proving less.
 */
#ifndef FQ_TESTS_SOLVE_TEST_UTIL_H
#define FQ_TESTS_SOLVE_TEST_UTIL_H

#include <gtest/gtest.h>

#include "frozenqubits/driver.h"
#include "graph/generators.h"
#include "ising/ising_model.h"

namespace fq::test {

/** Random ±1-weighted Barabási–Albert MaxCut instance. */
inline ising::IsingModel
ba_model(int n, int d, std::uint64_t seed)
{
    Rng rng(seed);
    auto g = graph::barabasi_albert(n, d, rng);
    graph::assign_random_pm1_weights(g, rng);
    return ising::IsingModel::from_graph(g);
}

/** Field-by-field bit-identity of two sampled solves — the determinism
 *  acceptance comparator (histograms and anytime trace included). */
inline void
expect_solves_identical(const frozenqubits::SampledSolve& a,
                        const frozenqubits::SampledSolve& b)
{
    EXPECT_DOUBLE_EQ(a.best_cost, b.best_cost);
    EXPECT_EQ(a.best_assignment, b.best_assignment);
    EXPECT_EQ(a.from_subproblem, b.from_subproblem);
    EXPECT_DOUBLE_EQ(a.best_quantum_cost, b.best_quantum_cost);
    EXPECT_EQ(a.best_quantum_leaf, b.best_quantum_leaf);
    EXPECT_EQ(a.leaves_total, b.leaves_total);
    EXPECT_EQ(a.leaves_executed, b.leaves_executed);
    EXPECT_EQ(a.degraded, b.degraded);
    EXPECT_EQ(a.deadline_trimmed, b.deadline_trimmed);
    ASSERT_EQ(a.distributions.size(), b.distributions.size());
    for (std::size_t s = 0; s < a.distributions.size(); ++s)
        EXPECT_EQ(a.distributions[s].histogram(),
                  b.distributions[s].histogram());
    ASSERT_EQ(a.anytime.size(), b.anytime.size());
    for (std::size_t p = 0; p < a.anytime.size(); ++p) {
        EXPECT_EQ(a.anytime[p].circuits, b.anytime[p].circuits);
        EXPECT_DOUBLE_EQ(a.anytime[p].incumbent_cost,
                         b.anytime[p].incumbent_cost);
        EXPECT_EQ(a.anytime[p].leaf, b.anytime[p].leaf);
    }
}

} // namespace fq::test

#endif // FQ_TESTS_SOLVE_TEST_UTIL_H
