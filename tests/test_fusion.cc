/**
 * @file
 * Property tests for the fused QAOA fast path: the diagonal-fusion circuit
 * pass, the strided gate kernels, the per-state weight/energy tables, and
 * the engine integration. The oracle is a self-contained naive simulator
 * (the pre-fusion per-state branchy loops) kept HERE, independent of the
 * library kernels, so a shared bug cannot cancel out.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstring>
#include <utility>
#include <vector>

#include "circuit/circuit.h"
#include "circuit/fusion.h"
#include "common/bitops.h"
#include "device/catalog.h"
#include "engine/engine.h"
#include "graph/generators.h"
#include "ising/ising_model.h"
#include "qaoa/multilayer.h"
#include "qaoa/qaoa_builder.h"
#include "sim/qaoa_kernel.h"
#include "sim/statevector.h"

namespace {

using namespace fq;
using fq::engine::ExecutionEngine;
using Amp = std::complex<double>;

// ---------------------------------------------------------------- oracle --

/** Naive branchy gate application (the pre-fusion reference loops). */
class NaiveState
{
  public:
    explicit NaiveState(int n) : n_(n), amps_(std::uint64_t(1) << n)
    {
        amps_[0] = {1.0, 0.0};
    }

    void
    uniform()
    {
        const double a = std::pow(0.5, 0.5 * n_);
        for (auto& amp : amps_)
            amp = {a, 0.0};
    }

    void
    apply(const circuit::Gate& g)
    {
        using circuit::GateType;
        const double theta = g.angle.coefficient;
        const std::uint64_t bit = std::uint64_t(1) << g.q0;
        const std::uint64_t dim = amps_.size();
        switch (g.type) {
          case GateType::H: {
            const double r = 1.0 / std::sqrt(2.0);
            for (std::uint64_t s = 0; s < dim; ++s) {
                if (s & bit)
                    continue;
                const Amp a0 = amps_[s], a1 = amps_[s | bit];
                amps_[s] = r * (a0 + a1);
                amps_[s | bit] = r * (a0 - a1);
            }
            break;
          }
          case GateType::X:
            for (std::uint64_t s = 0; s < dim; ++s)
                if (!(s & bit))
                    std::swap(amps_[s], amps_[s | bit]);
            break;
          case GateType::SX: {
            const Amp p{0.5, 0.5}, m{0.5, -0.5};
            for (std::uint64_t s = 0; s < dim; ++s) {
                if (s & bit)
                    continue;
                const Amp a0 = amps_[s], a1 = amps_[s | bit];
                amps_[s] = p * a0 + m * a1;
                amps_[s | bit] = m * a0 + p * a1;
            }
            break;
          }
          case GateType::RZ: {
            const Amp p0 = std::polar(1.0, -theta / 2.0);
            const Amp p1 = std::polar(1.0, theta / 2.0);
            for (std::uint64_t s = 0; s < dim; ++s)
                amps_[s] *= (s & bit) ? p1 : p0;
            break;
          }
          case GateType::RX: {
            const double c = std::cos(theta / 2.0);
            const Amp is{0.0, -std::sin(theta / 2.0)};
            for (std::uint64_t s = 0; s < dim; ++s) {
                if (s & bit)
                    continue;
                const Amp a0 = amps_[s], a1 = amps_[s | bit];
                amps_[s] = c * a0 + is * a1;
                amps_[s | bit] = is * a0 + c * a1;
            }
            break;
          }
          case GateType::RY: {
            const double c = std::cos(theta / 2.0);
            const double sn = std::sin(theta / 2.0);
            for (std::uint64_t s = 0; s < dim; ++s) {
                if (s & bit)
                    continue;
                const Amp a0 = amps_[s], a1 = amps_[s | bit];
                amps_[s] = c * a0 - sn * a1;
                amps_[s | bit] = sn * a0 + c * a1;
            }
            break;
          }
          case GateType::CX: {
            const std::uint64_t cb = std::uint64_t(1) << g.q0;
            const std::uint64_t tb = std::uint64_t(1) << g.q1;
            for (std::uint64_t s = 0; s < dim; ++s)
                if ((s & cb) && !(s & tb))
                    std::swap(amps_[s], amps_[s | tb]);
            break;
          }
          case GateType::SWAP: {
            const std::uint64_t ab = std::uint64_t(1) << g.q0;
            const std::uint64_t bb = std::uint64_t(1) << g.q1;
            for (std::uint64_t s = 0; s < dim; ++s)
                if ((s & ab) && !(s & bb))
                    std::swap(amps_[s ^ ab ^ bb], amps_[s]);
            break;
          }
          case GateType::MEASURE:
          case GateType::BARRIER:
            break;
        }
    }

    void
    run(const circuit::Circuit& c)
    {
        for (const auto& g : c.gates())
            apply(g);
    }

    const std::vector<Amp>& amps() const { return amps_; }

  private:
    int n_;
    std::vector<Amp> amps_;
};

double
max_amp_diff(const std::vector<Amp>& a, const sim::Statevector& b)
{
    EXPECT_EQ(a.size(), b.dimension());
    double worst = 0.0;
    for (std::uint64_t s = 0; s < a.size(); ++s)
        worst = std::max(worst, std::abs(a[s] - b.amplitude(s)));
    return worst;
}

/** Random Ising model: BA skeleton, random real h and J. */
ising::IsingModel
random_model(int n, std::uint64_t seed, bool with_linear)
{
    Rng rng(seed);
    auto g = graph::barabasi_albert(n, 2, rng);
    auto model = ising::IsingModel::from_graph(g);
    for (const auto& term : model.quadratic_terms())
        model.add_quadratic(term.i, term.j,
                            rng.uniform(-1.0, 1.0) - term.coefficient);
    if (with_linear)
        for (int i = 0; i < n; ++i)
            model.set_linear(i, rng.uniform(-1.0, 1.0));
    model.set_offset(rng.uniform(-1.0, 1.0));
    return model;
}

/** Quadratic (i, j) pairs in term order (the skeleton's slot labeling). */
std::vector<std::pair<int, int>>
quadratic_pairs_of(const ising::IsingModel& model)
{
    std::vector<std::pair<int, int>> pairs;
    pairs.reserve(model.quadratic_terms().size());
    for (const auto& term : model.quadratic_terms())
        pairs.emplace_back(term.i, term.j);
    return pairs;
}

/**
 * Copy of @p base with every coefficient re-randomized — the same labeled
 * structure, a different family member. Linear terms are refreshed only
 * where @p base has one, so the nonzero-h pattern (which shapes the circuit
 * when zero-h RZs are omitted) is preserved.
 */
ising::IsingModel
with_new_values(const ising::IsingModel& base, std::uint64_t seed)
{
    auto model = base;
    Rng rng(seed);
    for (const auto& term : model.quadratic_terms())
        model.add_quadratic(term.i, term.j,
                            rng.uniform(-2.0, 2.0) - term.coefficient);
    for (int i = 0; i < model.num_spins(); ++i)
        if (base.linear(i) != 0.0)
            model.set_linear(i, rng.uniform(-2.0, 2.0));
    model.set_offset(rng.uniform(-1.0, 1.0));
    return model;
}

bool
bits_equal(double a, double b)
{
    std::uint64_t ba = 0, bb = 0;
    std::memcpy(&ba, &a, sizeof(ba));
    std::memcpy(&bb, &b, sizeof(bb));
    return ba == bb;
}

/** Bit-level equality of two fused circuits (masks, coefficients, scales). */
void
expect_fused_bitwise_equal(const circuit::FusedCircuit& a,
                           const circuit::FusedCircuit& b)
{
    ASSERT_EQ(a.num_qubits, b.num_qubits);
    ASSERT_EQ(a.ops.size(), b.ops.size());
    for (std::size_t k = 0; k < a.ops.size(); ++k) {
        const auto& oa = a.ops[k];
        const auto& ob = b.ops[k];
        ASSERT_EQ(static_cast<int>(oa.kind), static_cast<int>(ob.kind))
            << "op " << k;
        ASSERT_EQ(static_cast<int>(oa.scale_kind),
                  static_cast<int>(ob.scale_kind))
            << "op " << k;
        ASSERT_EQ(oa.scale_layer, ob.scale_layer) << "op " << k;
        ASSERT_TRUE(bits_equal(oa.mixer_coefficient, ob.mixer_coefficient))
            << "op " << k;
        ASSERT_EQ(oa.qubits, ob.qubits) << "op " << k;
        ASSERT_EQ(oa.terms.size(), ob.terms.size()) << "op " << k;
        for (std::size_t t = 0; t < oa.terms.size(); ++t) {
            ASSERT_EQ(oa.terms[t].mask, ob.terms[t].mask)
                << "op " << k << " term " << t;
            ASSERT_TRUE(bits_equal(oa.terms[t].coefficient,
                                   ob.terms[t].coefficient))
                << "op " << k << " term " << t;
        }
    }
}

// --------------------------------------------------------------- kernels --

TEST(StridedKernels, MatchNaiveLoopsOnRandomCircuits)
{
    // Every library gate, random order and angles, vs the branchy oracle.
    for (std::uint64_t trial = 0; trial < 6; ++trial) {
        Rng rng(100 + trial);
        const int n = 3 + static_cast<int>(rng.uniform_int(4ull)); // 3..6
        circuit::Circuit c(n);
        for (int q = 0; q < n; ++q)
            c.h(q);
        for (int k = 0; k < 60; ++k) {
            const int q = static_cast<int>(
                rng.uniform_int(static_cast<std::uint64_t>(n)));
            const int r = (q + 1 + static_cast<int>(rng.uniform_int(
                                       static_cast<std::uint64_t>(n - 1)))) %
                          n;
            switch (rng.uniform_int(8ull)) {
              case 0: c.h(q); break;
              case 1: c.x(q); break;
              case 2: c.sx(q); break;
              case 3: c.rz(q, rng.uniform(-3.0, 3.0)); break;
              case 4: c.rx(q, rng.uniform(-3.0, 3.0)); break;
              case 5: c.ry(q, circuit::Parameter::constant(rng.uniform(-3.0, 3.0))); break;
              case 6: c.cx(q, r); break;
              default: c.swap(q, r); break;
            }
        }
        NaiveState oracle(n);
        oracle.run(c);
        const auto sv = sim::run_circuit(c);
        EXPECT_LE(max_amp_diff(oracle.amps(), sv), 1e-12)
            << "trial " << trial;
    }
}

TEST(StridedKernels, PauliKernelsMatchMatrices)
{
    // Y and Z kernels against explicit matrix action on a random state.
    Rng rng(7);
    circuit::Circuit prep(3);
    for (int q = 0; q < 3; ++q) {
        prep.h(q);
        prep.rz(q, rng.uniform(-2.0, 2.0));
        prep.ry(q, circuit::Parameter::constant(rng.uniform(-2.0, 2.0)));
    }
    for (int pauli = 1; pauli <= 3; ++pauli) {
        auto sv = sim::run_circuit(prep);
        std::vector<Amp> expect(sv.dimension());
        const std::uint64_t bit = 2; // qubit 1
        for (std::uint64_t s = 0; s < sv.dimension(); ++s) {
            const Amp a = sv.amplitude(s);
            switch (pauli) {
              case 1: expect[s ^ bit] = a; break;
              case 2:
                expect[s ^ bit] =
                    ((s & bit) ? Amp{0.0, -1.0} : Amp{0.0, 1.0}) * a;
                break;
              default: expect[s] = (s & bit) ? -a : a; break;
            }
        }
        sv.apply_pauli(1, pauli);
        double worst = 0.0;
        for (std::uint64_t s = 0; s < sv.dimension(); ++s)
            worst = std::max(worst, std::abs(expect[s] - sv.amplitude(s)));
        EXPECT_LE(worst, 1e-12) << "pauli " << pauli;
    }
}

// ---------------------------------------------------------- fusion pass  --

TEST(FusionPass, QaoaCircuitCollapsesToLayers)
{
    const auto model = random_model(8, 42, /*with_linear=*/true);
    qaoa::BuildOptions opts;
    opts.num_layers = 2;
    const auto c = qaoa::build_qaoa_circuit(model, opts);
    const auto fused = circuit::fuse_diagonals(c);

    // Per layer one Diagonal (linear RZs + all ZZ sandwiches share
    // gamma_l) and one Mixer (RX wall shares beta_l); the opening H wall
    // and the trailing barrier+measures pass through as gates.
    EXPECT_EQ(fused.num_diagonal_ops(), 2);
    EXPECT_EQ(fused.num_mixer_ops(), 2);
    const int n = model.num_spins();
    const int terms = model.num_quadratic_terms();
    // Fused per layer: n linear RZ + 3*terms sandwich gates + n RX.
    EXPECT_EQ(fused.gates_fused(), 2 * (n + 3 * terms + n));
    EXPECT_EQ(fused.source_gates, static_cast<int>(c.size()));

    // Diagonal term masks: one per spin (linear) + one per edge.
    for (const auto& op : fused.ops) {
        if (op.kind != circuit::FusedOp::Kind::Diagonal)
            continue;
        EXPECT_EQ(static_cast<int>(op.terms.size()), n + terms);
    }
}

TEST(FusionPass, BrokenSandwichIsNotFused)
{
    // CX-RZ-CX only fuses when the RZ sits on the CX target and the CXs
    // match exactly.
    circuit::Circuit c(3);
    c.cx(0, 1);
    c.rz(0, 0.5); // on the control, not the target
    c.cx(0, 1);
    c.cx(0, 1);
    c.rz(1, 0.5);
    c.cx(1, 0); // reversed second CX
    const auto fused = circuit::fuse_diagonals(c);
    // Only the plain RZs become (single-qubit) diagonal ops.
    for (const auto& op : fused.ops)
        if (op.kind == circuit::FusedOp::Kind::Diagonal)
            for (const auto& term : op.terms)
                EXPECT_EQ(1, popcount64(term.mask));

    // And semantics are preserved regardless.
    NaiveState oracle(3);
    oracle.run(c);
    sim::Statevector out;
    sim::FusedProgram(fused).run({}, {}, out);
    EXPECT_LE(max_amp_diff(oracle.amps(), out), 1e-12);
}

TEST(FusionPass, MixedParameterRunsSplit)
{
    // gamma_0 and gamma_1 RZs may not share one scale; constants join
    // constants only.
    circuit::Circuit c(2);
    c.rz(0, circuit::Parameter::gamma(0, 1.0));
    c.rz(1, circuit::Parameter::gamma(1, 1.0));
    c.rz(0, 0.25);
    c.rz(1, 0.75);
    const auto fused = circuit::fuse_diagonals(c);
    EXPECT_EQ(fused.num_diagonal_ops(), 3); // gamma0 | gamma1 | constants
}

// ------------------------------------------------------------- programs  --

TEST(FusedProgram, AmplitudeExactOnRandomQaoaCircuits)
{
    for (std::uint64_t trial = 0; trial < 8; ++trial) {
        Rng rng(500 + trial);
        const int n = 4 + static_cast<int>(rng.uniform_int(6ull)); // 4..9
        const int p = 1 + static_cast<int>(rng.uniform_int(3ull)); // 1..3
        const auto model = random_model(n, 900 + trial, trial % 2 == 0);

        qaoa::BuildOptions opts;
        opts.num_layers = p;
        opts.keep_zero_linear_rz = trial % 3 == 0;
        const auto c = qaoa::build_qaoa_circuit(model, opts);

        std::vector<double> gammas, betas;
        for (int l = 0; l < p; ++l) {
            gammas.push_back(rng.uniform(-2.0, 2.0));
            betas.push_back(rng.uniform(-2.0, 2.0));
        }

        NaiveState oracle(n);
        oracle.run(c.bind(gammas, betas));

        // Both LUT-compressed and raw-table programs must be exact.
        for (bool luts : {true, false}) {
            const sim::FusedProgram program(c, luts);
            EXPECT_TRUE(program.starts_uniform());
            sim::Statevector out;
            program.run(gammas, betas, out);
            EXPECT_LE(max_amp_diff(oracle.amps(), out), 1e-12)
                << "trial " << trial << " luts " << luts;
        }
    }
}

TEST(FusedProgram, LayersShareOneWeightTable)
{
    const auto model = random_model(8, 77, /*with_linear=*/true);
    qaoa::BuildOptions opts;
    opts.num_layers = 3;
    const sim::FusedProgram program(qaoa::build_qaoa_circuit(model, opts));
    EXPECT_EQ(program.num_diagonal_ops(), 3);
    // All three cost layers carry identical coefficients, so they compile
    // to ONE shared table.
    EXPECT_EQ(program.num_tables(), 1u);
}

TEST(DiagonalTable, UnitWeightsCompressToLevels)
{
    // +-1 edge weights: the weight table takes at most |E|+1 distinct
    // values, so the LUT kicks in; LUT and raw table must agree exactly.
    Rng rng(11);
    auto g = graph::barabasi_albert(10, 2, rng);
    graph::assign_random_pm1_weights(g, rng);
    const auto model = ising::IsingModel::from_graph(g);

    std::vector<circuit::ParityTerm> terms;
    for (const auto& term : model.quadratic_terms())
        terms.push_back({(std::uint64_t(1) << term.i) |
                             (std::uint64_t(1) << term.j),
                         term.coefficient});

    const sim::DiagonalTable lut(terms, 10, /*build_lut=*/true);
    const sim::DiagonalTable raw(terms, 10, /*build_lut=*/false);
    EXPECT_TRUE(lut.compressed());
    EXPECT_FALSE(raw.compressed());
    EXPECT_LE(lut.num_levels(),
              static_cast<std::size_t>(model.num_quadratic_terms() + 1));
    for (std::uint64_t s = 0; s < lut.dimension(); ++s)
        ASSERT_DOUBLE_EQ(lut.weight(s), raw.weight(s));

    sim::Statevector a(10), b(10);
    for (int q = 0; q < 10; ++q) {
        a.apply_h(q);
        b.apply_h(q);
    }
    lut.apply(a.data(), 0.37);
    raw.apply(b.data(), 0.37);
    EXPECT_NEAR(a.overlap(b), 1.0, 1e-12);
}

TEST(EnergyTable, MatchesModelEvaluateState)
{
    const auto model = random_model(9, 13, /*with_linear=*/true);
    const sim::EnergyTable table(model);
    for (std::uint64_t s = 0; s < (1ull << 9); ++s)
        ASSERT_NEAR(table.values()[s], model.evaluate_state(s), 1e-10);
}

TEST(EnergyTable, ExpectationMatchesStatevector)
{
    const auto model = random_model(8, 29, /*with_linear=*/true);
    qaoa::BuildOptions opts;
    opts.include_measurements = false;
    const auto c = qaoa::build_qaoa_circuit(model, opts).bind({0.4}, {0.3});
    const auto sv = sim::run_circuit(c);
    const sim::EnergyTable table(model);
    EXPECT_NEAR(table.expectation(sv), sv.expectation_ising(model), 1e-9);
}

// ---------------------------------------------------- evaluator + engine --

TEST(QaoaEvaluator, MatchesOneShotEvaluation)
{
    const auto model = random_model(8, 61, /*with_linear=*/false);
    qaoa::QaoaEvaluator evaluator(model, 2);
    for (std::uint64_t k = 0; k < 4; ++k) {
        Rng rng(700 + k);
        const std::vector<double> gammas{rng.uniform(-1.5, 1.5),
                                         rng.uniform(-1.5, 1.5)};
        const std::vector<double> betas{rng.uniform(-1.5, 1.5),
                                        rng.uniform(-1.5, 1.5)};
        const double fast = evaluator.energy(gammas, betas);
        const double slow =
            qaoa::evaluate_multilayer(model, gammas, betas).energy;
        EXPECT_NEAR(fast, slow, 1e-9);
    }
    EXPECT_EQ(evaluator.evaluations(), 4);
}

TEST(ExecutionEngine, FusedSolveBitIdenticalAcrossThreads)
{
    // The determinism guarantee must hold with the fast path on: the
    // fused program is compiled once in the shared cache and replayed per
    // task, so any thread count samples identical histograms.
    Rng rng_model(17);
    auto g = graph::barabasi_albert(11, 1, rng_model);
    graph::assign_random_pm1_weights(g, rng_model);
    const auto model = ising::IsingModel::from_graph(g);

    device::Device dev;
    dev.topology = device::make_grid(3, 4);
    dev.name = "grid-3x4-fusion";
    dev.calibration =
        device::Calibration::uniform(dev.topology, 1e-3, 5e-3, 500.0);

    frozenqubits::DriverConfig config;
    config.num_freeze = 2;
    ASSERT_TRUE(config.fuse_simulation); // fast path is the default

    ExecutionEngine serial(1);
    ExecutionEngine parallel(4);
    Rng rng_a(91), rng_b(91);
    const auto a = serial.solve(model, dev, config, 1024, rng_a);
    const auto b = parallel.solve(model, dev, config, 1024, rng_b);

    EXPECT_TRUE(serial.last_diagnostics().fused_simulation);
    EXPECT_DOUBLE_EQ(a.best_cost, b.best_cost);
    EXPECT_EQ(a.best_assignment, b.best_assignment);
    ASSERT_EQ(a.distributions.size(), b.distributions.size());
    for (std::size_t s = 0; s < a.distributions.size(); ++s)
        EXPECT_EQ(a.distributions[s].histogram(),
                  b.distributions[s].histogram());
}

TEST(ExecutionEngine, FusionOffMatchesFusionOnSolution)
{
    // --no-fusion A/B: paths differ only by ~1e-12 amplitude rounding, so
    // the decoded solution must coincide on a well-separated instance.
    Rng rng_model(23);
    auto g = graph::barabasi_albert(10, 1, rng_model);
    graph::assign_random_pm1_weights(g, rng_model);
    const auto model = ising::IsingModel::from_graph(g);

    device::Device dev;
    dev.topology = device::make_grid(3, 4);
    dev.name = "grid-3x4-ab";
    dev.calibration =
        device::Calibration::uniform(dev.topology, 1e-3, 5e-3, 500.0);

    frozenqubits::DriverConfig fused_config;
    fused_config.num_freeze = 2;
    auto naive_config = fused_config;
    naive_config.fuse_simulation = false;

    ExecutionEngine eng_fused(2);
    ExecutionEngine eng_naive(2);
    Rng rng_a(5), rng_b(5);
    const auto a = eng_fused.solve(model, dev, fused_config, 4096, rng_a);
    const auto b = eng_naive.solve(model, dev, naive_config, 4096, rng_b);

    EXPECT_TRUE(eng_fused.last_diagnostics().fused_simulation);
    EXPECT_FALSE(eng_naive.last_diagnostics().fused_simulation);
    EXPECT_DOUBLE_EQ(a.best_cost, b.best_cost);
    EXPECT_EQ(a.best_assignment, b.best_assignment);

    // Fusion-on populated the sim-program cache (via family-skeleton
    // binds under the default parametric-template tier); fusion-off did
    // not touch it.
    const auto fused_stats = eng_fused.template_cache().stats();
    EXPECT_GT(fused_stats.sim_fusions + fused_stats.family_binds, 0u);
    EXPECT_EQ(eng_naive.template_cache().stats().sim_lookups, 0u);
}

TEST(ExecutionEngine, SimProgramsServedFromCacheOnRepeatedSolves)
{
    Rng rng_model(31);
    auto g = graph::barabasi_albert(10, 1, rng_model);
    graph::assign_random_pm1_weights(g, rng_model);
    const auto model = ising::IsingModel::from_graph(g);
    const auto dev = device::make_device("ibm-montreal");

    frozenqubits::DriverConfig config;
    config.num_freeze = 2;

    ExecutionEngine eng(2);
    Rng rng_a(3), rng_b(3);
    eng.solve(model, dev, config, 512, rng_a);
    const auto first = eng.template_cache().stats();
    // Programs materialized via family-skeleton binds (the default tier)
    // or from-scratch fusions — either way, misses were paid once.
    EXPECT_GT(first.sim_fusions + first.family_binds, 0u);

    eng.solve(model, dev, config, 512, rng_b);
    const auto second = eng.template_cache().stats();
    EXPECT_EQ(second.sim_fusions, first.sim_fusions); // no rebuilds
    EXPECT_EQ(second.family_binds, first.family_binds);
    EXPECT_GT(second.sim_hits, first.sim_hits);
}

// ----------------------------------------------- parametric skeletons  --

TEST(ParametricFusion, BindMatchesFromScratchFusionBitwise)
{
    // The family-tier determinism contract: one skeleton per (graph class,
    // p), and every member's fused circuit is reproducible by a pure
    // coefficient patch — bit-for-bit, not just numerically close.
    struct Case
    {
        const char* name;
        ising::IsingModel base;
    };
    std::vector<Case> cases;
    cases.push_back({"ba", random_model(10, 201, /*with_linear=*/true)});
    {
        Rng rng(202);
        auto g = graph::complete(7); // SK topology
        graph::assign_gaussian_weights(g, rng);
        auto sk = ising::IsingModel::from_graph(g);
        for (int i = 0; i < sk.num_spins(); ++i)
            sk.set_linear(i, rng.uniform(-1.0, 1.0));
        cases.push_back({"sk", std::move(sk)});
    }

    for (const auto& test_case : cases) {
        for (int p : {1, 2}) {
            qaoa::BuildOptions opts;
            opts.num_layers = p;
            const auto pairs = quadratic_pairs_of(test_case.base);
            const auto skeleton = circuit::parametrize_fused(
                circuit::fuse_diagonals(
                    qaoa::build_qaoa_circuit(test_case.base, opts)),
                test_case.base.num_spins(), pairs);
            ASSERT_TRUE(skeleton.has_value()) << test_case.name;
            EXPECT_EQ(skeleton->num_slots,
                      test_case.base.num_spins() +
                          static_cast<int>(pairs.size()));

            // Multiple binds of ONE skeleton, re-randomized each time.
            for (std::uint64_t member = 0; member < 3; ++member) {
                const auto model = with_new_values(
                    test_case.base,
                    7000 + 10 * member + static_cast<std::uint64_t>(p));
                expect_fused_bitwise_equal(
                    circuit::bind_fused(*skeleton,
                                        engine::fused_slot_values(model)),
                    circuit::fuse_diagonals(
                        qaoa::build_qaoa_circuit(model, opts)));
            }
        }
    }
}

TEST(ParametricFusion, BoundProgramsSampleBitIdenticalStatevectors)
{
    // End-to-end through the simulator: a program compiled from a bound
    // skeleton and one compiled from scratch produce bitwise-identical
    // amplitudes at the same (gamma, beta) — so sampled counts from either
    // path coincide at any thread count.
    const auto base = random_model(9, 311, /*with_linear=*/true);
    qaoa::BuildOptions opts;
    opts.num_layers = 2;
    const auto skeleton = circuit::parametrize_fused(
        circuit::fuse_diagonals(qaoa::build_qaoa_circuit(base, opts)),
        base.num_spins(), quadratic_pairs_of(base));
    ASSERT_TRUE(skeleton.has_value());

    Rng rng(312);
    for (std::uint64_t member = 0; member < 3; ++member) {
        const auto model = with_new_values(base, 400 + member);
        const sim::FusedProgram bound(
            circuit::bind_fused(*skeleton, engine::fused_slot_values(model)),
            /*build_luts=*/true);
        const sim::FusedProgram scratch(
            circuit::fuse_diagonals(qaoa::build_qaoa_circuit(model, opts)),
            /*build_luts=*/true);
        const std::vector<double> gammas{rng.uniform(-2.0, 2.0),
                                         rng.uniform(-2.0, 2.0)};
        const std::vector<double> betas{rng.uniform(-2.0, 2.0),
                                        rng.uniform(-2.0, 2.0)};
        sim::Statevector a, b;
        bound.run(gammas, betas, a);
        scratch.run(gammas, betas, b);
        ASSERT_EQ(a.dimension(), b.dimension());
        for (std::uint64_t s = 0; s < a.dimension(); ++s) {
            const auto va = a.amplitude(s);
            const auto vb = b.amplitude(s);
            ASSERT_TRUE(bits_equal(va.real(), vb.real()) &&
                        bits_equal(va.imag(), vb.imag()))
                << "member " << member << " state " << s;
        }
    }
}

TEST(ParametricFusion, EdgeWidthsOneAnd63And64Qubits)
{
    // Mask-arithmetic edges: a single spin (only 1-bit masks) and chains at
    // 63/64 spins where linear masks reach the top bit of the uint64.
    // FusedCircuit level only — no 2^n tables at these widths.
    qaoa::BuildOptions opts;
    opts.num_layers = 1;

    {
        ising::IsingModel base(1);
        base.set_linear(0, 0.8);
        const auto skeleton = circuit::parametrize_fused(
            circuit::fuse_diagonals(qaoa::build_qaoa_circuit(base, opts)), 1,
            {});
        ASSERT_TRUE(skeleton.has_value());
        auto member = base;
        member.set_linear(0, -1.7);
        expect_fused_bitwise_equal(
            circuit::bind_fused(*skeleton,
                                engine::fused_slot_values(member)),
            circuit::fuse_diagonals(qaoa::build_qaoa_circuit(member, opts)));
    }

    for (int n : {63, 64}) {
        Rng rng(static_cast<std::uint64_t>(600 + n));
        ising::IsingModel base(n);
        for (int i = 0; i + 1 < n; ++i)
            base.add_quadratic(i, i + 1, rng.uniform(-1.0, 1.0));
        for (int i = 0; i < n; ++i)
            base.set_linear(i, rng.uniform(-1.0, 1.0));
        const auto skeleton = circuit::parametrize_fused(
            circuit::fuse_diagonals(qaoa::build_qaoa_circuit(base, opts)), n,
            quadratic_pairs_of(base));
        ASSERT_TRUE(skeleton.has_value()) << n;
        const auto member =
            with_new_values(base, static_cast<std::uint64_t>(9000 + n));
        const auto bound = circuit::bind_fused(
            *skeleton, engine::fused_slot_values(member));
        bool top_bit_seen = false;
        for (const auto& op : bound.ops)
            if (op.kind == circuit::FusedOp::Kind::Diagonal)
                for (const auto& term : op.terms)
                    top_bit_seen |= (term.mask >> (n - 1)) & 1u;
        EXPECT_TRUE(top_bit_seen) << n;
        expect_fused_bitwise_equal(
            bound,
            circuit::fuse_diagonals(qaoa::build_qaoa_circuit(member, opts)));
    }
}

TEST(ParametricFusion, RejectsCircuitsOutsideTheSlotScheme)
{
    // A constant-angle diagonal bakes a value the slots cannot re-derive.
    circuit::Circuit constant(2);
    constant.rz(0, 0.5);
    EXPECT_FALSE(
        circuit::parametrize_fused(circuit::fuse_diagonals(constant), 2, {})
            .has_value());

    // A passthrough rotation could carry problem values in its angle.
    circuit::Circuit rotation(2);
    rotation.ry(0, circuit::Parameter::constant(0.3));
    EXPECT_FALSE(
        circuit::parametrize_fused(circuit::fuse_diagonals(rotation), 2, {})
            .has_value());

    // A parity mask that is not a declared linear/quadratic term.
    const auto base = random_model(6, 77, /*with_linear=*/true);
    auto pairs = quadratic_pairs_of(base);
    pairs.pop_back(); // un-declare one edge
    qaoa::BuildOptions opts;
    EXPECT_FALSE(circuit::parametrize_fused(
                     circuit::fuse_diagonals(
                         qaoa::build_qaoa_circuit(base, opts)),
                     base.num_spins(), pairs)
                     .has_value());
}

TEST(EnergyTable, RebindMatchesFreshConstructionBitwise)
{
    // The in-place parameter patch must be indistinguishable from a fresh
    // table — same buffer, new coefficients, bitwise-equal energies.
    const auto first = random_model(10, 881, /*with_linear=*/true);
    const auto second = with_new_values(first, 882);
    sim::EnergyTable table(first);
    const double* buffer_before = table.values().data();
    table.rebind(second);
    EXPECT_EQ(buffer_before, table.values().data()); // reused, not realloc'd
    const sim::EnergyTable fresh(second);
    ASSERT_EQ(table.values().size(), fresh.values().size());
    EXPECT_EQ(0, std::memcmp(table.values().data(), fresh.values().data(),
                             fresh.values().size() * sizeof(double)));
}

} // namespace
