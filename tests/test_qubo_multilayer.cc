/**
 * @file
 * Tests for the QUBO front end (exact, invertible Ising conversion) and
 * multi-layer QAOA evaluation (statevector-based; p=2 must beat p=1's
 * ideal energy on instances where p=1 is not already optimal).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "graph/generators.h"
#include "ising/exact_solver.h"
#include "ising/qubo.h"
#include "qaoa/analytic_p1.h"
#include "qaoa/multilayer.h"
#include "qaoa/qaoa_builder.h"
#include "sim/statevector.h"

namespace {

using namespace fq;
using namespace fq::ising;

TEST(Qubo, EvaluateMatchesHandComputation)
{
    // f(x) = 2 x0 - 3 x1 + 4 x0 x1 + 1.
    QuboModel q(2);
    q.add_linear(0, 2.0);
    q.add_linear(1, -3.0);
    q.add_quadratic(0, 1, 4.0);
    q.add_constant(1.0);

    EXPECT_DOUBLE_EQ(q.evaluate({0, 0}), 1.0);
    EXPECT_DOUBLE_EQ(q.evaluate({1, 0}), 3.0);
    EXPECT_DOUBLE_EQ(q.evaluate({0, 1}), -2.0);
    EXPECT_DOUBLE_EQ(q.evaluate({1, 1}), 4.0);
}

class QuboConversion : public ::testing::TestWithParam<int>
{
};

TEST_P(QuboConversion, IsingEquivalenceOnRandomInstances)
{
    Rng rng(300 + GetParam());
    const int n = 3 + static_cast<int>(rng.uniform_int(std::uint64_t(5)));
    QuboModel q(n);
    for (int i = 0; i < n; ++i)
        q.add_linear(i, rng.uniform(-2.0, 2.0));
    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j)
            if (rng.bernoulli(0.5))
                q.add_quadratic(i, j, rng.uniform(-2.0, 2.0));
    q.add_constant(rng.uniform(-1.0, 1.0));

    const auto ising = q.to_ising();
    // Every binary assignment must evaluate identically.
    for (std::uint64_t bits = 0; bits < (1ull << n); ++bits) {
        BinaryVector x(n);
        for (int i = 0; i < n; ++i)
            x[i] = (bits >> i) & 1;
        ASSERT_NEAR(q.evaluate(x), ising.evaluate(binary_to_spins(x)),
                    1e-9);
    }

    // Round trip through from_ising preserves values too.
    const auto back = QuboModel::from_ising(ising);
    for (std::uint64_t bits = 0; bits < (1ull << n); ++bits) {
        BinaryVector x(n);
        for (int i = 0; i < n; ++i)
            x[i] = (bits >> i) & 1;
        ASSERT_NEAR(back.evaluate(x), q.evaluate(x), 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, QuboConversion,
                         ::testing::Range(0, 8));

TEST(Qubo, BinarySpinMaps)
{
    const BinaryVector x{0, 1, 1, 0};
    const auto z = binary_to_spins(x);
    EXPECT_EQ(z, (SpinVector{+1, -1, -1, +1}));
    EXPECT_EQ(spins_to_binary(z), x);
    EXPECT_THROW(binary_to_spins({0, 2}), Error);
}

TEST(Qubo, MinimaAgree)
{
    Rng rng(9);
    QuboModel q(8);
    for (int i = 0; i < 8; ++i)
        q.add_linear(i, rng.uniform(-1.0, 1.0));
    for (int i = 0; i < 8; ++i)
        for (int j = i + 1; j < 8; ++j)
            if (rng.bernoulli(0.4))
                q.add_quadratic(i, j, rng.uniform(-1.0, 1.0));

    const auto ising = q.to_ising();
    const auto sol = solve_exact(ising);
    // Brute-force the QUBO directly.
    double best = 1e300;
    for (std::uint64_t bits = 0; bits < 256; ++bits) {
        BinaryVector x(8);
        for (int i = 0; i < 8; ++i)
            x[i] = (bits >> i) & 1;
        best = std::min(best, q.evaluate(x));
    }
    EXPECT_NEAR(sol.min_cost, best, 1e-9);
}

TEST(Multilayer, StateExpectationsMatchDirectEv)
{
    Rng rng(10);
    auto g = graph::barabasi_albert(8, 1, rng);
    graph::assign_random_pm1_weights(g, rng);
    const auto model = IsingModel::from_graph(g);

    qaoa::BuildOptions opts;
    opts.num_layers = 2;
    opts.include_measurements = false;
    const auto circuit = qaoa::build_qaoa_circuit(model, opts)
                             .bind({0.3, 0.5}, {0.4, 0.2});
    const auto state = sim::run_circuit(circuit);
    const auto expectations = qaoa::state_expectations(model, state);
    EXPECT_NEAR(expectations.energy, state.expectation_ising(model), 1e-9);
    EXPECT_EQ(expectations.z.size(), 8u);
    EXPECT_EQ(expectations.zz.size(),
              model.quadratic_terms().size());
}

TEST(Multilayer, PEquals1MatchesAnalytic)
{
    Rng rng(11);
    auto g = graph::barabasi_albert(7, 2, rng);
    graph::assign_random_pm1_weights(g, rng);
    const auto model = IsingModel::from_graph(g);
    const auto sv = qaoa::evaluate_multilayer(model, {0.37}, {0.21});
    const auto analytic = qaoa::evaluate_p1(model, {0.37, 0.21});
    EXPECT_NEAR(sv.energy, analytic.energy, 1e-8);
}

TEST(Multilayer, SecondLayerImprovesIdealEnergy)
{
    // On most instances p=2 strictly improves the tuned ideal EV.
    Rng rng(12);
    auto g = graph::random_regular(10, 3, rng);
    graph::assign_random_pm1_weights(g, rng);
    const auto model = IsingModel::from_graph(g);

    const auto p1 = qaoa::optimize_multilayer(model, 1, 300);
    const auto p2 = qaoa::optimize_multilayer(model, 2, 600);
    EXPECT_LE(p2.energy, p1.energy + 1e-9);
    EXPECT_LT(p2.energy, p1.energy - 1e-3)
        << "p=2 should strictly beat p=1 on a 3-regular instance";

    // And the tuned p=1 energy matches the closed-form optimum closely.
    const auto analytic = qaoa::optimize_p1(model, 48);
    EXPECT_NEAR(p1.energy, analytic.energy, 0.05);
}

TEST(Multilayer, ValidatesInput)
{
    IsingModel model(4);
    model.add_quadratic(0, 1, 1.0);
    EXPECT_THROW(qaoa::evaluate_multilayer(model, {0.1}, {}), Error);
    EXPECT_THROW(qaoa::optimize_multilayer(model, 0), Error);
}

} // namespace
