/**
 * @file
 * Tests for the classical optimizers and the landscape scanner.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "optimizer/grid_search.h"
#include "optimizer/landscape.h"
#include "optimizer/nelder_mead.h"
#include "optimizer/spsa.h"

namespace {

using namespace fq;
using namespace fq::optimizer;

double
quadratic_bowl(const std::vector<double>& x)
{
    double s = 0.0;
    for (std::size_t d = 0; d < x.size(); ++d) {
        const double c = 1.0 + static_cast<double>(d);
        s += (x[d] - c) * (x[d] - c);
    }
    return s;
}

TEST(NelderMead, ConvergesOnQuadratic)
{
    NelderMeadOptions opts;
    opts.max_evaluations = 600;
    const auto result = nelder_mead(quadratic_bowl, {0.0, 0.0, 0.0}, opts);
    EXPECT_NEAR(result.best_point[0], 1.0, 1e-2);
    EXPECT_NEAR(result.best_point[1], 2.0, 1e-2);
    EXPECT_NEAR(result.best_point[2], 3.0, 1e-2);
    EXPECT_LT(result.best_value, 1e-3);
}

TEST(NelderMead, HandlesRosenbrock)
{
    const auto rosenbrock = [](const std::vector<double>& x) {
        return 100.0 * std::pow(x[1] - x[0] * x[0], 2) +
               std::pow(1.0 - x[0], 2);
    };
    NelderMeadOptions opts;
    opts.max_evaluations = 2000;
    opts.initial_step = 0.5;
    const auto result = nelder_mead(rosenbrock, {-1.0, 1.0}, opts);
    EXPECT_LT(result.best_value, 0.05);
}

TEST(NelderMead, OneDimensional)
{
    const auto f = [](const std::vector<double>& x) {
        return std::cos(x[0]) + 0.05 * x[0] * x[0];
    };
    // Stationary point: sin(x) = 0.1 x -> x ~= 2.852.
    const auto result = nelder_mead(f, {2.0});
    EXPECT_NEAR(result.best_point[0], 2.852, 0.05);
}

TEST(GridSearch, FindsBestCell)
{
    const auto f = [](double x, double y) {
        return (x - 0.30) * (x - 0.30) + (y - 0.70) * (y - 0.70);
    };
    GridAxis axis{0.0, 1.0, 100};
    const auto result = grid_search_2d(f, axis, axis);
    EXPECT_NEAR(result.best_x, 0.30, 0.011);
    EXPECT_NEAR(result.best_y, 0.70, 0.011);
    EXPECT_EQ(result.evaluations, 10000);
}

TEST(Spsa, ToleratesNoisyObjective)
{
    Rng noise_rng(1);
    auto noisy = [&noise_rng](const std::vector<double>& x) {
        return quadratic_bowl(x) + 0.05 * noise_rng.normal();
    };
    SpsaOptions opts;
    opts.iterations = 400;
    Rng rng(2);
    const auto result = spsa(noisy, {4.0, -2.0, 6.0}, opts, rng);
    // SPSA should land near (1, 2, 3) despite the noise.
    EXPECT_NEAR(result.best_point[0], 1.0, 0.5);
    EXPECT_NEAR(result.best_point[1], 2.0, 0.5);
    EXPECT_NEAR(result.best_point[2], 3.0, 0.5);
}

TEST(Landscape, ScanAndStats)
{
    // Smooth sinusoid: strong contrast, moderate gradient.
    const auto smooth = [](double x, double y) {
        return std::sin(x) * std::cos(y);
    };
    const auto land = scan_landscape(smooth, 40, 40, 2 * M_PI, 2 * M_PI);
    const auto stats = landscape_stats(land);
    EXPECT_NEAR(stats.min_value, -1.0, 0.05);
    EXPECT_NEAR(stats.max_value, 1.0, 0.05);
    EXPECT_GT(stats.contrast, 5.0);

    // Pure noise: contrast collapses toward the (max-min)/jitter floor.
    Rng rng(3);
    const auto noise = [&rng](double, double) { return rng.normal(); };
    const auto noisy_land =
        scan_landscape(noise, 40, 40, 2 * M_PI, 2 * M_PI);
    const auto noisy_stats = landscape_stats(noisy_land);
    EXPECT_LT(noisy_stats.contrast, stats.contrast);
}

TEST(Landscape, DownsampleAveragesBlocks)
{
    Landscape land;
    land.nx = 4;
    land.ny = 4;
    land.values.assign(16, 1.0);
    land.values[0] = 5.0;
    const auto coarse = downsample(land, 2, 2);
    EXPECT_EQ(coarse.nx, 2);
    EXPECT_EQ(coarse.ny, 2);
    EXPECT_DOUBLE_EQ(coarse.at(0, 0), 2.0); // (5+1+1+1)/4
    EXPECT_DOUBLE_EQ(coarse.at(1, 1), 1.0);
}

TEST(Landscape, AsciiRendering)
{
    const auto land = scan_landscape(
        [](double x, double y) { return x + y; }, 8, 4, 1.0, 1.0);
    const auto art = render_ascii(land);
    // 4 rows of 8 characters plus newlines.
    EXPECT_EQ(art.size(), 4u * 9u);
    EXPECT_NE(art.find('@'), std::string::npos);
    EXPECT_NE(art.find(' '), std::string::npos);
}

} // namespace
