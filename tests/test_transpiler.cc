/**
 * @file
 * Tests for the transpiler: layout validity, routing correctness (coupling
 * compliance plus full unitary-equivalence against the statevector), the
 * optimization passes' semantics preservation, and the compile pipeline.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.h"
#include "device/catalog.h"
#include "graph/generators.h"
#include "ising/ising_model.h"
#include "qaoa/qaoa_builder.h"
#include "sim/statevector.h"
#include "transpiler/layout.h"
#include "transpiler/passes.h"
#include "transpiler/pipeline.h"
#include "transpiler/router.h"

namespace {

using namespace fq;
using namespace fq::transpiler;

/** A random bound circuit exercising all gate kinds. */
circuit::Circuit
random_circuit(int n, int gates, Rng& rng)
{
    circuit::Circuit c(n);
    for (int k = 0; k < gates; ++k) {
        const int q = static_cast<int>(rng.uniform_int(std::uint64_t(n)));
        switch (rng.uniform_int(std::uint64_t(5))) {
          case 0:
            c.h(q);
            break;
          case 1:
            c.rz(q, rng.uniform(-1.5, 1.5));
            break;
          case 2:
            c.rx(q, rng.uniform(-1.5, 1.5));
            break;
          default: {
            int r = static_cast<int>(rng.uniform_int(std::uint64_t(n)));
            if (r == q)
                r = (q + 1) % n;
            c.cx(q, r);
            break;
          }
        }
    }
    return c;
}

/**
 * Compare the logical circuit's state against the physical circuit's state
 * under the final layout permutation (logical bit i lives at physical bit
 * final_layout[i]).
 */
void
expect_equivalent(const circuit::Circuit& logical,
                  const circuit::Circuit& physical,
                  const std::vector<int>& final_layout)
{
    const auto sv_logical = sim::run_circuit(logical);
    const auto sv_physical = sim::run_circuit(physical);

    const int n = logical.num_qubits();
    for (std::uint64_t s = 0; s < sv_logical.dimension(); ++s) {
        std::uint64_t mapped = 0;
        for (int i = 0; i < n; ++i)
            if (s & (std::uint64_t(1) << i))
                mapped |= std::uint64_t(1) << final_layout[i];
        const auto a = sv_logical.amplitude(s);
        const auto b = sv_physical.amplitude(mapped);
        ASSERT_NEAR(a.real(), b.real(), 1e-9) << "state " << s;
        ASSERT_NEAR(a.imag(), b.imag(), 1e-9) << "state " << s;
    }
}

TEST(Layout, TrivialIsIdentity)
{
    circuit::Circuit c(4);
    c.cx(0, 3);
    const auto topo = device::make_linear(6);
    const auto layout =
        compute_layout(c, topo, nullptr, LayoutStrategy::Trivial);
    EXPECT_EQ(layout, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Layout, ProducesDistinctPhysicalQubits)
{
    Rng rng(1);
    auto g = graph::barabasi_albert(10, 2, rng);
    const auto model = ising::IsingModel::from_graph(g);
    const auto c = qaoa::build_qaoa_circuit(model);
    const auto dev = device::make_device("ibm-montreal");

    for (auto strategy : {LayoutStrategy::DegreeGreedy,
                          LayoutStrategy::NoiseAdaptive}) {
        const auto layout =
            compute_layout(c, dev.topology, &dev.calibration, strategy);
        ASSERT_EQ(layout.size(), 10u);
        std::set<int> used(layout.begin(), layout.end());
        EXPECT_EQ(used.size(), 10u);
        for (int p : layout) {
            EXPECT_GE(p, 0);
            EXPECT_LT(p, 27);
        }
    }
}

TEST(Layout, HotspotLandsOnWellConnectedQubit)
{
    // Star interaction graph: logical 0 talks to everyone.
    circuit::Circuit c(5);
    for (int v = 1; v < 5; ++v)
        c.cx(0, v);
    const auto dev = device::make_device("ibm-montreal");
    const auto layout = compute_layout(c, dev.topology, &dev.calibration,
                                       LayoutStrategy::DegreeGreedy);
    // The hub must get a degree-3 site (max available on heavy-hex).
    EXPECT_EQ(dev.topology.degree(layout[0]), 3);
}

TEST(Layout, InteractionGraphCountsMultiplicity)
{
    circuit::Circuit c(3);
    c.cx(0, 1);
    c.cx(0, 1);
    c.cx(1, 2);
    const auto adj = interaction_graph(c);
    ASSERT_EQ(adj[0].size(), 1u);
    EXPECT_EQ(adj[0][0].first, 1);
    EXPECT_EQ(adj[0][0].second, 2);
    EXPECT_EQ(adj[1].size(), 2u);
}

TEST(Router, RespectsCouplingOnLinearChain)
{
    Rng rng(2);
    const auto topo = device::make_linear(6);
    const auto logical = random_circuit(6, 40, rng);
    std::vector<int> identity{0, 1, 2, 3, 4, 5};
    const auto routed = route(logical, topo, identity);
    EXPECT_TRUE(respects_coupling(routed.physical, topo));
}

class RouterEquivalence : public ::testing::TestWithParam<int>
{
};

TEST_P(RouterEquivalence, PreservesSemanticsOnRandomCircuits)
{
    Rng rng(100 + GetParam());
    const int n = 4 + static_cast<int>(rng.uniform_int(std::uint64_t(3)));
    const auto logical = random_circuit(n, 30, rng);

    // Route onto a linear chain of exactly n qubits so the statevector
    // comparison stays cheap.
    const auto topo = device::make_linear(n);
    std::vector<int> identity(n);
    for (int i = 0; i < n; ++i)
        identity[i] = i;

    const auto routed = route(logical, topo, identity);
    ASSERT_TRUE(respects_coupling(routed.physical, topo));
    expect_equivalent(logical, routed.physical, routed.final_layout);
}

INSTANTIATE_TEST_SUITE_P(RandomCircuits, RouterEquivalence,
                         ::testing::Range(0, 8));

TEST(Router, NoSwapsWhenAlreadyCoupled)
{
    const auto topo = device::make_linear(4);
    circuit::Circuit c(4);
    c.cx(0, 1);
    c.cx(1, 2);
    c.cx(2, 3);
    const auto routed = route(c, topo, {0, 1, 2, 3});
    EXPECT_EQ(routed.swaps_inserted, 0);
    EXPECT_EQ(routed.final_layout, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Router, DistantGateNeedsSwaps)
{
    const auto topo = device::make_linear(5);
    circuit::Circuit c(5);
    c.cx(0, 4);
    const auto routed = route(c, topo, {0, 1, 2, 3, 4});
    EXPECT_GE(routed.swaps_inserted, 3); // distance 4 needs >= 3 swaps
    EXPECT_TRUE(respects_coupling(routed.physical, topo));
}

TEST(Router, ValidatesLayout)
{
    const auto topo = device::make_linear(3);
    circuit::Circuit c(2);
    c.cx(0, 1);
    EXPECT_THROW(route(c, topo, {0}), Error);       // size mismatch
    EXPECT_THROW(route(c, topo, {0, 0}), Error);    // duplicate
    EXPECT_THROW(route(c, topo, {0, 9}), Error);    // out of range
}

TEST(Passes, CancelAdjacentCxPairs)
{
    circuit::Circuit c(3);
    c.cx(0, 1);
    c.cx(0, 1); // cancels with previous
    c.cx(1, 2);
    c.h(1);
    c.cx(1, 2); // does NOT cancel (H in between)
    const auto out = cancel_adjacent_cx(c);
    EXPECT_EQ(out.count(circuit::GateType::CX), 2);
}

TEST(Passes, CancelCascades)
{
    // c a a c -> outer pair becomes adjacent once inner pair cancels.
    circuit::Circuit c(2);
    c.cx(0, 1);
    c.cx(1, 0);
    c.cx(1, 0);
    c.cx(0, 1);
    const auto out = cancel_adjacent_cx(c);
    EXPECT_EQ(out.count(circuit::GateType::CX), 0);
}

TEST(Passes, MergeAdjacentRz)
{
    circuit::Circuit c(2);
    c.rz(0, 0.3);
    c.rz(0, 0.4); // merges -> 0.7
    c.h(0);
    c.rz(0, 0.1); // separated by H, stays
    c.rz(1, circuit::Parameter::gamma(0, 1.0, 5));
    c.rz(1, circuit::Parameter::gamma(0, 2.0, 5)); // same tag merges
    const auto out = merge_adjacent_rz(c);
    EXPECT_EQ(out.count(circuit::GateType::RZ), 3);
}

TEST(Passes, SymbolicMergeRespectsTags)
{
    circuit::Circuit c(1);
    c.rz(0, circuit::Parameter::gamma(0, 1.0, 1));
    c.rz(0, circuit::Parameter::gamma(0, 2.0, 2)); // different tag
    const auto out = merge_adjacent_rz(c);
    EXPECT_EQ(out.count(circuit::GateType::RZ), 2);
}

TEST(Passes, OptimizePreservesSemantics)
{
    Rng rng(3);
    for (int trial = 0; trial < 4; ++trial) {
        auto c = random_circuit(5, 40, rng);
        // Inject some removable structure.
        c.cx(0, 1);
        c.cx(0, 1);
        c.rz(2, 0.2);
        c.rz(2, -0.2);
        const auto optimized = optimize(c);
        EXPECT_LE(optimized.size(), c.size());
        const auto a = sim::run_circuit(c);
        const auto b = sim::run_circuit(optimized);
        EXPECT_NEAR(a.overlap(b), 1.0, 1e-9) << "trial " << trial;
    }
}

TEST(Pipeline, CompilesQaoaOntoMontreal)
{
    Rng rng(4);
    auto g = graph::barabasi_albert(12, 1, rng);
    graph::assign_random_pm1_weights(g, rng);
    const auto model = ising::IsingModel::from_graph(g);
    const auto logical = qaoa::build_qaoa_circuit(model);
    const auto dev = device::make_device("ibm-montreal");

    const auto result = compile(logical, dev);
    EXPECT_TRUE(respects_coupling(result.physical, dev.topology));
    EXPECT_EQ(result.physical.count(circuit::GateType::SWAP), 0); // decomposed
    EXPECT_GE(result.metrics.cx_gates, result.pre_routing_cx);
    EXPECT_EQ(result.pre_routing_cx, 2 * model.num_quadratic_terms());
    EXPECT_EQ(result.final_layout.size(), 12u);
    EXPECT_GT(result.metrics.depth, 0);
    EXPECT_GT(result.metrics.duration_ns, 0.0);
}

TEST(Pipeline, SwapOverheadGrowsWithDensity)
{
    // Fully-connected QAOA needs far more SWAP-CXs than a path graph —
    // the Figure 3 effect in miniature.
    Rng rng(5);
    const auto dev = device::make_grid_device(4, 4);

    const auto sparse_model =
        ising::IsingModel::from_graph(graph::path(10));
    const auto dense_model =
        ising::IsingModel::from_graph(graph::complete(10));

    const auto sparse =
        compile(qaoa::build_qaoa_circuit(sparse_model), dev);
    const auto dense = compile(qaoa::build_qaoa_circuit(dense_model), dev);

    const double sparse_blowup =
        static_cast<double>(sparse.metrics.cx_gates) / sparse.pre_routing_cx;
    const double dense_blowup =
        static_cast<double>(dense.metrics.cx_gates) / dense.pre_routing_cx;
    EXPECT_GT(dense_blowup, sparse_blowup);
}

TEST(Pipeline, RejectsOversizedCircuit)
{
    const auto dev = device::make_device("ibm-montreal");
    circuit::Circuit c(28);
    c.h(0);
    EXPECT_THROW(compile(c, dev), Error);
}

} // namespace
