/**
 * @file
 * Tests for the device substrate: topology constructors and their
 * structural invariants (heavy-hex degree bounds, published qubit counts,
 * grid distances), calibration synthesis ranges, and the IBMQ catalog.
 */
#include <gtest/gtest.h>

#include "common/error.h"
#include "device/calibration.h"
#include "device/catalog.h"
#include "device/topology.h"

namespace {

using namespace fq;
using namespace fq::device;

TEST(Topology, GridStructure)
{
    const auto t = make_grid(3, 4);
    EXPECT_EQ(t.num_qubits(), 12);
    // Grid edges: r*(c-1) + (r-1)*c = 3*3 + 2*4 = 17.
    EXPECT_EQ(t.num_couplings(), 17);
    EXPECT_TRUE(t.are_coupled(0, 1));
    EXPECT_TRUE(t.are_coupled(0, 4));
    EXPECT_FALSE(t.are_coupled(0, 5));
    // Manhattan distances.
    EXPECT_EQ(t.distance(0, 11), 2 + 3);
    EXPECT_EQ(t.distance(5, 5), 0);
}

TEST(Topology, DistanceSymmetricAndTriangle)
{
    const auto t = make_grid(5, 5);
    for (int a = 0; a < 25; a += 3) {
        for (int b = 0; b < 25; b += 4) {
            EXPECT_EQ(t.distance(a, b), t.distance(b, a));
            for (int c = 0; c < 25; c += 7)
                EXPECT_LE(t.distance(a, b),
                          t.distance(a, c) + t.distance(c, b));
        }
    }
}

TEST(Topology, LinearChain)
{
    const auto t = make_linear(6);
    EXPECT_EQ(t.num_couplings(), 5);
    EXPECT_EQ(t.distance(0, 5), 5);
    EXPECT_EQ(t.degree(0), 1);
    EXPECT_EQ(t.degree(3), 2);
}

TEST(Topology, AllToAll)
{
    const auto t = make_all_to_all(5);
    EXPECT_EQ(t.num_couplings(), 10);
    EXPECT_EQ(t.distance(0, 4), 1);
}

TEST(Topology, Falcon27Structure)
{
    const auto t = make_falcon_27();
    EXPECT_EQ(t.num_qubits(), 27);
    EXPECT_EQ(t.num_couplings(), 28);
    // Heavy-hex: degree never exceeds 3; the lattice is connected.
    int deg3 = 0;
    for (int q = 0; q < 27; ++q) {
        EXPECT_LE(t.degree(q), 3);
        EXPECT_GE(t.degree(q), 1);
        if (t.degree(q) == 3)
            ++deg3;
    }
    EXPECT_GT(deg3, 0);
    EXPECT_EQ(t.coupling_graph().num_connected_components(), 1);
}

TEST(Topology, HeavyHexPublishedQubitCounts)
{
    // rows=5, len=11 -> 65 qubits (Hummingbird class).
    const auto hummingbird = make_heavy_hex(5, 11, "hh65");
    EXPECT_EQ(hummingbird.num_qubits(), 65);
    // rows=7, len=15 -> 127 qubits (Eagle class).
    const auto eagle = make_heavy_hex(7, 15, "hh127");
    EXPECT_EQ(eagle.num_qubits(), 127);

    for (const auto* t : {&hummingbird, &eagle}) {
        EXPECT_EQ(t->coupling_graph().num_connected_components(), 1);
        for (int q = 0; q < t->num_qubits(); ++q)
            EXPECT_LE(t->degree(q), 3) << "heavy-hex degree bound";
    }
}

TEST(Calibration, SynthesizedValuesInPhysicalRanges)
{
    const auto topo = make_falcon_27();
    CalibrationProfile profile;
    const auto cal = Calibration::synthesize(topo, profile, 42);

    EXPECT_EQ(cal.num_qubits(), 27);
    for (int q = 0; q < 27; ++q) {
        const auto& p = cal.qubit(q);
        EXPECT_GT(p.t1_us, 10.0);
        EXPECT_LT(p.t1_us, 1000.0);
        EXPECT_LE(p.t2_us, 2.0 * p.t1_us);
        EXPECT_GT(p.readout_error, 0.0);
        EXPECT_LT(p.readout_error, 0.5);
        EXPECT_GT(p.sq_error, 0.0);
        EXPECT_LT(p.sq_error, 0.1);
    }
    for (const auto& e : topo.coupling_graph().edges()) {
        const double eps = cal.cx_error(e.u, e.v);
        EXPECT_GT(eps, 0.0);
        EXPECT_LT(eps, 0.5);
    }
    EXPECT_NEAR(cal.average_cx_error(), profile.cx_error_mean,
                profile.cx_error_mean); // same order of magnitude
}

TEST(Calibration, DeterministicPerSeed)
{
    const auto topo = make_falcon_27();
    CalibrationProfile profile;
    const auto a = Calibration::synthesize(topo, profile, 7);
    const auto b = Calibration::synthesize(topo, profile, 7);
    const auto c = Calibration::synthesize(topo, profile, 8);
    EXPECT_DOUBLE_EQ(a.qubit(5).t1_us, b.qubit(5).t1_us);
    EXPECT_NE(a.qubit(5).t1_us, c.qubit(5).t1_us);
}

TEST(Calibration, UniformModel)
{
    const auto topo = make_grid(4, 4);
    const auto cal = Calibration::uniform(topo, 1e-3, 5e-3, 500.0);
    for (int q = 0; q < topo.num_qubits(); ++q) {
        EXPECT_DOUBLE_EQ(cal.qubit(q).readout_error, 5e-3);
        EXPECT_DOUBLE_EQ(cal.qubit(q).t1_us, 500.0);
    }
    for (const auto& e : topo.coupling_graph().edges())
        EXPECT_DOUBLE_EQ(cal.cx_error(e.u, e.v), 1e-3);
}

TEST(Calibration, CxErrorRequiresCoupledPair)
{
    const auto topo = make_linear(4);
    const auto cal = Calibration::uniform(topo, 1e-2, 1e-2, 100.0);
    EXPECT_THROW(cal.cx_error(0, 3), Error);
}

TEST(Catalog, AllEightPaperDevices)
{
    const auto names = ibm_device_names();
    ASSERT_EQ(names.size(), 8u);
    const auto devices = all_ibm_devices();
    ASSERT_EQ(devices.size(), 8u);

    for (const auto& dev : devices) {
        EXPECT_GE(dev.num_qubits(), 27);
        EXPECT_LE(dev.num_qubits(), 127);
        EXPECT_EQ(dev.calibration.num_qubits(), dev.num_qubits());
    }
    // Washington is the 127-qubit Eagle; the Falcons are 27.
    EXPECT_EQ(make_device("ibm-washington").num_qubits(), 127);
    EXPECT_EQ(make_device("ibm-brooklyn").num_qubits(), 65);
    EXPECT_EQ(make_device("ibm-montreal").num_qubits(), 27);
}

TEST(Catalog, CalibrationIsStablePerDevice)
{
    const auto a = make_device("ibm-hanoi");
    const auto b = make_device("ibm-hanoi");
    EXPECT_DOUBLE_EQ(a.calibration.qubit(3).readout_error,
                     b.calibration.qubit(3).readout_error);
}

TEST(Catalog, UnknownDeviceRejected)
{
    EXPECT_THROW(make_device("ibm-nonexistent"), Error);
}

TEST(Catalog, GridDeviceOptimisticModel)
{
    const auto dev = make_grid_device(10, 10);
    EXPECT_EQ(dev.num_qubits(), 100);
    EXPECT_DOUBLE_EQ(dev.calibration.qubit(0).t1_us, 500.0);
    EXPECT_DOUBLE_EQ(dev.calibration.qubit(0).readout_error, 5e-3);
}

} // namespace
