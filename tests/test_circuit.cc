/**
 * @file
 * Tests for the circuit IR: builder helpers, parameter binding and
 * resolution, qubit remapping, SWAP decomposition, metrics (counts, depth,
 * duration), and the printers.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.h"
#include "circuit/metrics.h"
#include "circuit/printer.h"
#include "common/error.h"
#include "sim/statevector.h"

namespace {

using namespace fq;
using namespace fq::circuit;

TEST(Parameter, ResolveKinds)
{
    const std::vector<double> gammas{0.3, 0.7};
    const std::vector<double> betas{0.1};
    EXPECT_DOUBLE_EQ(Parameter::constant(1.5).resolve(gammas, betas), 1.5);
    EXPECT_DOUBLE_EQ(Parameter::gamma(1, 2.0).resolve(gammas, betas), 1.4);
    EXPECT_DOUBLE_EQ(Parameter::beta(0, -4.0).resolve(gammas, betas), -0.4);
    EXPECT_THROW(Parameter::gamma(2, 1.0).resolve(gammas, betas), Error);
}

TEST(Circuit, BuilderAndCounts)
{
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.rz(1, 0.5);
    c.cx(0, 1);
    c.swap(1, 2);
    c.rx(2, Parameter::beta(0, 2.0));
    c.measure_all();

    EXPECT_EQ(c.count(GateType::H), 1);
    EXPECT_EQ(c.count(GateType::CX), 2);
    EXPECT_EQ(c.count(GateType::SWAP), 1);
    EXPECT_EQ(c.count(GateType::MEASURE), 3);
    EXPECT_EQ(c.cx_count(), 2 + 3); // SWAP = 3 CX
    EXPECT_TRUE(c.is_parametric());
    EXPECT_EQ(c.num_layers(), 1);
}

TEST(Circuit, ValidatesQubits)
{
    Circuit c(2);
    EXPECT_THROW(c.h(2), Error);
    EXPECT_THROW(c.cx(0, 0), Error);
    EXPECT_THROW(c.cx(0, 5), Error);
}

TEST(Circuit, BindResolvesAllParameters)
{
    Circuit c(2);
    c.rz(0, Parameter::gamma(0, 3.0));
    c.rx(1, Parameter::beta(0, 2.0));
    const auto bound = c.bind({0.5}, {0.25});
    EXPECT_FALSE(bound.is_parametric());
    EXPECT_DOUBLE_EQ(bound.gates()[0].angle.coefficient, 1.5);
    EXPECT_DOUBLE_EQ(bound.gates()[1].angle.coefficient, 0.5);
}

TEST(Circuit, RemapQubits)
{
    Circuit c(2);
    c.cx(0, 1);
    c.measure(0);
    const auto mapped = c.remap_qubits({4, 2}, 5);
    EXPECT_EQ(mapped.num_qubits(), 5);
    EXPECT_EQ(mapped.gates()[0].q0, 4);
    EXPECT_EQ(mapped.gates()[0].q1, 2);
    EXPECT_EQ(mapped.gates()[1].q0, 4);
}

TEST(Circuit, DecomposeSwapsPreservesSemantics)
{
    Circuit c(3);
    c.h(0);
    c.rx(1, 0.37);
    c.swap(0, 2);
    c.swap(1, 2);
    const auto decomposed = c.decompose_swaps();
    EXPECT_EQ(decomposed.count(GateType::SWAP), 0);
    EXPECT_EQ(decomposed.count(GateType::CX), 6);

    const auto a = sim::run_circuit(c);
    const auto b = sim::run_circuit(decomposed);
    EXPECT_NEAR(a.overlap(b), 1.0, 1e-10);
}

TEST(Circuit, ExtendRequiresMatchingWidth)
{
    Circuit a(2), b(3);
    b.h(0);
    EXPECT_THROW(a.extend(b), Error);
    Circuit c(2);
    c.h(1);
    a.extend(c);
    EXPECT_EQ(a.size(), 1u);
}

TEST(Circuit, DropTrivialRotations)
{
    Circuit c(1);
    c.rz(0, 0.0);
    c.rz(0, 0.5);
    c.rx(0, 1e-15);
    const auto cleaned = c.drop_trivial_rotations();
    EXPECT_EQ(cleaned.size(), 1u);
    EXPECT_DOUBLE_EQ(cleaned.gates()[0].angle.coefficient, 0.5);
}

TEST(Metrics, DepthSimpleChains)
{
    Circuit c(2);
    c.h(0);
    c.h(0);
    c.h(1);
    EXPECT_EQ(circuit_depth(c), 2); // two serial on q0, one parallel on q1

    Circuit d(2);
    d.h(0);
    d.cx(0, 1);
    d.h(1);
    EXPECT_EQ(circuit_depth(d), 3);
}

TEST(Metrics, SwapCountsAsThreeLevels)
{
    Circuit c(2);
    c.swap(0, 1);
    EXPECT_EQ(circuit_depth(c), 3);
}

TEST(Metrics, FreeRzDepth)
{
    Circuit c(1);
    c.rz(0, 0.3);
    c.rz(0, 0.4);
    c.sx(0);
    EXPECT_EQ(circuit_depth(c, /*free_rz=*/false), 3);
    EXPECT_EQ(circuit_depth(c, /*free_rz=*/true), 1);
}

TEST(Metrics, BarrierSynchronizes)
{
    Circuit c(2);
    c.h(0); // depth 1 on q0
    c.barrier();
    c.h(1); // must start after the barrier
    EXPECT_EQ(circuit_depth(c), 2);
}

TEST(Metrics, DurationUsesGateLatencies)
{
    GateDurations durations;
    durations.single_qubit_ns = 10.0;
    durations.cx_ns = 100.0;
    durations.measure_ns = 500.0;

    Circuit c(2);
    c.h(0);        // 10
    c.cx(0, 1);    // +100
    c.rz(1, 0.5);  // +0 (virtual)
    c.measure(1);  // +500
    EXPECT_DOUBLE_EQ(circuit_duration_ns(c, durations), 610.0);
}

TEST(Metrics, ComputeMetricsAggregates)
{
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.swap(1, 2);
    c.rz(2, 0.1);
    c.measure_all();
    const auto m = compute_metrics(c);
    EXPECT_EQ(m.num_qubits, 3);
    EXPECT_EQ(m.cx_gates, 1 + 3);
    EXPECT_EQ(m.swap_gates, 1);
    EXPECT_EQ(m.rz_gates, 1);
    EXPECT_EQ(m.single_qubit_gates, 2); // h + rz
    EXPECT_EQ(m.measurements, 3);
    EXPECT_GT(m.duration_ns, 0.0);
}

TEST(Printer, TextContainsGatesAndParams)
{
    Circuit c(2);
    c.h(0);
    c.rz(1, Parameter::gamma(0, 1.5));
    c.cx(0, 1);
    const auto text = to_text(c);
    EXPECT_NE(text.find("h q0"), std::string::npos);
    EXPECT_NE(text.find("1.5*g0"), std::string::npos);
    EXPECT_NE(text.find("cx q0, q1"), std::string::npos);
}

TEST(Printer, QasmRequiresBoundCircuit)
{
    Circuit c(1);
    c.rz(0, Parameter::gamma(0, 1.0));
    EXPECT_THROW(to_qasm(c), Error);
    const auto qasm = to_qasm(c.bind({0.5}, {}));
    EXPECT_NE(qasm.find("OPENQASM 2.0"), std::string::npos);
    EXPECT_NE(qasm.find("rz(0.5)"), std::string::npos); // 1.0 * gamma
}

} // namespace
