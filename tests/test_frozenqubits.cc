/**
 * @file
 * Tests for the FrozenQubits core — the paper's contribution. The central
 * properties (DESIGN.md Section 6):
 *   1. Table 2 freeze rules: H_sub(z) == H(z with z_k = s), exhaustively.
 *   2. 2^m sub-problems exactly partition the state space; the min over
 *      sub-problem minima equals the global minimum.
 *   3. Mirror sub-problems of a symmetric parent satisfy
 *      H_{-s}(z) == H_{+s}(-z); pruning halves the executed circuits.
 *   4. Decoding: offsets are exact, lifted outcomes evaluate identically
 *      under sub- and original Hamiltonians.
 *   5. Template editing reproduces the from-scratch compiled circuit.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.h"
#include "device/catalog.h"
#include "frozenqubits/decoder.h"
#include "frozenqubits/driver.h"
#include "frozenqubits/freeze.h"
#include "frozenqubits/hotspot.h"
#include "frozenqubits/template_editor.h"
#include "graph/generators.h"
#include "ising/exact_solver.h"
#include "ising/symmetry.h"
#include "qaoa/qaoa_builder.h"
#include "sim/statevector.h"

namespace {

using namespace fq;
using namespace fq::frozenqubits;

ising::IsingModel
random_model(int n, double h_scale, Rng& rng, double edge_prob = 0.5)
{
    ising::IsingModel m(n);
    for (int i = 0; i < n; ++i)
        if (h_scale > 0.0)
            m.set_linear(i, h_scale * rng.normal());
    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j)
            if (rng.bernoulli(edge_prob))
                m.add_quadratic(i, j, rng.normal());
    m.set_offset(rng.normal());
    return m;
}

TEST(Hotspot, MaxDegreePicksTheHub)
{
    const auto star_model =
        ising::IsingModel::from_graph(graph::star(8));
    Rng rng(1);
    const auto picks =
        select_hotspots(star_model, 1, HotspotPolicy::MaxDegree, rng);
    ASSERT_EQ(picks.size(), 1u);
    EXPECT_EQ(picks[0], 0);
}

TEST(Hotspot, IterativeSelectionRecomputesDegrees)
{
    // Two separate stars: after freezing hub A the next pick must be hub B,
    // not one of A's spokes.
    graph::Graph g(10);
    for (int v = 1; v <= 4; ++v)
        g.add_edge(0, v); // hub 0, degree 4
    for (int v = 6; v <= 9; ++v)
        g.add_edge(5, v); // hub 5, degree 4
    const auto m = ising::IsingModel::from_graph(g);
    Rng rng(2);
    const auto picks = select_hotspots(m, 2, HotspotPolicy::MaxDegree, rng);
    const std::set<int> expected{0, 5};
    EXPECT_EQ(std::set<int>(picks.begin(), picks.end()), expected);
}

TEST(Hotspot, WeightedPolicyFollowsCouplingMagnitude)
{
    ising::IsingModel m(4);
    m.add_quadratic(0, 1, 0.1);
    m.add_quadratic(0, 2, 0.1);
    m.add_quadratic(0, 3, 0.1); // node 0: degree 3, weight 0.3
    m.add_quadratic(1, 2, 5.0); // nodes 1,2: degree 2, weight >= 5
    Rng rng(3);
    EXPECT_EQ(select_hotspots(m, 1, HotspotPolicy::MaxDegree, rng)[0], 0);
    const int weighted =
        select_hotspots(m, 1, HotspotPolicy::WeightedDegree, rng)[0];
    EXPECT_TRUE(weighted == 1 || weighted == 2);
}

TEST(Hotspot, RandomPolicyIsDistinct)
{
    Rng rng(4);
    const auto m = random_model(12, 0.0, rng);
    const auto picks = select_hotspots(m, 5, HotspotPolicy::Random, rng);
    EXPECT_EQ(std::set<int>(picks.begin(), picks.end()).size(), 5u);
}

TEST(Hotspot, DroppedEdgeCount)
{
    const auto m = ising::IsingModel::from_graph(graph::star(6));
    EXPECT_EQ(dropped_edge_count(m, {0}), 5);
    EXPECT_EQ(dropped_edge_count(m, {1}), 1);
    EXPECT_EQ(dropped_edge_count(m, {0, 1}), 5);
}

/** Exhaustive Table 2 verification over random instances. */
class FreezeInvariant : public ::testing::TestWithParam<int>
{
};

TEST_P(FreezeInvariant, SubHamiltonianMatchesSubstitution)
{
    Rng rng(100 + GetParam());
    const int n = 4 + static_cast<int>(rng.uniform_int(std::uint64_t(5)));
    const auto m = random_model(n, rng.bernoulli(0.5) ? 0.8 : 0.0, rng);

    const int k = static_cast<int>(rng.uniform_int(std::uint64_t(n)));
    for (int value : {+1, -1}) {
        const auto sub = freeze_spin(as_subproblem(m), k, value);
        ASSERT_EQ(sub.model.num_spins(), n - 1);

        // Every assignment of the survivors must cost exactly what the
        // original costs with z_k pinned (Equations (2)-(3)).
        for (std::uint64_t s = 0; s < (1ull << (n - 1)); ++s) {
            const auto sub_z = ising::state_to_spins(s, n - 1);
            ising::SpinVector full(n);
            for (int i = 0; i < n - 1; ++i)
                full[sub.original_of[i]] = sub_z[i];
            full[k] = static_cast<std::int8_t>(value);
            ASSERT_NEAR(sub.model.evaluate(sub_z), m.evaluate(full), 1e-9);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, FreezeInvariant,
                         ::testing::Range(0, 10));

TEST(Freeze, CoefficientRulesOnHandExample)
{
    // Figure 5's four-spin example: freeze z3 of a model with h = 0.
    ising::IsingModel m(4);
    m.add_quadratic(0, 1, 1.0);
    m.add_quadratic(0, 2, 1.0);
    m.add_quadratic(1, 2, 1.0);
    m.add_quadratic(0, 3, 1.0);
    m.add_quadratic(1, 3, -1.0);

    const auto plus = freeze_spin(as_subproblem(m), 3, +1);
    // h'_0 = J_03 = 1, h'_1 = J_13 = -1, h'_2 = 0; offset unchanged.
    EXPECT_DOUBLE_EQ(plus.model.linear(0), 1.0);
    EXPECT_DOUBLE_EQ(plus.model.linear(1), -1.0);
    EXPECT_DOUBLE_EQ(plus.model.linear(2), 0.0);
    EXPECT_DOUBLE_EQ(plus.model.offset(), 0.0);
    EXPECT_EQ(plus.model.num_quadratic_terms(), 3);

    const auto minus = freeze_spin(as_subproblem(m), 3, -1);
    EXPECT_DOUBLE_EQ(minus.model.linear(0), -1.0);
    EXPECT_DOUBLE_EQ(minus.model.linear(1), 1.0);
}

TEST(Freeze, OffsetAbsorbsLinearTerm)
{
    ising::IsingModel m(3);
    m.set_linear(1, 0.75);
    m.add_quadratic(0, 2, 1.0);
    m.set_offset(2.0);
    const auto plus = freeze_spin(as_subproblem(m), 1, +1);
    EXPECT_DOUBLE_EQ(plus.model.offset(), 2.75);
    const auto minus = freeze_spin(as_subproblem(m), 1, -1);
    EXPECT_DOUBLE_EQ(minus.model.offset(), 1.25);
}

TEST(Freeze, FreezeAllPartitionsStateSpace)
{
    Rng rng(5);
    const auto m = random_model(8, 0.5, rng);
    const std::vector<int> spins{2, 5};
    const auto subs = freeze_all(m, spins);
    ASSERT_EQ(subs.size(), 4u);

    // Union check: lift every sub-space state; together they must cover
    // all 2^8 original states exactly once with matching costs.
    std::set<std::uint64_t> covered;
    for (const auto& sub : subs) {
        for (std::uint64_t s = 0; s < 64; ++s) {
            const auto full = lift_state(sub, s, 8);
            const auto full_state = ising::spins_to_state(full);
            EXPECT_TRUE(covered.insert(full_state).second)
                << "state covered twice";
            EXPECT_NEAR(sub.model.evaluate_state(s),
                        m.evaluate(full), 1e-9);
        }
    }
    EXPECT_EQ(covered.size(), 256u);
}

TEST(Freeze, MinOverSubproblemsIsGlobalMin)
{
    Rng rng(6);
    for (int trial = 0; trial < 5; ++trial) {
        const auto m = random_model(9, trial % 2 ? 0.7 : 0.0, rng);
        const auto global = ising::solve_exact(m);

        Rng sel_rng(trial);
        const auto hotspots =
            select_hotspots(m, 2, HotspotPolicy::MaxDegree, sel_rng);
        const auto subs = freeze_all(m, hotspots);
        double best = 1e300;
        for (const auto& sub : subs)
            best = std::min(best,
                            ising::solve_exact(sub.model).min_cost);
        EXPECT_NEAR(best, global.min_cost, 1e-9) << "trial " << trial;
    }
}

TEST(Freeze, MirrorPairProperty)
{
    // For a zero-linear parent, the +s and -s sub-problems are mirrors:
    // H_{-s}(z) == H_{+s}(-z) — Section 3.7.2.
    Rng rng(7);
    auto g = graph::barabasi_albert(9, 2, rng);
    graph::assign_random_pm1_weights(g, rng);
    const auto m = ising::IsingModel::from_graph(g);
    ASSERT_TRUE(m.has_zero_linear_terms());

    const auto subs = freeze_all(m, {0, 4});
    ASSERT_EQ(subs.size(), 4u);
    // Enumeration order: assignment bits (bit b = spin b value), so the
    // mirror of index i is ~i & 0b11.
    for (int i = 0; i < 4; ++i) {
        const auto& a = subs[i].model;
        const auto& b = subs[3 - i].model;
        for (std::uint64_t s = 0; s < 128; ++s) {
            const auto z = ising::state_to_spins(s, 7);
            ASSERT_NEAR(b.evaluate(z), a.evaluate(ising::flip_all(z)),
                        1e-9);
        }
    }
}

TEST(Freeze, PlanPrunesHalfForSymmetricParents)
{
    Rng rng(8);
    auto g = graph::barabasi_albert(10, 1, rng);
    graph::assign_random_pm1_weights(g, rng);
    const auto symmetric = ising::IsingModel::from_graph(g);

    for (int m_freeze : {1, 2, 3}) {
        const auto plan = plan_executions(symmetric, m_freeze);
        EXPECT_EQ(static_cast<int>(plan.size()), 1 << (m_freeze - 1));
        std::set<int> covered;
        for (const auto& entry : plan) {
            covered.insert(entry.solve);
            EXPECT_EQ(entry.mirrors.size(), 1u);
            covered.insert(entry.mirrors[0]);
            EXPECT_EQ(entry.mirrors[0],
                      ((1 << m_freeze) - 1) ^ entry.solve);
        }
        EXPECT_EQ(static_cast<int>(covered.size()), 1 << m_freeze);
    }
}

TEST(Freeze, PlanKeepsAllForAsymmetricParents)
{
    Rng rng(9);
    const auto m = random_model(8, 1.0, rng);
    ASSERT_FALSE(m.has_zero_linear_terms());
    const auto plan = plan_executions(m, 2);
    EXPECT_EQ(plan.size(), 4u);
    for (const auto& entry : plan)
        EXPECT_TRUE(entry.mirrors.empty());
}

TEST(Freeze, PruningCanBeDisabled)
{
    ising::IsingModel m(4);
    m.add_quadratic(0, 1, 1.0);
    const auto plan = plan_executions(m, 2, /*enable_pruning=*/false);
    EXPECT_EQ(plan.size(), 4u);
}

TEST(Freeze, RejectsFreezingUnknownSpin)
{
    ising::IsingModel m(4);
    m.add_quadratic(0, 1, 1.0);
    auto sub = freeze_spin(as_subproblem(m), 2, +1);
    EXPECT_THROW(freeze_spin(sub, 2, -1), Error); // already frozen
    EXPECT_THROW(freeze_spin(as_subproblem(m), 1, 0), Error); // bad value
}

TEST(Decoder, LiftInsertsFrozenValues)
{
    ising::IsingModel m(5);
    m.add_quadratic(0, 4, 1.0);
    auto sub = freeze_spin(as_subproblem(m), 2, -1);
    sub = freeze_spin(sub, 0, +1);

    const ising::SpinVector sub_z{-1, +1, -1}; // spins 1, 3, 4
    const auto full = lift_assignment(sub, sub_z);
    ASSERT_EQ(full.size(), 5u);
    EXPECT_EQ(full[0], +1);
    EXPECT_EQ(full[1], -1);
    EXPECT_EQ(full[2], -1);
    EXPECT_EQ(full[3], +1);
    EXPECT_EQ(full[4], -1);
}

TEST(Decoder, ConsistencyErrorIsZero)
{
    Rng rng(10);
    const auto m = random_model(8, 0.6, rng);
    const auto sub = freeze_spin(as_subproblem(m), 3, -1);

    sim::Counts counts(7);
    for (int k = 0; k < 40; ++k)
        counts.add(rng() & 0x7f);
    EXPECT_NEAR(decoding_consistency_error(m, sub, counts), 0.0, 1e-9);
}

TEST(Decoder, BestPicksGlobalMinimumAcrossSubspaces)
{
    Rng rng(11);
    const auto m = random_model(8, 0.0, rng);
    const auto global = ising::solve_exact(m);

    const auto subs = freeze_all(m, {1, 6});
    // Feed each sub-problem its own exhaustive distribution.
    std::vector<sim::Counts> dists;
    for (const auto& sub : subs) {
        sim::Counts c(6);
        for (std::uint64_t s = 0; s < 64; ++s)
            c.add(s);
        dists.push_back(c);
        (void)sub;
    }
    const auto decoded = decode_best(m, subs, dists);
    EXPECT_NEAR(decoded.cost, global.min_cost, 1e-9);
    EXPECT_NEAR(m.evaluate(decoded.assignment), global.min_cost, 1e-9);
}

TEST(TemplateEditor, EditedCircuitMatchesFreshBuild)
{
    // Build + bind the edited template and a from-scratch circuit for the
    // sibling sub-problem; they must be the same unitary.
    Rng rng(12);
    auto g = graph::barabasi_albert(7, 1, rng);
    graph::assign_random_pm1_weights(g, rng);
    const auto m = ising::IsingModel::from_graph(g);

    const auto subs = freeze_all(m, {select_hotspots(
        m, 1, HotspotPolicy::MaxDegree, rng)[0]});
    ASSERT_TRUE(templates_compatible(subs[0].model, subs[1].model));

    qaoa::BuildOptions opts;
    opts.keep_zero_linear_rz = true;
    opts.include_measurements = false;
    const auto template_circuit =
        qaoa::build_qaoa_circuit(subs[0].model, opts);
    const auto edited = edit_template(template_circuit, subs[1].model);
    const auto fresh = qaoa::build_qaoa_circuit(subs[1].model, opts);

    const std::vector<double> gammas{0.37}, betas{0.21};
    const auto a = sim::run_circuit(edited.bind(gammas, betas));
    const auto b = sim::run_circuit(fresh.bind(gammas, betas));
    EXPECT_NEAR(a.overlap(b), 1.0, 1e-10);
}

TEST(TemplateEditor, CompatibilityChecks)
{
    ising::IsingModel a(3), b(3), c(4);
    a.add_quadratic(0, 1, 1.0);
    b.add_quadratic(0, 1, -2.0); // same structure, different coefficient
    c.add_quadratic(0, 1, 1.0);
    EXPECT_TRUE(templates_compatible(a, b));
    EXPECT_FALSE(templates_compatible(a, c)); // width differs
    b.add_quadratic(1, 2, 1.0);
    EXPECT_FALSE(templates_compatible(a, b)); // term list differs
}

TEST(Driver, ReportStructureForM2)
{
    Rng rng(13);
    auto g = graph::barabasi_albert(12, 1, rng);
    graph::assign_random_pm1_weights(g, rng);
    const auto model = ising::IsingModel::from_graph(g);
    const auto dev = device::make_device("ibm-montreal");

    DriverConfig config;
    config.num_freeze = 2;
    const auto report = run_pipeline(model, dev, config);

    EXPECT_EQ(report.num_subproblems, 4);
    EXPECT_EQ(report.num_executed, 2); // symmetry pruning
    ASSERT_EQ(report.executed.size(), 2u);
    EXPECT_EQ(report.hotspots.size(), 2u);

    for (const auto& sub : report.executed) {
        EXPECT_EQ(sub.num_qubits, 10);
        // Fewer CNOTs and shallower than baseline — the core claim.
        EXPECT_LT(sub.post_routing_cx, report.baseline.post_routing_cx);
        EXPECT_LE(sub.depth, report.baseline.depth);
        EXPECT_GT(sub.eps, report.baseline.eps);
    }
    // FrozenQubits must not lose fidelity on a power-law instance.
    EXPECT_LE(report.arg_fq, report.arg_baseline + 1e-9);
}

TEST(Driver, SymmetryPruningDoesNotChangeAnswer)
{
    Rng rng(14);
    auto g = graph::barabasi_albert(10, 1, rng);
    graph::assign_random_pm1_weights(g, rng);
    const auto model = ising::IsingModel::from_graph(g);
    const auto dev = device::make_device("ibm-hanoi");

    DriverConfig with;
    with.num_freeze = 2;
    DriverConfig without = with;
    without.symmetry_pruning = false;

    const auto a = run_pipeline(model, dev, with);
    const auto b = run_pipeline(model, dev, without);
    EXPECT_EQ(a.num_executed, 2);
    EXPECT_EQ(b.num_executed, 4);
    EXPECT_NEAR(a.ev_ideal_fq, b.ev_ideal_fq, 1e-6);
    EXPECT_NEAR(a.arg_fq, b.arg_fq, 1e-6);
}

TEST(Driver, TemplateEditingMatchesFullCompiles)
{
    Rng rng(15);
    auto g = graph::barabasi_albert(10, 2, rng);
    graph::assign_random_pm1_weights(g, rng);
    const auto model = ising::IsingModel::from_graph(g);
    const auto dev = device::make_device("ibm-cairo");

    DriverConfig with;
    with.num_freeze = 2;
    DriverConfig without = with;
    without.use_template_editing = false;

    const auto a = run_pipeline(model, dev, with);
    const auto b = run_pipeline(model, dev, without);
    EXPECT_NEAR(a.arg_fq, b.arg_fq, 1e-6);
    EXPECT_NEAR(a.ev_noisy_fq, b.ev_noisy_fq, 1e-6);
}

TEST(Driver, SampledSolveFindsOptimumUnderLowNoise)
{
    Rng rng(16);
    auto g = graph::barabasi_albert(10, 1, rng);
    graph::assign_random_pm1_weights(g, rng);
    const auto model = ising::IsingModel::from_graph(g);
    const auto exact = ising::solve_exact(model);

    // Near-ideal small device so QAOA sampling plus decoding can reach the
    // exact ground state.
    device::Device dev;
    dev.topology = device::make_grid(3, 4);
    dev.name = "grid-3x4-clean";
    dev.calibration =
        device::Calibration::uniform(dev.topology, 1e-5, 1e-4, 5000.0);

    DriverConfig config;
    config.num_freeze = 1;
    Rng solve_rng(17);
    const auto solved =
        solve_with_sampling(model, dev, config, 4096, solve_rng);

    EXPECT_NEAR(solved.best_cost, exact.min_cost, 1e-9);
    EXPECT_NEAR(model.evaluate(solved.best_assignment), solved.best_cost,
                1e-9);
    ASSERT_EQ(solved.distributions.size(), 2u);
    // Both sub-space distributions populated (one inferred by flipping).
    EXPECT_GT(solved.distributions[0].total_shots(), 0u);
    EXPECT_EQ(solved.distributions[0].total_shots(),
              solved.distributions[1].total_shots());
}

TEST(Driver, ImprovementFactorGuardsDivision)
{
    Report r;
    r.arg_baseline = 50.0;
    r.arg_fq = 0.0;
    EXPECT_DOUBLE_EQ(r.improvement(1e-3), 50000.0);
    r.arg_fq = 10.0;
    EXPECT_DOUBLE_EQ(r.improvement(), 5.0);
}

} // namespace
