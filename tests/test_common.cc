/**
 * @file
 * Unit tests for the common substrate: RNG determinism and statistics,
 * math helpers, table formatting, and bit operations.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>

#include "common/bitops.h"
#include "common/crc32.h"
#include "common/error.h"
#include "common/math_utils.h"
#include "common/rng.h"
#include "common/table.h"

namespace {

using namespace fq;

// The shared CRC-32 (checkpoint files AND net framing) must stay the
// IEEE 802.3 polynomial forever: both on-disk snapshots and the wire
// protocol depend on it. Known answers pin the exact variant.
TEST(Crc32, KnownAnswers)
{
    const auto crc = [](const std::string& s) {
        return common::crc32(
            reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
    };
    // The canonical CRC-32/ISO-HDLC check value.
    EXPECT_EQ(crc("123456789"), 0xCBF43926u);
    EXPECT_EQ(crc(""), 0x00000000u);
    EXPECT_EQ(crc("a"), 0xE8B7BE43u);
    EXPECT_EQ(crc("abc"), 0x352441C2u);
}

TEST(Crc32, SensitiveToEveryByte)
{
    std::string payload(64, '\0');
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<char>(i * 7 + 1);
    const auto base = common::crc32(
        reinterpret_cast<const std::uint8_t*>(payload.data()),
        payload.size());
    for (std::size_t i = 0; i < payload.size(); ++i) {
        std::string corrupted = payload;
        corrupted[i] ^= 0x20;
        EXPECT_NE(base,
                  common::crc32(reinterpret_cast<const std::uint8_t*>(
                                    corrupted.data()),
                                corrupted.size()))
            << "flip at byte " << i << " went undetected";
    }
}

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(123), b(124);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        if (a() == b())
            ++equal;
    EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniform_int(std::uint64_t(7));
        ASSERT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all residues hit
}

TEST(Rng, UniformIntInclusiveRange)
{
    Rng rng(11);
    for (int i = 0; i < 200; ++i) {
        const auto v = rng.uniform_int(std::int64_t(-3), std::int64_t(3));
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
    }
}

TEST(Rng, NormalMoments)
{
    Rng rng(13);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, SignIsBalanced)
{
    Rng rng(17);
    int plus = 0;
    for (int i = 0; i < 10000; ++i)
        if (rng.sign() > 0)
            ++plus;
    EXPECT_NEAR(plus / 10000.0, 0.5, 0.03);
}

TEST(Rng, SampleWithoutReplacementIsDistinct)
{
    Rng rng(19);
    const auto idx = rng.sample_without_replacement(20, 8);
    EXPECT_EQ(idx.size(), 8u);
    std::set<std::size_t> s(idx.begin(), idx.end());
    EXPECT_EQ(s.size(), 8u);
    for (auto i : s)
        EXPECT_LT(i, 20u);
}

TEST(Rng, ForkProducesDistinctStream)
{
    Rng a(21);
    Rng b = a.fork(1);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        if (a() == b())
            ++equal;
    EXPECT_LT(equal, 2);
}

TEST(Rng, HashSeedStable)
{
    EXPECT_EQ(hash_seed("ibm-montreal"), hash_seed("ibm-montreal"));
    EXPECT_NE(hash_seed("ibm-montreal"), hash_seed("ibm-toronto"));
}

TEST(MathUtils, MeanAndStddev)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.138, 1e-3);
    EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
}

TEST(MathUtils, GeometricMean)
{
    EXPECT_NEAR(gmean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(gmean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    // Floor keeps non-positive entries from producing NaN.
    EXPECT_GT(gmean({0.0, 1.0}), 0.0);
}

TEST(MathUtils, Linspace)
{
    const auto v = linspace(0.0, 1.0, 5);
    ASSERT_EQ(v.size(), 5u);
    EXPECT_DOUBLE_EQ(v.front(), 0.0);
    EXPECT_DOUBLE_EQ(v.back(), 1.0);
    EXPECT_DOUBLE_EQ(v[2], 0.5);
    EXPECT_EQ(linspace(3.0, 9.0, 1).size(), 1u);
}

TEST(MathUtils, SafeRatioAndClamp)
{
    EXPECT_DOUBLE_EQ(safe_ratio(4.0, 2.0), 2.0);
    EXPECT_DOUBLE_EQ(safe_ratio(4.0, 0.0, -1.0), -1.0);
    EXPECT_DOUBLE_EQ(clamp01(1.5), 1.0);
    EXPECT_DOUBLE_EQ(clamp01(-0.5), 0.0);
}

TEST(MathUtils, MinMax)
{
    EXPECT_DOUBLE_EQ(min_value({3.0, 1.0, 2.0}), 1.0);
    EXPECT_DOUBLE_EQ(max_value({3.0, 1.0, 2.0}), 3.0);
    EXPECT_THROW(min_value({}), Error);
}

TEST(Table, AlignedOutputAndCsv)
{
    Table t("demo");
    t.set_header({"n", "value"});
    t.add_row({Table::num(4), Table::num(3.14159, 2)});
    t.add_row({Table::num(8), Table::factor(2.5)});

    std::ostringstream text;
    t.print(text);
    EXPECT_NE(text.str().find("== demo =="), std::string::npos);
    EXPECT_NE(text.str().find("3.14"), std::string::npos);
    EXPECT_NE(text.str().find("2.50x"), std::string::npos);

    std::ostringstream csv;
    t.to_csv(csv);
    EXPECT_NE(csv.str().find("n,value"), std::string::npos);
    EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RowWidthValidated)
{
    Table t("bad");
    t.set_header({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Bitops, SpinEncoding)
{
    // bit 0 -> spin +1; bit 1 -> spin -1.
    EXPECT_EQ(spin_of_bit(0b010, 0), +1);
    EXPECT_EQ(spin_of_bit(0b010, 1), -1);
    EXPECT_EQ(with_spin(0, 3, -1), 0b1000u);
    EXPECT_EQ(with_spin(0b1000, 3, +1), 0u);
    EXPECT_EQ(bit_of_spin(-1), 1u);
    EXPECT_EQ(bit_of_spin(+1), 0u);
}

TEST(Bitops, GrayCodeAdjacencyProperty)
{
    for (std::uint64_t n = 1; n < 4096; ++n) {
        const auto delta = gray_code(n) ^ gray_code(n - 1);
        EXPECT_EQ(popcount64(delta), 1);
        EXPECT_EQ(delta, std::uint64_t(1) << gray_flip_bit(n));
    }
}

TEST(Bitops, LowBitsMaskCoversTheRegisterWidthBoundary)
{
    EXPECT_EQ(low_bits_mask(0), 0u);
    EXPECT_EQ(low_bits_mask(1), 0b1u);
    EXPECT_EQ(low_bits_mask(5), 0b11111u);
    EXPECT_EQ(low_bits_mask(63), ~std::uint64_t{0} >> 1);
    // The boundary the naive (1 << n) - 1 idiom gets wrong: shifting a
    // 64-bit value by 64 is undefined, while a 64-spin mirror flip needs
    // the all-ones mask.
    EXPECT_EQ(low_bits_mask(64), ~std::uint64_t{0});
    EXPECT_EQ(low_bits_mask(100), ~std::uint64_t{0});
}

TEST(Error, RequireThrowsWithContext)
{
    try {
        FQ_REQUIRE(false, "special-context");
        FAIL() << "should have thrown";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("special-context"),
                  std::string::npos);
    }
}

} // namespace
