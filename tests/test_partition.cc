/**
 * @file
 * Tests for the graph-bisection substrate and the edge-cutting
 * divide-and-conquer QAOA baseline (the Section 1 comparison): bisection
 * balance/validity, cut-count behavior on hotspot vs hotspot-free graphs,
 * and the end-to-end baseline's structural properties.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "device/catalog.h"
#include "frozenqubits/driver.h"
#include "graph/generators.h"
#include "ising/exact_solver.h"
#include "partition/bisection.h"
#include "partition/dnc_qaoa.h"

namespace {

using namespace fq;
using namespace fq::partition;

TEST(Bisection, BalancedAndConsistent)
{
    Rng rng(1);
    const auto g = graph::erdos_renyi(20, 0.3, rng);
    const auto cut = bisect(g, rng);
    ASSERT_EQ(cut.side.size(), 20u);
    int zeros = 0;
    for (int s : cut.side) {
        ASSERT_TRUE(s == 0 || s == 1);
        if (s == 0)
            ++zeros;
    }
    EXPECT_EQ(zeros, 10);
    EXPECT_EQ(cut.cut_edges, count_cut_edges(g, cut.side));
    EXPECT_GE(cut.cut_weight, 0.0);
}

TEST(Bisection, FindsObviousTwoCluster)
{
    // Two 6-cliques joined by a single bridge edge: the optimum cut is 1.
    graph::Graph g(12);
    for (int a = 0; a < 6; ++a)
        for (int b = a + 1; b < 6; ++b) {
            g.add_edge(a, b);
            g.add_edge(a + 6, b + 6);
        }
    g.add_edge(0, 6);
    Rng rng(2);
    const auto cut = bisect(g, rng);
    EXPECT_EQ(cut.cut_edges, 1);
}

TEST(Bisection, HotspotsForceCuts)
{
    // A star's hub is on one side; all its spokes on the other side are
    // cut — a balanced bisection must cut about half the edges.
    Rng wrng(3);
    auto star = graph::star(16);
    const auto cut = bisect(star, wrng);
    EXPECT_GE(cut.cut_edges, 7);
    EXPECT_EQ(hotspot_cut_edges(star, cut.side, 1), cut.cut_edges);
}

TEST(Bisection, PowerLawCutsExceedRegularCuts)
{
    // Relative to edge count, hotspot graphs lose more couplings to a
    // balanced cut than regular graphs — the paper's argument.
    Rng rng(4);
    double ba_fraction = 0.0, reg_fraction = 0.0;
    for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
        Rng ba_rng(seed), reg_rng(seed + 100);
        const auto ba = graph::barabasi_albert(20, 1, ba_rng);
        const auto reg = graph::random_regular(20, 3, reg_rng);
        ba_fraction += static_cast<double>(bisect(ba, rng).cut_edges) /
                       ba.num_edges();
        reg_fraction += static_cast<double>(bisect(reg, rng).cut_edges) /
                        reg.num_edges();
    }
    EXPECT_GT(ba_fraction, 0.0);
    EXPECT_GT(reg_fraction, 0.0);
}

TEST(Bisection, RejectsTinyGraphs)
{
    graph::Graph g(1);
    Rng rng(5);
    EXPECT_THROW(bisect(g, rng), Error);
}

TEST(DncQaoa, StructuralProperties)
{
    Rng rng(6);
    auto g = graph::barabasi_albert(14, 1, rng);
    graph::assign_random_pm1_weights(g, rng);
    const auto model = ising::IsingModel::from_graph(g);
    const auto dev = device::make_device("ibm-montreal");

    Rng run_rng(7);
    const auto result = run_dnc_qaoa(model, dev, run_rng);

    EXPECT_EQ(result.cut_edges, result.bisection.cut_edges);
    EXPECT_GT(result.cut_edges, 0); // a tree always loses edges to a cut
    EXPECT_GT(result.lost_coupling, 0.0);
    EXPECT_GT(result.subcircuit_cx, 0);
    // The repaired classical solution is a valid assignment.
    EXPECT_NEAR(model.evaluate(result.repaired_assignment),
                result.repaired_cost, 1e-9);
    const auto exact = ising::solve_exact(model);
    EXPECT_GE(result.repaired_cost, exact.min_cost - 1e-9);
}

TEST(DncQaoa, LosesEnergyThatFrozenQubitsKeeps)
{
    // Head-to-head on a hotspot instance: the quantum-phase ideal EV of
    // divide-and-conquer (cut couplings contribute nothing) must be worse
    // (higher) than FrozenQubits' ideal EV at comparable quantum cost.
    Rng rng(8);
    auto g = graph::barabasi_albert(14, 1, rng);
    graph::assign_random_pm1_weights(g, rng);
    const auto model = ising::IsingModel::from_graph(g);
    const auto dev = device::make_device("ibm-montreal");

    Rng dnc_rng(9);
    const auto dnc = run_dnc_qaoa(model, dev, dnc_rng);

    frozenqubits::DriverConfig config;
    config.num_freeze = 1; // one executed circuit — same cost as 2 halves
    const auto fq = frozenqubits::run_pipeline(model, dev, config);

    EXPECT_LT(fq.ev_ideal_fq, dnc.ev_ideal - 1e-6)
        << "FrozenQubits should retain the hotspot couplings' energy";
}

} // namespace
