/**
 * @file
 * Unit and property tests for the graph substrate: structure operations,
 * every generator's defining invariants, and power-law statistics.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/powerlaw.h"

namespace {

using namespace fq;
using namespace fq::graph;

TEST(Graph, BasicEdgeOperations)
{
    Graph g(4);
    EXPECT_TRUE(g.add_edge(0, 1, 2.0));
    EXPECT_TRUE(g.add_edge(3, 1, -1.0));
    EXPECT_FALSE(g.add_edge(1, 0)); // duplicate (order-insensitive)
    EXPECT_EQ(g.num_edges(), 2);
    EXPECT_TRUE(g.has_edge(1, 3));
    EXPECT_FALSE(g.has_edge(0, 2));
    EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(g.edge_weight(1, 3), -1.0);
    EXPECT_EQ(g.degree(1), 2);
    EXPECT_EQ(g.degree(2), 0);
}

TEST(Graph, RejectsSelfLoopsAndBadIndices)
{
    Graph g(3);
    EXPECT_THROW(g.add_edge(1, 1), Error);
    EXPECT_THROW(g.add_edge(0, 3), Error);
    EXPECT_THROW(g.degree(-1), Error);
    EXPECT_THROW(g.edge_weight(0, 1), Error); // missing edge
}

TEST(Graph, EdgesAreNormalized)
{
    Graph g(3);
    g.add_edge(2, 0, 5.0);
    ASSERT_EQ(g.edges().size(), 1u);
    EXPECT_EQ(g.edges()[0].u, 0);
    EXPECT_EQ(g.edges()[0].v, 2);
}

TEST(Graph, DegreeOrderingAndStats)
{
    Graph g = star(6); // node 0 has degree 5
    const auto order = g.nodes_by_degree_desc();
    EXPECT_EQ(order.front(), 0);
    EXPECT_EQ(g.max_degree(), 5);
    EXPECT_DOUBLE_EQ(g.average_degree(), 2.0 * 5 / 6);
}

TEST(Graph, WithoutNodeRemapsDensely)
{
    Graph g(4);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 2.0);
    g.add_edge(2, 3, 3.0);
    std::vector<int> remap;
    Graph h = g.without_node(1, &remap);
    EXPECT_EQ(h.num_nodes(), 3);
    EXPECT_EQ(h.num_edges(), 1); // only (2,3) survives
    EXPECT_EQ(remap[1], -1);
    EXPECT_EQ(remap[0], 0);
    EXPECT_EQ(remap[2], 1);
    EXPECT_EQ(remap[3], 2);
    EXPECT_TRUE(h.has_edge(1, 2));
    EXPECT_DOUBLE_EQ(h.edge_weight(1, 2), 3.0);
}

TEST(Graph, ConnectedComponents)
{
    Graph g(5);
    g.add_edge(0, 1);
    g.add_edge(2, 3);
    EXPECT_EQ(g.num_connected_components(), 3); // {0,1} {2,3} {4}
    g.add_edge(1, 2);
    g.add_edge(3, 4);
    EXPECT_EQ(g.num_connected_components(), 1);
}

TEST(Generators, BarabasiAlbertTreeForD1)
{
    Rng rng(1);
    const auto g = barabasi_albert(50, 1, rng);
    EXPECT_EQ(g.num_nodes(), 50);
    // d=1 BA growth yields a connected tree: N-1 edges.
    EXPECT_EQ(g.num_edges(), 49);
    EXPECT_EQ(g.num_connected_components(), 1);
}

TEST(Generators, BarabasiAlbertEdgeCountForDenser)
{
    Rng rng(2);
    for (int d : {2, 3}) {
        const auto g = barabasi_albert(40, d, rng);
        // seed clique + d edges per added node
        const int expected =
            d * (d + 1) / 2 + d * (40 - (d + 1));
        EXPECT_EQ(g.num_edges(), expected) << "d=" << d;
        EXPECT_EQ(g.num_connected_components(), 1);
    }
}

TEST(Generators, BarabasiAlbertHasHubs)
{
    Rng rng(3);
    const auto g = barabasi_albert(300, 1, rng);
    // Preferential attachment concentrates degree: the max degree must be
    // far above the mean (~2) — the paper's hotspot premise.
    EXPECT_GT(g.max_degree(), 4 * g.average_degree());
}

TEST(Generators, RandomRegularDegrees)
{
    Rng rng(4);
    for (int n : {8, 14, 24}) {
        const auto g = random_regular(n, 3, rng);
        for (int u = 0; u < n; ++u)
            EXPECT_EQ(g.degree(u), 3) << "n=" << n << " u=" << u;
    }
}

TEST(Generators, RandomRegularRejectsOddProduct)
{
    Rng rng(5);
    EXPECT_THROW(random_regular(7, 3, rng), Error);
}

TEST(Generators, CompleteGraph)
{
    const auto g = complete(9);
    EXPECT_EQ(g.num_edges(), 36);
    EXPECT_EQ(g.max_degree(), 8);
}

TEST(Generators, ErdosRenyiDensityIsPlausible)
{
    Rng rng(6);
    const auto g = erdos_renyi(60, 0.2, rng);
    const int max_edges = 60 * 59 / 2;
    const double density = static_cast<double>(g.num_edges()) / max_edges;
    EXPECT_NEAR(density, 0.2, 0.05);
}

TEST(Generators, StarAndPath)
{
    const auto s = star(7);
    EXPECT_EQ(s.degree(0), 6);
    for (int v = 1; v < 7; ++v)
        EXPECT_EQ(s.degree(v), 1);
    const auto p = path(5);
    EXPECT_EQ(p.num_edges(), 4);
    EXPECT_EQ(p.degree(0), 1);
    EXPECT_EQ(p.degree(2), 2);
}

TEST(Generators, AirportNetworkHasHotspots)
{
    Rng rng(7);
    const auto g = airport_network(400, 10, rng);
    const auto stats = degree_stats(g, 10);
    // The paper's Figure 1(b) observation: top hubs carry ~10x the mean.
    EXPECT_GT(stats.hotspot_ratio, 4.0);
    EXPECT_EQ(g.num_connected_components(), 1);
}

TEST(Generators, WeightAssignments)
{
    Rng rng(8);
    auto g = complete(12);
    assign_random_pm1_weights(g, rng);
    int plus = 0;
    for (const auto& e : g.edges()) {
        ASSERT_TRUE(e.weight == 1.0 || e.weight == -1.0);
        if (e.weight > 0)
            ++plus;
    }
    EXPECT_GT(plus, 10);
    EXPECT_LT(plus, 56);

    assign_gaussian_weights(g, rng);
    bool non_integer = false;
    for (const auto& e : g.edges())
        if (e.weight != 1.0 && e.weight != -1.0)
            non_integer = true;
    EXPECT_TRUE(non_integer);
}

TEST(Powerlaw, DegreeHistogram)
{
    const auto g = star(5);
    const auto hist = degree_histogram(g);
    ASSERT_EQ(hist.size(), 5u); // degrees 0..4
    EXPECT_EQ(hist[1], 4);
    EXPECT_EQ(hist[4], 1);
}

TEST(Powerlaw, AlphaEstimateOnSyntheticPowerLaw)
{
    Rng rng(9);
    const auto g = barabasi_albert(2000, 1, rng);
    const auto alpha = powerlaw_alpha_mle(g.degree_sequence(), 2);
    // BA graphs have a tail exponent near 3; MLE on finite samples lands
    // in a broad band.
    EXPECT_GT(alpha, 1.8);
    EXPECT_LT(alpha, 4.5);
}

TEST(Powerlaw, StatsFields)
{
    Rng rng(10);
    const auto g = barabasi_albert(100, 1, rng);
    const auto stats = degree_stats(g, 5);
    EXPECT_EQ(stats.num_nodes, 100);
    EXPECT_EQ(stats.num_edges, 99);
    EXPECT_EQ(stats.top_k, 5);
    EXPECT_GE(stats.max_degree, stats.hotspot_average_degree);
    EXPECT_GT(stats.hotspot_ratio, 1.0);
}

} // namespace
