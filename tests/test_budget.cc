/**
 * @file
 * Tests for the Section 3.4 freeze-count recommendation: budget limits,
 * diminishing-returns stopping, and structural sanity of the trace.
 */
#include <gtest/gtest.h>

#include <climits>

#include "common/error.h"
#include "frozenqubits/budget.h"
#include "graph/generators.h"
#include "ising/ising_model.h"

namespace {

using namespace fq;
using namespace fq::frozenqubits;

TEST(FreezeBudget, StarFreezesExactlyTheHub)
{
    // After the hub every remaining node has degree 0: one freeze, then
    // the marginal fraction collapses to zero.
    const auto model = ising::IsingModel::from_graph(graph::star(12));
    FreezeBudget budget;
    budget.max_circuits = 64;
    const auto rec = recommend_num_freeze(model, budget);
    EXPECT_EQ(rec.num_freeze, 1);
    ASSERT_EQ(rec.steps.size(), 1u);
    EXPECT_EQ(rec.steps[0].spin, 0);
    EXPECT_EQ(rec.steps[0].edges_dropped, 11);
    EXPECT_EQ(rec.steps[0].edges_remaining, 0);
}

TEST(FreezeBudget, BudgetCapsTheRecommendation)
{
    Rng rng(1);
    const auto model = ising::IsingModel::from_graph(
        graph::barabasi_albert(40, 2, rng));
    FreezeBudget tight;
    tight.max_circuits = 2; // admits m <= 2 with pruning
    tight.min_marginal_edge_fraction = 0.0;
    const auto rec = recommend_num_freeze(model, tight);
    EXPECT_LE(rec.num_freeze, 2);
    EXPECT_GE(rec.num_freeze, 1);
    for (const auto& step : rec.steps)
        EXPECT_LE(step.circuits, 2);
}

TEST(FreezeBudget, PruningDoublesAdmissibleM)
{
    Rng rng(2);
    const auto model = ising::IsingModel::from_graph(
        graph::barabasi_albert(40, 2, rng));
    FreezeBudget pruned;
    pruned.max_circuits = 4;
    pruned.min_marginal_edge_fraction = 0.0;
    FreezeBudget full = pruned;
    full.symmetry_pruning = false;
    const auto with = recommend_num_freeze(model, pruned);
    const auto without = recommend_num_freeze(model, full);
    // 4 circuits admit m=3 pruned (2^2=4) but only m=2 unpruned.
    EXPECT_EQ(with.num_freeze, 3);
    EXPECT_EQ(without.num_freeze, 2);
}

TEST(FreezeBudget, DiminishingReturnsStopsOnRegularGraphs)
{
    // On a 3-regular graph each freeze drops ~3 of ~36 edges (~8%);
    // a 10% threshold should refuse to freeze anything.
    Rng rng(3);
    const auto model = ising::IsingModel::from_graph(
        graph::random_regular(24, 3, rng));
    FreezeBudget budget;
    budget.max_circuits = 1024;
    budget.min_marginal_edge_fraction = 0.10;
    const auto rec = recommend_num_freeze(model, budget);
    EXPECT_EQ(rec.num_freeze, 0);
}

TEST(FreezeBudget, PowerLawRecommendsMoreThanRegular)
{
    Rng rng(4);
    const auto powerlaw = ising::IsingModel::from_graph(
        graph::barabasi_albert(24, 1, rng));
    const auto regular = ising::IsingModel::from_graph(
        graph::random_regular(24, 3, rng));
    FreezeBudget budget;
    budget.max_circuits = 1024;
    budget.min_marginal_edge_fraction = 0.10;
    EXPECT_GT(recommend_num_freeze(powerlaw, budget).num_freeze,
              recommend_num_freeze(regular, budget).num_freeze);
}

TEST(FreezeBudget, TraceIsConsistent)
{
    Rng rng(5);
    const auto model = ising::IsingModel::from_graph(
        graph::barabasi_albert(30, 1, rng));
    FreezeBudget budget;
    budget.max_circuits = 1 << 9;
    budget.min_marginal_edge_fraction = 0.0;
    budget.hard_cap = 6;
    const auto rec = recommend_num_freeze(model, budget);
    ASSERT_EQ(rec.num_freeze, 6);
    int dropped = 0;
    for (const auto& step : rec.steps) {
        dropped += step.edges_dropped;
        EXPECT_EQ(step.edges_remaining,
                  model.num_quadratic_terms() - dropped);
        EXPECT_GE(step.marginal_fraction, 0.0);
        EXPECT_LE(step.marginal_fraction, 1.0);
    }
}

TEST(FreezeBudget, MaxCircuitsLLongMaxNeverOverflows)
{
    // Regression: with an effectively unlimited budget the doubling must
    // saturate, never wrap — the recommendation is clamped by hard_cap
    // (applied BEFORE the budget comparison) and diminishing returns, and
    // every reported circuit count stays positive.
    Rng rng(6);
    const auto model = ising::IsingModel::from_graph(
        graph::barabasi_albert(40, 1, rng));
    FreezeBudget budget;
    budget.max_circuits = LLONG_MAX;
    budget.min_marginal_edge_fraction = 0.0;
    budget.hard_cap = 12;
    const auto rec = recommend_num_freeze(model, budget);
    EXPECT_EQ(rec.num_freeze, 12); // hard_cap clamps, not the budget
    for (const auto& step : rec.steps) {
        EXPECT_GT(step.circuits, 0);
        EXPECT_LE(step.circuits, 1ll << 11);
    }
}

TEST(FreezeBudget, SaturatingCostsClampAtLLongMax)
{
    EXPECT_EQ(saturating_quantum_cost(0, true), 1);
    EXPECT_EQ(saturating_quantum_cost(3, true), 4);
    EXPECT_EQ(saturating_quantum_cost(3, false), 8);
    EXPECT_EQ(saturating_quantum_cost(62, false), LLONG_MAX);
    EXPECT_EQ(saturating_quantum_cost(63, true), LLONG_MAX);

    EXPECT_EQ(tree_leaf_circuits(2, 1, true), 2);   // flat keeps pruning
    EXPECT_EQ(tree_leaf_circuits(2, 2, true), 16);  // 2^{m*d}, no pruning
    EXPECT_EQ(tree_leaf_circuits(3, 2, false), 64);
    EXPECT_EQ(tree_leaf_circuits(10, 10, true), LLONG_MAX);
    EXPECT_EQ(tree_leaf_circuits(20, 1000000, true), LLONG_MAX);
}

TEST(FreezeBudget, TreeRecommendationRespectsBudgetAndDepth)
{
    Rng rng(7);
    const auto model = ising::IsingModel::from_graph(
        graph::barabasi_albert(30, 1, rng));
    FreezeBudget budget;
    budget.max_circuits = 256;
    budget.min_marginal_edge_fraction = 0.0;
    budget.hard_cap = 2;
    // m = 2 per level: depth 1 costs 2, depth 2 costs 16, depth 3 costs 64,
    // depth 4 costs 256 — all within budget; depth 5 (1024) is not.
    const auto rec = recommend_tree_freeze(model, budget, 8);
    EXPECT_EQ(rec.num_freeze, 2);
    EXPECT_EQ(rec.depth, 4);
    EXPECT_EQ(rec.leaf_circuits, 256);
    EXPECT_LE(rec.leaf_circuits, budget.max_circuits);

    // An unlimited budget saturates instead of overflowing.
    budget.max_circuits = LLONG_MAX;
    const auto deep = recommend_tree_freeze(model, budget, 1000);
    EXPECT_EQ(deep.num_freeze, 2);
    EXPECT_EQ(deep.depth, 1000);
    EXPECT_GT(deep.leaf_circuits, 0);
}

TEST(FreezeBudget, ValidatesInputs)
{
    ising::IsingModel m(4);
    FreezeBudget bad;
    bad.max_circuits = 0;
    EXPECT_THROW(recommend_num_freeze(m, bad), Error);
    FreezeBudget cap;
    cap.hard_cap = 30;
    EXPECT_THROW(recommend_num_freeze(m, cap), Error);
}

} // namespace
