/**
 * @file
 * Build-sanity smoke test: every module links and the end-to-end pipeline
 * produces a self-consistent report on a small instance.
 */
#include <gtest/gtest.h>

#include "device/catalog.h"
#include "frozenqubits/driver.h"
#include "graph/generators.h"
#include "ising/exact_solver.h"
#include "ising/ising_model.h"

namespace {

TEST(Smoke, EndToEndPipelineRuns)
{
    fq::Rng rng(42);
    auto g = fq::graph::barabasi_albert(10, 1, rng);
    fq::graph::assign_random_pm1_weights(g, rng);
    const auto model = fq::ising::IsingModel::from_graph(g);

    const auto dev = fq::device::make_device("ibm-montreal");
    fq::frozenqubits::DriverConfig config;
    config.num_freeze = 1;

    const auto report = fq::frozenqubits::run_pipeline(model, dev, config);
    EXPECT_EQ(report.num_subproblems, 2);
    EXPECT_EQ(report.num_executed, 1);
    EXPECT_GT(report.baseline.post_routing_cx, 0);
    EXPECT_LT(report.executed[0].post_routing_cx,
              report.baseline.post_routing_cx);
    EXPECT_GE(report.arg_baseline, 0.0);
    EXPECT_GE(report.arg_fq, 0.0);
}

} // namespace
