/**
 * @file
 * ExecutionEngine tests: the determinism guarantee (thread-pooled batches
 * bit-identical to serial), the compile-once template cache, and the
 * symmetry-pruning contract (mirror tasks are never executed).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <vector>

#include "common/error.h"
#include "device/catalog.h"
#include "engine/engine.h"
#include "engine/thread_pool.h"
#include "graph/generators.h"
#include "ising/ising_model.h"
#include "solve_test_util.h"

namespace {

using namespace fq;
using namespace fq::engine;
using fq::test::ba_model;
using fq::test::expect_solves_identical;

void
expect_stats_equal(const frozenqubits::CircuitStats& a,
                   const frozenqubits::CircuitStats& b)
{
    EXPECT_EQ(a.num_qubits, b.num_qubits);
    EXPECT_EQ(a.pre_routing_cx, b.pre_routing_cx);
    EXPECT_EQ(a.post_routing_cx, b.post_routing_cx);
    EXPECT_EQ(a.swaps, b.swaps);
    EXPECT_EQ(a.depth, b.depth);
    EXPECT_DOUBLE_EQ(a.duration_ns, b.duration_ns);
    EXPECT_DOUBLE_EQ(a.eps, b.eps);
    EXPECT_DOUBLE_EQ(a.angles.gamma, b.angles.gamma);
    EXPECT_DOUBLE_EQ(a.angles.beta, b.angles.beta);
    EXPECT_DOUBLE_EQ(a.ev_ideal, b.ev_ideal);
    EXPECT_DOUBLE_EQ(a.ev_noisy, b.ev_noisy);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.num_threads(), 4);

    constexpr int kCount = 1000;
    std::vector<std::atomic<int>> touched(kCount);
    pool.for_each_index(kCount, [&](int index, int worker) {
        ASSERT_GE(worker, 0);
        ASSERT_LT(worker, 4);
        touched[static_cast<std::size_t>(index)].fetch_add(1);
    });
    for (const auto& t : touched)
        EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, PropagatesTaskExceptions)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.for_each_index(
                     8,
                     [](int index, int) {
                         if (index >= 4)
                             throw std::runtime_error("task failed");
                     }),
                 std::runtime_error);
    // The pool must survive a failed batch.
    int sum = 0;
    std::mutex m;
    pool.for_each_index(4, [&](int index, int) {
        std::lock_guard<std::mutex> lock(m);
        sum += index;
    });
    EXPECT_EQ(sum, 6);
}

TEST(RngStreams, SubproblemStreamsAreStableAndDistinct)
{
    const auto a = subproblem_stream_seed(7, 0);
    EXPECT_EQ(a, subproblem_stream_seed(7, 0));
    std::set<std::uint64_t> seeds;
    for (std::uint64_t i = 0; i < 64; ++i)
        seeds.insert(subproblem_stream_seed(7, i));
    EXPECT_EQ(seeds.size(), 64u);
    EXPECT_NE(subproblem_stream_seed(7, 1), subproblem_stream_seed(8, 1));
}

TEST(ExecutionEngine, ParallelReportBitIdenticalToSerial)
{
    // The acceptance contract: threads=4 and threads=1 produce identical
    // Reports (EV fields exact, integer stats exact) on a 12-spin BA
    // instance with m=3 (4 executed sub-circuits).
    const auto model = ba_model(12, 1, 5);
    const auto dev = device::make_device("ibm-montreal");
    frozenqubits::DriverConfig config;
    config.num_freeze = 3;

    ExecutionEngine serial(1);
    ExecutionEngine parallel(4);
    const auto a = serial.run(model, dev, config);
    const auto b = parallel.run(model, dev, config);

    EXPECT_EQ(a.hotspots, b.hotspots);
    EXPECT_EQ(a.num_subproblems, b.num_subproblems);
    EXPECT_EQ(a.num_executed, b.num_executed);
    expect_stats_equal(a.baseline, b.baseline);
    ASSERT_EQ(a.executed.size(), b.executed.size());
    for (std::size_t k = 0; k < a.executed.size(); ++k)
        expect_stats_equal(a.executed[k], b.executed[k]);
    EXPECT_DOUBLE_EQ(a.ev_ideal_fq, b.ev_ideal_fq);
    EXPECT_DOUBLE_EQ(a.ev_noisy_fq, b.ev_noisy_fq);
    EXPECT_DOUBLE_EQ(a.arg_baseline, b.arg_baseline);
    EXPECT_DOUBLE_EQ(a.arg_fq, b.arg_fq);
}

TEST(ExecutionEngine, ParallelSampledSolveBitIdenticalToSerial)
{
    // Per-sub-problem RNG streams derived from (seed, index) make even the
    // SAMPLED path schedule-independent: identical histograms, not just
    // statistically-equivalent ones.
    const auto model = ba_model(10, 1, 9);
    device::Device dev;
    dev.topology = device::make_grid(3, 4);
    dev.name = "grid-3x4-test";
    dev.calibration =
        device::Calibration::uniform(dev.topology, 1e-3, 5e-3, 500.0);

    frozenqubits::DriverConfig config;
    config.num_freeze = 2;

    ExecutionEngine serial(1);
    ExecutionEngine parallel(4);
    Rng rng_a(33), rng_b(33);
    const auto a = serial.solve(model, dev, config, 2048, rng_a);
    const auto b = parallel.solve(model, dev, config, 2048, rng_b);

    EXPECT_DOUBLE_EQ(a.best_cost, b.best_cost);
    EXPECT_EQ(a.best_assignment, b.best_assignment);
    EXPECT_EQ(a.from_subproblem, b.from_subproblem);
    ASSERT_EQ(a.distributions.size(), b.distributions.size());
    for (std::size_t s = 0; s < a.distributions.size(); ++s)
        EXPECT_EQ(a.distributions[s].histogram(),
                  b.distributions[s].histogram());
}

TEST(ExecutionEngine, TemplateCompiledOnceAndHitOnSiblings)
{
    const auto model = ba_model(12, 1, 5);
    const auto dev = device::make_device("ibm-montreal");
    frozenqubits::DriverConfig config;
    config.num_freeze = 2;

    ExecutionEngine eng(2);
    const auto report = eng.run(model, dev, config);
    ASSERT_EQ(report.num_executed, 2);

    // One transpiler run serves both executed sub-circuits: the second is
    // an RZ-angle edit of the compiled template, never a fresh compile.
    const auto& diag = eng.last_diagnostics();
    EXPECT_FALSE(diag.template_cache_hit); // first run must compile
    EXPECT_EQ(diag.template_edits, 1);
    EXPECT_GT(report.executed[0].compile_time_ms, 0.0);
    EXPECT_EQ(report.executed[1].compile_time_ms, 0.0);

    const auto cache_after_first = eng.template_cache().stats();
    // The shared template compiled through the family tier (one
    // structure-only transpile); the baseline arm used the legacy tier.
    EXPECT_EQ(cache_after_first.compiles, 1u);
    EXPECT_EQ(cache_after_first.family_structural_compiles, 1u);

    // A second run over the same structure is served from cache entirely.
    const auto again = eng.run(model, dev, config);
    EXPECT_TRUE(eng.last_diagnostics().template_cache_hit);
    const auto cache_after_second = eng.template_cache().stats();
    EXPECT_EQ(cache_after_second.compiles, cache_after_first.compiles);
    EXPECT_EQ(cache_after_second.family_structural_compiles, 1u);
    EXPECT_GT(cache_after_second.hits, cache_after_first.hits);
    EXPECT_GT(cache_after_second.family_hits,
              cache_after_first.family_hits);

    // Cached compiles must not change any result.
    EXPECT_DOUBLE_EQ(report.arg_fq, again.arg_fq);
    EXPECT_DOUBLE_EQ(report.arg_baseline, again.arg_baseline);
}

TEST(ExecutionEngine, MirrorPrunedTasksAreNeverExecuted)
{
    const auto model = ba_model(12, 1, 7); // h == 0: pruning applies
    ASSERT_TRUE(model.has_zero_linear_terms());
    const auto dev = device::make_device("ibm-montreal");
    frozenqubits::DriverConfig config;
    config.num_freeze = 3;

    ExecutionEngine eng(4);
    const auto report = eng.run(model, dev, config);
    const auto& diag = eng.last_diagnostics();

    EXPECT_EQ(report.num_subproblems, 8);
    EXPECT_EQ(report.num_executed, 4); // 2^{m-1}
    EXPECT_EQ(diag.mirrors_inferred, 4);

    // Executed and pruned index sets partition [0, 2^m) and are disjoint:
    // a pruned mirror is recovered by bit flipping, never run.
    const std::set<int> executed(diag.executed_subproblems.begin(),
                                 diag.executed_subproblems.end());
    const std::set<int> pruned(diag.pruned_subproblems.begin(),
                               diag.pruned_subproblems.end());
    EXPECT_EQ(executed.size(), 4u);
    EXPECT_EQ(pruned.size(), 4u);
    std::set<int> overlap;
    std::set_intersection(executed.begin(), executed.end(), pruned.begin(),
                          pruned.end(),
                          std::inserter(overlap, overlap.begin()));
    EXPECT_TRUE(overlap.empty());
    std::set<int> all;
    std::set_union(executed.begin(), executed.end(), pruned.begin(),
                   pruned.end(), std::inserter(all, all.begin()));
    EXPECT_EQ(all.size(), 8u);
}

TEST(ExecutionEngine, CacheDistinguishesLinearZeroPatterns)
{
    // Same quadratic topology, different h zero-patterns: without
    // keep_zero_linear_rz the builder emits RZs only for nonzero h_i, so a
    // shared engine must NOT serve one model's compiled baseline for the
    // other (regression: the cache key once ignored linear terms).
    const auto zero_h = ba_model(10, 1, 21); // Max-Cut: all h == 0
    ASSERT_TRUE(zero_h.has_zero_linear_terms());
    auto with_h = zero_h;
    for (int i = 0; i < with_h.num_spins(); ++i)
        with_h.set_linear(i, 0.5);

    const auto dev = device::make_device("ibm-montreal");
    frozenqubits::DriverConfig config;

    ExecutionEngine shared(1);
    const auto a = shared.evaluate(zero_h, dev, config);
    const auto b = shared.evaluate(with_h, dev, config);

    ExecutionEngine fresh(1);
    const auto b_fresh = fresh.evaluate(with_h, dev, config);
    expect_stats_equal(b, b_fresh);
    EXPECT_EQ(shared.template_cache().stats().compiles, 2u);
    (void)a;
}

TEST(ExecutionEngine, CacheDistinguishesDevicesStructurally)
{
    // Two hand-built devices aliasing on (name, qubit count) but with
    // different coupling maps must never be served each other's compiled
    // circuits by a shared engine (regression: the cache key once hashed
    // only the device name and width).
    const auto model = ba_model(10, 1, 13);
    frozenqubits::DriverConfig config;

    device::Device a;
    a.topology = device::make_grid(2, 6);
    a.name = "grid";
    a.calibration =
        device::Calibration::uniform(a.topology, 1e-3, 5e-3, 500.0);
    device::Device b;
    b.topology = device::make_grid(3, 4); // same 12 qubits, different map
    b.name = "grid";
    b.calibration =
        device::Calibration::uniform(b.topology, 1e-3, 5e-3, 500.0);

    ExecutionEngine shared(1);
    const auto ra = shared.evaluate(model, a, config);
    const auto rb = shared.evaluate(model, b, config);
    EXPECT_EQ(shared.template_cache().stats().compiles, 2u);

    ExecutionEngine fresh(1);
    expect_stats_equal(rb, fresh.evaluate(model, b, config));
    (void)ra;
}

TEST(ExecutionEngine, PartialExecutionRunsExactlyTheBudget)
{
    // The budgeted-execution contract: max_circuits = B < 2^{m-1} executes
    // exactly B leaf circuits, best-first, and any thread count is
    // bit-identical to serial (Report/SampledSolve acceptance).
    const auto model = ba_model(12, 1, 5);
    const auto dev = device::make_device("ibm-montreal");
    frozenqubits::DriverConfig config;
    config.num_freeze = 3;   // 4 canonical leaves
    config.max_circuits = 2; // B < 2^{m-1}

    ExecutionEngine serial(1);
    ExecutionEngine parallel(4);
    Rng rng_a(33), rng_b(33);
    const auto a = serial.solve(model, dev, config, 2048, rng_a);
    const auto b = parallel.solve(model, dev, config, 2048, rng_b);

    EXPECT_EQ(a.leaves_total, 4);
    EXPECT_EQ(a.leaves_executed, 2);
    EXPECT_EQ(serial.last_diagnostics().tasks_executed, 2);
    EXPECT_EQ(serial.last_diagnostics().leaves_beyond_budget, 2);
    EXPECT_TRUE(serial.last_diagnostics().scheduler_scored);
    // Exactly B distributions are non-empty (plus their flipped mirrors).
    int non_empty = 0;
    for (const auto& d : a.distributions)
        non_empty += d.total_shots() > 0 ? 1 : 0;
    EXPECT_EQ(non_empty, 4); // 2 executed + 2 mirror-inferred
    // Anytime trace: presolve point + one per executed circuit, with a
    // monotonically non-increasing incumbent.
    ASSERT_EQ(a.anytime.size(), 3u);
    EXPECT_EQ(a.anytime.front().circuits, 0);
    for (std::size_t p = 1; p < a.anytime.size(); ++p) {
        EXPECT_EQ(a.anytime[p].circuits, static_cast<int>(p));
        EXPECT_LE(a.anytime[p].incumbent_cost,
                  a.anytime[p - 1].incumbent_cost);
    }
    expect_solves_identical(a, b);
}

TEST(ExecutionEngine, RecursiveDepth2BitIdenticalAcrossThreads)
{
    // Depth-2 recursion: the root's 2^m children are re-frozen (mirror
    // pruning moves to the terminal level), and the determinism guarantee
    // must hold through the deeper tree — with and without a budget.
    const auto model = ba_model(12, 1, 9);
    const auto dev = device::make_device("ibm-montreal");
    frozenqubits::DriverConfig config;
    config.num_freeze = 2;
    config.max_depth = 2;

    ExecutionEngine serial(1);
    ExecutionEngine parallel(4);
    Rng rng_a(17), rng_b(17);
    const auto a = serial.solve(model, dev, config, 1024, rng_a);
    const auto b = parallel.solve(model, dev, config, 1024, rng_b);
    EXPECT_EQ(serial.last_diagnostics().tree_depth, 2);
    EXPECT_GT(serial.last_diagnostics().leaves_total, 4);
    expect_solves_identical(a, b);

    config.max_circuits = 5; // partial execution through the deep tree
    Rng rng_c(17), rng_d(17);
    const auto c = serial.solve(model, dev, config, 1024, rng_c);
    const auto d = parallel.solve(model, dev, config, 1024, rng_d);
    EXPECT_EQ(c.leaves_executed, 5);
    expect_solves_identical(c, d);
    // The budgeted run solves a subset of the full run's leaves; its best
    // decode can therefore never beat the full run's.
    EXPECT_GE(c.best_cost, a.best_cost);
}

TEST(ExecutionEngine, HybridPartitionSolveIsValidAndDeterministic)
{
    // Partition nodes drop cut couplings during the quantum phase; the
    // decode must still produce a full valid assignment whose reported
    // cost matches re-evaluation under the original Hamiltonian.
    const auto model = ba_model(16, 1, 21);
    const auto dev = device::make_device("ibm-montreal");
    frozenqubits::DriverConfig config;
    config.num_freeze = 2;
    config.max_depth = 2;
    config.partition_width = 12; // root (16 spins) gets bisected

    ExecutionEngine serial(1);
    ExecutionEngine parallel(4);
    Rng rng_a(3), rng_b(3);
    const auto a = serial.solve(model, dev, config, 1024, rng_a);
    const auto b = parallel.solve(model, dev, config, 1024, rng_b);

    ASSERT_EQ(a.best_assignment.size(),
              static_cast<std::size_t>(model.num_spins()));
    for (auto z : a.best_assignment)
        EXPECT_TRUE(z == 1 || z == -1);
    EXPECT_DOUBLE_EQ(a.best_cost, model.evaluate(a.best_assignment));
    expect_solves_identical(a, b);
}

TEST(Reducer, ReportWithNoExecutedTasksFailsLoudly)
{
    // Regression: an all-skipped (or empty) execution used to flow +inf
    // EVs into the report and silently produce a bogus approximation-ratio
    // gap; it must throw instead of looking like a solved instance.
    ExecutionPlan plan; // no tasks
    frozenqubits::CircuitStats baseline;
    baseline.ev_ideal = -1.0;
    baseline.ev_noisy = -0.5;
    EXPECT_THROW(reduce_report(plan, baseline, {}), fq::Error);
}

TEST(ExecutionEngine, FacadeMatchesEngine)
{
    // run_pipeline is a facade over the engine; both paths must agree.
    const auto model = ba_model(12, 1, 11);
    const auto dev = device::make_device("ibm-hanoi");
    frozenqubits::DriverConfig config;
    config.num_freeze = 2;
    config.threads = 2;

    ExecutionEngine eng(2);
    const auto a = eng.run(model, dev, config);
    const auto b = frozenqubits::run_pipeline(model, dev, config);
    EXPECT_EQ(a.hotspots, b.hotspots);
    EXPECT_DOUBLE_EQ(a.arg_baseline, b.arg_baseline);
    EXPECT_DOUBLE_EQ(a.arg_fq, b.arg_fq);
    expect_stats_equal(a.baseline, b.baseline);
}

TEST(ExecutionEngine, ParametricTemplatesOnOffBitIdenticalAcrossThreads)
{
    // --no-param-templates A/B: the family tier only changes WHERE a fused
    // program comes from (coefficient patch vs from-scratch build), never
    // its contents — so solves are bit-identical with the tier on or off,
    // serial or pooled.
    const auto model = ba_model(12, 1, 13);
    const auto dev = device::make_device("ibm-montreal");

    frozenqubits::DriverConfig on;
    on.num_freeze = 2;
    ASSERT_TRUE(on.parametric_templates); // family tier is the default
    auto off = on;
    off.parametric_templates = false;

    ExecutionEngine eng_on_serial(1), eng_on_pool(4);
    ExecutionEngine eng_off_serial(1), eng_off_pool(4);
    Rng r1(77), r2(77), r3(77), r4(77);
    const auto a = eng_on_serial.solve(model, dev, on, 1024, r1);
    const auto b = eng_on_pool.solve(model, dev, on, 1024, r2);
    const auto c = eng_off_serial.solve(model, dev, off, 1024, r3);
    const auto d = eng_off_pool.solve(model, dev, off, 1024, r4);
    expect_solves_identical(a, b);
    expect_solves_identical(a, c);
    expect_solves_identical(a, d);

    // Tier preview accounting: a fresh family-tier engine has nothing
    // resident (no Hit leaves) and binds the structural compile's
    // siblings; with the tier off every leaf compiles and the family maps
    // are never consulted.
    const auto& diag_on = eng_on_pool.last_diagnostics();
    EXPECT_EQ(diag_on.leaves_tier_hit, 0);
    EXPECT_GT(diag_on.leaves_tier_bind, 0);
    const auto& diag_off = eng_off_pool.last_diagnostics();
    EXPECT_EQ(diag_off.leaves_tier_hit, 0);
    EXPECT_EQ(diag_off.leaves_tier_bind, 0);
    EXPECT_GT(diag_off.leaves_tier_compile, 0);
    EXPECT_EQ(eng_off_pool.template_cache().stats().family_lookups, 0u);

    // A repeat on the warm engine previews resident leaves as Hits, with
    // the result unchanged.
    Rng r5(77);
    const auto e = eng_on_pool.solve(model, dev, on, 1024, r5);
    expect_solves_identical(a, e);
    EXPECT_GT(eng_on_pool.last_diagnostics().leaves_tier_hit, 0);
}

TEST(TemplateCache, FamilyByteAccountingExactAtEvictionBoundary)
{
    // Regression for the family-tier accounting gap: shared structure is
    // charged ONCE per labeled variant, per-bind tables per value entry,
    // and eviction releases exactly what was charged — the pool split must
    // reconcile with bytes() at every step.
    TemplateCache cache;
    const auto dev = device::make_device("ibm-montreal");
    transpiler::CompileOptions compile_opts;
    qaoa::BuildOptions build;

    const auto model_a = ba_model(10, 1, 41);
    const auto first = cache.get_or_bind(model_a, dev, compile_opts, build);
    EXPECT_EQ(first.tier, TemplateTier::Compile);
    auto stats = cache.stats();
    EXPECT_EQ(stats.structure_bytes, first.family->bytes());
    EXPECT_EQ(stats.bind_bytes, 0u);
    EXPECT_EQ(cache.bytes(), stats.structure_bytes + stats.bind_bytes +
                                 stats.template_bytes);

    // Per-bind tables charge the value pool, never the structure pool.
    const auto program_a =
        cache.get_or_fuse(model_a, build, nullptr, first.family.get());
    stats = cache.stats();
    EXPECT_EQ(stats.bind_bytes, program_a->bytes());
    EXPECT_EQ(stats.structure_bytes, first.family->bytes());

    // A second member of the same family: new tables, NO new structure.
    auto member = model_a;
    for (const auto& term : member.quadratic_terms())
        member.add_quadratic(term.i, term.j, 0.5);
    const auto second = cache.get_or_bind(member, dev, compile_opts, build);
    EXPECT_EQ(second.tier, TemplateTier::Bind);
    EXPECT_EQ(second.family.get(), first.family.get()); // shared structure
    const auto program_b =
        cache.get_or_fuse(member, build, nullptr, second.family.get());
    stats = cache.stats();
    EXPECT_EQ(stats.structure_bytes, first.family->bytes()); // still once
    EXPECT_EQ(stats.bind_bytes, program_a->bytes() + program_b->bytes());
    EXPECT_EQ(stats.family_binds, 2u);

    // Family eviction at the budget boundary: the reset drops the resident
    // variant and recharges EXACTLY the incoming structure's bytes.
    cache.set_byte_budgets(0, 1);
    const auto model_b = ba_model(8, 1, 43); // different structure
    const auto third = cache.get_or_bind(model_b, dev, compile_opts, build);
    EXPECT_EQ(third.tier, TemplateTier::Compile);
    stats = cache.stats();
    EXPECT_EQ(stats.family_evictions, 1u);
    EXPECT_EQ(stats.structure_bytes, third.family->bytes());

    // Sim-pool eviction boundary: same exact-recharge contract.
    cache.set_byte_budgets(1, 0);
    const auto program_c =
        cache.get_or_fuse(model_b, build, nullptr, third.family.get());
    stats = cache.stats();
    EXPECT_EQ(stats.sim_evictions, 2u); // both resident programs dropped
    EXPECT_EQ(stats.bind_bytes, program_c->bytes());
    EXPECT_EQ(cache.bytes(), stats.structure_bytes + stats.bind_bytes +
                                 stats.template_bytes);

    cache.clear();
    EXPECT_EQ(cache.bytes(), 0u);
    stats = cache.stats();
    EXPECT_EQ(stats.structure_bytes, 0u);
    EXPECT_EQ(stats.bind_bytes, 0u);
    EXPECT_EQ(stats.template_bytes, 0u);
}

} // namespace
