/**
 * @file
 * Backend registry tests: scalar-vs-vectorized parity at kernel edge
 * widths (1-qubit leaves, odd mixer walls, uncompressed tables), the
 * 63/64-bit low_bits_mask boundary, bit-identical sampled counts across
 * backends, plan-time backend selection (pure function of config and
 * width; thread-count invariant), aligned amplitude storage, and the
 * template cache's full-footprint byte accounting for fused programs.
 */
#include <gtest/gtest.h>

#include <cstdint>

#include "common/aligned.h"
#include "common/bitops.h"
#include "device/catalog.h"
#include "engine/engine.h"
#include "engine/solve_tree.h"
#include "engine/template_cache.h"
#include "qaoa/qaoa_builder.h"
#include "sim/backend.h"
#include "sim/qaoa_kernel.h"
#include "sim/simd.h"
#include "sim/statevector.h"
#include "solve_test_util.h"

namespace {

using namespace fq;
using fq::test::ba_model;
using fq::test::expect_solves_identical;

/** Single-spin instance (the 1-qubit leaf edge case). */
ising::IsingModel
single_spin_model()
{
    ising::IsingModel model(1);
    model.set_linear(0, 0.7);
    return model;
}

/** Run one compiled program on both backends at random angles; assert
 *  amplitudes within 1e-12 and sampled counts bit-identical. */
void
expect_backend_parity(const ising::IsingModel& model, int num_layers,
                      std::uint64_t seed)
{
    qaoa::BuildOptions build;
    build.num_layers = num_layers;
    const sim::FusedProgram program(
        qaoa::build_qaoa_circuit(model, build));

    Rng angles(seed);
    std::vector<double> gammas, betas;
    for (int l = 0; l < num_layers; ++l) {
        gammas.push_back(angles.uniform(-1.5, 1.5));
        betas.push_back(angles.uniform(-1.5, 1.5));
    }

    const auto& registry = sim::BackendRegistry::instance();
    sim::Statevector scalar_state, simd_state;
    program.run(gammas, betas, scalar_state, registry.scalar());
    program.run(gammas, betas, simd_state, registry.vectorized());

    ASSERT_EQ(scalar_state.dimension(), simd_state.dimension());
    for (std::uint64_t s = 0; s < scalar_state.dimension(); ++s)
        EXPECT_NEAR(std::abs(scalar_state.amplitude(s) -
                             simd_state.amplitude(s)),
                    0.0, 1e-12)
            << "state " << s << " width " << model.num_spins();

    // The acceptance contract is stronger than amplitude closeness:
    // fixed-seed sampling must agree BIT FOR BIT across backends.
    Rng sample_scalar(seed ^ 0xabcdef12u), sample_simd(seed ^ 0xabcdef12u);
    EXPECT_EQ(scalar_state.sample(4096, sample_scalar),
              simd_state.sample(4096, sample_simd))
        << "counts diverged at width " << model.num_spins();
}

TEST(Backend, ParityAcrossWidthsIncludingEdges)
{
    // 1-qubit leaf: the mixer wall is a bare odd tail, the diagonal table
    // has two states.
    expect_backend_parity(single_spin_model(), 1, 11);
    expect_backend_parity(single_spin_model(), 2, 12);
    // Odd widths exercise odd mixer walls (unpaired tail qubit); width 2
    // and 3 exercise the lo==1 quad path the vector kernels fall back on.
    for (int n : {2, 3, 4, 5, 6, 11, 13})
        for (int p : {1, 2})
            expect_backend_parity(ba_model(n, 1, 100 + n), p,
                                  1000 + n * 10 + p);
}

TEST(Backend, ParityOnUncompressedTables)
{
    // Force the raw (uncompressed) weight-table path on both backends —
    // the vectorized kernel has a separate diag_apply_raw routine that
    // must match the scalar one bit for bit too.
    const auto model = ba_model(12, 2, 77);
    qaoa::BuildOptions build;
    build.num_layers = 2;
    const sim::FusedProgram program(
        qaoa::build_qaoa_circuit(model, build), /*build_luts=*/false);

    const std::vector<double> gammas{0.35, -0.6}, betas{0.8, 0.25};
    const auto& registry = sim::BackendRegistry::instance();
    sim::Statevector scalar_state, simd_state;
    program.run(gammas, betas, scalar_state, registry.scalar());
    program.run(gammas, betas, simd_state, registry.vectorized());

    ASSERT_EQ(scalar_state.dimension(), simd_state.dimension());
    for (std::uint64_t s = 0; s < scalar_state.dimension(); ++s)
        EXPECT_NEAR(std::abs(scalar_state.amplitude(s) -
                             simd_state.amplitude(s)),
                    0.0, 1e-12);
    Rng a(5), b(5);
    EXPECT_EQ(scalar_state.sample(2048, a), simd_state.sample(2048, b));
}

TEST(Backend, EnergyFoldMatchesScalarExpectation)
{
    const auto model = ba_model(12, 2, 5);
    qaoa::BuildOptions build;
    build.num_layers = 2;
    const sim::FusedProgram program(
        qaoa::build_qaoa_circuit(model, build));
    const sim::EnergyTable table(model);

    sim::Statevector state;
    program.run({0.4, 0.7}, {0.3, 0.9}, state);

    const auto& registry = sim::BackendRegistry::instance();
    const double scalar_ev = registry.scalar().expectation(table, state);
    const double simd_ev = registry.vectorized().expectation(table, state);
    EXPECT_NEAR(scalar_ev, simd_ev, 1e-12);
}

TEST(Backend, LowBitsMaskBoundary)
{
    // The mirror decode flips sampled states against low_bits_mask(n);
    // the 63/64-bit boundary must not shift off the top bit.
    EXPECT_EQ(low_bits_mask(63), ~std::uint64_t{0} >> 1);
    EXPECT_EQ(low_bits_mask(64), ~std::uint64_t{0});
    EXPECT_EQ(low_bits_mask(1), 1ull);
    EXPECT_EQ(low_bits_mask(0), 0ull);
}

TEST(Backend, SelectionIsAPureFunctionOfConfigAndWidth)
{
    using sim::BackendKind;
    using sim::BackendSelection;
    for (int n = 1; n <= sim::kMaxSimQubits; ++n) {
        EXPECT_EQ(sim::select_backend(BackendSelection::Scalar, n),
                  BackendKind::ScalarFused);
        EXPECT_EQ(sim::select_backend(BackendSelection::Simd, n),
                  BackendKind::VectorizedFused);
        EXPECT_EQ(sim::select_backend(BackendSelection::Auto, n),
                  n >= sim::kAutoVectorizeMinQubits
                      ? BackendKind::VectorizedFused
                      : BackendKind::ScalarFused);
    }
    sim::BackendSelection parsed;
    EXPECT_TRUE(sim::parse_backend_selection("auto", &parsed));
    EXPECT_EQ(parsed, BackendSelection::Auto);
    EXPECT_TRUE(sim::parse_backend_selection("scalar", &parsed));
    EXPECT_EQ(parsed, BackendSelection::Scalar);
    EXPECT_TRUE(sim::parse_backend_selection("simd", &parsed));
    EXPECT_EQ(parsed, BackendSelection::Simd);
    EXPECT_FALSE(sim::parse_backend_selection("gpu", &parsed));
}

TEST(Backend, RegistryServesBothKindsAndReportsIsa)
{
    const auto& registry = sim::BackendRegistry::instance();
    EXPECT_EQ(registry.get(sim::BackendKind::ScalarFused).kind(),
              sim::BackendKind::ScalarFused);
    EXPECT_EQ(registry.get(sim::BackendKind::VectorizedFused).kind(),
              sim::BackendKind::VectorizedFused);
    EXPECT_STREQ(sim::BackendRegistry::vector_isa(),
                 sim::simd::compiled_isa());
    // Whatever ISA this binary was compiled for must be runnable here —
    // an AVX2 binary on a non-AVX2 host would die in the kernels anyway.
    EXPECT_TRUE(sim::simd::compiled_isa_supported());
    // Feature detection itself must be safe to call anywhere.
    (void)sim::simd::detect_cpu_features();
}

TEST(Backend, PlanRecordsBackendPerLeafAtPlanTime)
{
    const auto model = ba_model(14, 1, 9);
    const auto dev = device::make_device("ibm-montreal");
    frozenqubits::DriverConfig config;
    config.num_freeze = 2;
    config.max_depth = 2; // mixed leaf widths across levels

    for (auto selection : {sim::BackendSelection::Auto,
                           sim::BackendSelection::Scalar,
                           sim::BackendSelection::Simd}) {
        config.backend = selection;
        engine::TemplateCache cache;
        Rng rng(config.seed);
        const auto tree =
            engine::build_solve_tree(model, dev, config, cache, rng);
        ASSERT_FALSE(tree.leaves.empty());
        for (const auto& leaf : tree.leaves) {
            const int width =
                tree.nodes[static_cast<std::size_t>(leaf.node)]
                    .sub.model.num_spins();
            EXPECT_EQ(leaf.backend,
                      sim::select_backend(selection, width));
        }
    }
}

TEST(Backend, SolvesBitIdenticalAcrossBackends)
{
    // End-to-end: forced scalar vs forced vectorized solves of the same
    // instance (mirror decode included — the low_bits_mask flip runs over
    // counts sampled from vectorized amplitudes) must agree bit for bit.
    const auto model = ba_model(12, 1, 9);
    const auto dev = device::make_device("ibm-montreal");
    frozenqubits::DriverConfig config;
    config.num_freeze = 2;

    config.backend = sim::BackendSelection::Scalar;
    engine::ExecutionEngine scalar_engine(2);
    Rng rng_scalar(33);
    const auto scalar_solve =
        scalar_engine.solve(model, dev, config, 2048, rng_scalar);

    config.backend = sim::BackendSelection::Simd;
    engine::ExecutionEngine simd_engine(2);
    Rng rng_simd(33);
    const auto simd_solve =
        simd_engine.solve(model, dev, config, 2048, rng_simd);

    expect_solves_identical(scalar_solve, simd_solve);
}

TEST(Backend, AutoSelectionIsThreadCountInvariant)
{
    // The determinism acceptance for --backend auto: the choice is fixed
    // at plan time, so serial and oversubscribed engines sample
    // identically even with scalar and vectorized leaves mixed in one
    // tree.
    const auto model = ba_model(14, 1, 21);
    const auto dev = device::make_device("ibm-montreal");
    frozenqubits::DriverConfig config;
    config.num_freeze = 2;
    config.max_depth = 2;
    config.backend = sim::BackendSelection::Auto;

    engine::ExecutionEngine serial(1);
    engine::ExecutionEngine parallel(4);
    Rng rng_a(17), rng_b(17);
    const auto a = serial.solve(model, dev, config, 1024, rng_a);
    const auto b = parallel.solve(model, dev, config, 1024, rng_b);
    expect_solves_identical(a, b);

    const auto& diag = parallel.last_diagnostics();
    EXPECT_GT(diag.leaves_scalar_backend + diag.leaves_simd_backend, 0);
}

TEST(StatevectorAlignment, ConstructionAndResetPreserveAlignment)
{
    const auto aligned = [](const sim::Statevector& sv) {
        return reinterpret_cast<std::uintptr_t>(sv.data()) %
                   kAmplitudeAlignment ==
               0;
    };
    for (int n : {1, 2, 3, 7, 12, 16}) {
        sim::Statevector sv(n);
        EXPECT_TRUE(aligned(sv)) << "construction width " << n;
        sv.reset(n);
        EXPECT_TRUE(aligned(sv)) << "reset width " << n;
        sv.reset_uniform(n);
        EXPECT_TRUE(aligned(sv)) << "reset_uniform width " << n;
    }
    // The engine's scratch pattern: one buffer re-shaped across widths
    // (grow and shrink) must stay aligned through every resize.
    sim::Statevector scratch;
    for (int n : {4, 12, 6, 1, 16, 2}) {
        scratch.reset(n);
        EXPECT_TRUE(aligned(scratch)) << "scratch resize to " << n;
    }
}

TEST(TemplateCacheAccounting, FusedEntriesChargeFullProgramFootprint)
{
    engine::TemplateCache cache;
    const auto model = ba_model(8, 1, 3);
    qaoa::BuildOptions build;

    bool hit = true;
    const auto program = cache.get_or_fuse(model, build, &hit);
    EXPECT_FALSE(hit);
    // The budget must charge the FULL footprint — tables plus the
    // compiled op list — not table_bytes() alone (the old undercount).
    EXPECT_GT(program->bytes(), program->table_bytes());
    EXPECT_EQ(cache.bytes(), program->bytes());

    const auto again = cache.get_or_fuse(model, build, &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(again.get(), program.get());
    EXPECT_EQ(cache.bytes(), program->bytes());

    cache.clear();
    EXPECT_EQ(cache.bytes(), 0u);
}

} // namespace
