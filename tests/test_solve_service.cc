/**
 * @file
 * SolveService tests: the multi-tenant acceptance contract — a request's
 * result is bit-identical whether it runs alone on a private engine or
 * interleaved with K-1 concurrent tenants in shared executor waves, at any
 * thread count — plus failure isolation (one tenant's error never poisons a
 * wave), wave-share fairness caps, completion callbacks and per-tenant
 * diagnostics.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "common/error.h"
#include "device/catalog.h"
#include "engine/engine.h"
#include "engine/solve_service.h"
#include "graph/generators.h"
#include "ising/ising_model.h"
#include "solve_test_util.h"

namespace {

using namespace fq;
using namespace fq::engine;
using fq::test::ba_model;
using fq::test::expect_solves_identical;

/** One tenant's workload: every SolveTree mode the engine supports. */
struct Workload
{
    ising::IsingModel model;
    frozenqubits::DriverConfig config;
    int shots = 0;
    std::uint64_t seed = 0;
};

std::vector<Workload>
mixed_workloads()
{
    std::vector<Workload> w;
    { // flat, unbudgeted (legacy reduction path)
        Workload a;
        a.model = ba_model(12, 1, 5);
        a.config.num_freeze = 3;
        a.shots = 1024;
        a.seed = 33;
        w.push_back(std::move(a));
    }
    { // flat, budget-cut schedule
        Workload b;
        b.model = ba_model(12, 1, 7);
        b.config.num_freeze = 3;
        b.config.max_circuits = 2;
        b.shots = 1024;
        b.seed = 44;
        w.push_back(std::move(b));
    }
    { // recursive depth-2
        Workload c;
        c.model = ba_model(12, 1, 9);
        c.config.num_freeze = 2;
        c.config.max_depth = 2;
        c.shots = 512;
        c.seed = 17;
        w.push_back(std::move(c));
    }
    { // hybrid partition + repair decode
        Workload d;
        d.model = ba_model(16, 1, 21);
        d.config.num_freeze = 2;
        d.config.max_depth = 2;
        d.config.partition_width = 12;
        d.shots = 512;
        d.seed = 3;
        w.push_back(std::move(d));
    }
    { // forced vectorized backend (every leaf through the SIMD kernels)
        Workload e;
        e.model = ba_model(14, 1, 11);
        e.config.num_freeze = 2;
        e.config.backend = sim::BackendSelection::Simd;
        e.shots = 512;
        e.seed = 59;
        w.push_back(std::move(e));
    }
    return w;
}

/** Solo reference: a fresh serial engine per workload (cold caches). */
std::vector<frozenqubits::SampledSolve>
solo_references(const std::vector<Workload>& workloads,
                const device::Device& dev)
{
    std::vector<frozenqubits::SampledSolve> refs;
    for (const auto& w : workloads) {
        ExecutionEngine solo(1);
        Rng rng(w.seed);
        refs.push_back(solo.solve(w.model, dev, w.config, w.shots, rng));
    }
    return refs;
}

TEST(SolveService, SingleRequestBitIdenticalToEngineSolve)
{
    const auto dev = device::make_device("ibm-montreal");
    for (const auto& w : mixed_workloads()) {
        ExecutionEngine solo(1);
        Rng rng(w.seed);
        const auto expected =
            solo.solve(w.model, dev, w.config, w.shots, rng);

        ExecutionEngine eng(4);
        SolveService service(eng);
        auto ticket =
            service.submit(w.model, dev, w.config, w.shots, w.seed);
        expect_solves_identical(ticket.get(), expected);
    }
}

TEST(SolveService, InterleavedTenantsBitIdenticalToSoloAtAnyThreadCount)
{
    // THE acceptance contract: K=4 tenants with mixed tree modes submit
    // concurrently (from 4 submitter threads, so planning also overlaps)
    // and each result matches its solo serial reference bit for bit — for
    // a serial, a small and an oversubscribed engine.
    const auto dev = device::make_device("ibm-montreal");
    const auto workloads = mixed_workloads();
    const auto refs = solo_references(workloads, dev);

    for (int threads : {1, 2, 4}) {
        ExecutionEngine eng(threads);
        SolveService::Config config;
        config.wave_size = 3; // force cross-request waves + carryover
        SolveService service(eng, config);

        std::vector<SolveService::Ticket> tickets(workloads.size());
        std::vector<std::thread> submitters;
        for (std::size_t k = 0; k < workloads.size(); ++k)
            submitters.emplace_back([&, k] {
                const auto& w = workloads[k];
                tickets[k] =
                    service.submit(w.model, dev, w.config, w.shots, w.seed);
            });
        for (auto& t : submitters)
            t.join();

        for (std::size_t k = 0; k < workloads.size(); ++k)
            expect_solves_identical(tickets[k].get(), refs[k]);

        // get() returns on promise fulfilment; drain() is the barrier for
        // the service-side bookkeeping (counters, diagnostics).
        service.drain();
        const auto stats = service.stats();
        EXPECT_EQ(stats.requests_submitted, workloads.size());
        EXPECT_EQ(stats.requests_completed, workloads.size());
        EXPECT_EQ(stats.requests_failed, 0u);
        EXPECT_GT(stats.waves_executed, 0u);
    }
}

TEST(SolveService, RepeatedSubmissionIsReproducible)
{
    // The service itself is deterministic request-by-request: submitting
    // the same workload twice (warm cache the second time) returns
    // identical results.
    const auto dev = device::make_device("ibm-montreal");
    const auto w = mixed_workloads()[2];

    ExecutionEngine eng(2);
    SolveService service(eng);
    auto first = service.submit(w.model, dev, w.config, w.shots, w.seed);
    const auto a = first.get();
    auto second = service.submit(w.model, dev, w.config, w.shots, w.seed);
    expect_solves_identical(second.get(), a);
}

TEST(SolveService, WarmCacheServesSecondTenantsFusedPrograms)
{
    const auto dev = device::make_device("ibm-montreal");
    const auto w = mixed_workloads()[0];

    ExecutionEngine eng(2);
    SolveService service(eng);
    auto first = service.submit(w.model, dev, w.config, w.shots, w.seed);
    first.wait();
    auto second = service.submit(w.model, dev, w.config, w.shots, w.seed);
    second.wait();
    service.drain();

    const auto cold = service.diagnostics(first.id());
    const auto warm = service.diagnostics(second.id());
    EXPECT_EQ(cold.leaves_executed, cold.leaves_scheduled);
    EXPECT_GT(cold.fused_lookups, 0u);
    // Every one of the second tenant's fused programs was compiled by the
    // first — the cross-tenant cache amortization the service exists for.
    EXPECT_DOUBLE_EQ(warm.cache_hit_share, 1.0);
    EXPECT_GT(warm.wave_occupancy, 0.0);
    EXPECT_LE(warm.wave_occupancy, 1.0);
    EXPECT_GE(warm.queue_latency_ms, 0.0);
    EXPECT_GE(warm.wall_ms, warm.queue_latency_ms);
}

TEST(SolveService, PerBackendCountersSplitFusedTraffic)
{
    const auto dev = device::make_device("ibm-montreal");

    // Forced-simd tenant: every fused lookup lands in the simd bucket.
    const auto simd_w = mixed_workloads()[4];
    ASSERT_EQ(simd_w.config.backend, sim::BackendSelection::Simd);
    ExecutionEngine eng(2);
    SolveService service(eng);
    auto simd_req =
        service.submit(simd_w.model, dev, simd_w.config, simd_w.shots,
                       simd_w.seed);
    simd_req.wait();

    // Forced-scalar tenant on the same service: scalar bucket only.
    auto scalar_w = mixed_workloads()[0];
    scalar_w.config.backend = sim::BackendSelection::Scalar;
    auto scalar_req =
        service.submit(scalar_w.model, dev, scalar_w.config,
                       scalar_w.shots, scalar_w.seed);
    scalar_req.wait();
    service.drain();

    const auto simd_diag = service.diagnostics(simd_req.id());
    EXPECT_GT(simd_diag.fused_lookups, 0u);
    EXPECT_EQ(simd_diag.fused_lookups_simd, simd_diag.fused_lookups);
    EXPECT_EQ(simd_diag.fused_hits_simd, simd_diag.fused_hits);
    EXPECT_EQ(simd_diag.fused_lookups_scalar, 0u);
    EXPECT_EQ(simd_diag.fused_hits_scalar, 0u);

    const auto scalar_diag = service.diagnostics(scalar_req.id());
    EXPECT_GT(scalar_diag.fused_lookups, 0u);
    EXPECT_EQ(scalar_diag.fused_lookups_scalar,
              scalar_diag.fused_lookups);
    EXPECT_EQ(scalar_diag.fused_hits_scalar, scalar_diag.fused_hits);
    EXPECT_EQ(scalar_diag.fused_lookups_simd, 0u);
    EXPECT_EQ(scalar_diag.fused_hits_simd, 0u);

    // The per-backend split always sums to the totals.
    for (const auto& d : {simd_diag, scalar_diag}) {
        EXPECT_EQ(d.fused_lookups_scalar + d.fused_lookups_simd,
                  d.fused_lookups);
        EXPECT_EQ(d.fused_hits_scalar + d.fused_hits_simd, d.fused_hits);
    }
}

TEST(SolveService, FailedTenantDoesNotPoisonTheWave)
{
    // A request whose leaves are too wide for the statevector fails at
    // execution time; co-tenants sharing its waves must still complete
    // with bit-identical results.
    const auto dev = device::make_device("ibm-montreal");
    const auto good = mixed_workloads()[0];
    ExecutionEngine solo(1);
    Rng rng(good.seed);
    const auto expected =
        solo.solve(good.model, dev, good.config, good.shots, rng);

    device::Device wide_dev;
    wide_dev.topology = device::make_grid(4, 7); // 28 qubits
    wide_dev.name = "grid-4x7-test";
    wide_dev.calibration =
        device::Calibration::uniform(wide_dev.topology, 1e-3, 5e-3, 500.0);
    Workload bad;
    bad.model = ba_model(28, 1, 51); // 27-spin leaves > kMaxSimQubits
    bad.config.num_freeze = 1;
    bad.shots = 64;
    bad.seed = 9;

    ExecutionEngine eng(4);
    SolveService service(eng);
    auto good_ticket = service.submit(good.model, dev, good.config,
                                      good.shots, good.seed);
    auto bad_ticket = service.submit(bad.model, wide_dev, bad.config,
                                     bad.shots, bad.seed);

    expect_solves_identical(good_ticket.get(), expected);
    EXPECT_THROW(bad_ticket.get(), fq::Error);

    service.drain();
    const auto stats = service.stats();
    EXPECT_EQ(stats.requests_completed, 1u);
    EXPECT_EQ(stats.requests_failed, 1u);
    // Failure diagnostics still report what ran.
    const auto diag = service.diagnostics(bad_ticket.id());
    EXPECT_LT(diag.leaves_executed, diag.leaves_scheduled);
}

TEST(SolveService, WaveShareCapBoundsPerWaveOccupancy)
{
    const auto dev = device::make_device("ibm-montreal");
    auto w = mixed_workloads()[0]; // 4 scheduled leaves
    w.config.wave_share = 1;       // one leaf per wave for this tenant

    ExecutionEngine eng(4);
    SolveService service(eng);
    auto ticket = service.submit(w.model, dev, w.config, w.shots, w.seed);
    ticket.wait();
    service.drain();

    const auto diag = service.diagnostics(ticket.id());
    EXPECT_EQ(diag.leaves_executed, diag.leaves_scheduled);
    // The cap forces one wave per leaf even with the pool idle.
    EXPECT_EQ(diag.waves, diag.leaves_scheduled);
}

TEST(SolveService, CompletionCallbackFiresWithTheResult)
{
    const auto dev = device::make_device("ibm-montreal");
    const auto w = mixed_workloads()[1];

    ExecutionEngine eng(2);
    SolveService service(eng);
    std::atomic<int> calls{0};
    double callback_cost = 0.0;
    std::uint64_t callback_id = 0;
    int callback_leaves = -1;
    auto ticket = service.submit(
        w.model, dev, w.config, w.shots, w.seed,
        [&](std::uint64_t id, const frozenqubits::SampledSolve& solved) {
            callback_id = id;
            callback_cost = solved.best_cost;
            // Diagnostics publish before delivery, so a callback may read
            // its OWN request's (must not call drain(), though).
            callback_leaves = service.diagnostics(id).leaves_executed;
            calls.fetch_add(1);
        });
    const auto solved = ticket.get();
    service.drain();
    EXPECT_EQ(calls.load(), 1);
    EXPECT_EQ(callback_id, ticket.id());
    EXPECT_DOUBLE_EQ(callback_cost, solved.best_cost);
    EXPECT_EQ(callback_leaves, solved.leaves_executed);

    // A throwing callback violates the contract but must be contained:
    // the result is still delivered and the service stays alive.
    auto rogue = service.submit(
        w.model, dev, w.config, w.shots, w.seed,
        [](std::uint64_t, const frozenqubits::SampledSolve&) {
            throw std::runtime_error("rogue callback");
        });
    EXPECT_DOUBLE_EQ(rogue.get().best_cost, solved.best_cost);
    auto after = service.submit(w.model, dev, w.config, w.shots, w.seed);
    EXPECT_DOUBLE_EQ(after.get().best_cost, solved.best_cost);
}

TEST(SolveService, DiagnosticsForUnknownRequestThrow)
{
    ExecutionEngine eng(1);
    SolveService service(eng);
    EXPECT_THROW(service.diagnostics(12345), fq::Error);
}

TEST(SolveService, RerankParityWithSoloUnderAdversarialInterleaving)
{
    // Adaptive re-ranking must survive multi-tenancy: a request with
    // rerank on, interleaved with co-tenants in tiny shared waves (the
    // adversarial composition — its epoch boundaries land mid-wave), is
    // bit-identical to the same request on a solo serial engine. The
    // epoch snapshot and the dispatch_limit cap are exactly what makes
    // this hold.
    const auto dev = device::make_device("ibm-montreal");
    auto workloads = mixed_workloads();
    workloads[1].config.rerank_interval = 1; // flat budgeted tenant
    workloads[2].config.rerank_interval = 2; // recursive depth-2 tenant
    workloads[3].config.rerank_interval = 1; // hybrid partition tenant
    const auto refs = solo_references(workloads, dev);

    for (int threads : {1, 4}) {
        ExecutionEngine eng(threads);
        SolveService::Config config;
        config.wave_size = 2; // force boundary-straddling co-tenancy
        SolveService service(eng, config);

        std::vector<SolveService::Ticket> tickets(workloads.size());
        std::vector<std::thread> submitters;
        for (std::size_t k = 0; k < workloads.size(); ++k)
            submitters.emplace_back([&, k] {
                const auto& w = workloads[k];
                tickets[k] =
                    service.submit(w.model, dev, w.config, w.shots, w.seed);
            });
        for (auto& t : submitters)
            t.join();

        for (std::size_t k = 0; k < workloads.size(); ++k)
            expect_solves_identical(tickets[k].get(), refs[k]);
        service.drain();

        // Re-rank telemetry must match the solo engine's too: boundaries
        // depend on the request's own fold count, not the service's waves.
        for (std::size_t k = 1; k < workloads.size(); ++k) {
            const auto& w = workloads[k];
            ExecutionEngine solo(1);
            Rng rng(w.seed);
            (void)solo.solve(w.model, dev, w.config, w.shots, rng);
            const auto diag = service.diagnostics(tickets[k].id());
            EXPECT_EQ(diag.reranks, solo.last_diagnostics().reranks);
            EXPECT_EQ(diag.rerank_pruned,
                      solo.last_diagnostics().rerank_pruned);
            EXPECT_EQ(diag.rerank_promoted,
                      solo.last_diagnostics().rerank_promoted);
        }
    }
}

TEST(SolveService, AdmissionControlRejectsBeyondQueueDepth)
{
    const auto dev = device::make_device("ibm-montreal");
    // A deep workload: 8 scheduled 16-qubit leaves keep the service busy
    // far longer than the submit() that must bounce off the full queue.
    Workload heavy;
    heavy.model = ba_model(20, 3, 41);
    heavy.config.num_freeze = 4;
    heavy.shots = 8192;
    heavy.seed = 13;

    ExecutionEngine eng(2);
    SolveService::Config config;
    config.max_queue_depth = 1;
    SolveService service(eng, config);

    auto admitted = service.submit(heavy.model, dev, heavy.config,
                                   heavy.shots, heavy.seed);
    EXPECT_THROW(service.submit(heavy.model, dev, heavy.config, heavy.shots,
                                heavy.seed),
                 AdmissionError);
    // The typed error is still an fq::Error for legacy catch sites.
    try {
        service.submit(heavy.model, dev, heavy.config, heavy.shots,
                       heavy.seed);
        FAIL() << "second overflow submit was admitted";
    } catch (const fq::Error&) {
    }

    // The admitted request is unharmed, and capacity frees on completion.
    EXPECT_GT(admitted.get().leaves_executed, 0);
    service.drain();
    auto after = service.submit(heavy.model, dev, heavy.config, heavy.shots,
                                heavy.seed);
    EXPECT_GT(after.get().leaves_executed, 0);
    const auto stats = service.stats();
    EXPECT_EQ(stats.requests_submitted, 2u);
    EXPECT_EQ(stats.requests_completed, 2u);
}

TEST(SolveService, UnlimitedQueueDepthByDefault)
{
    const auto dev = device::make_device("ibm-montreal");
    const auto w = mixed_workloads()[0];
    ExecutionEngine eng(2);
    SolveService service(eng); // max_queue_depth = 0: never rejects
    std::vector<SolveService::Ticket> tickets;
    for (int k = 0; k < 8; ++k)
        tickets.push_back(
            service.submit(w.model, dev, w.config, w.shots, w.seed));
    for (auto& ticket : tickets)
        EXPECT_GT(ticket.get().leaves_executed, 0);
}

TEST(SolveService, MigrationUnderCoTenantsBitIdenticalToSolo)
{
    // Live request migration: a durable tenant is suspended at its first
    // checkpoint boundary while co-tenants keep the waves busy, then
    // re-admitted via submit_resume on the same service. The combined
    // suspend-then-resume result must match the uninterrupted solo solve
    // bit for bit (and the TSan build proves the snapshot handoff between
    // the assembler thread and the resubmitting thread is clean).
    const auto dev = device::make_device("ibm-montreal");
    Workload w;
    w.model = ba_model(12, 1, 9);
    w.config.num_freeze = 2;
    w.config.max_depth = 2;
    w.config.rerank_interval = 2;
    w.config.checkpoint_interval = 1;
    w.shots = 512;
    w.seed = 17;

    ExecutionEngine solo(1);
    Rng rng(w.seed);
    const auto reference =
        solo.solve(w.model, dev, w.config, w.shots, rng);
    ASSERT_GT(reference.leaves_executed, 1);

    ExecutionEngine eng(4);
    SolveService service(eng);
    // Written by the assembler thread before the suspended request
    // completes; the ticket's promise/future pair orders the read below.
    SolveCheckpoint snapshot;
    auto durable = service.submit(
        w.model, dev, w.config, w.shots, w.seed, nullptr,
        [&snapshot](std::uint64_t, const SolveCheckpoint& ck) {
            snapshot = ck;
            return ck.cursor < 1; // suspend at the first boundary
        });
    std::vector<SolveService::Ticket> others;
    for (const auto& c : mixed_workloads())
        others.push_back(
            service.submit(c.model, dev, c.config, c.shots, c.seed));

    const auto partial = durable.get();
    EXPECT_TRUE(partial.degraded);
    EXPECT_LT(partial.leaves_executed, reference.leaves_executed);
    const auto diag = service.diagnostics(durable.id());
    EXPECT_TRUE(diag.degraded);
    EXPECT_GT(diag.checkpoints, 0);

    auto resumed = service.submit_resume(w.model, dev, w.config, w.shots,
                                         snapshot);
    expect_solves_identical(resumed.get(), reference);
    EXPECT_EQ(service.diagnostics(resumed.id()).resumed_from,
              static_cast<int>(snapshot.cursor));
    for (auto& ticket : others)
        EXPECT_GT(ticket.get().leaves_executed, 0);
    service.drain();
}

TEST(SolveService, DeadlineBacklogRejectionIsDeterministic)
{
    const auto dev = device::make_device("ibm-montreal");
    // Flat workload: every scheduled leaf has the same width, so the
    // schedule's total cost is exactly leaves * 2^width.
    auto w = mixed_workloads()[0];
    w.config.checkpoint_interval = 1;

    ExecutionEngine solo(1);
    Rng rng(w.seed);
    const auto reference =
        solo.solve(w.model, dev, w.config, w.shots, rng);
    ASSERT_GT(reference.leaves_executed, 1);
    const long long leaf_cost =
        1LL << (w.model.num_spins() - w.config.num_freeze);
    const long long total_cost = reference.leaves_executed * leaf_cost;

    // A resumable snapshot whose config carries the exact-fit deadline
    // (the restore fingerprint-checks the config, deadline included).
    auto exact_fit = w.config;
    exact_fit.deadline_cost_units = total_cost;
    SolveCheckpoint snapshot;
    bool captured = false;
    ExecutionEngine solo_durable(1);
    const auto durable_reference = solo_durable.solve(
        w.model, dev, exact_fit, w.shots, w.seed,
        [&](const SolveCheckpoint& ck) {
            if (!captured) {
                snapshot = ck;
                captured = true;
            }
            return true;
        });
    ASSERT_TRUE(captured);
    ASSERT_FALSE(durable_reference.degraded); // the budget fits exactly

    ExecutionEngine eng(2);
    SolveService service(eng);

    // Hold one tenant open at its first checkpoint boundary so the
    // service has a GUARANTEED nonzero projected backlog — no sleeps,
    // no timing assumptions.
    std::promise<void> entered_promise;
    auto entered = entered_promise.get_future();
    std::promise<void> release_promise;
    std::shared_future<void> release(release_promise.get_future());
    std::atomic<bool> first_boundary{true};
    auto blocked = service.submit(
        w.model, dev, w.config, w.shots, w.seed, nullptr,
        [&](std::uint64_t, const SolveCheckpoint&) {
            if (first_boundary.exchange(false))
                entered_promise.set_value();
            release.wait();
            return true;
        });
    entered.wait();

    // A newcomer whose own cost exactly meets its deadline is feasible
    // alone but not behind the blocked tenant's remaining leaves: the
    // admission projection must bounce it with the typed error.
    EXPECT_THROW(
        service.submit(w.model, dev, exact_fit, w.shots, w.seed),
        DeadlineError);
    EXPECT_EQ(service.stats().requests_rejected_deadline, 1u);

    // A MIGRATED request with the same exact-fit deadline must NOT
    // bounce off the backlog — it was already admitted once.
    auto resumed = service.submit_resume(w.model, dev, exact_fit, w.shots,
                                         snapshot);

    release_promise.set_value();
    expect_solves_identical(blocked.get(), reference);
    expect_solves_identical(resumed.get(), durable_reference);
    service.drain();
    EXPECT_EQ(service.stats().requests_rejected_deadline, 1u);
}

TEST(SolveService, ConcurrentTenantsRacingOneFamilyEntryMatchSolo)
{
    // The family tier's first-structural-compile-wins race under real
    // contention (the TSan leg runs this file): K tenants share ONE
    // labeled structure with K distinct coefficient sets, submitted from K
    // threads so their planners race on the same family entry. Every
    // result must match its solo reference regardless of who wins.
    const auto dev = device::make_device("ibm-montreal");
    const auto base = ba_model(12, 1, 5);

    constexpr int kTenants = 4;
    std::vector<Workload> workloads;
    for (int k = 0; k < kTenants; ++k) {
        Workload w;
        w.model = base;
        Rng values(static_cast<std::uint64_t>(1000 + k));
        for (const auto& term : w.model.quadratic_terms())
            w.model.add_quadratic(term.i, term.j,
                                  values.uniform(-1.0, 1.0));
        w.config.num_freeze = 2;
        w.shots = 512;
        w.seed = static_cast<std::uint64_t>(90 + k);
        workloads.push_back(std::move(w));
    }
    const auto refs = solo_references(workloads, dev);

    ExecutionEngine eng(4);
    SolveService service(eng);
    std::vector<SolveService::Ticket> tickets(workloads.size());
    std::vector<std::thread> submitters;
    for (std::size_t k = 0; k < workloads.size(); ++k)
        submitters.emplace_back([&, k] {
            const auto& w = workloads[k];
            tickets[k] =
                service.submit(w.model, dev, w.config, w.shots, w.seed);
        });
    for (auto& t : submitters)
        t.join();
    for (std::size_t k = 0; k < workloads.size(); ++k)
        expect_solves_identical(tickets[k].get(), refs[k]);
    service.drain();

    // One labeled structure: race losers may pay duplicate structural
    // compiles (their builds are dropped outside the lock), but the
    // per-tenant table work is coefficient binds, not rebuilds.
    const auto stats = eng.template_cache().stats();
    EXPECT_GE(stats.family_structural_compiles, 1u);
    EXPECT_LE(stats.family_structural_compiles,
              static_cast<std::uint64_t>(kTenants));
    EXPECT_GT(stats.family_binds, 0u);

    // Tier preview accounting reconciles per tenant.
    for (std::size_t k = 0; k < workloads.size(); ++k) {
        const auto diag = service.diagnostics(tickets[k].id());
        EXPECT_EQ(diag.leaves_tier_hit + diag.leaves_tier_bind +
                      diag.leaves_tier_compile,
                  diag.leaves_executed);
    }
}

} // namespace
