/**
 * @file
 * Tests for the runtime/cost models: Equation (6) against hand-computed
 * values, the Figure 18 execution models, and the Table 3 cost classes.
 */
#include <gtest/gtest.h>

#include "common/error.h"
#include "runtime/cost_model.h"
#include "runtime/runtime_model.h"

namespace {

using namespace fq::runtime;

TEST(RuntimeModel, HandComputedBaselineSharedSequential)
{
    // Paper defaults: I=1000, tau=25k, t=1ms, cloud=30min, opt=1min,
    // compile=2h, pp=1min. One circuit:
    // T = 7200 + 1000*(25 + 1800 + 60) + 60 = 1892260 s.
    WorkflowParams params;
    ExecutionModel shared_seq{"seq+shared", 1, 1800.0};
    EXPECT_DOUBLE_EQ(end_to_end_runtime_s(1, shared_seq, params),
                     7200.0 + 1000.0 * (25.0 + 1800.0 + 60.0) + 60.0);
}

TEST(RuntimeModel, BatchingAmortizesCloudLatency)
{
    WorkflowParams params;
    ExecutionModel batched{"batched+shared", 900, 1800.0};
    ExecutionModel sequential{"seq+shared", 1, 1800.0};
    // 512 circuits (m=10 FrozenQubits): batched needs 1 job per iteration,
    // sequential needs 512.
    const double t_batched = end_to_end_runtime_s(512, batched, params);
    const double t_seq = end_to_end_runtime_s(512, sequential, params);
    EXPECT_LT(t_batched, t_seq / 50.0);

    // Exact: batched = 7200 + 1000*(512*25 + 1800 + 60) + 60.
    EXPECT_DOUBLE_EQ(t_batched,
                     7200.0 + 1000.0 * (512.0 * 25.0 + 1860.0) + 60.0);
}

TEST(RuntimeModel, DedicatedRemovesQueueing)
{
    WorkflowParams params;
    ExecutionModel dedicated{"batched+dedicated", 900, 0.0};
    const double t = end_to_end_runtime_s(1, dedicated, params);
    EXPECT_DOUBLE_EQ(t, 7200.0 + 1000.0 * (25.0 + 60.0) + 60.0);
}

TEST(RuntimeModel, Figure18Models)
{
    const auto models = figure18_execution_models();
    ASSERT_EQ(models.size(), 4u);
    EXPECT_EQ(models[0].batch_capacity, 1);
    EXPECT_EQ(models[2].batch_capacity, 900);
    EXPECT_DOUBLE_EQ(models[1].cloud_latency_s, 0.0);
    EXPECT_DOUBLE_EQ(models[2].cloud_latency_s, 1800.0);
}

TEST(RuntimeModel, HoursConversion)
{
    WorkflowParams params;
    ExecutionModel dedicated{"d", 900, 0.0};
    EXPECT_NEAR(end_to_end_runtime_hours(1, dedicated, params) * 3600.0,
                end_to_end_runtime_s(1, dedicated, params), 1e-9);
}

TEST(CostModel, QuantumCost)
{
    EXPECT_EQ(quantum_cost(0, true), 1);
    EXPECT_EQ(quantum_cost(0, false), 1);
    EXPECT_EQ(quantum_cost(1, true), 1);  // symmetry: m=1 is free
    EXPECT_EQ(quantum_cost(1, false), 2);
    EXPECT_EQ(quantum_cost(2, true), 2);  // the paper's "2x resources"
    EXPECT_EQ(quantum_cost(10, true), 512);
    EXPECT_EQ(quantum_cost(10, false), 1024);
}

TEST(CostModel, FrozenQubitsPostprocessIsPolynomialInN)
{
    // Doubling N roughly doubles FrozenQubits decode cost...
    const double fq_small = frozenqubits_postprocess_ops(2, 1000, 100, 99);
    const double fq_large = frozenqubits_postprocess_ops(2, 1000, 200, 199);
    EXPECT_LT(fq_large / fq_small, 2.5);

    // ...while CutQC reconstruction doubles PER ADDED QUBIT.
    const double cut_small = cutqc_postprocess_ops(4, 20);
    const double cut_large = cutqc_postprocess_ops(4, 21);
    EXPECT_DOUBLE_EQ(cut_large / cut_small, 2.0);
}

TEST(CostModel, Table3Rows)
{
    const auto fq = frozenqubits_overheads();
    const auto cut = cutqc_overheads();
    EXPECT_EQ(fq.design, "FrozenQubits");
    EXPECT_EQ(fq.compile_overhead, "O(1)");
    EXPECT_EQ(cut.postprocess_overhead, "exponential in qubits");
}

TEST(CostModel, InputValidation)
{
    EXPECT_THROW(quantum_cost(-1, true), fq::Error);
    EXPECT_THROW(cutqc_postprocess_ops(1, 0), fq::Error);
}

} // namespace
