/**
 * @file
 * Tests for readout-error mitigation: the inverse confusion channel must
 * recover clean expectation values and distributions from corrupted
 * counts, and must compose with the FrozenQubits sampling path.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "device/catalog.h"
#include "graph/generators.h"
#include "ising/exact_solver.h"
#include "ising/ising_model.h"
#include "mitigation/readout_mitigation.h"
#include "qaoa/analytic_p1.h"
#include "qaoa/qaoa_builder.h"
#include "sim/noise_model.h"
#include "sim/statevector.h"

namespace {

using namespace fq;
using namespace fq::mitigation;

TEST(ReadoutMitigation, RejectsNonInvertibleErrors)
{
    EXPECT_THROW(ReadoutMitigator({0.5}), Error);
    EXPECT_THROW(ReadoutMitigator({-0.1}), Error);
    EXPECT_NO_THROW(ReadoutMitigator({0.0, 0.49}));
}

TEST(ReadoutMitigation, RecoversExpectationFromCorruptedCounts)
{
    // Deterministic |0101> corrupted by readout flips: mitigation must
    // recover the clean EV within sampling error.
    Rng rng(1);
    ising::IsingModel m(4);
    m.set_linear(0, 1.0);
    m.add_quadratic(1, 3, -2.0);
    const ising::SpinVector truth{+1, -1, +1, -1};
    const double clean_ev = m.evaluate(truth);

    sim::Counts clean(4);
    clean.add(ising::spins_to_state(truth), 60000);
    const std::vector<double> flips{0.08, 0.12, 0.05, 0.10};
    const auto noisy = sim::apply_readout_errors(clean, flips, rng);

    const ReadoutMitigator mitigator(flips);
    const double raw_ev = noisy.expectation(m);
    const double fixed_ev = mitigator.mitigated_expectation(m, noisy);

    EXPECT_GT(std::abs(raw_ev - clean_ev), 0.2); // corruption is visible
    EXPECT_NEAR(fixed_ev, clean_ev, 0.1);        // mitigation removes it
}

TEST(ReadoutMitigation, DistributionCorrectionSharpensPeak)
{
    Rng rng(2);
    sim::Counts clean(3);
    clean.add(0b101, 40000);
    const std::vector<double> flips{0.1, 0.1, 0.1};
    const auto noisy = sim::apply_readout_errors(clean, flips, rng);

    const ReadoutMitigator mitigator(flips);
    const auto corrected = mitigator.mitigated_distribution(noisy);
    ASSERT_EQ(corrected.size(), 8u);

    double mass = 0.0;
    for (double p : corrected)
        mass += p;
    EXPECT_NEAR(mass, 1.0, 1e-9);
    EXPECT_GT(corrected[0b101], noisy.probability(0b101));
    EXPECT_GT(corrected[0b101], 0.95);
}

TEST(ReadoutMitigation, IdentityWhenNoError)
{
    sim::Counts counts(2);
    counts.add(0b01, 30);
    counts.add(0b10, 70);
    const ReadoutMitigator mitigator({0.0, 0.0});
    const auto dist = mitigator.mitigated_distribution(counts);
    EXPECT_NEAR(dist[0b01], 0.3, 1e-12);
    EXPECT_NEAR(dist[0b10], 0.7, 1e-12);

    ising::IsingModel m(2);
    m.add_quadratic(0, 1, 1.0);
    EXPECT_NEAR(mitigator.mitigated_expectation(m, counts),
                counts.expectation(m), 1e-12);
}

TEST(ReadoutMitigation, FromCalibrationPullsPerQubitErrors)
{
    const auto dev = device::make_device("ibm-montreal");
    const std::vector<int> physical{3, 7, 12};
    const auto mitigator =
        ReadoutMitigator::from_calibration(dev.calibration, physical);
    EXPECT_EQ(mitigator.num_qubits(), 3);
    EXPECT_NEAR(mitigator.z_attenuation(1),
                1.0 - 2.0 * dev.calibration.qubit(7).readout_error, 1e-12);
}

TEST(ReadoutMitigation, ImprovesNoisyQaoaExpectation)
{
    // QAOA output sampled through the noisy channel: mitigation must move
    // the empirical EV strictly closer to the attenuated-but-unflipped EV.
    Rng rng(3);
    auto g = graph::barabasi_albert(8, 1, rng);
    graph::assign_random_pm1_weights(g, rng);
    const auto model = ising::IsingModel::from_graph(g);
    const auto tuned = qaoa::optimize_p1(model, 24);

    qaoa::BuildOptions opts;
    opts.include_measurements = false;
    const auto circuit = qaoa::build_qaoa_circuit(model, opts)
                             .bind({tuned.angles.gamma},
                                   {tuned.angles.beta});
    const auto state = sim::run_circuit(circuit);
    const double ideal_ev = state.expectation_ising(model);

    const std::vector<double> flips(8, 0.06);
    const auto noisy = sim::sample_noisy_counts(state, /*survival=*/1.0,
                                                flips, 60000, rng);
    const ReadoutMitigator mitigator(flips);

    const double raw = noisy.expectation(model);
    const double fixed = mitigator.mitigated_expectation(model, noisy);
    EXPECT_LT(std::abs(fixed - ideal_ev), std::abs(raw - ideal_ev));
    EXPECT_NEAR(fixed, ideal_ev, 0.15);
}

TEST(ReadoutMitigation, ValidatesWidths)
{
    const ReadoutMitigator mitigator({0.1, 0.1});
    sim::Counts counts(3);
    counts.add(1);
    ising::IsingModel m(3);
    EXPECT_THROW(mitigator.mitigated_expectation(m, counts), Error);
    EXPECT_THROW(mitigator.mitigated_distribution(counts), Error);
}

} // namespace
