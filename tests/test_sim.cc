/**
 * @file
 * Tests for the simulation substrate: statevector gate semantics, sampling,
 * counts operations, the EPS and attenuation noise models (including the
 * trajectory-simulator cross-validation), and the ARG/AR metrics.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.h"
#include "common/error.h"
#include "device/catalog.h"
#include "graph/generators.h"
#include "ising/ising_model.h"
#include "qaoa/analytic_p1.h"
#include "qaoa/qaoa_builder.h"
#include "sim/counts.h"
#include "sim/noise_model.h"
#include "sim/statevector.h"
#include "sim/trajectory.h"

namespace {

using namespace fq;
using namespace fq::sim;

TEST(Statevector, InitialState)
{
    Statevector sv(3);
    EXPECT_NEAR(sv.probability(0), 1.0, 1e-12);
    EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
}

TEST(Statevector, HadamardCreatesSuperposition)
{
    Statevector sv(1);
    sv.apply_h(0);
    EXPECT_NEAR(sv.probability(0), 0.5, 1e-12);
    EXPECT_NEAR(sv.probability(1), 0.5, 1e-12);
    sv.apply_h(0); // H^2 = I
    EXPECT_NEAR(sv.probability(0), 1.0, 1e-12);
}

TEST(Statevector, CnotTruthTable)
{
    // |10> (control q0 = 1) -> |11>.
    Statevector sv(2);
    sv.apply_x(0);
    sv.apply_cx(0, 1);
    EXPECT_NEAR(sv.probability(0b11), 1.0, 1e-12);

    // |01> (control q0 = 0) unchanged.
    Statevector sv2(2);
    sv2.apply_x(1);
    sv2.apply_cx(0, 1);
    EXPECT_NEAR(sv2.probability(0b10), 1.0, 1e-12);
}

TEST(Statevector, SwapGate)
{
    Statevector sv(2);
    sv.apply_x(0);
    sv.apply_swap(0, 1);
    EXPECT_NEAR(sv.probability(0b10), 1.0, 1e-12);
}

TEST(Statevector, SxSquaredIsX)
{
    Statevector a(1), b(1);
    a.apply_sx(0);
    a.apply_sx(0);
    b.apply_x(0);
    EXPECT_NEAR(a.overlap(b), 1.0, 1e-12);
}

TEST(Statevector, RzzEqualsCxRzCx)
{
    Rng rng(1);
    for (int trial = 0; trial < 4; ++trial) {
        const double theta = rng.uniform(-2.0, 2.0);
        Statevector a(3), b(3);
        // Random-ish product state first.
        for (auto* sv : {&a, &b}) {
            sv->apply_h(0);
            sv->apply_rx(1, 0.7);
            sv->apply_ry(2, -0.4);
        }
        a.apply_rzz(0, 2, theta);
        b.apply_cx(0, 2);
        b.apply_rz(2, theta);
        b.apply_cx(0, 2);
        EXPECT_NEAR(a.overlap(b), 1.0, 1e-10);
    }
}

TEST(Statevector, PauliYMatrix)
{
    // Y|0> = i|1>.
    Statevector sv(1);
    sv.apply_pauli(0, 2);
    EXPECT_NEAR(sv.amplitude(1).imag(), 1.0, 1e-12);
    EXPECT_NEAR(std::abs(sv.amplitude(0)), 0.0, 1e-12);
}

TEST(Statevector, NormPreservedByRandomCircuit)
{
    Rng rng(2);
    Statevector sv(4);
    for (int k = 0; k < 50; ++k) {
        const int q = static_cast<int>(rng.uniform_int(std::uint64_t(4)));
        const int r = (q + 1) % 4;
        switch (rng.uniform_int(std::uint64_t(4))) {
          case 0: sv.apply_h(q); break;
          case 1: sv.apply_rx(q, rng.uniform(-1.0, 1.0)); break;
          case 2: sv.apply_rz(q, rng.uniform(-1.0, 1.0)); break;
          default: sv.apply_cx(q, r); break;
        }
    }
    EXPECT_NEAR(sv.norm(), 1.0, 1e-10);
}

TEST(Statevector, ExpectationIsingOnBasisState)
{
    ising::IsingModel m(2);
    m.add_quadratic(0, 1, 1.0);
    m.set_linear(0, 0.5);
    Statevector sv(2);
    sv.apply_x(0); // |01> basis: z0 = -1, z1 = +1
    EXPECT_NEAR(sv.expectation_ising(m), -1.0 - 0.5, 1e-12);
}

TEST(Statevector, SamplingFollowsBornRule)
{
    Statevector sv(2);
    sv.apply_h(0); // uniform over {00, 01}
    Rng rng(3);
    const auto samples = sv.sample(10000, rng);
    int ones = 0;
    for (auto s : samples) {
        ASSERT_TRUE(s == 0 || s == 1);
        if (s == 1)
            ++ones;
    }
    EXPECT_NEAR(ones / 10000.0, 0.5, 0.03);
}

TEST(Statevector, SamplingNeverEscapesTheDistribution)
{
    // Trailing zero-probability states: every draw must land on the lone
    // populated state, never on (or past) the zero tail — the lower_bound
    // clamp contract.
    Statevector sv(3);
    sv.apply_x(1); // deterministic |010> = state 2; states 3..7 have p=0
    Rng rng(41);
    for (std::uint64_t s : sv.sample(20000, rng))
        ASSERT_EQ(s, 2u);
}

TEST(Statevector, CachedCdfInvalidatedByMutation)
{
    // sample() caches the CDF; any state mutation must rebuild it.
    Statevector sv(1);
    Rng rng(43);
    for (std::uint64_t s : sv.sample(50, rng))
        ASSERT_EQ(s, 0u); // |0>
    sv.apply_x(0);
    for (std::uint64_t s : sv.sample(50, rng))
        ASSERT_EQ(s, 1u); // |1> — stale CDF would still yield 0
    sv.reset(1);
    for (std::uint64_t s : sv.sample(50, rng))
        ASSERT_EQ(s, 0u);
    // External writers through data() invalidate too.
    sv.data()[0] = {0.0, 0.0};
    sv.data()[1] = {1.0, 0.0};
    for (std::uint64_t s : sv.sample(50, rng))
        ASSERT_EQ(s, 1u);
}

TEST(Statevector, ExternalWritesInvalidateAWarmCdfCache)
{
    // The fused QAOA program writes amplitudes straight through data()
    // after reset_uniform(); a WARM sampling CDF from a previous leaf must
    // never leak into the next one. This is the exact
    // reuse-scratch-across-leaves pattern of the engine's workers.
    Statevector sv;
    sv.reset_uniform(3);
    Rng rng(7);
    (void)sv.sample(200, rng); // warm the CDF on the uniform state

    // Next "leaf": concentrate all weight on state 5 via external writes.
    auto* amps = sv.data();
    for (std::uint64_t s = 0; s < sv.dimension(); ++s)
        amps[s] = {0.0, 0.0};
    amps[5] = {1.0, 0.0};
    for (std::uint64_t s : sv.sample(200, rng))
        ASSERT_EQ(s, 5u); // a stale CDF would still draw uniformly

    // reset_uniform() itself must also invalidate.
    sv.reset_uniform(2);
    int seen[4] = {0, 0, 0, 0};
    for (std::uint64_t s : sv.sample(2000, rng)) {
        ASSERT_LT(s, 4u);
        ++seen[s];
    }
    for (int count : seen)
        EXPECT_GT(count, 0); // uniform again, not stuck on state 5
}

TEST(Statevector, RepeatedSamplingReusesCdfDeterministically)
{
    // Two equally-seeded generators on the same state draw identical
    // sequences whether the CDF was cold or warm.
    Statevector a(4), b(4);
    for (int q = 0; q < 4; ++q) {
        a.apply_h(q);
        b.apply_h(q);
    }
    Rng rng_warmup(1);
    b.sample(100, rng_warmup); // warm b's cache
    Rng rng_a(2), rng_b(2);
    EXPECT_EQ(a.sample(500, rng_a), b.sample(500, rng_b));
}

TEST(Counts, ExpectationAndBest)
{
    ising::IsingModel m(2);
    m.add_quadratic(0, 1, 1.0); // C(00)=C(11)=1, C(01)=C(10)=-1
    Counts c(2);
    c.add(0b00, 25);
    c.add(0b01, 75);
    EXPECT_NEAR(c.expectation(m), 0.25 * 1.0 + 0.75 * -1.0, 1e-12);
    const auto best = c.best(m);
    EXPECT_DOUBLE_EQ(best.cost, -1.0);
    EXPECT_EQ(best.state, 0b01u);
    EXPECT_EQ(best.multiplicity, 75u);
}

TEST(Counts, FlipAllBitsMapsMirrorExpectations)
{
    // Under h != 0 the mirror model's EV equals the flipped distribution's
    // EV — the identity the Section 3.7.2 inference relies on.
    Rng rng(4);
    ising::IsingModel m(3);
    m.set_linear(0, 0.7);
    m.add_quadratic(0, 2, -1.0);
    ising::IsingModel mirror(3);
    mirror.set_linear(0, -0.7);
    mirror.add_quadratic(0, 2, -1.0);

    Counts c(3);
    for (int k = 0; k < 50; ++k)
        c.add(rng() & 0b111);
    EXPECT_NEAR(c.flip_all_bits().expectation(mirror), c.expectation(m),
                1e-12);
    EXPECT_EQ(c.flip_all_bits().total_shots(), c.total_shots());
}

TEST(Counts, FlipAllBitsAtTheRegisterWidthBoundary)
{
    // 63 qubits is the widest register Counts supports; the flip mask must
    // cover every bit without the (1 << width) overflow the narrow widths
    // never exercise.
    Counts c(63);
    const std::uint64_t all = (~std::uint64_t{0}) >> 1; // 2^63 - 1
    const std::uint64_t high = std::uint64_t{1} << 62;
    c.add(0, 3);
    c.add(high, 2);
    c.add(all, 1);

    const auto flipped = c.flip_all_bits();
    EXPECT_EQ(flipped.total_shots(), 6u);
    EXPECT_EQ(flipped.histogram().at(all), 3u);
    EXPECT_EQ(flipped.histogram().at(all ^ high), 2u);
    EXPECT_EQ(flipped.histogram().at(0), 1u);
    // Involution: flipping twice restores the distribution.
    EXPECT_EQ(flipped.flip_all_bits().histogram(), c.histogram());

    // Beyond the boundary the constructor refuses (a 64-qubit histogram
    // could not distinguish "state" from "no state" in 64 bits of key).
    EXPECT_THROW(Counts(64), fq::Error);
    EXPECT_THROW(Counts(0), fq::Error);
}

TEST(Counts, MergeAndTvd)
{
    Counts a(2), b(2);
    a.add(0, 10);
    b.add(1, 10);
    EXPECT_NEAR(a.total_variation_distance(b), 1.0, 1e-12);
    a.merge(b);
    EXPECT_EQ(a.total_shots(), 20u);
    EXPECT_NEAR(a.probability(0), 0.5, 1e-12);
}

TEST(Counts, ReadoutErrorsFlipBits)
{
    Counts clean(4);
    clean.add(0b0000, 2000);
    Rng rng(5);
    const auto noisy =
        apply_readout_errors(clean, {0.5, 0.0, 0.0, 0.0}, rng);
    // Qubit 0 flips half the time; others never.
    std::uint64_t flipped = 0;
    for (const auto& [state, count] : noisy.histogram()) {
        ASSERT_TRUE(state == 0b0000 || state == 0b0001);
        if (state == 1)
            flipped = count;
    }
    EXPECT_NEAR(flipped / 2000.0, 0.5, 0.05);
}

TEST(NoiseModel, AttenuationBoundsAndMonotonicity)
{
    const auto dev = device::make_device("ibm-montreal");
    circuit::Circuit small(27), large(27);
    for (int k = 0; k < 4; ++k)
        small.cx(0, 1);
    for (int k = 0; k < 40; ++k)
        large.cx(0, 1);

    const auto a_small = compute_attenuation(small, dev.calibration);
    const auto a_large = compute_attenuation(large, dev.calibration);
    for (int q : {0, 1}) {
        EXPECT_GT(a_small.z_survival(q), 0.0);
        EXPECT_LE(a_small.z_survival(q), 1.0);
        // More gates on the same wire -> strictly less survival.
        EXPECT_LT(a_large.z_survival(q), a_small.z_survival(q));
    }
    // Untouched qubits only suffer decoherence+readout, not gate error.
    EXPECT_GT(a_large.gate_survival[5], 0.999999);
    EXPECT_FALSE(a_large.active[5]);
    EXPECT_TRUE(a_large.active[0]);
}

TEST(NoiseModel, EpsDecreasesWithCircuitSize)
{
    const auto dev = device::make_device("ibm-montreal");
    circuit::Circuit c(27);
    double previous = 1.0;
    for (int round = 0; round < 5; ++round) {
        for (int k = 0; k < 10; ++k)
            c.cx(1, 2);
        const double eps =
            expected_probability_of_success(c, dev.calibration);
        EXPECT_LT(eps, previous);
        EXPECT_GT(eps, 0.0);
        previous = eps;
    }
}

TEST(NoiseModel, RzIsErrorFree)
{
    const auto dev = device::make_device("ibm-montreal");
    circuit::Circuit c(27);
    for (int k = 0; k < 100; ++k)
        c.rz(0, 0.1);
    const auto att = compute_attenuation(c, dev.calibration);
    EXPECT_DOUBLE_EQ(att.gate_survival[0], 1.0);
}

TEST(NoiseModel, NoisyExpectationAttenuatesTowardOffset)
{
    Rng rng(6);
    auto g = graph::barabasi_albert(8, 1, rng);
    graph::assign_random_pm1_weights(g, rng);
    auto model = ising::IsingModel::from_graph(g);
    model.set_offset(2.0);

    const auto dev = device::make_device("ibm-montreal");
    const auto logical = qaoa::build_qaoa_circuit(model);
    const auto tuned = qaoa::optimize_p1(model, 24);
    const auto ideal = qaoa::evaluate_p1(model, tuned.angles);

    // Identity placement on a fake all-good circuit: zero gates -> only
    // readout attenuation applies.
    circuit::Circuit empty(27);
    const auto att = compute_attenuation(empty, dev.calibration);
    std::vector<int> placement(8);
    for (int i = 0; i < 8; ++i)
        placement[i] = i;
    const double ev =
        noisy_expectation(model, ideal.z, ideal.zz, att, placement);

    // Noisy EV sits between the ideal EV and the offset (fully mixed).
    EXPECT_GT(ev, tuned.energy);
    EXPECT_LT(ev, model.offset() + 1e-9);
    (void)logical;
}

TEST(NoiseModel, SampledCountsInterpolateIdealAndUniform)
{
    // survival=1 reproduces the ideal distribution; survival=0 is uniform.
    Statevector sv(3);
    sv.apply_x(0); // deterministic |001>
    Rng rng(7);
    const std::vector<double> no_flip(3, 0.0);

    const auto ideal = sample_noisy_counts(sv, 1.0, no_flip, 500, rng);
    EXPECT_EQ(ideal.num_distinct(), 1u);
    EXPECT_NEAR(ideal.probability(1), 1.0, 1e-12);

    const auto mixed = sample_noisy_counts(sv, 0.0, no_flip, 4000, rng);
    EXPECT_GT(mixed.num_distinct(), 6u);
    EXPECT_NEAR(mixed.probability(1), 1.0 / 8.0, 0.05);
}

TEST(NoiseModel, TrajectorySimAgreesWithAttenuationModel)
{
    // 6-qubit ring QAOA on a linear device with uniform errors: the
    // closed-form attenuated EV and the Monte-Carlo EV must land within
    // sampling error of each other.
    Rng rng(8);
    auto g = graph::path(6);
    graph::assign_random_pm1_weights(g, rng);
    const auto model = ising::IsingModel::from_graph(g);

    device::Device dev;
    dev.topology = device::make_linear(6);
    dev.name = "linear-6";
    dev.calibration =
        device::Calibration::uniform(dev.topology, 0.02, 0.02, 300.0);

    const auto tuned = qaoa::optimize_p1(model, 24);
    qaoa::BuildOptions opts;
    const auto logical = qaoa::build_qaoa_circuit(model, opts);
    const auto bound =
        logical.bind({tuned.angles.gamma}, {tuned.angles.beta});

    std::vector<int> identity{0, 1, 2, 3, 4, 5};

    const auto att = compute_attenuation(bound, dev.calibration);
    const auto ideal = qaoa::evaluate_p1(model, tuned.angles);
    const double analytic_ev =
        noisy_expectation(model, ideal.z, ideal.zz, att, identity);

    TrajectoryConfig config;
    config.num_trajectories = 400;
    config.shots_per_trajectory = 16;
    Rng traj_rng(9);
    const auto mc = simulate_trajectories(bound, dev.calibration, model,
                                          identity, config, traj_rng);

    // Both must attenuate the ideal EV; agreement within the Monte-Carlo
    // band (models differ in error placement, so the band is generous).
    EXPECT_LT(analytic_ev, 0.0);
    EXPECT_LT(mc.expectation, 0.0);
    EXPECT_GT(analytic_ev, tuned.energy);
    EXPECT_GT(mc.expectation, tuned.energy);
    EXPECT_NEAR(mc.expectation, analytic_ev,
                0.35 * std::abs(tuned.energy));
    EXPECT_GT(mc.error_events, 0);
}

TEST(Metrics, ApproximationRatioGap)
{
    EXPECT_DOUBLE_EQ(approximation_ratio_gap(-10.0, -10.0), 0.0);
    EXPECT_DOUBLE_EQ(approximation_ratio_gap(-10.0, -5.0), 50.0);
    EXPECT_DOUBLE_EQ(approximation_ratio_gap(-10.0, 0.0), 100.0);
    EXPECT_DOUBLE_EQ(approximation_ratio_gap(0.0, 5.0), 0.0); // guarded
}

TEST(Metrics, ApproximationRatio)
{
    EXPECT_DOUBLE_EQ(approximation_ratio(-5.0, -10.0), 0.5);
    EXPECT_THROW(approximation_ratio(-5.0, 10.0), Error);
}

} // namespace
