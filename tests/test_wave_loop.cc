/**
 * @file
 * Wave-loop tests: the epoch-execution acceptance contract —
 *
 *   - `rerank=off` is bit-identical to the pre-epoch engine's single flat
 *     batch (re-implemented here as the reference);
 *   - with re-ranking ON, threads=1 and threads=N are bit-identical in
 *     every tree mode (flat / budgeted / recursive / hybrid-partition);
 *   - the reducer's epoch snapshot sees exactly the schedule prefix,
 *     regardless of which later leaves also folded;
 *   - re-ranking prunes stale dominated leaves (saving circuits) without
 *     ever worsening the incumbent;
 *   - cost-weighted wave assembly charges 2^width per leaf so a wide
 *     tenant cannot pack a wave, bounded by the wave_size slot cap with
 *     a first-leaf progress guarantee.
 */
#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "device/catalog.h"
#include "engine/engine.h"
#include "engine/wave_loop.h"
#include "graph/generators.h"
#include "ising/ising_model.h"
#include "solve_test_util.h"

namespace {

using namespace fq;
using namespace fq::engine;
using fq::test::ba_model;
using fq::test::expect_solves_identical;

struct Workload
{
    ising::IsingModel model;
    frozenqubits::DriverConfig config;
    int shots = 1024;
    std::uint64_t seed = 0;
};

/** Every SolveTree mode, all with adaptive re-ranking enabled. */
std::vector<Workload>
rerank_workloads()
{
    std::vector<Workload> w;
    { // flat, budget-cut, re-rank after every fold
        Workload a;
        a.model = ba_model(12, 1, 5);
        a.config.num_freeze = 3;
        a.config.max_circuits = 2;
        a.config.rerank_interval = 1;
        a.seed = 33;
        w.push_back(std::move(a));
    }
    { // flat, unbudgeted: re-ranking may only prune/reorder the tail
        Workload b;
        b.model = ba_model(12, 2, 7);
        b.config.num_freeze = 3;
        b.config.rerank_interval = 2;
        b.seed = 44;
        w.push_back(std::move(b));
    }
    { // recursive depth-2 under budget, boundary mid-schedule
        Workload c;
        c.model = ba_model(12, 1, 9);
        c.config.num_freeze = 2;
        c.config.max_depth = 2;
        c.config.max_circuits = 5;
        c.config.rerank_interval = 2;
        c.shots = 512;
        c.seed = 17;
        w.push_back(std::move(c));
    }
    { // hybrid partition + repair decode + re-ranking
        Workload d;
        d.model = ba_model(16, 1, 21);
        d.config.num_freeze = 2;
        d.config.max_depth = 2;
        d.config.partition_width = 12;
        d.config.max_circuits = 6;
        d.config.rerank_interval = 1;
        d.shots = 512;
        d.seed = 3;
        w.push_back(std::move(d));
    }
    return w;
}

TEST(WaveLoop, RerankOnBitIdenticalAcrossThreadCounts)
{
    // THE determinism acceptance: with adaptive re-ranking active, every
    // tree mode is bit-identical between a serial and an oversubscribed
    // engine — re-rank inputs depend only on the fold count, which the
    // dispatch_limit cap makes thread-invariant.
    const auto dev = device::make_device("ibm-montreal");
    for (const auto& w : rerank_workloads()) {
        ExecutionEngine serial(1);
        ExecutionEngine parallel(4);
        Rng rng_a(w.seed), rng_b(w.seed);
        const auto a = serial.solve(w.model, dev, w.config, w.shots, rng_a);
        const auto b =
            parallel.solve(w.model, dev, w.config, w.shots, rng_b);
        expect_solves_identical(a, b);
        EXPECT_EQ(serial.last_diagnostics().reranks,
                  parallel.last_diagnostics().reranks);
        EXPECT_EQ(serial.last_diagnostics().rerank_pruned,
                  parallel.last_diagnostics().rerank_pruned);
    }
}

TEST(WaveLoop, RerankOffMatchesSingleFlatBatchReference)
{
    // `rerank=off` must reproduce the pre-epoch engine bit for bit. The
    // reference below IS that engine's execution shape: plan, schedule,
    // then ONE executor batch over every scheduled leaf folding into a
    // StreamingReducer.
    const auto dev = device::make_device("ibm-montreal");
    for (long long budget : {0LL, 2LL}) {
        auto model = ba_model(12, 1, 5);
        frozenqubits::DriverConfig config;
        config.num_freeze = 3;
        config.max_circuits = budget;

        TemplateCache cache;
        BatchExecutor executor(2);
        Rng plan_rng(config.seed);
        const auto tree =
            build_solve_tree(model, dev, config, cache, plan_rng);
        const auto schedule =
            make_schedule(model, tree, config, false, &executor);
        StreamingReducer reducer(model, tree, schedule);
        executor.map<int>(
            static_cast<int>(schedule.executed.size()),
            [&](int index, BatchExecutor::Scratch& scratch) {
                const int leaf_id =
                    schedule.executed[static_cast<std::size_t>(index)];
                reducer.fold(leaf_id,
                             simulate_scheduled_leaf(cache, tree, leaf_id,
                                                     dev, config, 2048,
                                                     scratch));
                return 0;
            });
        const auto reference = reducer.finish();

        ExecutionEngine eng(2);
        Rng rng(config.seed);
        const auto solved = eng.solve(model, dev, config, 2048, rng);
        expect_solves_identical(solved, reference);
        EXPECT_EQ(eng.last_diagnostics().epochs, 1);
        EXPECT_EQ(eng.last_diagnostics().reranks, 0);
    }
}

TEST(WaveLoop, EpochSnapshotSeesOnlyTheSchedulePrefix)
{
    // The snapshot at fold count k must be a pure function of the first k
    // scheduled leaves: folding MORE leaves first must not change it.
    const auto model = ba_model(12, 1, 5);
    const auto dev = device::make_device("ibm-montreal");
    frozenqubits::DriverConfig config;
    config.num_freeze = 3;
    config.max_circuits = 4; // score + presolve, full schedule

    TemplateCache cache;
    BatchExecutor executor(1);
    Rng plan_rng(config.seed);
    const auto tree = build_solve_tree(model, dev, config, cache, plan_rng);
    const auto schedule = make_schedule(model, tree, config);
    ASSERT_GE(schedule.executed.size(), 3u);

    BatchExecutor::Scratch scratch;
    const auto counts_of = [&](int leaf_id) {
        return simulate_scheduled_leaf(cache, tree, leaf_id, dev, config,
                                       1024, scratch);
    };

    StreamingReducer full(model, tree, schedule);
    for (int leaf_id : schedule.executed) // every scheduled leaf folded
        full.fold(leaf_id, counts_of(leaf_id));
    StreamingReducer prefix(model, tree, schedule);
    for (std::size_t k = 0; k < 2; ++k) // only the first two folded
        prefix.fold(schedule.executed[k], counts_of(schedule.executed[k]));

    const auto a = full.epoch_snapshot(2);
    const auto b = prefix.epoch_snapshot(2);
    EXPECT_EQ(a.valid, b.valid);
    EXPECT_DOUBLE_EQ(a.cost, b.cost);
    EXPECT_EQ(a.leaf, b.leaf);
    EXPECT_EQ(a.assignment, b.assignment);

    // Snapshots tighten monotonically with the fold count.
    double last = full.epoch_snapshot(0).cost;
    for (std::size_t k = 1; k <= schedule.executed.size(); ++k) {
        const double cost = full.epoch_snapshot(k).cost;
        EXPECT_LE(cost, last);
        last = cost;
    }

    // A snapshot over leaves that never folded is a contract violation.
    EXPECT_THROW(prefix.epoch_snapshot(3), fq::Error);
}

TEST(WaveLoop, RerankPrunesStaleDominatedLeaves)
{
    // ±1-weight BA1 trees are SA-trivial: after the first fold the
    // incumbent dominates most sibling bounds, so per-fold re-ranking
    // must drop them before they burn circuits — without changing the
    // reported best (a dominated leaf provably cannot improve it).
    const auto model = ba_model(12, 1, 5);
    const auto dev = device::make_device("ibm-montreal");
    frozenqubits::DriverConfig base;
    base.num_freeze = 3;

    ExecutionEngine off_eng(2), on_eng(2);
    Rng rng_off(base.seed), rng_on(base.seed);
    const auto off = off_eng.solve(model, dev, base, 2048, rng_off);

    auto adaptive = base;
    adaptive.rerank_interval = 1;
    const auto on = on_eng.solve(model, dev, adaptive, 2048, rng_on);

    const auto& diag = on_eng.last_diagnostics();
    EXPECT_GT(diag.reranks, 0);
    EXPECT_GT(diag.rerank_pruned, 0);
    EXPECT_LT(on.leaves_executed, off.leaves_executed);
    EXPECT_DOUBLE_EQ(on.best_cost, off.best_cost);
    // Interval 1: every executed leaf is its own epoch.
    EXPECT_EQ(diag.epochs, on.leaves_executed);
}

/** Minimal solo workload wired into a WaveRequest for assembly tests. */
struct AssemblyFixture
{
    ising::IsingModel model;
    device::Device dev = device::make_device("ibm-montreal");
    frozenqubits::DriverConfig config;
    TemplateCache cache;
    SolveTree tree;
    LeafSchedule schedule;
    WaveRequest request;

    AssemblyFixture(int n, std::uint64_t seed, int wave_share = 0)
        : model(ba_model(n, 1, seed))
    {
        config.num_freeze = 2; // 2 executable leaves of width n - 2
        config.wave_share = wave_share;
        Rng rng(config.seed);
        tree = build_solve_tree(model, dev, config, cache, rng);
        schedule = make_schedule(model, tree, config);
        request.model = &model;
        request.tree = &tree;
        request.schedule = &schedule;
        request.dev = &dev;
        request.config = &config;
        request.shots = 64;
    }
};

TEST(WaveLoop, CostWeightedAssemblyChargesWideLeavesMore)
{
    // Leaf slot cost is 2^width: a 12-spin leaf costs 16x a 8-spin one.
    AssemblyFixture narrow(10, 5); // leaves of width 8
    AssemblyFixture wide(14, 7);   // leaves of width 12
    EXPECT_EQ(leaf_slot_cost(narrow.tree, 0), 1LL << 8);
    EXPECT_EQ(leaf_slot_cost(wide.tree, 0), 1LL << 12);

    // Equal-width tenants: the cost budget reproduces equal-slot packing
    // (wave_size leaves per wave, round-robin).
    AssemblyFixture a(10, 11), b(10, 13);
    const auto even = assemble_wave({&a.request, &b.request},
                                    /*wave_size=*/4, /*rotate=*/0);
    EXPECT_EQ(even.size(), 4u);

    // Mixed widths: the wide leaf fits while the budget has room but
    // blows it on admission, so neither tenant can pack the wave — the
    // wide request cannot stall a deep tail of narrow work.
    const auto mixed = assemble_wave({&narrow.request, &wide.request},
                                     /*wave_size=*/4, /*rotate=*/0);
    int from_wide = 0, from_narrow = 0;
    for (const auto& slot : mixed) {
        if (slot.request == &wide.request)
            ++from_wide;
        else
            ++from_narrow;
    }
    EXPECT_EQ(from_wide, 1);    // admitted once, never packs
    EXPECT_GE(from_narrow, 1);  // round-robin served the narrow tenant
    EXPECT_LT(mixed.size(), 4u);

    // The wave_size slot cap is hard: three equal tenants at wave_size=2
    // pack exactly two slots (latency and queue memory stay bounded no
    // matter how many tenants are live).
    AssemblyFixture t1(10, 37), t2(10, 41), t3(10, 43);
    const auto capped_wave =
        assemble_wave({&t1.request, &t2.request, &t3.request},
                      /*wave_size=*/2, /*rotate=*/0);
    EXPECT_EQ(capped_wave.size(), 2u);

    // A solo wide tenant still fills its own waves: cost is normalized to
    // the cheapest PENDING leaf, so homogeneous wide work is not throttled.
    AssemblyFixture solo(14, 19);
    const auto alone =
        assemble_wave({&solo.request}, /*wave_size=*/4, /*rotate=*/0);
    EXPECT_EQ(alone.size(), solo.schedule.executed.size());

    // wave_share self-cap composes with cost weighting.
    AssemblyFixture capped(10, 23, /*wave_share=*/1);
    AssemblyFixture free_rider(10, 29);
    const auto shared = assemble_wave({&capped.request,
                                       &free_rider.request},
                                      /*wave_size=*/4, /*rotate=*/0);
    int from_capped = 0;
    for (const auto& slot : shared)
        if (slot.request == &capped.request)
            ++from_capped;
    EXPECT_EQ(from_capped, 1);
}

TEST(WaveLoop, DispatchNeverOvershootsARerankBoundary)
{
    // The determinism invariant itself: with rerank_interval R, assembly
    // stops a request at its boundary even when the wave has room, so the
    // re-ranked tail is independent of wave composition.
    AssemblyFixture fixture(12, 31);
    frozenqubits::DriverConfig config = fixture.config;
    config.rerank_interval = 1;
    fixture.schedule = make_schedule(fixture.model, fixture.tree, config);
    fixture.request.config = &config;
    arm_rerank(fixture.request);
    ASSERT_GE(fixture.schedule.executed.size(), 2u);

    const auto wave =
        assemble_wave({&fixture.request}, /*wave_size=*/8, /*rotate=*/0);
    EXPECT_EQ(wave.size(), 1u); // capped at the first boundary
    EXPECT_EQ(fixture.request.dispatched, 1u);
    EXPECT_EQ(fixture.request.dispatch_limit(), 1u);
}

} // namespace
