/**
 * @file
 * Durable-solve tests: the checkpoint/restore acceptance contract —
 *
 *   - encode/decode and file write/read round-trip every snapshot field
 *     exactly (histograms included);
 *   - a depth-2 re-ranked solve checkpointed at EVERY boundary and
 *     resumed in a fresh engine is bit-identical to the uninterrupted
 *     run, at 1 thread and at N threads, solo and through a
 *     SolveService;
 *   - a suspended solve completes as a degraded anytime result whose
 *     snapshot resumes the full solve;
 *   - a corrupted cursor (>= scheduled-leaf count) is rejected before
 *     any fold (the satellite regression for the restore invariant);
 *   - deadline admission: an unmeetable budget throws DeadlineError at
 *     plan time; a trimmed solve is degraded, reports the trim, and
 *     stays bit-identical across thread counts.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <vector>

#include "common/error.h"
#include "device/catalog.h"
#include "engine/checkpoint.h"
#include "engine/engine.h"
#include "engine/scheduler.h"
#include "engine/solve_service.h"
#include "solve_test_util.h"

namespace {

using namespace fq;
using namespace fq::engine;
using fq::test::ba_model;
using fq::test::expect_solves_identical;

/** The canonical durable workload: recursive depth-2 tree under budget
 *  with a mid-schedule re-rank boundary — every kind of schedule
 *  mutation (re-rank prune/demote, epoch snapshots) is live when the
 *  checkpoints fire. */
struct DurableWorkload
{
    ising::IsingModel model = ba_model(16, 2, 5);
    frozenqubits::DriverConfig config;
    int shots = 256;
    std::uint64_t seed = 7;

    DurableWorkload()
    {
        config.num_freeze = 2;
        config.max_depth = 2;
        config.max_circuits = 4;
        config.rerank_interval = 2;
        config.checkpoint_interval = 1;
        config.seed = seed;
    }
};

void
expect_checkpoints_equal(const SolveCheckpoint& a, const SolveCheckpoint& b)
{
    EXPECT_EQ(a.model_hash, b.model_hash);
    EXPECT_EQ(a.config_hash, b.config_hash);
    EXPECT_EQ(a.plan_hash, b.plan_hash);
    EXPECT_EQ(a.device_name, b.device_name);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.shots, b.shots);
    EXPECT_EQ(a.cursor, b.cursor);
    EXPECT_EQ(a.next_rerank, b.next_rerank);
    EXPECT_EQ(a.epochs, b.epochs);
    EXPECT_EQ(a.executed, b.executed);
    EXPECT_EQ(a.beyond_budget, b.beyond_budget);
    EXPECT_EQ(a.pruned, b.pruned);
    EXPECT_EQ(a.reranks, b.reranks);
    EXPECT_EQ(a.rerank_pruned, b.rerank_pruned);
    EXPECT_EQ(a.rerank_promoted, b.rerank_promoted);
    EXPECT_EQ(a.rerank_demoted, b.rerank_demoted);
    EXPECT_EQ(a.deadline_trimmed, b.deadline_trimmed);
    ASSERT_EQ(a.folded.size(), b.folded.size());
    for (std::size_t k = 0; k < a.folded.size(); ++k) {
        EXPECT_EQ(a.folded[k].leaf_id, b.folded[k].leaf_id);
        EXPECT_EQ(a.folded[k].width, b.folded[k].width);
        EXPECT_EQ(a.folded[k].arm_tag, b.folded[k].arm_tag);
        EXPECT_EQ(a.folded[k].histogram, b.folded[k].histogram);
    }
    EXPECT_EQ(a.incumbent_valid, b.incumbent_valid);
    EXPECT_DOUBLE_EQ(a.incumbent_cost, b.incumbent_cost);
    EXPECT_EQ(a.incumbent_leaf, b.incumbent_leaf);
    EXPECT_EQ(a.incumbent_assignment, b.incumbent_assignment);
}

/** Solve the workload collecting the snapshot at every boundary. */
std::vector<SolveCheckpoint>
collect_snapshots(const DurableWorkload& w,
                  frozenqubits::SampledSolve* solved = nullptr,
                  int threads = 1)
{
    std::vector<SolveCheckpoint> snapshots;
    ExecutionEngine eng(threads);
    const auto dev = device::make_device("ibm-montreal");
    auto result =
        eng.solve(w.model, dev, w.config, w.shots, w.seed,
                  [&](const SolveCheckpoint& ck) {
                      snapshots.push_back(ck);
                      return true;
                  });
    if (solved)
        *solved = std::move(result);
    return snapshots;
}

TEST(Checkpoint, SeedOverloadMatchesRngOverload)
{
    DurableWorkload w;
    const auto dev = device::make_device("ibm-montreal");
    ExecutionEngine eng(1);
    Rng rng(w.seed);
    const auto via_rng = eng.solve(w.model, dev, w.config, w.shots, rng);
    const auto via_seed = eng.solve(w.model, dev, w.config, w.shots, w.seed);
    expect_solves_identical(via_rng, via_seed);
}

TEST(Checkpoint, CheckpointBarriersDoNotChangeResults)
{
    DurableWorkload w;
    const auto dev = device::make_device("ibm-montreal");
    ExecutionEngine eng(1);
    auto plain = w.config;
    plain.checkpoint_interval = 0;
    const auto reference =
        eng.solve(w.model, dev, plain, w.shots, w.seed);
    frozenqubits::SampledSolve with_barriers;
    const auto snapshots = collect_snapshots(w, &with_barriers);
    EXPECT_FALSE(snapshots.empty());
    expect_solves_identical(reference, with_barriers);
    // Snapshots fire strictly before completion — a finished request has
    // nothing to resume (capture_checkpoint rejects it).
    for (const auto& ck : snapshots)
        EXPECT_LT(ck.cursor,
                  static_cast<std::uint64_t>(reference.leaves_executed));
}

TEST(Checkpoint, EncodeDecodeRoundTrip)
{
    DurableWorkload w;
    const auto snapshots = collect_snapshots(w);
    ASSERT_FALSE(snapshots.empty());
    for (const auto& ck : snapshots) {
        const auto bytes = encode_checkpoint(ck);
        const auto back = decode_checkpoint(bytes.data(), bytes.size());
        expect_checkpoints_equal(ck, back);
    }
}

TEST(Checkpoint, FileRoundTrip)
{
    DurableWorkload w;
    const auto snapshots = collect_snapshots(w);
    ASSERT_FALSE(snapshots.empty());
    const std::string path = ::testing::TempDir() + "fq_ck_roundtrip.bin";
    write_checkpoint_file(path, snapshots.back());
    const auto back = read_checkpoint_file(path);
    expect_checkpoints_equal(snapshots.back(), back);
    std::remove(path.c_str());
}

TEST(Checkpoint, ResumeAtEveryBoundaryIsBitIdentical)
{
    DurableWorkload w;
    const auto dev = device::make_device("ibm-montreal");
    frozenqubits::SampledSolve reference;
    const auto snapshots = collect_snapshots(w, &reference);
    ASSERT_FALSE(snapshots.empty());

    for (const auto& ck : snapshots) {
        for (int threads : {1, 4}) {
            ExecutionEngine fresh(threads);
            const auto resumed =
                fresh.resume(w.model, dev, w.config, w.shots, ck);
            expect_solves_identical(reference, resumed);
            EXPECT_EQ(fresh.last_diagnostics().resumed_from,
                      static_cast<int>(ck.cursor));
        }
    }
}

TEST(Checkpoint, SuspendThenResumeMatchesUninterrupted)
{
    DurableWorkload w;
    const auto dev = device::make_device("ibm-montreal");
    frozenqubits::SampledSolve reference;
    collect_snapshots(w, &reference);
    ASSERT_FALSE(reference.degraded);

    // Crash-like path: suspend after the first fold, keep only the last
    // snapshot written before the suspension, resume from it cold.
    SolveCheckpoint last;
    ExecutionEngine eng(2);
    const auto partial =
        eng.solve(w.model, dev, w.config, w.shots, w.seed,
                  [&](const SolveCheckpoint& ck) {
                      last = ck;
                      return ck.cursor < 1;
                  });
    EXPECT_TRUE(partial.degraded);
    EXPECT_LT(partial.leaves_executed, reference.leaves_executed);
    EXPECT_EQ(last.cursor, 1u);

    ExecutionEngine fresh(2);
    const auto resumed = fresh.resume(w.model, dev, w.config, w.shots, last);
    expect_solves_identical(reference, resumed);
}

TEST(Checkpoint, ServiceResumeMatchesSoloSolve)
{
    DurableWorkload w;
    const auto dev = device::make_device("ibm-montreal");
    frozenqubits::SampledSolve reference;
    const auto snapshots = collect_snapshots(w, &reference);
    ASSERT_FALSE(snapshots.empty());

    ExecutionEngine eng(2);
    SolveService service(eng);
    auto ticket = service.submit_resume(w.model, dev, w.config, w.shots,
                                        snapshots.front());
    const auto resumed = ticket.get();
    expect_solves_identical(reference, resumed);
    const auto diag = service.diagnostics(ticket.id());
    EXPECT_EQ(diag.resumed_from,
              static_cast<int>(snapshots.front().cursor));
}

TEST(Checkpoint, CorruptedCursorIsRejectedBeforeAnyFold)
{
    DurableWorkload w;
    const auto dev = device::make_device("ibm-montreal");
    const auto snapshots = collect_snapshots(w);
    ASSERT_FALSE(snapshots.empty());

    // The restore invariant: the cursor indexes INTO the scheduled
    // partition, so cursor >= executed.size() means the snapshot lies
    // about its progress. It must be rejected up front, not crash a
    // fold loop later. (The bytes themselves are valid: frame the
    // corrupt struct through encode/decode to prove CRC cannot see it.)
    auto corrupt = snapshots.back();
    corrupt.cursor = corrupt.executed.size();
    const auto bytes = encode_checkpoint(corrupt);
    const auto decoded = decode_checkpoint(bytes.data(), bytes.size());

    ExecutionEngine eng(1);
    EXPECT_THROW(eng.resume(w.model, dev, w.config, w.shots, decoded),
                 fq::Error);
}

TEST(Checkpoint, DeadlineRejectsUnmeetableBudgetAtPlanTime)
{
    DurableWorkload w;
    const auto dev = device::make_device("ibm-montreal");
    auto config = w.config;
    config.checkpoint_interval = 0;
    config.deadline_cost_units = 1; // cheapest leaf costs 2^width >> 1
    ExecutionEngine eng(1);
    EXPECT_THROW(eng.solve(w.model, dev, config, w.shots, w.seed),
                 DeadlineError);
}

/** Largest power-of-two budget that trims the workload's schedule
 *  without rejecting it outright (0 if none exists). */
long long
find_trimming_deadline(const DurableWorkload& w,
                       frozenqubits::DriverConfig config)
{
    const auto dev = device::make_device("ibm-montreal");
    ExecutionEngine eng(1);
    for (int shift = 40; shift >= 1; --shift) {
        config.deadline_cost_units = 1LL << shift;
        try {
            const auto solved =
                eng.solve(w.model, dev, config, w.shots, w.seed);
            if (solved.degraded)
                return config.deadline_cost_units;
        } catch (const DeadlineError&) {
            return 0; // even one leaf no longer fits
        }
    }
    return 0;
}

TEST(Checkpoint, DeadlineTrimIsDegradedAndThreadCountInvariant)
{
    DurableWorkload w;
    const auto dev = device::make_device("ibm-montreal");
    auto config = w.config;
    config.checkpoint_interval = 0;

    ExecutionEngine probe(1);
    const auto full = probe.solve(w.model, dev, config, w.shots, w.seed);
    ASSERT_GT(full.leaves_executed, 1);

    config.deadline_cost_units = find_trimming_deadline(w, config);
    ASSERT_GT(config.deadline_cost_units, 0);
    ExecutionEngine one(1), many(4);
    const auto a = one.solve(w.model, dev, config, w.shots, w.seed);
    const auto b = many.solve(w.model, dev, config, w.shots, w.seed);
    expect_solves_identical(a, b);
    EXPECT_TRUE(a.degraded);
    EXPECT_GT(a.deadline_trimmed, 0);
    EXPECT_LT(a.leaves_executed, full.leaves_executed);
    EXPECT_EQ(one.last_diagnostics().deadline_trimmed, a.deadline_trimmed);
}

TEST(Checkpoint, ResumePreservesDeadlineTrim)
{
    DurableWorkload w;
    const auto dev = device::make_device("ibm-montreal");
    auto config = w.config;
    config.deadline_cost_units = find_trimming_deadline(w, config);
    ASSERT_GT(config.deadline_cost_units, 0);

    std::vector<SolveCheckpoint> snapshots;
    ExecutionEngine eng(1);
    const auto reference =
        eng.solve(w.model, dev, config, w.shots, w.seed,
                  [&](const SolveCheckpoint& ck) {
                      snapshots.push_back(ck);
                      return true;
                  });
    ASSERT_TRUE(reference.degraded);
    for (const auto& ck : snapshots) {
        ExecutionEngine fresh(2);
        const auto resumed =
            fresh.resume(w.model, dev, config, w.shots, ck);
        expect_solves_identical(reference, resumed);
    }
}

// ------------------------------------------------ format version 2 --

TEST(Checkpoint, RecordsReductionArmTags)
{
    DurableWorkload w; // depth-2 recursive freeze: every arm is Freeze
    const auto snapshots = collect_snapshots(w);
    ASSERT_FALSE(snapshots.empty());
    const auto freeze_tag = node_kind_info(NodeKind::Freeze).frame_tag;
    for (const auto& ck : snapshots)
        for (const auto& rec : ck.folded)
            EXPECT_EQ(rec.arm_tag, freeze_tag);
    // And the frame header says version 2.
    const auto bytes = encode_checkpoint(snapshots.back());
    EXPECT_EQ(bytes[4], 2);
}

TEST(Checkpoint, SparsifyTreeRoundTripsAndResumes)
{
    DurableWorkload w;
    const auto dev = device::make_device("ibm-montreal");
    auto config = w.config;
    config.max_depth = 1; // sparsify interposes its own level
    config.sparsify_keep = 0.5;

    std::vector<SolveCheckpoint> snapshots;
    ExecutionEngine eng(1);
    const auto reference =
        eng.solve(w.model, dev, config, w.shots, w.seed,
                  [&](const SolveCheckpoint& ck) {
                      snapshots.push_back(ck);
                      return true;
                  });
    ASSERT_FALSE(snapshots.empty());

    const auto sparsify_tag =
        node_kind_info(NodeKind::Sparsify).frame_tag;
    for (const auto& ck : snapshots) {
        for (const auto& rec : ck.folded)
            EXPECT_EQ(rec.arm_tag, sparsify_tag);
        // Wire round trip, arm tags included.
        const auto bytes = encode_checkpoint(ck);
        expect_checkpoints_equal(
            ck, decode_checkpoint(bytes.data(), bytes.size()));
        // Resume from every boundary, at any thread count.
        for (int threads : {1, 4}) {
            ExecutionEngine fresh(threads);
            expect_solves_identical(
                reference,
                fresh.resume(w.model, dev, config, w.shots, ck));
        }
    }
}

TEST(Checkpoint, VersionOneSnapshotsRestoreBitIdentically)
{
    DurableWorkload w;
    const auto dev = device::make_device("ibm-montreal");
    frozenqubits::SampledSolve reference;
    const auto snapshots = collect_snapshots(w, &reference);
    ASSERT_FALSE(snapshots.empty());

    for (const auto& ck : snapshots) {
        // Genuine pre-PR bytes: version-1 frames carry no arm tags.
        const auto legacy = encode_checkpoint(ck, /*version=*/1);
        EXPECT_EQ(legacy[4], 1);
        const auto back = decode_checkpoint(legacy.data(), legacy.size());
        for (const auto& rec : back.folded)
            EXPECT_EQ(rec.arm_tag, kNoKindTag);
        // Everything but the tags survives, and the restore is exact:
        // the arm cross-check is simply skipped for untagged records.
        ExecutionEngine fresh(2);
        expect_solves_identical(
            reference, fresh.resume(w.model, dev, w.config, w.shots, back));
    }
}

} // namespace
