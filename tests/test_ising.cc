/**
 * @file
 * Tests for the Ising substrate: Hamiltonian evaluation, the Gray-code
 * exact solver against naive enumeration, simulated annealing, Max-Cut
 * translation, and spin-flip symmetry (the Section 3.7.2 theorem).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "graph/generators.h"
#include "ising/exact_solver.h"
#include "ising/ising_model.h"
#include "ising/maxcut.h"
#include "ising/sa_solver.h"
#include "ising/symmetry.h"

namespace {

using namespace fq;
using namespace fq::ising;

IsingModel
random_model(int n, double h_scale, Rng& rng, double edge_prob = 0.5)
{
    IsingModel m(n);
    for (int i = 0; i < n; ++i)
        m.set_linear(i, h_scale * rng.normal());
    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j)
            if (rng.bernoulli(edge_prob))
                m.add_quadratic(i, j, rng.normal());
    m.set_offset(rng.normal());
    return m;
}

TEST(IsingModel, EvaluateMatchesHandComputation)
{
    // C(z) = 1*z0 - 2*z1 + 3*z0z1 + 0.5
    IsingModel m(2);
    m.set_linear(0, 1.0);
    m.set_linear(1, -2.0);
    m.add_quadratic(0, 1, 3.0);
    m.set_offset(0.5);

    EXPECT_DOUBLE_EQ(m.evaluate({+1, +1}), 1 - 2 + 3 + 0.5);
    EXPECT_DOUBLE_EQ(m.evaluate({+1, -1}), 1 + 2 - 3 + 0.5);
    EXPECT_DOUBLE_EQ(m.evaluate({-1, +1}), -1 - 2 - 3 + 0.5);
    EXPECT_DOUBLE_EQ(m.evaluate({-1, -1}), -1 + 2 + 3 + 0.5);
}

TEST(IsingModel, EvaluateStateMatchesSpinVector)
{
    Rng rng(1);
    const auto m = random_model(8, 1.0, rng);
    for (std::uint64_t s = 0; s < 256; ++s) {
        const auto z = state_to_spins(s, 8);
        EXPECT_NEAR(m.evaluate(z), m.evaluate_state(s), 1e-12);
    }
}

TEST(IsingModel, StateEncodingRoundTrip)
{
    const SpinVector z{+1, -1, -1, +1, -1};
    const auto s = spins_to_state(z);
    EXPECT_EQ(s, 0b10110u);
    EXPECT_EQ(state_to_spins(s, 5), z);
}

TEST(IsingModel, FlipDeltaMatchesRecomputation)
{
    Rng rng(2);
    const auto m = random_model(10, 0.7, rng);
    SpinVector z(10);
    for (auto& v : z)
        v = static_cast<std::int8_t>(rng.sign());
    for (int k = 0; k < 10; ++k) {
        SpinVector flipped = z;
        flipped[k] = static_cast<std::int8_t>(-flipped[k]);
        EXPECT_NEAR(m.flip_delta(z, k),
                    m.evaluate(flipped) - m.evaluate(z), 1e-10);
    }
}

TEST(IsingModel, QuadraticAccumulates)
{
    IsingModel m(3);
    m.add_quadratic(0, 1, 1.5);
    m.add_quadratic(1, 0, 0.5); // same pair, reversed order
    EXPECT_EQ(m.num_quadratic_terms(), 1);
    EXPECT_DOUBLE_EQ(m.quadratic(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(m.quadratic(1, 0), 2.0);
    EXPECT_DOUBLE_EQ(m.quadratic(0, 2), 0.0);
}

TEST(IsingModel, PruneZeroTerms)
{
    IsingModel m(3);
    m.add_quadratic(0, 1, 1.0);
    m.add_quadratic(1, 2, 1.0);
    m.add_quadratic(1, 2, -1.0); // cancels to zero
    m.prune_zero_terms();
    EXPECT_EQ(m.num_quadratic_terms(), 1);
    EXPECT_DOUBLE_EQ(m.quadratic(0, 1), 1.0);
    EXPECT_TRUE(m.couplings_of(2).empty());
}

TEST(IsingModel, GraphRoundTrip)
{
    Rng rng(3);
    auto g = graph::barabasi_albert(12, 2, rng);
    graph::assign_random_pm1_weights(g, rng);
    const auto m = IsingModel::from_graph(g);
    EXPECT_EQ(m.num_spins(), 12);
    EXPECT_EQ(m.num_quadratic_terms(), g.num_edges());
    const auto g2 = m.to_graph();
    EXPECT_EQ(g2.num_edges(), g.num_edges());
    for (const auto& e : g.edges())
        EXPECT_DOUBLE_EQ(g2.edge_weight(e.u, e.v), e.weight);
}

TEST(IsingModel, RejectsDiagonalTerm)
{
    IsingModel m(2);
    EXPECT_THROW(m.add_quadratic(1, 1, 1.0), Error);
}

TEST(ExactSolver, MatchesNaiveEnumeration)
{
    Rng rng(4);
    for (int trial = 0; trial < 5; ++trial) {
        const int n = 3 + static_cast<int>(rng.uniform_int(std::uint64_t(8)));
        const auto m = random_model(n, 0.8, rng);

        // Naive reference.
        double best = 1e300, worst = -1e300, sum = 0.0;
        for (std::uint64_t s = 0; s < (1ull << n); ++s) {
            const double c = m.evaluate_state(s);
            best = std::min(best, c);
            worst = std::max(worst, c);
            sum += c;
        }

        const auto sol = solve_exact(m);
        EXPECT_NEAR(sol.min_cost, best, 1e-9);
        EXPECT_NEAR(sol.max_cost, worst, 1e-9);
        EXPECT_NEAR(sol.mean_cost, sum / std::pow(2.0, n), 1e-9);
        EXPECT_NEAR(m.evaluate(sol.argmin), best, 1e-9);
    }
}

TEST(ExactSolver, AllCostsIndexedByState)
{
    Rng rng(5);
    const auto m = random_model(6, 0.5, rng);
    const auto costs = all_costs(m);
    ASSERT_EQ(costs.size(), 64u);
    for (std::uint64_t s = 0; s < 64; ++s)
        EXPECT_NEAR(costs[s], m.evaluate_state(s), 1e-10);
}

TEST(ExactSolver, CountsDegenerateMinima)
{
    // Single antiferromagnetic edge: minima are (+1,-1) and (-1,+1).
    IsingModel m(2);
    m.add_quadratic(0, 1, 1.0);
    const auto sol = solve_exact(m);
    EXPECT_DOUBLE_EQ(sol.min_cost, -1.0);
    EXPECT_EQ(sol.num_minima, 2u);
}

TEST(ExactSolver, RejectsOversizedInstance)
{
    IsingModel m(30);
    EXPECT_THROW(solve_exact(m, 26), Error);
}

TEST(SaSolver, FindsExactOptimumOnSmallInstances)
{
    Rng rng(6);
    for (int trial = 0; trial < 4; ++trial) {
        const auto m = random_model(12, 0.5, rng);
        const auto exact = solve_exact(m);
        SaConfig cfg;
        cfg.num_restarts = 6;
        cfg.sweeps_per_restart = 300;
        Rng sa_rng(100 + trial);
        const auto sol = solve_annealing(m, cfg, sa_rng);
        EXPECT_NEAR(sol.best_cost, exact.min_cost, 1e-9)
            << "SA missed the optimum on trial " << trial;
        EXPECT_NEAR(m.evaluate(sol.best_assignment), sol.best_cost, 1e-9);
    }
}

TEST(SaSolver, GreedyDescentMonotone)
{
    Rng rng(7);
    const auto m = random_model(14, 1.0, rng);
    SpinVector z(14);
    for (auto& v : z)
        v = static_cast<std::int8_t>(rng.sign());
    const double before = m.evaluate(z);
    const double after = greedy_descent(m, z);
    EXPECT_LE(after, before + 1e-12);
    // Local optimality: no single flip improves.
    for (int k = 0; k < 14; ++k)
        EXPECT_GE(m.flip_delta(z, k), -1e-9);
}

TEST(MaxCut, HamiltonianAndCutConsistency)
{
    Rng rng(8);
    auto g = graph::erdos_renyi(10, 0.4, rng);
    graph::assign_random_pm1_weights(g, rng);
    const auto m = maxcut_hamiltonian(g);
    EXPECT_TRUE(m.has_zero_linear_terms());

    SpinVector z(10);
    for (auto& v : z)
        v = static_cast<std::int8_t>(rng.sign());
    // cut(z) == (W - C(z)) / 2 for offset-0 Hamiltonians.
    EXPECT_NEAR(cut_value(g, z), cut_from_cost(g, m.evaluate(z)), 1e-10);
}

TEST(MaxCut, MinimizingCostMaximizesCut)
{
    Rng rng(9);
    auto g = graph::complete(8);
    graph::assign_random_pm1_weights(g, rng);
    const auto m = maxcut_hamiltonian(g);
    const auto sol = solve_exact(m);
    const double best_cut = cut_from_cost(g, sol.min_cost);
    // Every other assignment's cut must not exceed the decoded one.
    for (std::uint64_t s = 0; s < 256; ++s) {
        const auto z = state_to_spins(s, 8);
        EXPECT_LE(cut_value(g, z), best_cut + 1e-10);
    }
}

TEST(Symmetry, ZeroLinearImpliesGlobalFlipInvariance)
{
    Rng rng(10);
    auto g = graph::barabasi_albert(10, 2, rng);
    graph::assign_random_pm1_weights(g, rng);
    const auto m = IsingModel::from_graph(g);
    EXPECT_TRUE(is_flip_symmetric(m));
    EXPECT_TRUE(verify_flip_symmetry_exhaustive(m));
}

TEST(Symmetry, LinearTermBreaksSymmetry)
{
    IsingModel m(3);
    m.add_quadratic(0, 1, 1.0);
    m.set_linear(2, 0.5);
    EXPECT_FALSE(is_flip_symmetric(m));
    EXPECT_FALSE(verify_flip_symmetry_exhaustive(m));
}

TEST(Symmetry, EvenNumberOfGlobalMinima)
{
    // Section 3.7.2: symmetric Hamiltonians have an even minima count.
    Rng rng(11);
    for (int trial = 0; trial < 5; ++trial) {
        auto g = graph::barabasi_albert(9, 1, rng);
        graph::assign_random_pm1_weights(g, rng);
        const auto m = IsingModel::from_graph(g);
        const auto sol = solve_exact(m);
        EXPECT_EQ(sol.num_minima % 2, 0u) << "trial " << trial;
    }
}

TEST(Symmetry, MirrorModelEvaluatesFlipped)
{
    Rng rng(12);
    IsingModel m(6);
    for (int i = 0; i < 6; ++i)
        m.set_linear(i, rng.normal());
    m.add_quadratic(0, 3, 1.0);
    m.add_quadratic(2, 4, -2.0);
    m.set_offset(0.7);

    const auto mirror = mirror_model(m);
    for (std::uint64_t s = 0; s < 64; ++s) {
        const auto z = state_to_spins(s, 6);
        EXPECT_NEAR(mirror.evaluate(z), m.evaluate(flip_all(z)), 1e-12);
    }
}

TEST(Symmetry, FlipAllInvolution)
{
    const SpinVector z{+1, -1, +1};
    EXPECT_EQ(flip_all(flip_all(z)), z);
}

} // namespace
