/**
 * @file
 * Tests for the ASAP scheduler and the exact crosstalk analysis: layer
 * validity (disjoint qubits per layer), agreement with the depth metric,
 * barrier handling, busy-qubit accounting, and the crosstalk adjacency
 * semantics on known layouts.
 */
#include <gtest/gtest.h>

#include "circuit/metrics.h"
#include "device/topology.h"
#include "graph/generators.h"
#include "ising/ising_model.h"
#include "qaoa/qaoa_builder.h"
#include "transpiler/pipeline.h"
#include "transpiler/scheduler.h"

namespace {

using namespace fq;
using namespace fq::transpiler;

TEST(Scheduler, LayersHaveDisjointQubits)
{
    Rng rng(1);
    circuit::Circuit c(6);
    for (int k = 0; k < 60; ++k) {
        const int q = static_cast<int>(rng.uniform_int(std::uint64_t(6)));
        if (rng.bernoulli(0.5)) {
            c.h(q);
        } else {
            int r = static_cast<int>(rng.uniform_int(std::uint64_t(6)));
            if (r == q)
                r = (q + 1) % 6;
            c.cx(q, r);
        }
    }
    const auto schedule = make_asap_schedule(c);
    for (const auto& layer : schedule.layers) {
        std::vector<bool> used(6, false);
        for (int g : layer) {
            const auto& gate = c.gates()[g];
            ASSERT_FALSE(used[gate.q0]);
            used[gate.q0] = true;
            if (circuit::is_two_qubit(gate.type)) {
                ASSERT_FALSE(used[gate.q1]);
                used[gate.q1] = true;
            }
        }
    }
}

TEST(Scheduler, DepthMatchesMetric)
{
    // For circuits without SWAP/RZ specials, schedule depth == metric
    // depth (both count one level per gate).
    Rng rng(2);
    circuit::Circuit c(5);
    for (int k = 0; k < 40; ++k) {
        const int q = static_cast<int>(rng.uniform_int(std::uint64_t(5)));
        if (rng.bernoulli(0.5))
            c.h(q);
        else
            c.cx(q, (q + 2) % 5);
    }
    EXPECT_EQ(make_asap_schedule(c).depth(), circuit::circuit_depth(c));
}

TEST(Scheduler, PreservesDependencies)
{
    circuit::Circuit c(3);
    c.h(0);        // layer 0
    c.cx(0, 1);    // layer 1 (waits for h)
    c.h(2);        // layer 0 (parallel)
    c.cx(1, 2);    // layer 2 (waits for both)
    const auto s = make_asap_schedule(c);
    EXPECT_EQ(s.layer_of[0], 0);
    EXPECT_EQ(s.layer_of[1], 1);
    EXPECT_EQ(s.layer_of[2], 0);
    EXPECT_EQ(s.layer_of[3], 2);
}

TEST(Scheduler, BarrierForcesNewLayer)
{
    circuit::Circuit c(2);
    c.h(0);
    c.barrier();
    c.h(1); // would fit layer 0 without the barrier
    const auto s = make_asap_schedule(c);
    EXPECT_EQ(s.layer_of[0], 0);
    EXPECT_EQ(s.layer_of[1], -1); // the barrier itself
    EXPECT_EQ(s.layer_of[2], 1);
}

TEST(Scheduler, BusyLayersPerQubit)
{
    circuit::Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.h(0);
    const auto s = make_asap_schedule(c);
    const auto busy = busy_layers_per_qubit(c, s);
    EXPECT_EQ(busy[0], 3);
    EXPECT_EQ(busy[1], 1);
    EXPECT_EQ(busy[2], 0);
}

TEST(Crosstalk, AdjacentSimultaneousCxDetected)
{
    // Linear chain 0-1-2-3: CX(0,1) and CX(2,3) are simultaneous and the
    // couplings are adjacent (qubit 1 coupled to qubit 2).
    const auto topo = device::make_linear(4);
    circuit::Circuit c(4);
    c.cx(0, 1);
    c.cx(2, 3);
    const auto report = analyze_crosstalk(c, topo);
    EXPECT_EQ(report.total_overlapping_pairs, 1);
    EXPECT_EQ(report.max_exposure, 1);
    EXPECT_DOUBLE_EQ(report.mean_exposure, 1.0);
}

TEST(Crosstalk, DistantGatesDoNotInteract)
{
    // Chain of 6: CX(0,1) and CX(4,5) are separated by idle qubits 2,3.
    const auto topo = device::make_linear(6);
    circuit::Circuit c(6);
    c.cx(0, 1);
    c.cx(4, 5);
    const auto report = analyze_crosstalk(c, topo);
    EXPECT_EQ(report.total_overlapping_pairs, 0);
}

TEST(Crosstalk, SerializedGatesDoNotInteract)
{
    // Same qubits across layers never overlap.
    const auto topo = device::make_linear(4);
    circuit::Circuit c(4);
    c.cx(0, 1);
    c.cx(1, 2); // shares qubit 1 -> next layer
    const auto report = analyze_crosstalk(c, topo);
    EXPECT_EQ(report.total_overlapping_pairs, 0);
}

TEST(Crosstalk, HotspotCircuitsAreMoreExposed)
{
    // Compiled baseline QAOA on a hub-heavy graph shows more adjacent
    // overlap than the hub-free FrozenQubits sub-circuit.
    Rng rng(3);
    auto g = graph::barabasi_albert(16, 1, rng);
    graph::assign_random_pm1_weights(g, rng);
    const auto model = ising::IsingModel::from_graph(g);
    const auto dev = device::make_device("ibm-montreal");

    const auto base =
        compile(qaoa::build_qaoa_circuit(model), dev);
    const auto base_report =
        analyze_crosstalk(base.physical, dev.topology);

    // Drop the hub and recompile.
    const auto hub = model.to_graph().nodes_by_degree_desc()[0];
    ising::IsingModel reduced(16);
    for (const auto& term : model.quadratic_terms())
        if (term.i != hub && term.j != hub)
            reduced.add_quadratic(term.i, term.j, term.coefficient);
    reduced.prune_zero_terms();
    const auto sub = compile(qaoa::build_qaoa_circuit(reduced), dev);
    const auto sub_report = analyze_crosstalk(sub.physical, dev.topology);

    EXPECT_GE(base_report.total_overlapping_pairs,
              sub_report.total_overlapping_pairs);
}

} // namespace
