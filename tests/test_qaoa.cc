/**
 * @file
 * Tests for the QAOA layer. The load-bearing suite is the parameterized
 * property check that the closed-form p=1 expectation (Ozaeta et al.)
 * matches the dense statevector simulation for random Ising instances —
 * the analytic evaluator underpins every fidelity figure at scale.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/bitops.h"
#include "graph/generators.h"
#include "ising/ising_model.h"
#include "qaoa/analytic_p1.h"
#include "qaoa/qaoa_builder.h"
#include "sim/statevector.h"

namespace {

using namespace fq;
using namespace fq::qaoa;

/** Statevector reference for <Z_i>, <Z_i Z_j> and <C> at p=1. */
struct SvReference
{
    std::vector<double> z;
    std::vector<double> zz;
    double energy = 0.0;
};

SvReference
statevector_reference(const ising::IsingModel& model, const P1Angles& angles)
{
    BuildOptions opts;
    opts.num_layers = 1;
    opts.include_measurements = false;
    const auto circuit = build_qaoa_circuit(model, opts);
    const auto bound = circuit.bind({angles.gamma}, {angles.beta});
    const auto sv = sim::run_circuit(bound);

    const int n = model.num_spins();
    SvReference ref;
    ref.z.assign(n, 0.0);
    ref.zz.assign(model.quadratic_terms().size(), 0.0);
    const auto probs = sv.probabilities();
    for (std::uint64_t s = 0; s < probs.size(); ++s) {
        const double p = probs[s];
        if (p == 0.0)
            continue;
        for (int i = 0; i < n; ++i)
            ref.z[i] += p * spin_of_bit(s, i);
        const auto& terms = model.quadratic_terms();
        for (std::size_t t = 0; t < terms.size(); ++t)
            ref.zz[t] += p * spin_of_bit(s, terms[t].i) *
                         spin_of_bit(s, terms[t].j);
    }
    ref.energy = sv.expectation_ising(model);
    return ref;
}

TEST(QaoaBuilder, GateCountsMatchPrediction)
{
    Rng rng(1);
    auto g = graph::barabasi_albert(9, 2, rng);
    graph::assign_random_pm1_weights(g, rng);
    auto model = ising::IsingModel::from_graph(g);
    model.set_linear(3, 0.5); // one non-zero linear term

    for (int p : {1, 2, 3}) {
        BuildOptions opts;
        opts.num_layers = p;
        const auto c = build_qaoa_circuit(model, opts);
        const auto budget = predict_gate_budget(model, opts);
        EXPECT_EQ(c.count(circuit::GateType::CX), budget.cx);
        EXPECT_EQ(c.count(circuit::GateType::RZ), budget.rz);
        EXPECT_EQ(c.count(circuit::GateType::RX), budget.rx);
        EXPECT_EQ(c.count(circuit::GateType::H), budget.h);
        EXPECT_EQ(c.count(circuit::GateType::MEASURE), budget.measure);
        // Two CNOTs per edge per layer — the paper's core cost relation.
        EXPECT_EQ(budget.cx, 2 * model.num_quadratic_terms() * p);
    }
}

TEST(QaoaBuilder, ZeroLinearPlaceholdersKeptOnRequest)
{
    ising::IsingModel model(4);
    model.add_quadratic(0, 1, 1.0);

    BuildOptions drop;
    drop.num_layers = 1;
    const auto without = build_qaoa_circuit(model, drop);

    BuildOptions keep = drop;
    keep.keep_zero_linear_rz = true;
    const auto with = build_qaoa_circuit(model, keep);

    EXPECT_EQ(with.count(circuit::GateType::RZ) -
                  without.count(circuit::GateType::RZ),
              4); // one placeholder per spin
}

TEST(QaoaBuilder, TermTagsIdentifyCoefficients)
{
    ising::IsingModel model(3);
    model.set_linear(1, 0.25);
    model.add_quadratic(0, 2, -1.0);
    BuildOptions opts;
    opts.num_layers = 1;
    opts.keep_zero_linear_rz = true;
    const auto c = build_qaoa_circuit(model, opts);

    bool found_linear = false, found_quadratic = false;
    for (const auto& g : c.gates()) {
        if (g.type != circuit::GateType::RZ || g.angle.is_constant())
            continue;
        if (g.angle.tag == 1) {
            EXPECT_DOUBLE_EQ(g.angle.coefficient, 0.5); // 2*h_1
            found_linear = true;
        }
        if (g.angle.tag == 3) { // N + t = 3 + 0
            EXPECT_DOUBLE_EQ(g.angle.coefficient, -2.0); // 2*J
            found_quadratic = true;
        }
    }
    EXPECT_TRUE(found_linear);
    EXPECT_TRUE(found_quadratic);
}

TEST(QaoaBuilder, UniformSuperpositionAtZeroAngles)
{
    ising::IsingModel model(3);
    model.add_quadratic(0, 1, 1.0);
    model.add_quadratic(1, 2, -1.0);
    BuildOptions opts;
    opts.num_layers = 1;
    opts.include_measurements = false;
    const auto c = build_qaoa_circuit(model, opts).bind({0.0}, {0.0});
    const auto sv = sim::run_circuit(c);
    for (std::uint64_t s = 0; s < 8; ++s)
        EXPECT_NEAR(sv.probability(s), 1.0 / 8.0, 1e-12);
    // EV at zero angles is the uniform mean = offset (= 0 here).
    EXPECT_NEAR(sv.expectation_ising(model), 0.0, 1e-12);
}

/** Parameterized sweep: instance seed for the analytic-vs-statevector law. */
class AnalyticP1Property : public ::testing::TestWithParam<int>
{
};

TEST_P(AnalyticP1Property, MatchesStatevectorOnRandomInstances)
{
    Rng rng(1000 + GetParam());
    const int n = 3 + static_cast<int>(rng.uniform_int(std::uint64_t(5)));

    ising::IsingModel model(n);
    // Random h (sometimes zero), random sparse J, random offset.
    for (int i = 0; i < n; ++i)
        if (rng.bernoulli(0.6))
            model.set_linear(i, rng.uniform(-1.5, 1.5));
    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j)
            if (rng.bernoulli(0.5))
                model.add_quadratic(i, j, rng.uniform(-1.5, 1.5));
    model.set_offset(rng.uniform(-1.0, 1.0));

    for (int angle_trial = 0; angle_trial < 3; ++angle_trial) {
        const P1Angles angles{rng.uniform(0.0, M_PI),
                              rng.uniform(0.0, M_PI)};
        const auto analytic = evaluate_p1(model, angles);
        const auto reference = statevector_reference(model, angles);

        for (int i = 0; i < n; ++i)
            EXPECT_NEAR(analytic.z[i], reference.z[i], 1e-8)
                << "<Z_" << i << "> mismatch";
        for (std::size_t t = 0; t < analytic.zz.size(); ++t)
            EXPECT_NEAR(analytic.zz[t], reference.zz[t], 1e-8)
                << "<ZZ> term " << t << " mismatch";
        EXPECT_NEAR(analytic.energy, reference.energy, 1e-8);
    }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, AnalyticP1Property,
                         ::testing::Range(0, 12));

TEST(AnalyticP1, EnergyOnlyPathAgrees)
{
    Rng rng(2);
    auto g = graph::barabasi_albert(10, 1, rng);
    graph::assign_random_pm1_weights(g, rng);
    const auto model = ising::IsingModel::from_graph(g);
    const P1Angles angles{0.4, 0.3};
    EXPECT_DOUBLE_EQ(evaluate_p1_energy(model, angles),
                     evaluate_p1(model, angles).energy);
}

TEST(AnalyticP1, ZeroAnglesGiveUniformEnergy)
{
    Rng rng(3);
    auto g = graph::complete(6);
    graph::assign_random_pm1_weights(g, rng);
    auto model = ising::IsingModel::from_graph(g);
    model.set_offset(1.25);
    EXPECT_NEAR(evaluate_p1_energy(model, {0.0, 0.0}), 1.25, 1e-12);
}

TEST(AnalyticP1, OptimizerBeatsRandomAngles)
{
    Rng rng(4);
    auto g = graph::barabasi_albert(14, 1, rng);
    graph::assign_random_pm1_weights(g, rng);
    const auto model = ising::IsingModel::from_graph(g);

    const auto tuned = optimize_p1(model, 24, 16);
    for (int trial = 0; trial < 10; ++trial) {
        const P1Angles random_angles{rng.uniform(0.0, M_PI),
                                     rng.uniform(0.0, M_PI)};
        EXPECT_LE(tuned.energy,
                  evaluate_p1_energy(model, random_angles) + 1e-9);
    }
    // A tuned p=1 EV on a nontrivial instance must beat the uniform mean.
    EXPECT_LT(tuned.energy, -1e-3);
}

TEST(AnalyticP1, ScalesToPracticalSizes)
{
    // 500-qubit instance (the Section 6 scale) — evaluates instantly.
    Rng rng(5);
    auto g = graph::barabasi_albert(500, 1, rng);
    graph::assign_random_pm1_weights(g, rng);
    const auto model = ising::IsingModel::from_graph(g);
    const double e = evaluate_p1_energy(model, {0.35, 0.2});
    EXPECT_TRUE(std::isfinite(e));
    EXPECT_LT(std::abs(e), 499.0); // |EV| bounded by total coupling weight
}

} // namespace
