/**
 * @file
 * Distributed leaf execution suite: CRC framing defects surface as typed
 * errors, wire codecs round-trip, and — the acceptance bar — solves are
 * BIT-IDENTICAL local vs remote vs mixed, at any thread count, solo or
 * under service co-tenants, including a worker killed mid-wave whose
 * leaves hedge back onto the local arm.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "device/catalog.h"
#include "engine/engine.h"
#include "engine/solve_service.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/wire.h"
#include "net/worker.h"
#include "net/worker_pool.h"
#include "solve_test_util.h"

namespace {

using namespace fq;

std::string
unique_address()
{
    static std::atomic<int> counter{0};
    return "unix:/tmp/fq_test_net_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1)) + ".sock";
}

/** A pipe pair: write_frame/read_frame work on any stream fd. */
struct Pipe
{
    int fds[2] = {-1, -1};
    Pipe() { EXPECT_EQ(::pipe(fds), 0); }
    ~Pipe()
    {
        close_write();
        if (fds[0] >= 0)
            ::close(fds[0]);
    }
    void close_write()
    {
        if (fds[1] >= 0)
            ::close(fds[1]);
        fds[1] = -1;
    }
    int r() const { return fds[0]; }
    int w() const { return fds[1]; }
};

void
write_raw(int fd, const std::vector<std::uint8_t>& bytes)
{
    ASSERT_EQ(::write(fd, bytes.data(), bytes.size()),
              static_cast<ssize_t>(bytes.size()));
}

// ---------------------------------------------------------------- framing

TEST(NetFrame, RoundTripOverPipe)
{
    Pipe p;
    const std::vector<std::uint8_t> payload = {1, 2, 3, 250, 0, 7};
    net::write_frame(p.w(), net::kMsgExecBatch, payload);
    const auto frame = net::read_frame(p.r());
    EXPECT_EQ(frame.type, net::kMsgExecBatch);
    EXPECT_EQ(frame.payload, payload);
    EXPECT_EQ(net::frame_wire_size(payload.size()), 20 + payload.size());
}

TEST(NetFrame, RejectsCorruptPayload)
{
    Pipe p;
    auto bytes = net::encode_frame(net::kMsgLeafCounts, {10, 20, 30, 40});
    bytes.back() ^= 0x01; // flip one payload bit: CRC must catch it
    write_raw(p.w(), bytes);
    EXPECT_THROW(net::read_frame(p.r()), net::NetError);
}

TEST(NetFrame, RejectsBadMagic)
{
    Pipe p;
    auto bytes = net::encode_frame(net::kMsgError, {1});
    bytes[0] ^= 0xFF;
    write_raw(p.w(), bytes);
    EXPECT_THROW(net::read_frame(p.r()), net::NetError);
}

TEST(NetFrame, RejectsTruncatedFrame)
{
    Pipe p;
    const auto bytes = net::encode_frame(net::kMsgLeafCounts,
                                         {9, 9, 9, 9, 9, 9, 9, 9});
    const std::vector<std::uint8_t> half(bytes.begin(),
                                         bytes.begin() +
                                             static_cast<long>(
                                                 bytes.size() / 2));
    write_raw(p.w(), half);
    p.close_write(); // EOF mid-frame == peer died
    EXPECT_THROW(net::read_frame(p.r()), net::NetError);
}

TEST(NetFrame, RejectsOversizedLength)
{
    Pipe p;
    auto bytes = net::encode_frame(net::kMsgError, {});
    // Length field sits after magic+type; forge it past the cap.
    const std::uint64_t huge = net::kMaxFramePayload + 1;
    for (int i = 0; i < 8; ++i)
        bytes[8 + i] = static_cast<std::uint8_t>(huge >> (8 * i));
    write_raw(p.w(), bytes);
    EXPECT_THROW(net::read_frame(p.r()), net::NetError);
}

TEST(NetFrame, SilenceIsTypedTimeout)
{
    Pipe p; // nothing ever written
    try {
        net::read_frame(p.r(), 50);
        FAIL() << "expected NetTimeout";
    } catch (const net::NetTimeout&) {
    } catch (const net::NetError& e) {
        FAIL() << "plain NetError instead of NetTimeout: " << e.what();
    }
}

// ------------------------------------------------------------------ wire

TEST(NetWire, OpenSessionRoundTrip)
{
    net::OpenSession msg;
    msg.session_id = 42;
    msg.model = test::ba_model(12, 3, 5);
    msg.device_name = "ibm-montreal";
    msg.config.num_freeze = 3;
    msg.config.seed = 1234;
    msg.config.sparsify_keep = 0.5;
    msg.config.max_depth = 2;
    msg.seed = 1234;
    msg.shots = 2048;
    msg.model_hash = 0xAABB;
    msg.config_hash = 0xCCDD;
    msg.plan_hash = 0xEEFF;

    const auto back = net::decode_open_session(
        net::encode_open_session(msg));
    EXPECT_EQ(back.session_id, 42u);
    EXPECT_EQ(back.device_name, "ibm-montreal");
    EXPECT_EQ(back.model.num_spins(), msg.model.num_spins());
    EXPECT_EQ(back.model.quadratic_terms().size(),
              msg.model.quadratic_terms().size());
    EXPECT_EQ(back.config.num_freeze, 3);
    EXPECT_EQ(back.config.seed, 1234u);
    EXPECT_DOUBLE_EQ(back.config.sparsify_keep, 0.5);
    EXPECT_EQ(back.config.max_depth, 2);
    // Execution-local knobs never travel: the worker runs its own.
    EXPECT_EQ(back.config.threads, 1);
    EXPECT_EQ(back.config.checkpoint_interval, 0);
    EXPECT_EQ(back.shots, 2048);
    EXPECT_EQ(back.model_hash, 0xAABBu);
    EXPECT_EQ(back.config_hash, 0xCCDDu);
    EXPECT_EQ(back.plan_hash, 0xEEFFu);
}

TEST(NetWire, LeafCountsRoundTrip)
{
    net::LeafCounts msg;
    msg.session_id = 7;
    msg.leaf_id = 3;
    msg.fused_hit = 1;
    msg.tier = 2;
    msg.width = 5;
    msg.histogram = {{0, 100}, {31, 900}, {uint64_t(1) << 40, 24}};
    const auto back = net::decode_leaf_counts(net::encode_leaf_counts(msg));
    EXPECT_EQ(back.session_id, 7u);
    EXPECT_EQ(back.leaf_id, 3);
    EXPECT_EQ(back.fused_hit, 1);
    EXPECT_EQ(back.tier, 2);
    EXPECT_EQ(back.width, 5);
    EXPECT_EQ(back.histogram, msg.histogram);
}

TEST(NetWire, RejectsTrailingGarbage)
{
    auto payload = net::encode_exec_batch({11, {0, 1, 2}});
    payload.push_back(0x55);
    EXPECT_THROW(net::decode_exec_batch(payload), net::NetError);
}

TEST(NetWire, RejectsTruncatedPayload)
{
    auto payload = net::encode_leaf_failed({3, 1, "boom"});
    payload.resize(payload.size() - 2);
    EXPECT_THROW(net::decode_leaf_failed(payload), net::NetError);
}

// ---------------------------------------------------- distributed parity

/** N in-process workers on unique unix sockets. */
struct WorkerFleet
{
    std::vector<std::unique_ptr<net::WorkerServer>> servers;
    std::vector<std::string> addresses;

    explicit WorkerFleet(int n,
                         net::WorkerServer::Options opts =
                             net::WorkerServer::Options())
    {
        for (int i = 0; i < n; ++i) {
            addresses.push_back(unique_address());
            servers.push_back(std::make_unique<net::WorkerServer>(
                addresses.back(), opts));
            servers.back()->start();
        }
    }
    ~WorkerFleet()
    {
        for (auto& s : servers)
            s->stop();
    }
};

frozenqubits::DriverConfig
small_config(int threads)
{
    frozenqubits::DriverConfig config;
    config.num_freeze = 3; // 8 sub-spaces, 4 executed after mirroring
    config.threads = threads;
    config.seed = 21;
    return config;
}

frozenqubits::SampledSolve
local_solve(const ising::IsingModel& model, const device::Device& dev,
            const frozenqubits::DriverConfig& config, int shots)
{
    engine::ExecutionEngine eng(config.threads);
    return eng.solve(model, dev, config, shots, config.seed);
}

TEST(Distributed, OneWorkerMatchesLocalSerial)
{
    const auto model = test::ba_model(16, 3, 11);
    const auto dev = device::make_device("ibm-montreal");
    const auto config = small_config(1);
    const auto expected = local_solve(model, dev, config, 1024);

    WorkerFleet fleet(1);
    engine::ExecutionEngine eng(config.threads);
    net::WorkerPool pool(eng.local_leaf_executor(), eng.num_threads(),
                         fleet.addresses);
    eng.set_leaf_executor(&pool);
    const auto got = eng.solve(model, dev, config, 1024, config.seed);

    test::expect_solves_identical(expected, got);
    const auto& diag = eng.last_diagnostics();
    EXPECT_GT(diag.leaves_remote, 0);
    EXPECT_EQ(diag.leaves_remote + diag.leaves_local, 4);
    EXPECT_GT(diag.remote_bytes_sent, 0);
    EXPECT_GT(diag.remote_bytes_received, 0);
    long long dispatched = 0;
    for (const auto& [address, leaves] : diag.worker_dispatches) {
        EXPECT_EQ(address, fleet.addresses[0]);
        dispatched += leaves;
    }
    EXPECT_EQ(dispatched, diag.leaves_remote);
}

TEST(Distributed, FourWorkersMatchLocalThreaded)
{
    const auto model = test::ba_model(18, 3, 13);
    const auto dev = device::make_device("ibm-montreal");
    auto config = small_config(4);
    config.num_freeze = 4; // 8 executed leaves: enough to spread around
    const auto expected = local_solve(model, dev, config, 2048);

    net::WorkerServer::Options wopts;
    wopts.threads = 2;
    WorkerFleet fleet(4, wopts);
    engine::ExecutionEngine eng(config.threads);
    net::WorkerPool pool(eng.local_leaf_executor(), eng.num_threads(),
                         fleet.addresses);
    eng.set_leaf_executor(&pool);
    const auto got = eng.solve(model, dev, config, 2048, config.seed);

    test::expect_solves_identical(expected, got);
    EXPECT_GT(eng.last_diagnostics().leaves_remote, 0);
    EXPECT_EQ(pool.live_workers(), 4);
    // Consecutive solves on the SAME pool reuse the connections.
    const auto again = eng.solve(model, dev, config, 2048, config.seed);
    test::expect_solves_identical(expected, again);
}

TEST(Distributed, WorkerDeathMidWaveIsInvisible)
{
    const auto model = test::ba_model(16, 3, 17);
    const auto dev = device::make_device("ibm-montreal");
    auto config = small_config(2);
    config.num_freeze = 4;
    const auto expected = local_solve(model, dev, config, 1024);

    // The worker answers ONE leaf then hard-closes mid-batch — the
    // deterministic kill -9. Its unanswered leaves must hedge local.
    net::WorkerServer::Options wopts;
    wopts.die_after_leaves = 1;
    WorkerFleet fleet(1, wopts);
    engine::ExecutionEngine eng(config.threads);
    net::WorkerPool pool(eng.local_leaf_executor(), eng.num_threads(),
                         fleet.addresses);
    eng.set_leaf_executor(&pool);
    const auto got = eng.solve(model, dev, config, 1024, config.seed);

    test::expect_solves_identical(expected, got);
    const auto& diag = eng.last_diagnostics();
    EXPECT_GT(diag.leaves_redispatched, 0);
    EXPECT_EQ(pool.live_workers(), 0);

    // A dead fleet degrades to pure local — still identical.
    const auto after = eng.solve(model, dev, config, 1024, config.seed);
    test::expect_solves_identical(expected, after);
    EXPECT_EQ(eng.last_diagnostics().leaves_remote, 0);
}

TEST(Distributed, RngSeededPlanPinsLocal)
{
    // The Rng overload records no replayable seed (request.seed = 0), so
    // the worker's replan diverges, it REJECTS the session, and the pool
    // pins the request local — without killing the worker.
    const auto model = test::ba_model(14, 3, 19);
    const auto dev = device::make_device("ibm-montreal");
    const auto config = small_config(1);

    engine::ExecutionEngine baseline(config.threads);
    Rng rng_a(99);
    const auto expected =
        baseline.solve(model, dev, config, 512, rng_a);

    WorkerFleet fleet(1);
    engine::ExecutionEngine eng(config.threads);
    net::WorkerPool pool(eng.local_leaf_executor(), eng.num_threads(),
                         fleet.addresses);
    eng.set_leaf_executor(&pool);
    Rng rng_b(99);
    const auto got = eng.solve(model, dev, config, 512, rng_b);

    test::expect_solves_identical(expected, got);
    EXPECT_EQ(eng.last_diagnostics().leaves_remote, 0);
    EXPECT_EQ(pool.live_workers(), 1);
}

TEST(Distributed, AllowRemoteFalsePinsLocal)
{
    const auto model = test::ba_model(16, 3, 23);
    const auto dev = device::make_device("ibm-montreal");
    auto config = small_config(1);
    config.allow_remote = false;
    const auto expected = local_solve(model, dev, config, 512);

    WorkerFleet fleet(2);
    engine::ExecutionEngine eng(config.threads);
    net::WorkerPool pool(eng.local_leaf_executor(), eng.num_threads(),
                         fleet.addresses);
    eng.set_leaf_executor(&pool);
    const auto got = eng.solve(model, dev, config, 512, config.seed);

    test::expect_solves_identical(expected, got);
    EXPECT_EQ(eng.last_diagnostics().leaves_remote, 0);
    EXPECT_EQ(pool.live_workers(), 2);
}

TEST(Distributed, ServiceCoTenantsMixedLocalRemote)
{
    const auto dev = device::make_device("ibm-montreal");
    const auto model_a = test::ba_model(16, 3, 29);
    const auto model_b = test::ba_model(14, 3, 31);
    const auto model_c = test::ba_model(18, 3, 37);

    auto config_a = small_config(2);
    auto config_b = small_config(2);
    config_b.num_freeze = 2;
    config_b.allow_remote = false; // workers=0 tenant
    auto config_c = small_config(2);
    config_c.num_freeze = 4;
    config_a.seed = 41;
    config_b.seed = 43;
    config_c.seed = 47;

    const auto expected_a = local_solve(model_a, dev, config_a, 1024);
    const auto expected_b = local_solve(model_b, dev, config_b, 1024);
    const auto expected_c = local_solve(model_c, dev, config_c, 1024);

    WorkerFleet fleet(2);
    engine::ExecutionEngine eng(2);
    net::WorkerPool pool(eng.local_leaf_executor(), eng.num_threads(),
                         fleet.addresses);
    eng.set_leaf_executor(&pool);
    engine::SolveService service(eng, {});

    auto ta = service.submit(model_a, dev, config_a, 1024, config_a.seed);
    auto tb = service.submit(model_b, dev, config_b, 1024, config_b.seed);
    auto tc = service.submit(model_c, dev, config_c, 1024, config_c.seed);
    service.drain();

    test::expect_solves_identical(expected_a, ta.get());
    test::expect_solves_identical(expected_b, tb.get());
    test::expect_solves_identical(expected_c, tc.get());

    const auto diag_a = service.diagnostics(ta.id());
    const auto diag_b = service.diagnostics(tb.id());
    const auto diag_c = service.diagnostics(tc.id());
    // The pinned tenant never left the process; the remote-capable ones
    // account every leaf as exactly one of local/remote.
    EXPECT_EQ(diag_b.leaves_remote, 0);
    EXPECT_EQ(diag_a.leaves_remote + diag_a.leaves_local,
              diag_a.leaves_executed);
    EXPECT_EQ(diag_c.leaves_remote + diag_c.leaves_local,
              diag_c.leaves_executed);
    EXPECT_GT(diag_a.leaves_remote + diag_c.leaves_remote, 0);
}

TEST(Distributed, WorkerSurvivesManyShortLivedConnections)
{
    // A long-lived worker serving many short-lived coordinators: each
    // pool connects (hello handshake) and disconnects. Finished
    // connection threads must be reaped as new connections arrive, and
    // the final stop() must join everything without hanging.
    WorkerFleet fleet(1);
    engine::ExecutionEngine eng(1);
    for (int i = 0; i < 8; ++i) {
        net::WorkerPool pool(eng.local_leaf_executor(), eng.num_threads(),
                             fleet.addresses);
        EXPECT_EQ(pool.live_workers(), 1);
    }
}

TEST(Distributed, BadAddressFailsAtStartup)
{
    engine::ExecutionEngine eng(1);
    EXPECT_THROW(net::WorkerPool(eng.local_leaf_executor(),
                                 eng.num_threads(),
                                 {"unix:/tmp/fq_no_such_worker.sock"}),
                 net::NetError);
}

} // namespace
