/**
 * @file
 * SolveTree tests: structural contracts of the hierarchical plan (node
 * kinds, lift composition across levels, mirror bookkeeping), scheduler
 * determinism (ranking, budget cut, domination pruning) and the
 * offset-consistency invariant that makes leaf-model costs exact
 * original-model costs for freeze lineages.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "device/catalog.h"
#include "engine/scheduler.h"
#include "engine/solve_tree.h"
#include "engine/template_cache.h"
#include "graph/generators.h"
#include "ising/ising_model.h"
#include "solve_test_util.h"

namespace {

using namespace fq;
using namespace fq::engine;
using fq::test::ba_model;

SolveTree
build(const ising::IsingModel& model,
      const frozenqubits::DriverConfig& config)
{
    const auto dev = device::make_device("ibm-montreal");
    TemplateCache cache;
    Rng rng(config.seed);
    return build_solve_tree(model, dev, config, cache, rng);
}

TEST(SolveTree, FlatTreeMatchesLegacyPlanShape)
{
    const auto model = ba_model(12, 1, 5);
    frozenqubits::DriverConfig config;
    config.num_freeze = 3;

    const auto tree = build(model, config);
    EXPECT_TRUE(tree.flat());
    EXPECT_EQ(tree.nodes.front().kind, NodeKind::Freeze);
    EXPECT_EQ(tree.num_leaf_nodes(), 8);         // 2^m
    EXPECT_EQ(tree.num_executable_leaves(), 4);  // 2^{m-1} pruned
    // Every executable leaf mirrors exactly one sibling and carries the
    // shared template of the (single) freeze level.
    for (const auto& leaf : tree.leaves) {
        EXPECT_EQ(leaf.mirror_nodes.size(), 1u);
        EXPECT_FALSE(leaf.needs_repair);
        EXPECT_TRUE(leaf.tpl != nullptr);
        EXPECT_TRUE(leaf.tpl_compatible);
    }
}

TEST(SolveTree, DepthTwoComposesLiftsAndDistinctStreams)
{
    const auto model = ba_model(12, 1, 9);
    frozenqubits::DriverConfig config;
    config.num_freeze = 2;
    config.max_depth = 2;

    const auto tree = build(model, config);
    EXPECT_FALSE(tree.flat());
    // Root freezes 2 (pruning disabled when recursing: 4 children), each
    // child freezes 2 more.
    EXPECT_EQ(tree.nodes.front().children.size(), 4u);

    std::set<std::uint64_t> seeds;
    for (const auto& leaf : tree.leaves) {
        const auto& node = tree.nodes[static_cast<std::size_t>(leaf.node)];
        EXPECT_EQ(node.depth, 2);
        // Full coverage: surviving spins + accumulated frozen values
        // partition the original index space.
        std::set<int> covered(node.sub.original_of.begin(),
                              node.sub.original_of.end());
        for (const auto& fs : node.sub.frozen)
            covered.insert(fs.original_index);
        EXPECT_EQ(covered.size(),
                  static_cast<std::size_t>(model.num_spins()));
        EXPECT_EQ(node.sub.frozen.size(), 4u); // 2 per level
        seeds.insert(leaf.rng_seed);
    }
    // Private streams never collide across the tree.
    EXPECT_EQ(seeds.size(), tree.leaves.size());
}

TEST(SolveTree, FreezeLineageLeafCostsAreOriginalCosts)
{
    // The Table 2 offset bookkeeping must survive composition: a leaf
    // outcome's sub-model energy equals the original-model cost of its
    // lifted assignment, at every depth.
    const auto model = ba_model(10, 1, 13);
    frozenqubits::DriverConfig config;
    config.num_freeze = 2;
    config.max_depth = 2;

    const auto tree = build(model, config);
    const ising::SpinVector base(
        static_cast<std::size_t>(model.num_spins()), 1);
    for (const auto& leaf : tree.leaves) {
        const auto& sub =
            tree.nodes[static_cast<std::size_t>(leaf.node)].sub;
        const std::uint64_t states =
            std::uint64_t{1} << sub.model.num_spins();
        for (std::uint64_t state = 0; state < states; state += 3) {
            const auto lifted =
                lift_leaf_state(tree, leaf, state, base);
            EXPECT_NEAR(sub.model.evaluate_state(state),
                        model.evaluate(lifted), 1e-9);
        }
    }
}

TEST(SolveTree, PartitionNodeFragmentsCoverTheSpins)
{
    const auto model = ba_model(16, 1, 21);
    frozenqubits::DriverConfig config;
    config.num_freeze = 2;
    config.max_depth = 2;
    config.partition_width = 12;

    const auto tree = build(model, config);
    const auto& root = tree.nodes.front();
    ASSERT_EQ(root.kind, NodeKind::Partition);
    EXPECT_GT(root.cut_edges, 0);
    ASSERT_EQ(root.children.size(), 2u);

    std::set<int> covered;
    for (int ci : root.children) {
        const auto& child = tree.nodes[static_cast<std::size_t>(ci)];
        EXPECT_TRUE(child.partition_lineage);
        for (int v : child.sub.original_of)
            EXPECT_TRUE(covered.insert(v).second) << "overlapping spin";
    }
    EXPECT_EQ(covered.size(), static_cast<std::size_t>(model.num_spins()));
    for (const auto& leaf : tree.leaves)
        EXPECT_TRUE(leaf.needs_repair);
}

TEST(LeafScheduler, BudgetCutIsExactAndDeterministic)
{
    const auto model = ba_model(12, 1, 5);
    frozenqubits::DriverConfig config;
    config.num_freeze = 3;
    config.max_circuits = 2;

    const auto tree = build(model, config);
    const auto a = make_schedule(model, tree, config);
    const auto b = make_schedule(model, tree, config);

    ASSERT_EQ(a.executed.size(), 2u);
    EXPECT_EQ(a.beyond_budget.size(), 2u);
    EXPECT_TRUE(a.scored);
    EXPECT_TRUE(a.has_presolve);
    EXPECT_EQ(a.executed, b.executed);
    EXPECT_EQ(a.beyond_budget, b.beyond_budget);

    // Rank order: scores are non-decreasing down the schedule, and the cut
    // leaves score no better than the executed ones.
    const auto score = [&](int id) {
        return a.scores[static_cast<std::size_t>(id)].score;
    };
    EXPECT_LE(score(a.executed[0]), score(a.executed[1]));
    for (int skipped : a.beyond_budget)
        EXPECT_LE(score(a.executed.back()), score(skipped));
}

TEST(LeafScheduler, UnbudgetedFlatScheduleIsPlanOrder)
{
    const auto model = ba_model(12, 1, 5);
    frozenqubits::DriverConfig config;
    config.num_freeze = 3;

    const auto tree = build(model, config);
    const auto schedule = make_schedule(model, tree, config);
    EXPECT_FALSE(schedule.scored);
    ASSERT_EQ(schedule.executed.size(), 4u);
    for (std::size_t k = 0; k < schedule.executed.size(); ++k)
        EXPECT_EQ(schedule.executed[k], static_cast<int>(k));
}

TEST(LeafScheduler, PartitionAwareScoringChargesCutWeight)
{
    // Hybrid (bisected) arms drop cut couplings their SA presolve cannot
    // see; the scheduler charges half the recorded cut weight back so they
    // rank honestly against freeze arms. Freeze lineages pay nothing.
    const auto model = ba_model(16, 1, 21);
    frozenqubits::DriverConfig hybrid;
    hybrid.num_freeze = 2;
    hybrid.max_depth = 2;
    hybrid.partition_width = 12;

    const auto tree = build(model, hybrid);
    const auto& root = tree.nodes.front();
    ASSERT_EQ(root.kind, NodeKind::Partition);
    ASSERT_GT(root.cut_weight, 0.0);
    for (const auto& leaf : tree.leaves) {
        EXPECT_DOUBLE_EQ(lineage_score_penalty(tree, leaf.leaf_id),
                         0.5 * root.cut_weight);
    }

    frozenqubits::DriverConfig flat;
    flat.num_freeze = 3;
    const auto freeze_tree = build(ba_model(12, 1, 5), flat);
    for (const auto& leaf : freeze_tree.leaves)
        EXPECT_DOUBLE_EQ(lineage_score_penalty(freeze_tree, leaf.leaf_id),
                         0.0);

    // The penalty flows into the schedule's scores: re-scoring the leaf
    // model alone (same seed recipe) can only come in at or below the
    // recorded score, short exactly when a cut was charged.
    hybrid.max_circuits = 2; // activate scoring
    const auto schedule = make_schedule(model, tree, hybrid);
    ASSERT_TRUE(schedule.scored);
    for (const auto& leaf : tree.leaves) {
        const auto& score =
            schedule.scores[static_cast<std::size_t>(leaf.leaf_id)];
        EXPECT_TRUE(std::isfinite(score.score));
        EXPECT_TRUE(leaf.needs_repair); // whole tree is partition lineage
        EXPECT_EQ(score.bound,
                  -std::numeric_limits<double>::infinity());
    }
}

TEST(LeafScheduler, RerankIntervalForcesScoringAndPlanRanks)
{
    const auto model = ba_model(12, 1, 5);
    frozenqubits::DriverConfig config;
    config.num_freeze = 3;
    config.rerank_interval = 2; // no budget, no pruning — still scored

    const auto tree = build(model, config);
    const auto schedule = make_schedule(model, tree, config);
    EXPECT_TRUE(schedule.scored);
    EXPECT_TRUE(schedule.has_presolve);
    // Plan ranks are a permutation of [0, leaves): the frozen tie-breaker
    // adaptive re-ranks fall back to.
    ASSERT_EQ(schedule.plan_rank.size(), tree.leaves.size());
    std::set<int> ranks(schedule.plan_rank.begin(),
                        schedule.plan_rank.end());
    EXPECT_EQ(ranks.size(), tree.leaves.size());
    EXPECT_EQ(*ranks.begin(), 0);
}

TEST(LeafScheduler, DominationPruningKeepsAtLeastOneLeaf)
{
    // ±1-weight BA trees are SA-trivial, so with pruning on most (often
    // all) leaves are dominated by the presolve incumbent — the schedule
    // must still execute at least one circuit.
    const auto model = ba_model(12, 1, 7);
    frozenqubits::DriverConfig config;
    config.num_freeze = 3;
    config.prune_dominated = true;

    const auto tree = build(model, config);
    const auto schedule = make_schedule(model, tree, config);
    EXPECT_GE(schedule.executed.size(), 1u);
    EXPECT_EQ(schedule.executed.size() + schedule.beyond_budget.size() +
                  schedule.pruned.size(),
              tree.leaves.size());
    // Every pruned leaf is provably dominated: bound above the incumbent.
    for (int id : schedule.pruned)
        EXPECT_GT(schedule.scores[static_cast<std::size_t>(id)].bound,
                  schedule.presolve_cost);
}

TEST(SolveTree, SparsifyInterposesWithoutChangingLeafModels)
{
    // The Sparsify arm wraps each would-be leaf: the executable leaf's
    // own sub-model (what samples and what decodes) is byte-for-byte the
    // model the plain freeze tree would have given it — only the
    // optimizer proxy differs.
    const auto model = ba_model(16, 3, 21);
    frozenqubits::DriverConfig plain;
    plain.num_freeze = 2;
    auto sparse = plain;
    sparse.sparsify_keep = 0.5;

    const auto tree_plain = build(model, plain);
    const auto tree_sparse = build(model, sparse);
    ASSERT_EQ(tree_plain.leaves.size(), tree_sparse.leaves.size());
    for (std::size_t k = 0; k < tree_plain.leaves.size(); ++k) {
        const auto& a = tree_plain.nodes[static_cast<std::size_t>(
            tree_plain.leaves[k].node)];
        const auto& b = tree_sparse.nodes[static_cast<std::size_t>(
            tree_sparse.leaves[k].node)];
        EXPECT_EQ(a.sub.model.num_spins(), b.sub.model.num_spins());
        EXPECT_EQ(a.sub.model.num_quadratic_terms(),
                  b.sub.model.num_quadratic_terms());
        EXPECT_DOUBLE_EQ(a.sub.model.offset(), b.sub.model.offset());
        ASSERT_EQ(a.sub.frozen.size(), b.sub.frozen.size());
        for (std::size_t f = 0; f < a.sub.frozen.size(); ++f) {
            EXPECT_EQ(a.sub.frozen[f].original_index,
                      b.sub.frozen[f].original_index);
            EXPECT_EQ(a.sub.frozen[f].value, b.sub.frozen[f].value);
        }
        // Same plan-derived RNG stream: sampling is untouched by the arm.
        EXPECT_EQ(tree_plain.leaves[k].rng_seed,
                  tree_sparse.leaves[k].rng_seed);
        EXPECT_NE(tree_sparse.leaves[k].proxy, nullptr);
    }
}

TEST(LeafScheduler, SparsifyAwareScoringChargesPrunedWeight)
{
    const auto model = ba_model(16, 3, 21);
    frozenqubits::DriverConfig config;
    config.num_freeze = 2;
    config.sparsify_keep = 0.4;
    config.max_circuits = 1; // activate scoring

    const auto tree = build(model, config);
    const auto schedule = make_schedule(model, tree, config);
    ASSERT_TRUE(schedule.scored);
    for (const auto& leaf : tree.leaves) {
        const auto& arm = tree.nodes[static_cast<std::size_t>(
            tree.nodes[static_cast<std::size_t>(leaf.node)].parent)];
        ASSERT_EQ(arm.kind, NodeKind::Sparsify);
        EXPECT_DOUBLE_EQ(lineage_score_penalty(tree, leaf.leaf_id),
                         0.25 * arm.cut_weight);
        // Sparsify never invalidates the optimistic bound: sampling runs
        // the full model, so the bound stays meaningful (finite).
        EXPECT_FALSE(leaf.needs_repair);
        EXPECT_TRUE(std::isfinite(
            schedule.scores[static_cast<std::size_t>(leaf.leaf_id)]
                .bound));
    }
    // The schedule itself is a pure function of the plan: rebuilding
    // reproduces the exact ranked order.
    const auto again = make_schedule(model, tree, config);
    EXPECT_EQ(schedule.executed, again.executed);
    EXPECT_EQ(schedule.beyond_budget, again.beyond_budget);
}

} // namespace
