/**
 * @file
 * Tensored readout-error mitigation (Bravyi et al., cited by the paper as
 * an orthogonal, combinable fidelity technique — Section 7).
 *
 * Measurement errors are modeled per qubit by a 2x2 confusion matrix
 *   A_q = [[1-e01, e10], [e01, 1-e10]]
 * mapping true outcome probabilities to observed ones. The full assignment
 * matrix is the tensor product of the per-qubit matrices, so its inverse
 * is the tensor product of the 2x2 inverses and a distribution over s
 * distinct observed outcomes is corrected in O(s * 2^n_err) where n_err is
 * bounded by truncating tiny inverse weights — here we apply the exact
 * per-qubit inverse to expectation values and a direct histogram
 * correction for small registers.
 *
 * Combining with FrozenQubits: mitigation applies to each sub-problem's
 * output distribution independently; the driver-level combination is
 * exercised in the ablation bench.
 */
#ifndef FQ_MITIGATION_READOUT_MITIGATION_H
#define FQ_MITIGATION_READOUT_MITIGATION_H

#include <vector>

#include "device/calibration.h"
#include "ising/ising_model.h"
#include "sim/counts.h"

namespace fq::mitigation {

/** Per-qubit symmetric confusion model: flip probability per qubit. */
class ReadoutMitigator
{
  public:
    /** Build from explicit per-qubit flip probabilities (symmetric e01=e10). */
    explicit ReadoutMitigator(std::vector<double> flip_probabilities);

    /** Build for a set of physical qubits from device calibration. */
    static ReadoutMitigator from_calibration(
        const device::Calibration& calibration,
        const std::vector<int>& physical_qubits);

    int num_qubits() const
    {
        return static_cast<int>(flip_.size());
    }

    /**
     * Mitigated expectation value of @p model over @p counts: every
     * <Z_i>-type factor of an observed correlator is divided by (1-2e_i)
     * — the exact inverse of the symmetric confusion channel.
     * Numerically stable for e < 0.5 and unbiased as shots grow.
     */
    double mitigated_expectation(const ising::IsingModel& model,
                                 const sim::Counts& counts) const;

    /**
     * Full histogram correction by applying the inverse tensored confusion
     * matrix; limited to <= 16 qubits (dense 2^n vector). Quasi-probability
     * outputs are clipped at zero and renormalized.
     */
    std::vector<double> mitigated_distribution(
        const sim::Counts& counts) const;

    /** The attenuation factor (1-2e_i) mitigation divides out for qubit i. */
    double z_attenuation(int qubit) const;

  private:
    std::vector<double> flip_;
};

} // namespace fq::mitigation

#endif // FQ_MITIGATION_READOUT_MITIGATION_H
