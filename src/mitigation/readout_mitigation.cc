#include "mitigation/readout_mitigation.h"

#include <algorithm>
#include <cmath>

#include "common/bitops.h"
#include "common/error.h"

namespace fq::mitigation {

ReadoutMitigator::ReadoutMitigator(std::vector<double> flip_probabilities)
    : flip_(std::move(flip_probabilities))
{
    FQ_REQUIRE(!flip_.empty(), "need at least one qubit");
    for (double e : flip_)
        FQ_REQUIRE(e >= 0.0 && e < 0.5,
                   "flip probability must be in [0, 0.5) for invertibility");
}

ReadoutMitigator
ReadoutMitigator::from_calibration(const device::Calibration& calibration,
                                   const std::vector<int>& physical_qubits)
{
    std::vector<double> flips;
    flips.reserve(physical_qubits.size());
    for (int q : physical_qubits)
        flips.push_back(calibration.qubit(q).readout_error);
    return ReadoutMitigator(std::move(flips));
}

double
ReadoutMitigator::z_attenuation(int qubit) const
{
    FQ_REQUIRE(qubit >= 0 && qubit < num_qubits(), "qubit out of range");
    return 1.0 - 2.0 * flip_[qubit];
}

double
ReadoutMitigator::mitigated_expectation(const ising::IsingModel& model,
                                        const sim::Counts& counts) const
{
    FQ_REQUIRE(model.num_spins() == num_qubits() &&
                   counts.num_qubits() == num_qubits(),
               "model/counts width must match the mitigator");
    FQ_REQUIRE(counts.total_shots() > 0, "empty distribution");

    // Observed per-term correlators.
    const int n = num_qubits();
    std::vector<double> z_obs(n, 0.0);
    std::vector<double> zz_obs(model.quadratic_terms().size(), 0.0);
    const auto& terms = model.quadratic_terms();
    for (const auto& [state, count] : counts.histogram()) {
        const double w = static_cast<double>(count);
        for (int i = 0; i < n; ++i)
            z_obs[i] += w * spin_of_bit(state, i);
        for (std::size_t t = 0; t < terms.size(); ++t)
            zz_obs[t] += w * spin_of_bit(state, terms[t].i) *
                         spin_of_bit(state, terms[t].j);
    }
    const double shots = static_cast<double>(counts.total_shots());

    double ev = model.offset();
    for (int i = 0; i < n; ++i)
        ev += model.linear(i) * (z_obs[i] / shots) / z_attenuation(i);
    for (std::size_t t = 0; t < terms.size(); ++t) {
        ev += terms[t].coefficient * (zz_obs[t] / shots) /
              (z_attenuation(terms[t].i) * z_attenuation(terms[t].j));
    }
    return ev;
}

std::vector<double>
ReadoutMitigator::mitigated_distribution(const sim::Counts& counts) const
{
    const int n = num_qubits();
    FQ_REQUIRE(counts.num_qubits() == n,
               "counts width must match the mitigator");
    FQ_REQUIRE(n <= 16, "dense correction limited to 16 qubits");
    FQ_REQUIRE(counts.total_shots() > 0, "empty distribution");

    const std::size_t dim = std::size_t(1) << n;
    std::vector<double> p(dim, 0.0);
    for (const auto& [state, count] : counts.histogram())
        p[state] = static_cast<double>(count) /
                   static_cast<double>(counts.total_shots());

    // Apply the per-qubit 2x2 inverse confusion matrices.
    for (int q = 0; q < n; ++q) {
        const double e = flip_[q];
        const double inv = 1.0 / (1.0 - 2.0 * e);
        const std::size_t bit = std::size_t(1) << q;
        for (std::size_t s = 0; s < dim; ++s) {
            if (s & bit)
                continue;
            const double p0 = p[s];
            const double p1 = p[s | bit];
            p[s] = inv * ((1.0 - e) * p0 - e * p1);
            p[s | bit] = inv * ((1.0 - e) * p1 - e * p0);
        }
    }

    // Clip quasi-probabilities and renormalize.
    double mass = 0.0;
    for (double& v : p) {
        v = std::max(0.0, v);
        mass += v;
    }
    if (mass > 0.0)
        for (double& v : p)
            v /= mass;
    return p;
}

} // namespace fq::mitigation
