/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the ONE integrity
 * checksum shared by every framed byte stream in the codebase: checkpoint
 * snapshots (engine/checkpoint.cc) and the distributed-execution wire
 * protocol (net/frame.cc). Known answer: crc32("123456789") == 0xCBF43926.
 */
#ifndef FQ_COMMON_CRC32_H
#define FQ_COMMON_CRC32_H

#include <array>
#include <cstddef>
#include <cstdint>

namespace fq::common {

/** Table-driven CRC-32 over @p size bytes (init/final XOR 0xFFFFFFFF). */
inline std::uint32_t
crc32(const std::uint8_t* data, std::size_t size)
{
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t n = 0; n < 256; ++n) {
            std::uint32_t c = n;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[n] = c;
        }
        return t;
    }();
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i)
        crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

} // namespace fq::common

#endif // FQ_COMMON_CRC32_H
