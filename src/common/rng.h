/**
 * @file
 * Deterministic random-number generation.
 *
 * All stochastic components of the library (graph generators, calibration
 * synthesis, samplers, trajectory noise) take an explicit Rng so every
 * experiment is reproducible from a single seed. The generator is
 * xoshiro256++ seeded through splitmix64, which gives high-quality streams
 * from arbitrary 64-bit seeds and is trivially portable (unlike
 * std::mt19937_64 + std::uniform_*_distribution, whose outputs differ across
 * standard libraries).
 */
#ifndef FQ_COMMON_RNG_H
#define FQ_COMMON_RNG_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace fq {

/** splitmix64 step; used for seeding and for hashing strings to seeds. */
std::uint64_t splitmix64(std::uint64_t& state);

/** Stable 64-bit hash of a string (FNV-1a folded through splitmix64). */
std::uint64_t hash_seed(const std::string& text);

/** Combine two seeds into a new stream seed. */
std::uint64_t combine_seeds(std::uint64_t a, std::uint64_t b);

/**
 * Seed of the independent RNG stream owned by sub-problem @p index.
 *
 * Execution-order free: the stream depends only on (seed, index), never on
 * how many draws other sub-problems made, so a thread-pooled batch run
 * produces bit-identical samples to a serial one (the ExecutionEngine's
 * determinism guarantee).
 */
std::uint64_t subproblem_stream_seed(std::uint64_t seed,
                                     std::uint64_t subproblem_index);

/**
 * xoshiro256++ pseudo-random generator with convenience samplers.
 *
 * Satisfies UniformRandomBitGenerator, so it can also feed <random>
 * distributions where exact cross-platform stability is not required.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Derive an independent child stream (for per-device/per-run streams). */
    Rng fork(std::uint64_t salt);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** Next raw 64 random bits. */
    result_type operator()();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n); n must be > 0. */
    std::uint64_t uniform_int(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Box–Muller (cached second value). */
    double normal();

    /** Normal with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli draw with probability p of true. */
    bool bernoulli(double p);

    /** Random sign: -1 or +1 with equal probability. */
    int sign();

    /** Fisher–Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T>& v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = uniform_int(static_cast<std::uint64_t>(i));
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Pick k distinct indices from [0, n) (k <= n). */
    std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                        std::size_t k);

  private:
    std::array<std::uint64_t, 4> state_;
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

} // namespace fq

#endif // FQ_COMMON_RNG_H
