#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/error.h"

namespace fq {

void
Table::set_header(std::vector<std::string> names)
{
    FQ_REQUIRE(rows_.empty(), "set_header must precede add_row");
    header_ = std::move(names);
}

void
Table::add_row(std::vector<std::string> cells)
{
    FQ_REQUIRE(cells.size() == header_.size(),
               "row width must match header width");
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
Table::num(long long v)
{
    return std::to_string(v);
}

std::string
Table::factor(double v, int precision)
{
    return num(v, precision) + "x";
}

void
Table::print(std::ostream& os) const
{
    std::vector<std::size_t> width(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::size_t total = header_.empty() ? title_.size() : 0;
    for (std::size_t w : width)
        total += w + 2;

    os << "== " << title_ << " ==\n";
    auto emit_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c)
            os << std::left << std::setw(static_cast<int>(width[c]) + 2)
               << cells[c];
        os << "\n";
    };
    emit_row(header_);
    os << std::string(total, '-') << "\n";
    for (const auto& row : rows_)
        emit_row(row);
    os << "\n";
}

void
Table::to_csv(std::ostream& os) const
{
    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ",";
            os << cells[c];
        }
        os << "\n";
    };
    emit(header_);
    for (const auto& row : rows_)
        emit(row);
}

} // namespace fq
