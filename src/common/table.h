/**
 * @file
 * Aligned console tables and CSV emission for the benchmark harnesses.
 *
 * Every figure-reproduction binary prints its data series through Table so
 * the output is both human-readable (aligned columns) and machine-friendly
 * (to_csv). Cells are stored as formatted strings; numeric helpers control
 * precision at the call site.
 */
#ifndef FQ_COMMON_TABLE_H
#define FQ_COMMON_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace fq {

/** One printable data table with a title, column headers, and rows. */
class Table
{
  public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    /** Set the column headers; must be called before add_row. */
    void set_header(std::vector<std::string> names);

    /** Append a fully formatted row; must match the header width. */
    void add_row(std::vector<std::string> cells);

    /** Format a double with @p precision digits after the decimal point. */
    static std::string num(double v, int precision = 3);

    /** Format an integer. */
    static std::string num(long long v);
    static std::string num(int v) { return num(static_cast<long long>(v)); }
    static std::string num(std::size_t v)
    {
        return num(static_cast<long long>(v));
    }

    /** Format a ratio as e.g. "3.13x". */
    static std::string factor(double v, int precision = 2);

    /** Render with aligned columns, a title rule, and a trailing newline. */
    void print(std::ostream& os) const;

    /** Render as CSV (no title). */
    void to_csv(std::ostream& os) const;

    const std::string& title() const { return title_; }
    std::size_t row_count() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace fq

#endif // FQ_COMMON_TABLE_H
