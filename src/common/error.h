/**
 * @file
 * Error-reporting primitives for the FrozenQubits library.
 *
 * Two severities, mirroring the gem5 fatal/panic split:
 *  - FQ_REQUIRE: caller misuse (bad arguments, invalid configuration).
 *    Throws fq::Error so a host application can recover.
 *  - FQ_ASSERT: internal invariant violation (a library bug). Also throws,
 *    but is compiled out in NDEBUG-free hot loops only when profiling shows
 *    a need; by default it stays on.
 */
#ifndef FQ_COMMON_ERROR_H
#define FQ_COMMON_ERROR_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace fq {

/** Exception thrown for all recoverable library errors. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void
raise(const char* kind, const char* file, int line, const char* expr,
      const std::string& msg)
{
    std::ostringstream os;
    os << kind << " at " << file << ":" << line << ": (" << expr << ")";
    if (!msg.empty())
        os << " — " << msg;
    throw Error(os.str());
}

} // namespace detail
} // namespace fq

/** Validate a caller-supplied precondition; throws fq::Error on failure. */
#define FQ_REQUIRE(cond, msg)                                               \
    do {                                                                    \
        if (!(cond))                                                        \
            ::fq::detail::raise("requirement failed", __FILE__, __LINE__,   \
                                #cond, (msg));                              \
    } while (0)

/** Validate an internal invariant; throws fq::Error on failure. */
#define FQ_ASSERT(cond, msg)                                                \
    do {                                                                    \
        if (!(cond))                                                        \
            ::fq::detail::raise("internal invariant violated", __FILE__,    \
                                __LINE__, #cond, (msg));                    \
    } while (0)

#endif // FQ_COMMON_ERROR_H
