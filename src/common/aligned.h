/**
 * @file
 * Minimal aligned allocator for vector-friendly containers.
 *
 * The statevector's amplitude array is the hot operand of every kernel
 * pass; 64-byte alignment puts each cache line's worth of amplitudes on a
 * single line and lets aligned vector loads/stores cover AVX-512 widths.
 * C++17 aligned operator new carries the alignment through the default
 * heap, so no platform-specific allocation calls are needed.
 */
#ifndef FQ_COMMON_ALIGNED_H
#define FQ_COMMON_ALIGNED_H

#include <cstddef>
#include <new>

namespace fq {

/** std::allocator drop-in that over-aligns every allocation. */
template <typename T, std::size_t Alignment>
class AlignedAllocator
{
    static_assert(Alignment >= alignof(T),
                  "alignment must not weaken the type's natural alignment");
    static_assert((Alignment & (Alignment - 1)) == 0,
                  "alignment must be a power of two");

  public:
    using value_type = T;

    AlignedAllocator() noexcept = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept
    {
    }

    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Alignment>;
    };

    T* allocate(std::size_t n)
    {
        return static_cast<T*>(::operator new(
            n * sizeof(T), std::align_val_t(Alignment)));
    }

    void deallocate(T* p, std::size_t) noexcept
    {
        ::operator delete(p, std::align_val_t(Alignment));
    }
};

template <typename T, typename U, std::size_t A>
inline bool
operator==(const AlignedAllocator<T, A>&, const AlignedAllocator<U, A>&)
{
    return true;
}

template <typename T, typename U, std::size_t A>
inline bool
operator!=(const AlignedAllocator<T, A>&, const AlignedAllocator<U, A>&)
{
    return false;
}

/** Alignment used for amplitude storage (one cache line / zmm register). */
constexpr std::size_t kAmplitudeAlignment = 64;

} // namespace fq

#endif // FQ_COMMON_ALIGNED_H
