#include "common/math_utils.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace fq {

double
mean(const std::vector<double>& v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

double
stddev(const std::vector<double>& v)
{
    if (v.size() < 2)
        return 0.0;
    const double m = mean(v);
    double s = 0.0;
    for (double x : v)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(v.size() - 1));
}

double
gmean(const std::vector<double>& v, double floor)
{
    if (v.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : v)
        log_sum += std::log(std::max(x, floor));
    return std::exp(log_sum / static_cast<double>(v.size()));
}

double
min_value(const std::vector<double>& v)
{
    FQ_REQUIRE(!v.empty(), "min_value of empty vector");
    return *std::min_element(v.begin(), v.end());
}

double
max_value(const std::vector<double>& v)
{
    FQ_REQUIRE(!v.empty(), "max_value of empty vector");
    return *std::max_element(v.begin(), v.end());
}

std::vector<double>
linspace(double lo, double hi, std::size_t n)
{
    FQ_REQUIRE(n >= 1, "linspace needs at least one point");
    std::vector<double> out;
    out.reserve(n);
    if (n == 1) {
        out.push_back(lo);
        return out;
    }
    const double step = (hi - lo) / static_cast<double>(n - 1);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(lo + step * static_cast<double>(i));
    return out;
}

double
safe_ratio(double a, double b, double if_zero)
{
    if (std::abs(b) < 1e-300)
        return if_zero;
    return a / b;
}

double
clamp01(double x)
{
    return std::min(1.0, std::max(0.0, x));
}

bool
approx_equal(double a, double b, double atol, double rtol)
{
    return std::abs(a - b) <= atol + rtol * std::max(std::abs(a),
                                                     std::abs(b));
}

} // namespace fq
