/**
 * @file
 * Bit-level helpers used by the exact Ising enumerator, the statevector
 * simulator, and sub-space decoding. Basis states are encoded little-endian:
 * bit i of a state index holds spin/qubit i, with bit value 0 <-> spin +1
 * and bit value 1 <-> spin -1 (matching the |0> -> +1 z-basis eigenvalue
 * convention in the paper's Section 2.1).
 */
#ifndef FQ_COMMON_BITOPS_H
#define FQ_COMMON_BITOPS_H

#include <cstdint>

namespace fq {

/** Spin value {-1,+1} of bit @p i inside basis-state index @p state. */
inline int
spin_of_bit(std::uint64_t state, int i)
{
    return (state >> i) & 1ull ? -1 : +1;
}

/** Basis-state bit for a spin value: +1 -> 0, -1 -> 1. */
inline std::uint64_t
bit_of_spin(int spin)
{
    return spin < 0 ? 1ull : 0ull;
}

/** Set bit @p i of @p state to encode @p spin. */
inline std::uint64_t
with_spin(std::uint64_t state, int i, int spin)
{
    const std::uint64_t mask = 1ull << i;
    return spin < 0 ? (state | mask) : (state & ~mask);
}

/**
 * Mask of the low @p n bits, for n in [0, 64]. The naive
 * `(1 << n) - 1` idiom is undefined at n == 64 (the register-width
 * boundary every 64-spin mirror flip hits); this helper is the one
 * definition all width-mask sites share.
 */
inline std::uint64_t
low_bits_mask(int n)
{
    return n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
}

/** Gray-code of n: consecutive n differ in exactly one bit of the result. */
inline std::uint64_t
gray_code(std::uint64_t n)
{
    return n ^ (n >> 1);
}

/** Index of the bit that changes between gray_code(n-1) and gray_code(n). */
inline int
gray_flip_bit(std::uint64_t n)
{
#if defined(__GNUC__) || defined(__clang__)
    return n == 0 ? 64 : __builtin_ctzll(n);
#else
    if (n == 0)
        return 64;
    int c = 0;
    while (!(n & 1ull)) {
        n >>= 1;
        ++c;
    }
    return c;
#endif
}

/** Population count. */
inline int
popcount64(std::uint64_t x)
{
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_popcountll(x);
#else
    int c = 0;
    for (; x; x &= x - 1)
        ++c;
    return c;
#endif
}

} // namespace fq

#endif // FQ_COMMON_BITOPS_H
