#include "common/rng.h"

#include <cmath>

#include "common/error.h"

namespace fq {

std::uint64_t
splitmix64(std::uint64_t& state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
hash_seed(const std::string& text)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : text) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    std::uint64_t s = h;
    return splitmix64(s);
}

std::uint64_t
combine_seeds(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2));
    return splitmix64(s);
}

std::uint64_t
subproblem_stream_seed(std::uint64_t seed, std::uint64_t subproblem_index)
{
    // Two splitmix rounds decorrelate the (small-integer) index from the
    // base seed; combine_seeds alone mixes only one round.
    std::uint64_t s = combine_seeds(seed, subproblem_index);
    return splitmix64(s);
}

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    // Seed the four xoshiro words from splitmix64 per the reference
    // implementation's recommendation; avoids the all-zero state.
    std::uint64_t s = seed;
    for (auto& w : state_)
        w = splitmix64(s);
}

Rng
Rng::fork(std::uint64_t salt)
{
    return Rng(combine_seeds((*this)(), salt));
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    FQ_REQUIRE(lo <= hi, "empty uniform range");
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniform_int(std::uint64_t n)
{
    FQ_REQUIRE(n > 0, "uniform_int(0) is undefined");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t limit = max() - max() % n;
    std::uint64_t x;
    do {
        x = (*this)();
    } while (x >= limit);
    return x % n;
}

std::int64_t
Rng::uniform_int(std::int64_t lo, std::int64_t hi)
{
    FQ_REQUIRE(lo <= hi, "empty uniform_int range");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform_int(span));
}

double
Rng::normal()
{
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

int
Rng::sign()
{
    return ((*this)() & 1) ? 1 : -1;
}

std::vector<std::size_t>
Rng::sample_without_replacement(std::size_t n, std::size_t k)
{
    FQ_REQUIRE(k <= n, "cannot sample more elements than available");
    // Floyd's algorithm would avoid materialising [0, n), but the library
    // only samples from small index sets, so the simple shuffle is clearer.
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i)
        idx[i] = i;
    shuffle(idx);
    idx.resize(k);
    return idx;
}

} // namespace fq
