/**
 * @file
 * Small numeric helpers shared across modules: summary statistics
 * (mean/stddev/geometric mean), range generation, and safe ratios.
 */
#ifndef FQ_COMMON_MATH_UTILS_H
#define FQ_COMMON_MATH_UTILS_H

#include <cstddef>
#include <vector>

namespace fq {

/** Arithmetic mean; returns 0 for an empty input. */
double mean(const std::vector<double>& v);

/** Sample standard deviation (N-1 denominator); 0 for fewer than 2 items. */
double stddev(const std::vector<double>& v);

/**
 * Geometric mean of strictly positive values. Values <= 0 are clamped to
 * @p floor first (benchmark improvement factors can hit 0 when ARG
 * saturates); the paper reports GMEAN across machines the same way.
 */
double gmean(const std::vector<double>& v, double floor = 1e-12);

/** Minimum / maximum; require non-empty input. */
double min_value(const std::vector<double>& v);
double max_value(const std::vector<double>& v);

/** n evenly spaced values over [lo, hi] inclusive (n >= 2), or {lo} if n==1. */
std::vector<double> linspace(double lo, double hi, std::size_t n);

/** a/b with a configurable result when |b| is tiny. */
double safe_ratio(double a, double b, double if_zero = 0.0);

/** Clamp helper kept for readability at call sites. */
double clamp01(double x);

/** True when |a-b| <= atol + rtol*max(|a|,|b|). */
bool approx_equal(double a, double b, double atol = 1e-9, double rtol = 1e-9);

} // namespace fq

#endif // FQ_COMMON_MATH_UTILS_H
