/**
 * @file
 * Balanced graph bisection (Kernighan–Lin style) — the substrate for the
 * edge-cutting divide-and-conquer baseline the paper contrasts against
 * (Section 1, Li et al. [71]). The quality metric is the number of cut
 * edges: every cut edge's coupling is lost by independent sub-problem
 * solving, and on power-law graphs the hotspots force many cuts — the
 * structural reason the paper rejects this approach.
 */
#ifndef FQ_PARTITION_BISECTION_H
#define FQ_PARTITION_BISECTION_H

#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace fq::partition {

/** A two-way node partition. */
struct Bisection
{
    /** side[v] = 0 or 1. */
    std::vector<int> side;
    int cut_edges = 0;
    double cut_weight = 0.0; ///< sum |w| over cut edges
};

/**
 * Balanced bisection minimizing cut edges: random balanced start followed
 * by greedy pair-swap refinement (one KL pass repeated until no swap
 * improves). Deterministic given @p rng.
 */
Bisection bisect(const graph::Graph& g, Rng& rng, int refinement_rounds = 8);

/** Count cut edges for an externally supplied side assignment. */
int count_cut_edges(const graph::Graph& g, const std::vector<int>& side);

/**
 * How many cut edges touch the top-k hotspots — the paper's observation
 * that hubs appear in every sub-graph.
 */
int hotspot_cut_edges(const graph::Graph& g, const std::vector<int>& side,
                      int top_k);

} // namespace fq::partition

#endif // FQ_PARTITION_BISECTION_H
