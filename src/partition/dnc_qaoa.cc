#include "partition/dnc_qaoa.h"

#include <cmath>

#include "common/error.h"
#include "ising/sa_solver.h"
#include "qaoa/analytic_p1.h"
#include "qaoa/qaoa_builder.h"
#include "sim/noise_model.h"
#include "transpiler/pipeline.h"

namespace fq::partition {

Fragment
extract_fragment(const ising::IsingModel& model,
                 const std::vector<int>& side, int which)
{
    FQ_REQUIRE(static_cast<int>(side.size()) == model.num_spins(),
               "side assignment size mismatch");
    Fragment half;
    std::vector<int> remap(model.num_spins(), -1);
    for (int v = 0; v < model.num_spins(); ++v) {
        if (side[v] == which) {
            remap[v] = static_cast<int>(half.original_of.size());
            half.original_of.push_back(v);
        }
    }
    half.model = ising::IsingModel(
        static_cast<int>(half.original_of.size()));
    for (std::size_t i = 0; i < half.original_of.size(); ++i)
        half.model.set_linear(static_cast<int>(i),
                              model.linear(half.original_of[i]));
    for (const auto& term : model.quadratic_terms())
        if (remap[term.i] != -1 && remap[term.j] != -1)
            half.model.add_quadratic(remap[term.i], remap[term.j],
                                     term.coefficient);
    return half;
}

DncResult
run_dnc_qaoa(const ising::IsingModel& model, const device::Device& dev,
             Rng& rng)
{
    FQ_REQUIRE(model.num_spins() >= 4, "instance too small to bisect");

    DncResult result;
    result.bisection = bisect(model.to_graph(), rng);
    result.cut_edges = result.bisection.cut_edges;
    for (const auto& term : model.quadratic_terms())
        if (result.bisection.side[term.i] != result.bisection.side[term.j])
            result.lost_coupling += std::abs(term.coefficient);

    ising::SpinVector combined(model.num_spins(), 1);
    result.ev_ideal = model.offset();
    result.ev_noisy = model.offset();

    for (int which : {0, 1}) {
        const Fragment half =
            extract_fragment(model, result.bisection.side, which);
        if (half.model.num_spins() == 0)
            continue;

        // Quantum phase: tuned p=1 QAOA on the half, independently.
        const auto tuned = qaoa::optimize_p1(half.model, 32);
        result.ev_ideal += tuned.energy - half.model.offset();

        const auto logical = qaoa::build_qaoa_circuit(half.model);
        const auto compiled = transpiler::compile(logical, dev);
        result.subcircuit_cx =
            std::max(result.subcircuit_cx, compiled.metrics.cx_gates);
        const auto att =
            sim::compute_attenuation(compiled.physical, dev.calibration);
        const auto ideal = qaoa::evaluate_p1(half.model, tuned.angles);
        result.ev_noisy += sim::noisy_expectation(half.model, ideal.z,
                                                  ideal.zz, att,
                                                  compiled.final_layout) -
                           half.model.offset();

        // Classical combine: each half's own optimum (greedy from random
        // restarts stands in for the sampled sub-distribution argmin).
        ising::SaConfig sa;
        sa.num_restarts = 4;
        sa.sweeps_per_restart = 200;
        Rng half_rng = rng.fork(which + 1);
        const auto sub = ising::solve_annealing(half.model, sa, half_rng);
        for (std::size_t i = 0; i < half.original_of.size(); ++i)
            combined[half.original_of[i]] = sub.best_assignment[i];
    }

    // Repair: the quantum phase ignored cut couplings entirely; greedy
    // descent on the ORIGINAL model stitches the halves back together.
    ising::greedy_descent(model, combined);
    result.repaired_assignment = combined;
    result.repaired_cost = model.evaluate(combined);
    return result;
}

} // namespace fq::partition
