/**
 * @file
 * Edge-cutting divide-and-conquer QAOA — the comparison baseline of
 * Section 1 (Li et al. [71], simplified): bisect the problem graph, solve
 * each half as an independent QAOA instance (dropping the cut couplings),
 * concatenate the halves' solutions, then repair with greedy descent.
 *
 * The approach loses all cut-edge energy during the quantum phase; on
 * power-law graphs the hotspots force many cut edges, which is exactly the
 * degradation the paper contrasts FrozenQubits against (FrozenQubits
 * *keeps* hotspot couplings by moving them into linear terms).
 */
#ifndef FQ_PARTITION_DNC_QAOA_H
#define FQ_PARTITION_DNC_QAOA_H

#include "device/catalog.h"
#include "ising/ising_model.h"
#include "partition/bisection.h"

namespace fq::partition {

/** One side of a bisection as a standalone model plus index bookkeeping. */
struct Fragment
{
    /** Hamiltonian over the fragment's spins (dense indices, offset 0). */
    ising::IsingModel model;
    /** original_of[i] = index in the parent model of fragment spin i. */
    std::vector<int> original_of;
};

/**
 * Extract side @p which (0 or 1) of @p side as an independent sub-model:
 * linear terms are copied, quadratic terms with both endpoints inside the
 * fragment are kept, and cut couplings are dropped (the energy loss the
 * paper charges against edge-cutting D&C). Shared by the standalone
 * baseline below and the hybrid partition nodes of the engine's SolveTree.
 */
Fragment extract_fragment(const ising::IsingModel& model,
                          const std::vector<int>& side, int which);

/** Outcome of the divide-and-conquer baseline. */
struct DncResult
{
    Bisection bisection;
    int cut_edges = 0;          ///< couplings lost to the cut
    double lost_coupling = 0.0; ///< sum |J| over cut edges
    /** EV of the better half-circuits combined (ideal / noisy), relative
     *  to the ORIGINAL Hamiltonian (cut terms contribute their uniform
     *  expectation of zero during the quantum phase). */
    double ev_ideal = 0.0;
    double ev_noisy = 0.0;
    /** Cost of the repaired classical solution under the original model. */
    double repaired_cost = 0.0;
    ising::SpinVector repaired_assignment;
    int subcircuit_cx = 0;      ///< worst half's compiled CX count
};

/**
 * Run the baseline: bisect, build both half-Hamiltonians, tune p=1 angles
 * per half, compile on @p dev, estimate noisy EVs, combine the halves'
 * exact sub-minima and greedily repair across the cut.
 */
DncResult run_dnc_qaoa(const ising::IsingModel& model,
                       const device::Device& dev, Rng& rng);

} // namespace fq::partition

#endif // FQ_PARTITION_DNC_QAOA_H
