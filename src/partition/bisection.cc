#include "partition/bisection.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace fq::partition {

int
count_cut_edges(const graph::Graph& g, const std::vector<int>& side)
{
    FQ_REQUIRE(static_cast<int>(side.size()) == g.num_nodes(),
               "side assignment size mismatch");
    int cut = 0;
    for (const auto& e : g.edges())
        if (side[e.u] != side[e.v])
            ++cut;
    return cut;
}

int
hotspot_cut_edges(const graph::Graph& g, const std::vector<int>& side,
                  int top_k)
{
    const auto order = g.nodes_by_degree_desc();
    std::vector<bool> hot(g.num_nodes(), false);
    for (int k = 0; k < std::min<int>(top_k, g.num_nodes()); ++k)
        hot[order[k]] = true;
    int cut = 0;
    for (const auto& e : g.edges())
        if (side[e.u] != side[e.v] && (hot[e.u] || hot[e.v]))
            ++cut;
    return cut;
}

Bisection
bisect(const graph::Graph& g, Rng& rng, int refinement_rounds)
{
    const int n = g.num_nodes();
    FQ_REQUIRE(n >= 2, "bisection needs at least two nodes");

    // Balanced random start.
    std::vector<int> nodes(n);
    for (int v = 0; v < n; ++v)
        nodes[v] = v;
    rng.shuffle(nodes);
    std::vector<int> side(n, 0);
    for (int k = n / 2; k < n; ++k)
        side[nodes[k]] = 1;

    // Moving v across cuts its cross edges free (-cross) and exposes its
    // same-side edges (+same), so the cut shrinks by (cross - same).
    auto move_gain = [&](int v) {
        int same = 0, cross = 0;
        for (const auto& [u, _] : g.neighbors(v)) {
            if (side[u] == side[v])
                ++same;
            else
                ++cross;
        }
        return cross - same; // positive = cut shrinks if v moves
    };

    for (int round = 0; round < refinement_rounds; ++round) {
        bool improved = false;
        for (int a = 0; a < n; ++a) {
            if (side[a] != 0)
                continue;
            for (int b = 0; b < n; ++b) {
                if (side[b] != 1)
                    continue;
                // Swap gain; an (a,b) edge stays cut after the swap even
                // though both individual gains counted it as freed.
                int gain = move_gain(a) + move_gain(b);
                if (g.has_edge(a, b))
                    gain -= 2;
                if (gain > 0) {
                    side[a] = 1;
                    side[b] = 0;
                    improved = true;
                    break; // restart scan from the swapped state
                }
            }
        }
        if (!improved)
            break;
    }

    Bisection out;
    out.side = std::move(side);
    out.cut_edges = count_cut_edges(g, out.side);
    for (const auto& e : g.edges())
        if (out.side[e.u] != out.side[e.v])
            out.cut_weight += std::abs(e.weight);
    return out;
}

} // namespace fq::partition
