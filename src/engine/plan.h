/**
 * @file
 * Planner: turns (IsingModel, Device, DriverConfig) into an explicit
 * ExecutionPlan — the full set of independent sub-problem tasks with their
 * freeze assignments, mirror-pruning links, pre-compiled shared template
 * and per-task RNG stream seeds. Planning is strictly serial and cheap
 * (hotspot selection + 2^m freezes + at most one transpiler run); all the
 * heavy per-task work (angle tuning, template editing, simulation) happens
 * afterwards in the BatchExecutor, which may run tasks in any order on any
 * thread because the plan already fixed everything order-dependent.
 *
 * This is the FLAT (single freeze level) planner. Hierarchical solves
 * plan through the open reduction vocabulary instead — build_solve_tree
 * drives the NodeExpander registry (engine/expander.h), whose Freeze
 * expander calls make_plan per node — so new node kinds (Partition,
 * Sparsify, ...) compose around this module without changing it.
 */
#ifndef FQ_ENGINE_PLAN_H
#define FQ_ENGINE_PLAN_H

#include <memory>
#include <vector>

#include "engine/template_cache.h"
#include "frozenqubits/driver.h"
#include "frozenqubits/freeze.h"
#include "sim/noise_model.h"

namespace fq::engine {

/** One executable unit: solve one sub-problem, cover its mirrors for free. */
struct SubProblemTask
{
    /** Position in Report::executed (plan order). */
    int plan_index = 0;
    /** Index into ExecutionPlan::subproblems of the sub-problem to run. */
    int solve = 0;
    /** Sub-problem indices recovered from this one by bit flipping. */
    std::vector<int> mirrors;
    /** Seed of this task's private RNG stream (order-independent). */
    std::uint64_t rng_seed = 0;
};

/** Everything the executor needs, fixed up front. */
struct ExecutionPlan
{
    std::vector<int> hotspots;
    std::vector<frozenqubits::SubProblem> subproblems;
    std::vector<SubProblemTask> tasks;

    /**
     * Base seed every task stream was derived from
     * (subproblem_stream_seed(stream_seed, solve)). The SolveTree derives
     * child-node streams from the same base so recursive plans stay
     * order-independent.
     */
    std::uint64_t stream_seed = 0;

    /**
     * Shared compiled template with its precomputed noise quantities (null
     * when template editing is disabled). Compiled from — or cache-served
     * for — the structure shared by every sibling: siblings differ only in
     * RZ angles, which touch neither routing nor attenuation nor EPS nor
     * placement, so one entry serves all 2^{m-1} tasks.
     */
    std::shared_ptr<const CompiledTemplate> compiled_template;
    /** Whether the template came from the cache without compiling. */
    bool template_cache_hit = false;

    /**
     * Family-level parametric template for the siblings' shared structure
     * (null when parametric templates are disabled or the structure has no
     * skeleton). Leaves carry this pointer so execution-time fused-program
     * misses become coefficient patches instead of circuit builds.
     */
    std::shared_ptr<const ParametricTemplate> family;
    /** How the family lookup was satisfied at plan time. */
    TemplateTier family_tier = TemplateTier::Compile;

    /** Build options every per-task circuit construction must use. */
    qaoa::BuildOptions build;

    /**
     * Planner verdict: tasks may simulate through the fused QAOA fast path
     * (diagonal weight tables + mixer kernels, cache-shared per
     * sub-problem). Set when the config enables fusion and every planned
     * sub-problem fits the table width; the executor falls back to
     * gate-by-gate simulation when clear (the --no-fusion escape hatch).
     */
    bool fuse_simulation = false;

    int num_subproblems() const
    {
        return static_cast<int>(subproblems.size());
    }
    int num_executed() const { return static_cast<int>(tasks.size()); }
};

/**
 * The ONE definition of the build options every engine-compiled circuit
 * uses (plan templates, fused programs, leaf simulation). Sites must share
 * it: a template compiled under different options than the simulation
 * would silently describe a different circuit.
 */
qaoa::BuildOptions default_build_options();

/**
 * Build the plan. @p rng drives hotspot selection (only consulted by the
 * Random policy) exactly as the legacy driver did, then one draw seeds the
 * base from which every task's private stream is derived via
 * subproblem_stream_seed(base, solve_index). The shared template is
 * resolved through @p cache when config.use_template_editing is set.
 */
ExecutionPlan make_plan(const ising::IsingModel& model,
                        const device::Device& dev,
                        const frozenqubits::DriverConfig& config,
                        TemplateCache& cache, Rng& rng);

} // namespace fq::engine

#endif // FQ_ENGINE_PLAN_H
