/**
 * @file
 * Durable solves: a versioned, self-validating binary snapshot of an
 * in-flight wave-loop request, capturable at any checkpoint boundary and
 * restorable into a freshly planned WaveRequest — in the same process,
 * after a crash, or on another shard (request migration).
 *
 * What a snapshot holds — and, as importantly, what it does not:
 *
 *   identity   — fingerprints of the model (graph hash), the
 *                determinism-relevant DriverConfig fields, the replanned
 *                SolveTree (per-leaf RNG streams / widths), the device
 *                name, the plan seed and the shot count. The tree,
 *                per-leaf scores, presolve and compiled templates are NOT
 *                serialized: build_solve_tree and make_schedule are pure
 *                functions of (model, dev, config, seed), so the resume
 *                replans them and the fingerprints prove it got the same
 *                plan.
 *   progress   — the schedule cursor (folded leaves), the pending re-rank
 *                boundary, the epoch count, and the schedule's mutable
 *                state (executed / beyond_budget / pruned partition plus
 *                re-rank and deadline telemetry) as rewritten by re-ranks
 *                and trims up to the boundary.
 *   outcomes   — the raw sampled histogram of every folded leaf. Decoding
 *                is deterministic, so restore re-folds them through the
 *                StreamingReducer and rebuilds outcomes, incumbent and
 *                anytime trace bit for bit.
 *   incumbent  — the epoch-snapshot incumbent at the boundary, stored as
 *                a self-validation record: after re-folding, the restored
 *                incumbent must reproduce it exactly or the restore throws
 *                CheckpointError (corruption that CRC framing cannot see,
 *                e.g. a tampered-but-reframed payload).
 *
 * Framing: magic + version + payload length + CRC32(payload). Truncation,
 * bit flips, wrong magic and unknown versions all throw CheckpointError.
 *
 * Format history: version 2 adds a per-folded-record node-kind frame tag
 * (the reduction arm the leaf executed under, from the kind-metadata
 * table in engine/expander.h) so restores cross-check the replanned
 * tree's vocabulary, not just its seeds. Version 1 snapshots — written
 * before the tag existed — still decode and restore bit-identically;
 * their records carry kNoKindTag and skip the arm check.
 *
 * Determinism contract: a solve checkpointed at an arbitrary boundary,
 * killed, and resumed in a new process produces bit-identical counts,
 * incumbent and anytime trace to an uninterrupted run, at any thread
 * count, solo or through a SolveService (tests/test_checkpoint.cc).
 */
#ifndef FQ_ENGINE_CHECKPOINT_H
#define FQ_ENGINE_CHECKPOINT_H

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/error.h"
#include "engine/expander.h"
#include "engine/wave_loop.h"

namespace fq::engine {

/** Typed failure of the durability surface: corrupt / truncated / wrong-
 *  version snapshot bytes, or a snapshot that does not match the request
 *  it is being restored into (model, config, plan, device, shots). */
class CheckpointError : public fq::Error
{
  public:
    explicit CheckpointError(const std::string& what) : fq::Error(what) {}
};

/** Current on-disk format version (encode writes this by default).
 *  Decode also accepts version 1 (pre-arm-tag snapshots). */
constexpr std::uint32_t kCheckpointFormatVersion = 2;

/** Oldest format version decode still reads. */
constexpr std::uint32_t kMinCheckpointFormatVersion = 1;

/** In-memory form of one snapshot (see file header for field semantics). */
struct SolveCheckpoint
{
    // --------------------------------------------------------- identity --
    std::uint64_t model_hash = 0;  ///< model_fingerprint of the instance
    std::uint64_t config_hash = 0; ///< config_fingerprint (result-relevant)
    std::uint64_t plan_hash = 0;   ///< plan_fingerprint of the solve tree
    std::string device_name;
    std::uint64_t seed = 0; ///< plan seed (WaveRequest::seed)
    int shots = 0;

    // --------------------------------------------------------- progress --
    std::uint64_t cursor = 0;      ///< folded scheduled leaves
    std::uint64_t next_rerank = 0; ///< pending re-rank boundary (0 = off)
    int epochs = 0;

    // ----------------------------------------- schedule mutable state --
    std::vector<int> executed;
    std::vector<int> beyond_budget;
    std::vector<int> pruned;
    int reranks = 0;
    int rerank_pruned = 0;
    int rerank_promoted = 0;
    int rerank_demoted = 0;
    int deadline_trimmed = 0;

    // --------------------------------------------------------- outcomes --
    struct FoldedLeaf
    {
        int leaf_id = 0;
        int width = 0;
        /** (state, count) pairs in ascending state order — sim::Counts'
         *  own deterministic map order, so round-trips are exact. */
        std::vector<std::pair<std::uint64_t, std::uint64_t>> histogram;
        /** NodeKindInfo::frame_tag of the reduction arm (the leaf's
         *  parent node kind) — version 2 wire field. kNoKindTag for
         *  records decoded from a version-1 snapshot; restore skips the
         *  arm cross-check for those. */
        std::uint8_t arm_tag = kNoKindTag;
    };
    /** One record per folded scheduled leaf, in rank order (== the first
     *  `cursor` entries of `executed`). */
    std::vector<FoldedLeaf> folded;

    // ----------------------------------- incumbent (self-validation) --
    bool incumbent_valid = false;
    double incumbent_cost = 0.0;
    int incumbent_leaf = -1;
    ising::SpinVector incumbent_assignment;
};

/** Sink for a durable ExecutionEngine solve: receives the snapshot at
 *  each checkpoint boundary; return false to suspend (wave_loop.h
 *  CheckpointHook semantics — the pre-suspension snapshot resumes the
 *  full solve elsewhere). */
using CheckpointSink = std::function<bool(const SolveCheckpoint&)>;

// ------------------------------------------------------ fingerprints --

/** Order-stable 64-bit fingerprint of an Ising instance (spin count,
 *  linear/quadratic coefficient bits, offset). */
std::uint64_t model_fingerprint(const ising::IsingModel& model);

/**
 * Fingerprint of the DriverConfig fields that determine a solve's RESULT.
 * Deliberately excludes threads, wave_share and checkpoint_interval —
 * none of them may change what a solve produces (the determinism
 * contract), so a snapshot written at --threads 8 restores fine at
 * --threads 1, with different checkpoint cadence, on a differently loaded
 * shard.
 */
std::uint64_t config_fingerprint(const frozenqubits::DriverConfig& config);

/** Fingerprint of a planned SolveTree (leaf count, per-leaf RNG streams,
 *  widths, repair flags) — proof that a resume's replan reproduced the
 *  plan the snapshot's cursor indexes into. */
std::uint64_t plan_fingerprint(const SolveTree& tree);

// --------------------------------------------------- capture / restore --

/**
 * Capture a snapshot of @p request at a wave barrier (its dispatched
 * leaves must all have folded — the post_barrier_checkpoint call site
 * guarantees it). Throws fq::Error for a finished request: a completed
 * solve has nothing to resume, so snapshotting it is caller confusion,
 * not a degenerate checkpoint.
 */
SolveCheckpoint capture_checkpoint(const WaveRequest& request);

/**
 * Restore @p snapshot into @p request, which must be freshly planned
 * (cursor 0, reducer empty) from the SAME (model, dev, config, seed,
 * shots) — fingerprint-checked, CheckpointError on any mismatch. The
 * snapshot's schedule partition is validated (every leaf id exactly once
 * across executed/beyond_budget/pruned; FQ_REQUIRE that the cursor never
 * exceeds the scheduled-leaf count), the folded histograms are re-folded
 * through the reducer, and the rebuilt incumbent must reproduce the
 * recorded one bit for bit (CheckpointError otherwise — the snapshot was
 * corrupted in a way the CRC framing could not see). On success the
 * request continues mid-schedule as if it had never stopped.
 */
void restore_checkpoint(const SolveCheckpoint& snapshot,
                        WaveRequest& request);

// --------------------------------------------------------- wire format --

/**
 * Serialize with CRC-checked framing (magic, version, length, CRC32).
 * @p version selects the wire layout (version 1 omits the per-record arm
 * tags — the legacy emitter, kept so compatibility tests can produce
 * genuine v1 bytes); FQ_REQUIRE on a version outside
 * [kMinCheckpointFormatVersion, kCheckpointFormatVersion].
 */
std::vector<std::uint8_t> encode_checkpoint(
    const SolveCheckpoint& ck,
    std::uint32_t version = kCheckpointFormatVersion);

/** Parse framed bytes; CheckpointError on truncation, bad magic, unknown
 *  version, unknown node-kind tag, length mismatch or CRC failure. */
SolveCheckpoint decode_checkpoint(const std::uint8_t* data,
                                  std::size_t size);

/** Atomic file write (temp + rename); CheckpointError on I/O failure. */
void write_checkpoint_file(const std::string& path,
                           const SolveCheckpoint& ck);

/** Read + decode one snapshot file; CheckpointError on I/O failure or any
 *  decode failure. */
SolveCheckpoint read_checkpoint_file(const std::string& path);

} // namespace fq::engine

#endif // FQ_ENGINE_CHECKPOINT_H
