/**
 * @file
 * Wave-synchronous execution epochs: the ONE schedule→dispatch→fold→barrier
 * cycle, shared by the solo ExecutionEngine::solve and the multi-tenant
 * SolveService (which used to duplicate it as a flat batch and an assembler
 * loop respectively).
 *
 * An epoch is one wave: dispatch a slice of each participating request's
 * ranked leaf schedule onto the executor, run it to the fork-join barrier,
 * fold every result into its request's StreamingReducer — then run the
 * post-barrier scan, where adaptive budget re-ranking lives. After each
 * wave, a request whose fold count reached its next re-rank boundary
 * (multiples of DriverConfig::rerank_interval) re-scores its
 * not-yet-dispatched leaves against the reducer's epoch snapshot, prunes
 * stale dominated leaves and re-cuts the remaining budget
 * (scheduler.h: rerank_schedule).
 *
 * Determinism contract: a re-rank at boundary b sees the incumbent over
 * exactly the first b scheduled leaves (StreamingReducer::epoch_snapshot),
 * and dispatch NEVER overshoots a pending boundary (dispatch_limit), so the
 * rewritten tail always starts at b. Re-rank inputs are therefore a pure
 * function of the request's own fold count — never of wave composition,
 * co-tenant interleaving or thread count — and a request's results are
 * bit-identical between a solo solve and any service schedule. With
 * rerank_interval = 0 the solo loop degenerates to one wave spanning the
 * whole schedule: exactly the pre-epoch engine, bit for bit.
 *
 * Wave packing is cost-weighted: a leaf charges 2^width units (its
 * statevector simulation cost), and a wave closes at wave_size slots OR
 * wave_size × (cheapest pending leaf) cost units, whichever first — so
 * one wide tenant consumes proportionally more of the wave instead of
 * stalling its tail with equal-slot accounting. Packing shapes only WHEN
 * a leaf runs, never what it produces.
 */
#ifndef FQ_ENGINE_WAVE_LOOP_H
#define FQ_ENGINE_WAVE_LOOP_H

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "engine/batch_executor.h"
#include "engine/reducer.h"
#include "engine/scheduler.h"
#include "engine/solve_tree.h"

namespace fq::engine {

class TemplateCache;

/**
 * One request's execution state inside the wave loop. Plain pointers into
 * storage the driver owns (and keeps pinned for the request's lifetime):
 * the loop advances `dispatched` and may rewrite the schedule's
 * un-dispatched tail via re-ranking; everything else is read-only here.
 */
struct WaveRequest
{
    const ising::IsingModel* model = nullptr;
    const SolveTree* tree = nullptr;
    LeafSchedule* schedule = nullptr;
    StreamingReducer* reducer = nullptr;
    const device::Device* dev = nullptr;
    const frozenqubits::DriverConfig* config = nullptr;
    int shots = 0;
    /** Driver-owned back-pointer (e.g. the SolveService's Request). */
    void* context = nullptr;
    /** Seed the plan was derived from (`Rng rng(seed)` before
     *  build_solve_tree) — the checkpoint identity field that lets a
     *  resume replan the identical tree in another process. Unused (0)
     *  when the solve is not durable. */
    std::uint64_t seed = 0;

    /** Cursor into schedule->executed: leaves before it are dispatched. */
    std::size_t dispatched = 0;
    /** Next re-rank boundary (schedule index); 0 = re-ranking off. Armed
     *  by arm_rerank(), advanced by post_barrier_rerank(). */
    std::size_t next_rerank = 0;
    /** Next checkpoint boundary (schedule index); 0 = checkpointing off.
     *  Armed by arm_checkpoint(), advanced by post_barrier_checkpoint().
     *  Checkpoint barriers only add fold-count synchronization points —
     *  they never change what any leaf produces, so a checkpointed run is
     *  bit-identical to an uncheckpointed one. */
    std::size_t next_checkpoint = 0;
    /** Waves this request rode (telemetry). */
    int epochs = 0;

    bool done() const { return dispatched >= schedule->executed.size(); }

    /**
     * Highest exclusive schedule index dispatch may reach before the next
     * pending boundary (re-rank or checkpoint) must run — the invariant
     * that keeps the re-ranked tail independent of wave composition and
     * checkpoints landing on exact fold counts.
     */
    std::size_t dispatch_limit() const
    {
        std::size_t limit = schedule->executed.size();
        if (next_rerank != 0)
            limit = std::min(limit, next_rerank);
        if (next_checkpoint != 0)
            limit = std::min(limit, next_checkpoint);
        return limit;
    }
};

/** Arm the request's first re-rank boundary from its config. */
inline void
arm_rerank(WaveRequest& request)
{
    const long long interval = request.config->rerank_interval;
    request.next_rerank =
        interval > 0 ? static_cast<std::size_t>(interval) : 0;
}

/**
 * Arm the request's next checkpoint boundary from its config: the first
 * multiple of checkpoint_interval strictly past the current dispatch
 * cursor, so it works both for a fresh request (boundary = interval) and
 * for one restored mid-schedule from a snapshot. Call only when a
 * checkpoint sink is actually wired — without one the boundaries would
 * fragment waves for nothing.
 */
inline void
arm_checkpoint(WaveRequest& request)
{
    const long long interval = request.config->checkpoint_interval;
    if (interval <= 0) {
        request.next_checkpoint = 0;
        return;
    }
    const std::size_t step = static_cast<std::size_t>(interval);
    request.next_checkpoint = (request.dispatched / step + 1) * step;
}

/**
 * Slot cost of one leaf for cost-weighted wave packing: 2^width units
 * (statevector simulation cost), capped to keep the arithmetic safe.
 */
long long leaf_slot_cost(const SolveTree& tree, int leaf_id);

/** One wave slot: a leaf bound to its request. */
struct WaveSlot
{
    WaveRequest* request = nullptr;
    int leaf_id = 0;
};

/**
 * Assemble one wave across @p tenants: fair round-robin in the given order
 * starting at @p rotate (one leaf per tenant per pass), honoring each
 * request's DriverConfig::wave_share self-cap and its re-rank
 * dispatch_limit. The wave is bounded by @p wave_size slots AND by the
 * cost budget (@p wave_size × cheapest pending leaf); the first leaf is
 * always admitted, so an over-budget wide leaf rides alone rather than
 * wedging the queue. Advances each admitted request's `dispatched` cursor
 * and bumps its epoch count. Equal-width tenants reproduce the legacy
 * equal-slot packing exactly; the rotating start keeps budget-closed
 * waves from starving any tenant across waves.
 *
 * @p taken, when non-null, receives the per-tenant slot counts (indexed
 * like @p tenants) — the occupancy bookkeeping drivers would otherwise
 * have to reconstruct from the wave.
 */
std::vector<WaveSlot> assemble_wave(const std::vector<WaveRequest*>& tenants,
                                    int wave_size, std::size_t rotate,
                                    std::vector<int>* taken = nullptr);

/**
 * Driver customization points for execute_wave. All optional; the solo
 * engine runs with none (exceptions propagate), the SolveService uses them
 * for per-tenant failure isolation and diagnostics.
 */
struct WaveHooks
{
    /** Pre-simulation gate; return false to skip the slot (dead weight of
     *  an already-failed tenant). Runs on the worker thread. */
    std::function<bool(const WaveSlot&)> admit;
    /** After the slot's counts folded into its request's reducer.
     *  @p fuse_tier reports how the fused program materialized (Hit /
     *  Bind / Compile — see TemplateTier); gate-by-gate slots report
     *  Compile. */
    std::function<void(const WaveSlot&, bool fused_hit,
                       TemplateTier fuse_tier)>
        folded;
    /** A slot threw; when unset the exception propagates out of the wave
     *  (run_queue semantics: lowest failing index wins). */
    std::function<void(const WaveSlot&, std::exception_ptr)> failed;
};

/**
 * Execute one assembled wave to its barrier: simulate every slot through
 * simulate_scheduled_leaf on @p executor and fold into the owning request's
 * reducer. Returns how many slots actually simulated (admit-skipped slots
 * do not count). On return every admitted slot has folded — the barrier
 * the post-barrier scan relies on.
 */
int execute_wave(TemplateCache& cache, BatchExecutor& executor,
                 const std::vector<WaveSlot>& wave,
                 const WaveHooks& hooks = {});

/**
 * Per-request accounting a LeafExecutor backend can report (all zeros for
 * the purely local backend — drivers then attribute every folded leaf to
 * the local BatchExecutor).
 */
struct LeafExecutorStats
{
    long long leaves_remote = 0;       ///< leaves folded from remote replies
    long long leaves_redispatched = 0; ///< re-run locally after a worker died
    long long bytes_sent = 0;          ///< wire bytes out (frames included)
    long long bytes_received = 0;      ///< wire bytes in
    /** Per-worker leaf dispatch counts, keyed by worker address. */
    std::vector<std::pair<std::string, long long>> worker_dispatches;
};

/**
 * The executor seam every wave dispatches through. ONE implementation
 * requirement: on return from execute_wave every admitted slot has folded
 * into its request's reducer (the wave barrier), with hooks invoked
 * exactly as the local path does — WHERE a slot simulated (this process,
 * a remote worker, a re-dispatch after a worker death) must be
 * observationally irrelevant, because simulate_scheduled_leaf is a pure
 * function of (cache contents, tree, leaf, dev, config, shots).
 *
 * Backends: LocalLeafExecutor (the default, wrapping the engine's own
 * BatchExecutor) and net::WorkerPool (remote workers with cost-weighted
 * assignment and hedged re-dispatch).
 */
class LeafExecutor
{
  public:
    virtual ~LeafExecutor() = default;

    /** Run one assembled wave to its barrier; returns slots simulated
     *  (admit-skipped slots do not count), like the free execute_wave. */
    virtual int execute_wave(const std::vector<WaveSlot>& wave,
                             const WaveHooks& hooks = {}) = 0;

    /** Accounting accumulated for @p request since it first appeared in a
     *  wave. Call after the request's last wave, before finish_request. */
    virtual LeafExecutorStats request_stats(const WaveRequest* request)
    {
        (void)request;
        return {};
    }

    /** The request is complete (or failed): release any per-request state
     *  (remote sessions, stats). Drivers MUST call this for every request
     *  they dispatched, since WaveRequest storage is reused. */
    virtual void finish_request(const WaveRequest* request)
    {
        (void)request;
    }
};

/** The default backend: the free execute_wave over the engine's own
 *  template cache and thread pool. */
class LocalLeafExecutor final : public LeafExecutor
{
  public:
    LocalLeafExecutor(TemplateCache& cache, BatchExecutor& executor)
        : cache_(cache), executor_(executor)
    {
    }

    int execute_wave(const std::vector<WaveSlot>& wave,
                     const WaveHooks& hooks = {}) override
    {
        return engine::execute_wave(cache_, executor_, wave, hooks);
    }

  private:
    TemplateCache& cache_;
    BatchExecutor& executor_;
};

/**
 * Post-barrier scan step for one request: when its fold count sits on the
 * pending re-rank boundary, snapshot the incumbent and re-rank the tail —
 * then re-apply the deadline trim (DriverConfig::deadline_cost_units)
 * against the units the folded prefix consumed, since re-rank promotions
 * may have overfilled the remaining deadline. Both are pure functions of
 * the request's own fold count, so trim points are independent of
 * checkpoint barriers and wave composition. Call after a wave barrier
 * (never while leaves are in flight) and only for requests whose
 * dispatched leaves all folded. Returns what the re-rank did
 * (applied == false when none was due).
 */
RerankOutcome post_barrier_rerank(WaveRequest& request);

/**
 * Durable-solve snapshot hook, fired at armed checkpoint boundaries on
 * the driving (assembler) thread. Return true to continue the solve;
 * return false to SUSPEND it: the un-dispatched tail is demoted
 * (suspend_request), the request completes early with its anytime
 * incumbent flagged degraded, and the snapshot the hook just captured
 * resumes the full solve elsewhere — the migration primitive.
 */
using CheckpointHook = std::function<bool(WaveRequest&)>;

/**
 * Suspend @p request: demote its entire un-dispatched tail to
 * beyond_budget and mark the schedule suspended, so the wave loop
 * completes it as a degraded anytime result. The folded prefix is
 * untouched — everything already paid for still counts.
 */
void suspend_request(WaveRequest& request);

/**
 * Post-barrier scan step for one request's checkpoint boundary: when its
 * fold count sits exactly on next_checkpoint (and the request is not
 * done), fire @p hook and advance the boundary; a false return suspends
 * the request. Returns false exactly when the request was suspended.
 * A null hook just advances the boundary (keeps the loop from stalling on
 * an armed boundary nobody consumes).
 */
bool post_barrier_checkpoint(WaveRequest& request,
                             const CheckpointHook& hook);

/**
 * Solo driver: run @p request to completion through wave-synchronous
 * epochs. Each epoch dispatches everything up to the request's
 * dispatch_limit in one wave — with re-ranking and checkpointing off that
 * is the entire schedule in a single wave, bit-identical to the pre-epoch
 * flat batch. Exceptions propagate (no hooks). Re-rank boundaries are
 * armed only for a FRESH request (dispatched == 0); a request restored
 * from a checkpoint keeps its snapshot boundary. @p checkpoint, when set,
 * arms checkpoint boundaries and fires at each one. The SolveService
 * drives the same assemble/execute/post-barrier primitives from its
 * assembler thread instead, multiplexing many requests per wave.
 */
void run_wave_loop(TemplateCache& cache, BatchExecutor& executor,
                   WaveRequest& request,
                   const CheckpointHook& checkpoint = {});

/** Same solo driver over the executor seam — the overload the engine uses
 *  so a WorkerPool (or any other backend) slots in without touching the
 *  epoch logic. */
void run_wave_loop(LeafExecutor& executor, WaveRequest& request,
                   const CheckpointHook& checkpoint = {});

} // namespace fq::engine

#endif // FQ_ENGINE_WAVE_LOOP_H
