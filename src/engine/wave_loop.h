/**
 * @file
 * Wave-synchronous execution epochs: the ONE schedule→dispatch→fold→barrier
 * cycle, shared by the solo ExecutionEngine::solve and the multi-tenant
 * SolveService (which used to duplicate it as a flat batch and an assembler
 * loop respectively).
 *
 * An epoch is one wave: dispatch a slice of each participating request's
 * ranked leaf schedule onto the executor, run it to the fork-join barrier,
 * fold every result into its request's StreamingReducer — then run the
 * post-barrier scan, where adaptive budget re-ranking lives. After each
 * wave, a request whose fold count reached its next re-rank boundary
 * (multiples of DriverConfig::rerank_interval) re-scores its
 * not-yet-dispatched leaves against the reducer's epoch snapshot, prunes
 * stale dominated leaves and re-cuts the remaining budget
 * (scheduler.h: rerank_schedule).
 *
 * Determinism contract: a re-rank at boundary b sees the incumbent over
 * exactly the first b scheduled leaves (StreamingReducer::epoch_snapshot),
 * and dispatch NEVER overshoots a pending boundary (dispatch_limit), so the
 * rewritten tail always starts at b. Re-rank inputs are therefore a pure
 * function of the request's own fold count — never of wave composition,
 * co-tenant interleaving or thread count — and a request's results are
 * bit-identical between a solo solve and any service schedule. With
 * rerank_interval = 0 the solo loop degenerates to one wave spanning the
 * whole schedule: exactly the pre-epoch engine, bit for bit.
 *
 * Wave packing is cost-weighted: a leaf charges 2^width units (its
 * statevector simulation cost), and a wave closes at wave_size slots OR
 * wave_size × (cheapest pending leaf) cost units, whichever first — so
 * one wide tenant consumes proportionally more of the wave instead of
 * stalling its tail with equal-slot accounting. Packing shapes only WHEN
 * a leaf runs, never what it produces.
 */
#ifndef FQ_ENGINE_WAVE_LOOP_H
#define FQ_ENGINE_WAVE_LOOP_H

#include <cstddef>
#include <exception>
#include <functional>
#include <vector>

#include "engine/batch_executor.h"
#include "engine/reducer.h"
#include "engine/scheduler.h"
#include "engine/solve_tree.h"

namespace fq::engine {

class TemplateCache;

/**
 * One request's execution state inside the wave loop. Plain pointers into
 * storage the driver owns (and keeps pinned for the request's lifetime):
 * the loop advances `dispatched` and may rewrite the schedule's
 * un-dispatched tail via re-ranking; everything else is read-only here.
 */
struct WaveRequest
{
    const ising::IsingModel* model = nullptr;
    const SolveTree* tree = nullptr;
    LeafSchedule* schedule = nullptr;
    StreamingReducer* reducer = nullptr;
    const device::Device* dev = nullptr;
    const frozenqubits::DriverConfig* config = nullptr;
    int shots = 0;
    /** Driver-owned back-pointer (e.g. the SolveService's Request). */
    void* context = nullptr;

    /** Cursor into schedule->executed: leaves before it are dispatched. */
    std::size_t dispatched = 0;
    /** Next re-rank boundary (schedule index); 0 = re-ranking off. Armed
     *  by arm_rerank(), advanced by post_barrier_rerank(). */
    std::size_t next_rerank = 0;
    /** Waves this request rode (telemetry). */
    int epochs = 0;

    bool done() const { return dispatched >= schedule->executed.size(); }

    /**
     * Highest exclusive schedule index dispatch may reach before the next
     * pending re-rank must run — the invariant that keeps the re-ranked
     * tail independent of wave composition.
     */
    std::size_t dispatch_limit() const
    {
        const std::size_t total = schedule->executed.size();
        return next_rerank == 0 ? total : std::min(total, next_rerank);
    }
};

/** Arm the request's first re-rank boundary from its config. */
inline void
arm_rerank(WaveRequest& request)
{
    const long long interval = request.config->rerank_interval;
    request.next_rerank =
        interval > 0 ? static_cast<std::size_t>(interval) : 0;
}

/**
 * Slot cost of one leaf for cost-weighted wave packing: 2^width units
 * (statevector simulation cost), capped to keep the arithmetic safe.
 */
long long leaf_slot_cost(const SolveTree& tree, int leaf_id);

/** One wave slot: a leaf bound to its request. */
struct WaveSlot
{
    WaveRequest* request = nullptr;
    int leaf_id = 0;
};

/**
 * Assemble one wave across @p tenants: fair round-robin in the given order
 * starting at @p rotate (one leaf per tenant per pass), honoring each
 * request's DriverConfig::wave_share self-cap and its re-rank
 * dispatch_limit. The wave is bounded by @p wave_size slots AND by the
 * cost budget (@p wave_size × cheapest pending leaf); the first leaf is
 * always admitted, so an over-budget wide leaf rides alone rather than
 * wedging the queue. Advances each admitted request's `dispatched` cursor
 * and bumps its epoch count. Equal-width tenants reproduce the legacy
 * equal-slot packing exactly; the rotating start keeps budget-closed
 * waves from starving any tenant across waves.
 *
 * @p taken, when non-null, receives the per-tenant slot counts (indexed
 * like @p tenants) — the occupancy bookkeeping drivers would otherwise
 * have to reconstruct from the wave.
 */
std::vector<WaveSlot> assemble_wave(const std::vector<WaveRequest*>& tenants,
                                    int wave_size, std::size_t rotate,
                                    std::vector<int>* taken = nullptr);

/**
 * Driver customization points for execute_wave. All optional; the solo
 * engine runs with none (exceptions propagate), the SolveService uses them
 * for per-tenant failure isolation and diagnostics.
 */
struct WaveHooks
{
    /** Pre-simulation gate; return false to skip the slot (dead weight of
     *  an already-failed tenant). Runs on the worker thread. */
    std::function<bool(const WaveSlot&)> admit;
    /** After the slot's counts folded into its request's reducer. */
    std::function<void(const WaveSlot&, bool fused_hit)> folded;
    /** A slot threw; when unset the exception propagates out of the wave
     *  (run_queue semantics: lowest failing index wins). */
    std::function<void(const WaveSlot&, std::exception_ptr)> failed;
};

/**
 * Execute one assembled wave to its barrier: simulate every slot through
 * simulate_scheduled_leaf on @p executor and fold into the owning request's
 * reducer. Returns how many slots actually simulated (admit-skipped slots
 * do not count). On return every admitted slot has folded — the barrier
 * the post-barrier scan relies on.
 */
int execute_wave(TemplateCache& cache, BatchExecutor& executor,
                 const std::vector<WaveSlot>& wave,
                 const WaveHooks& hooks = {});

/**
 * Post-barrier scan step for one request: when its fold count sits on the
 * pending re-rank boundary, snapshot the incumbent and re-rank the tail.
 * Call after a wave barrier (never while leaves are in flight) and only
 * for requests whose dispatched leaves all folded. Returns what the
 * re-rank did (applied == false when none was due).
 */
RerankOutcome post_barrier_rerank(WaveRequest& request);

/**
 * Solo driver: run @p request to completion through wave-synchronous
 * epochs. Each epoch dispatches everything up to the request's
 * dispatch_limit in one wave — with re-ranking off that is the entire
 * schedule in a single wave, bit-identical to the pre-epoch flat batch.
 * Exceptions propagate (no hooks). The SolveService drives the same
 * assemble/execute/post-barrier primitives from its assembler thread
 * instead, multiplexing many requests per wave.
 */
void run_wave_loop(TemplateCache& cache, BatchExecutor& executor,
                   WaveRequest& request);

} // namespace fq::engine

#endif // FQ_ENGINE_WAVE_LOOP_H
