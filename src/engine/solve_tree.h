/**
 * @file
 * SolveTree: the engine's hierarchical solve plan.
 *
 * The flat pipeline (one freeze, one batch of 2^{m-1} siblings) becomes one
 * node kind in a recursive tree: each node covers one cell of the original
 * state space and is either
 *
 *   Freeze     — expanded by the Section 3 transform; holds the node-local
 *                ExecutionPlan (hotspots, sub-problems, mirror tasks,
 *                shared compiled template) exactly as the flat engine did,
 *                but its children may be expanded further;
 *   Partition  — bisected via partition::extract_fragment (the hybrid
 *                D&C + freeze arm): cut couplings are dropped during the
 *                quantum phase and repaired classically at decode;
 *   Sparsify   — Red-QAOA edge pruning: the optimizer loop tunes angles
 *                on a deterministic spanning-structure-preserving proxy
 *                of the cell, while sampling and every energy
 *                evaluation run on the full model (identity lift);
 *   Leaf       — solved through the existing fused-kernel simulation path.
 *
 * Node kinds are open: expansion, scoring and lift policy live in the
 * pluggable NodeExpander registry (engine/expander.h); build_solve_tree
 * is a generic driver over it.
 *
 * Every executable leaf carries the fully composed lift back to the
 * original variable space (surviving-spin map + accumulated frozen values
 * across all levels) and a private RNG stream seed derived from the plan,
 * never from execution order — the same determinism story as the flat
 * engine, extended to arbitrary depth. A depth-1 tree with no partitioning
 * reproduces the flat plan bit-for-bit (same hotspots, same task seeds).
 */
#ifndef FQ_ENGINE_SOLVE_TREE_H
#define FQ_ENGINE_SOLVE_TREE_H

#include <memory>
#include <string>
#include <vector>

#include "engine/plan.h"
#include "sim/backend.h"

namespace fq::engine {

enum class NodeKind { Leaf, Freeze, Partition, Sparsify };

/** Printable node-kind name — served from the kind-metadata table
 *  (engine/expander.h), not a switch. */
const char* node_kind_name(NodeKind kind);

struct SolveNode
{
    int index = 0;
    int parent = -1; ///< -1 for the root
    int depth = 0;   ///< root = 0
    NodeKind kind = NodeKind::Leaf;

    /**
     * The cell of the original state space this node covers: model over the
     * surviving spins, original_of composed across every level above, and
     * the accumulated frozen assignment (original indices).
     */
    frozenqubits::SubProblem sub;
    /** True when any ancestor (or this node) dropped cut couplings — the
     *  leaf decode must repair against the presolve incumbent. */
    bool partition_lineage = false;

    /** Base seed of this node's stream (plan-derived, order-independent). */
    std::uint64_t stream_seed = 0;

    /** Freeze nodes: the node-local flat plan (ExecutionPlan as one node
     *  kind of the recursive structure). Hotspot/sub-problem indices are
     *  node-local; translate through sub.original_of for reporting. */
    ExecutionPlan plan;

    /** Child node indices. Freeze: one per planned task (canonical
     *  children), plus mirror leaves appended after; Partition: the two
     *  fragments. */
    std::vector<int> children;

    /** Partition nodes: couplings lost to the cut. Sparsify nodes:
     *  couplings pruned from the optimizer proxy (the executed circuit
     *  keeps them — ranking-only information). */
    int cut_edges = 0;
    double cut_weight = 0.0;

    // ------------------------------------------------------- leaf fields --
    /** Executable leaves: index into SolveTree::leaves. -1 otherwise. */
    int leaf_id = -1;
    /** Mirror leaves: leaf id whose bit-flipped output covers this node
     *  (Section 3.7.2). -1 for executable leaves and inner nodes. */
    int mirror_of = -1;
    /** Sub-problem index inside the parent Freeze plan (canonical and
     *  mirror children alike; -1 under a Partition parent). */
    int local_solve = -1;
};

/** One executable unit of the tree. */
struct SolveLeaf
{
    int node = -1;    ///< index into SolveTree::nodes
    int leaf_id = 0;  ///< position in SolveTree::leaves (plan order)
    /** Node-local sub-problem index inside the parent Freeze plan
     *  (-1 under a Partition parent). Flat trees use it to rebuild the
     *  legacy 2^m distribution layout. */
    int local_solve = -1;
    std::uint64_t rng_seed = 0;
    /** Mirror Leaf nodes recovered from this leaf by bit flipping. */
    std::vector<int> mirror_nodes;
    /** Partition lineage: decode must fill the other fragments from the
     *  presolve assignment and greedy-repair on the original model. */
    bool needs_repair = false;
    /** Simulate through the fused QAOA fast path (width permitting). */
    bool fuse = false;
    /** Kernel backend this leaf executes on — fixed at plan time as a
     *  pure function of (config.backend, leaf width), so thread count and
     *  wave packing can never change a leaf's kernels (the determinism
     *  contract extends to backend choice). */
    sim::BackendKind backend = sim::BackendKind::ScalarFused;
    /** Circuit build options this leaf's template/fused program were
     *  compiled under — simulation MUST reuse them. */
    qaoa::BuildOptions build;
    /** Shared compiled template of the parent freeze level (may be null). */
    std::shared_ptr<const CompiledTemplate> tpl;
    /** Whether @p tpl's structure matches this leaf (checked at plan time). */
    bool tpl_compatible = false;
    /** Family-level parametric template whose skeleton this leaf's fused
     *  program can bind from (null when disabled or structure-incompatible
     *  — verified against THIS leaf's model at plan time). */
    std::shared_ptr<const ParametricTemplate> family;
    /**
     * Plan-time prediction of how this leaf's fused program materializes:
     * Hit (already resident), Bind (family skeleton patch), or Compile
     * (from-scratch build). Diagnostics only — the execution path
     * re-resolves through the cache and produces bit-identical tables
     * regardless of tier.
     */
    TemplateTier tier = TemplateTier::Compile;
    /**
     * Sparsify-lineage leaves: the reduced model the OPTIMIZER LOOP
     * tunes (gamma, beta) on (fixed at plan time, pure function of the
     * leaf model and its stream seed). Null = tune on the full model.
     * The executed circuit, sampling RNG and every decode/energy
     * evaluation always use the full model, so the reduction can only
     * move the angles — never the lift, the histogram semantics or the
     * fold.
     */
    std::shared_ptr<const ising::IsingModel> proxy;
};

struct SolveTree
{
    std::vector<SolveNode> nodes;  ///< nodes[0] is the root
    std::vector<SolveLeaf> leaves; ///< executable leaves, DFS plan order
    int max_depth = 1;             ///< configured expansion depth

    /**
     * True for the legacy shape: a single Freeze root whose children are
     * all terminal. Flat trees reduce through the legacy 2^m-distribution
     * path, so a default-config solve stays bit-identical to the flat
     * engine.
     */
    bool flat() const;

    /** Total leaf-node count including mirrors (2^m for a flat tree). */
    int num_leaf_nodes() const;

    int num_executable_leaves() const
    {
        return static_cast<int>(leaves.size());
    }

    /** Register width of one executable leaf (its node's surviving spins)
     *  — the exponent of its 2^width statevector cost, which the wave
     *  loop's cost-weighted packing charges per slot. */
    int leaf_width(int leaf_id) const;
};

/**
 * Build the tree. @p rng is consumed exactly as the flat make_plan did for
 * the root expansion (hotspot policy draws + one stream-seed draw); deeper
 * nodes derive private streams from their parent task's seed, so the tree
 * is reproducible from the config seed alone. Each Freeze node resolves its
 * own shared template through @p cache (one transpiler run per tree level
 * and sibling structure).
 *
 * Expansion policy is the ExpanderRegistry's consultation order
 * (engine/expander.h), which preserves the legacy precedence:
 *   - nodes wider than config.partition_width (> 0 enables) are bisected;
 *   - otherwise nodes below max_depth freeze config.num_freeze hotspots
 *     (clamped to their width); mirror pruning applies only where
 *     children are terminal;
 *   - terminal nodes are wrapped by Sparsify when config.sparsify_keep
 *     is in (0, 1) and the cell has prunable edges, else they are
 *     leaves.
 */
SolveTree build_solve_tree(const ising::IsingModel& model,
                           const device::Device& dev,
                           const frozenqubits::DriverConfig& config,
                           TemplateCache& cache, Rng& rng);

/**
 * Lift a basis state measured on @p leaf's register into the original
 * variable space: start from @p base (presolve assignment or all +1),
 * overwrite the leaf's surviving spins and every frozen value on its root
 * path. Freeze-only lineages cover all spins; partition lineages keep the
 * base for the other fragments.
 */
ising::SpinVector lift_leaf_state(const SolveTree& tree,
                                  const SolveLeaf& leaf,
                                  std::uint64_t state,
                                  const ising::SpinVector& base);

} // namespace fq::engine

#endif // FQ_ENGINE_SOLVE_TREE_H
