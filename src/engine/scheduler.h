/**
 * @file
 * Leaf scheduler: turns a SolveTree's executable leaves into a ranked,
 * budget-cut execution schedule.
 *
 * Ranking is purely classical and fixed at plan time: each leaf gets a
 * cheap simulated-annealing presolve bound on its own sub-model (whose
 * offset already carries the frozen-value contribution of its root path),
 * leaves are sorted best-bound-first with ties broken by leaf id, and the
 * schedule is cut at FreezeBudget-style `max_circuits`. Because every
 * decision happens before any circuit runs, partial execution inherits the
 * engine's determinism guarantee: `threads=N` executes exactly the same
 * leaves as serial, bit for bit.
 *
 * Optionally (`prune_dominated`) leaves whose optimistic cost bound cannot
 * beat the global presolve incumbent are dropped before the budget is
 * applied — the tree prunes siblings that are already dominated.
 */
#ifndef FQ_ENGINE_SCHEDULER_H
#define FQ_ENGINE_SCHEDULER_H

#include <vector>

#include "common/error.h"
#include "engine/batch_executor.h"
#include "engine/solve_tree.h"

namespace fq::engine {

/**
 * Typed deadline rejection. Thrown at plan time when
 * DriverConfig::deadline_cost_units cannot cover even one scheduled leaf,
 * and by SolveService::submit when the projected completion (serial
 * backlog ahead of the request plus its own schedule, in 2^width wave-slot
 * cost units) exceeds the request's deadline. Distinct from AdmissionError
 * (queue depth) so callers can shed on load versus shrink the request.
 */
class DeadlineError : public fq::Error
{
  public:
    explicit DeadlineError(const std::string& what) : fq::Error(what) {}
};

/** Classical plan-time rating of one leaf. */
struct LeafScore
{
    /** SA presolve best cost on the leaf model (includes the frozen-value
     *  offset), lifted by the cut-weight penalty of any Partition ancestor
     *  so hybrid arms rank honestly against freeze arms — the scheduling
     *  priority, lower first. */
    double score = 0.0;
    /** Optimistic lower bound on any cost in the leaf's sub-space:
     *  offset - sum|h| - sum|J|. Meaningless (and unused) for
     *  partition-lineage leaves, whose decode is repaired. */
    double bound = 0.0;
};

struct LeafSchedule
{
    /** Leaf ids to execute, best-first (rank order). Never empty. The
     *  prefix already folded by the wave loop is immutable; re-ranking may
     *  rewrite only the not-yet-dispatched tail. */
    std::vector<int> executed;
    /** Ranked leaf ids beyond the circuit budget (skipped). Re-ranking may
     *  promote entries back into `executed` when pruning frees budget. */
    std::vector<int> beyond_budget;
    /** Leaf ids dropped by bound domination — at plan time
     *  (prune_dominated) or by an epoch re-rank against the incumbent. */
    std::vector<int> pruned;

    /** Per-leaf scores (by leaf id); empty when scoring was skipped. */
    std::vector<LeafScore> scores;
    bool scored = false;
    /** Plan-time rank position by leaf id (-1 when unscored): the frozen
     *  tie-breaker every later re-rank falls back to, so adaptive order is
     *  a pure function of (plan, fold results) and never of float-compare
     *  luck between equal adaptive scores. */
    std::vector<int> plan_rank;

    // ------------------------------------------- re-ranking telemetry --
    int reranks = 0;          ///< epoch re-ranks applied
    int rerank_pruned = 0;    ///< stale dominated leaves dropped mid-run
    int rerank_promoted = 0;  ///< beyond-budget leaves pulled into executed
    int rerank_demoted = 0;   ///< scheduled leaves pushed beyond the budget

    // ----------------------------------------------------- durability --
    /** Demotion events by the deadline trim (apply_deadline_trim): leaves
     *  pushed beyond_budget because the remaining deadline_cost_units
     *  could no longer cover them. > 0 flags the result degraded. */
    int deadline_trimmed = 0;
    /** A checkpoint sink stopped this solve early (the un-dispatched tail
     *  was demoted); the result is the anytime incumbent, flagged
     *  degraded, while the captured snapshot resumes elsewhere. */
    bool suspended = false;

    /** Global classical presolve on the original model (computed whenever
     *  scoring runs or any leaf needs decode repair). */
    bool has_presolve = false;
    double presolve_cost = 0.0;
    ising::SpinVector presolve_assignment;

    long long max_circuits = 0; ///< 0 = unlimited
};

/**
 * Build the schedule for @p tree under @p config. Scoring (per-leaf SA
 * presolve) runs when a budget or domination pruning is active, or when
 * @p force_scoring is set (fqtool plan); otherwise the schedule is simply
 * plan order — the flat engine's legacy behaviour. Deterministic: every
 * seed derives from the leaves' plan-time RNG streams, and ranking /
 * cutting are serial. Per-leaf scoring is a pure function of the leaf, so
 * it may run on @p executor when one is supplied (indexed result slots;
 * the determinism guarantee holds for any thread count) — null scores
 * serially.
 */
LeafSchedule make_schedule(const ising::IsingModel& original,
                           const SolveTree& tree,
                           const frozenqubits::DriverConfig& config,
                           bool force_scoring = false,
                           BatchExecutor* executor = nullptr);

/**
 * Reduction pessimism added to a leaf's SA score: the sum of every
 * root-path ancestor's NodeExpander::score_penalty (engine/expander.h).
 * A leaf's SA presolve cannot see information its ancestors' reductions
 * discarded, so its raw score flatters those arms; each reduction
 * declares its own charge — Partition: half the |J| lost to the cut
 * (signs are repaired classically at decode), Sparsify: a quarter of
 * the |J| pruned from the optimizer proxy (sampling keeps the full
 * model, only the angles can drift), Freeze: zero (its offsets already
 * carry every coupling). Zero for pure-freeze lineages, so freeze-tree
 * ranking is unchanged from the pre-registry scheduler.
 */
double lineage_score_penalty(const SolveTree& tree, int leaf_id);

/**
 * Deterministic incumbent snapshot handed to a re-rank: the best decode
 * over exactly the first `folded` scheduled leaves (plus the classical
 * presolve). Produced by StreamingReducer::epoch_snapshot.
 */
struct EpochIncumbent
{
    bool valid = false;
    double cost = 0.0;
    ising::SpinVector assignment;
    int leaf = -1; ///< -1 = classical presolve
};

/** What one epoch re-rank did to the schedule. */
struct RerankOutcome
{
    int pruned = 0;   ///< tail leaves newly dominated by the incumbent
    int promoted = 0; ///< beyond-budget leaves re-admitted to executed
    int demoted = 0;  ///< previously scheduled leaves cut from executed
    bool applied = false;
};

/**
 * Adaptive budget re-ranking (the Scheduler's epoch API): re-score the
 * not-yet-dispatched tail of @p schedule — entries of `executed` past
 * @p folded plus everything in `beyond_budget` — against @p incumbent,
 * prune leaves whose optimistic bound can no longer beat it, re-sort the
 * survivors and re-cut the remaining `max_circuits - folded` budget.
 *
 * The adaptive score is the plan-time SA score lifted by the incumbent's
 * frozen-arm energies: min(plan score, original-model cost of the incumbent
 * assignment projected through the leaf's frozen arm). Ties break by
 * plan-time rank, so the result is a pure function of
 * (plan, scores, incumbent) — never of wave composition, tenant
 * interleaving or thread count. Requires a scored schedule and
 * 1 <= folded <= executed.size(); entries before `folded` are never
 * touched.
 */
RerankOutcome rerank_schedule(LeafSchedule& schedule,
                              const ising::IsingModel& original,
                              const SolveTree& tree, std::size_t folded,
                              const EpochIncumbent& incumbent);

/**
 * Deadline trim: demote every scheduled leaf past @p folded that no longer
 * fits in @p deadline_units of 2^width wave-slot cost (leaf_slot_cost),
 * charging the already-folded prefix first. Walks the tail in rank order,
 * keeping each leaf whose cost still fits the remaining budget — so
 * cheaper late leaves may survive an expensive mid-schedule one. Demoted
 * leaves land in beyond_budget (a later re-rank may reconsider them if the
 * trim re-runs and they fit again) and count into
 * LeafSchedule::deadline_trimmed.
 *
 * Deterministic by construction: a pure function of (schedule, tree,
 * deadline, folded) — never of wall-clock time, wave composition or
 * thread count — so a deadline-trimmed solve is bit-identical between a
 * solo ExecutionEngine::solve and any SolveService interleaving. Runs at
 * plan time (folded = 0) and again after each applied re-rank, whose
 * promotions may overfill the budget.
 *
 * Throws DeadlineError when folded == 0 and not even one leaf fits — a
 * request whose deadline cannot cover any quantum work is rejected
 * outright instead of degenerating to a presolve-only answer.
 * Returns the number of leaves demoted by this call.
 */
int apply_deadline_trim(LeafSchedule& schedule, const SolveTree& tree,
                        long long deadline_units, std::size_t folded);

} // namespace fq::engine

#endif // FQ_ENGINE_SCHEDULER_H
