/**
 * @file
 * Leaf scheduler: turns a SolveTree's executable leaves into a ranked,
 * budget-cut execution schedule.
 *
 * Ranking is purely classical and fixed at plan time: each leaf gets a
 * cheap simulated-annealing presolve bound on its own sub-model (whose
 * offset already carries the frozen-value contribution of its root path),
 * leaves are sorted best-bound-first with ties broken by leaf id, and the
 * schedule is cut at FreezeBudget-style `max_circuits`. Because every
 * decision happens before any circuit runs, partial execution inherits the
 * engine's determinism guarantee: `threads=N` executes exactly the same
 * leaves as serial, bit for bit.
 *
 * Optionally (`prune_dominated`) leaves whose optimistic cost bound cannot
 * beat the global presolve incumbent are dropped before the budget is
 * applied — the tree prunes siblings that are already dominated.
 */
#ifndef FQ_ENGINE_SCHEDULER_H
#define FQ_ENGINE_SCHEDULER_H

#include <vector>

#include "engine/batch_executor.h"
#include "engine/solve_tree.h"

namespace fq::engine {

/** Classical plan-time rating of one leaf. */
struct LeafScore
{
    /** SA presolve best cost on the leaf model (includes the frozen-value
     *  offset) — the scheduling priority, lower first. */
    double score = 0.0;
    /** Optimistic lower bound on any cost in the leaf's sub-space:
     *  offset - sum|h| - sum|J|. Meaningless (and unused) for
     *  partition-lineage leaves, whose decode is repaired. */
    double bound = 0.0;
};

struct LeafSchedule
{
    /** Leaf ids to execute, best-first (rank order). Never empty. */
    std::vector<int> executed;
    /** Ranked leaf ids beyond the circuit budget (skipped). */
    std::vector<int> beyond_budget;
    /** Leaf ids dropped by bound-domination pruning (prune_dominated). */
    std::vector<int> pruned;

    /** Per-leaf scores (by leaf id); empty when scoring was skipped. */
    std::vector<LeafScore> scores;
    bool scored = false;

    /** Global classical presolve on the original model (computed whenever
     *  scoring runs or any leaf needs decode repair). */
    bool has_presolve = false;
    double presolve_cost = 0.0;
    ising::SpinVector presolve_assignment;

    long long max_circuits = 0; ///< 0 = unlimited
};

/**
 * Build the schedule for @p tree under @p config. Scoring (per-leaf SA
 * presolve) runs when a budget or domination pruning is active, or when
 * @p force_scoring is set (fqtool plan); otherwise the schedule is simply
 * plan order — the flat engine's legacy behaviour. Deterministic: every
 * seed derives from the leaves' plan-time RNG streams, and ranking /
 * cutting are serial. Per-leaf scoring is a pure function of the leaf, so
 * it may run on @p executor when one is supplied (indexed result slots;
 * the determinism guarantee holds for any thread count) — null scores
 * serially.
 */
LeafSchedule make_schedule(const ising::IsingModel& original,
                           const SolveTree& tree,
                           const frozenqubits::DriverConfig& config,
                           bool force_scoring = false,
                           BatchExecutor* executor = nullptr);

} // namespace fq::engine

#endif // FQ_ENGINE_SCHEDULER_H
