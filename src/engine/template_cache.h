/**
 * @file
 * Compile-once template cache (Section 3.7.1 made persistent).
 *
 * All 2^m siblings of one freeze share a quadratic structure, so their
 * compiled circuits are identical up to RZ angles; one transpiler run
 * serves them all via edit_template. This cache extends that sharing
 * across engine invocations: entries are keyed on (model topology, device
 * identity, compile + build options) — everything the transpiler's output
 * structurally depends on, and nothing it doesn't (coefficient VALUES are
 * excluded on purpose; they only move RZ angles, which the editor rewrites
 * per task anyway).
 *
 * Devices are fingerprinted structurally — name, coupling map, and full
 * calibration — so hand-built devices that alias on a name can never be
 * served each other's compiles.
 *
 * Thread-safe; lookups that miss compile OUTSIDE the lock (concurrent
 * misses on distinct keys never serialize — the multi-tenant planning
 * path), with a first-insert-wins race resolution so concurrent requests
 * for the same key still end up sharing one entry.
 */
#ifndef FQ_ENGINE_TEMPLATE_CACHE_H
#define FQ_ENGINE_TEMPLATE_CACHE_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "device/catalog.h"
#include "ising/ising_model.h"
#include "qaoa/qaoa_builder.h"
#include "sim/noise_model.h"
#include "sim/qaoa_kernel.h"
#include "transpiler/pipeline.h"

namespace fq::engine {

/** Stable fingerprint of a model's quadratic structure (not its values).
 *  @p salt varies the whole hash chain (for independent verification
 *  fingerprints). */
std::uint64_t topology_fingerprint(const ising::IsingModel& model,
                                   std::uint64_t salt = 0);

/**
 * Stable fingerprint of a model's full coefficient content — structure AND
 * values. The transpiled template only depends on structure (coefficients
 * just move RZ angles), but the simulator's fused weight tables bake the
 * coefficients in, so their cache key must distinguish values.
 */
std::uint64_t model_value_fingerprint(const ising::IsingModel& model,
                                      std::uint64_t salt = 0);

/** Stable fingerprint of a device: name, coupling map, calibration. */
std::uint64_t device_fingerprint(const device::Device& dev,
                                 std::uint64_t salt = 0);

/** Stable fingerprint of the full cache key. */
std::uint64_t template_key(const ising::IsingModel& model,
                           const device::Device& dev,
                           const transpiler::CompileOptions& compile,
                           const qaoa::BuildOptions& build,
                           std::uint64_t salt = 0);

/**
 * Canonical family signature: a Weisfeiler-Leman-style isomorphism-class
 * hash of the model's interaction graph (label-free, value-free) mixed
 * with width, layer count/build flags, device identity, and compile
 * options — everything a structural compile depends on, with spin LABELS
 * excluded so relabeled instances of one graph class bucket together.
 * Correctness never rests on this hash: a family entry stores its exact
 * labeled structure and every bind is verified against it in O(E).
 */
std::uint64_t family_signature(const ising::IsingModel& model,
                               const device::Device& dev,
                               const transpiler::CompileOptions& compile,
                               const qaoa::BuildOptions& build,
                               std::uint64_t salt = 0);

/**
 * Slot-value vector for binding a skeleton to @p model's coefficients:
 * slot i in [0, n) holds -h_i, slot n + t holds -J_t (the fused parity
 * coefficients under the RZ phase convention — see circuit/fusion.cc).
 * Exact: the builder emits angle coefficients 2h / 2J and fusion halves
 * and negates them, which round-trips bitwise in IEEE754.
 */
std::vector<double> fused_slot_values(const ising::IsingModel& model);

/** How a template lookup was (or will be) satisfied. */
enum class TemplateTier : std::uint8_t {
    Compile, ///< full build: transpile and/or fusion scan from scratch
    Bind,    ///< family structure resident; coefficients patched in
    Hit,     ///< exact value-keyed artifact already resident
};

/** Lower-case tier mnemonic ("compile" / "bind" / "hit"). */
const char* template_tier_name(TemplateTier tier);

/**
 * One cached template: the transpiled circuit plus every noise quantity
 * that is a pure function of (circuit structure, device) — all shared
 * verbatim by the template's RZ-angle-edited siblings, so computing them
 * once here amortizes them across tasks AND across engine invocations.
 */
struct CompiledTemplate
{
    transpiler::CompileResult compiled;
    sim::NoiseAttenuation attenuation;
    double eps = 0.0; ///< expected probability of success
    /** Readout-flip probability per logical qubit (final placement). */
    std::vector<double> readout_flip;
};

/**
 * Per-logical-qubit readout-flip probabilities under @p compiled's final
 * placement — the single definition shared by the cache and the engine's
 * uncached sampling path.
 */
std::vector<double> readout_flip_for(const transpiler::CompileResult& compiled,
                                     const device::Calibration& calibration,
                                     int num_spins);

/**
 * Family-level structural artifact: everything the compile pipeline
 * produces that depends on structure but not on coefficient VALUES,
 * computed once per (graph family, p, width, device) and shared by every
 * member instance. Holds the structure-only transpiled template (noise
 * quantities included — all angle-independent) and the coefficient-slot
 * fusion skeleton that turns a member's fused-program build into a
 * parameter patch.
 */
struct ParametricTemplate
{
    /// @name Exact labeled structure (bind safety; hash-independent)
    /// @{
    int num_spins = 0;
    std::vector<std::pair<int, int>> quadratic_pairs;
    /** Nonzero-linear pattern; used only when the build omits zero-h RZs
     *  (the compiled structure then depends on WHICH h_i are nonzero). */
    std::vector<bool> linear_present;
    /// @}

    /** Structure-only compile result + noise quantities. */
    std::shared_ptr<const CompiledTemplate> structural;
    /** Value-free fused skeleton (parity masks with coefficient slots). */
    circuit::ParametricFusedCircuit skeleton;
    bool has_skeleton = false;
    qaoa::BuildOptions build;

    /** True when @p model has exactly this labeled structure. O(E). */
    bool matches(const ising::IsingModel& model) const;
    /** Estimated shared-structure footprint (charged once per family). */
    std::size_t bytes() const;
};

class TemplateCache
{
  public:
    TemplateCache();

    /** Cumulative counters (monotone; never reset), plus a snapshot of
     *  the current byte residency split by pool. */
    struct Stats
    {
        std::uint64_t lookups = 0;
        std::uint64_t hits = 0;
        std::uint64_t compiles = 0;
        /** Compiled-template entries dropped by the capacity reset (an
         *  explicit clear() does not count — it is a caller decision, not
         *  cache pressure). */
        std::uint64_t evictions = 0;
        /** Fused-simulation program counters (get_or_fuse). */
        std::uint64_t sim_lookups = 0;
        std::uint64_t sim_hits = 0;
        std::uint64_t sim_fusions = 0;
        /** Fused programs dropped by the byte-budget reset. */
        std::uint64_t sim_evictions = 0;
        /** Family-tier counters (get_or_bind / skeleton binds). */
        std::uint64_t family_lookups = 0;
        /** Lookups served by a resident family structure. */
        std::uint64_t family_hits = 0;
        /** Structure-only compiles (transpile + fusion skeleton), once
         *  per labeled structure per family. */
        std::uint64_t family_structural_compiles = 0;
        /** Fused programs built by patching coefficients into a resident
         *  skeleton instead of a from-scratch circuit build + fusion. */
        std::uint64_t family_binds = 0;
        /** Family structures dropped by the byte-budget reset. */
        std::uint64_t family_evictions = 0;

        /// @name Byte residency snapshot (filled by stats())
        /// @{
        /** Shared family structure — charged ONCE per labeled structure,
         *  no matter how many binds it serves. */
        std::size_t structure_bytes = 0;
        /** Per-bind fused weight tables (value-keyed sim entries). */
        std::size_t bind_bytes = 0;
        /** Legacy per-structure compiled templates (get_or_compile). */
        std::size_t template_bytes = 0;
        /// @}

        std::uint64_t misses() const { return lookups - hits; }
        std::uint64_t sim_misses() const { return sim_lookups - sim_hits; }
        std::uint64_t family_misses() const
        {
            return family_lookups - family_hits;
        }
    };

    /** get_or_bind result: the family artifact plus how this lookup was
     *  satisfied (Hit = this model's fused program is already resident,
     *  Bind = structure resident / coefficients to patch, Compile = this
     *  call paid the structural compile). */
    struct FamilyBinding
    {
        std::shared_ptr<const ParametricTemplate> family;
        TemplateTier tier = TemplateTier::Compile;
    };

    /**
     * Return the compiled template for @p model's structure, compiling
     * (build + transpile + noise analysis) on the first request for its
     * key. Hits are verified against an independently-salted second
     * fingerprint, so serving a wrong entry needs a simultaneous 128-bit
     * collision. @p was_hit, if non-null, reports whether this lookup was
     * served from cache.
     */
    std::shared_ptr<const CompiledTemplate>
    get_or_compile(const ising::IsingModel& model, const device::Device& dev,
                   const transpiler::CompileOptions& compile,
                   const qaoa::BuildOptions& build, bool* was_hit = nullptr);

    /**
     * Return the compiled fused-simulation program (diagonal weight
     * tables, mixer walls) for @p model's QAOA circuit under @p build,
     * fusing and compiling tables on the first request. Keyed on
     * coefficient VALUES (unlike the transpiled template) because the
     * weight tables bake them in; all optimizer iterations and every
     * repeated solve over the same sub-problem reuse one entry. Hits are
     * double-fingerprint verified like compiled templates.
     */
    std::shared_ptr<const sim::FusedProgram>
    get_or_fuse(const ising::IsingModel& model,
                const qaoa::BuildOptions& build, bool* was_hit = nullptr,
                const ParametricTemplate* family = nullptr,
                TemplateTier* tier = nullptr);

    /**
     * The family tier above get_or_compile/get_or_fuse: return the shared
     * structural artifact for @p model's graph family, running the
     * structure-only compile (transpile + fusion skeleton) exactly once
     * per labeled structure. Warm-family lookups cost a hash plus an O(E)
     * labeled verification — no transpiler involvement — which is what
     * turns cold-start planning into a parameter patch. Same concurrency
     * contract as the other tiers: misses compile OUTSIDE the lock,
     * first insert wins, race losers report tier Compile.
     */
    FamilyBinding get_or_bind(const ising::IsingModel& model,
                              const device::Device& dev,
                              const transpiler::CompileOptions& compile,
                              const qaoa::BuildOptions& build);

    /**
     * True when @p model's exact fused program is resident (a subsequent
     * get_or_fuse would hit). Read-only peek for plan-time leaf-tier
     * reporting; deliberately NOT counted in Stats so planning previews
     * cannot distort the hit-rate diagnostics.
     */
    bool peek_fused(const ising::IsingModel& model,
                    const qaoa::BuildOptions& build) const;

    /**
     * Override the byte budgets (0 keeps the current value). Exists for
     * eviction-boundary tests and memory-constrained deployments; the
     * defaults are kMaxSimBytes / kMaxFamilyBytes in template_cache.cc.
     */
    void set_byte_budgets(std::size_t sim_bytes, std::size_t family_bytes);

    Stats stats() const;
    std::size_t size() const;
    /**
     * Estimated bytes currently held: full fused-program footprints
     * (FusedProgram::bytes — weight tables AND the compiled op list) plus
     * a per-template estimate of the compiled circuit and its noise
     * arrays. Cheap enough to poll from a --stats report after every
     * solve.
     */
    std::size_t bytes() const;
    void clear();

  private:
    struct Entry
    {
        std::uint64_t verify_key = 0;
        std::size_t bytes = 0;
        std::shared_ptr<const CompiledTemplate> value;
    };
    struct SimEntry
    {
        std::uint64_t verify_key = 0;
        /** Full program footprint (FusedProgram::bytes(), captured at
         *  insert so the budget releases exactly what it charged). */
        std::size_t bytes = 0;
        std::shared_ptr<const sim::FusedProgram> value;
    };
    /** One labeled structure within a family bucket. The shared structure
     *  is charged ONCE here; the per-bind weight tables it later serves
     *  are charged per value in sim_entries_. */
    struct FamilyVariant
    {
        std::uint64_t labeled_key = 0;
        std::uint64_t verify_key = 0;
        /** ParametricTemplate::bytes(), captured at insert so eviction
         *  releases exactly what was charged. */
        std::size_t bytes = 0;
        std::shared_ptr<const ParametricTemplate> value;
    };
    struct FamilyEntry
    {
        std::vector<FamilyVariant> variants;
    };

    mutable std::mutex mutex_;
    std::unordered_map<std::uint64_t, Entry> entries_;
    std::unordered_map<std::uint64_t, SimEntry> sim_entries_;
    std::unordered_map<std::uint64_t, FamilyEntry> families_;
    /** Estimated bytes held by entries_ (compiled circuits + noise). */
    std::size_t template_bytes_ = 0;
    /** Estimated bytes held by sim_entries_ (table storage). */
    std::size_t sim_bytes_ = 0;
    /** Estimated bytes held by families_ (shared structures). */
    std::size_t family_bytes_ = 0;
    std::size_t sim_byte_budget_;
    std::size_t family_byte_budget_;
    Stats stats_;
};

} // namespace fq::engine

#endif // FQ_ENGINE_TEMPLATE_CACHE_H
