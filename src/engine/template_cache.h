/**
 * @file
 * Compile-once template cache (Section 3.7.1 made persistent).
 *
 * All 2^m siblings of one freeze share a quadratic structure, so their
 * compiled circuits are identical up to RZ angles; one transpiler run
 * serves them all via edit_template. This cache extends that sharing
 * across engine invocations: entries are keyed on (model topology, device
 * identity, compile + build options) — everything the transpiler's output
 * structurally depends on, and nothing it doesn't (coefficient VALUES are
 * excluded on purpose; they only move RZ angles, which the editor rewrites
 * per task anyway).
 *
 * Devices are fingerprinted structurally — name, coupling map, and full
 * calibration — so hand-built devices that alias on a name can never be
 * served each other's compiles.
 *
 * Thread-safe; lookups that miss compile OUTSIDE the lock (concurrent
 * misses on distinct keys never serialize — the multi-tenant planning
 * path), with a first-insert-wins race resolution so concurrent requests
 * for the same key still end up sharing one entry.
 */
#ifndef FQ_ENGINE_TEMPLATE_CACHE_H
#define FQ_ENGINE_TEMPLATE_CACHE_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "device/catalog.h"
#include "ising/ising_model.h"
#include "qaoa/qaoa_builder.h"
#include "sim/noise_model.h"
#include "sim/qaoa_kernel.h"
#include "transpiler/pipeline.h"

namespace fq::engine {

/** Stable fingerprint of a model's quadratic structure (not its values).
 *  @p salt varies the whole hash chain (for independent verification
 *  fingerprints). */
std::uint64_t topology_fingerprint(const ising::IsingModel& model,
                                   std::uint64_t salt = 0);

/**
 * Stable fingerprint of a model's full coefficient content — structure AND
 * values. The transpiled template only depends on structure (coefficients
 * just move RZ angles), but the simulator's fused weight tables bake the
 * coefficients in, so their cache key must distinguish values.
 */
std::uint64_t model_value_fingerprint(const ising::IsingModel& model,
                                      std::uint64_t salt = 0);

/** Stable fingerprint of a device: name, coupling map, calibration. */
std::uint64_t device_fingerprint(const device::Device& dev,
                                 std::uint64_t salt = 0);

/** Stable fingerprint of the full cache key. */
std::uint64_t template_key(const ising::IsingModel& model,
                           const device::Device& dev,
                           const transpiler::CompileOptions& compile,
                           const qaoa::BuildOptions& build,
                           std::uint64_t salt = 0);

/**
 * One cached template: the transpiled circuit plus every noise quantity
 * that is a pure function of (circuit structure, device) — all shared
 * verbatim by the template's RZ-angle-edited siblings, so computing them
 * once here amortizes them across tasks AND across engine invocations.
 */
struct CompiledTemplate
{
    transpiler::CompileResult compiled;
    sim::NoiseAttenuation attenuation;
    double eps = 0.0; ///< expected probability of success
    /** Readout-flip probability per logical qubit (final placement). */
    std::vector<double> readout_flip;
};

/**
 * Per-logical-qubit readout-flip probabilities under @p compiled's final
 * placement — the single definition shared by the cache and the engine's
 * uncached sampling path.
 */
std::vector<double> readout_flip_for(const transpiler::CompileResult& compiled,
                                     const device::Calibration& calibration,
                                     int num_spins);

class TemplateCache
{
  public:
    /** Cumulative counters (monotone; never reset). */
    struct Stats
    {
        std::uint64_t lookups = 0;
        std::uint64_t hits = 0;
        std::uint64_t compiles = 0;
        /** Compiled-template entries dropped by the capacity reset (an
         *  explicit clear() does not count — it is a caller decision, not
         *  cache pressure). */
        std::uint64_t evictions = 0;
        /** Fused-simulation program counters (get_or_fuse). */
        std::uint64_t sim_lookups = 0;
        std::uint64_t sim_hits = 0;
        std::uint64_t sim_fusions = 0;
        /** Fused programs dropped by the byte-budget reset. */
        std::uint64_t sim_evictions = 0;

        std::uint64_t misses() const { return lookups - hits; }
        std::uint64_t sim_misses() const { return sim_lookups - sim_hits; }
    };

    /**
     * Return the compiled template for @p model's structure, compiling
     * (build + transpile + noise analysis) on the first request for its
     * key. Hits are verified against an independently-salted second
     * fingerprint, so serving a wrong entry needs a simultaneous 128-bit
     * collision. @p was_hit, if non-null, reports whether this lookup was
     * served from cache.
     */
    std::shared_ptr<const CompiledTemplate>
    get_or_compile(const ising::IsingModel& model, const device::Device& dev,
                   const transpiler::CompileOptions& compile,
                   const qaoa::BuildOptions& build, bool* was_hit = nullptr);

    /**
     * Return the compiled fused-simulation program (diagonal weight
     * tables, mixer walls) for @p model's QAOA circuit under @p build,
     * fusing and compiling tables on the first request. Keyed on
     * coefficient VALUES (unlike the transpiled template) because the
     * weight tables bake them in; all optimizer iterations and every
     * repeated solve over the same sub-problem reuse one entry. Hits are
     * double-fingerprint verified like compiled templates.
     */
    std::shared_ptr<const sim::FusedProgram>
    get_or_fuse(const ising::IsingModel& model,
                const qaoa::BuildOptions& build, bool* was_hit = nullptr);

    Stats stats() const;
    std::size_t size() const;
    /**
     * Estimated bytes currently held: full fused-program footprints
     * (FusedProgram::bytes — weight tables AND the compiled op list) plus
     * a per-template estimate of the compiled circuit and its noise
     * arrays. Cheap enough to poll from a --stats report after every
     * solve.
     */
    std::size_t bytes() const;
    void clear();

  private:
    struct Entry
    {
        std::uint64_t verify_key = 0;
        std::size_t bytes = 0;
        std::shared_ptr<const CompiledTemplate> value;
    };
    struct SimEntry
    {
        std::uint64_t verify_key = 0;
        /** Full program footprint (FusedProgram::bytes(), captured at
         *  insert so the budget releases exactly what it charged). */
        std::size_t bytes = 0;
        std::shared_ptr<const sim::FusedProgram> value;
    };

    mutable std::mutex mutex_;
    std::unordered_map<std::uint64_t, Entry> entries_;
    std::unordered_map<std::uint64_t, SimEntry> sim_entries_;
    /** Estimated bytes held by entries_ (compiled circuits + noise). */
    std::size_t template_bytes_ = 0;
    /** Estimated bytes held by sim_entries_ (table storage). */
    std::size_t sim_bytes_ = 0;
    Stats stats_;
};

} // namespace fq::engine

#endif // FQ_ENGINE_TEMPLATE_CACHE_H
