/**
 * @file
 * Reducer: fold per-task results back into the driver's public report
 * types. Reduction is serial and runs in plan order, so it is independent
 * of the execution schedule — the third leg (after planning and indexed
 * result slots) of the engine's determinism guarantee.
 */
#ifndef FQ_ENGINE_REDUCER_H
#define FQ_ENGINE_REDUCER_H

#include <vector>

#include "engine/plan.h"
#include "frozenqubits/driver.h"
#include "sim/counts.h"

namespace fq::engine {

/**
 * Build the baseline-vs-FrozenQubits Report from the executed plan:
 * per-task CircuitStats in plan order plus the baseline arm's stats.
 */
frozenqubits::Report reduce_report(
    const ExecutionPlan& plan, const frozenqubits::CircuitStats& baseline,
    std::vector<frozenqubits::CircuitStats> per_task);

/**
 * Build the SampledSolve from per-task output distributions (plan order):
 * mirror distributions are inferred by bit flipping (Section 3.7.2), then
 * the best lifted outcome across all 2^m sub-spaces is decoded.
 */
frozenqubits::SampledSolve reduce_sampling(
    const ising::IsingModel& model, const ExecutionPlan& plan,
    const std::vector<sim::Counts>& per_task);

} // namespace fq::engine

#endif // FQ_ENGINE_REDUCER_H
