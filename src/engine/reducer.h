/**
 * @file
 * Reducer: fold per-task results back into the driver's public report
 * types. The flat helpers reduce serially in plan order; the
 * StreamingReducer folds tree-leaf results into an incumbent best decode
 * AS THEY LAND, so a budgeted solve can report anytime quality. Both are
 * schedule-independent: the streaming incumbent is a minimum with a
 * deterministic (cost, leaf-id) tie-break, so arrival order — and thus
 * thread count — can never change the outcome.
 */
#ifndef FQ_ENGINE_REDUCER_H
#define FQ_ENGINE_REDUCER_H

#include <limits>
#include <mutex>
#include <utility>
#include <vector>

#include "engine/plan.h"
#include "engine/scheduler.h"
#include "engine/solve_tree.h"
#include "frozenqubits/driver.h"
#include "sim/counts.h"

namespace fq::engine {

/**
 * Build the baseline-vs-FrozenQubits Report from the executed plan:
 * per-task CircuitStats in plan order plus the baseline arm's stats.
 */
frozenqubits::Report reduce_report(
    const ExecutionPlan& plan, const frozenqubits::CircuitStats& baseline,
    std::vector<frozenqubits::CircuitStats> per_task);

/**
 * Build the SampledSolve from per-task output distributions (plan order):
 * mirror distributions are inferred by bit flipping (Section 3.7.2), then
 * the best lifted outcome across all 2^m sub-spaces is decoded.
 */
frozenqubits::SampledSolve reduce_sampling(
    const ising::IsingModel& model, const ExecutionPlan& plan,
    const std::vector<sim::Counts>& per_task);

/**
 * Streaming tree reduction. The scheduler calls fold() from worker threads
 * as each leaf's sampled distribution lands; finish() assembles the final
 * SampledSolve plus the rank-order anytime trace once every scheduled leaf
 * completed.
 *
 * Decoding per leaf: freeze-lineage outcomes cost exactly their sub-model
 * energy (the offset bookkeeping of Table 2), so the leaf's best candidate
 * is the histogram's min-cost state lifted to the original space.
 * Partition-lineage outcomes only cover the fragment's spins; the decode
 * fills the rest from the classical presolve assignment and greedy-repairs
 * on the original model (the D&C stitch, Section 1).
 *
 * Flat trees finish through the legacy 2^m-distribution path (decode_best
 * over mirror-completed distributions), so a default-config solve is
 * bit-identical to the flat engine.
 */
class StreamingReducer
{
  public:
    StreamingReducer(const ising::IsingModel& original,
                     const SolveTree& tree, const LeafSchedule& schedule);

    /** Fold one executed leaf's distribution (thread-safe). */
    void fold(int leaf_id, sim::Counts counts);

    /** Snapshot of the current best decode (thread-safe; anytime). */
    struct Incumbent
    {
        bool valid = false;
        double cost = std::numeric_limits<double>::infinity();
        ising::SpinVector assignment;
        int leaf = -1; ///< -1 = classical presolve

        /**
         * The ONE deterministic merge rule (live fold and anytime replay
         * must share it): strictly better cost wins; at equal cost a
         * quantum decode beats the presolve and the lowest leaf id beats
         * later leaves. Arrival order can never change the result.
         */
        bool accepts(double candidate_cost, int candidate_leaf) const
        {
            if (candidate_cost ==
                std::numeric_limits<double>::infinity())
                return false;
            if (!valid)
                return true;
            return candidate_cost < cost ||
                   (candidate_cost == cost &&
                    (leaf == -1 || candidate_leaf < leaf));
        }
    };
    Incumbent incumbent() const;

    /**
     * Deterministic epoch snapshot for adaptive re-ranking: the incumbent
     * over exactly the FIRST @p folded leaves of the schedule (rank order),
     * replayed with the live merge rule from the presolve baseline. Later
     * leaves that may also have folded are ignored, so the snapshot is a
     * pure function of the request's fold count — never of wave
     * composition or tenant interleaving. All @p folded leaves must have
     * folded (the wave barrier guarantees it); FQ_REQUIREd otherwise.
     */
    EpochIncumbent epoch_snapshot(std::size_t folded) const;

    /**
     * Raw sampled histograms of the FIRST @p folded scheduled leaves, as
     * (leaf id, counts) pairs in rank order — the checkpoint payload of a
     * durable solve (engine/checkpoint.h). Decoding is deterministic, so
     * re-fold()ing these into a freshly planned reducer reproduces
     * outcomes, incumbent and anytime trace bit for bit. All @p folded
     * leaves must have folded (the wave barrier guarantees it);
     * FQ_REQUIREd otherwise. Thread-safe.
     */
    std::vector<std::pair<int, sim::Counts>>
    export_folded(std::size_t folded) const;

    /** Final result; call once after every scheduled leaf folded. */
    frozenqubits::SampledSolve finish();

  private:
    struct LeafOutcome
    {
        bool done = false;
        sim::Counts counts;
        double best_cost = std::numeric_limits<double>::infinity();
        ising::SpinVector best_assignment;
    };

    LeafOutcome decode(int leaf_id, sim::Counts counts) const;
    frozenqubits::SampledSolve finish_flat() const;

    const ising::IsingModel& original_;
    const SolveTree& tree_;
    const LeafSchedule& schedule_;
    ising::SpinVector base_;

    mutable std::mutex mutex_;
    std::vector<LeafOutcome> outcomes_; ///< by leaf id
    Incumbent incumbent_;
};

} // namespace fq::engine

#endif // FQ_ENGINE_REDUCER_H
