/**
 * @file
 * SolveService: cross-solve request batching over one ExecutionEngine.
 *
 * FrozenQubits' 2^m sub-problem fan-out only amortizes at service scale
 * when ONE engine's thread pool and template/fused-program caches are
 * shared across many concurrent solve requests, not just within one
 * instance (the Skipper observation: throughput comes from batching
 * independent sub-circuits across problems). The service accepts
 * concurrent submit() calls, plans each request on the submitter's thread
 * (tree + schedule + streaming reducer — cache-served planning runs
 * concurrently across tenants), and an assembler thread coalesces the
 * per-request leaf schedules into shared executor WAVES:
 *
 *   wave assembly — the shared wave-loop packing (wave_loop.h): fair
 *       round-robin across active tenants in submission order (rotating
 *       start), one leaf per tenant per pass, cost-weighted slots (a leaf
 *       charges 2^width units so one wide tenant cannot stall a wave's
 *       tail), honoring each request's budget-cut schedule, its optional
 *       DriverConfig::wave_share per-wave cap and its re-rank boundary;
 *   wave execution — one BatchExecutor::run_queue drain over the mixed
 *       queue; each leaf simulates through the same
 *       simulate_scheduled_leaf path as a solo solve and folds into ITS
 *       OWN request's StreamingReducer;
 *   post-barrier scan — requests whose fold count reached their next
 *       rerank_interval boundary re-rank their un-dispatched leaves
 *       against their own reducer's epoch snapshot; requests whose
 *       scheduled leaves have all folded finish their reduction and
 *       fulfil their future / completion callback.
 *
 * Determinism contract: per-request results are bit-identical to a solo
 * ExecutionEngine::solve at any thread count, regardless of how tenants
 * interleave. Every order-dependent decision is fixed at plan time (leaf
 * RNG streams, schedule, budget cut), the reducer's fold is order
 * independent by design, leaf execution is a pure function of the plan,
 * and an adaptive re-rank is a pure function of the request's OWN fold
 * count (epoch snapshot over exactly the first k scheduled leaves, never
 * the service-global wave index) — so wave composition can only change
 * WHEN a leaf runs, never what it produces.
 *
 * Admission control: Config::max_queue_depth bounds the in-flight request
 * count; submit() past it throws AdmissionError instead of queuing
 * unboundedly. Deadline-aware admission: a request carrying
 * DriverConfig::deadline_cost_units is rejected with DeadlineError when
 * the serial backlog ahead of it (every active tenant's un-dispatched
 * leaves, in 2^width wave-slot cost units) plus its own schedule projects
 * past the deadline — shedding at submit time instead of burning waves on
 * an answer that will arrive too late.
 *
 * Durable solves: submit() with an on_checkpoint callback (and
 * DriverConfig::checkpoint_interval > 0) snapshots the request at fold
 * boundaries; submit_resume() re-admits a snapshot mid-schedule — in the
 * same service or another process — with results bit-identical to an
 * uninterrupted run (engine/checkpoint.h).
 *
 * Threading: submit() may be called from any thread. The engine's executor
 * is driven only by the service's assembler thread (the engine contract of
 * one driver at a time); do not call engine.solve()/run() directly while a
 * service holds the engine.
 */
#ifndef FQ_ENGINE_SOLVE_SERVICE_H
#define FQ_ENGINE_SOLVE_SERVICE_H

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/error.h"
#include "engine/engine.h"
#include "engine/reducer.h"
#include "engine/wave_loop.h"

namespace fq::engine {

/**
 * Thrown by SolveService::submit when admission control rejects a request
 * (queue depth at Config::max_queue_depth). Typed so callers can tell
 * backpressure apart from planning failures and retry/shed accordingly.
 */
class AdmissionError : public fq::Error
{
  public:
    explicit AdmissionError(const std::string& what) : fq::Error(what) {}
};

class SolveService
{
  public:
    /** Service-wide tuning (per-request knobs live in DriverConfig). */
    struct Config
    {
        /**
         * Leaf slots per shared wave, priced in units of the cheapest
         * pending leaf (a leaf charges 2^width units — wave_loop.h), so a
         * wide tenant consumes proportionally more of a wave instead of
         * stalling its tail. Larger waves amortize the fork-join barrier
         * better; smaller waves complete short requests sooner.
         * 0 = auto: 2x the engine's worker threads.
         */
        int wave_size = 0;
        /**
         * Admission control: maximum requests in flight (queued or
         * executing). submit() beyond it throws AdmissionError instead of
         * queuing unboundedly. 0 = unlimited (legacy behaviour).
         */
        int max_queue_depth = 0;
    };

    /** Per-request observability, available once the request completed. */
    struct TenantDiagnostics
    {
        std::uint64_t request_id = 0;
        /** Final schedule size: the plan-time budget cut, minus leaves an
         *  adaptive re-rank pruned or demoted mid-run. */
        int leaves_scheduled = 0;
        int leaves_executed = 0;  ///< folded leaves (== scheduled on success)
        int waves = 0;            ///< waves this request contributed to
        /** Fused-program cache traffic attributed to this tenant. */
        std::uint64_t fused_lookups = 0;
        std::uint64_t fused_hits = 0;
        /** Per-backend split of the fused-cache traffic (plan-time leaf
         *  backend tags; scalar + simd == the totals above). */
        std::uint64_t fused_lookups_scalar = 0;
        std::uint64_t fused_hits_scalar = 0;
        std::uint64_t fused_lookups_simd = 0;
        std::uint64_t fused_hits_simd = 0;
        /** fused_hits / fused_lookups (0 when the request never fused). */
        double cache_hit_share = 0.0;
        /** Fused programs this tenant materialized by patching a family
         *  skeleton instead of rebuilding circuits (exec-time count; a
         *  subset of fused_lookups - fused_hits). */
        std::uint64_t family_binds = 0;
        /** Plan-time template-tier split of this tenant's executed leaves
         *  (SolveLeaf::tier: resident / family-patch / from-scratch). */
        int leaves_tier_hit = 0;
        int leaves_tier_bind = 0;
        int leaves_tier_compile = 0;
        /** Per-reduction-arm split of this tenant's leaves, indexed by
         *  node_kind_index() over the kind-metadata table
         *  (engine/expander.h; arm = parent node kind, leaf_arm_kind):
         *  leaves run / leaves planned-but-dropped (domination + budget) /
         *  2^width wave-slot units the executed leaves spent. The
         *  serve-batch trace surface for mixed-vocabulary trees. */
        std::array<int, kNumNodeKinds> kind_leaves_executed{};
        std::array<int, kNumNodeKinds> kind_leaves_pruned{};
        std::array<long long, kNumNodeKinds> kind_budget_units{};
        /**
         * Mean share of the wave slots this tenant held across the waves it
         * rode (1.0 = had every wave to itself; 1/K under K equal tenants)
         * — the fairness / batching-benefit metric.
         */
        double wave_occupancy = 0.0;
        /** submit() return -> first leaf simulation start. */
        double queue_latency_ms = 0.0;
        /** submit() return -> completion (reduction included). */
        double wall_ms = 0.0;
        /** Adaptive re-ranking activity (0 when rerank_interval is off). */
        int reranks = 0;
        int rerank_pruned = 0;   ///< stale dominated leaves never executed
        int rerank_promoted = 0; ///< beyond-budget leaves re-admitted
        int rerank_demoted = 0;  ///< scheduled leaves cut by a re-rank

        // ------------------------------------------------- durability --
        int checkpoints = 0;     ///< snapshots handed to on_checkpoint
        /** Schedule cursor the request resumed from; -1 = fresh submit. */
        int resumed_from = -1;
        /** Leaves demoted by the deadline trim (plan time + re-ranks). */
        int deadline_trimmed = 0;
        /** Completed early (deadline trim or checkpoint suspension): the
         *  result is the anytime incumbent, not the full schedule. */
        bool degraded = false;

        // -------------------------------------- distributed execution --
        /** Leaves folded from remote worker replies (0 unless a
         *  net::WorkerPool is attached to the engine). */
        long long leaves_remote = 0;
        /** Leaves the local BatchExecutor simulated for this request. */
        long long leaves_local = 0;
        /** Remote leaves re-run locally after their worker died. */
        long long leaves_redispatched = 0;
        long long remote_bytes_sent = 0;     ///< wire bytes out
        long long remote_bytes_received = 0; ///< wire bytes in
        /** Per-worker leaf dispatch counts, keyed by worker address. */
        std::vector<std::pair<std::string, long long>> worker_dispatches;
    };

    /** Service-wide counters (snapshot; monotone while the service lives). */
    struct Stats
    {
        std::uint64_t requests_submitted = 0;
        std::uint64_t requests_completed = 0;
        std::uint64_t requests_failed = 0;
        /** Requests shed at submit because the projected completion
         *  (backlog + own schedule) exceeded their deadline_cost_units,
         *  or because the deadline could not cover even one leaf. */
        std::uint64_t requests_rejected_deadline = 0;
        std::uint64_t waves_executed = 0;
        /** Leaves actually simulated across all waves (skipped slots of
         *  failed tenants do not count). */
        std::uint64_t wave_slots = 0;
        /** wave_slots / (waves_executed * engine threads): how full the
         *  worker pool ran (dead slots of failed tenants excluded).
         *  > 1 means waves were deeper than the pool. */
        double mean_pool_fill = 0.0;
    };

    /** Handle to one submitted request. */
    class Ticket
    {
      public:
        Ticket() = default;

        std::uint64_t id() const { return id_; }

        /** Block for the result; rethrows the request's failure, if any.
         *  May be called at most once per ticket copy chain (the result is
         *  moved out). */
        frozenqubits::SampledSolve get() { return future_.get(); }

        /** Block until the request completed (result still retrievable). */
        void wait() const { future_.wait(); }

      private:
        friend class SolveService;
        std::uint64_t id_ = 0;
        std::future<frozenqubits::SampledSolve> future_;
    };

    /** Called on the assembler thread when a request completes cleanly.
     *  By the time it runs, the request's diagnostics() and the service
     *  stats() are published, so the callback may read them — but it MUST
     *  NOT call drain() (the assembler is blocked inside the callback:
     *  guaranteed deadlock) and must not throw (a throw is contained — the
     *  future still delivers the result — but the exception is dropped). */
    using CompletionCallback =
        std::function<void(std::uint64_t request_id,
                           const frozenqubits::SampledSolve&)>;

    /** Called on the assembler thread at each of a durable request's
     *  checkpoint boundaries (DriverConfig::checkpoint_interval) with a
     *  snapshot resumable via submit_resume / ExecutionEngine::resume.
     *  Return false to SUSPEND the request: it completes early with its
     *  anytime incumbent flagged degraded while the snapshot carries the
     *  full solve elsewhere — the migration primitive. Same contract as
     *  CompletionCallback: MUST NOT call drain() (the assembler is blocked
     *  inside the callback) and must not throw (a throw is swallowed and
     *  treated as "continue"). */
    using CheckpointCallback =
        std::function<bool(std::uint64_t request_id,
                           const SolveCheckpoint&)>;

    explicit SolveService(ExecutionEngine& engine);
    SolveService(ExecutionEngine& engine, Config config);

    /** Drains every pending request, then stops the assembler. */
    ~SolveService();

    SolveService(const SolveService&) = delete;
    SolveService& operator=(const SolveService&) = delete;

    /**
     * Submit one solve request. Planning (tree construction, scheduling,
     * template-cache resolution) runs on the CALLING thread before this
     * returns — concurrent submitters plan concurrently against the shared
     * cache. @p seed plays the role of the Rng argument of a solo
     * ExecutionEngine::solve: a request's result is bit-identical to
     * `Rng rng(seed); engine.solve(model, dev, config, shots, rng)` —
     * including adaptive re-ranking (config.rerank_interval), whose epoch
     * boundaries depend only on this request's own fold count.
     * Throws on planning failure (nothing is enqueued), AdmissionError
     * when Config::max_queue_depth requests are already in flight, and
     * DeadlineError when config.deadline_cost_units is set and either no
     * leaf fits the deadline or the backlog of active tenants plus this
     * request's own schedule projects past it.
     *
     * @p on_checkpoint, combined with config.checkpoint_interval > 0,
     * makes the request durable (snapshots at fold boundaries; see
     * CheckpointCallback). Checkpoint barriers never change results.
     */
    Ticket submit(const ising::IsingModel& model, const device::Device& dev,
                  const frozenqubits::DriverConfig& config, int shots,
                  std::uint64_t seed,
                  CompletionCallback on_complete = nullptr,
                  CheckpointCallback on_checkpoint = nullptr);

    /**
     * Re-admit a checkpointed request mid-schedule: replan from the
     * snapshot's seed, fingerprint-check identity (CheckpointError on any
     * mismatch), re-fold the recorded outcomes and continue from the
     * snapshot's cursor alongside other tenants. The combined
     * checkpoint-then-resume result is bit-identical to the uninterrupted
     * request. Admission applies the queue-depth check but NOT the
     * deadline backlog projection — a migrated request was already
     * admitted once, and bouncing it between shards would strand it.
     */
    Ticket submit_resume(const ising::IsingModel& model,
                         const device::Device& dev,
                         const frozenqubits::DriverConfig& config,
                         int shots, const SolveCheckpoint& snapshot,
                         CompletionCallback on_complete = nullptr,
                         CheckpointCallback on_checkpoint = nullptr);

    /** Block until every request submitted so far has completed. */
    void drain();

    /** Diagnostics of a COMPLETED request. Throws for unknown or pending
     *  ids — including completed requests older than the FIFO retention
     *  cap (the most recent ~4k completions are kept). */
    TenantDiagnostics diagnostics(std::uint64_t request_id) const;

    Stats stats() const;

    /** Resolved leaf slots per wave (the Config::wave_size auto default). */
    int wave_size() const { return wave_size_; }

  private:
    using Clock = std::chrono::steady_clock;

    /** One in-flight request; heap-pinned so the reducer's references into
     *  the owning struct stay valid for the request's lifetime. */
    struct Request
    {
        std::uint64_t id = 0;
        ising::IsingModel model;
        device::Device dev;
        frozenqubits::DriverConfig config;
        int shots = 0;

        SolveTree tree;
        LeafSchedule schedule;
        /** Constructed after tree/schedule are in their final location. */
        std::optional<StreamingReducer> reducer;

        /** Wave-loop view of this request (dispatch cursor, re-rank
         *  boundaries, epoch count); pointers wired into the fields above
         *  once they reached their final heap location. */
        WaveRequest wave;

        std::promise<frozenqubits::SampledSolve> promise;
        CompletionCallback on_complete;
        CheckpointCallback on_checkpoint;

        /** Wave-slot cost units (2^width per leaf) still ahead of this
         *  request's cursor. Maintained by the assembler after every wave
         *  and boundary scan; read by submit()'s deadline backlog
         *  projection from other threads, hence atomic. */
        std::atomic<long long> pending_cost{0};
        int checkpoints = 0;   ///< assembler-thread only
        int resumed_from = -1; ///< schedule cursor restored from (-1 = fresh)

        /** First failure among this request's leaves (poisons only this
         *  request; the wave and other tenants are unaffected). */
        std::atomic<bool> failed{false};
        std::exception_ptr error; ///< guarded by error_mutex
        std::mutex error_mutex;

        // ------------------------------------------------- diagnostics --
        Clock::time_point submitted;
        std::atomic<bool> started{false};
        Clock::time_point first_exec; ///< guarded by error_mutex
        std::atomic<std::uint64_t> fused_lookups{0};
        std::atomic<std::uint64_t> fused_hits{0};
        /** Per-backend split (see TenantDiagnostics). */
        std::atomic<std::uint64_t> fused_lookups_scalar{0};
        std::atomic<std::uint64_t> fused_hits_scalar{0};
        std::atomic<std::uint64_t> fused_lookups_simd{0};
        std::atomic<std::uint64_t> fused_hits_simd{0};
        /** Exec-time family-skeleton binds (TemplateTier::Bind folds). */
        std::atomic<std::uint64_t> family_binds{0};
        std::atomic<int> leaves_folded{0};
        int waves = 0;               ///< assembler-thread only
        double occupancy_sum = 0.0;  ///< assembler-thread only
    };

    /** A completed request's reduced result, staged between reduction and
     *  promise/callback delivery so diagnostics publish first. */
    struct Outcome
    {
        TenantDiagnostics diag;
        frozenqubits::SampledSolve solved;
        std::exception_ptr error; ///< non-null = the request failed
    };

    /** Throw AdmissionError when the in-flight count (active + finishing)
     *  is at max_queue_depth_. Call with mutex_ held, depth policy on. */
    void admit_or_throw_locked() const;
    /** Throw DeadlineError (counting the rejection) when the active
     *  tenants' pending cost plus @p own_cost exceeds @p deadline. Call
     *  with mutex_ held, deadline > 0. */
    void deadline_or_throw_locked(long long deadline, long long own_cost);
    /** Shared enqueue tail of submit / submit_resume: re-check admission
     *  (and, for fresh submits, the deadline backlog) under the lock,
     *  assign the id, publish to active_. */
    Ticket enqueue_request(std::unique_ptr<Request> request,
                           bool check_deadline);
    void assembler_loop();
    /** Drive the shared wave-loop assembly over the live tenants (fair
     *  round-robin + wave_share + cost weighting + re-rank boundary caps)
     *  and keep the per-tenant wave bookkeeping. */
    std::vector<WaveSlot> assemble_wave_locked();
    /** Returns how many wave slots actually simulated (a failed tenant's
     *  remaining slots are skipped dead weight). */
    int run_wave(const std::vector<WaveSlot>& wave);
    /** Final reduction + diagnostics; never throws (failures land in
     *  Outcome::error). Runs on the assembler thread without the lock. */
    Outcome reduce_request(Request& request);
    /** Fulfil the promise / completion callback. Runs without the lock,
     *  AFTER the outcome's diagnostics were published. */
    void deliver(Request& request, Outcome& outcome);

    ExecutionEngine& engine_;
    int wave_size_;
    int max_queue_depth_; ///< 0 = unlimited

    mutable std::mutex mutex_;
    std::condition_variable work_available_;
    std::condition_variable request_done_;
    bool stopping_ = false;
    std::uint64_t next_id_ = 1;
    std::size_t rotate_ = 0; ///< rotating round-robin start index

    /** Active requests in submission order (stable heap storage). */
    std::deque<std::unique_ptr<Request>> active_;
    /** Requests pulled out of active_ whose promises are being fulfilled
     *  (drain() must not return while any exist). */
    std::size_t finishing_ = 0;
    /** Diagnostics of recently completed requests, FIFO-capped so a
     *  process-lifetime service cannot grow without bound. */
    std::unordered_map<std::uint64_t, TenantDiagnostics> completed_;
    std::deque<std::uint64_t> completed_order_;
    Stats stats_;

    std::thread assembler_;
};

} // namespace fq::engine

#endif // FQ_ENGINE_SOLVE_SERVICE_H
