/**
 * @file
 * ExecutionEngine: the plan / execute / reduce orchestration layer.
 *
 * FrozenQubits' core cost is running 2^{m-1} independent sub-problem
 * circuits per instance (Sections 3.5/3.7). The engine splits that work
 * into three strictly separated stages:
 *
 *   Planner        (plan.h)           — serial; freeze assignments, mirror
 *                                       links, shared compiled template,
 *                                       per-task RNG stream seeds;
 *   BatchExecutor  (batch_executor.h) — parallel; fixed thread pool,
 *                                       per-worker Statevector scratch,
 *                                       results keyed by task index;
 *   Reducer        (reducer.h)        — serial; folds per-task results
 *                                       into Report / SampledSolve.
 *
 * Determinism guarantee: the plan fixes every order-dependent decision
 * before any task runs, tasks own disjoint result slots and private RNG
 * streams derived from (seed, sub-problem index), and reduction runs in
 * plan order — so any thread count produces bit-identical results.
 *
 * solve() executes through the wave-synchronous epoch loop
 * (wave_loop.h), shared with the multi-tenant SolveService; adaptive
 * budget re-ranking (DriverConfig::rerank_interval) rewrites the
 * schedule's un-dispatched tail between epochs as a pure function of the
 * fold count, preserving the guarantee above.
 *
 * The legacy driver API (run_pipeline / evaluate_instance /
 * solve_with_sampling) is a thin facade over this class; hold an engine
 * directly to reuse its thread pool and template cache across calls
 * (benchmark sweeps, servers). One engine instance must be driven from one
 * thread at a time; parallelism lives inside.
 */
#ifndef FQ_ENGINE_ENGINE_H
#define FQ_ENGINE_ENGINE_H

#include <array>
#include <string>
#include <utility>
#include <vector>

#include "engine/batch_executor.h"
#include "engine/checkpoint.h"
#include "engine/expander.h"
#include "engine/plan.h"
#include "engine/reducer.h"
#include "engine/scheduler.h"
#include "engine/solve_tree.h"
#include "engine/template_cache.h"
#include "engine/wave_loop.h"
#include "frozenqubits/driver.h"

namespace fq::engine {

class SolveService;

/**
 * Simulate one scheduled leaf of @p tree: tune its angles, resolve noise
 * quantities from the freeze level's shared template (or compile the leaf
 * directly when the structure diverged), run the fused or gate-by-gate
 * statevector into @p scratch and sample noisy counts on the leaf's private
 * plan-derived RNG stream.
 *
 * The ONE leaf-execution definition, shared by ExecutionEngine::solve and
 * the SolveService's cross-request waves: a pure function of
 * (cache contents, tree, leaf, dev, config, shots), so WHERE a leaf runs —
 * which worker, which wave, alongside whose leaves — can never change its
 * counts. @p fused_hit, when non-null, reports whether the fused program
 * was served from @p cache (per-tenant cache-share accounting).
 * @p fuse_tier, when non-null, reports HOW the fused program materialized
 * (Hit / Bind / Compile — see TemplateTier); gate-by-gate leaves report
 * Compile.
 */
sim::Counts simulate_scheduled_leaf(TemplateCache& cache,
                                    const SolveTree& tree, int leaf_id,
                                    const device::Device& dev,
                                    const frozenqubits::DriverConfig& config,
                                    int shots,
                                    BatchExecutor::Scratch& scratch,
                                    bool* fused_hit = nullptr,
                                    TemplateTier* fuse_tier = nullptr);

class ExecutionEngine
{
  public:
    /** Per-invocation observability (overwritten by each run/solve). */
    struct Diagnostics
    {
        int num_subproblems = 0;     ///< 2^m
        int tasks_executed = 0;      ///< 2^{m-1} with pruning
        int mirrors_inferred = 0;    ///< sub-spaces served by bit flipping
        /** Circuits served by the shared template (an RZ-angle edit away,
         *  Section 3.7.1) instead of their own transpiler run. */
        int template_edits = 0;
        bool template_cache_hit = false;
        /** Sampled tasks simulated through the fused QAOA fast path.
         *  Only solve() simulates; run()/evaluate() are analytic and
         *  always report false. */
        bool fused_simulation = false;
        std::vector<int> executed_subproblems; ///< solved indices
        std::vector<int> pruned_subproblems;   ///< mirror (never-run) indices
        double wall_ms = 0.0;
        int threads = 1;

        // --------------------------------------- SolveTree solves only --
        int tree_depth = 0;           ///< deepest node level (flat = 1)
        int tree_nodes = 0;           ///< total tree nodes
        int leaves_total = 0;         ///< executable leaves planned
        int leaves_beyond_budget = 0; ///< ranked leaves cut by max_circuits
        int leaves_pruned = 0;        ///< dropped by bound domination
        bool scheduler_scored = false;///< SA-ranked (vs plan order)
        /** Scheduled-leaf kernel backends (plan-time choice; see
         *  SolveLeaf::backend). Non-fused leaves run gate-by-gate and
         *  count under neither. */
        int leaves_scalar_backend = 0;
        int leaves_simd_backend = 0;
        /** Scheduled-leaf template tiers (plan-time preview; see
         *  SolveLeaf::tier): fused program already resident / family
         *  skeleton to patch / from-scratch build. */
        int leaves_tier_hit = 0;
        int leaves_tier_bind = 0;
        int leaves_tier_compile = 0;
        /**
         * Per-reduction-arm counters, indexed by node_kind_index() over
         * the kind-metadata table (engine/expander.h). A scheduled
         * leaf's arm is its parent node's kind (leaf_arm_kind):
         * executed = leaves scheduled to run under that arm, pruned =
         * leaves dropped by domination pruning or the circuit budget,
         * budget units = 2^width slot cost the executed leaves spend —
         * the observability for mixed-vocabulary trees.
         */
        std::array<int, kNumNodeKinds> kind_leaves_executed{};
        std::array<int, kNumNodeKinds> kind_leaves_pruned{};
        std::array<long long, kNumNodeKinds> kind_budget_units{};

        // --------------------------------- wave-synchronous epochs only --
        int epochs = 0;               ///< waves the solve rode (1 = flat batch)
        int reranks = 0;              ///< adaptive re-ranks applied
        int rerank_pruned = 0;        ///< stale dominated leaves dropped mid-run
        int rerank_promoted = 0;      ///< beyond-budget leaves re-admitted
        int rerank_demoted = 0;       ///< scheduled leaves cut by a re-rank
        /** Plan-time scheduled order (same index space as
         *  executed_subproblems), captured before any re-rank rewrote the
         *  tail — the plan side of a plan-vs-adaptive trace. Only filled
         *  when re-ranking is active. */
        std::vector<int> planned_subproblems;

        // ------------------------------------------- durable solves only --
        int checkpoints = 0;      ///< snapshots handed to the sink
        /** Schedule cursor the solve resumed from; -1 = fresh solve. */
        int resumed_from = -1;
        /** Leaves demoted by the deadline trim (plan time + re-ranks). */
        int deadline_trimmed = 0;

        // -------------------------------------- distributed execution --
        /** Leaves folded from remote worker replies (0 without a
         *  WorkerPool attached). */
        long long leaves_remote = 0;
        /** Leaves the local BatchExecutor simulated (everything, when no
         *  WorkerPool is attached). */
        long long leaves_local = 0;
        /** Remote leaves re-run locally after their worker died. */
        long long leaves_redispatched = 0;
        long long remote_bytes_sent = 0;     ///< wire bytes out
        long long remote_bytes_received = 0; ///< wire bytes in
        /** Per-worker leaf dispatch counts, keyed by worker address. */
        std::vector<std::pair<std::string, long long>> worker_dispatches;
    };

    /** @p num_threads: 0 = auto (hardware concurrency). */
    explicit ExecutionEngine(int num_threads = 0);

    int num_threads() const { return executor_.num_threads(); }

    /** Full baseline-vs-FrozenQubits comparison (run_pipeline semantics). */
    frozenqubits::Report run(const ising::IsingModel& model,
                             const device::Device& dev,
                             const frozenqubits::DriverConfig& config);

    /** One circuit-arm evaluation (evaluate_instance semantics). */
    frozenqubits::CircuitStats evaluate(const ising::IsingModel& model,
                                        const device::Device& dev,
                                        const frozenqubits::DriverConfig&
                                            config);

    /**
     * Sampled end-to-end solve (solve_with_sampling semantics), executed
     * over the hierarchical SolveTree: recursive freezing
     * (config.max_depth), hybrid bisection (config.partition_width),
     * best-first budgeted leaf scheduling (config.max_circuits) and
     * streaming reduction. A default config (flat, unlimited) reproduces
     * the flat engine bit for bit.
     */
    frozenqubits::SampledSolve solve(const ising::IsingModel& model,
                                     const device::Device& dev,
                                     const frozenqubits::DriverConfig&
                                         config,
                                     int shots, Rng& rng);

    /**
     * Durable solve: identical to the Rng overload with `Rng rng(seed)`,
     * plus checkpointing. When @p sink is set and
     * config.checkpoint_interval > 0, the wave loop pauses every
     * interval folded leaves and hands @p sink a SolveCheckpoint
     * (engine/checkpoint.h); a false return suspends the solve, which
     * then completes with its anytime incumbent flagged degraded while
     * the last snapshot resumes the full solve elsewhere. Checkpoint
     * barriers never change results — this overload without a sink is
     * bit-identical to the Rng overload.
     *
     * Deadline admission: when config.deadline_cost_units > 0 the
     * schedule is trimmed to the leaves that fit at plan time (typed
     * DeadlineError when not even one does) and re-trimmed after each
     * adaptive re-rank; a trimmed result is flagged degraded.
     * (The Rng overload applies the same deadline semantics.)
     */
    frozenqubits::SampledSolve solve(const ising::IsingModel& model,
                                     const device::Device& dev,
                                     const frozenqubits::DriverConfig&
                                         config,
                                     int shots, std::uint64_t seed,
                                     const CheckpointSink& sink = {});

    /**
     * Resume a durable solve from @p snapshot: replan from the snapshot's
     * seed, fingerprint-check identity (CheckpointError on any mismatch —
     * see restore_checkpoint), re-fold the recorded outcomes and continue
     * mid-schedule. The combined checkpoint-then-resume result is
     * bit-identical to the uninterrupted solve, at any thread count.
     * @p sink re-arms checkpointing for the resumed run.
     */
    frozenqubits::SampledSolve resume(const ising::IsingModel& model,
                                      const device::Device& dev,
                                      const frozenqubits::DriverConfig&
                                          config,
                                      int shots,
                                      const SolveCheckpoint& snapshot,
                                      const CheckpointSink& sink = {});

    const TemplateCache& template_cache() const { return cache_; }
    const Diagnostics& last_diagnostics() const { return diagnostics_; }

    /**
     * The executor seam (engine/wave_loop.h): every wave this engine (or
     * a SolveService over it) dispatches goes through leaf_executor().
     * Default: the engine's own LocalLeafExecutor. Attach a
     * net::WorkerPool (or any other backend) with set_leaf_executor —
     * the pool must outlive the engine's solves; nullptr restores the
     * local default. Where leaves execute never changes results
     * (simulate_scheduled_leaf is pure), so swapping backends is always
     * safe mid-lifetime, between solves.
     */
    void set_leaf_executor(LeafExecutor* executor)
    {
        leaf_executor_override_ = executor;
    }
    LeafExecutor& leaf_executor()
    {
        return leaf_executor_override_ ? *leaf_executor_override_
                                       : local_leaf_executor_;
    }
    /** The engine's own local backend — the WorkerPool's fallback arm. */
    LocalLeafExecutor& local_leaf_executor() { return local_leaf_executor_; }

    /**
     * Drop all cached templates (counters are kept). For callers that need
     * cold-compile semantics on a long-lived engine — e.g. timing loops
     * that must keep transpilation in the measurement.
     */
    void clear_template_cache() { cache_.clear(); }

  private:
    /** The SolveService multiplexes requests over this engine's executor
     *  and cache; it is the one sanctioned external driver. */
    friend class SolveService;

    frozenqubits::CircuitStats run_task(
        const ExecutionPlan& plan, const SubProblemTask& task,
        const device::Device& dev,
        const frozenqubits::DriverConfig& config);

    /** Shared body of the three solve entry points: plan (or replan for a
     *  resume), optionally restore @p restore_from, run the wave loop with
     *  an optional checkpoint sink, reduce. */
    frozenqubits::SampledSolve solve_impl(
        const ising::IsingModel& model, const device::Device& dev,
        const frozenqubits::DriverConfig& config, int shots, Rng& rng,
        std::uint64_t seed, const SolveCheckpoint* restore_from,
        const CheckpointSink& sink);

    void start_diagnostics(const ExecutionPlan& plan);
    void start_diagnostics(const SolveTree& tree,
                           const LeafSchedule& schedule);

    TemplateCache cache_;
    BatchExecutor executor_;
    LocalLeafExecutor local_leaf_executor_{cache_, executor_};
    LeafExecutor* leaf_executor_override_ = nullptr;
    Diagnostics diagnostics_;
};

} // namespace fq::engine

#endif // FQ_ENGINE_ENGINE_H
