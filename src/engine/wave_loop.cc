#include "engine/wave_loop.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/error.h"
#include "engine/engine.h"

namespace fq::engine {

namespace {

/** Cost-exponent cap: beyond this width the cost model saturates; leaves
 *  that wide cannot simulate anyway (kMaxSimQubits), so relative packing
 *  between them no longer matters. */
constexpr int kMaxCostExponent = 40;

} // namespace

long long
leaf_slot_cost(const SolveTree& tree, int leaf_id)
{
    return 1LL << std::min(tree.leaf_width(leaf_id), kMaxCostExponent);
}

std::vector<WaveSlot>
assemble_wave(const std::vector<WaveRequest*>& tenants, int wave_size,
              std::size_t rotate, std::vector<int>* taken_out)
{
    std::vector<WaveSlot> wave;
    if (taken_out)
        taken_out->assign(tenants.size(), 0);
    if (tenants.empty())
        return wave;
    const std::size_t n = tenants.size();

    // Cost budget: wave_size slots priced at the cheapest pending leaf, so
    // equal-width tenants pack exactly wave_size leaves per wave and wider
    // leaves charge proportionally more of the wave.
    long long min_cost = 0;
    for (const auto* r : tenants) {
        if (r->dispatched >= r->dispatch_limit())
            continue;
        const long long cost = leaf_slot_cost(
            *r->tree, r->schedule->executed[r->dispatched]);
        min_cost = min_cost == 0 ? cost : std::min(min_cost, cost);
    }
    if (min_cost == 0)
        return wave; // nothing pending anywhere
    const long long budget =
        static_cast<long long>(wave_size) * min_cost;

    // Fair round-robin with a rotating start, one leaf per tenant per
    // pass: under contention every tenant advances at the same rate, and
    // the rotation keeps the leftover capacity of a non-full pass from
    // always favouring the first tenant (so no tenant starves across
    // waves, even when the budget closes a wave early). The wave is
    // bounded both by wave_size SLOTS (the legacy latency/memory cap)
    // and by the cost budget; a wave's first leaf is always admitted
    // (progress guarantee), so an over-budget wide leaf rides a wave of
    // its own instead of wedging the queue.
    std::vector<int> taken(n, 0);
    const std::size_t start = rotate % n;
    long long spent = 0;
    bool progress = true;
    while (progress) {
        progress = false;
        for (std::size_t k = 0; k < n; ++k) {
            const std::size_t slot = (start + k) % n;
            WaveRequest& r = *tenants[slot];
            if (r.dispatched >= r.dispatch_limit())
                continue;
            // Per-request wave-share SELF-cap: a bulk tenant bounds how
            // many of its OWN leaves ride one wave, leaving the rest of
            // the capacity to co-tenants.
            if (r.config->wave_share > 0 &&
                taken[slot] >= r.config->wave_share)
                continue;
            if (!wave.empty() &&
                (static_cast<int>(wave.size()) >= wave_size ||
                 spent >= budget))
                continue; // slot cap / cost budget (first leaf exempt)
            const int leaf_id = r.schedule->executed[r.dispatched];
            wave.push_back({&r, leaf_id});
            spent += leaf_slot_cost(*r.tree, leaf_id);
            ++r.dispatched;
            ++taken[slot];
            progress = true;
        }
    }
    for (std::size_t slot = 0; slot < n; ++slot)
        if (taken[slot] > 0)
            ++tenants[slot]->epochs;
    if (taken_out)
        *taken_out = std::move(taken);
    return wave;
}

int
execute_wave(TemplateCache& cache, BatchExecutor& executor,
             const std::vector<WaveSlot>& wave, const WaveHooks& hooks)
{
    std::atomic<int> executed{0};
    std::vector<BatchExecutor::QueuedTask> queue;
    queue.reserve(wave.size());
    for (const auto& slot : wave) {
        queue.push_back([&cache, &hooks, &executed,
                         slot](BatchExecutor::Scratch& scratch) {
            if (hooks.admit && !hooks.admit(slot))
                return;
            executed.fetch_add(1, std::memory_order_relaxed);
            try {
                WaveRequest& r = *slot.request;
                bool fused_hit = false;
                TemplateTier fuse_tier = TemplateTier::Compile;
                auto counts = simulate_scheduled_leaf(
                    cache, *r.tree, slot.leaf_id, *r.dev, *r.config,
                    r.shots, scratch, &fused_hit, &fuse_tier);
                r.reducer->fold(slot.leaf_id, std::move(counts));
                if (hooks.folded)
                    hooks.folded(slot, fused_hit, fuse_tier);
            } catch (...) {
                if (!hooks.failed)
                    throw;
                hooks.failed(slot, std::current_exception());
            }
        });
    }
    executor.run_queue(queue);
    return executed.load(std::memory_order_acquire);
}

RerankOutcome
post_barrier_rerank(WaveRequest& request)
{
    RerankOutcome out;
    // Due only when the fold count landed exactly on the boundary — the
    // dispatch_limit cap guarantees it never overshoots — and the schedule
    // still has an un-dispatched tail (or budget-cut leaves) to re-rank.
    if (request.next_rerank == 0 ||
        request.dispatched != request.next_rerank || request.done())
        return out;
    const auto snapshot =
        request.reducer->epoch_snapshot(request.dispatched);
    out = rerank_schedule(*request.schedule, *request.model, *request.tree,
                          request.dispatched, snapshot);
    // Re-apply the deadline trim after the re-rank: promotions may have
    // refilled the tail past what the remaining deadline covers. Trimming
    // ONLY at plan time and re-rank boundaries keeps the trim a pure
    // function of the fold count — checkpoint barriers (whose placement
    // must not change results) never trigger one.
    apply_deadline_trim(*request.schedule, *request.tree,
                        request.config->deadline_cost_units,
                        request.dispatched);
    request.next_rerank +=
        static_cast<std::size_t>(request.config->rerank_interval);
    return out;
}

void
suspend_request(WaveRequest& request)
{
    auto& schedule = *request.schedule;
    FQ_ASSERT(request.dispatched <= schedule.executed.size(),
              "suspend with cursor past the schedule");
    for (std::size_t k = request.dispatched; k < schedule.executed.size();
         ++k)
        schedule.beyond_budget.push_back(schedule.executed[k]);
    schedule.executed.resize(request.dispatched);
    schedule.suspended = true;
}

bool
post_barrier_checkpoint(WaveRequest& request, const CheckpointHook& hook)
{
    if (request.next_checkpoint == 0 ||
        request.dispatched != request.next_checkpoint || request.done())
        return true;
    bool keep_going = true;
    if (hook)
        keep_going = hook(request);
    request.next_checkpoint +=
        static_cast<std::size_t>(request.config->checkpoint_interval);
    if (!keep_going)
        suspend_request(request);
    return keep_going;
}

void
run_wave_loop(LeafExecutor& executor, WaveRequest& request,
              const CheckpointHook& checkpoint)
{
    // A fresh request arms its boundaries here; one restored from a
    // checkpoint arrives with dispatched > 0 and its snapshot's re-rank
    // boundary already set — re-arming would rewind it below the cursor.
    if (request.dispatched == 0)
        arm_rerank(request);
    if (checkpoint)
        arm_checkpoint(request);
    while (!request.done()) {
        // One epoch: everything up to the next boundary (re-rank or
        // checkpoint) rides one wave — the whole schedule when both are
        // off: the pre-epoch single batch.
        const std::size_t limit = request.dispatch_limit();
        FQ_ASSERT(request.dispatched < limit,
                  "wave loop stalled before a boundary");
        std::vector<WaveSlot> wave;
        wave.reserve(limit - request.dispatched);
        for (; request.dispatched < limit; ++request.dispatched)
            wave.push_back({&request,
                            request.schedule->executed[request.dispatched]});
        ++request.epochs;
        executor.execute_wave(wave);
        post_barrier_rerank(request);
        post_barrier_checkpoint(request, checkpoint);
    }
}

void
run_wave_loop(TemplateCache& cache, BatchExecutor& executor,
              WaveRequest& request, const CheckpointHook& checkpoint)
{
    LocalLeafExecutor local(cache, executor);
    run_wave_loop(local, request, checkpoint);
}

} // namespace fq::engine
