#include "engine/plan.h"

#include "common/error.h"
#include "frozenqubits/hotspot.h"
#include "sim/statevector.h"

namespace fq::engine {

qaoa::BuildOptions
default_build_options()
{
    qaoa::BuildOptions build;
    build.num_layers = 1;
    build.keep_zero_linear_rz = true;
    return build;
}

ExecutionPlan
make_plan(const ising::IsingModel& model, const device::Device& dev,
          const frozenqubits::DriverConfig& config, TemplateCache& cache,
          Rng& rng)
{
    FQ_REQUIRE(config.num_freeze >= 1,
               "execution plan needs at least one frozen qubit");

    ExecutionPlan plan;
    plan.hotspots = frozenqubits::select_hotspots(model, config.num_freeze,
                                                  config.policy, rng);
    plan.stream_seed = rng();
    const std::uint64_t stream_seed = plan.stream_seed;
    plan.subproblems = frozenqubits::freeze_all(model, plan.hotspots);
    const auto entries = frozenqubits::plan_executions(
        model, config.num_freeze, config.symmetry_pruning);

    plan.tasks.reserve(entries.size());
    for (std::size_t k = 0; k < entries.size(); ++k) {
        SubProblemTask task;
        task.plan_index = static_cast<int>(k);
        task.solve = entries[k].solve;
        task.mirrors = entries[k].mirrors;
        task.rng_seed = subproblem_stream_seed(
            stream_seed, static_cast<std::uint64_t>(task.solve));
        plan.tasks.push_back(std::move(task));
    }

    plan.build = default_build_options();

    // Mark the plan fusable: every sub-problem of one freeze shares the
    // template's quadratic structure, so if one fits the fused-simulation
    // table width they all do. The fused program cache is keyed on
    // coefficient values, so each executed sibling compiles its own weight
    // tables once and reuses them across engine invocations.
    plan.fuse_simulation =
        config.fuse_simulation &&
        (plan.subproblems.empty() ||
         plan.subproblems.front().model.num_spins() <= sim::kMaxSimQubits);

    // Pre-resolve the shared template serially so parallel tasks never race
    // to compile: every sibling is edit-compatible with the first planned
    // sub-problem (identical quadratic structure by construction).
    //
    // With parametric templates on (the default) this goes through the
    // family tier: a warm-family plan costs a signature hash plus an O(E)
    // labeled verification instead of a transpile, and the family skeleton
    // rides along so leaf execution can bind coefficients instead of
    // rebuilding circuits. The noise quantities served either way are
    // identical — they are angle-independent, and the escape hatch
    // (--no-param-templates) is bit-identical by test.
    if (config.use_template_editing && !plan.tasks.empty()) {
        const auto& owner = plan.subproblems[plan.tasks.front().solve];
        if (config.parametric_templates) {
            auto binding = cache.get_or_bind(owner.model, dev,
                                             config.compile, plan.build);
            plan.family = binding.family;
            plan.family_tier = binding.tier;
            plan.compiled_template = binding.family->structural;
            plan.template_cache_hit = binding.tier != TemplateTier::Compile;
        } else {
            plan.compiled_template =
                cache.get_or_compile(owner.model, dev, config.compile,
                                     plan.build, &plan.template_cache_hit);
        }
    }
    return plan;
}

} // namespace fq::engine
