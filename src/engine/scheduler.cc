#include "engine/scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/error.h"
#include "engine/expander.h"
#include "engine/wave_loop.h"
#include "ising/sa_solver.h"

namespace fq::engine {

namespace {

/** Presolve effort knobs: cheap by construction — the whole point of the
 *  classical score is to cost orders of magnitude less than one circuit. */
constexpr int kLeafRestarts = 2;
constexpr int kLeafSweeps = 160;
constexpr int kGlobalRestarts = 4;
constexpr int kGlobalSweeps = 400;

double
optimistic_bound(const ising::IsingModel& model)
{
    double magnitude = 0.0;
    for (double h : model.linear_terms())
        magnitude += std::abs(h);
    for (const auto& term : model.quadratic_terms())
        magnitude += std::abs(term.coefficient);
    return model.offset() - magnitude;
}

/**
 * A leaf can produce a decode that strictly beats @p incumbent_cost only
 * when its optimistic bound lies at or below it (equal-cost decodes can
 * still win the incumbent tie-break against the presolve). Repair-lineage
 * leaves carry a -inf bound and are never considered dominated.
 */
bool
dominated(const LeafScore& score, double incumbent_cost)
{
    return score.bound > incumbent_cost;
}

} // namespace

double
lineage_score_penalty(const SolveTree& tree, int leaf_id)
{
    const auto& registry = ExpanderRegistry::instance();
    const auto& leaf = tree.leaves[static_cast<std::size_t>(leaf_id)];
    double penalty = 0.0;
    for (int ni = leaf.node; ni >= 0;
         ni = tree.nodes[static_cast<std::size_t>(ni)].parent) {
        const auto& node = tree.nodes[static_cast<std::size_t>(ni)];
        if (node.kind == NodeKind::Leaf)
            continue; // leaves (and mirror leaves) charge nothing
        penalty += registry.get(node.kind).score_penalty(node);
    }
    return penalty;
}

LeafSchedule
make_schedule(const ising::IsingModel& original, const SolveTree& tree,
              const frozenqubits::DriverConfig& config, bool force_scoring,
              BatchExecutor* executor)
{
    FQ_REQUIRE(!tree.leaves.empty(), "solve tree has no executable leaves");

    LeafSchedule schedule;
    schedule.max_circuits = config.max_circuits;

    bool needs_repair = false;
    for (const auto& leaf : tree.leaves)
        needs_repair = needs_repair || leaf.needs_repair;

    // Adaptive re-ranking needs scores (and the presolve incumbent they
    // anchor) even when no budget is set, so rerank_interval forces them.
    schedule.scored = force_scoring || config.max_circuits > 0 ||
                      config.prune_dominated || config.rerank_interval > 0;
    // Non-flat trees always get the global presolve: it anchors the
    // anytime trace and (for partition lineages) the decode repair base.
    // Flat unbudgeted solves skip it so the legacy path stays untouched.
    const bool needs_presolve =
        schedule.scored || needs_repair || !tree.flat();

    if (needs_presolve) {
        // Global incumbent: one stronger SA run on the original model.
        // Seeds derive from the root's plan-time stream, so the schedule is
        // a pure function of (model, config) — never of execution order.
        ising::SaConfig sa;
        sa.num_restarts = kGlobalRestarts;
        sa.sweeps_per_restart = kGlobalSweeps;
        Rng rng(combine_seeds(tree.nodes.front().stream_seed,
                              hash_seed("fq-tree-presolve")));
        const auto solved = ising::solve_annealing(original, sa, rng);
        schedule.has_presolve = true;
        schedule.presolve_cost = solved.best_cost;
        schedule.presolve_assignment = solved.best_assignment;
    }

    std::vector<int> candidates;
    candidates.reserve(tree.leaves.size());
    for (const auto& leaf : tree.leaves)
        candidates.push_back(leaf.leaf_id);

    if (schedule.scored) {
        // Each leaf's score is a pure function of (leaf model, leaf seed)
        // with its own result slot, so scoring parallelizes on the engine's
        // executor without touching the determinism guarantee; large deep
        // trees would otherwise pay a long serial SA prologue.
        const auto score_leaf = [&](int leaf_id) {
            const auto& leaf =
                tree.leaves[static_cast<std::size_t>(leaf_id)];
            const auto& model =
                tree.nodes[static_cast<std::size_t>(leaf.node)].sub.model;
            ising::SaConfig sa;
            sa.num_restarts = kLeafRestarts;
            sa.sweeps_per_restart = kLeafSweeps;
            Rng rng(combine_seeds(leaf.rng_seed,
                                  hash_seed("fq-leaf-presolve")));
            LeafScore entry;
            // Reduction-aware scoring: a leaf's SA presolve never sees
            // what its ancestors' reductions discarded, so its raw score
            // flatters those arms; charge each ancestor's declared
            // pessimism back.
            entry.score = ising::solve_annealing(model, sa, rng).best_cost +
                          lineage_score_penalty(tree, leaf_id);
            entry.bound = leaf.needs_repair
                              ? -std::numeric_limits<double>::infinity()
                              : optimistic_bound(model);
            return entry;
        };
        if (executor) {
            schedule.scores = executor->map<LeafScore>(
                static_cast<int>(tree.leaves.size()),
                [&](int leaf_id, BatchExecutor::Scratch&) {
                    return score_leaf(leaf_id);
                });
        } else {
            schedule.scores.resize(tree.leaves.size());
            for (const auto& leaf : tree.leaves)
                schedule.scores[static_cast<std::size_t>(leaf.leaf_id)] =
                    score_leaf(leaf.leaf_id);
        }

        if (config.prune_dominated) {
            // A leaf whose optimistic bound already exceeds the classical
            // incumbent cannot produce a better decode: drop it before the
            // budget so the circuits go to live candidates.
            std::vector<int> kept;
            for (int id : candidates) {
                if (schedule.scores[static_cast<std::size_t>(id)].bound >
                    schedule.presolve_cost)
                    schedule.pruned.push_back(id);
                else
                    kept.push_back(id);
            }
            candidates = std::move(kept);
        }

        std::stable_sort(
            candidates.begin(), candidates.end(), [&](int a, int b) {
                const double sa =
                    schedule.scores[static_cast<std::size_t>(a)].score;
                const double sb =
                    schedule.scores[static_cast<std::size_t>(b)].score;
                if (sa != sb)
                    return sa < sb;
                return a < b; // deterministic tie-break: plan index
            });
    }

    if (candidates.empty()) {
        // Domination pruning removed everything (SA already optimal): keep
        // the best-scored leaf so the solve still produces a sampled
        // distribution and a decodable answer.
        FQ_REQUIRE(!schedule.pruned.empty(), "no leaves to schedule");
        auto best = std::min_element(
            schedule.pruned.begin(), schedule.pruned.end(),
            [&](int a, int b) {
                return schedule.scores[static_cast<std::size_t>(a)].score <
                       schedule.scores[static_cast<std::size_t>(b)].score;
            });
        candidates.push_back(*best);
        schedule.pruned.erase(best);
    }

    for (int id : candidates) {
        if (config.max_circuits > 0 &&
            static_cast<long long>(schedule.executed.size()) >=
                config.max_circuits)
            schedule.beyond_budget.push_back(id);
        else
            schedule.executed.push_back(id);
    }

    if (schedule.scored) {
        // Freeze the plan-time ranking as the re-rank tie-breaker: ranked
        // candidates first (executed then beyond-budget — already in score
        // order), plan-time-pruned leaves after.
        schedule.plan_rank.assign(tree.leaves.size(), -1);
        int rank = 0;
        for (int id : schedule.executed)
            schedule.plan_rank[static_cast<std::size_t>(id)] = rank++;
        for (int id : schedule.beyond_budget)
            schedule.plan_rank[static_cast<std::size_t>(id)] = rank++;
        for (int id : schedule.pruned)
            schedule.plan_rank[static_cast<std::size_t>(id)] = rank++;
    }
    return schedule;
}

RerankOutcome
rerank_schedule(LeafSchedule& schedule, const ising::IsingModel& original,
                const SolveTree& tree, std::size_t folded,
                const EpochIncumbent& incumbent)
{
    RerankOutcome out;
    FQ_REQUIRE(schedule.scored && !schedule.scores.empty(),
               "adaptive re-ranking needs a scored schedule");
    FQ_REQUIRE(folded >= 1 && folded <= schedule.executed.size(),
               "re-rank fold count outside the schedule");
    if (!incumbent.valid)
        return out;

    // Candidates: the not-yet-dispatched tail plus every leaf the plan-time
    // budget cut — pruning below may free slots they can reclaim.
    std::vector<int> tail(schedule.executed.begin() +
                              static_cast<std::ptrdiff_t>(folded),
                          schedule.executed.end());
    std::vector<int> candidates = tail;
    candidates.insert(candidates.end(), schedule.beyond_budget.begin(),
                      schedule.beyond_budget.end());
    if (candidates.empty())
        return out;

    // Stale domination pruning: the incumbent has tightened since plan
    // time; tail leaves whose optimistic bound can no longer beat it would
    // burn circuits for nothing. Dominated beyond-budget leaves are
    // retired too (never re-considered), but only TAIL prunes count as
    // circuits saved — beyond-budget leaves were not going to run anyway.
    std::vector<int> live;
    live.reserve(candidates.size());
    for (std::size_t k = 0; k < candidates.size(); ++k) {
        const int id = candidates[k];
        if (dominated(schedule.scores[static_cast<std::size_t>(id)],
                      incumbent.cost)) {
            schedule.pruned.push_back(id);
            if (k < tail.size())
                ++out.pruned;
        } else {
            live.push_back(id);
        }
    }

    // Adaptive score: lift the incumbent through each candidate's frozen
    // arm (its surviving spins take the incumbent's values, its root path
    // overwrites the frozen ones) and evaluate on the ORIGINAL model — the
    // concrete cost this leaf's cell achieves by mimicking the folded
    // evidence. A leaf whose arm agrees with the incumbent projects to the
    // incumbent cost itself and ranks first; min() keeps the plan-time SA
    // score as the exploration floor for arms the incumbent says little
    // about.
    std::vector<double> adaptive(tree.leaves.size(), 0.0);
    for (int id : live) {
        const auto& leaf = tree.leaves[static_cast<std::size_t>(id)];
        const auto& sub =
            tree.nodes[static_cast<std::size_t>(leaf.node)].sub;
        double score =
            schedule.scores[static_cast<std::size_t>(id)].score;
        if (sub.model.num_spins() < 64) {
            ising::SpinVector restricted(
                static_cast<std::size_t>(sub.model.num_spins()));
            for (std::size_t i = 0; i < restricted.size(); ++i)
                restricted[i] =
                    incumbent.assignment[static_cast<std::size_t>(
                        sub.original_of[i])];
            const auto projected = lift_leaf_state(
                tree, leaf, ising::spins_to_state(restricted),
                incumbent.assignment);
            score = std::min(score, original.evaluate(projected));
        }
        adaptive[static_cast<std::size_t>(id)] = score;
    }
    std::stable_sort(live.begin(), live.end(), [&](int a, int b) {
        const double sa = adaptive[static_cast<std::size_t>(a)];
        const double sb = adaptive[static_cast<std::size_t>(b)];
        if (sa != sb)
            return sa < sb;
        // Plan-time-derived tie-break (already encodes score-then-leaf-id).
        return schedule.plan_rank[static_cast<std::size_t>(a)] <
               schedule.plan_rank[static_cast<std::size_t>(b)];
    });

    // Re-cut the remaining budget over the survivors. Pruned leaves refund
    // their slots, so previously beyond-budget leaves may be promoted.
    std::vector<int> was_beyond = std::move(schedule.beyond_budget);
    schedule.executed.resize(folded);
    schedule.beyond_budget.clear();
    const long long remaining =
        schedule.max_circuits > 0
            ? schedule.max_circuits - static_cast<long long>(folded)
            : static_cast<long long>(live.size());
    for (int id : live) {
        if (static_cast<long long>(schedule.executed.size() - folded) <
            remaining)
            schedule.executed.push_back(id);
        else
            schedule.beyond_budget.push_back(id);
    }

    const auto contains = [](const std::vector<int>& ids, int id) {
        return std::find(ids.begin(), ids.end(), id) != ids.end();
    };
    for (std::size_t k = folded; k < schedule.executed.size(); ++k)
        if (contains(was_beyond, schedule.executed[k]))
            ++out.promoted;
    for (int id : schedule.beyond_budget)
        if (contains(tail, id))
            ++out.demoted;
    out.applied = true;
    ++schedule.reranks;
    schedule.rerank_pruned += out.pruned;
    schedule.rerank_promoted += out.promoted;
    schedule.rerank_demoted += out.demoted;
    return out;
}

int
apply_deadline_trim(LeafSchedule& schedule, const SolveTree& tree,
                    long long deadline_units, std::size_t folded)
{
    if (deadline_units <= 0)
        return 0;
    FQ_REQUIRE(folded <= schedule.executed.size(),
               "deadline trim fold count outside the schedule");

    // The folded prefix is spent budget: its leaves ran (or are restored
    // from a checkpoint as run) and their cost is gone either way.
    long long consumed = 0;
    for (std::size_t k = 0; k < folded; ++k)
        consumed += leaf_slot_cost(tree, schedule.executed[k]);

    // Greedy rank-order keep-if-fits over the tail: an over-budget wide
    // leaf does not wall off cheaper leaves ranked behind it.
    std::vector<int> kept;
    std::vector<int> demoted;
    long long cheapest = 0;
    for (std::size_t k = folded; k < schedule.executed.size(); ++k) {
        const int leaf_id = schedule.executed[k];
        const long long cost = leaf_slot_cost(tree, leaf_id);
        cheapest = cheapest == 0 ? cost : std::min(cheapest, cost);
        if (consumed + cost <= deadline_units) {
            consumed += cost;
            kept.push_back(leaf_id);
        } else {
            demoted.push_back(leaf_id);
        }
    }
    if (demoted.empty())
        return 0;
    if (folded == 0 && kept.empty())
        throw DeadlineError(
            "deadline of " + std::to_string(deadline_units) +
            " cost units cannot cover any scheduled leaf (cheapest costs " +
            std::to_string(cheapest) + ")");

    schedule.executed.resize(folded);
    schedule.executed.insert(schedule.executed.end(), kept.begin(),
                             kept.end());
    schedule.beyond_budget.insert(schedule.beyond_budget.end(),
                                  demoted.begin(), demoted.end());
    schedule.deadline_trimmed += static_cast<int>(demoted.size());
    return static_cast<int>(demoted.size());
}

} // namespace fq::engine
