#include "engine/scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "ising/sa_solver.h"

namespace fq::engine {

namespace {

/** Presolve effort knobs: cheap by construction — the whole point of the
 *  classical score is to cost orders of magnitude less than one circuit. */
constexpr int kLeafRestarts = 2;
constexpr int kLeafSweeps = 160;
constexpr int kGlobalRestarts = 4;
constexpr int kGlobalSweeps = 400;

double
optimistic_bound(const ising::IsingModel& model)
{
    double magnitude = 0.0;
    for (double h : model.linear_terms())
        magnitude += std::abs(h);
    for (const auto& term : model.quadratic_terms())
        magnitude += std::abs(term.coefficient);
    return model.offset() - magnitude;
}

} // namespace

LeafSchedule
make_schedule(const ising::IsingModel& original, const SolveTree& tree,
              const frozenqubits::DriverConfig& config, bool force_scoring,
              BatchExecutor* executor)
{
    FQ_REQUIRE(!tree.leaves.empty(), "solve tree has no executable leaves");

    LeafSchedule schedule;
    schedule.max_circuits = config.max_circuits;

    bool needs_repair = false;
    for (const auto& leaf : tree.leaves)
        needs_repair = needs_repair || leaf.needs_repair;

    schedule.scored = force_scoring || config.max_circuits > 0 ||
                      config.prune_dominated;
    // Non-flat trees always get the global presolve: it anchors the
    // anytime trace and (for partition lineages) the decode repair base.
    // Flat unbudgeted solves skip it so the legacy path stays untouched.
    const bool needs_presolve =
        schedule.scored || needs_repair || !tree.flat();

    if (needs_presolve) {
        // Global incumbent: one stronger SA run on the original model.
        // Seeds derive from the root's plan-time stream, so the schedule is
        // a pure function of (model, config) — never of execution order.
        ising::SaConfig sa;
        sa.num_restarts = kGlobalRestarts;
        sa.sweeps_per_restart = kGlobalSweeps;
        Rng rng(combine_seeds(tree.nodes.front().stream_seed,
                              hash_seed("fq-tree-presolve")));
        const auto solved = ising::solve_annealing(original, sa, rng);
        schedule.has_presolve = true;
        schedule.presolve_cost = solved.best_cost;
        schedule.presolve_assignment = solved.best_assignment;
    }

    std::vector<int> candidates;
    candidates.reserve(tree.leaves.size());
    for (const auto& leaf : tree.leaves)
        candidates.push_back(leaf.leaf_id);

    if (schedule.scored) {
        // Each leaf's score is a pure function of (leaf model, leaf seed)
        // with its own result slot, so scoring parallelizes on the engine's
        // executor without touching the determinism guarantee; large deep
        // trees would otherwise pay a long serial SA prologue.
        const auto score_leaf = [&](int leaf_id) {
            const auto& leaf =
                tree.leaves[static_cast<std::size_t>(leaf_id)];
            const auto& model =
                tree.nodes[static_cast<std::size_t>(leaf.node)].sub.model;
            ising::SaConfig sa;
            sa.num_restarts = kLeafRestarts;
            sa.sweeps_per_restart = kLeafSweeps;
            Rng rng(combine_seeds(leaf.rng_seed,
                                  hash_seed("fq-leaf-presolve")));
            LeafScore entry;
            entry.score = ising::solve_annealing(model, sa, rng).best_cost;
            entry.bound = leaf.needs_repair
                              ? -std::numeric_limits<double>::infinity()
                              : optimistic_bound(model);
            return entry;
        };
        if (executor) {
            schedule.scores = executor->map<LeafScore>(
                static_cast<int>(tree.leaves.size()),
                [&](int leaf_id, BatchExecutor::Scratch&) {
                    return score_leaf(leaf_id);
                });
        } else {
            schedule.scores.resize(tree.leaves.size());
            for (const auto& leaf : tree.leaves)
                schedule.scores[static_cast<std::size_t>(leaf.leaf_id)] =
                    score_leaf(leaf.leaf_id);
        }

        if (config.prune_dominated) {
            // A leaf whose optimistic bound already exceeds the classical
            // incumbent cannot produce a better decode: drop it before the
            // budget so the circuits go to live candidates.
            std::vector<int> kept;
            for (int id : candidates) {
                if (schedule.scores[static_cast<std::size_t>(id)].bound >
                    schedule.presolve_cost)
                    schedule.pruned.push_back(id);
                else
                    kept.push_back(id);
            }
            candidates = std::move(kept);
        }

        std::stable_sort(
            candidates.begin(), candidates.end(), [&](int a, int b) {
                const double sa =
                    schedule.scores[static_cast<std::size_t>(a)].score;
                const double sb =
                    schedule.scores[static_cast<std::size_t>(b)].score;
                if (sa != sb)
                    return sa < sb;
                return a < b; // deterministic tie-break: plan index
            });
    }

    if (candidates.empty()) {
        // Domination pruning removed everything (SA already optimal): keep
        // the best-scored leaf so the solve still produces a sampled
        // distribution and a decodable answer.
        FQ_REQUIRE(!schedule.pruned.empty(), "no leaves to schedule");
        auto best = std::min_element(
            schedule.pruned.begin(), schedule.pruned.end(),
            [&](int a, int b) {
                return schedule.scores[static_cast<std::size_t>(a)].score <
                       schedule.scores[static_cast<std::size_t>(b)].score;
            });
        candidates.push_back(*best);
        schedule.pruned.erase(best);
    }

    for (int id : candidates) {
        if (config.max_circuits > 0 &&
            static_cast<long long>(schedule.executed.size()) >=
                config.max_circuits)
            schedule.beyond_budget.push_back(id);
        else
            schedule.executed.push_back(id);
    }
    return schedule;
}

} // namespace fq::engine
