/**
 * @file
 * BatchExecutor: deterministic fork-join execution of independent tasks on
 * a fixed thread pool.
 *
 * Tasks receive their index and a per-worker Scratch (reusable Statevector
 * buffer, so a batch of 2^{m-1} simulations allocates amplitude storage
 * once per worker, not once per task). Results land in a vector slot owned
 * exclusively by the task's index, which is the whole determinism story:
 * scheduling order can never change the output, so `threads=N` is
 * bit-identical to `threads=1`.
 */
#ifndef FQ_ENGINE_BATCH_EXECUTOR_H
#define FQ_ENGINE_BATCH_EXECUTOR_H

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "engine/thread_pool.h"
#include "sim/statevector.h"

namespace fq::engine {

class BatchExecutor
{
  public:
    /** Per-worker reusable state, handed to every task the worker runs. */
    struct Scratch
    {
        sim::Statevector statevector;
    };

    /** @p num_threads: <= 0 = auto (hardware concurrency). */
    explicit BatchExecutor(int num_threads = 0)
        : num_threads_(resolve_thread_count(num_threads)),
          scratch_(static_cast<std::size_t>(num_threads_))
    {
    }

    int num_threads() const { return num_threads_; }

    /**
     * Run fn(task_index, scratch) for every index in [0, count) and return
     * the results ordered by task index. Result must be default-
     * constructible and movable. Exceptions propagate (lowest failing task
     * index wins).
     *
     * Single-task batches and single-thread executors run inline on the
     * calling thread; the worker pool is only spawned — once, then reused —
     * when a batch actually has parallelism to exploit, so serial
     * configurations and facade calls never pay thread churn.
     */
    template <typename Result, typename Fn>
    std::vector<Result>
    map(int count, Fn&& fn)
    {
        std::vector<Result> results(static_cast<std::size_t>(count));
        if (count <= 1 || num_threads_ == 1) {
            for (int i = 0; i < count; ++i)
                results[static_cast<std::size_t>(i)] = fn(i, scratch_[0]);
            return results;
        }
        if (!pool_)
            pool_ = std::make_unique<ThreadPool>(num_threads_);
        pool_->for_each_index(count, [&](int index, int worker) {
            results[static_cast<std::size_t>(index)] =
                fn(index, scratch_[static_cast<std::size_t>(worker)]);
        });
        return results;
    }

    /**
     * One type-erased unit of a submission queue: invoked with the
     * executing worker's Scratch. Heterogeneous by design — a queue may mix
     * leaves from unrelated solve requests (a wave_loop.h wave).
     */
    using QueuedTask = std::function<void(Scratch&)>;

    /**
     * Drain a pre-assembled submission queue: run every item on the pool
     * (same inline fast paths as map()). The return is the wave BARRIER
     * the epoch loop's post-barrier scan (adaptive re-ranking, completion
     * checks) relies on: every item has run to completion. Items own
     * their result delivery — typically a fold into a per-request
     * StreamingReducer, which is fold-order independent, so the
     * cross-request interleaving a shared queue creates can never change
     * any request's output. Exceptions propagate like map() (lowest
     * failing index wins); callers multiplexing independent tenants must
     * catch inside the item (WaveHooks::failed) so one tenant's failure
     * cannot poison the wave.
     */
    void run_queue(const std::vector<QueuedTask>& queue)
    {
        const int count = static_cast<int>(queue.size());
        if (count <= 1 || num_threads_ == 1) {
            for (int i = 0; i < count; ++i)
                queue[static_cast<std::size_t>(i)](scratch_[0]);
            return;
        }
        if (!pool_)
            pool_ = std::make_unique<ThreadPool>(num_threads_);
        pool_->for_each_index(count, [&](int index, int worker) {
            queue[static_cast<std::size_t>(index)](
                scratch_[static_cast<std::size_t>(worker)]);
        });
    }

  private:
    int num_threads_;
    std::unique_ptr<ThreadPool> pool_;
    std::vector<Scratch> scratch_;
};

} // namespace fq::engine

#endif // FQ_ENGINE_BATCH_EXECUTOR_H
