#include "engine/expander.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.h"
#include "common/rng.h"
#include "frozenqubits/template_editor.h"
#include "graph/sparsify.h"
#include "partition/bisection.h"
#include "partition/dnc_qaoa.h"
#include "sim/statevector.h"

namespace fq::engine {

namespace {

/** Expected recoverable share of a cut coupling's magnitude: the decode's
 *  greedy repair fixes the sign of roughly half the cut terms, so a hybrid
 *  arm is charged the other half as ranking pessimism. */
constexpr double kCutPenaltyShare = 0.5;

/** Sparsify pessimism share: pruned couplings still count at execution
 *  (sampling runs on the full graph) — only the proxy-tuned angles can be
 *  off, which costs far less than a dropped coupling, so the charge is
 *  half the partition share. Ranking-only, like every score penalty. */
constexpr double kSparsifyPenaltyShare = 0.25;

const std::vector<NodeKindInfo> kKindTable = {
    {NodeKind::Leaf, "leaf", "leaf", "leaf", 0},
    {NodeKind::Freeze, "freeze", "frz", "freeze", 1},
    {NodeKind::Partition, "partition", "cut", "partition", 2},
    {NodeKind::Sparsify, "sparsify", "spr", "sparsify", 3},
};

} // namespace

const std::vector<NodeKindInfo>&
node_kind_table()
{
    return kKindTable;
}

const NodeKindInfo&
node_kind_info(NodeKind kind)
{
    for (const auto& row : kKindTable)
        if (row.kind == kind)
            return row;
    FQ_REQUIRE(false, "node kind missing from the metadata table");
    return kKindTable.front(); // unreachable
}

const NodeKindInfo*
node_kind_info_by_tag(std::uint8_t frame_tag)
{
    for (const auto& row : kKindTable)
        if (row.frame_tag == frame_tag)
            return &row;
    return nullptr;
}

std::size_t
node_kind_index(NodeKind kind)
{
    for (std::size_t k = 0; k < kKindTable.size(); ++k)
        if (kKindTable[k].kind == kind)
            return k;
    FQ_REQUIRE(false, "node kind missing from the metadata table");
    return 0; // unreachable
}

NodeKind
leaf_arm_kind(const SolveTree& tree, int leaf_id)
{
    const auto& leaf = tree.leaves[static_cast<std::size_t>(leaf_id)];
    const int parent =
        tree.nodes[static_cast<std::size_t>(leaf.node)].parent;
    FQ_REQUIRE(parent >= 0, "executable leaf cannot be the root");
    return tree.nodes[static_cast<std::size_t>(parent)].kind;
}

// --------------------------------------------------------- TreeBuild --

TreeBuild::TreeBuild(const device::Device& dev,
                     const frozenqubits::DriverConfig& config,
                     TemplateCache& cache)
    : dev_(dev), config_(config), cache_(cache)
{
}

const SolveNode&
TreeBuild::node(int ni) const
{
    return tree_.nodes[static_cast<std::size_t>(ni)];
}

SolveNode&
TreeBuild::mutable_node(int ni)
{
    return tree_.nodes[static_cast<std::size_t>(ni)];
}

SolveLeaf&
TreeBuild::leaf(int leaf_id)
{
    return tree_.leaves[static_cast<std::size_t>(leaf_id)];
}

int
TreeBuild::width(int ni) const
{
    return node(ni).sub.model.num_spins();
}

frozenqubits::SubProblem
TreeBuild::compose_subproblem(const frozenqubits::SubProblem& parent,
                              const frozenqubits::SubProblem& local)
{
    frozenqubits::SubProblem out;
    out.model = local.model;
    out.original_of.resize(local.original_of.size());
    for (std::size_t i = 0; i < local.original_of.size(); ++i)
        out.original_of[i] =
            parent.original_of[static_cast<std::size_t>(
                local.original_of[i])];
    out.frozen = parent.frozen;
    for (const auto& fs : local.frozen)
        out.frozen.push_back(
            {parent.original_of[static_cast<std::size_t>(
                 fs.original_index)],
             fs.value});
    return out;
}

int
TreeBuild::add_child(int parent, frozenqubits::SubProblem sub,
                     std::uint64_t stream_seed, bool repair_lineage)
{
    const int index = static_cast<int>(tree_.nodes.size());
    SolveNode child;
    child.index = index;
    child.parent = parent;
    child.depth = tree_.nodes[static_cast<std::size_t>(parent)].depth + 1;
    child.sub = std::move(sub);
    child.stream_seed = stream_seed;
    child.partition_lineage =
        tree_.nodes[static_cast<std::size_t>(parent)].partition_lineage ||
        repair_lineage;
    tree_.nodes.push_back(std::move(child));
    tree_.nodes[static_cast<std::size_t>(parent)].children.push_back(
        index);
    return index;
}

int
TreeBuild::make_leaf(int ni, const LeafContext& ctx,
                     std::shared_ptr<const ising::IsingModel> proxy)
{
    auto& node = tree_.nodes[static_cast<std::size_t>(ni)];
    node.kind = NodeKind::Leaf;
    node.leaf_id = static_cast<int>(tree_.leaves.size());

    SolveLeaf leaf;
    leaf.node = ni;
    leaf.leaf_id = node.leaf_id;
    leaf.local_solve = ctx.local_solve;
    leaf.rng_seed = ctx.rng_seed;
    leaf.needs_repair = node.partition_lineage;
    leaf.fuse = config_.fuse_simulation &&
                node.sub.model.num_spins() <= sim::kMaxSimQubits;
    leaf.backend =
        sim::select_backend(config_.backend, node.sub.model.num_spins());
    leaf.build = ctx.build;
    leaf.tpl = ctx.tpl;
    leaf.tpl_compatible = ctx.tpl_compatible;
    leaf.proxy = std::move(proxy);
    // The family skeleton is verified against THIS leaf's labeled
    // structure — a sibling whose structure drifted (it cannot, by
    // freeze construction, but the check is cheap) falls back to the
    // from-scratch path rather than binding a wrong skeleton.
    if (ctx.family != nullptr && ctx.family->has_skeleton &&
        ctx.family->matches(node.sub.model))
        leaf.family = ctx.family;
    // Plan-time tier preview for diagnostics and the fqtool plan
    // column. Fused leaves re-resolve through the cache at execution;
    // unfused leaves always rebuild gate-by-gate (tier Compile).
    if (leaf.fuse && cache_.peek_fused(node.sub.model, leaf.build))
        leaf.tier = TemplateTier::Hit;
    else if (leaf.fuse && leaf.family != nullptr)
        leaf.tier = TemplateTier::Bind;
    else
        leaf.tier = TemplateTier::Compile;
    tree_.leaves.push_back(std::move(leaf));
    return node.leaf_id;
}

LeafContext
TreeBuild::resolve_private_templates(int ni)
{
    LeafContext ctx;
    ctx.build = default_build_options();
    const auto& model = node(ni).sub.model;
    if (!config_.use_template_editing ||
        model.num_spins() > dev_.num_qubits())
        return ctx;
    if (config_.parametric_templates) {
        auto binding = cache_.get_or_bind(model, dev_, config_.compile,
                                          default_build_options());
        ctx.tpl = binding.family->structural;
        ctx.family = binding.family;
    } else {
        ctx.tpl = cache_.get_or_compile(model, dev_, config_.compile,
                                        default_build_options());
    }
    ctx.tpl_compatible = true;
    return ctx;
}

bool
TreeBuild::recursively_expandable(int ni) const
{
    return ExpanderRegistry::instance().select_recursive(*this, ni) !=
           nullptr;
}

void
TreeBuild::expand(int ni, Rng* root_rng)
{
    const auto* expander =
        ExpanderRegistry::instance().select_recursive(*this, ni);
    FQ_REQUIRE(expander != nullptr, "no reduction applies to the node");
    expander->expand(*this, ni, root_rng, nullptr);
}

int
TreeBuild::finalize(int ni, const LeafContext& ctx)
{
    if (const auto* wrapper =
            ExpanderRegistry::instance().select_terminal(*this, ni))
        return wrapper->expand(*this, ni, nullptr, &ctx);
    return make_leaf(ni, ctx);
}

SolveTree
TreeBuild::run(const ising::IsingModel& model, Rng& rng)
{
    FQ_REQUIRE(config_.max_depth >= 1,
               "solve tree needs at least one expansion level");
    // Bisection consumes an expansion level, so depth 1 would leave
    // raw fragments and silently drop the requested freeze entirely.
    FQ_REQUIRE(config_.partition_width <= 0 || config_.max_depth >= 2,
               "partition_width needs max_depth >= 2 so fragments can "
               "be frozen or solved");
    tree_.max_depth = config_.max_depth;

    SolveNode root;
    root.index = 0;
    root.sub = frozenqubits::as_subproblem(model);
    tree_.nodes.push_back(std::move(root));
    FQ_REQUIRE(recursively_expandable(0),
               "root is too small to freeze and too narrow to "
               "partition");
    expand(0, &rng);
    return std::move(tree_);
}

// --------------------------------------------------------- expanders --

namespace {

class FreezeExpander : public NodeExpander
{
  public:
    const NodeKindInfo&
    info() const override
    {
        return node_kind_info(NodeKind::Freeze);
    }

    bool
    applicable(const TreeBuild& b, int ni) const override
    {
        // Same floor as the flat engine: freezing needs one spin to
        // freeze and one to survive (freeze_all requires m < n).
        return b.width(ni) >= 2 &&
               b.node(ni).depth < b.config().max_depth;
    }

    bool
    recursive() const override
    {
        return true;
    }

    int
    expand(TreeBuild& b, int ni, Rng* root_rng,
           const LeafContext*) const override
    {
        b.mutable_node(ni).kind = NodeKind::Freeze;
        const auto parent_sub =
            b.node(ni).sub; // copy: the nodes vector reallocates
        const int parent_depth = b.node(ni).depth;
        const std::uint64_t seed = b.node(ni).stream_seed;
        const auto& config = b.config();

        // Children are terminal when they have no expansion level left
        // or are too narrow for any strategy; only then may this level
        // prune mirrors (a recursively expanded child has no single
        // distribution to flip). The ROOT takes config.num_freeze
        // verbatim so a flat tree accepts and rejects exactly what
        // make_plan does; deeper nodes clamp to their own width (m < n).
        const int m =
            parent_depth == 0
                ? config.num_freeze
                : std::min(config.num_freeze,
                           parent_sub.model.num_spins() - 1);
        const int child_width = parent_sub.model.num_spins() - m;
        const bool child_can_expand =
            parent_depth + 1 < config.max_depth && child_width >= 2;
        frozenqubits::DriverConfig node_config = config;
        node_config.num_freeze = m;
        if (child_can_expand)
            node_config.symmetry_pruning = false;

        Rng local(combine_seeds(seed, hash_seed("fq-freeze-node")));
        ExecutionPlan plan =
            make_plan(parent_sub.model, b.device(), node_config,
                      b.cache(), root_rng ? *root_rng : local);
        // The node's stream base is the plan's: descendants (and the
        // scheduler's presolve, for the root) derive from the config
        // seed exactly as the flat engine's task streams do.
        b.mutable_node(ni).stream_seed = plan.stream_seed;

        for (const auto& task : plan.tasks) {
            const auto& local_sub =
                plan.subproblems[static_cast<std::size_t>(task.solve)];
            const int ci = b.add_child(
                ni, TreeBuild::compose_subproblem(parent_sub, local_sub),
                task.rng_seed, lift_requires_repair());
            b.mutable_node(ci).local_solve = task.solve;
            if (child_can_expand && b.recursively_expandable(ci)) {
                b.expand(ci, nullptr);
                continue;
            }
            LeafContext ctx;
            ctx.local_solve = task.solve;
            ctx.rng_seed = task.rng_seed;
            ctx.tpl = plan.compiled_template;
            ctx.tpl_compatible =
                plan.compiled_template &&
                frozenqubits::templates_compatible(
                    plan.subproblems[static_cast<std::size_t>(
                                         plan.tasks.front().solve)]
                        .model,
                    local_sub.model);
            ctx.family = plan.family;
            ctx.build = plan.build;
            const int leaf_id = b.finalize(ci, ctx);
            // Mirror sub-spaces covered by flipping this leaf's output.
            for (int mirror : task.mirrors) {
                const auto& mirror_sub = plan.subproblems[
                    static_cast<std::size_t>(mirror)];
                const int mi = b.add_child(
                    ni,
                    TreeBuild::compose_subproblem(parent_sub, mirror_sub),
                    /*stream_seed=*/0, lift_requires_repair());
                auto& mirror_node = b.mutable_node(mi);
                mirror_node.kind = NodeKind::Leaf;
                mirror_node.mirror_of = leaf_id;
                mirror_node.local_solve = mirror;
                b.leaf(leaf_id).mirror_nodes.push_back(mi);
            }
        }
        b.mutable_node(ni).plan = std::move(plan);
        return -1;
    }

    double
    score_penalty(const SolveNode&) const override
    {
        // Freezing discards nothing a leaf SA presolve cannot see: the
        // frozen values fold into the children's linear terms exactly.
        return 0.0;
    }

    bool
    lift_requires_repair() const override
    {
        return false;
    }
};

class PartitionExpander : public NodeExpander
{
  public:
    const NodeKindInfo&
    info() const override
    {
        return node_kind_info(NodeKind::Partition);
    }

    bool
    applicable(const TreeBuild& b, int ni) const override
    {
        const auto& config = b.config();
        return config.partition_width > 0 &&
               b.width(ni) > config.partition_width && b.width(ni) >= 4 &&
               b.node(ni).depth < config.max_depth;
    }

    bool
    recursive() const override
    {
        return true;
    }

    int
    expand(TreeBuild& b, int ni, Rng* root_rng,
           const LeafContext*) const override
    {
        b.mutable_node(ni).kind = NodeKind::Partition;
        const auto parent_sub =
            b.node(ni).sub; // copy: the nodes vector reallocates
        // A partition root has no plan to draw a stream base from: take
        // it from the caller's rng so child streams follow the config
        // seed.
        if (root_rng)
            b.mutable_node(ni).stream_seed = (*root_rng)();
        const std::uint64_t seed = b.node(ni).stream_seed;

        Rng local(combine_seeds(seed, hash_seed("fq-partition")));
        Rng& rng = root_rng ? *root_rng : local;
        const auto cut =
            partition::bisect(parent_sub.model.to_graph(), rng);
        {
            auto& node = b.mutable_node(ni);
            node.cut_edges = cut.cut_edges;
            node.cut_weight = cut.cut_weight;
        }

        for (int which : {0, 1}) {
            auto frag = partition::extract_fragment(parent_sub.model,
                                                    cut.side, which);
            if (frag.model.num_spins() == 0)
                continue;
            // Split the constant term evenly so the fragments' classical
            // bounds sum to (roughly) the node's — cut couplings
            // excepted, which is exactly the D&C energy loss — WITHOUT
            // biasing the scheduler's cross-fragment ranking (scores
            // include the offset; loading it onto one side would
            // deterministically starve that side under a budget).
            frag.model.set_offset(parent_sub.model.offset() / 2.0);
            frozenqubits::SubProblem local_sub;
            local_sub.model = std::move(frag.model);
            local_sub.original_of = std::move(frag.original_of);
            const std::uint64_t child_seed = subproblem_stream_seed(
                seed, static_cast<std::uint64_t>(which));
            const int ci = b.add_child(
                ni, TreeBuild::compose_subproblem(parent_sub, local_sub),
                child_seed, lift_requires_repair());
            if (b.recursively_expandable(ci)) {
                b.expand(ci, nullptr);
            } else {
                auto ctx = b.resolve_private_templates(ci);
                ctx.rng_seed = child_seed;
                b.finalize(ci, ctx);
            }
        }
        FQ_REQUIRE(!b.node(ni).children.empty(),
                   "bisection produced no fragments");
        return -1;
    }

    double
    score_penalty(const SolveNode& node) const override
    {
        // A fragment's SA presolve never sees the couplings its
        // ancestors cut, so its raw score flatters hybrid arms; charge
        // the recorded cut weight back.
        return kCutPenaltyShare * node.cut_weight;
    }

    bool
    lift_requires_repair() const override
    {
        // Cut couplings are dropped during the quantum phase; the
        // decode fills the other fragments from the presolve assignment
        // and greedy-repairs on the original model.
        return true;
    }
};

/**
 * Red-QAOA sparsification: the optimizer loop tunes (gamma, beta) on a
 * deterministic, seed-derived, spanning-structure-preserving edge-pruned
 * PROXY of the leaf model, while the executed circuit, final sampling
 * and every energy evaluation run on the FULL model. The reduction
 * wraps would-be leaves (no depth consumed): the node records what was
 * pruned, its single child is the same cell carrying the proxy.
 */
class SparsifyExpander : public NodeExpander
{
  public:
    const NodeKindInfo&
    info() const override
    {
        return node_kind_info(NodeKind::Sparsify);
    }

    bool
    applicable(const TreeBuild& b, int ni) const override
    {
        const double keep = b.config().sparsify_keep;
        if (keep <= 0.0 || b.width(ni) < 2)
            return false;
        const auto edges = model_edges(b.node(ni).sub.model);
        if (edges.empty())
            return false;
        // Only claim the node when something actually prunes: the keep
        // target floors at the spanning forest, and a target covering
        // every edge would make the proxy the full model.
        const int target = keep_target(
            graph::spanning_forest_size(b.width(ni), edges),
            static_cast<int>(edges.size()), keep);
        return target < static_cast<int>(edges.size());
    }

    bool
    recursive() const override
    {
        return false;
    }

    int
    expand(TreeBuild& b, int ni, Rng*,
           const LeafContext* ctx) const override
    {
        FQ_REQUIRE(ctx != nullptr,
                   "sparsify wraps terminal nodes and needs their leaf "
                   "context");
        const auto parent_sub =
            b.node(ni).sub; // copy: the nodes vector reallocates
        const auto edges = model_edges(parent_sub.model);
        // The proxy is a pure function of (leaf model, leaf stream
        // seed): fixed at plan time, reproducible at any thread count.
        const auto plan = graph::sparsify_edges(
            parent_sub.model.num_spins(), edges, b.config().sparsify_keep,
            combine_seeds(ctx->rng_seed, hash_seed("fq-sparsify")));
        FQ_REQUIRE(plan.pruned > 0, "sparsify claimed a node it cannot "
                                    "prune");
        {
            auto& node = b.mutable_node(ni);
            node.kind = NodeKind::Sparsify;
            node.stream_seed = ctx->rng_seed;
            node.cut_edges = plan.pruned;
            node.cut_weight = plan.pruned_weight;
        }

        auto proxy =
            std::make_shared<ising::IsingModel>(parent_sub.model.num_spins());
        for (int i = 0; i < parent_sub.model.num_spins(); ++i)
            proxy->set_linear(i, parent_sub.model.linear(i));
        proxy->set_offset(parent_sub.model.offset());
        const auto& terms = parent_sub.model.quadratic_terms();
        for (std::size_t k = 0; k < terms.size(); ++k)
            if (plan.keep[k])
                proxy->add_quadratic(terms[k].i, terms[k].j,
                                     terms[k].coefficient);

        // The single child is the SAME cell (identity lift): sampling
        // and decode run on the full model, so the reduction is exact
        // at fold time — only the angles can differ.
        const int ci = b.add_child(ni, parent_sub, ctx->rng_seed,
                                   lift_requires_repair());
        b.mutable_node(ci).local_solve = ctx->local_solve;
        return b.make_leaf(ci, *ctx, std::move(proxy));
    }

    double
    score_penalty(const SolveNode& node) const override
    {
        // Pruned couplings still count at execution (full-graph
        // sampling); only the proxy-tuned angles can be off. Charge a
        // smaller share of the pruned weight than a real cut.
        return kSparsifyPenaltyShare * node.cut_weight;
    }

    bool
    lift_requires_repair() const override
    {
        // The lift is the identity over the same cell and the decode
        // evaluates on the full model — nothing was lost to repair.
        return false;
    }

  private:
    static std::vector<graph::EdgeRef>
    model_edges(const ising::IsingModel& model)
    {
        std::vector<graph::EdgeRef> edges;
        edges.reserve(
            static_cast<std::size_t>(model.num_quadratic_terms()));
        for (const auto& t : model.quadratic_terms())
            edges.push_back({t.i, t.j, t.coefficient});
        return edges;
    }

    static int
    keep_target(int forest_edges, int num_edges, double keep)
    {
        return std::max(
            forest_edges,
            static_cast<int>(std::ceil(
                keep * static_cast<double>(num_edges))));
    }
};

} // namespace

// ---------------------------------------------------------- registry --

ExpanderRegistry::ExpanderRegistry()
{
    // Consultation order IS the policy: recursive reductions first
    // (Partition claims wide nodes before Freeze, exactly the legacy
    // precedence), terminal wrappers after.
    owned_.push_back(std::make_unique<PartitionExpander>());
    owned_.push_back(std::make_unique<FreezeExpander>());
    owned_.push_back(std::make_unique<SparsifyExpander>());
    for (const auto& e : owned_)
        ordered_.push_back(e.get());
}

const ExpanderRegistry&
ExpanderRegistry::instance()
{
    static const ExpanderRegistry registry;
    return registry;
}

const NodeExpander*
ExpanderRegistry::find(NodeKind kind) const
{
    for (const auto* e : ordered_)
        if (e->info().kind == kind)
            return e;
    return nullptr;
}

const NodeExpander&
ExpanderRegistry::get(NodeKind kind) const
{
    const auto* e = find(kind);
    FQ_REQUIRE(e != nullptr, "no expander registered for node kind");
    return *e;
}

const NodeExpander*
ExpanderRegistry::select_recursive(const TreeBuild& build, int ni) const
{
    for (const auto* e : ordered_)
        if (e->recursive() && e->applicable(build, ni))
            return e;
    return nullptr;
}

const NodeExpander*
ExpanderRegistry::select_terminal(const TreeBuild& build, int ni) const
{
    for (const auto* e : ordered_)
        if (!e->recursive() && e->applicable(build, ni))
            return e;
    return nullptr;
}

} // namespace fq::engine
