#include "engine/checkpoint.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>

#include "common/crc32.h"
#include "common/error.h"
#include "common/rng.h"
#include "frozenqubits/driver.h"
#include "sim/counts.h"

namespace fq::engine {

namespace {

// ------------------------------------------------------------- framing --

/** "FQCK" little-endian. */
constexpr std::uint32_t kMagic = 0x4B434651u;

/** Bit-exact 64-bit view of a double (NaN payloads and -0.0 included). */
std::uint64_t
double_bits(double v)
{
    std::uint64_t u = 0;
    std::memcpy(&u, &v, sizeof(u));
    return u;
}

double
bits_double(std::uint64_t u)
{
    double v = 0.0;
    std::memcpy(&v, &u, sizeof(v));
    return v;
}

using common::crc32;

/** Little-endian fixed-width append-only buffer. */
class ByteWriter
{
  public:
    void
    put_u8(std::uint8_t v)
    {
        bytes_.push_back(v);
    }

    void
    put_u32(std::uint32_t v)
    {
        for (int k = 0; k < 4; ++k)
            bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * k)));
    }

    void
    put_u64(std::uint64_t v)
    {
        for (int k = 0; k < 8; ++k)
            bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * k)));
    }

    void
    put_i32(std::int32_t v)
    {
        put_u32(static_cast<std::uint32_t>(v));
    }

    void
    put_double(double v)
    {
        put_u64(double_bits(v));
    }

    void
    put_string(const std::string& s)
    {
        put_u32(static_cast<std::uint32_t>(s.size()));
        bytes_.insert(bytes_.end(), s.begin(), s.end());
    }

    void
    put_int_vector(const std::vector<int>& v)
    {
        put_u32(static_cast<std::uint32_t>(v.size()));
        for (int x : v)
            put_i32(x);
    }

    const std::vector<std::uint8_t>& bytes() const { return bytes_; }
    std::vector<std::uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<std::uint8_t> bytes_;
};

/** Bounds-checked little-endian reader; every overrun is CheckpointError
 *  (a truncated or length-corrupted payload, never UB). */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t* data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    std::uint8_t
    get_u8()
    {
        need(1);
        return data_[pos_++];
    }

    std::uint32_t
    get_u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int k = 0; k < 4; ++k)
            v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * k);
        return v;
    }

    std::uint64_t
    get_u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int k = 0; k < 8; ++k)
            v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * k);
        return v;
    }

    std::int32_t
    get_i32()
    {
        return static_cast<std::int32_t>(get_u32());
    }

    double
    get_double()
    {
        return bits_double(get_u64());
    }

    std::string
    get_string()
    {
        const std::uint32_t n = get_u32();
        need(n);
        std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
        pos_ += n;
        return s;
    }

    std::vector<int>
    get_int_vector()
    {
        const std::uint32_t n = get_u32();
        // Each entry costs 4 bytes; pre-check so a corrupt length cannot
        // drive a near-2^32 reserve before the first get_i32 would throw.
        need(static_cast<std::size_t>(n) * 4);
        std::vector<int> v;
        v.reserve(n);
        for (std::uint32_t k = 0; k < n; ++k)
            v.push_back(get_i32());
        return v;
    }

    std::size_t remaining() const { return size_ - pos_; }

  private:
    void
    need(std::size_t n)
    {
        if (size_ - pos_ < n)
            throw CheckpointError(
                "checkpoint payload truncated: need " + std::to_string(n) +
                " more bytes at offset " + std::to_string(pos_) + " of " +
                std::to_string(size_));
    }

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

// ------------------------------------------------- fingerprint helpers --

std::uint64_t
mix(std::uint64_t h, std::uint64_t v)
{
    return combine_seeds(h, v);
}

std::uint64_t
mix_double(std::uint64_t h, double v)
{
    return mix(h, double_bits(v));
}

} // namespace

// --------------------------------------------------------- fingerprints --

std::uint64_t
model_fingerprint(const ising::IsingModel& model)
{
    std::uint64_t h = hash_seed("fq-checkpoint-model");
    h = mix(h, static_cast<std::uint64_t>(model.num_spins()));
    for (double c : model.linear_terms())
        h = mix_double(h, c);
    h = mix(h, static_cast<std::uint64_t>(model.num_quadratic_terms()));
    for (const auto& term : model.quadratic_terms()) {
        h = mix(h, static_cast<std::uint64_t>(term.i));
        h = mix(h, static_cast<std::uint64_t>(term.j));
        h = mix_double(h, term.coefficient);
    }
    h = mix_double(h, model.offset());
    return h;
}

std::uint64_t
config_fingerprint(const frozenqubits::DriverConfig& config)
{
    // Every field that can change what a solve PRODUCES, and nothing that
    // only changes how fast or how durably it runs (threads, wave_share,
    // checkpoint_interval) — the exclusion the header documents.
    std::uint64_t h = hash_seed("fq-checkpoint-config");
    h = mix(h, static_cast<std::uint64_t>(config.num_freeze));
    h = mix(h, static_cast<std::uint64_t>(config.policy));
    h = mix(h, config.symmetry_pruning ? 1 : 0);
    h = mix(h, config.use_template_editing ? 1 : 0);
    h = mix(h, config.fuse_simulation ? 1 : 0);
    h = mix(h, static_cast<std::uint64_t>(config.backend));
    h = mix(h, static_cast<std::uint64_t>(config.compile.layout));
    h = mix(h, static_cast<std::uint64_t>(config.compile.router.lookahead));
    h = mix_double(h, config.compile.router.lookahead_weight);
    h = mix_double(h, config.compile.router.decay);
    h = mix(h, config.compile.router.seed);
    h = mix(h, config.compile.run_optimization_passes ? 1 : 0);
    h = mix(h, config.compile.decompose_swaps ? 1 : 0);
    h = mix(h, static_cast<std::uint64_t>(config.p1_grid_resolution));
    h = mix(h, config.seed);
    h = mix(h, static_cast<std::uint64_t>(config.max_depth));
    h = mix(h, static_cast<std::uint64_t>(config.max_circuits));
    h = mix(h, static_cast<std::uint64_t>(config.partition_width));
    h = mix(h, config.prune_dominated ? 1 : 0);
    h = mix(h, static_cast<std::uint64_t>(config.rerank_interval));
    h = mix(h, static_cast<std::uint64_t>(config.deadline_cost_units));
    // Mixed only when active so every pre-sparsify config hashes exactly
    // as it did before the field existed — v1 snapshots keep restoring.
    if (config.sparsify_keep != 0.0)
        h = mix_double(h, config.sparsify_keep);
    return h;
}

std::uint64_t
plan_fingerprint(const SolveTree& tree)
{
    std::uint64_t h = hash_seed("fq-checkpoint-plan");
    h = mix(h, static_cast<std::uint64_t>(tree.leaves.size()));
    h = mix(h, static_cast<std::uint64_t>(tree.max_depth));
    for (const auto& leaf : tree.leaves) {
        h = mix(h, leaf.rng_seed);
        h = mix(h, static_cast<std::uint64_t>(tree.leaf_width(leaf.leaf_id)));
        h = mix(h, static_cast<std::uint64_t>(leaf.local_solve));
        h = mix(h, leaf.needs_repair ? 1 : 0);
        h = mix(h, leaf.fuse ? 1 : 0);
        h = mix(h, static_cast<std::uint64_t>(leaf.backend));
        h = mix(h, static_cast<std::uint64_t>(leaf.build.num_layers));
        h = mix(h, leaf.tpl_compatible ? 1 : 0);
        // Only when a Sparsify proxy drives the optimizer loop, so trees
        // the old vocabulary could express keep their old fingerprints.
        if (leaf.proxy) {
            h = mix(h, hash_seed("fq-plan-proxy"));
            h = mix(h, static_cast<std::uint64_t>(
                           leaf.proxy->num_quadratic_terms()));
        }
    }
    return h;
}

// --------------------------------------------------- capture / restore --

SolveCheckpoint
capture_checkpoint(const WaveRequest& request)
{
    FQ_REQUIRE(request.model != nullptr && request.tree != nullptr &&
                   request.schedule != nullptr &&
                   request.reducer != nullptr && request.dev != nullptr &&
                   request.config != nullptr,
               "checkpoint capture over an unwired request");
    FQ_REQUIRE(!request.done(),
               "cannot checkpoint a finished request — a completed solve "
               "has nothing to resume");

    SolveCheckpoint ck;
    ck.model_hash = model_fingerprint(*request.model);
    ck.config_hash = config_fingerprint(*request.config);
    ck.plan_hash = plan_fingerprint(*request.tree);
    ck.device_name = request.dev->name;
    ck.seed = request.seed;
    ck.shots = request.shots;

    ck.cursor = request.dispatched;
    ck.next_rerank = request.next_rerank;
    ck.epochs = request.epochs;

    const auto& schedule = *request.schedule;
    ck.executed = schedule.executed;
    ck.beyond_budget = schedule.beyond_budget;
    ck.pruned = schedule.pruned;
    ck.reranks = schedule.reranks;
    ck.rerank_pruned = schedule.rerank_pruned;
    ck.rerank_promoted = schedule.rerank_promoted;
    ck.rerank_demoted = schedule.rerank_demoted;
    ck.deadline_trimmed = schedule.deadline_trimmed;

    for (auto& [leaf_id, counts] :
         request.reducer->export_folded(request.dispatched)) {
        SolveCheckpoint::FoldedLeaf rec;
        rec.leaf_id = leaf_id;
        rec.width = request.tree->leaf_width(leaf_id);
        rec.arm_tag =
            node_kind_info(leaf_arm_kind(*request.tree, leaf_id)).frame_tag;
        rec.histogram.reserve(counts.histogram().size());
        for (const auto& [state, count] : counts.histogram())
            rec.histogram.emplace_back(state, count);
        ck.folded.push_back(std::move(rec));
    }

    const auto incumbent =
        request.reducer->epoch_snapshot(request.dispatched);
    ck.incumbent_valid = incumbent.valid;
    ck.incumbent_cost = incumbent.cost;
    ck.incumbent_leaf = incumbent.leaf;
    ck.incumbent_assignment = incumbent.assignment;
    return ck;
}

void
restore_checkpoint(const SolveCheckpoint& ck, WaveRequest& request)
{
    FQ_REQUIRE(request.model != nullptr && request.tree != nullptr &&
                   request.schedule != nullptr &&
                   request.reducer != nullptr && request.dev != nullptr &&
                   request.config != nullptr,
               "checkpoint restore into an unwired request");
    FQ_REQUIRE(request.dispatched == 0 && request.epochs == 0,
               "checkpoint restore target must be a freshly planned "
               "request");

    // ------------------------------------------------- identity checks --
    const auto check = [](bool ok, const std::string& what) {
        if (!ok)
            throw CheckpointError("checkpoint does not match this request: " +
                                  what);
    };
    check(ck.model_hash == model_fingerprint(*request.model),
          "model fingerprint differs (different Ising instance)");
    check(ck.config_hash == config_fingerprint(*request.config),
          "config fingerprint differs (a result-relevant DriverConfig "
          "field changed)");
    check(ck.device_name == request.dev->name,
          "device differs (snapshot from '" + ck.device_name +
              "', restoring on '" + request.dev->name + "')");
    check(ck.seed == request.seed, "plan seed differs");
    check(ck.shots == request.shots, "shot count differs");
    check(ck.plan_hash == plan_fingerprint(*request.tree),
          "plan fingerprint differs (the replanned solve tree is not the "
          "one the snapshot's cursor indexes into)");

    // ------------------------------------------ schedule-state checks --
    // The snapshot's partition must place every executable leaf exactly
    // once; a fresh plan from matching fingerprints covers the same set,
    // so any discrepancy is payload corruption the CRC framing missed.
    const std::size_t num_leaves =
        static_cast<std::size_t>(request.tree->num_executable_leaves());
    std::vector<char> seen(num_leaves, 0);
    std::size_t placed = 0;
    const auto place = [&](const std::vector<int>& ids) {
        for (int leaf_id : ids) {
            if (leaf_id < 0 ||
                static_cast<std::size_t>(leaf_id) >= num_leaves ||
                seen[static_cast<std::size_t>(leaf_id)])
                throw CheckpointError(
                    "snapshot schedule partition corrupt: leaf " +
                    std::to_string(leaf_id) +
                    " out of range or placed twice");
            seen[static_cast<std::size_t>(leaf_id)] = 1;
            ++placed;
        }
    };
    place(ck.executed);
    place(ck.beyond_budget);
    place(ck.pruned);
    if (placed != num_leaves)
        throw CheckpointError(
            "snapshot schedule partition corrupt: covers " +
            std::to_string(placed) + " of " + std::to_string(num_leaves) +
            " leaves");

    // A snapshot is only taken mid-solve, so its cursor must sit strictly
    // inside the scheduled-leaf list — a cursor at or past the end is a
    // corrupt or hand-edited snapshot, not a resumable state.
    FQ_REQUIRE(ck.cursor < ck.executed.size(),
               "restored cursor exceeds the scheduled-leaf count");
    if (ck.next_rerank != 0 && ck.next_rerank <= ck.cursor)
        throw CheckpointError(
            "snapshot re-rank boundary " + std::to_string(ck.next_rerank) +
            " is not past its cursor " + std::to_string(ck.cursor));
    if (ck.folded.size() != ck.cursor)
        throw CheckpointError(
            "snapshot holds " + std::to_string(ck.folded.size()) +
            " folded records for a cursor of " + std::to_string(ck.cursor));
    for (std::size_t k = 0; k < ck.folded.size(); ++k) {
        const auto& rec = ck.folded[k];
        if (rec.leaf_id != ck.executed[k])
            throw CheckpointError(
                "folded record " + std::to_string(k) + " is leaf " +
                std::to_string(rec.leaf_id) + " but the schedule rank " +
                "holds leaf " + std::to_string(ck.executed[k]));
        if (rec.width != request.tree->leaf_width(rec.leaf_id))
            throw CheckpointError(
                "folded record for leaf " + std::to_string(rec.leaf_id) +
                " has register width " + std::to_string(rec.width) +
                ", the plan says " +
                std::to_string(request.tree->leaf_width(rec.leaf_id)));
        // v2 records carry the reduction arm the leaf executed under; the
        // replanned tree must put the same kind there (v1 records carry
        // kNoKindTag and predate the check).
        if (rec.arm_tag != kNoKindTag) {
            const std::uint8_t expect =
                node_kind_info(leaf_arm_kind(*request.tree, rec.leaf_id))
                    .frame_tag;
            if (rec.arm_tag != expect)
                throw CheckpointError(
                    "folded record for leaf " + std::to_string(rec.leaf_id) +
                    " was produced under node kind tag " +
                    std::to_string(rec.arm_tag) +
                    ", the replanned tree expands it under tag " +
                    std::to_string(expect));
        }
    }

    // ------------------------------------------------------- apply --
    auto& schedule = *request.schedule;
    schedule.executed = ck.executed;
    schedule.beyond_budget = ck.beyond_budget;
    schedule.pruned = ck.pruned;
    schedule.reranks = ck.reranks;
    schedule.rerank_pruned = ck.rerank_pruned;
    schedule.rerank_promoted = ck.rerank_promoted;
    schedule.rerank_demoted = ck.rerank_demoted;
    schedule.deadline_trimmed = ck.deadline_trimmed;

    // Re-fold the raw histograms: decode is deterministic, so this rebuilds
    // outcomes, incumbent and anytime trace bit for bit.
    for (const auto& rec : ck.folded) {
        sim::Counts counts(rec.width);
        for (const auto& [state, count] : rec.histogram)
            counts.add(state, count);
        request.reducer->fold(rec.leaf_id, std::move(counts));
    }

    request.dispatched = static_cast<std::size_t>(ck.cursor);
    request.next_rerank = static_cast<std::size_t>(ck.next_rerank);
    request.epochs = ck.epochs;

    // ------------------------------------------- self-validation --
    // The re-folded incumbent must reproduce the snapshot's record exactly
    // (bitwise on the cost): anything else means the payload was corrupted
    // in a way the CRC framing could not see, or decode determinism broke.
    const auto incumbent = request.reducer->epoch_snapshot(ck.cursor);
    const bool incumbent_ok =
        incumbent.valid == ck.incumbent_valid &&
        incumbent.leaf == ck.incumbent_leaf &&
        (!ck.incumbent_valid ||
         (double_bits(incumbent.cost) == double_bits(ck.incumbent_cost) &&
          incumbent.assignment == ck.incumbent_assignment));
    if (!incumbent_ok)
        throw CheckpointError(
            "re-folded incumbent does not reproduce the snapshot's record "
            "— snapshot corrupt or decode determinism violated");
}

// --------------------------------------------------------- wire format --

std::vector<std::uint8_t>
encode_checkpoint(const SolveCheckpoint& ck, std::uint32_t version)
{
    FQ_REQUIRE(version >= kMinCheckpointFormatVersion &&
                   version <= kCheckpointFormatVersion,
               "encode_checkpoint: unsupported format version");
    ByteWriter payload;
    payload.put_u64(ck.model_hash);
    payload.put_u64(ck.config_hash);
    payload.put_u64(ck.plan_hash);
    payload.put_string(ck.device_name);
    payload.put_u64(ck.seed);
    payload.put_i32(ck.shots);

    payload.put_u64(ck.cursor);
    payload.put_u64(ck.next_rerank);
    payload.put_i32(ck.epochs);

    payload.put_int_vector(ck.executed);
    payload.put_int_vector(ck.beyond_budget);
    payload.put_int_vector(ck.pruned);
    payload.put_i32(ck.reranks);
    payload.put_i32(ck.rerank_pruned);
    payload.put_i32(ck.rerank_promoted);
    payload.put_i32(ck.rerank_demoted);
    payload.put_i32(ck.deadline_trimmed);

    payload.put_u32(static_cast<std::uint32_t>(ck.folded.size()));
    for (const auto& rec : ck.folded) {
        payload.put_i32(rec.leaf_id);
        payload.put_i32(rec.width);
        if (version >= 2)
            payload.put_u8(rec.arm_tag);
        payload.put_u32(static_cast<std::uint32_t>(rec.histogram.size()));
        for (const auto& [state, count] : rec.histogram) {
            payload.put_u64(state);
            payload.put_u64(count);
        }
    }

    payload.put_u8(ck.incumbent_valid ? 1 : 0);
    payload.put_double(ck.incumbent_cost);
    payload.put_i32(ck.incumbent_leaf);
    payload.put_u32(
        static_cast<std::uint32_t>(ck.incumbent_assignment.size()));
    for (std::int8_t spin : ck.incumbent_assignment)
        payload.put_u8(static_cast<std::uint8_t>(spin));

    const auto& body = payload.bytes();
    ByteWriter framed;
    framed.put_u32(kMagic);
    framed.put_u32(version);
    framed.put_u64(static_cast<std::uint64_t>(body.size()));
    framed.put_u32(crc32(body.data(), body.size()));
    auto out = framed.take();
    out.insert(out.end(), body.begin(), body.end());
    return out;
}

SolveCheckpoint
decode_checkpoint(const std::uint8_t* data, std::size_t size)
{
    ByteReader frame(data, size);
    const std::uint32_t magic = frame.get_u32();
    if (magic != kMagic)
        throw CheckpointError("not a checkpoint file (bad magic)");
    const std::uint32_t version = frame.get_u32();
    if (version < kMinCheckpointFormatVersion ||
        version > kCheckpointFormatVersion)
        throw CheckpointError(
            "unsupported checkpoint format version " +
            std::to_string(version) + " (this build reads versions " +
            std::to_string(kMinCheckpointFormatVersion) + ".." +
            std::to_string(kCheckpointFormatVersion) + ")");
    const std::uint64_t length = frame.get_u64();
    const std::uint32_t expected_crc = frame.get_u32();
    if (length != frame.remaining())
        throw CheckpointError(
            "checkpoint payload length mismatch: header says " +
            std::to_string(length) + " bytes, file holds " +
            std::to_string(frame.remaining()));
    const std::uint8_t* body = data + (size - frame.remaining());
    if (crc32(body, static_cast<std::size_t>(length)) != expected_crc)
        throw CheckpointError(
            "checkpoint payload failed its CRC check (corrupt file)");

    ByteReader payload(body, static_cast<std::size_t>(length));
    SolveCheckpoint ck;
    ck.model_hash = payload.get_u64();
    ck.config_hash = payload.get_u64();
    ck.plan_hash = payload.get_u64();
    ck.device_name = payload.get_string();
    ck.seed = payload.get_u64();
    ck.shots = payload.get_i32();

    ck.cursor = payload.get_u64();
    ck.next_rerank = payload.get_u64();
    ck.epochs = payload.get_i32();

    ck.executed = payload.get_int_vector();
    ck.beyond_budget = payload.get_int_vector();
    ck.pruned = payload.get_int_vector();
    ck.reranks = payload.get_i32();
    ck.rerank_pruned = payload.get_i32();
    ck.rerank_promoted = payload.get_i32();
    ck.rerank_demoted = payload.get_i32();
    ck.deadline_trimmed = payload.get_i32();

    const std::uint32_t num_folded = payload.get_u32();
    ck.folded.reserve(num_folded);
    for (std::uint32_t k = 0; k < num_folded; ++k) {
        SolveCheckpoint::FoldedLeaf rec;
        rec.leaf_id = payload.get_i32();
        rec.width = payload.get_i32();
        if (version >= 2) {
            rec.arm_tag = payload.get_u8();
            // A tag this build's kind-metadata table cannot name means the
            // snapshot came from a newer (or corrupted) vocabulary —
            // restoring it would mis-attribute the record's arm silently.
            if (node_kind_info_by_tag(rec.arm_tag) == nullptr)
                throw CheckpointError(
                    "checkpoint folded record " + std::to_string(k) +
                    " carries unknown node kind tag " +
                    std::to_string(rec.arm_tag) +
                    " (snapshot from a newer reduction vocabulary?)");
        }
        const std::uint32_t entries = payload.get_u32();
        rec.histogram.reserve(entries);
        for (std::uint32_t e = 0; e < entries; ++e) {
            const std::uint64_t state = payload.get_u64();
            const std::uint64_t count = payload.get_u64();
            rec.histogram.emplace_back(state, count);
        }
        ck.folded.push_back(std::move(rec));
    }

    ck.incumbent_valid = payload.get_u8() != 0;
    ck.incumbent_cost = payload.get_double();
    ck.incumbent_leaf = payload.get_i32();
    const std::uint32_t spins = payload.get_u32();
    ck.incumbent_assignment.reserve(spins);
    for (std::uint32_t k = 0; k < spins; ++k)
        ck.incumbent_assignment.push_back(
            static_cast<std::int8_t>(payload.get_u8()));

    if (payload.remaining() != 0)
        throw CheckpointError(
            "checkpoint payload has " +
            std::to_string(payload.remaining()) +
            " trailing bytes (corrupt or mis-framed file)");
    return ck;
}

void
write_checkpoint_file(const std::string& path, const SolveCheckpoint& ck)
{
    const auto bytes = encode_checkpoint(ck);
    // Write-then-rename: a crash mid-write leaves the previous snapshot
    // intact instead of a torn file — the property the kill-and-resume CI
    // smoke test relies on.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw CheckpointError("cannot open '" + tmp +
                                  "' for writing");
        out.write(reinterpret_cast<const char*>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        out.flush();
        if (!out) {
            std::remove(tmp.c_str());
            throw CheckpointError("failed writing checkpoint to '" + tmp +
                                  "'");
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw CheckpointError("cannot rename '" + tmp + "' to '" + path +
                              "'");
    }
}

SolveCheckpoint
read_checkpoint_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw CheckpointError("cannot open checkpoint file '" + path +
                              "'");
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (in.bad())
        throw CheckpointError("failed reading checkpoint file '" + path +
                              "'");
    return decode_checkpoint(bytes.data(), bytes.size());
}

} // namespace fq::engine
