/**
 * @file
 * The open reduction vocabulary: node expansion as a registry of
 * pluggable NodeExpander strategies instead of a closed switch over
 * NodeKind. Each reduction (Freeze, Partition, Sparsify) is one
 * self-contained unit declaring
 *
 *   - how to expand a node (NodeExpander::expand through the TreeBuild
 *     driver facade),
 *   - how its children are scored for the SA-bound scheduler
 *     (score_penalty: the ranking pessimism charged for information the
 *     reduction discarded),
 *   - how its lift composes back into parent spin assignments
 *     (lift_requires_repair: whether the decode must greedy-repair on
 *     the original model because the reduction lost couplings the lift
 *     cannot restore),
 *   - how its leaves fold into the StreamingReducer (the repair flag
 *     plus the per-kind diagnostics key),
 *
 * and one row in the kind-metadata table (name, plan-column glyph,
 * diagnostics key, checkpoint frame tag) — so adding a reduction is one
 * registration, not surgery across five files.
 *
 * Determinism obligations every expander must meet (the engine-wide
 * contract): all order-dependent choices are fixed at plan time from
 * plan-derived seeds (node stream seeds, never execution order); an
 * expander must be a pure function of (node model, config, seed) so
 * trees are bit-identical across threads=1/N and solo-vs-service; and a
 * disabled expander must leave every byte of the tree unchanged.
 */
#ifndef FQ_ENGINE_EXPANDER_H
#define FQ_ENGINE_EXPANDER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/solve_tree.h"

namespace fq::engine {

// ------------------------------------------------ kind metadata table --

/** The ONE table describing every node kind: replaces the
 *  NodeKind/node_kind_name switches formerly scattered across
 *  solve_tree.cc, scheduler.cc and fqtool.cc. */
struct NodeKindInfo
{
    NodeKind kind = NodeKind::Leaf;
    /** Printable name (fqtool plan tree rendering). */
    const char* name = "";
    /** Short plan-column glyph; column widths derive from these, so a
     *  new kind can never shear the budget cut line. */
    const char* glyph = "";
    /** Stable key for per-kind diagnostics counters and traces. */
    const char* diagnostics_key = "";
    /** Stable tag identifying this kind in checkpoint v2 frames (never
     *  reuse a retired value; kNoKindTag is reserved for v1 frames). */
    std::uint8_t frame_tag = 0;
};

/** Tag of checkpoint frames that predate per-kind tagging (format v1). */
inline constexpr std::uint8_t kNoKindTag = 0xFF;

/** Number of registered node kinds (fixed-size diagnostics arrays). */
inline constexpr std::size_t kNumNodeKinds = 4;

/** Full metadata table in registration order. */
const std::vector<NodeKindInfo>& node_kind_table();

/** Metadata row for @p kind (FQ_REQUIREs a registered kind). */
const NodeKindInfo& node_kind_info(NodeKind kind);

/** Row matching a checkpoint frame tag; null for unknown tags. */
const NodeKindInfo* node_kind_info_by_tag(std::uint8_t frame_tag);

/** Dense index of @p kind into per-kind counter arrays
 *  (same order as node_kind_table()). */
std::size_t node_kind_index(NodeKind kind);

// ------------------------------------------------------ driver facade --

/** Everything a terminal node needs to become an executable leaf: the
 *  parent reduction's template resolution plus the leaf's plan-derived
 *  RNG stream. Passed through the driver so terminal-wrapper expanders
 *  (Sparsify) can interpose without re-resolving templates. */
struct LeafContext
{
    /** Sub-problem index inside the parent Freeze plan (-1 otherwise). */
    int local_solve = -1;
    std::uint64_t rng_seed = 0;
    std::shared_ptr<const CompiledTemplate> tpl;
    bool tpl_compatible = false;
    std::shared_ptr<const ParametricTemplate> family;
    qaoa::BuildOptions build;
};

class NodeExpander;

/**
 * The generic tree-building driver: owns the growing SolveTree and the
 * mechanics every reduction shares (child insertion with lineage
 * bookkeeping, leaf registration with backend/tier/fuse resolution,
 * private template resolution, recursive dispatch through the
 * registry). build_solve_tree is a thin wrapper over run().
 */
class TreeBuild
{
  public:
    TreeBuild(const device::Device& dev,
              const frozenqubits::DriverConfig& config,
              TemplateCache& cache);

    /** Build the whole tree (the former TreeBuilder::build). */
    SolveTree run(const ising::IsingModel& model, Rng& rng);

    // ---- facade used by expanders ----
    const frozenqubits::DriverConfig& config() const { return config_; }
    const device::Device& device() const { return dev_; }
    TemplateCache& cache() { return cache_; }
    const SolveNode& node(int ni) const;
    SolveNode& mutable_node(int ni);
    SolveLeaf& leaf(int leaf_id);
    /** Node register width (surviving spins of its cell). */
    int width(int ni) const;

    /** Compose a node-local sub-problem with its parent's bookkeeping:
     *  surviving spins map through the parent's original_of, locally
     *  frozen spins translate to true original indices. */
    static frozenqubits::SubProblem
    compose_subproblem(const frozenqubits::SubProblem& parent,
                       const frozenqubits::SubProblem& local);

    /** Append a child node. @p repair_lineage is the expanding
     *  reduction's lift_requires_repair() — OR'd into the parent's
     *  accumulated flag so descendants know their decode obligations. */
    int add_child(int parent, frozenqubits::SubProblem sub,
                  std::uint64_t stream_seed, bool repair_lineage);

    /** Register @p ni as an executable leaf carrying @p ctx; @p proxy,
     *  when set, is the reduced optimizer-loop model (Sparsify). Returns
     *  the new leaf id. */
    int make_leaf(int ni, const LeafContext& ctx,
                  std::shared_ptr<const ising::IsingModel> proxy = nullptr);

    /** Private template resolution for nodes without freeze siblings to
     *  share with (partition fragments): cache-served per structure. */
    LeafContext resolve_private_templates(int ni);

    /** True when a recursive reduction claims @p ni. */
    bool recursively_expandable(int ni) const;

    /** Expand @p ni through the first applicable recursive expander
     *  (FQ_REQUIREs one exists). @p root_rng is non-null only for the
     *  root, whose draws must match the flat engine's. */
    void expand(int ni, Rng* root_rng);

    /** Terminal dispatch: give terminal-wrapper expanders (Sparsify)
     *  first claim on @p ni, else register it as a plain leaf. Returns
     *  the executable leaf id either way. */
    int finalize(int ni, const LeafContext& ctx);

  private:
    const device::Device& dev_;
    const frozenqubits::DriverConfig& config_;
    TemplateCache& cache_;
    SolveTree tree_;
};

// -------------------------------------------------- expander interface --

/**
 * One reduction strategy. Implementations must be stateless (the
 * registry shares one instance across threads) and deterministic: see
 * the file comment for the contract obligations.
 */
class NodeExpander
{
  public:
    virtual ~NodeExpander() = default;

    /** This reduction's metadata row (also its registry identity). */
    virtual const NodeKindInfo& info() const = 0;

    /** Does this reduction claim @p ni? Consulted in registry order
     *  (Partition, Freeze, Sparsify), so earlier reductions win. */
    virtual bool applicable(const TreeBuild& build, int ni) const = 0;

    /** Recursive reductions consume an expansion level and produce
     *  inner children; terminal wrappers attach to would-be leaves
     *  without consuming depth. */
    virtual bool recursive() const = 0;

    /**
     * Expand @p ni through the driver facade. Recursive reductions add
     * children (descending via TreeBuild::expand / finalize) and return
     * -1; terminal wrappers wrap the node, register its single
     * executable leaf from @p ctx (non-null exactly for them) and
     * return its leaf id.
     */
    virtual int expand(TreeBuild& build, int ni, Rng* root_rng,
                      const LeafContext* ctx) const = 0;

    /**
     * Scheduler hook: ranking pessimism charged to every descendant
     * leaf of a node of this kind — the |weight| share of information
     * the reduction discarded that a leaf-local SA presolve can never
     * see. Pure function of the node; must be finite and >= 0.
     */
    virtual double score_penalty(const SolveNode& node) const = 0;

    /**
     * Lift/fold hook: true when leaves under this reduction decode
     * against a lift that lost couplings (StreamingReducer must fill
     * from the presolve base and greedy-repair on the original model).
     */
    virtual bool lift_requires_repair() const = 0;
};

/** The process-wide expander registry (immutable after construction,
 *  safe to share across threads). */
class ExpanderRegistry
{
  public:
    static const ExpanderRegistry& instance();

    /** Expander for @p kind; null for NodeKind::Leaf (leaves are made,
     *  not expanded). */
    const NodeExpander* find(NodeKind kind) const;

    /** As find(), but FQ_REQUIREs the kind has an expander. */
    const NodeExpander& get(NodeKind kind) const;

    /** First applicable recursive expander for @p ni, or null. */
    const NodeExpander* select_recursive(const TreeBuild& build,
                                         int ni) const;

    /** First applicable terminal-wrapper expander for @p ni, or null. */
    const NodeExpander* select_terminal(const TreeBuild& build,
                                        int ni) const;

    /** All registered expanders in consultation order. */
    const std::vector<const NodeExpander*>& all() const
    {
        return ordered_;
    }

  private:
    ExpanderRegistry();
    std::vector<std::unique_ptr<NodeExpander>> owned_;
    std::vector<const NodeExpander*> ordered_;
};

/** Kind of the reduction arm leaf @p leaf_id executes under: the kind
 *  of its node's parent (every leaf node hangs off the reduction that
 *  produced it). Diagnostics and checkpoint v2 frames key on this. */
NodeKind leaf_arm_kind(const SolveTree& tree, int leaf_id);

} // namespace fq::engine

#endif // FQ_ENGINE_EXPANDER_H
