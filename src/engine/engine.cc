#include "engine/engine.h"

#include <algorithm>
#include <chrono>

#include "common/error.h"
#include "engine/wave_loop.h"
#include "frozenqubits/template_editor.h"
#include "qaoa/qaoa_builder.h"
#include "sim/noise_model.h"

namespace fq::engine {

namespace {

using Clock = std::chrono::steady_clock;

double
ms_since(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

/**
 * Fill a CircuitStats from a compiled circuit + per-term expectations.
 * @p shared_attenuation / @p shared_eps, when given, replace the O(gates)
 * noise analysis — valid whenever the circuit is an RZ-angle edit of the
 * one they were computed from (angles touch neither quantity).
 */
frozenqubits::CircuitStats
stats_from_compile(const ising::IsingModel& model, const device::Device& dev,
                   const transpiler::CompileResult& compiled,
                   const qaoa::P1OptimizationResult& tuned,
                   const sim::NoiseAttenuation* shared_attenuation = nullptr,
                   const double* shared_eps = nullptr)
{
    frozenqubits::CircuitStats s;
    s.num_qubits = model.num_spins();
    s.pre_routing_cx = compiled.pre_routing_cx;
    s.post_routing_cx = compiled.metrics.cx_gates;
    s.swaps = compiled.swaps_inserted;
    s.depth = compiled.metrics.depth;
    s.duration_ns = compiled.metrics.duration_ns;
    s.compile_time_ms = compiled.compile_time_ms;
    s.angles = tuned.angles;
    s.ev_ideal = tuned.energy;

    sim::NoiseAttenuation local;
    if (!shared_attenuation) {
        local = sim::compute_attenuation(compiled.physical, dev.calibration);
        shared_attenuation = &local;
    }
    s.eps = shared_eps ? *shared_eps
                       : sim::expected_probability_of_success(
                             compiled.physical, dev.calibration);

    const auto ideal = qaoa::evaluate_p1(model, tuned.angles);
    s.ev_noisy =
        sim::noisy_expectation(model, ideal.z, ideal.zz,
                               *shared_attenuation, compiled.final_layout);
    return s;
}

/** The sub-problem whose structure the shared template was compiled from. */
const frozenqubits::SubProblem&
template_owner(const ExecutionPlan& plan)
{
    return plan.subproblems[static_cast<std::size_t>(
        plan.tasks.front().solve)];
}

} // namespace

ExecutionEngine::ExecutionEngine(int num_threads) : executor_(num_threads)
{
}

frozenqubits::CircuitStats
ExecutionEngine::evaluate(const ising::IsingModel& model,
                          const device::Device& dev,
                          const frozenqubits::DriverConfig& config)
{
    const auto tuned = qaoa::optimize_p1(model, config.p1_grid_resolution);
    qaoa::BuildOptions build;
    build.num_layers = 1;
    bool was_hit = false;
    const auto tpl =
        cache_.get_or_compile(model, dev, config.compile, build, &was_hit);
    auto stats = stats_from_compile(model, dev, tpl->compiled, tuned,
                                    &tpl->attenuation, &tpl->eps);
    if (was_hit)
        stats.compile_time_ms = 0.0; // served from cache, nothing compiled
    return stats;
}

frozenqubits::CircuitStats
ExecutionEngine::run_task(const ExecutionPlan& plan,
                          const SubProblemTask& task,
                          const device::Device& dev,
                          const frozenqubits::DriverConfig& config)
{
    const auto& sub =
        plan.subproblems[static_cast<std::size_t>(task.solve)];
    const auto tuned =
        qaoa::optimize_p1(sub.model, config.p1_grid_resolution);

    if (plan.compiled_template &&
        frozenqubits::templates_compatible(template_owner(plan).model,
                                           sub.model)) {
        // Structure, routing, attenuation, and EPS are the template's for
        // every sibling; the sibling's executable differs only by an
        // RZ-angle edit (Section 3.7.1), which no reported stat reads — so
        // the stats come straight from the shared entry, with compile time
        // charged only to the task (and run) that actually compiled it.
        const auto& tpl = *plan.compiled_template;
        auto stats = stats_from_compile(sub.model, dev, tpl.compiled, tuned,
                                        &tpl.attenuation, &tpl.eps);
        if (task.plan_index != 0 || plan.template_cache_hit)
            stats.compile_time_ms = 0.0; // edit / cache hit, not a compile
        return stats;
    }

    const auto logical = qaoa::build_qaoa_circuit(sub.model, plan.build);
    const auto compiled =
        transpiler::compile(logical, dev, config.compile);
    return stats_from_compile(sub.model, dev, compiled, tuned);
}

void
ExecutionEngine::start_diagnostics(const ExecutionPlan& plan)
{
    diagnostics_ = Diagnostics{};
    diagnostics_.num_subproblems = plan.num_subproblems();
    diagnostics_.tasks_executed = plan.num_executed();
    diagnostics_.template_cache_hit = plan.template_cache_hit;
    diagnostics_.fused_simulation = plan.fuse_simulation;
    diagnostics_.threads = executor_.num_threads();
    for (const auto& task : plan.tasks) {
        diagnostics_.executed_subproblems.push_back(task.solve);
        for (int mirror : task.mirrors)
            diagnostics_.pruned_subproblems.push_back(mirror);
    }
    diagnostics_.mirrors_inferred =
        static_cast<int>(diagnostics_.pruned_subproblems.size());
    if (plan.compiled_template)
        diagnostics_.template_edits = plan.num_executed() - 1;
}

frozenqubits::Report
ExecutionEngine::run(const ising::IsingModel& model,
                     const device::Device& dev,
                     const frozenqubits::DriverConfig& config)
{
    const auto start = Clock::now();
    Rng rng(config.seed);
    const auto plan = make_plan(model, dev, config, cache_, rng);
    start_diagnostics(plan);
    // The report arms are evaluated analytically (p=1 closed form + noise
    // model) — no statevector runs here, so fusion cannot apply and must
    // not be advertised; only solve() simulates.
    diagnostics_.fused_simulation = false;

    // Task 0 is the baseline arm; tasks 1..k are the planned sub-problems.
    const int count = 1 + plan.num_executed();
    // Report the EFFECTIVE width: a batch never spans more workers than it
    // has tasks, and single-task batches run inline.
    diagnostics_.threads = std::min(executor_.num_threads(), count);
    auto stats = executor_.map<frozenqubits::CircuitStats>(
        count, [&](int index, BatchExecutor::Scratch&) {
            if (index == 0)
                return evaluate(model, dev, config);
            return run_task(plan, plan.tasks[static_cast<std::size_t>(
                                      index - 1)],
                            dev, config);
        });

    const auto baseline = stats.front();
    stats.erase(stats.begin());
    auto report = reduce_report(plan, baseline, std::move(stats));
    diagnostics_.wall_ms = ms_since(start);
    return report;
}

sim::Counts
simulate_scheduled_leaf(TemplateCache& cache, const SolveTree& tree,
                        int leaf_id, const device::Device& dev,
                        const frozenqubits::DriverConfig& config, int shots,
                        BatchExecutor::Scratch& scratch, bool* fused_hit,
                        TemplateTier* fuse_tier)
{
    if (fuse_tier)
        *fuse_tier = TemplateTier::Compile;
    const auto& leaf = tree.leaves[static_cast<std::size_t>(leaf_id)];
    const auto& sub = tree.nodes[static_cast<std::size_t>(leaf.node)].sub;
    FQ_REQUIRE(sub.model.num_spins() <= sim::kMaxSimQubits,
               "leaf too wide for the statevector — raise max_depth, "
               "num_freeze or enable partition_width");

    // The leaf's own build options: the exact ones its template and fused
    // program were compiled under.
    const qaoa::BuildOptions& build = leaf.build;
    // Sparsify-lineage leaves tune on their plan-time proxy (Red-QAOA:
    // the optimizer loop pays for the pruned model); everything below —
    // circuit, noise quantities, sampling — stays on the full model.
    const auto tuned = qaoa::optimize_p1(
        leaf.proxy ? *leaf.proxy : sub.model, config.p1_grid_resolution);

    // Survival and readout-flip probabilities come precomputed from the
    // freeze level's shared template when its structure matches (siblings
    // differ only in RZ angles, which touch neither). Otherwise compile
    // this leaf directly and analyze its own circuit.
    double state_survival = 0.0;
    std::vector<double> readout_flip;
    if (leaf.tpl && leaf.tpl_compatible) {
        state_survival = leaf.tpl->attenuation.global_state_survival();
        readout_flip = leaf.tpl->readout_flip;
    } else {
        const auto logical = qaoa::build_qaoa_circuit(sub.model, build);
        const auto compiled =
            transpiler::compile(logical, dev, config.compile);
        const auto attenuation =
            sim::compute_attenuation(compiled.physical, dev.calibration);
        state_survival = attenuation.global_state_survival();
        readout_flip = readout_flip_for(compiled, dev.calibration,
                                        sub.model.num_spins());
    }

    // Ideal state on the LOGICAL register, in this worker's reusable
    // scratch buffer. The fused path replays the cache-compiled diagonal
    // weight tables at this leaf's angles — one pass per cost layer —
    // instead of applying |E|+|V| gates; the naive path remains as the
    // --no-fusion escape hatch.
    if (leaf.fuse) {
        // The family skeleton (when the plan attached one) lets a cache
        // miss materialize by patching coefficients into the cached fusion
        // skeleton instead of rebuilding the circuit — bit-identical tables
        // either way (asserted in tests), only the build cost differs.
        const auto program = cache.get_or_fuse(sub.model, build, fused_hit,
                                               leaf.family.get(), fuse_tier);
        // The kernel backend was chosen at plan time (leaf.backend, a pure
        // function of config and width) — execution only looks it up, so
        // scheduling order can never change a leaf's kernels.
        program->run({tuned.angles.gamma}, {tuned.angles.beta},
                     scratch.statevector,
                     sim::BackendRegistry::instance().get(leaf.backend));
    } else {
        const auto bound = qaoa::build_qaoa_circuit(sub.model, build)
                               .bind({tuned.angles.gamma},
                                     {tuned.angles.beta});
        sim::run_circuit(bound, scratch.statevector);
    }

    // Private stream: determined at plan time by the leaf's root path, so
    // any thread count samples identically.
    Rng leaf_rng(leaf.rng_seed);
    return sim::sample_noisy_counts(scratch.statevector, state_survival,
                                    readout_flip, shots, leaf_rng);
}

void
ExecutionEngine::start_diagnostics(const SolveTree& tree,
                                   const LeafSchedule& schedule)
{
    diagnostics_ = Diagnostics{};
    diagnostics_.num_subproblems = tree.num_leaf_nodes();
    diagnostics_.tasks_executed =
        static_cast<int>(schedule.executed.size());
    // Cache-served only when EVERY freeze level's template resolution was
    // a hit (a partition root has no plan of its own; deeper freeze nodes
    // each resolve their own level's template).
    bool any_template = false, all_hits = true;
    for (const auto& node : tree.nodes) {
        if (node.kind != NodeKind::Freeze || !node.plan.compiled_template)
            continue;
        any_template = true;
        all_hits = all_hits && node.plan.template_cache_hit;
    }
    diagnostics_.template_cache_hit = any_template && all_hits;
    diagnostics_.threads = executor_.num_threads();
    for (int leaf_id : schedule.executed) {
        const auto& leaf =
            tree.leaves[static_cast<std::size_t>(leaf_id)];
        diagnostics_.executed_subproblems.push_back(
            tree.flat() ? leaf.local_solve : leaf_id);
        diagnostics_.fused_simulation =
            diagnostics_.fused_simulation || leaf.fuse;
        if (leaf.fuse) {
            if (leaf.backend == sim::BackendKind::VectorizedFused)
                ++diagnostics_.leaves_simd_backend;
            else
                ++diagnostics_.leaves_scalar_backend;
        }
        switch (leaf.tier) {
        case TemplateTier::Hit: ++diagnostics_.leaves_tier_hit; break;
        case TemplateTier::Bind: ++diagnostics_.leaves_tier_bind; break;
        case TemplateTier::Compile:
            ++diagnostics_.leaves_tier_compile;
            break;
        }
        const auto arm = node_kind_index(leaf_arm_kind(tree, leaf_id));
        ++diagnostics_.kind_leaves_executed[arm];
        diagnostics_.kind_budget_units[arm] +=
            leaf_slot_cost(tree, leaf_id);
        // Only an EXECUTED leaf's mirrors are actually inferred — a
        // budget-skipped leaf infers nothing.
        for (int mirror_node : leaf.mirror_nodes)
            diagnostics_.pruned_subproblems.push_back(
                tree.flat() ? tree.nodes[static_cast<std::size_t>(
                                             mirror_node)]
                                  .local_solve
                            : mirror_node);
    }
    diagnostics_.mirrors_inferred =
        static_cast<int>(diagnostics_.pruned_subproblems.size());
    for (const auto& node : tree.nodes)
        diagnostics_.tree_depth =
            std::max(diagnostics_.tree_depth, node.depth);
    diagnostics_.tree_nodes = static_cast<int>(tree.nodes.size());
    diagnostics_.leaves_total = tree.num_executable_leaves();
    diagnostics_.leaves_beyond_budget =
        static_cast<int>(schedule.beyond_budget.size());
    diagnostics_.leaves_pruned =
        static_cast<int>(schedule.pruned.size());
    // Per-arm pruned = domination-pruned + budget-cut: the leaves each
    // reduction arm planned but will never run.
    for (int leaf_id : schedule.beyond_budget)
        ++diagnostics_.kind_leaves_pruned[node_kind_index(
            leaf_arm_kind(tree, leaf_id))];
    for (int leaf_id : schedule.pruned)
        ++diagnostics_.kind_leaves_pruned[node_kind_index(
            leaf_arm_kind(tree, leaf_id))];
    diagnostics_.scheduler_scored = schedule.scored;
}

frozenqubits::SampledSolve
ExecutionEngine::solve(const ising::IsingModel& model,
                       const device::Device& dev,
                       const frozenqubits::DriverConfig& config, int shots,
                       Rng& rng)
{
    return solve_impl(model, dev, config, shots, rng, /*seed=*/0,
                      /*restore_from=*/nullptr, /*sink=*/{});
}

frozenqubits::SampledSolve
ExecutionEngine::solve(const ising::IsingModel& model,
                       const device::Device& dev,
                       const frozenqubits::DriverConfig& config, int shots,
                       std::uint64_t seed, const CheckpointSink& sink)
{
    Rng rng(seed);
    return solve_impl(model, dev, config, shots, rng, seed,
                      /*restore_from=*/nullptr, sink);
}

frozenqubits::SampledSolve
ExecutionEngine::resume(const ising::IsingModel& model,
                        const device::Device& dev,
                        const frozenqubits::DriverConfig& config, int shots,
                        const SolveCheckpoint& snapshot,
                        const CheckpointSink& sink)
{
    // Replan from the SNAPSHOT's seed — restore_checkpoint fingerprint-
    // checks that (model, config, device, shots) produce the plan the
    // snapshot's cursor indexes into.
    Rng rng(snapshot.seed);
    return solve_impl(model, dev, config, shots, rng, snapshot.seed,
                      &snapshot, sink);
}

frozenqubits::SampledSolve
ExecutionEngine::solve_impl(const ising::IsingModel& model,
                            const device::Device& dev,
                            const frozenqubits::DriverConfig& config,
                            int shots, Rng& rng, std::uint64_t seed,
                            const SolveCheckpoint* restore_from,
                            const CheckpointSink& sink)
{
    FQ_REQUIRE(shots >= 1, "need at least one shot");
    const auto start = Clock::now();

    // Plan: build the hierarchical tree (recursive freeze / bisection /
    // leaf nodes, per-node shared templates), then rank and budget-cut its
    // leaves. Both stages are serial and fix every order-dependent decision
    // before a single circuit runs; adaptive re-ranking may later rewrite
    // the schedule's un-dispatched tail, but only as a pure function of
    // this request's fold count.
    const auto tree = build_solve_tree(model, dev, config, cache_, rng);
    auto schedule = make_schedule(model, tree, config,
                                  /*force_scoring=*/false, &executor_);
    // A fresh solve trims the plan to its deadline here (DeadlineError
    // when not even one leaf fits); a resume takes the snapshot's already
    // trimmed-and-re-ranked schedule wholesale instead.
    if (!restore_from)
        apply_deadline_trim(schedule, tree, config.deadline_cost_units,
                            /*folded=*/0);

    // Snapshot the plan-time order before re-ranking can rewrite the
    // tail: the plan side of the diagnostics' plan-vs-adaptive trace.
    std::vector<int> plan_order;
    if (config.rerank_interval > 0)
        for (int leaf_id : schedule.executed)
            plan_order.push_back(
                tree.flat()
                    ? tree.leaves[static_cast<std::size_t>(leaf_id)]
                          .local_solve
                    : leaf_id);

    // Execute through wave-synchronous epochs; the streaming reducer folds
    // each leaf's distribution into the incumbent decode as it lands. With
    // re-ranking off this is one wave spanning the whole schedule — the
    // legacy flat batch, bit for bit.
    StreamingReducer reducer(model, tree, schedule);
    WaveRequest request;
    request.model = &model;
    request.tree = &tree;
    request.schedule = &schedule;
    request.reducer = &reducer;
    request.dev = &dev;
    request.config = &config;
    request.shots = shots;
    request.seed = seed;
    if (restore_from)
        restore_checkpoint(*restore_from, request);

    // Plan-time diagnostics publish BEFORE execution, so a solve that
    // throws mid-wave still leaves ITS OWN plan state in
    // last_diagnostics(), not a stale predecessor's.
    start_diagnostics(tree, schedule);
    diagnostics_.threads =
        std::min(executor_.num_threads(),
                 static_cast<int>(schedule.executed.size()));
    if (restore_from)
        diagnostics_.resumed_from =
            static_cast<int>(restore_from->cursor);

    int checkpoints = 0;
    CheckpointHook hook;
    if (sink)
        hook = [&](WaveRequest& r) {
            ++checkpoints;
            return sink(capture_checkpoint(r));
        };
    // Execute through the seam: the local BatchExecutor by default, a
    // net::WorkerPool when one is attached. finish_request must run even
    // on a throw — WaveRequest storage is stack-reused, and a remote
    // backend keys its sessions on the pointer.
    LeafExecutor& leaf_exec = leaf_executor();
    try {
        run_wave_loop(leaf_exec, request, hook);
    } catch (...) {
        leaf_exec.finish_request(&request);
        throw;
    }
    const LeafExecutorStats remote = leaf_exec.request_stats(&request);
    leaf_exec.finish_request(&request);

    // Refresh against the FINAL schedule when a re-rank pruned, promoted
    // or demoted leaves after planning; otherwise the plan-time
    // diagnostics above are already exact.
    if (schedule.reranks > 0 || schedule.suspended) {
        const int resumed = diagnostics_.resumed_from;
        start_diagnostics(tree, schedule);
        diagnostics_.threads =
            std::min(executor_.num_threads(),
                     static_cast<int>(schedule.executed.size()));
        diagnostics_.resumed_from = resumed;
    }
    diagnostics_.epochs = request.epochs;
    diagnostics_.reranks = schedule.reranks;
    diagnostics_.rerank_pruned = schedule.rerank_pruned;
    diagnostics_.rerank_promoted = schedule.rerank_promoted;
    diagnostics_.rerank_demoted = schedule.rerank_demoted;
    diagnostics_.planned_subproblems = std::move(plan_order);
    diagnostics_.checkpoints = checkpoints;
    diagnostics_.deadline_trimmed = schedule.deadline_trimmed;
    diagnostics_.leaves_remote = remote.leaves_remote;
    diagnostics_.leaves_local =
        static_cast<long long>(schedule.executed.size()) -
        remote.leaves_remote;
    diagnostics_.leaves_redispatched = remote.leaves_redispatched;
    diagnostics_.remote_bytes_sent = remote.bytes_sent;
    diagnostics_.remote_bytes_received = remote.bytes_received;
    diagnostics_.worker_dispatches = remote.worker_dispatches;

    auto solved = reducer.finish();
    diagnostics_.wall_ms = ms_since(start);
    return solved;
}

} // namespace fq::engine
