#include "engine/engine.h"

#include <algorithm>
#include <chrono>

#include "common/error.h"
#include "frozenqubits/template_editor.h"
#include "qaoa/qaoa_builder.h"
#include "sim/noise_model.h"

namespace fq::engine {

namespace {

using Clock = std::chrono::steady_clock;

double
ms_since(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

/**
 * Fill a CircuitStats from a compiled circuit + per-term expectations.
 * @p shared_attenuation / @p shared_eps, when given, replace the O(gates)
 * noise analysis — valid whenever the circuit is an RZ-angle edit of the
 * one they were computed from (angles touch neither quantity).
 */
frozenqubits::CircuitStats
stats_from_compile(const ising::IsingModel& model, const device::Device& dev,
                   const transpiler::CompileResult& compiled,
                   const qaoa::P1OptimizationResult& tuned,
                   const sim::NoiseAttenuation* shared_attenuation = nullptr,
                   const double* shared_eps = nullptr)
{
    frozenqubits::CircuitStats s;
    s.num_qubits = model.num_spins();
    s.pre_routing_cx = compiled.pre_routing_cx;
    s.post_routing_cx = compiled.metrics.cx_gates;
    s.swaps = compiled.swaps_inserted;
    s.depth = compiled.metrics.depth;
    s.duration_ns = compiled.metrics.duration_ns;
    s.compile_time_ms = compiled.compile_time_ms;
    s.angles = tuned.angles;
    s.ev_ideal = tuned.energy;

    sim::NoiseAttenuation local;
    if (!shared_attenuation) {
        local = sim::compute_attenuation(compiled.physical, dev.calibration);
        shared_attenuation = &local;
    }
    s.eps = shared_eps ? *shared_eps
                       : sim::expected_probability_of_success(
                             compiled.physical, dev.calibration);

    const auto ideal = qaoa::evaluate_p1(model, tuned.angles);
    s.ev_noisy =
        sim::noisy_expectation(model, ideal.z, ideal.zz,
                               *shared_attenuation, compiled.final_layout);
    return s;
}

/** The sub-problem whose structure the shared template was compiled from. */
const frozenqubits::SubProblem&
template_owner(const ExecutionPlan& plan)
{
    return plan.subproblems[static_cast<std::size_t>(
        plan.tasks.front().solve)];
}

} // namespace

ExecutionEngine::ExecutionEngine(int num_threads) : executor_(num_threads)
{
}

frozenqubits::CircuitStats
ExecutionEngine::evaluate(const ising::IsingModel& model,
                          const device::Device& dev,
                          const frozenqubits::DriverConfig& config)
{
    const auto tuned = qaoa::optimize_p1(model, config.p1_grid_resolution);
    qaoa::BuildOptions build;
    build.num_layers = 1;
    bool was_hit = false;
    const auto tpl =
        cache_.get_or_compile(model, dev, config.compile, build, &was_hit);
    auto stats = stats_from_compile(model, dev, tpl->compiled, tuned,
                                    &tpl->attenuation, &tpl->eps);
    if (was_hit)
        stats.compile_time_ms = 0.0; // served from cache, nothing compiled
    return stats;
}

frozenqubits::CircuitStats
ExecutionEngine::run_task(const ExecutionPlan& plan,
                          const SubProblemTask& task,
                          const device::Device& dev,
                          const frozenqubits::DriverConfig& config)
{
    const auto& sub =
        plan.subproblems[static_cast<std::size_t>(task.solve)];
    const auto tuned =
        qaoa::optimize_p1(sub.model, config.p1_grid_resolution);

    if (plan.compiled_template &&
        frozenqubits::templates_compatible(template_owner(plan).model,
                                           sub.model)) {
        // Structure, routing, attenuation, and EPS are the template's for
        // every sibling; the sibling's executable differs only by an
        // RZ-angle edit (Section 3.7.1), which no reported stat reads — so
        // the stats come straight from the shared entry, with compile time
        // charged only to the task (and run) that actually compiled it.
        const auto& tpl = *plan.compiled_template;
        auto stats = stats_from_compile(sub.model, dev, tpl.compiled, tuned,
                                        &tpl.attenuation, &tpl.eps);
        if (task.plan_index != 0 || plan.template_cache_hit)
            stats.compile_time_ms = 0.0; // edit / cache hit, not a compile
        return stats;
    }

    const auto logical = qaoa::build_qaoa_circuit(sub.model, plan.build);
    const auto compiled =
        transpiler::compile(logical, dev, config.compile);
    return stats_from_compile(sub.model, dev, compiled, tuned);
}

void
ExecutionEngine::start_diagnostics(const ExecutionPlan& plan)
{
    diagnostics_ = Diagnostics{};
    diagnostics_.num_subproblems = plan.num_subproblems();
    diagnostics_.tasks_executed = plan.num_executed();
    diagnostics_.template_cache_hit = plan.template_cache_hit;
    diagnostics_.fused_simulation = plan.fuse_simulation;
    diagnostics_.threads = executor_.num_threads();
    for (const auto& task : plan.tasks) {
        diagnostics_.executed_subproblems.push_back(task.solve);
        for (int mirror : task.mirrors)
            diagnostics_.pruned_subproblems.push_back(mirror);
    }
    diagnostics_.mirrors_inferred =
        static_cast<int>(diagnostics_.pruned_subproblems.size());
    if (plan.compiled_template)
        diagnostics_.template_edits = plan.num_executed() - 1;
}

frozenqubits::Report
ExecutionEngine::run(const ising::IsingModel& model,
                     const device::Device& dev,
                     const frozenqubits::DriverConfig& config)
{
    const auto start = Clock::now();
    Rng rng(config.seed);
    const auto plan = make_plan(model, dev, config, cache_, rng);
    start_diagnostics(plan);
    // The report arms are evaluated analytically (p=1 closed form + noise
    // model) — no statevector runs here, so fusion cannot apply and must
    // not be advertised; only solve() simulates.
    diagnostics_.fused_simulation = false;

    // Task 0 is the baseline arm; tasks 1..k are the planned sub-problems.
    const int count = 1 + plan.num_executed();
    // Report the EFFECTIVE width: a batch never spans more workers than it
    // has tasks, and single-task batches run inline.
    diagnostics_.threads = std::min(executor_.num_threads(), count);
    auto stats = executor_.map<frozenqubits::CircuitStats>(
        count, [&](int index, BatchExecutor::Scratch&) {
            if (index == 0)
                return evaluate(model, dev, config);
            return run_task(plan, plan.tasks[static_cast<std::size_t>(
                                      index - 1)],
                            dev, config);
        });

    const auto baseline = stats.front();
    stats.erase(stats.begin());
    auto report = reduce_report(plan, baseline, std::move(stats));
    diagnostics_.wall_ms = ms_since(start);
    return report;
}

frozenqubits::SampledSolve
ExecutionEngine::solve(const ising::IsingModel& model,
                       const device::Device& dev,
                       const frozenqubits::DriverConfig& config, int shots,
                       Rng& rng)
{
    FQ_REQUIRE(shots >= 1, "need at least one shot");
    const auto start = Clock::now();
    const auto plan = make_plan(model, dev, config, cache_, rng);
    start_diagnostics(plan);
    // The sampled path re-simulates each logical circuit; the template only
    // provides placement + attenuation, so no edits happen here.
    diagnostics_.template_edits = 0;
    diagnostics_.threads =
        std::min(executor_.num_threads(), plan.num_executed());

    const auto counts = executor_.map<sim::Counts>(
        plan.num_executed(),
        [&](int index, BatchExecutor::Scratch& scratch) {
            const auto& task =
                plan.tasks[static_cast<std::size_t>(index)];
            const auto& sub =
                plan.subproblems[static_cast<std::size_t>(task.solve)];
            const auto tuned =
                qaoa::optimize_p1(sub.model, config.p1_grid_resolution);

            // Survival and readout-flip probabilities come precomputed
            // from the shared template when available: siblings differ
            // only in RZ angles, which touch neither. Otherwise (template
            // editing disabled — deliberately unshared) compile this
            // sub-problem directly and analyze its own circuit. The
            // logical circuit is built only by the branches that read it
            // (the fused path gets its executable from the cache).
            double state_survival = 0.0;
            std::vector<double> readout_flip;
            if (plan.compiled_template &&
                frozenqubits::templates_compatible(
                    template_owner(plan).model, sub.model)) {
                state_survival = plan.compiled_template->attenuation
                                     .global_state_survival();
                readout_flip = plan.compiled_template->readout_flip;
            } else {
                const auto logical =
                    qaoa::build_qaoa_circuit(sub.model, plan.build);
                const auto compiled =
                    transpiler::compile(logical, dev, config.compile);
                const auto attenuation = sim::compute_attenuation(
                    compiled.physical, dev.calibration);
                state_survival = attenuation.global_state_survival();
                readout_flip = readout_flip_for(compiled, dev.calibration,
                                                sub.model.num_spins());
            }

            // Ideal state on the LOGICAL register (statevector width
            // limits), in this worker's reusable scratch buffer. The fused
            // path replays the cache-compiled diagonal weight tables at
            // this task's angles — one pass per cost layer — instead of
            // applying |E|+|V| gates; the naive path remains as the
            // --no-fusion escape hatch.
            if (plan.fuse_simulation) {
                const auto program =
                    cache_.get_or_fuse(sub.model, plan.build);
                program->run({tuned.angles.gamma}, {tuned.angles.beta},
                             scratch.statevector);
            } else {
                const auto bound =
                    qaoa::build_qaoa_circuit(sub.model, plan.build)
                        .bind({tuned.angles.gamma}, {tuned.angles.beta});
                sim::run_circuit(bound, scratch.statevector);
            }
            const auto& sv = scratch.statevector;

            // Private stream: determined by (seed, sub-problem index), so
            // any thread count samples identically.
            Rng task_rng(task.rng_seed);
            return sim::sample_noisy_counts(sv, state_survival,
                                            readout_flip, shots, task_rng);
        });

    auto solved = reduce_sampling(model, plan, counts);
    diagnostics_.wall_ms = ms_since(start);
    return solved;
}

} // namespace fq::engine
