#include "engine/thread_pool.h"

#include <algorithm>

namespace fq::engine {

int
resolve_thread_count(int requested)
{
    if (requested > 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return std::max(1u, hw);
}

ThreadPool::ThreadPool(int num_threads)
{
    const int n = resolve_thread_count(num_threads);
    workers_.reserve(n);
    for (int w = 0; w < n; ++w)
        workers_.emplace_back([this, w] { worker_loop(w); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutting_down_ = true;
    }
    work_ready_.notify_all();
    for (auto& t : workers_)
        t.join();
}

void
ThreadPool::for_each_index(int count, const std::function<void(int, int)>& fn)
{
    if (count <= 0)
        return;

    std::unique_lock<std::mutex> lock(mutex_);
    batch_fn_ = &fn;
    batch_count_ = count;
    next_index_.store(0, std::memory_order_relaxed);
    workers_active_ = num_threads();
    first_error_index_ = -1;
    first_error_ = nullptr;
    ++batch_generation_;

    work_ready_.notify_all();
    batch_done_.wait(lock, [this] { return workers_active_ == 0; });
    batch_fn_ = nullptr;

    if (first_error_)
        std::rethrow_exception(first_error_);
}

void
ThreadPool::worker_loop(int worker_index)
{
    std::uint64_t seen_generation = 0;
    for (;;) {
        const std::function<void(int, int)>* fn = nullptr;
        int count = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_ready_.wait(lock, [&] {
                return shutting_down_ || batch_generation_ != seen_generation;
            });
            if (shutting_down_)
                return;
            seen_generation = batch_generation_;
            fn = batch_fn_;
            count = batch_count_;
        }

        for (;;) {
            const int i =
                next_index_.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                break;
            try {
                (*fn)(i, worker_index);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mutex_);
                if (first_error_index_ < 0 || i < first_error_index_) {
                    first_error_index_ = i;
                    first_error_ = std::current_exception();
                }
            }
        }

        bool last = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            last = (--workers_active_ == 0);
        }
        if (last)
            batch_done_.notify_all();
    }
}

} // namespace fq::engine
