#include "engine/template_cache.h"

#include <cstring>

#include "common/rng.h"

namespace fq::engine {

namespace {

std::uint64_t
mix(std::uint64_t h, std::uint64_t v)
{
    return combine_seeds(h, v);
}

std::uint64_t
mix_double(std::uint64_t h, double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    return mix(h, bits);
}

/** Salt for the hit-verification fingerprint (independent hash chain). */
constexpr std::uint64_t kVerifySalt = 0x5bf0f5163ad2ab1dull;

/** Entry cap; each entry holds a full compiled circuit + noise arrays. */
constexpr std::size_t kMaxEntries = 256;

/** Rough per-entry footprint: the two circuit copies (logical-structure
 *  metrics are scalars), the layout and noise vectors. Estimation only —
 *  feeds the --stats byte report, not an eviction decision. */
std::size_t
template_entry_bytes(const CompiledTemplate& tpl)
{
    std::size_t bytes = sizeof(CompiledTemplate);
    bytes += tpl.compiled.physical.size() * sizeof(circuit::Gate);
    bytes += tpl.compiled.final_layout.size() * sizeof(int);
    bytes += tpl.readout_flip.size() * sizeof(double);
    return bytes;
}

} // namespace

std::vector<double>
readout_flip_for(const transpiler::CompileResult& compiled,
                 const device::Calibration& calibration, int num_spins)
{
    std::vector<double> flip(static_cast<std::size_t>(num_spins));
    for (int q = 0; q < num_spins; ++q) {
        flip[static_cast<std::size_t>(q)] =
            calibration
                .qubit(compiled.final_layout[static_cast<std::size_t>(q)])
                .readout_error;
    }
    return flip;
}

std::uint64_t
device_fingerprint(const device::Device& dev, std::uint64_t salt)
{
    // The compile output depends on the coupling map (routing) and the full
    // calibration (noise-adaptive layout, durations -> metrics), so all of
    // it goes into the key — the name alone cannot alias two structurally
    // different devices. O(N + E) per lookup, noise against a
    // millisecond-scale transpiler run.
    std::uint64_t h = mix(hash_seed(dev.name), salt);
    h = mix(h, static_cast<std::uint64_t>(dev.num_qubits()));
    for (const auto& edge : dev.topology.coupling_graph().edges()) {
        h = mix(h, static_cast<std::uint64_t>(edge.u));
        h = mix(h, static_cast<std::uint64_t>(edge.v));
        h = mix_double(h, dev.calibration.cx_error(edge.u, edge.v));
    }
    for (int q = 0; q < dev.calibration.num_qubits(); ++q) {
        const auto& p = dev.calibration.qubit(q);
        h = mix_double(h, p.t1_us);
        h = mix_double(h, p.t2_us);
        h = mix_double(h, p.readout_error);
        h = mix_double(h, p.sq_error);
    }
    const auto& d = dev.calibration.durations();
    h = mix_double(h, d.single_qubit_ns);
    h = mix_double(h, d.cx_ns);
    h = mix_double(h, d.measure_ns);
    h = mix_double(h, dev.calibration.crosstalk_kappa());
    return h;
}

std::uint64_t
topology_fingerprint(const ising::IsingModel& model, std::uint64_t salt)
{
    std::uint64_t h = mix(hash_seed("fq-topology"), salt);
    h = mix(h, static_cast<std::uint64_t>(model.num_spins()));
    for (const auto& term : model.quadratic_terms()) {
        h = mix(h, static_cast<std::uint64_t>(term.i));
        h = mix(h, static_cast<std::uint64_t>(term.j));
    }
    return h;
}

std::uint64_t
model_value_fingerprint(const ising::IsingModel& model, std::uint64_t salt)
{
    std::uint64_t h = mix(hash_seed("fq-model-values"), salt);
    h = mix(h, static_cast<std::uint64_t>(model.num_spins()));
    for (double hi : model.linear_terms())
        h = mix_double(h, hi);
    for (const auto& term : model.quadratic_terms()) {
        h = mix(h, static_cast<std::uint64_t>(term.i));
        h = mix(h, static_cast<std::uint64_t>(term.j));
        h = mix_double(h, term.coefficient);
    }
    return h;
}

std::uint64_t
template_key(const ising::IsingModel& model, const device::Device& dev,
             const transpiler::CompileOptions& compile,
             const qaoa::BuildOptions& build, std::uint64_t salt)
{
    std::uint64_t h = topology_fingerprint(model, salt);
    h = mix(h, device_fingerprint(dev, salt));
    h = mix(h, static_cast<std::uint64_t>(compile.layout));
    h = mix(h, static_cast<std::uint64_t>(compile.router.lookahead));
    h = mix_double(h, compile.router.lookahead_weight);
    h = mix_double(h, compile.router.decay);
    h = mix(h, compile.router.seed);
    h = mix(h, (compile.run_optimization_passes ? 2u : 0u) |
                   (compile.decompose_swaps ? 1u : 0u));
    h = mix(h, static_cast<std::uint64_t>(build.num_layers));
    h = mix(h, (build.include_measurements ? 2u : 0u) |
                   (build.keep_zero_linear_rz ? 1u : 0u));
    // Without keep_zero_linear_rz the builder emits an RZ only for nonzero
    // h_i, so the compiled structure depends on WHICH linear terms are
    // nonzero — that pattern must distinguish keys (with the flag set,
    // every spin gets a slot and the pattern is irrelevant).
    if (!build.keep_zero_linear_rz) {
        std::uint64_t pattern = 0;
        int bit = 0;
        for (double hi : model.linear_terms()) {
            pattern = (pattern << 1) | (hi != 0.0 ? 1u : 0u);
            if (++bit == 64) {
                h = mix(h, pattern);
                pattern = 0;
                bit = 0;
            }
        }
        h = mix(h, pattern);
    }
    return h;
}

std::shared_ptr<const CompiledTemplate>
TemplateCache::get_or_compile(const ising::IsingModel& model,
                              const device::Device& dev,
                              const transpiler::CompileOptions& compile,
                              const qaoa::BuildOptions& build, bool* was_hit)
{
    const std::uint64_t key = template_key(model, dev, compile, build);
    const std::uint64_t verify =
        template_key(model, dev, compile, build, kVerifySalt);

    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.lookups;
        auto it = entries_.find(key);
        if (it != entries_.end() && it->second.verify_key == verify) {
            ++stats_.hits;
            if (was_hit)
                *was_hit = true;
            return it->second.value;
        }
    }

    // Build OUTSIDE the lock — the same pattern get_or_fuse uses. Under a
    // shared multi-tenant engine, concurrent submitters plan (and thus
    // compile templates) in parallel; running a full millisecond-scale
    // transpile under the cache mutex would serialize every planner on the
    // slowest miss. A rare duplicate build of the same key loses the race
    // below and is dropped; first insert wins so all callers share one
    // entry.
    const auto logical = qaoa::build_qaoa_circuit(model, build);
    auto entry = std::make_shared<CompiledTemplate>();
    entry->compiled = transpiler::compile(logical, dev, compile);
    entry->attenuation =
        sim::compute_attenuation(entry->compiled.physical, dev.calibration);
    entry->eps = sim::expected_probability_of_success(
        entry->compiled.physical, dev.calibration);
    entry->readout_flip = readout_flip_for(entry->compiled, dev.calibration,
                                           model.num_spins());

    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.compiles;
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        if (it->second.verify_key == verify) {
            // Lost the race; share the winner's template — but report a
            // miss: this caller paid a full compile, and hit-share
            // diagnostics must not overstate hits under the very
            // contention they exist to measure.
            if (was_hit)
                *was_hit = false;
            return it->second.value;
        }
        // Verify-key mismatch (fingerprint collision): the stale entry is
        // about to be overwritten — release its bytes from the budget.
        template_bytes_ -= it->second.bytes;
        entries_.erase(it);
    }
    // Crude bound on a cache that would otherwise grow for the process
    // lifetime of a shared engine: wholesale reset at the cap (entries are
    // cheap to rebuild relative to tracking LRU order).
    if (entries_.size() >= kMaxEntries) {
        stats_.evictions += entries_.size();
        entries_.clear();
        template_bytes_ = 0;
    }
    const std::size_t entry_bytes = template_entry_bytes(*entry);
    template_bytes_ += entry_bytes;
    entries_[key] = Entry{verify, entry_bytes, entry};
    if (was_hit)
        *was_hit = false;
    return entry;
}

namespace {

/** Cache key for a fused-simulation program. */
std::uint64_t
sim_key(const ising::IsingModel& model, const qaoa::BuildOptions& build,
        std::uint64_t salt)
{
    std::uint64_t h = model_value_fingerprint(model, salt);
    h = combine_seeds(h, static_cast<std::uint64_t>(build.num_layers));
    h = combine_seeds(h, (build.include_measurements ? 2u : 0u) |
                             (build.keep_zero_linear_rz ? 1u : 0u));
    return h;
}

/** Byte budget for cached fused programs. Entries hold 2^n-sized tables
 *  (a 20-qubit LUT program is ~2 MiB, a 26-qubit one ~128 MiB), so the
 *  bound is on estimated bytes, not entry count: many small sub-problems
 *  fit (an m=8 freeze's 128 siblings at n<=20 stay resident), while a
 *  handful of huge ones trip the wholesale reset early. */
constexpr std::size_t kMaxSimBytes = std::size_t(256) << 20;

} // namespace

std::shared_ptr<const sim::FusedProgram>
TemplateCache::get_or_fuse(const ising::IsingModel& model,
                           const qaoa::BuildOptions& build, bool* was_hit)
{
    const std::uint64_t key = sim_key(model, build, 0);
    const std::uint64_t verify = sim_key(model, build, kVerifySalt);

    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.sim_lookups;
        auto it = sim_entries_.find(key);
        if (it != sim_entries_.end() && it->second.verify_key == verify) {
            ++stats_.sim_hits;
            if (was_hit)
                *was_hit = true;
            return it->second.value;
        }
    }

    // Build OUTSIDE the lock: unlike the shared compiled template (one key
    // per plan, pre-resolved serially by the planner), every sibling
    // sub-problem carries distinct coefficient values and thus a distinct
    // key — compiling the O(2^n) tables under the mutex would serialize
    // the whole worker pool. A rare duplicate build of the same key loses
    // the race below and is dropped; first insert wins so all callers
    // share one program.
    const auto logical = qaoa::build_qaoa_circuit(model, build);
    auto program = std::make_shared<const sim::FusedProgram>(
        logical, /*build_luts=*/true);

    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.sim_fusions;
    auto it = sim_entries_.find(key);
    if (it != sim_entries_.end()) {
        if (it->second.verify_key == verify) {
            // Lost the race; share the winner's program — but report a
            // miss: this caller paid the full table build (see
            // get_or_compile).
            if (was_hit)
                *was_hit = false;
            return it->second.value;
        }
        // Verify-key mismatch (fingerprint collision): the stale entry is
        // about to be overwritten — release its bytes from the budget.
        sim_bytes_ -= it->second.bytes;
    }
    // Charge the FULL program footprint (tables + compiled op list), not
    // table_bytes() alone — the old accounting undercounted every fused
    // artifact by its op/qubit storage.
    const std::size_t program_bytes = program->bytes();
    sim_bytes_ += program_bytes;
    if (sim_bytes_ > kMaxSimBytes) {
        stats_.sim_evictions += sim_entries_.size();
        sim_entries_.clear();
        sim_bytes_ = program_bytes;
    }
    sim_entries_[key] = SimEntry{verify, program_bytes, program};
    if (was_hit)
        *was_hit = false;
    return program;
}

TemplateCache::Stats
TemplateCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::size_t
TemplateCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::size_t
TemplateCache::bytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return template_bytes_ + sim_bytes_;
}

void
TemplateCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    sim_entries_.clear();
    template_bytes_ = 0;
    sim_bytes_ = 0;
}

} // namespace fq::engine
