#include "engine/template_cache.h"

#include <algorithm>
#include <cstring>

#include "common/rng.h"

namespace fq::engine {

namespace {

std::uint64_t
mix(std::uint64_t h, std::uint64_t v)
{
    return combine_seeds(h, v);
}

std::uint64_t
mix_double(std::uint64_t h, double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    return mix(h, bits);
}

/** Salt for the hit-verification fingerprint (independent hash chain). */
constexpr std::uint64_t kVerifySalt = 0x5bf0f5163ad2ab1dull;

/** Entry cap; each entry holds a full compiled circuit + noise arrays. */
constexpr std::size_t kMaxEntries = 256;

/** Rough per-entry footprint: the two circuit copies (logical-structure
 *  metrics are scalars), the layout and noise vectors. Estimation only —
 *  feeds the --stats byte report, not an eviction decision. */
std::size_t
template_entry_bytes(const CompiledTemplate& tpl)
{
    std::size_t bytes = sizeof(CompiledTemplate);
    bytes += tpl.compiled.physical.size() * sizeof(circuit::Gate);
    bytes += tpl.compiled.final_layout.size() * sizeof(int);
    bytes += tpl.readout_flip.size() * sizeof(double);
    return bytes;
}

/** Cache key for a fused-simulation program. */
std::uint64_t
sim_key(const ising::IsingModel& model, const qaoa::BuildOptions& build,
        std::uint64_t salt)
{
    std::uint64_t h = model_value_fingerprint(model, salt);
    h = combine_seeds(h, static_cast<std::uint64_t>(build.num_layers));
    h = combine_seeds(h, (build.include_measurements ? 2u : 0u) |
                             (build.keep_zero_linear_rz ? 1u : 0u));
    return h;
}

/** Byte budget for cached fused programs. Entries hold 2^n-sized tables
 *  (a 20-qubit LUT program is ~2 MiB, a 26-qubit one ~128 MiB), so the
 *  bound is on estimated bytes, not entry count: many small sub-problems
 *  fit (an m=8 freeze's 128 siblings at n<=20 stay resident), while a
 *  handful of huge ones trip the wholesale reset early. */
constexpr std::size_t kMaxSimBytes = std::size_t(256) << 20;

/** Byte budget for family structures. These hold compiled circuits and
 *  O(|E|) skeletons, never 2^n tables, so the budget is far smaller. */
constexpr std::size_t kMaxFamilyBytes = std::size_t(64) << 20;

/** True when the two builds produce the same circuit structure for the
 *  same model (the fields sim_key distinguishes). */
bool
same_build(const qaoa::BuildOptions& a, const qaoa::BuildOptions& b)
{
    return a.num_layers == b.num_layers &&
           a.include_measurements == b.include_measurements &&
           a.keep_zero_linear_rz == b.keep_zero_linear_rz;
}

} // namespace

std::vector<double>
readout_flip_for(const transpiler::CompileResult& compiled,
                 const device::Calibration& calibration, int num_spins)
{
    std::vector<double> flip(static_cast<std::size_t>(num_spins));
    for (int q = 0; q < num_spins; ++q) {
        flip[static_cast<std::size_t>(q)] =
            calibration
                .qubit(compiled.final_layout[static_cast<std::size_t>(q)])
                .readout_error;
    }
    return flip;
}

std::uint64_t
device_fingerprint(const device::Device& dev, std::uint64_t salt)
{
    // The compile output depends on the coupling map (routing) and the full
    // calibration (noise-adaptive layout, durations -> metrics), so all of
    // it goes into the key — the name alone cannot alias two structurally
    // different devices. O(N + E) per lookup, noise against a
    // millisecond-scale transpiler run.
    std::uint64_t h = mix(hash_seed(dev.name), salt);
    h = mix(h, static_cast<std::uint64_t>(dev.num_qubits()));
    for (const auto& edge : dev.topology.coupling_graph().edges()) {
        h = mix(h, static_cast<std::uint64_t>(edge.u));
        h = mix(h, static_cast<std::uint64_t>(edge.v));
        h = mix_double(h, dev.calibration.cx_error(edge.u, edge.v));
    }
    for (int q = 0; q < dev.calibration.num_qubits(); ++q) {
        const auto& p = dev.calibration.qubit(q);
        h = mix_double(h, p.t1_us);
        h = mix_double(h, p.t2_us);
        h = mix_double(h, p.readout_error);
        h = mix_double(h, p.sq_error);
    }
    const auto& d = dev.calibration.durations();
    h = mix_double(h, d.single_qubit_ns);
    h = mix_double(h, d.cx_ns);
    h = mix_double(h, d.measure_ns);
    h = mix_double(h, dev.calibration.crosstalk_kappa());
    return h;
}

std::uint64_t
topology_fingerprint(const ising::IsingModel& model, std::uint64_t salt)
{
    std::uint64_t h = mix(hash_seed("fq-topology"), salt);
    h = mix(h, static_cast<std::uint64_t>(model.num_spins()));
    for (const auto& term : model.quadratic_terms()) {
        h = mix(h, static_cast<std::uint64_t>(term.i));
        h = mix(h, static_cast<std::uint64_t>(term.j));
    }
    return h;
}

std::uint64_t
model_value_fingerprint(const ising::IsingModel& model, std::uint64_t salt)
{
    std::uint64_t h = mix(hash_seed("fq-model-values"), salt);
    h = mix(h, static_cast<std::uint64_t>(model.num_spins()));
    for (double hi : model.linear_terms())
        h = mix_double(h, hi);
    for (const auto& term : model.quadratic_terms()) {
        h = mix(h, static_cast<std::uint64_t>(term.i));
        h = mix(h, static_cast<std::uint64_t>(term.j));
        h = mix_double(h, term.coefficient);
    }
    return h;
}

std::uint64_t
template_key(const ising::IsingModel& model, const device::Device& dev,
             const transpiler::CompileOptions& compile,
             const qaoa::BuildOptions& build, std::uint64_t salt)
{
    std::uint64_t h = topology_fingerprint(model, salt);
    h = mix(h, device_fingerprint(dev, salt));
    h = mix(h, static_cast<std::uint64_t>(compile.layout));
    h = mix(h, static_cast<std::uint64_t>(compile.router.lookahead));
    h = mix_double(h, compile.router.lookahead_weight);
    h = mix_double(h, compile.router.decay);
    h = mix(h, compile.router.seed);
    h = mix(h, (compile.structure_only ? 4u : 0u) |
                   (compile.run_optimization_passes ? 2u : 0u) |
                   (compile.decompose_swaps ? 1u : 0u));
    h = mix(h, static_cast<std::uint64_t>(build.num_layers));
    h = mix(h, (build.include_measurements ? 2u : 0u) |
                   (build.keep_zero_linear_rz ? 1u : 0u));
    // Without keep_zero_linear_rz the builder emits an RZ only for nonzero
    // h_i, so the compiled structure depends on WHICH linear terms are
    // nonzero — that pattern must distinguish keys (with the flag set,
    // every spin gets a slot and the pattern is irrelevant).
    if (!build.keep_zero_linear_rz) {
        std::uint64_t pattern = 0;
        int bit = 0;
        for (double hi : model.linear_terms()) {
            pattern = (pattern << 1) | (hi != 0.0 ? 1u : 0u);
            if (++bit == 64) {
                h = mix(h, pattern);
                pattern = 0;
                bit = 0;
            }
        }
        h = mix(h, pattern);
    }
    return h;
}

std::uint64_t
family_signature(const ising::IsingModel& model, const device::Device& dev,
                 const transpiler::CompileOptions& compile,
                 const qaoa::BuildOptions& build, std::uint64_t salt)
{
    // Label-free interaction-graph class hash: Weisfeiler-Leman color
    // refinement over the quadratic structure. Three rounds are plenty to
    // spread the benchmark graph classes; the hash only BUCKETS families —
    // a collision costs one extra labeled variant in the bucket, never a
    // wrong answer (get_or_bind verifies the exact labeled structure).
    const int n = model.num_spins();
    std::vector<std::vector<int>> adjacency(static_cast<std::size_t>(n));
    for (const auto& term : model.quadratic_terms()) {
        adjacency[static_cast<std::size_t>(term.i)].push_back(term.j);
        adjacency[static_cast<std::size_t>(term.j)].push_back(term.i);
    }
    std::vector<std::uint64_t> color(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < color.size(); ++i)
        color[i] = mix(hash_seed("fq-wl-init"), adjacency[i].size());
    std::vector<std::uint64_t> next(color.size());
    std::vector<std::uint64_t> neighborhood;
    for (int round = 0; round < 3; ++round) {
        for (std::size_t i = 0; i < color.size(); ++i) {
            neighborhood.clear();
            for (int peer : adjacency[i])
                neighborhood.push_back(
                    color[static_cast<std::size_t>(peer)]);
            std::sort(neighborhood.begin(), neighborhood.end());
            std::uint64_t h = color[i];
            for (std::uint64_t c : neighborhood)
                h = mix(h, c);
            next[i] = h;
        }
        color.swap(next);
    }
    std::sort(color.begin(), color.end());

    std::uint64_t h = mix(hash_seed("fq-family"), salt);
    h = mix(h, static_cast<std::uint64_t>(n));
    for (std::uint64_t c : color)
        h = mix(h, c);
    h = mix(h, device_fingerprint(dev, salt));
    h = mix(h, static_cast<std::uint64_t>(compile.layout));
    h = mix(h, static_cast<std::uint64_t>(compile.router.lookahead));
    h = mix_double(h, compile.router.lookahead_weight);
    h = mix_double(h, compile.router.decay);
    h = mix(h, compile.router.seed);
    h = mix(h, (compile.structure_only ? 4u : 0u) |
                   (compile.run_optimization_passes ? 2u : 0u) |
                   (compile.decompose_swaps ? 1u : 0u));
    h = mix(h, static_cast<std::uint64_t>(build.num_layers));
    h = mix(h, (build.include_measurements ? 2u : 0u) |
                   (build.keep_zero_linear_rz ? 1u : 0u));
    return h;
}

std::vector<double>
fused_slot_values(const ising::IsingModel& model)
{
    const auto& quadratic = model.quadratic_terms();
    std::vector<double> values;
    values.reserve(static_cast<std::size_t>(model.num_spins()) +
                   quadratic.size());
    // Parity coefficient convention (circuit/fusion.cc): the builder emits
    // angle coefficients 2h_i / 2J_t and fusion contributes -coeff/2, so
    // the bound value is exactly -h_i / -J_t (doubling and halving are
    // exact in IEEE754 — bit-identical to the from-scratch path).
    for (int i = 0; i < model.num_spins(); ++i)
        values.push_back(-model.linear(i));
    for (const auto& term : quadratic)
        values.push_back(-term.coefficient);
    return values;
}

const char*
template_tier_name(TemplateTier tier)
{
    switch (tier) {
    case TemplateTier::Compile:
        return "compile";
    case TemplateTier::Bind:
        return "bind";
    case TemplateTier::Hit:
        return "hit";
    }
    return "?";
}

bool
ParametricTemplate::matches(const ising::IsingModel& model) const
{
    if (model.num_spins() != num_spins)
        return false;
    const auto& terms = model.quadratic_terms();
    if (terms.size() != quadratic_pairs.size())
        return false;
    for (std::size_t t = 0; t < terms.size(); ++t) {
        if (terms[t].i != quadratic_pairs[t].first ||
            terms[t].j != quadratic_pairs[t].second)
            return false;
    }
    // Without keep_zero_linear_rz the compiled structure (and skeleton
    // slot set) depends on which h_i are nonzero; a member whose pattern
    // differs is a different structure.
    if (!linear_present.empty()) {
        for (int i = 0; i < num_spins; ++i) {
            if ((model.linear(i) != 0.0) !=
                static_cast<bool>(linear_present[static_cast<std::size_t>(i)]))
                return false;
        }
    }
    return true;
}

std::size_t
ParametricTemplate::bytes() const
{
    std::size_t total = sizeof(ParametricTemplate);
    total += quadratic_pairs.capacity() * sizeof(std::pair<int, int>);
    total += linear_present.capacity() / 8;
    if (structural)
        total += template_entry_bytes(*structural);
    if (has_skeleton)
        total += skeleton.bytes();
    return total;
}

TemplateCache::TemplateCache()
    : sim_byte_budget_(kMaxSimBytes), family_byte_budget_(kMaxFamilyBytes)
{
}

std::shared_ptr<const CompiledTemplate>
TemplateCache::get_or_compile(const ising::IsingModel& model,
                              const device::Device& dev,
                              const transpiler::CompileOptions& compile,
                              const qaoa::BuildOptions& build, bool* was_hit)
{
    const std::uint64_t key = template_key(model, dev, compile, build);
    const std::uint64_t verify =
        template_key(model, dev, compile, build, kVerifySalt);

    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.lookups;
        auto it = entries_.find(key);
        if (it != entries_.end() && it->second.verify_key == verify) {
            ++stats_.hits;
            if (was_hit)
                *was_hit = true;
            return it->second.value;
        }
    }

    // Build OUTSIDE the lock — the same pattern get_or_fuse uses. Under a
    // shared multi-tenant engine, concurrent submitters plan (and thus
    // compile templates) in parallel; running a full millisecond-scale
    // transpile under the cache mutex would serialize every planner on the
    // slowest miss. A rare duplicate build of the same key loses the race
    // below and is dropped; first insert wins so all callers share one
    // entry.
    const auto logical = qaoa::build_qaoa_circuit(model, build);
    auto entry = std::make_shared<CompiledTemplate>();
    entry->compiled = transpiler::compile(logical, dev, compile);
    entry->attenuation =
        sim::compute_attenuation(entry->compiled.physical, dev.calibration);
    entry->eps = sim::expected_probability_of_success(
        entry->compiled.physical, dev.calibration);
    entry->readout_flip = readout_flip_for(entry->compiled, dev.calibration,
                                           model.num_spins());

    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.compiles;
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        if (it->second.verify_key == verify) {
            // Lost the race; share the winner's template — but report a
            // miss: this caller paid a full compile, and hit-share
            // diagnostics must not overstate hits under the very
            // contention they exist to measure.
            if (was_hit)
                *was_hit = false;
            return it->second.value;
        }
        // Verify-key mismatch (fingerprint collision): the stale entry is
        // about to be overwritten — release its bytes from the budget.
        template_bytes_ -= it->second.bytes;
        entries_.erase(it);
    }
    // Crude bound on a cache that would otherwise grow for the process
    // lifetime of a shared engine: wholesale reset at the cap (entries are
    // cheap to rebuild relative to tracking LRU order).
    if (entries_.size() >= kMaxEntries) {
        stats_.evictions += entries_.size();
        entries_.clear();
        template_bytes_ = 0;
    }
    const std::size_t entry_bytes = template_entry_bytes(*entry);
    template_bytes_ += entry_bytes;
    entries_[key] = Entry{verify, entry_bytes, entry};
    if (was_hit)
        *was_hit = false;
    return entry;
}

std::shared_ptr<const sim::FusedProgram>
TemplateCache::get_or_fuse(const ising::IsingModel& model,
                           const qaoa::BuildOptions& build, bool* was_hit,
                           const ParametricTemplate* family,
                           TemplateTier* tier)
{
    const std::uint64_t key = sim_key(model, build, 0);
    const std::uint64_t verify = sim_key(model, build, kVerifySalt);

    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.sim_lookups;
        auto it = sim_entries_.find(key);
        if (it != sim_entries_.end() && it->second.verify_key == verify) {
            ++stats_.sim_hits;
            if (was_hit)
                *was_hit = true;
            if (tier)
                *tier = TemplateTier::Hit;
            return it->second.value;
        }
    }

    // Build OUTSIDE the lock: unlike the shared compiled template (one key
    // per plan, pre-resolved serially by the planner), every sibling
    // sub-problem carries distinct coefficient values and thus a distinct
    // key — compiling the O(2^n) tables under the mutex would serialize
    // the whole worker pool. A rare duplicate build of the same key loses
    // the race below and is dropped; first insert wins so all callers
    // share one program.
    //
    // With a matching family skeleton the build skips the circuit
    // construction and fusion scan entirely: patch the coefficient slots,
    // then compile the weight tables. The tables themselves are identical
    // either way (asserted bit-for-bit by the bind-vs-recompile tests).
    std::shared_ptr<const sim::FusedProgram> program;
    const bool via_bind = family != nullptr && family->has_skeleton &&
                          same_build(family->build, build) &&
                          family->matches(model);
    if (via_bind) {
        program = std::make_shared<const sim::FusedProgram>(
            circuit::bind_fused(family->skeleton, fused_slot_values(model)),
            /*build_luts=*/true);
    } else {
        const auto logical = qaoa::build_qaoa_circuit(model, build);
        program = std::make_shared<const sim::FusedProgram>(
            logical, /*build_luts=*/true);
    }
    if (tier)
        *tier = via_bind ? TemplateTier::Bind : TemplateTier::Compile;

    std::lock_guard<std::mutex> lock(mutex_);
    if (via_bind)
        ++stats_.family_binds;
    else
        ++stats_.sim_fusions;
    auto it = sim_entries_.find(key);
    if (it != sim_entries_.end()) {
        if (it->second.verify_key == verify) {
            // Lost the race; share the winner's program — but report a
            // miss: this caller paid the full table build (see
            // get_or_compile).
            if (was_hit)
                *was_hit = false;
            return it->second.value;
        }
        // Verify-key mismatch (fingerprint collision): the stale entry is
        // about to be overwritten — release its bytes from the budget.
        sim_bytes_ -= it->second.bytes;
    }
    // Charge the FULL program footprint (tables + compiled op list), not
    // table_bytes() alone — the old accounting undercounted every fused
    // artifact by its op/qubit storage.
    const std::size_t program_bytes = program->bytes();
    sim_bytes_ += program_bytes;
    if (sim_bytes_ > sim_byte_budget_) {
        stats_.sim_evictions += sim_entries_.size();
        sim_entries_.clear();
        sim_bytes_ = program_bytes;
    }
    sim_entries_[key] = SimEntry{verify, program_bytes, program};
    if (was_hit)
        *was_hit = false;
    return program;
}

TemplateCache::FamilyBinding
TemplateCache::get_or_bind(const ising::IsingModel& model,
                           const device::Device& dev,
                           const transpiler::CompileOptions& compile,
                           const qaoa::BuildOptions& build)
{
    // Family structures are always compiled in structure-only mode so an
    // entry is canonical: bit-identical no matter which member instance
    // paid the structural compile.
    transpiler::CompileOptions structural_opts = compile;
    structural_opts.structure_only = true;

    const std::uint64_t sig =
        family_signature(model, dev, structural_opts, build);
    const std::uint64_t labeled =
        template_key(model, dev, structural_opts, build);
    const std::uint64_t verify =
        template_key(model, dev, structural_opts, build, kVerifySalt);
    const std::uint64_t fused_key = sim_key(model, build, 0);
    const std::uint64_t fused_verify = sim_key(model, build, kVerifySalt);

    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.family_lookups;
        auto it = families_.find(sig);
        if (it != families_.end()) {
            for (const auto& variant : it->second.variants) {
                if (variant.labeled_key != labeled ||
                    variant.verify_key != verify ||
                    !variant.value->matches(model))
                    continue;
                ++stats_.family_hits;
                // Hit when this exact member's fused program is already
                // resident; Bind when only the structure is (the tables
                // will be a coefficient patch at execution time).
                const auto sit = sim_entries_.find(fused_key);
                const bool resident =
                    sit != sim_entries_.end() &&
                    sit->second.verify_key == fused_verify;
                return {variant.value, resident ? TemplateTier::Hit
                                                : TemplateTier::Bind};
            }
        }
    }

    // Structural compile OUTSIDE the lock (same contract as the other
    // tiers): build the circuit once, transpile it structure-only, derive
    // noise quantities (all angle-independent) and the fusion skeleton.
    auto family = std::make_shared<ParametricTemplate>();
    family->num_spins = model.num_spins();
    const auto& quadratic = model.quadratic_terms();
    family->quadratic_pairs.reserve(quadratic.size());
    for (const auto& term : quadratic)
        family->quadratic_pairs.emplace_back(term.i, term.j);
    if (!build.keep_zero_linear_rz) {
        family->linear_present.resize(
            static_cast<std::size_t>(model.num_spins()));
        for (int i = 0; i < model.num_spins(); ++i)
            family->linear_present[static_cast<std::size_t>(i)] =
                model.linear(i) != 0.0;
    }
    family->build = build;

    const auto logical = qaoa::build_qaoa_circuit(model, build);
    auto structural = std::make_shared<CompiledTemplate>();
    structural->compiled = transpiler::compile(logical, dev, structural_opts);
    structural->attenuation = sim::compute_attenuation(
        structural->compiled.physical, dev.calibration);
    structural->eps = sim::expected_probability_of_success(
        structural->compiled.physical, dev.calibration);
    structural->readout_flip = readout_flip_for(
        structural->compiled, dev.calibration, model.num_spins());
    family->structural = structural;

    auto skeleton = circuit::parametrize_fused(
        circuit::fuse_diagonals(logical), model.num_spins(),
        family->quadratic_pairs);
    if (skeleton.has_value()) {
        family->skeleton = std::move(*skeleton);
        family->has_skeleton = true;
    }

    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.family_structural_compiles;
    auto& entry = families_[sig];
    for (const auto& variant : entry.variants) {
        if (variant.labeled_key == labeled && variant.verify_key == verify &&
            variant.value->matches(model)) {
            // Lost the race; share the winner's structure — but report
            // tier Compile: this caller paid a full structural compile.
            return {variant.value, TemplateTier::Compile};
        }
    }
    const std::size_t family_entry_bytes = family->bytes();
    family_bytes_ += family_entry_bytes;
    if (family_bytes_ > family_byte_budget_) {
        for (const auto& [key, bucket] : families_)
            stats_.family_evictions += bucket.variants.size();
        families_.clear();
        family_bytes_ = family_entry_bytes;
        // `entry` died with the map; re-bucket the new structure.
        families_[sig].variants.push_back(
            {labeled, verify, family_entry_bytes, family});
    } else {
        entry.variants.push_back(
            {labeled, verify, family_entry_bytes, family});
    }
    return {family, TemplateTier::Compile};
}

bool
TemplateCache::peek_fused(const ising::IsingModel& model,
                          const qaoa::BuildOptions& build) const
{
    const std::uint64_t key = sim_key(model, build, 0);
    const std::uint64_t verify = sim_key(model, build, kVerifySalt);
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sim_entries_.find(key);
    return it != sim_entries_.end() && it->second.verify_key == verify;
}

void
TemplateCache::set_byte_budgets(std::size_t sim_bytes,
                                std::size_t family_bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (sim_bytes != 0)
        sim_byte_budget_ = sim_bytes;
    if (family_bytes != 0)
        family_byte_budget_ = family_bytes;
}

TemplateCache::Stats
TemplateCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats out = stats_;
    out.structure_bytes = family_bytes_;
    out.bind_bytes = sim_bytes_;
    out.template_bytes = template_bytes_;
    return out;
}

std::size_t
TemplateCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::size_t
TemplateCache::bytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return template_bytes_ + sim_bytes_ + family_bytes_;
}

void
TemplateCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    sim_entries_.clear();
    families_.clear();
    template_bytes_ = 0;
    sim_bytes_ = 0;
    family_bytes_ = 0;
}

} // namespace fq::engine
