/**
 * @file
 * Fixed-size worker pool for the ExecutionEngine.
 *
 * Workers are started once and reused across batches (a BatchExecutor owns
 * one pool for its lifetime), so repeated run_pipeline calls pay no thread
 * creation cost. The only scheduling primitive is for_each_index: dynamic
 * (atomic-counter) distribution of [0, count) across the workers. Tasks are
 * independent by construction — determinism comes from tasks writing only
 * results[task_index], never from scheduling order.
 */
#ifndef FQ_ENGINE_THREAD_POOL_H
#define FQ_ENGINE_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fq::engine {

/** Resolve a thread-count request: <= 0 (auto) -> hardware concurrency. */
int resolve_thread_count(int requested);

class ThreadPool
{
  public:
    /** Start @p num_threads workers (0 = auto; clamped to >= 1). */
    explicit ThreadPool(int num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    int num_threads() const { return static_cast<int>(workers_.size()); }

    /**
     * Run fn(task_index, worker_index) for every task_index in [0, count),
     * distributing indices over the workers; blocks until all complete.
     * worker_index is in [0, num_threads()) and identifies the executing
     * worker (for per-worker scratch). If tasks throw, the exception of the
     * lowest-indexed failing task is rethrown (deterministic regardless of
     * scheduling).
     */
    void for_each_index(int count,
                        const std::function<void(int, int)>& fn);

  private:
    void worker_loop(int worker_index);

    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable work_ready_;
    std::condition_variable batch_done_;
    bool shutting_down_ = false;

    // Current batch; guarded by mutex_ except next_index_.
    std::uint64_t batch_generation_ = 0;
    const std::function<void(int, int)>* batch_fn_ = nullptr;
    int batch_count_ = 0;
    std::atomic<int> next_index_{0};
    int workers_active_ = 0;
    int first_error_index_ = -1;
    std::exception_ptr first_error_;
};

} // namespace fq::engine

#endif // FQ_ENGINE_THREAD_POOL_H
