#include "engine/solve_tree.h"

#include "engine/expander.h"

namespace fq::engine {

const char*
node_kind_name(NodeKind kind)
{
    return node_kind_info(kind).name;
}

bool
SolveTree::flat() const
{
    if (nodes.empty() || nodes.front().kind != NodeKind::Freeze)
        return false;
    for (std::size_t i = 1; i < nodes.size(); ++i)
        if (nodes[i].kind != NodeKind::Leaf)
            return false;
    return true;
}

int
SolveTree::num_leaf_nodes() const
{
    int count = 0;
    for (const auto& node : nodes)
        if (node.kind == NodeKind::Leaf)
            ++count;
    return count;
}

int
SolveTree::leaf_width(int leaf_id) const
{
    const auto& leaf = leaves[static_cast<std::size_t>(leaf_id)];
    return nodes[static_cast<std::size_t>(leaf.node)]
        .sub.model.num_spins();
}

SolveTree
build_solve_tree(const ising::IsingModel& model, const device::Device& dev,
                 const frozenqubits::DriverConfig& config,
                 TemplateCache& cache, Rng& rng)
{
    TreeBuild build(dev, config, cache);
    return build.run(model, rng);
}

ising::SpinVector
lift_leaf_state(const SolveTree& tree, const SolveLeaf& leaf,
                std::uint64_t state, const ising::SpinVector& base)
{
    const auto& sub =
        tree.nodes[static_cast<std::size_t>(leaf.node)].sub;
    ising::SpinVector full = base;
    const auto sub_z =
        ising::state_to_spins(state, sub.model.num_spins());
    for (std::size_t i = 0; i < sub_z.size(); ++i)
        full[static_cast<std::size_t>(sub.original_of[i])] = sub_z[i];
    for (const auto& fs : sub.frozen)
        full[static_cast<std::size_t>(fs.original_index)] =
            static_cast<std::int8_t>(fs.value);
    return full;
}

} // namespace fq::engine
