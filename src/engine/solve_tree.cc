#include "engine/solve_tree.h"

#include <algorithm>

#include "common/error.h"
#include "frozenqubits/template_editor.h"
#include "partition/bisection.h"
#include "partition/dnc_qaoa.h"
#include "sim/statevector.h"

namespace fq::engine {

namespace {

/**
 * Compose a node-local sub-problem with its parent's bookkeeping: surviving
 * spins map through the parent's original_of, locally frozen spins are
 * translated to true original indices and appended to the parent's chain.
 */
frozenqubits::SubProblem
compose(const frozenqubits::SubProblem& parent,
        const frozenqubits::SubProblem& local)
{
    frozenqubits::SubProblem out;
    out.model = local.model;
    out.original_of.resize(local.original_of.size());
    for (std::size_t i = 0; i < local.original_of.size(); ++i)
        out.original_of[i] =
            parent.original_of[static_cast<std::size_t>(
                local.original_of[i])];
    out.frozen = parent.frozen;
    for (const auto& fs : local.frozen)
        out.frozen.push_back(
            {parent.original_of[static_cast<std::size_t>(
                 fs.original_index)],
             fs.value});
    return out;
}

class TreeBuilder
{
  public:
    TreeBuilder(const device::Device& dev,
                const frozenqubits::DriverConfig& config,
                TemplateCache& cache)
        : dev_(dev), config_(config), cache_(cache)
    {
    }

    SolveTree
    build(const ising::IsingModel& model, Rng& rng)
    {
        FQ_REQUIRE(config_.max_depth >= 1,
                   "solve tree needs at least one expansion level");
        // Bisection consumes an expansion level, so depth 1 would leave
        // raw fragments and silently drop the requested freeze entirely.
        FQ_REQUIRE(config_.partition_width <= 0 || config_.max_depth >= 2,
                   "partition_width needs max_depth >= 2 so fragments can "
                   "be frozen or solved");
        tree_.max_depth = config_.max_depth;

        SolveNode root;
        root.index = 0;
        root.sub = frozenqubits::as_subproblem(model);
        tree_.nodes.push_back(std::move(root));
        FQ_REQUIRE(can_partition(0) || can_freeze(0),
                   "root is too small to freeze and too narrow to "
                   "partition");
        expand(0, &rng);
        return std::move(tree_);
    }

  private:
    int
    width(int ni) const
    {
        return tree_.nodes[static_cast<std::size_t>(ni)]
            .sub.model.num_spins();
    }

    bool
    can_partition(int ni) const
    {
        return config_.partition_width > 0 &&
               width(ni) > config_.partition_width && width(ni) >= 4 &&
               tree_.nodes[static_cast<std::size_t>(ni)].depth <
                   config_.max_depth;
    }

    bool
    can_freeze(int ni) const
    {
        // Same floor as the flat engine: freezing needs one spin to freeze
        // and one to survive (freeze_all requires m < n).
        const auto& node = tree_.nodes[static_cast<std::size_t>(ni)];
        return width(ni) >= 2 && node.depth < config_.max_depth;
    }

    int
    add_child(int parent, frozenqubits::SubProblem sub,
              std::uint64_t stream_seed, bool partition_lineage)
    {
        const int index = static_cast<int>(tree_.nodes.size());
        SolveNode child;
        child.index = index;
        child.parent = parent;
        child.depth =
            tree_.nodes[static_cast<std::size_t>(parent)].depth + 1;
        child.sub = std::move(sub);
        child.stream_seed = stream_seed;
        child.partition_lineage =
            tree_.nodes[static_cast<std::size_t>(parent)]
                .partition_lineage ||
            partition_lineage;
        tree_.nodes.push_back(std::move(child));
        tree_.nodes[static_cast<std::size_t>(parent)]
            .children.push_back(index);
        return index;
    }

    /** Register @p ni as an executable leaf. @p tpl/@p compatible/@p family
     *  come from the parent freeze level (or a private resolve for
     *  fragments); @p build is what the template/fused program were
     *  compiled under. */
    void
    make_leaf(int ni, int local_solve, std::uint64_t rng_seed,
              std::shared_ptr<const CompiledTemplate> tpl, bool compatible,
              const qaoa::BuildOptions& build,
              std::shared_ptr<const ParametricTemplate> family = nullptr)
    {
        auto& node = tree_.nodes[static_cast<std::size_t>(ni)];
        node.kind = NodeKind::Leaf;
        node.leaf_id = static_cast<int>(tree_.leaves.size());

        SolveLeaf leaf;
        leaf.node = ni;
        leaf.leaf_id = node.leaf_id;
        leaf.local_solve = local_solve;
        leaf.rng_seed = rng_seed;
        leaf.needs_repair = node.partition_lineage;
        leaf.fuse = config_.fuse_simulation &&
                    node.sub.model.num_spins() <= sim::kMaxSimQubits;
        leaf.backend = sim::select_backend(config_.backend,
                                           node.sub.model.num_spins());
        leaf.build = build;
        leaf.tpl = std::move(tpl);
        leaf.tpl_compatible = compatible;
        // The family skeleton is verified against THIS leaf's labeled
        // structure — a sibling whose structure drifted (it cannot, by
        // freeze construction, but the check is cheap) falls back to the
        // from-scratch path rather than binding a wrong skeleton.
        if (family != nullptr && family->has_skeleton &&
            family->matches(node.sub.model))
            leaf.family = std::move(family);
        // Plan-time tier preview for diagnostics and the fqtool plan
        // column. Fused leaves re-resolve through the cache at execution;
        // unfused leaves always rebuild gate-by-gate (tier Compile).
        if (leaf.fuse && cache_.peek_fused(node.sub.model, leaf.build))
            leaf.tier = TemplateTier::Hit;
        else if (leaf.fuse && leaf.family != nullptr)
            leaf.tier = TemplateTier::Bind;
        else
            leaf.tier = TemplateTier::Compile;
        tree_.leaves.push_back(std::move(leaf));
    }

    void
    expand(int ni, Rng* root_rng)
    {
        if (can_partition(ni)) {
            expand_partition(ni, root_rng);
            return;
        }
        expand_freeze(ni, root_rng);
    }

    void
    expand_partition(int ni, Rng* root_rng)
    {
        tree_.nodes[static_cast<std::size_t>(ni)].kind =
            NodeKind::Partition;
        const auto parent_sub = tree_.nodes[static_cast<std::size_t>(ni)]
                                    .sub; // copy: nodes vector reallocates
        // A partition root has no plan to draw a stream base from: take it
        // from the caller's rng so child streams follow the config seed.
        if (root_rng)
            tree_.nodes[static_cast<std::size_t>(ni)].stream_seed =
                (*root_rng)();
        const std::uint64_t seed =
            tree_.nodes[static_cast<std::size_t>(ni)].stream_seed;

        Rng local(combine_seeds(seed, hash_seed("fq-partition")));
        Rng& rng = root_rng ? *root_rng : local;
        const auto cut = partition::bisect(parent_sub.model.to_graph(), rng);
        {
            auto& node = tree_.nodes[static_cast<std::size_t>(ni)];
            node.cut_edges = cut.cut_edges;
            node.cut_weight = cut.cut_weight;
        }

        for (int which : {0, 1}) {
            auto frag = partition::extract_fragment(parent_sub.model,
                                                    cut.side, which);
            if (frag.model.num_spins() == 0)
                continue;
            // Split the constant term evenly so the fragments' classical
            // bounds sum to (roughly) the node's — cut couplings excepted,
            // which is exactly the D&C energy loss — WITHOUT biasing the
            // scheduler's cross-fragment ranking (scores include the
            // offset; loading it onto one side would deterministically
            // starve that side under a budget).
            frag.model.set_offset(parent_sub.model.offset() / 2.0);
            frozenqubits::SubProblem local_sub;
            local_sub.model = std::move(frag.model);
            local_sub.original_of = std::move(frag.original_of);
            const std::uint64_t child_seed = subproblem_stream_seed(
                seed, static_cast<std::uint64_t>(which));
            const int ci = add_child(ni, compose(parent_sub, local_sub),
                                     child_seed,
                                     /*partition_lineage=*/true);
            if (can_partition(ci) || can_freeze(ci)) {
                expand(ci, nullptr);
            } else {
                auto resolved = resolve_fragment_template(ci);
                make_leaf(ci, /*local_solve=*/-1, child_seed,
                          std::move(resolved.tpl), true,
                          default_build_options(),
                          std::move(resolved.family));
            }
        }
        FQ_REQUIRE(!tree_.nodes[static_cast<std::size_t>(ni)]
                        .children.empty(),
                   "bisection produced no fragments");
    }

    struct FragmentTemplates
    {
        std::shared_ptr<const CompiledTemplate> tpl;
        std::shared_ptr<const ParametricTemplate> family;
    };

    /** Private template for a fragment leaf (no freeze siblings to share
     *  with, but repeated solves over the same fragment hit the cache —
     *  and, with parametric templates, the whole fragment FAMILY shares
     *  one structural compile). */
    FragmentTemplates
    resolve_fragment_template(int ni)
    {
        const auto& node = tree_.nodes[static_cast<std::size_t>(ni)];
        if (!config_.use_template_editing ||
            node.sub.model.num_spins() > dev_.num_qubits())
            return {};
        if (config_.parametric_templates) {
            auto binding =
                cache_.get_or_bind(node.sub.model, dev_, config_.compile,
                                   default_build_options());
            return {binding.family->structural, binding.family};
        }
        return {cache_.get_or_compile(node.sub.model, dev_, config_.compile,
                                      default_build_options()),
                nullptr};
    }

    void
    expand_freeze(int ni, Rng* root_rng)
    {
        FQ_REQUIRE(can_freeze(ni), "node is too small to freeze");
        tree_.nodes[static_cast<std::size_t>(ni)].kind = NodeKind::Freeze;
        const auto parent_sub =
            tree_.nodes[static_cast<std::size_t>(ni)].sub; // copy, see above
        const int parent_depth =
            tree_.nodes[static_cast<std::size_t>(ni)].depth;
        const std::uint64_t seed =
            tree_.nodes[static_cast<std::size_t>(ni)].stream_seed;

        // Children are terminal when they have no expansion level left or
        // are too narrow for any strategy; only then may this level prune
        // mirrors (a recursively expanded child has no single distribution
        // to flip). The ROOT takes config.num_freeze verbatim so a flat
        // tree accepts and rejects exactly what make_plan does; deeper
        // nodes clamp to their own width (m < n).
        const int m =
            parent_depth == 0
                ? config_.num_freeze
                : std::min(config_.num_freeze,
                           parent_sub.model.num_spins() - 1);
        const int child_width = parent_sub.model.num_spins() - m;
        const bool child_can_expand =
            parent_depth + 1 < config_.max_depth && child_width >= 2;
        frozenqubits::DriverConfig node_config = config_;
        node_config.num_freeze = m;
        if (child_can_expand)
            node_config.symmetry_pruning = false;

        Rng local(combine_seeds(seed, hash_seed("fq-freeze-node")));
        ExecutionPlan plan =
            make_plan(parent_sub.model, dev_, node_config, cache_,
                      root_rng ? *root_rng : local);
        // The node's stream base is the plan's: descendants (and the
        // scheduler's presolve, for the root) derive from the config seed
        // exactly as the flat engine's task streams do.
        tree_.nodes[static_cast<std::size_t>(ni)].stream_seed =
            plan.stream_seed;

        for (const auto& task : plan.tasks) {
            const auto& local_sub =
                plan.subproblems[static_cast<std::size_t>(task.solve)];
            const int ci = add_child(ni, compose(parent_sub, local_sub),
                                     task.rng_seed,
                                     /*partition_lineage=*/false);
            tree_.nodes[static_cast<std::size_t>(ci)].local_solve =
                task.solve;
            if (child_can_expand &&
                (can_partition(ci) || can_freeze(ci))) {
                expand(ci, nullptr);
                continue;
            }
            const bool compatible =
                plan.compiled_template &&
                frozenqubits::templates_compatible(
                    plan.subproblems[static_cast<std::size_t>(
                                         plan.tasks.front().solve)]
                        .model,
                    local_sub.model);
            make_leaf(ci, task.solve, task.rng_seed,
                      plan.compiled_template, compatible, plan.build,
                      plan.family);
            // Mirror sub-spaces covered by flipping this leaf's output.
            const int leaf_id =
                tree_.nodes[static_cast<std::size_t>(ci)].leaf_id;
            for (int mirror : task.mirrors) {
                const auto& mirror_sub = plan.subproblems[
                    static_cast<std::size_t>(mirror)];
                const int mi =
                    add_child(ni, compose(parent_sub, mirror_sub),
                              /*stream_seed=*/0,
                              /*partition_lineage=*/false);
                auto& mirror_node =
                    tree_.nodes[static_cast<std::size_t>(mi)];
                mirror_node.kind = NodeKind::Leaf;
                mirror_node.mirror_of = leaf_id;
                mirror_node.local_solve = mirror;
                tree_.leaves[static_cast<std::size_t>(leaf_id)]
                    .mirror_nodes.push_back(mi);
            }
        }
        tree_.nodes[static_cast<std::size_t>(ni)].plan = std::move(plan);
    }

    const device::Device& dev_;
    const frozenqubits::DriverConfig& config_;
    TemplateCache& cache_;
    SolveTree tree_;
};

} // namespace

const char*
node_kind_name(NodeKind kind)
{
    switch (kind) {
    case NodeKind::Leaf:
        return "leaf";
    case NodeKind::Freeze:
        return "freeze";
    case NodeKind::Partition:
        return "partition";
    }
    return "?";
}

bool
SolveTree::flat() const
{
    if (nodes.empty() || nodes.front().kind != NodeKind::Freeze)
        return false;
    for (std::size_t i = 1; i < nodes.size(); ++i)
        if (nodes[i].kind != NodeKind::Leaf)
            return false;
    return true;
}

int
SolveTree::num_leaf_nodes() const
{
    int count = 0;
    for (const auto& node : nodes)
        if (node.kind == NodeKind::Leaf)
            ++count;
    return count;
}

int
SolveTree::leaf_width(int leaf_id) const
{
    const auto& leaf = leaves[static_cast<std::size_t>(leaf_id)];
    return nodes[static_cast<std::size_t>(leaf.node)]
        .sub.model.num_spins();
}

SolveTree
build_solve_tree(const ising::IsingModel& model, const device::Device& dev,
                 const frozenqubits::DriverConfig& config,
                 TemplateCache& cache, Rng& rng)
{
    TreeBuilder builder(dev, config, cache);
    return builder.build(model, rng);
}

ising::SpinVector
lift_leaf_state(const SolveTree& tree, const SolveLeaf& leaf,
                std::uint64_t state, const ising::SpinVector& base)
{
    const auto& sub =
        tree.nodes[static_cast<std::size_t>(leaf.node)].sub;
    ising::SpinVector full = base;
    const auto sub_z =
        ising::state_to_spins(state, sub.model.num_spins());
    for (std::size_t i = 0; i < sub_z.size(); ++i)
        full[static_cast<std::size_t>(sub.original_of[i])] = sub_z[i];
    for (const auto& fs : sub.frozen)
        full[static_cast<std::size_t>(fs.original_index)] =
            static_cast<std::int8_t>(fs.value);
    return full;
}

} // namespace fq::engine
