#include "engine/solve_service.h"

#include <algorithm>
#include <utility>

#include "common/error.h"

namespace fq::engine {

namespace {

/** Retained completed-request diagnostics: enough for any caller that
 *  polls diagnostics() after drain(), bounded so a process-lifetime
 *  service never grows without limit (oldest entries are dropped FIFO). */
constexpr std::size_t kMaxCompletedDiagnostics = 4096;

double
ms_since(std::chrono::steady_clock::time_point start,
         std::chrono::steady_clock::time_point end)
{
    return std::chrono::duration<double, std::milli>(end - start).count();
}

} // namespace

SolveService::SolveService(ExecutionEngine& engine)
    : SolveService(engine, Config{})
{
}

SolveService::SolveService(ExecutionEngine& engine, Config config)
    : engine_(engine),
      // Auto default: two pool widths, floored at 8 — waves never WAIT to
      // fill (assembly takes only what is pending), so a deeper cap costs
      // no latency; it only cuts per-wave handoff overhead on narrow
      // engines.
      wave_size_(config.wave_size > 0
                     ? config.wave_size
                     : std::max(8, 2 * engine.num_threads()))
{
    assembler_ = std::thread([this] { assembler_loop(); });
}

SolveService::~SolveService()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_available_.notify_all();
    assembler_.join();
}

SolveService::Ticket
SolveService::submit(const ising::IsingModel& model,
                     const device::Device& dev,
                     const frozenqubits::DriverConfig& config, int shots,
                     std::uint64_t seed, CompletionCallback on_complete)
{
    FQ_REQUIRE(shots >= 1, "need at least one shot");

    auto request = std::make_unique<Request>();
    request->model = model; // stable copies: the reducer and the wave items
    request->dev = dev;     // reference the request's own storage
    request->config = config;
    request->shots = shots;
    request->on_complete = std::move(on_complete);

    // Plan on the CALLING thread — the exact sequence of a solo
    // ExecutionEngine::solve, so the schedule (and therefore every leaf's
    // plan-derived RNG stream) is bit-identical to a standalone run.
    // Concurrent submitters contend only on the shared template cache,
    // which compiles outside its lock. Scoring runs serially here
    // (executor = nullptr): per-leaf scores are a pure function of the
    // leaf, so the scores — and the schedule — match the engine's
    // executor-parallel scoring exactly.
    Rng rng(seed);
    request->tree = build_solve_tree(request->model, request->dev,
                                     request->config, engine_.cache_, rng);
    request->schedule = make_schedule(request->model, request->tree,
                                      request->config,
                                      /*force_scoring=*/false, nullptr);
    request->reducer.emplace(request->model, request->tree,
                             request->schedule);
    request->submitted = Clock::now();

    Ticket ticket;
    ticket.future_ = request->promise.get_future();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        FQ_REQUIRE(!stopping_, "submit on a stopping SolveService");
        request->id = next_id_++;
        ticket.id_ = request->id;
        ++stats_.requests_submitted;
        active_.push_back(std::move(request));
    }
    work_available_.notify_all();
    return ticket;
}

std::vector<SolveService::WaveItem>
SolveService::assemble_wave_locked()
{
    std::vector<WaveItem> wave;
    if (active_.empty())
        return wave;
    wave.reserve(static_cast<std::size_t>(wave_size_));

    // Fair round-robin in submission order with a rotating start, one leaf
    // per tenant per pass: under contention every tenant advances at the
    // same rate, and the rotation keeps the leftover slots of a non-full
    // pass from always favouring the oldest tenant.
    const std::size_t n = active_.size();
    std::vector<int> taken(n, 0);
    const std::size_t start = rotate_++ % n;
    bool progress = true;
    while (static_cast<int>(wave.size()) < wave_size_ && progress) {
        progress = false;
        for (std::size_t k = 0;
             k < n && static_cast<int>(wave.size()) < wave_size_; ++k) {
            const std::size_t slot = (start + k) % n;
            Request& request = *active_[slot];
            if (request.failed.load(std::memory_order_acquire))
                continue;
            if (request.next_leaf >= request.schedule.executed.size())
                continue;
            // Per-request wave-share SELF-cap (DriverConfig plumbing): a
            // bulk tenant bounds how many of its OWN leaves ride one wave,
            // leaving the rest of the slots to co-tenants.
            if (request.config.wave_share > 0 &&
                taken[slot] >= request.config.wave_share)
                continue;
            wave.push_back(
                {&request, request.schedule.executed[request.next_leaf]});
            ++request.next_leaf;
            ++taken[slot];
            progress = true;
        }
    }

    // Per-tenant wave bookkeeping (assembler-thread state).
    for (std::size_t slot = 0; slot < n; ++slot) {
        if (taken[slot] == 0)
            continue;
        Request& request = *active_[slot];
        ++request.waves;
        request.occupancy_sum += static_cast<double>(taken[slot]) /
                                 static_cast<double>(wave.size());
    }
    return wave;
}

int
SolveService::execute_wave(const std::vector<WaveItem>& wave)
{
    std::atomic<int> executed{0};
    std::vector<BatchExecutor::QueuedTask> queue;
    queue.reserve(wave.size());
    for (const auto& item : wave) {
        queue.push_back([this, item,
                         &executed](BatchExecutor::Scratch& scratch) {
            Request& r = *item.request;
            // A failed tenant's remaining leaves are dead weight — skip
            // them so the wave's slots go to live work. (Results are
            // unaffected: the request completes exceptionally either way.)
            if (r.failed.load(std::memory_order_acquire))
                return;
            executed.fetch_add(1, std::memory_order_relaxed);
            try {
                if (!r.started.exchange(true,
                                        std::memory_order_acq_rel)) {
                    std::lock_guard<std::mutex> g(r.error_mutex);
                    r.first_exec = Clock::now();
                }
                bool fused_hit = false;
                auto counts = simulate_scheduled_leaf(
                    engine_.cache_, r.tree, item.leaf_id, r.dev, r.config,
                    r.shots, scratch, &fused_hit);
                const auto& leaf =
                    r.tree.leaves[static_cast<std::size_t>(item.leaf_id)];
                if (leaf.fuse) {
                    r.fused_lookups.fetch_add(1,
                                              std::memory_order_relaxed);
                    if (fused_hit)
                        r.fused_hits.fetch_add(1,
                                               std::memory_order_relaxed);
                }
                r.reducer->fold(item.leaf_id, std::move(counts));
                r.leaves_folded.fetch_add(1, std::memory_order_acq_rel);
            } catch (...) {
                // First failure wins; poisons only this request.
                std::lock_guard<std::mutex> g(r.error_mutex);
                if (!r.failed.load(std::memory_order_relaxed)) {
                    r.error = std::current_exception();
                    r.failed.store(true, std::memory_order_release);
                }
            }
        });
    }
    engine_.executor_.run_queue(queue);
    return executed.load(std::memory_order_acquire);
}

SolveService::Outcome
SolveService::reduce_request(Request& request)
{
    Outcome out;
    out.diag.request_id = request.id;
    out.diag.leaves_scheduled =
        static_cast<int>(request.schedule.executed.size());
    out.diag.leaves_executed = request.leaves_folded.load();
    out.diag.waves = request.waves;
    out.diag.fused_lookups = request.fused_lookups.load();
    out.diag.fused_hits = request.fused_hits.load();
    out.diag.cache_hit_share =
        out.diag.fused_lookups == 0
            ? 0.0
            : static_cast<double>(out.diag.fused_hits) /
                  static_cast<double>(out.diag.fused_lookups);
    out.diag.wave_occupancy =
        request.waves == 0
            ? 0.0
            : request.occupancy_sum / static_cast<double>(request.waves);
    const auto now = Clock::now();
    if (request.started.load(std::memory_order_acquire))
        out.diag.queue_latency_ms =
            ms_since(request.submitted, request.first_exec);
    out.diag.wall_ms = ms_since(request.submitted, now);

    if (request.failed.load(std::memory_order_acquire)) {
        out.error = request.error;
        return out;
    }
    try {
        out.solved = request.reducer->finish();
    } catch (...) {
        // A reduction failure poisons only this request — an escaped
        // exception on the assembler thread would std::terminate the whole
        // service and every co-tenant.
        request.failed.store(true, std::memory_order_release);
        out.error = std::current_exception();
    }
    return out;
}

void
SolveService::deliver(Request& request, Outcome& outcome)
{
    if (outcome.error) {
        request.promise.set_exception(outcome.error);
        return;
    }
    if (request.on_complete) {
        try {
            request.on_complete(request.id, outcome.solved);
        } catch (...) {
            // Callbacks must not throw (header contract); a violation is
            // contained so the result below is still delivered and the
            // assembler survives.
        }
    }
    request.promise.set_value(std::move(outcome.solved));
}

void
SolveService::assembler_loop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        work_available_.wait(
            lock, [&] { return stopping_ || !active_.empty(); });
        if (active_.empty()) {
            if (stopping_)
                return; // drained: every submitted request completed
            continue;
        }

        const auto wave = assemble_wave_locked();
        lock.unlock();
        int executed = 0;
        if (!wave.empty())
            executed = execute_wave(wave);
        lock.lock();
        if (!wave.empty()) {
            ++stats_.waves_executed;
            stats_.wave_slots += static_cast<std::uint64_t>(executed);
        }

        // After the wave barrier every dispatched leaf has folded (or its
        // request failed), so completion is a pure cursor check.
        std::vector<std::unique_ptr<Request>> finished;
        for (auto it = active_.begin(); it != active_.end();) {
            Request& r = **it;
            const bool done =
                r.failed.load(std::memory_order_acquire) ||
                r.leaves_folded.load(std::memory_order_acquire) ==
                    static_cast<int>(r.schedule.executed.size());
            if (done) {
                finished.push_back(std::move(*it));
                it = active_.erase(it);
            } else {
                ++it;
            }
        }
        finishing_ += finished.size();
        lock.unlock();

        // Reduce without the lock (CPU-heavy for flat trees), then publish
        // diagnostics + counters BEFORE delivering promises/callbacks, so
        // a completion callback can read its own diagnostics() and
        // stats(). Callbacks run without the lock; drain() from a callback
        // is the one documented deadlock.
        std::vector<Outcome> outcomes;
        outcomes.reserve(finished.size());
        for (auto& request : finished)
            outcomes.push_back(reduce_request(*request));

        lock.lock();
        for (std::size_t k = 0; k < finished.size(); ++k) {
            completed_[finished[k]->id] = outcomes[k].diag;
            completed_order_.push_back(finished[k]->id);
            while (completed_order_.size() > kMaxCompletedDiagnostics) {
                completed_.erase(completed_order_.front());
                completed_order_.pop_front();
            }
            if (outcomes[k].error)
                ++stats_.requests_failed;
            else
                ++stats_.requests_completed;
        }
        lock.unlock();

        for (std::size_t k = 0; k < finished.size(); ++k)
            deliver(*finished[k], outcomes[k]);

        lock.lock();
        finishing_ -= finished.size();
        request_done_.notify_all();
    }
}

void
SolveService::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    request_done_.wait(
        lock, [&] { return active_.empty() && finishing_ == 0; });
}

SolveService::TenantDiagnostics
SolveService::diagnostics(std::uint64_t request_id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = completed_.find(request_id);
    FQ_REQUIRE(it != completed_.end(),
               "diagnostics are only available for completed requests");
    return it->second;
}

SolveService::Stats
SolveService::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats out = stats_;
    const double denom = static_cast<double>(out.waves_executed) *
                         static_cast<double>(engine_.num_threads());
    out.mean_pool_fill =
        denom == 0.0 ? 0.0 : static_cast<double>(out.wave_slots) / denom;
    return out;
}

} // namespace fq::engine
