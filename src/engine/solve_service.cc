#include "engine/solve_service.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/error.h"

namespace fq::engine {

namespace {

/** Retained completed-request diagnostics: enough for any caller that
 *  polls diagnostics() after drain(), bounded so a process-lifetime
 *  service never grows without limit (oldest entries are dropped FIFO). */
constexpr std::size_t kMaxCompletedDiagnostics = 4096;

double
ms_since(std::chrono::steady_clock::time_point start,
         std::chrono::steady_clock::time_point end)
{
    return std::chrono::duration<double, std::milli>(end - start).count();
}

/** Wave-slot cost units still ahead of @p wave's cursor — the request's
 *  contribution to the deadline backlog projection. */
long long
remaining_cost(const WaveRequest& wave)
{
    long long total = 0;
    for (std::size_t k = wave.dispatched;
         k < wave.schedule->executed.size(); ++k)
        total += leaf_slot_cost(*wave.tree, wave.schedule->executed[k]);
    return total;
}

} // namespace

SolveService::SolveService(ExecutionEngine& engine)
    : SolveService(engine, Config{})
{
}

void
SolveService::admit_or_throw_locked() const
{
    // "In flight" covers requests still being reduced/delivered
    // (finishing_) as well as queued/executing ones — the Config promise.
    const std::size_t in_flight = active_.size() + finishing_;
    if (in_flight >= static_cast<std::size_t>(max_queue_depth_))
        throw AdmissionError("SolveService queue full (" +
                             std::to_string(in_flight) + " of " +
                             std::to_string(max_queue_depth_) +
                             " in flight)");
}

SolveService::SolveService(ExecutionEngine& engine, Config config)
    : engine_(engine),
      // Auto default: two pool widths, floored at 8 — waves never WAIT to
      // fill (assembly takes only what is pending), so a deeper cap costs
      // no latency; it only cuts per-wave handoff overhead on narrow
      // engines.
      wave_size_(config.wave_size > 0
                     ? config.wave_size
                     : std::max(8, 2 * engine.num_threads())),
      max_queue_depth_(config.max_queue_depth)
{
    assembler_ = std::thread([this] { assembler_loop(); });
}

SolveService::~SolveService()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_available_.notify_all();
    assembler_.join();
}

void
SolveService::deadline_or_throw_locked(long long deadline,
                                       long long own_cost)
{
    // Serial projection: the assembler round-robins fairly, but charging
    // the FULL pending cost of every active tenant ahead of this request
    // is the conservative bound the admission contract promises — a
    // request admitted here can only finish sooner than projected.
    long long backlog = 0;
    for (const auto& request : active_)
        backlog +=
            request->pending_cost.load(std::memory_order_acquire);
    if (backlog + own_cost > deadline) {
        ++stats_.requests_rejected_deadline;
        throw DeadlineError(
            "deadline of " + std::to_string(deadline) +
            " cost units cannot cover the backlog (" +
            std::to_string(backlog) + " units ahead) plus this request's " +
            "schedule (" + std::to_string(own_cost) + " units)");
    }
}

SolveService::Ticket
SolveService::enqueue_request(std::unique_ptr<Request> request,
                              bool check_deadline)
{
    request->submitted = Clock::now();
    Ticket ticket;
    ticket.future_ = request->promise.get_future();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        FQ_REQUIRE(!stopping_, "submit on a stopping SolveService");
        if (max_queue_depth_ > 0)
            admit_or_throw_locked();
        if (check_deadline && request->config.deadline_cost_units > 0)
            deadline_or_throw_locked(
                request->config.deadline_cost_units,
                request->pending_cost.load(std::memory_order_relaxed));
        request->id = next_id_++;
        ticket.id_ = request->id;
        ++stats_.requests_submitted;
        active_.push_back(std::move(request));
    }
    work_available_.notify_all();
    return ticket;
}

SolveService::Ticket
SolveService::submit(const ising::IsingModel& model,
                     const device::Device& dev,
                     const frozenqubits::DriverConfig& config, int shots,
                     std::uint64_t seed, CompletionCallback on_complete,
                     CheckpointCallback on_checkpoint)
{
    FQ_REQUIRE(shots >= 1, "need at least one shot");

    // Admission pre-check before the expensive planning below; the
    // authoritative (race-free) check repeats at enqueue time.
    if (max_queue_depth_ > 0) {
        std::lock_guard<std::mutex> lock(mutex_);
        admit_or_throw_locked();
    }

    auto request = std::make_unique<Request>();
    request->model = model; // stable copies: the reducer and the wave items
    request->dev = dev;     // reference the request's own storage
    request->config = config;
    request->shots = shots;
    request->on_complete = std::move(on_complete);
    request->on_checkpoint = std::move(on_checkpoint);

    // Plan on the CALLING thread — the exact sequence of a solo
    // ExecutionEngine::solve, so the schedule (and therefore every leaf's
    // plan-derived RNG stream) is bit-identical to a standalone run.
    // Concurrent submitters contend only on the shared template cache,
    // which compiles outside its lock. Scoring runs serially here
    // (executor = nullptr): per-leaf scores are a pure function of the
    // leaf, so the scores — and the schedule — match the engine's
    // executor-parallel scoring exactly.
    Rng rng(seed);
    request->tree = build_solve_tree(request->model, request->dev,
                                     request->config, engine_.cache_, rng);
    request->schedule = make_schedule(request->model, request->tree,
                                      request->config,
                                      /*force_scoring=*/false, nullptr);
    // Plan-time deadline trim, exactly as a solo solve applies it; a
    // deadline that covers no leaf at all is a typed rejection, counted
    // like the backlog-projection rejections below.
    try {
        apply_deadline_trim(request->schedule, request->tree,
                            request->config.deadline_cost_units,
                            /*folded=*/0);
    } catch (const DeadlineError&) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.requests_rejected_deadline;
        throw;
    }
    request->reducer.emplace(request->model, request->tree,
                             request->schedule);
    // Wire the wave-loop view into the request's own (heap-pinned)
    // storage; the assembler drives the shared epoch primitives on it.
    request->wave.model = &request->model;
    request->wave.tree = &request->tree;
    request->wave.schedule = &request->schedule;
    request->wave.reducer = &*request->reducer;
    request->wave.dev = &request->dev;
    request->wave.config = &request->config;
    request->wave.shots = shots;
    request->wave.context = request.get();
    request->wave.seed = seed;
    arm_rerank(request->wave);
    // Checkpoint boundaries cost wave fragmentation, so they arm only
    // when a sink will actually consume the snapshots.
    if (request->on_checkpoint &&
        request->config.checkpoint_interval > 0)
        arm_checkpoint(request->wave);
    request->pending_cost.store(remaining_cost(request->wave),
                                std::memory_order_relaxed);

    return enqueue_request(std::move(request), /*check_deadline=*/true);
}

SolveService::Ticket
SolveService::submit_resume(const ising::IsingModel& model,
                            const device::Device& dev,
                            const frozenqubits::DriverConfig& config,
                            int shots, const SolveCheckpoint& snapshot,
                            CompletionCallback on_complete,
                            CheckpointCallback on_checkpoint)
{
    FQ_REQUIRE(shots >= 1, "need at least one shot");

    if (max_queue_depth_ > 0) {
        std::lock_guard<std::mutex> lock(mutex_);
        admit_or_throw_locked();
    }

    auto request = std::make_unique<Request>();
    request->model = model;
    request->dev = dev;
    request->config = config;
    request->shots = shots;
    request->on_complete = std::move(on_complete);
    request->on_checkpoint = std::move(on_checkpoint);

    // Replan from the SNAPSHOT's seed; restore_checkpoint fingerprint-
    // checks that this reproduces the plan the snapshot's cursor indexes
    // into, then re-folds the recorded outcomes and moves the cursor. No
    // plan-time deadline trim: the snapshot's schedule already carries
    // every trim/re-rank decision up to its boundary.
    Rng rng(snapshot.seed);
    request->tree = build_solve_tree(request->model, request->dev,
                                     request->config, engine_.cache_, rng);
    request->schedule = make_schedule(request->model, request->tree,
                                      request->config,
                                      /*force_scoring=*/false, nullptr);
    request->reducer.emplace(request->model, request->tree,
                             request->schedule);
    request->wave.model = &request->model;
    request->wave.tree = &request->tree;
    request->wave.schedule = &request->schedule;
    request->wave.reducer = &*request->reducer;
    request->wave.dev = &request->dev;
    request->wave.config = &request->config;
    request->wave.shots = shots;
    request->wave.context = request.get();
    request->wave.seed = snapshot.seed;
    restore_checkpoint(snapshot, request->wave);
    // The snapshot carries the pending re-rank boundary (arm_rerank would
    // rewind it below the cursor); the checkpoint boundary re-arms at the
    // next interval multiple past the restored cursor.
    if (request->on_checkpoint &&
        request->config.checkpoint_interval > 0)
        arm_checkpoint(request->wave);
    request->leaves_folded.store(static_cast<int>(snapshot.cursor),
                                 std::memory_order_release);
    request->resumed_from = static_cast<int>(snapshot.cursor);
    request->pending_cost.store(remaining_cost(request->wave),
                                std::memory_order_relaxed);

    // Queue-depth check only: a migrated request was already admitted
    // against its deadline once — re-projecting the backlog here could
    // bounce it between shards forever.
    return enqueue_request(std::move(request), /*check_deadline=*/false);
}

std::vector<WaveSlot>
SolveService::assemble_wave_locked()
{
    std::vector<WaveSlot> wave;
    if (active_.empty())
        return wave;

    // Live tenants only: a failed request's remaining leaves are dead
    // weight the wave should not even assemble.
    std::vector<WaveRequest*> tenants;
    tenants.reserve(active_.size());
    for (auto& request : active_)
        if (!request->failed.load(std::memory_order_acquire))
            tenants.push_back(&request->wave);
    if (tenants.empty())
        return wave;

    // The shared wave-loop packing: fair round-robin with rotating start,
    // cost-weighted slots, wave_share self-caps and re-rank boundary caps.
    std::vector<int> taken;
    wave = engine::assemble_wave(tenants, wave_size_, rotate_++, &taken);

    // Per-tenant wave bookkeeping (assembler-thread state).
    for (std::size_t t = 0; t < tenants.size(); ++t) {
        if (taken[t] == 0)
            continue;
        Request& request = *static_cast<Request*>(tenants[t]->context);
        ++request.waves;
        request.occupancy_sum += static_cast<double>(taken[t]) /
                                 static_cast<double>(wave.size());
        // The dispatch cursor just advanced; keep the deadline backlog
        // projection submit() reads in step with it.
        request.pending_cost.store(remaining_cost(*tenants[t]),
                                   std::memory_order_release);
    }
    return wave;
}

int
SolveService::run_wave(const std::vector<WaveSlot>& wave)
{
    // The shared wave execution with the service's per-tenant hooks:
    // failure isolation (first failure wins, poisons only that request)
    // and diagnostics (first-execution timestamp, fused-cache traffic,
    // fold counting).
    WaveHooks hooks;
    hooks.admit = [](const WaveSlot& slot) {
        Request& r = *static_cast<Request*>(slot.request->context);
        if (r.failed.load(std::memory_order_acquire))
            return false;
        if (!r.started.exchange(true, std::memory_order_acq_rel)) {
            std::lock_guard<std::mutex> g(r.error_mutex);
            r.first_exec = Clock::now();
        }
        return true;
    };
    hooks.folded = [](const WaveSlot& slot, bool fused_hit,
                      TemplateTier fuse_tier) {
        Request& r = *static_cast<Request*>(slot.request->context);
        const auto& leaf =
            r.tree.leaves[static_cast<std::size_t>(slot.leaf_id)];
        if (leaf.fuse) {
            r.fused_lookups.fetch_add(1, std::memory_order_relaxed);
            if (fused_hit)
                r.fused_hits.fetch_add(1, std::memory_order_relaxed);
            if (fuse_tier == TemplateTier::Bind)
                r.family_binds.fetch_add(1, std::memory_order_relaxed);
            // Attribute the traffic to the leaf's plan-time backend tag.
            const bool simd =
                leaf.backend == sim::BackendKind::VectorizedFused;
            auto& lookups =
                simd ? r.fused_lookups_simd : r.fused_lookups_scalar;
            auto& hits = simd ? r.fused_hits_simd : r.fused_hits_scalar;
            lookups.fetch_add(1, std::memory_order_relaxed);
            if (fused_hit)
                hits.fetch_add(1, std::memory_order_relaxed);
        }
        r.leaves_folded.fetch_add(1, std::memory_order_acq_rel);
    };
    hooks.failed = [](const WaveSlot& slot, std::exception_ptr error) {
        Request& r = *static_cast<Request*>(slot.request->context);
        std::lock_guard<std::mutex> g(r.error_mutex);
        if (!r.failed.load(std::memory_order_relaxed)) {
            r.error = std::move(error);
            r.failed.store(true, std::memory_order_release);
        }
    };
    // Dispatch through the engine's executor seam: the local
    // BatchExecutor by default, a net::WorkerPool when one is attached.
    return engine_.leaf_executor().execute_wave(wave, hooks);
}

SolveService::Outcome
SolveService::reduce_request(Request& request)
{
    Outcome out;
    out.diag.request_id = request.id;
    out.diag.leaves_scheduled =
        static_cast<int>(request.schedule.executed.size());
    out.diag.leaves_executed = request.leaves_folded.load();
    out.diag.waves = request.waves;
    out.diag.fused_lookups = request.fused_lookups.load();
    out.diag.fused_hits = request.fused_hits.load();
    out.diag.fused_lookups_scalar = request.fused_lookups_scalar.load();
    out.diag.fused_hits_scalar = request.fused_hits_scalar.load();
    out.diag.fused_lookups_simd = request.fused_lookups_simd.load();
    out.diag.fused_hits_simd = request.fused_hits_simd.load();
    out.diag.family_binds = request.family_binds.load();
    // Plan-time tier split over the leaves that actually folded (the final
    // schedule — re-ranks may have rewritten the plan-time cut).
    for (int leaf_id : request.schedule.executed) {
        const auto& leaf =
            request.tree.leaves[static_cast<std::size_t>(leaf_id)];
        switch (leaf.tier) {
        case TemplateTier::Hit: ++out.diag.leaves_tier_hit; break;
        case TemplateTier::Bind: ++out.diag.leaves_tier_bind; break;
        case TemplateTier::Compile:
            ++out.diag.leaves_tier_compile;
            break;
        }
        const auto arm =
            node_kind_index(leaf_arm_kind(request.tree, leaf_id));
        ++out.diag.kind_leaves_executed[arm];
        out.diag.kind_budget_units[arm] +=
            leaf_slot_cost(request.tree, leaf_id);
    }
    for (int leaf_id : request.schedule.beyond_budget)
        ++out.diag.kind_leaves_pruned[node_kind_index(
            leaf_arm_kind(request.tree, leaf_id))];
    for (int leaf_id : request.schedule.pruned)
        ++out.diag.kind_leaves_pruned[node_kind_index(
            leaf_arm_kind(request.tree, leaf_id))];
    out.diag.cache_hit_share =
        out.diag.fused_lookups == 0
            ? 0.0
            : static_cast<double>(out.diag.fused_hits) /
                  static_cast<double>(out.diag.fused_lookups);
    out.diag.wave_occupancy =
        request.waves == 0
            ? 0.0
            : request.occupancy_sum / static_cast<double>(request.waves);
    out.diag.reranks = request.schedule.reranks;
    out.diag.rerank_pruned = request.schedule.rerank_pruned;
    out.diag.rerank_promoted = request.schedule.rerank_promoted;
    out.diag.rerank_demoted = request.schedule.rerank_demoted;
    // Remote-execution accounting from the executor seam (all zeros on
    // the local backend). finish_request releases the backend's
    // per-request state (sessions, stats) — the WaveRequest storage is
    // about to be reused.
    {
        LeafExecutor& leaf_exec = engine_.leaf_executor();
        const LeafExecutorStats remote =
            leaf_exec.request_stats(&request.wave);
        leaf_exec.finish_request(&request.wave);
        out.diag.leaves_remote = remote.leaves_remote;
        out.diag.leaves_local =
            static_cast<long long>(out.diag.leaves_executed) -
            remote.leaves_remote;
        out.diag.leaves_redispatched = remote.leaves_redispatched;
        out.diag.remote_bytes_sent = remote.bytes_sent;
        out.diag.remote_bytes_received = remote.bytes_received;
        out.diag.worker_dispatches = remote.worker_dispatches;
    }
    out.diag.checkpoints = request.checkpoints;
    out.diag.resumed_from = request.resumed_from;
    out.diag.deadline_trimmed = request.schedule.deadline_trimmed;
    out.diag.degraded = request.schedule.deadline_trimmed > 0 ||
                        request.schedule.suspended;
    const auto now = Clock::now();
    if (request.started.load(std::memory_order_acquire))
        out.diag.queue_latency_ms =
            ms_since(request.submitted, request.first_exec);
    out.diag.wall_ms = ms_since(request.submitted, now);

    if (request.failed.load(std::memory_order_acquire)) {
        out.error = request.error;
        return out;
    }
    try {
        out.solved = request.reducer->finish();
    } catch (...) {
        // A reduction failure poisons only this request — an escaped
        // exception on the assembler thread would std::terminate the whole
        // service and every co-tenant.
        request.failed.store(true, std::memory_order_release);
        out.error = std::current_exception();
    }
    return out;
}

void
SolveService::deliver(Request& request, Outcome& outcome)
{
    if (outcome.error) {
        request.promise.set_exception(outcome.error);
        return;
    }
    if (request.on_complete) {
        try {
            request.on_complete(request.id, outcome.solved);
        } catch (...) {
            // Callbacks must not throw (header contract); a violation is
            // contained so the result below is still delivered and the
            // assembler survives.
        }
    }
    request.promise.set_value(std::move(outcome.solved));
}

void
SolveService::assembler_loop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        work_available_.wait(
            lock, [&] { return stopping_ || !active_.empty(); });
        if (active_.empty()) {
            if (stopping_)
                return; // drained: every submitted request completed
            continue;
        }

        const auto wave = assemble_wave_locked();
        lock.unlock();
        int executed = 0;
        if (!wave.empty())
            executed = run_wave(wave);
        lock.lock();
        if (!wave.empty()) {
            ++stats_.waves_executed;
            stats_.wave_slots += static_cast<std::uint64_t>(executed);
        }

        // Post-barrier scan, part 1 — adaptive re-ranking: after the wave
        // barrier every dispatched leaf has folded, so a live request
        // sitting exactly on its next rerank_interval boundary re-ranks
        // its un-dispatched tail against its own epoch snapshot. The
        // re-score is CPU-heavy (per-leaf original-model evaluations), so
        // it runs WITHOUT the service lock: it touches only per-request
        // state the assembler alone mutates, requests are heap-pinned in
        // active_ until this same iteration's completion scan, and no
        // leaves are in flight. A failed request never re-ranks (its
        // outcomes may be incomplete and it is being torn down).
        std::vector<Request*> live;
        live.reserve(active_.size());
        for (auto& request : active_)
            if (!request->failed.load(std::memory_order_acquire))
                live.push_back(request.get());
        lock.unlock();
        for (Request* request : live) {
            post_barrier_rerank(request->wave);
            // Durable requests: snapshot at an armed checkpoint boundary.
            // The wrapper captures OUTSIDE the service lock (the snapshot
            // copies every folded histogram) and contains callback throws
            // — the header contract says they must not, so a violation is
            // treated as "continue", mirroring CompletionCallback. A
            // false return suspends the request (suspend_request inside
            // post_barrier_checkpoint); the completion scan below then
            // finishes it as a degraded anytime result.
            post_barrier_checkpoint(
                request->wave, [request](WaveRequest& wave) {
                    if (!request->on_checkpoint)
                        return true;
                    const auto snapshot = capture_checkpoint(wave);
                    ++request->checkpoints;
                    try {
                        return request->on_checkpoint(request->id,
                                                      snapshot);
                    } catch (...) {
                        return true;
                    }
                });
            // Re-ranks and suspensions rewrite the schedule tail; refresh
            // the deadline backlog projection to match.
            request->pending_cost.store(remaining_cost(request->wave),
                                        std::memory_order_release);
        }
        lock.lock();

        // Post-barrier scan, part 2 — completion is a pure cursor check
        // against the (possibly just re-cut) schedule.
        std::vector<std::unique_ptr<Request>> finished;
        for (auto it = active_.begin(); it != active_.end();) {
            Request& r = **it;
            const bool done =
                r.failed.load(std::memory_order_acquire) ||
                r.leaves_folded.load(std::memory_order_acquire) ==
                    static_cast<int>(r.schedule.executed.size());
            if (done) {
                finished.push_back(std::move(*it));
                it = active_.erase(it);
            } else {
                ++it;
            }
        }
        finishing_ += finished.size();
        lock.unlock();

        // Reduce without the lock (CPU-heavy for flat trees), then publish
        // diagnostics + counters BEFORE delivering promises/callbacks, so
        // a completion callback can read its own diagnostics() and
        // stats(). Callbacks run without the lock; drain() from a callback
        // is the one documented deadlock.
        std::vector<Outcome> outcomes;
        outcomes.reserve(finished.size());
        for (auto& request : finished)
            outcomes.push_back(reduce_request(*request));

        lock.lock();
        for (std::size_t k = 0; k < finished.size(); ++k) {
            completed_[finished[k]->id] = outcomes[k].diag;
            completed_order_.push_back(finished[k]->id);
            while (completed_order_.size() > kMaxCompletedDiagnostics) {
                completed_.erase(completed_order_.front());
                completed_order_.pop_front();
            }
            if (outcomes[k].error)
                ++stats_.requests_failed;
            else
                ++stats_.requests_completed;
        }
        lock.unlock();

        for (std::size_t k = 0; k < finished.size(); ++k)
            deliver(*finished[k], outcomes[k]);

        lock.lock();
        finishing_ -= finished.size();
        request_done_.notify_all();
    }
}

void
SolveService::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    request_done_.wait(
        lock, [&] { return active_.empty() && finishing_ == 0; });
}

SolveService::TenantDiagnostics
SolveService::diagnostics(std::uint64_t request_id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = completed_.find(request_id);
    FQ_REQUIRE(it != completed_.end(),
               "diagnostics are only available for completed requests");
    return it->second;
}

SolveService::Stats
SolveService::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats out = stats_;
    const double denom = static_cast<double>(out.waves_executed) *
                         static_cast<double>(engine_.num_threads());
    out.mean_pool_fill =
        denom == 0.0 ? 0.0 : static_cast<double>(out.wave_slots) / denom;
    return out;
}

} // namespace fq::engine
