#include "engine/reducer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/bitops.h"
#include "common/error.h"
#include "frozenqubits/decoder.h"
#include "ising/sa_solver.h"
#include "sim/noise_model.h"

namespace fq::engine {

frozenqubits::Report
reduce_report(const ExecutionPlan& plan,
              const frozenqubits::CircuitStats& baseline,
              std::vector<frozenqubits::CircuitStats> per_task)
{
    FQ_REQUIRE(per_task.size() == plan.tasks.size(),
               "per-task stats do not match the plan");

    frozenqubits::Report report;
    report.baseline = baseline;
    report.arg_baseline = sim::approximation_ratio_gap(
        baseline.ev_ideal, baseline.ev_noisy);

    report.hotspots = plan.hotspots;
    report.num_subproblems = plan.num_subproblems();
    report.num_executed = plan.num_executed();

    double best_ideal = std::numeric_limits<double>::infinity();
    double best_noisy = std::numeric_limits<double>::infinity();
    for (const auto& stats : per_task) {
        best_ideal = std::min(best_ideal, stats.ev_ideal);
        best_noisy = std::min(best_noisy, stats.ev_noisy);
        // Mirror sub-problems share the executed circuit's spectrum
        // (H_mirror(z) = H(-z)), so their EVs equal the solved one and need
        // no separate accounting.
    }
    report.executed = std::move(per_task);

    // An empty task list (or all-skipped execution) would leave both EVs at
    // +infinity and silently report a bogus approximation-ratio gap — fail
    // loudly instead of producing an unsolved report that looks solved.
    FQ_REQUIRE(std::isfinite(best_ideal) && std::isfinite(best_noisy),
               "no executed sub-problem produced a finite EV — the report "
               "has nothing to reduce");

    report.ev_ideal_fq = best_ideal;
    report.ev_noisy_fq = best_noisy;
    report.arg_fq = sim::approximation_ratio_gap(best_ideal, best_noisy);
    return report;
}

frozenqubits::SampledSolve
reduce_sampling(const ising::IsingModel& model, const ExecutionPlan& plan,
                const std::vector<sim::Counts>& per_task)
{
    FQ_REQUIRE(per_task.size() == plan.tasks.size(),
               "per-task counts do not match the plan");

    const int sub_width =
        model.num_spins() - static_cast<int>(plan.hotspots.size());
    std::vector<sim::Counts> distributions(
        plan.subproblems.size(), sim::Counts(sub_width));
    for (std::size_t k = 0; k < plan.tasks.size(); ++k) {
        const auto& task = plan.tasks[k];
        distributions[task.solve] = per_task[k];
        // Mirror distributions: flip every bit (Section 3.7.2).
        for (int mirror : task.mirrors)
            distributions[mirror] = per_task[k].flip_all_bits();
    }

    const auto decoded =
        frozenqubits::decode_best(model, plan.subproblems, distributions);
    frozenqubits::SampledSolve out;
    out.best_assignment = decoded.assignment;
    out.best_cost = decoded.cost;
    out.from_subproblem = decoded.subproblem_index;
    out.distributions = std::move(distributions);
    return out;
}

// ---------------------------------------------------------------------------
// StreamingReducer

StreamingReducer::StreamingReducer(const ising::IsingModel& original,
                                   const SolveTree& tree,
                                   const LeafSchedule& schedule)
    : original_(original), tree_(tree), schedule_(schedule),
      outcomes_(tree.leaves.size())
{
    if (schedule_.has_presolve) {
        base_ = schedule_.presolve_assignment;
        incumbent_.valid = true;
        incumbent_.cost = schedule_.presolve_cost;
        incumbent_.assignment = schedule_.presolve_assignment;
        incumbent_.leaf = -1;
    } else {
        base_.assign(static_cast<std::size_t>(original.num_spins()), 1);
    }
}

StreamingReducer::LeafOutcome
StreamingReducer::decode(int leaf_id, sim::Counts counts) const
{
    const auto& leaf = tree_.leaves[static_cast<std::size_t>(leaf_id)];
    const auto& sub =
        tree_.nodes[static_cast<std::size_t>(leaf.node)].sub;

    LeafOutcome out;
    out.done = true;

    // Argmin over the histogram by SUB-MODEL cost: for freeze lineages the
    // offset bookkeeping makes this exactly the original-model cost of the
    // lifted outcome, at O(sub terms) per state instead of O(N + |J|).
    bool have_state = false;
    std::uint64_t best_state = 0;
    double best_sub_cost = std::numeric_limits<double>::infinity();
    for (const auto& [state, _] : counts.histogram()) {
        const double cost = sub.model.evaluate_state(state);
        if (!have_state || cost < best_sub_cost) {
            have_state = true;
            best_state = state;
            best_sub_cost = cost;
        }
    }
    out.counts = std::move(counts);
    if (!have_state)
        return out;

    out.best_assignment =
        lift_leaf_state(tree_, leaf, best_state, base_);
    if (leaf.needs_repair)
        ising::greedy_descent(original_, out.best_assignment);
    out.best_cost = original_.evaluate(out.best_assignment);

    // Mirror candidates: the bit-flipped best outcome lifted through each
    // mirror node's frozen values (Section 3.7.2 at decode level). For
    // pure-freeze lineages on a symmetric model this ties the canonical
    // cost; for partition fragments the flip composes with the unflipped
    // rest of the base and can genuinely improve the repair.
    if (!leaf.mirror_nodes.empty()) {
        const std::uint64_t flipped =
            (~best_state) & low_bits_mask(sub.model.num_spins());
        for (int mirror_node : leaf.mirror_nodes) {
            SolveLeaf mirror_view = leaf;
            mirror_view.node = mirror_node;
            auto candidate =
                lift_leaf_state(tree_, mirror_view, flipped, base_);
            if (leaf.needs_repair)
                ising::greedy_descent(original_, candidate);
            const double cost = original_.evaluate(candidate);
            if (cost < out.best_cost) {
                out.best_cost = cost;
                out.best_assignment = std::move(candidate);
            }
        }
    }
    return out;
}

void
StreamingReducer::fold(int leaf_id, sim::Counts counts)
{
    auto outcome = decode(leaf_id, std::move(counts));

    std::lock_guard<std::mutex> lock(mutex_);
    if (outcome.done && incumbent_.accepts(outcome.best_cost, leaf_id)) {
        incumbent_.valid = true;
        incumbent_.cost = outcome.best_cost;
        incumbent_.assignment = outcome.best_assignment;
        incumbent_.leaf = leaf_id;
    }
    outcomes_[static_cast<std::size_t>(leaf_id)] = std::move(outcome);
}

StreamingReducer::Incumbent
StreamingReducer::incumbent() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return incumbent_;
}

EpochIncumbent
StreamingReducer::epoch_snapshot(std::size_t folded) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    FQ_REQUIRE(folded <= schedule_.executed.size(),
               "epoch snapshot beyond the schedule");

    // Replay the live merge rule over the schedule prefix only: folds are
    // order-independent and keyed by leaf id, so this is identical whether
    // the prefix folded serially, across threads, or interleaved with
    // later leaves the snapshot must not see.
    Incumbent running;
    if (schedule_.has_presolve) {
        running.valid = true;
        running.cost = schedule_.presolve_cost;
        running.assignment = schedule_.presolve_assignment;
        running.leaf = -1;
    }
    for (std::size_t k = 0; k < folded; ++k) {
        const int leaf_id = schedule_.executed[k];
        const auto& outcome =
            outcomes_[static_cast<std::size_t>(leaf_id)];
        FQ_REQUIRE(outcome.done,
                   "epoch snapshot over a leaf that has not folded");
        if (running.accepts(outcome.best_cost, leaf_id)) {
            running.valid = true;
            running.cost = outcome.best_cost;
            running.assignment = outcome.best_assignment;
            running.leaf = leaf_id;
        }
    }

    EpochIncumbent snap;
    snap.valid = running.valid;
    snap.cost = running.cost;
    snap.assignment = running.assignment;
    snap.leaf = running.leaf;
    return snap;
}

std::vector<std::pair<int, sim::Counts>>
StreamingReducer::export_folded(std::size_t folded) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    FQ_REQUIRE(folded <= schedule_.executed.size(),
               "checkpoint export beyond the schedule");
    std::vector<std::pair<int, sim::Counts>> out;
    out.reserve(folded);
    for (std::size_t k = 0; k < folded; ++k) {
        const int leaf_id = schedule_.executed[k];
        const auto& outcome = outcomes_[static_cast<std::size_t>(leaf_id)];
        FQ_REQUIRE(outcome.done,
                   "checkpoint export over a leaf that has not folded");
        out.emplace_back(leaf_id, outcome.counts);
    }
    return out;
}

frozenqubits::SampledSolve
StreamingReducer::finish_flat() const
{
    // Legacy reduction, delegated to the flat reducer: per-task counts in
    // plan order (budget-skipped tasks contribute an empty histogram that
    // decode_best skips) — bit-identical to the flat engine for a full
    // (unbudgeted) schedule.
    const auto& root = tree_.nodes.front();
    const int sub_width =
        original_.num_spins() -
        static_cast<int>(root.plan.hotspots.size());
    std::vector<sim::Counts> per_task(root.plan.tasks.size(),
                                      sim::Counts(sub_width));
    // Map each leaf to its plan task through the node-local sub-problem
    // index, never by position: today the tree builder emits flat leaves in
    // task order, but a planner change that reorders them must trip the
    // requirements below instead of silently permuting distributions.
    std::vector<int> task_of_solve(root.plan.subproblems.size(), -1);
    for (std::size_t j = 0; j < root.plan.tasks.size(); ++j)
        task_of_solve[static_cast<std::size_t>(root.plan.tasks[j].solve)] =
            static_cast<int>(j);
    for (std::size_t k = 0; k < tree_.leaves.size(); ++k) {
        if (!outcomes_[k].done)
            continue;
        const auto& leaf = tree_.leaves[k];
        FQ_REQUIRE(leaf.local_solve >= 0 &&
                       leaf.local_solve <
                           static_cast<int>(task_of_solve.size()),
                   "flat leaf lacks a node-local sub-problem index");
        const int task =
            task_of_solve[static_cast<std::size_t>(leaf.local_solve)];
        FQ_REQUIRE(task >= 0,
                   "flat leaf's sub-problem has no matching plan task");
        per_task[static_cast<std::size_t>(task)] = outcomes_[k].counts;
    }
    return reduce_sampling(original_, root.plan, per_task);
}

frozenqubits::SampledSolve
StreamingReducer::finish()
{
    std::lock_guard<std::mutex> lock(mutex_);

    frozenqubits::SampledSolve out;
    if (tree_.flat()) {
        out = finish_flat();
    } else {
        // Quantum-only best: scan in leaf order — deterministic regardless
        // of arrival order.
        int best_leaf = -1;
        for (std::size_t id = 0; id < outcomes_.size(); ++id) {
            const auto& outcome = outcomes_[id];
            if (!outcome.done ||
                outcome.best_cost ==
                    std::numeric_limits<double>::infinity())
                continue;
            if (best_leaf < 0 ||
                outcome.best_cost <
                    outcomes_[static_cast<std::size_t>(best_leaf)]
                        .best_cost)
                best_leaf = static_cast<int>(id);
        }
        FQ_REQUIRE(best_leaf >= 0,
                   "no decodable outcome (no leaf executed)");
        const auto& best = outcomes_[static_cast<std::size_t>(best_leaf)];
        out.best_assignment = best.best_assignment;
        out.best_cost = best.best_cost;
        out.from_subproblem = best_leaf;
        for (int leaf_id : schedule_.executed) {
            const auto& outcome =
                outcomes_[static_cast<std::size_t>(leaf_id)];
            if (outcome.done)
                out.distributions.push_back(outcome.counts);
        }
    }
    out.best_quantum_cost = out.best_cost;
    out.best_quantum_leaf = out.from_subproblem;
    // The reported best is the overall incumbent — what the anytime trace
    // converges to. A presolve that strictly beats every quantum decode
    // wins (from_subproblem -1); ties keep the quantum answer, matching
    // Incumbent::accepts.
    if (schedule_.has_presolve &&
        schedule_.presolve_cost < out.best_cost) {
        out.best_cost = schedule_.presolve_cost;
        out.best_assignment = schedule_.presolve_assignment;
        out.from_subproblem = -1;
    }

    out.leaves_total = tree_.num_executable_leaves();
    // Rank-order anytime trajectory, replayed deterministically.
    Incumbent running;
    if (schedule_.has_presolve) {
        running.valid = true;
        running.cost = schedule_.presolve_cost;
        running.leaf = -1;
        out.anytime.push_back({0, running.cost, -1});
    }
    int circuits = 0;
    for (int leaf_id : schedule_.executed) {
        const auto& outcome =
            outcomes_[static_cast<std::size_t>(leaf_id)];
        if (!outcome.done)
            continue;
        ++circuits;
        if (running.accepts(outcome.best_cost, leaf_id)) {
            running.valid = true;
            running.cost = outcome.best_cost;
            running.leaf = leaf_id;
        }
        out.anytime.push_back({circuits, running.cost, running.leaf});
    }
    out.leaves_executed = circuits;
    // Durability flags: a deadline trim or a checkpoint-sink suspension
    // shortened the schedule, so the answer above is the valid anytime
    // incumbent over what DID fold — degraded, not wrong.
    out.deadline_trimmed = schedule_.deadline_trimmed;
    out.degraded = schedule_.deadline_trimmed > 0 || schedule_.suspended;
    return out;
}

} // namespace fq::engine
