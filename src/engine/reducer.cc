#include "engine/reducer.h"

#include <algorithm>
#include <limits>

#include "common/error.h"
#include "frozenqubits/decoder.h"
#include "sim/noise_model.h"

namespace fq::engine {

frozenqubits::Report
reduce_report(const ExecutionPlan& plan,
              const frozenqubits::CircuitStats& baseline,
              std::vector<frozenqubits::CircuitStats> per_task)
{
    FQ_REQUIRE(per_task.size() == plan.tasks.size(),
               "per-task stats do not match the plan");

    frozenqubits::Report report;
    report.baseline = baseline;
    report.arg_baseline = sim::approximation_ratio_gap(
        baseline.ev_ideal, baseline.ev_noisy);

    report.hotspots = plan.hotspots;
    report.num_subproblems = plan.num_subproblems();
    report.num_executed = plan.num_executed();

    double best_ideal = std::numeric_limits<double>::infinity();
    double best_noisy = std::numeric_limits<double>::infinity();
    for (const auto& stats : per_task) {
        best_ideal = std::min(best_ideal, stats.ev_ideal);
        best_noisy = std::min(best_noisy, stats.ev_noisy);
        // Mirror sub-problems share the executed circuit's spectrum
        // (H_mirror(z) = H(-z)), so their EVs equal the solved one and need
        // no separate accounting.
    }
    report.executed = std::move(per_task);

    report.ev_ideal_fq = best_ideal;
    report.ev_noisy_fq = best_noisy;
    report.arg_fq = sim::approximation_ratio_gap(best_ideal, best_noisy);
    return report;
}

frozenqubits::SampledSolve
reduce_sampling(const ising::IsingModel& model, const ExecutionPlan& plan,
                const std::vector<sim::Counts>& per_task)
{
    FQ_REQUIRE(per_task.size() == plan.tasks.size(),
               "per-task counts do not match the plan");

    const int sub_width =
        model.num_spins() - static_cast<int>(plan.hotspots.size());
    std::vector<sim::Counts> distributions(
        plan.subproblems.size(), sim::Counts(sub_width));
    for (std::size_t k = 0; k < plan.tasks.size(); ++k) {
        const auto& task = plan.tasks[k];
        distributions[task.solve] = per_task[k];
        // Mirror distributions: flip every bit (Section 3.7.2).
        for (int mirror : task.mirrors)
            distributions[mirror] = per_task[k].flip_all_bits();
    }

    const auto decoded =
        frozenqubits::decode_best(model, plan.subproblems, distributions);
    frozenqubits::SampledSolve out;
    out.best_assignment = decoded.assignment;
    out.best_cost = decoded.cost;
    out.from_subproblem = decoded.subproblem_index;
    out.distributions = std::move(distributions);
    return out;
}

} // namespace fq::engine
