#include "ising/ising_model.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/bitops.h"
#include "common/error.h"

namespace fq::ising {

IsingModel::IsingModel(int num_spins)
{
    FQ_REQUIRE(num_spins >= 0, "negative spin count");
    linear_.resize(num_spins, 0.0);
    adjacency_.resize(num_spins);
}

void
IsingModel::check_spin(int i) const
{
    FQ_REQUIRE(i >= 0 && i < num_spins(), "spin index out of range");
}

double
IsingModel::linear(int i) const
{
    check_spin(i);
    return linear_[i];
}

void
IsingModel::add_linear(int i, double delta)
{
    check_spin(i);
    linear_[i] += delta;
}

void
IsingModel::set_linear(int i, double value)
{
    check_spin(i);
    linear_[i] = value;
}

void
IsingModel::add_quadratic(int i, int j, double coefficient)
{
    check_spin(i);
    check_spin(j);
    FQ_REQUIRE(i != j, "diagonal quadratic term belongs in the offset");
    if (i > j)
        std::swap(i, j);

    // Accumulate into an existing term when present.
    for (auto& [other, w] : adjacency_[i]) {
        if (other == j) {
            w += coefficient;
            for (auto& [back, wb] : adjacency_[j])
                if (back == i)
                    wb += coefficient;
            for (auto& term : quadratic_)
                if (term.i == i && term.j == j)
                    term.coefficient += coefficient;
            return;
        }
    }
    quadratic_.push_back({i, j, coefficient});
    adjacency_[i].emplace_back(j, coefficient);
    adjacency_[j].emplace_back(i, coefficient);
}

double
IsingModel::quadratic(int i, int j) const
{
    check_spin(i);
    check_spin(j);
    for (const auto& [other, w] : adjacency_[i])
        if (other == j)
            return w;
    return 0.0;
}

const std::vector<std::pair<int, double>>&
IsingModel::couplings_of(int i) const
{
    check_spin(i);
    return adjacency_[i];
}

bool
IsingModel::has_zero_linear_terms() const
{
    for (double h : linear_)
        if (h != 0.0)
            return false;
    return true;
}

void
IsingModel::prune_zero_terms(double epsilon)
{
    std::vector<QuadraticTerm> kept;
    kept.reserve(quadratic_.size());
    for (const auto& term : quadratic_)
        if (std::abs(term.coefficient) > epsilon)
            kept.push_back(term);
    if (kept.size() == quadratic_.size())
        return;
    quadratic_ = std::move(kept);
    for (auto& adj : adjacency_)
        adj.clear();
    for (const auto& term : quadratic_) {
        adjacency_[term.i].emplace_back(term.j, term.coefficient);
        adjacency_[term.j].emplace_back(term.i, term.coefficient);
    }
}

double
IsingModel::evaluate(const SpinVector& z) const
{
    FQ_REQUIRE(static_cast<int>(z.size()) == num_spins(),
               "assignment size mismatch");
    double c = offset_;
    for (int i = 0; i < num_spins(); ++i)
        c += linear_[i] * z[i];
    for (const auto& term : quadratic_)
        c += term.coefficient * z[term.i] * z[term.j];
    return c;
}

double
IsingModel::evaluate_state(std::uint64_t state) const
{
    double c = offset_;
    for (int i = 0; i < num_spins(); ++i)
        c += linear_[i] * spin_of_bit(state, i);
    for (const auto& term : quadratic_)
        c += term.coefficient * spin_of_bit(state, term.i) *
             spin_of_bit(state, term.j);
    return c;
}

double
IsingModel::flip_delta(const SpinVector& z, int k) const
{
    check_spin(k);
    FQ_REQUIRE(static_cast<int>(z.size()) == num_spins(),
               "assignment size mismatch");
    double local_field = linear_[k];
    for (const auto& [j, w] : adjacency_[k])
        local_field += w * z[j];
    return -2.0 * z[k] * local_field;
}

graph::Graph
IsingModel::to_graph() const
{
    graph::Graph g(num_spins());
    for (const auto& term : quadratic_)
        g.add_edge(term.i, term.j, term.coefficient);
    return g;
}

IsingModel
IsingModel::from_graph(const graph::Graph& g)
{
    IsingModel model(g.num_nodes());
    for (const auto& e : g.edges())
        model.add_quadratic(e.u, e.v, e.weight);
    return model;
}

double
IsingModel::coefficient_magnitude_sum() const
{
    double s = 0.0;
    for (double h : linear_)
        s += std::abs(h);
    for (const auto& term : quadratic_)
        s += std::abs(term.coefficient);
    return s;
}

std::string
IsingModel::summary() const
{
    std::ostringstream os;
    os << "IsingModel(N=" << num_spins() << ", |J|=" << num_quadratic_terms()
       << ", offset=" << offset_
       << (has_zero_linear_terms() ? ", h==0" : ", h!=0") << ")";
    return os.str();
}

std::uint64_t
spins_to_state(const SpinVector& z)
{
    FQ_REQUIRE(z.size() <= 64, "state encoding limited to 64 spins");
    std::uint64_t state = 0;
    for (std::size_t i = 0; i < z.size(); ++i) {
        FQ_REQUIRE(z[i] == 1 || z[i] == -1, "spins must be +-1");
        state = with_spin(state, static_cast<int>(i), z[i]);
    }
    return state;
}

SpinVector
state_to_spins(std::uint64_t state, int n)
{
    FQ_REQUIRE(n >= 0 && n <= 64, "state decoding limited to 64 spins");
    SpinVector z(n);
    for (int i = 0; i < n; ++i)
        z[i] = static_cast<std::int8_t>(spin_of_bit(state, i));
    return z;
}

SpinVector
flip_all(const SpinVector& z)
{
    SpinVector out(z.size());
    for (std::size_t i = 0; i < z.size(); ++i)
        out[i] = static_cast<std::int8_t>(-z[i]);
    return out;
}

} // namespace fq::ising
