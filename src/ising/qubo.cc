#include "ising/qubo.h"

#include <algorithm>

#include "common/error.h"

namespace fq::ising {

QuboModel::QuboModel(int num_variables)
{
    FQ_REQUIRE(num_variables >= 0, "negative variable count");
    linear_.resize(num_variables, 0.0);
}

void
QuboModel::add_linear(int i, double delta)
{
    FQ_REQUIRE(i >= 0 && i < num_variables(), "variable out of range");
    linear_[i] += delta;
}

double
QuboModel::linear(int i) const
{
    FQ_REQUIRE(i >= 0 && i < num_variables(), "variable out of range");
    return linear_[i];
}

void
QuboModel::add_quadratic(int i, int j, double delta)
{
    FQ_REQUIRE(i >= 0 && i < num_variables() && j >= 0 &&
                   j < num_variables(),
               "variable out of range");
    FQ_REQUIRE(i != j, "diagonal QUBO terms are linear (x^2 = x)");
    if (i > j)
        std::swap(i, j);
    for (auto& term : quadratic_) {
        if (term.i == i && term.j == j) {
            term.coefficient += delta;
            return;
        }
    }
    quadratic_.push_back({i, j, delta});
}

double
QuboModel::evaluate(const BinaryVector& x) const
{
    FQ_REQUIRE(static_cast<int>(x.size()) == num_variables(),
               "assignment size mismatch");
    double value = constant_;
    for (int i = 0; i < num_variables(); ++i) {
        FQ_REQUIRE(x[i] == 0 || x[i] == 1, "binary values must be 0/1");
        value += linear_[i] * x[i];
    }
    for (const auto& term : quadratic_)
        value += term.coefficient * x[term.i] * x[term.j];
    return value;
}

IsingModel
QuboModel::to_ising() const
{
    IsingModel ising(num_variables());
    double offset = constant_;
    // a x = a (1 - z)/2.
    for (int i = 0; i < num_variables(); ++i) {
        ising.add_linear(i, -linear_[i] / 2.0);
        offset += linear_[i] / 2.0;
    }
    // b x_i x_j = b (1 - z_i)(1 - z_j)/4.
    for (const auto& term : quadratic_) {
        const double quarter = term.coefficient / 4.0;
        ising.add_quadratic(term.i, term.j, quarter);
        ising.add_linear(term.i, -quarter);
        ising.add_linear(term.j, -quarter);
        offset += quarter;
    }
    ising.set_offset(offset);
    ising.prune_zero_terms();
    return ising;
}

QuboModel
QuboModel::from_ising(const IsingModel& ising)
{
    QuboModel qubo(ising.num_spins());
    double constant = ising.offset();
    // h z = h (1 - 2x).
    for (int i = 0; i < ising.num_spins(); ++i) {
        qubo.add_linear(i, -2.0 * ising.linear(i));
        constant += ising.linear(i);
    }
    // J z_i z_j = J (1 - 2x_i)(1 - 2x_j).
    for (const auto& term : ising.quadratic_terms()) {
        qubo.add_quadratic(term.i, term.j, 4.0 * term.coefficient);
        qubo.add_linear(term.i, -2.0 * term.coefficient);
        qubo.add_linear(term.j, -2.0 * term.coefficient);
        constant += term.coefficient;
    }
    qubo.add_constant(constant);
    return qubo;
}

BinaryVector
spins_to_binary(const SpinVector& z)
{
    BinaryVector x(z.size());
    for (std::size_t i = 0; i < z.size(); ++i) {
        FQ_REQUIRE(z[i] == 1 || z[i] == -1, "spins must be +-1");
        x[i] = z[i] < 0 ? 1 : 0;
    }
    return x;
}

SpinVector
binary_to_spins(const BinaryVector& x)
{
    SpinVector z(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        FQ_REQUIRE(x[i] == 0 || x[i] == 1, "binary values must be 0/1");
        z[i] = x[i] ? -1 : 1;
    }
    return z;
}

} // namespace fq::ising
