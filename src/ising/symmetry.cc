#include "ising/symmetry.h"

#include <cmath>

#include "common/error.h"

namespace fq::ising {

bool
is_flip_symmetric(const IsingModel& model)
{
    return model.has_zero_linear_terms();
}

bool
verify_flip_symmetry_exhaustive(const IsingModel& model, double tolerance)
{
    const int n = model.num_spins();
    FQ_REQUIRE(n >= 1 && n <= 20, "exhaustive check limited to 20 spins");
    const std::uint64_t total = 1ull << n;
    const std::uint64_t mask = total - 1;
    for (std::uint64_t s = 0; s < total; ++s) {
        const std::uint64_t flipped = (~s) & mask;
        if (std::abs(model.evaluate_state(s) -
                     model.evaluate_state(flipped)) > tolerance) {
            return false;
        }
    }
    return true;
}

IsingModel
mirror_model(const IsingModel& model)
{
    IsingModel out(model.num_spins());
    for (int i = 0; i < model.num_spins(); ++i)
        out.set_linear(i, -model.linear(i));
    for (const auto& term : model.quadratic_terms())
        out.add_quadratic(term.i, term.j, term.coefficient);
    out.set_offset(model.offset());
    return out;
}

} // namespace fq::ising
