#include "ising/exact_solver.h"

#include <cmath>

#include "common/bitops.h"
#include "common/error.h"

namespace fq::ising {

ExactSolution
solve_exact(const IsingModel& model, int max_spins)
{
    const int n = model.num_spins();
    FQ_REQUIRE(n >= 1, "cannot solve an empty model");
    FQ_REQUIRE(n <= max_spins && n <= 63,
               "instance too large for exact enumeration");

    // Start from the all +1 assignment (Gray code of 0).
    SpinVector z(n, 1);
    double cost = model.evaluate(z);

    ExactSolution best;
    best.min_cost = cost;
    best.max_cost = cost;
    best.argmin = z;
    best.num_minima = 1;
    double cost_sum = cost;

    const std::uint64_t total = 1ull << n;
    constexpr double kTol = 1e-9;
    for (std::uint64_t k = 1; k < total; ++k) {
        const int bit = gray_flip_bit(k);
        cost += model.flip_delta(z, bit);
        z[bit] = static_cast<std::int8_t>(-z[bit]);
        cost_sum += cost;

        if (cost < best.min_cost - kTol) {
            best.min_cost = cost;
            best.argmin = z;
            best.num_minima = 1;
        } else if (std::abs(cost - best.min_cost) <= kTol) {
            ++best.num_minima;
        }
        if (cost > best.max_cost)
            best.max_cost = cost;
    }
    best.mean_cost = cost_sum / static_cast<double>(total);
    return best;
}

std::vector<double>
all_costs(const IsingModel& model)
{
    const int n = model.num_spins();
    FQ_REQUIRE(n >= 1 && n <= 20, "all_costs limited to 20 spins");
    const std::uint64_t total = 1ull << n;
    std::vector<double> costs(total);

    // Enumerate in Gray-code order but store by natural state index.
    SpinVector z(n, 1);
    double cost = model.evaluate(z);
    costs[0] = cost;
    std::uint64_t state = 0;
    for (std::uint64_t k = 1; k < total; ++k) {
        const int bit = gray_flip_bit(k);
        cost += model.flip_delta(z, bit);
        z[bit] = static_cast<std::int8_t>(-z[bit]);
        state ^= (1ull << bit);
        costs[state] = cost;
    }
    return costs;
}

} // namespace fq::ising
