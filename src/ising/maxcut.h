/**
 * @file
 * Max-Cut <-> Ising translation (Section 2.1).
 *
 * For Max-Cut, each edge (i, j) with weight w contributes w * z_i z_j to the
 * Hamiltonian; z_i z_j = -1 means the endpoints are in different partitions.
 * Minimizing the Ising cost maximizes the cut:
 *   cut(z) = (W - C(z)) / 2, with W = total edge weight (for offset 0).
 */
#ifndef FQ_ISING_MAXCUT_H
#define FQ_ISING_MAXCUT_H

#include "graph/graph.h"
#include "ising/ising_model.h"

namespace fq::ising {

/** Build the Max-Cut Ising Hamiltonian for @p g (h = 0, offset = 0). */
IsingModel maxcut_hamiltonian(const graph::Graph& g);

/** Total cut weight of the partition encoded by @p z. */
double cut_value(const graph::Graph& g, const SpinVector& z);

/** Recover the cut weight from an Ising cost: (W - cost + offset) / 2. */
double cut_from_cost(const graph::Graph& g, double ising_cost);

} // namespace fq::ising

#endif // FQ_ISING_MAXCUT_H
