/**
 * @file
 * Exact Ising ground-state search by Gray-code enumeration.
 *
 * Consecutive Gray codes differ in one bit, so the cost can be updated
 * incrementally in O(deg) per visited state instead of O(|J|) per state,
 * giving O(2^N * avg_deg) total work. This provides the exact C_min and
 * EV_ideal references the paper's AR/ARG metrics require (Section 4.3)
 * for instances up to ~26 spins.
 */
#ifndef FQ_ISING_EXACT_SOLVER_H
#define FQ_ISING_EXACT_SOLVER_H

#include <cstdint>
#include <vector>

#include "ising/ising_model.h"

namespace fq::ising {

/** Result of an exact exhaustive search. */
struct ExactSolution
{
    double min_cost = 0.0;
    double max_cost = 0.0;
    /** One (arbitrary, deterministic) minimizing assignment. */
    SpinVector argmin;
    /** Number of global minima (within tolerance 1e-9). */
    std::uint64_t num_minima = 0;
    /** Mean of C over the whole state space (uniform distribution EV). */
    double mean_cost = 0.0;
};

/** Exhaustively solve @p model; requires num_spins() <= max_spins. */
ExactSolution solve_exact(const IsingModel& model, int max_spins = 26);

/**
 * All costs in basis-state order (index = little-endian state encoding).
 * Requires num_spins() <= 20 to bound memory. Used by landscape and
 * distribution tests.
 */
std::vector<double> all_costs(const IsingModel& model);

} // namespace fq::ising

#endif // FQ_ISING_EXACT_SOLVER_H
