#include "ising/maxcut.h"

#include "common/error.h"

namespace fq::ising {

IsingModel
maxcut_hamiltonian(const graph::Graph& g)
{
    return IsingModel::from_graph(g);
}

double
cut_value(const graph::Graph& g, const SpinVector& z)
{
    FQ_REQUIRE(static_cast<int>(z.size()) == g.num_nodes(),
               "assignment size mismatch");
    double cut = 0.0;
    for (const auto& e : g.edges())
        if (z[e.u] != z[e.v])
            cut += e.weight;
    return cut;
}

double
cut_from_cost(const graph::Graph& g, double ising_cost)
{
    double total = 0.0;
    for (const auto& e : g.edges())
        total += e.weight;
    return (total - ising_cost) / 2.0;
}

} // namespace fq::ising
