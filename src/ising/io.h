/**
 * @file
 * Plain-text serialization for Ising models — the interchange format the
 * CLI tool and examples use. The format is line-oriented and stable:
 *
 *   ising <num_spins>
 *   offset <value>
 *   h <index> <value>          # one line per non-zero linear term
 *   J <i> <j> <value>          # one line per quadratic term
 *
 * Lines starting with '#' and blank lines are ignored. Deterministic
 * round-trip: write(parse(text)) == canonical form of text.
 */
#ifndef FQ_ISING_IO_H
#define FQ_ISING_IO_H

#include <iosfwd>
#include <string>

#include "ising/ising_model.h"

namespace fq::ising {

/** Serialize @p model in the canonical text format. */
std::string to_text(const IsingModel& model);

/** Write to a stream. */
void write_model(std::ostream& os, const IsingModel& model);

/** Parse a model from text; throws fq::Error on malformed input. */
IsingModel parse_model(const std::string& text);

/** Read a model from a stream (consumes the whole stream). */
IsingModel read_model(std::istream& is);

} // namespace fq::ising

#endif // FQ_ISING_IO_H
