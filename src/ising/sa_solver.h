/**
 * @file
 * Simulated-annealing Ising solver.
 *
 * The classical heuristic substrate: provides near-optimal C_min references
 * for instances too large for exact enumeration (e.g. the paper's 500-qubit
 * practical-scale study) and serves as the classical-baseline comparator in
 * the examples. Geometric cooling with single-spin Metropolis moves and
 * O(deg) incremental cost updates.
 */
#ifndef FQ_ISING_SA_SOLVER_H
#define FQ_ISING_SA_SOLVER_H

#include "common/rng.h"
#include "ising/ising_model.h"

namespace fq::ising {

/** Annealing schedule and effort knobs. */
struct SaConfig
{
    int num_restarts = 8;
    int sweeps_per_restart = 600;
    /** Initial temperature as a fraction of the coefficient magnitude sum. */
    double initial_temperature_scale = 1.0;
    double final_temperature = 1e-3;
};

/** Result of a simulated-annealing run. */
struct SaSolution
{
    double best_cost = 0.0;
    SpinVector best_assignment;
    int restarts_used = 0;
    long long moves_accepted = 0;
};

/** Run simulated annealing on @p model with the given effort. */
SaSolution solve_annealing(const IsingModel& model, const SaConfig& config,
                           Rng& rng);

/** Greedy single-spin descent from @p start until no flip improves. */
double greedy_descent(const IsingModel& model, SpinVector& start);

} // namespace fq::ising

#endif // FQ_ISING_SA_SOLVER_H
