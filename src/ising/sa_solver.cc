#include "ising/sa_solver.h"

#include <cmath>

#include "common/error.h"

namespace fq::ising {

SaSolution
solve_annealing(const IsingModel& model, const SaConfig& config, Rng& rng)
{
    const int n = model.num_spins();
    FQ_REQUIRE(n >= 1, "cannot anneal an empty model");
    FQ_REQUIRE(config.num_restarts >= 1 && config.sweeps_per_restart >= 1,
               "SA effort must be positive");

    const double magnitude = model.coefficient_magnitude_sum();
    const double t_initial = std::max(
        config.final_temperature * 2.0,
        config.initial_temperature_scale * magnitude /
            std::max(1, model.num_spins()));

    SaSolution solution;
    bool have_solution = false;

    for (int restart = 0; restart < config.num_restarts; ++restart) {
        SpinVector z(n);
        for (int i = 0; i < n; ++i)
            z[i] = static_cast<std::int8_t>(rng.sign());
        double cost = model.evaluate(z);

        const int sweeps = config.sweeps_per_restart;
        // Geometric schedule hitting final_temperature on the last sweep.
        const double decay = std::pow(config.final_temperature / t_initial,
                                      1.0 / std::max(1, sweeps - 1));
        double temperature = t_initial;

        for (int sweep = 0; sweep < sweeps; ++sweep) {
            for (int k = 0; k < n; ++k) {
                const double delta = model.flip_delta(z, k);
                if (delta <= 0.0 ||
                    rng.uniform() < std::exp(-delta / temperature)) {
                    z[k] = static_cast<std::int8_t>(-z[k]);
                    cost += delta;
                    ++solution.moves_accepted;
                }
            }
            temperature *= decay;
        }
        greedy_descent(model, z);
        cost = model.evaluate(z);

        if (!have_solution || cost < solution.best_cost) {
            solution.best_cost = cost;
            solution.best_assignment = z;
            have_solution = true;
        }
        ++solution.restarts_used;
    }
    return solution;
}

double
greedy_descent(const IsingModel& model, SpinVector& start)
{
    FQ_REQUIRE(static_cast<int>(start.size()) == model.num_spins(),
               "assignment size mismatch");
    double cost = model.evaluate(start);
    bool improved = true;
    while (improved) {
        improved = false;
        for (int k = 0; k < model.num_spins(); ++k) {
            const double delta = model.flip_delta(start, k);
            if (delta < -1e-12) {
                start[k] = static_cast<std::int8_t>(-start[k]);
                cost += delta;
                improved = true;
            }
        }
    }
    return cost;
}

} // namespace fq::ising
