/**
 * @file
 * Ising Hamiltonian representation (Equation (1) of the paper):
 *
 *   H_Z := C(z) = sum_i h_i z_i + sum_{i<j} J_ij z_i z_j + offset,
 *   z_i in {-1, +1}.
 *
 * Quadratic terms are stored both as a flat list (stable order, fast
 * iteration) and as an adjacency index (O(deg) neighborhood queries, needed
 * by the freeze transform and the Gray-code enumerator). Coefficients on the
 * same (i, j) pair accumulate, matching the J_ij + J_ji convention of
 * Table 2.
 */
#ifndef FQ_ISING_ISING_MODEL_H
#define FQ_ISING_ISING_MODEL_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace fq::ising {

/** Spin assignment; entries are -1 or +1. */
using SpinVector = std::vector<std::int8_t>;

/** One quadratic coupling J_ij with i < j normalized. */
struct QuadraticTerm
{
    int i = 0;
    int j = 0;
    double coefficient = 0.0;
};

/** Ising Hamiltonian over N spins. */
class IsingModel
{
  public:
    IsingModel() = default;
    explicit IsingModel(int num_spins);

    int num_spins() const { return static_cast<int>(linear_.size()); }
    int num_quadratic_terms() const
    {
        return static_cast<int>(quadratic_.size());
    }

    /** Linear coefficient h_i. */
    double linear(int i) const;

    /** Add @p delta to h_i. */
    void add_linear(int i, double delta);

    /** Overwrite h_i. */
    void set_linear(int i, double value);

    /** All linear coefficients. */
    const std::vector<double>& linear_terms() const { return linear_; }

    /**
     * Add @p coefficient to J_ij (i != j). Coefficients accumulate; a term
     * whose accumulated coefficient becomes exactly zero is retained (it
     * still shapes the QAOA circuit unless explicitly pruned).
     */
    void add_quadratic(int i, int j, double coefficient);

    /** Coupling J_ij; zero when no such term exists. */
    double quadratic(int i, int j) const;

    /** All quadratic terms with i < j, insertion order. */
    const std::vector<QuadraticTerm>& quadratic_terms() const
    {
        return quadratic_;
    }

    /** Spins coupled to @p i, as (j, J_ij) pairs. */
    const std::vector<std::pair<int, double>>& couplings_of(int i) const;

    double offset() const { return offset_; }
    void set_offset(double v) { offset_ = v; }
    void add_offset(double v) { offset_ += v; }

    /** True when every linear coefficient is exactly zero (Section 3.7.2). */
    bool has_zero_linear_terms() const;

    /** Drop quadratic terms with |J| <= @p epsilon (normalization pass). */
    void prune_zero_terms(double epsilon = 0.0);

    /** Evaluate C(z); @p z must have num_spins() entries of value +-1. */
    double evaluate(const SpinVector& z) const;

    /** Evaluate C at the basis state encoded in @p state (bit=1 -> -1). */
    double evaluate_state(std::uint64_t state) const;

    /**
     * Cost change from flipping spin @p k in assignment @p z:
     * C(z with z_k flipped) - C(z) = -2 z_k (h_k + sum_j J_kj z_j).
     */
    double flip_delta(const SpinVector& z, int k) const;

    /**
     * Problem graph: one node per spin, one edge per quadratic term with the
     * coupling as weight (the representation Figures 1(c)/5 use).
     */
    graph::Graph to_graph() const;

    /** Build a model from a weighted graph: J_ij = w_ij, h = 0, offset 0. */
    static IsingModel from_graph(const graph::Graph& g);

    /** Sum over |J| + |h| (used for normalization and SA temperature). */
    double coefficient_magnitude_sum() const;

    /** One-line description. */
    std::string summary() const;

  private:
    void check_spin(int i) const;

    std::vector<double> linear_;
    std::vector<QuadraticTerm> quadratic_;
    std::vector<std::vector<std::pair<int, double>>> adjacency_;
    double offset_ = 0.0;
};

/** Encode a spin vector into a basis-state index (little-endian). */
std::uint64_t spins_to_state(const SpinVector& z);

/** Decode a basis-state index into a spin vector over @p n spins. */
SpinVector state_to_spins(std::uint64_t state, int n);

/** Flip every spin (the Section 3.7.2 symmetry map z -> -z). */
SpinVector flip_all(const SpinVector& z);

} // namespace fq::ising

#endif // FQ_ISING_ISING_MODEL_H
