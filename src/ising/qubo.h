/**
 * @file
 * QUBO (quadratic unconstrained binary optimization) front end.
 *
 * Most applications in the paper's Table 1 (vehicle routing, portfolio
 * selection, scheduling) are naturally expressed over binary variables
 * x_i in {0, 1}:
 *
 *   minimize  sum_i a_i x_i + sum_{i<j} b_ij x_i x_j + constant.
 *
 * The standard substitution x_i = (1 - z_i) / 2 converts a QUBO to the
 * Ising form of Equation (1), which is what the QAOA/FrozenQubits stack
 * consumes. The conversion is exact and invertible.
 */
#ifndef FQ_ISING_QUBO_H
#define FQ_ISING_QUBO_H

#include <cstdint>
#include <vector>

#include "ising/ising_model.h"

namespace fq::ising {

/** Binary assignment; entries are 0 or 1. */
using BinaryVector = std::vector<std::uint8_t>;

/** QUBO problem over binary variables. */
class QuboModel
{
  public:
    QuboModel() = default;
    explicit QuboModel(int num_variables);

    int num_variables() const { return static_cast<int>(linear_.size()); }

    /** Add @p delta to the linear coefficient a_i. */
    void add_linear(int i, double delta);
    double linear(int i) const;

    /** Add @p delta to the quadratic coefficient b_ij (i != j). */
    void add_quadratic(int i, int j, double delta);

    const std::vector<QuadraticTerm>& quadratic_terms() const
    {
        return quadratic_;
    }

    void add_constant(double delta) { constant_ += delta; }
    double constant() const { return constant_; }

    /** Objective value at @p x. */
    double evaluate(const BinaryVector& x) const;

    /** Exact Ising equivalent via x = (1 - z)/2. */
    IsingModel to_ising() const;

    /** Inverse conversion (z = 1 - 2x). */
    static QuboModel from_ising(const IsingModel& ising);

  private:
    std::vector<double> linear_;
    std::vector<QuadraticTerm> quadratic_;
    double constant_ = 0.0;
};

/** Map spins to binaries: z=+1 -> x=0, z=-1 -> x=1. */
BinaryVector spins_to_binary(const SpinVector& z);

/** Map binaries to spins: x=0 -> z=+1, x=1 -> z=-1. */
SpinVector binary_to_spins(const BinaryVector& x);

} // namespace fq::ising

#endif // FQ_ISING_QUBO_H
