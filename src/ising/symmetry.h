/**
 * @file
 * Spin-flip symmetry analysis (Section 3.7.2).
 *
 * For a Hamiltonian with all-zero linear coefficients, C(z) = C(-z): every
 * quadratic term z_i z_j is invariant under a global flip. FrozenQubits
 * exploits this to skip half of the 2^m sub-problems. These helpers verify
 * and apply the symmetry.
 */
#ifndef FQ_ISING_SYMMETRY_H
#define FQ_ISING_SYMMETRY_H

#include "ising/ising_model.h"

namespace fq::ising {

/**
 * True when the model is provably global-flip symmetric, i.e. all linear
 * coefficients are zero (the offset never breaks the symmetry).
 */
bool is_flip_symmetric(const IsingModel& model);

/**
 * Exhaustively verify C(z) == C(-z) for every assignment. O(2^N); intended
 * for tests (N <= ~20).
 */
bool verify_flip_symmetry_exhaustive(const IsingModel& model,
                                     double tolerance = 1e-9);

/**
 * Mirror model M' with M'(z) = M(-z): negates every linear coefficient,
 * keeps quadratic terms and the offset. Used to relate the +1/-1 freeze
 * sub-problems of a symmetric parent.
 */
IsingModel mirror_model(const IsingModel& model);

} // namespace fq::ising

#endif // FQ_ISING_SYMMETRY_H
