#include "ising/io.h"

#include <sstream>

#include "common/error.h"

namespace fq::ising {

void
write_model(std::ostream& os, const IsingModel& model)
{
    os << "ising " << model.num_spins() << "\n";
    if (model.offset() != 0.0)
        os << "offset " << model.offset() << "\n";
    for (int i = 0; i < model.num_spins(); ++i)
        if (model.linear(i) != 0.0)
            os << "h " << i << " " << model.linear(i) << "\n";
    for (const auto& term : model.quadratic_terms())
        os << "J " << term.i << " " << term.j << " " << term.coefficient
           << "\n";
}

std::string
to_text(const IsingModel& model)
{
    std::ostringstream os;
    write_model(os, model);
    return os.str();
}

IsingModel
read_model(std::istream& is)
{
    IsingModel model;
    bool have_header = false;
    std::string line;
    int line_number = 0;
    while (std::getline(is, line)) {
        ++line_number;
        // Strip comments.
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream tokens(line);
        std::string keyword;
        if (!(tokens >> keyword))
            continue; // blank line

        const auto context = " at line " + std::to_string(line_number);
        if (keyword == "ising") {
            FQ_REQUIRE(!have_header, "duplicate header" + context);
            int n = -1;
            FQ_REQUIRE(static_cast<bool>(tokens >> n) && n >= 1,
                       "malformed header" + context);
            model = IsingModel(n);
            have_header = true;
        } else if (keyword == "offset") {
            FQ_REQUIRE(have_header, "offset before header" + context);
            double v;
            FQ_REQUIRE(static_cast<bool>(tokens >> v),
                       "malformed offset" + context);
            model.set_offset(v);
        } else if (keyword == "h") {
            FQ_REQUIRE(have_header, "h before header" + context);
            int i;
            double v;
            FQ_REQUIRE(static_cast<bool>(tokens >> i >> v),
                       "malformed linear term" + context);
            model.add_linear(i, v);
        } else if (keyword == "J") {
            FQ_REQUIRE(have_header, "J before header" + context);
            int i, j;
            double v;
            FQ_REQUIRE(static_cast<bool>(tokens >> i >> j >> v),
                       "malformed quadratic term" + context);
            model.add_quadratic(i, j, v);
        } else {
            FQ_REQUIRE(false, "unknown keyword '" + keyword + "'" + context);
        }
    }
    FQ_REQUIRE(have_header, "missing 'ising <n>' header");
    return model;
}

IsingModel
parse_model(const std::string& text)
{
    std::istringstream is(text);
    return read_model(is);
}

} // namespace fq::ising
