#include "device/calibration.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace fq::device {

std::uint64_t
Calibration::key(int a, int b)
{
    if (a > b)
        std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) |
           static_cast<std::uint32_t>(b);
}

Calibration
Calibration::synthesize(const Topology& topology,
                        const CalibrationProfile& profile, std::uint64_t seed)
{
    Calibration cal;
    cal.durations_ = profile.durations;
    cal.crosstalk_kappa_ = profile.crosstalk_kappa;
    Rng rng(seed);

    // Lognormal draws keep every rate positive while producing the heavy
    // tail real calibration data shows (a few notably bad qubits/links).
    auto lognormal = [&rng](double mean, double sigma) {
        const double mu = std::log(mean) - 0.5 * sigma * sigma;
        return std::exp(mu + sigma * rng.normal());
    };

    cal.qubits_.resize(topology.num_qubits());
    for (auto& q : cal.qubits_) {
        q.t1_us = lognormal(profile.t1_mean_us, 0.25);
        q.t2_us = std::min(lognormal(profile.t2_mean_us, 0.30), 2.0 * q.t1_us);
        q.readout_error =
            std::min(0.5, lognormal(profile.readout_error_mean, 0.40));
        q.sq_error = std::min(0.1, lognormal(profile.sq_error_mean, 0.35));
    }
    for (const auto& e : topology.coupling_graph().edges()) {
        cal.cx_error_[key(e.u, e.v)] = std::min(
            0.5, lognormal(profile.cx_error_mean, profile.cx_error_spread));
    }
    return cal;
}

Calibration
Calibration::uniform(const Topology& topology, double cx_error,
                     double readout_error, double t_decoherence_us,
                     circuit::GateDurations durations)
{
    Calibration cal;
    cal.durations_ = durations;
    QubitProperties q;
    q.t1_us = t_decoherence_us;
    q.t2_us = t_decoherence_us;
    q.readout_error = readout_error;
    q.sq_error = cx_error / 10.0;
    cal.qubits_.assign(topology.num_qubits(), q);
    for (const auto& e : topology.coupling_graph().edges())
        cal.cx_error_[key(e.u, e.v)] = cx_error;
    return cal;
}

const QubitProperties&
Calibration::qubit(int q) const
{
    FQ_REQUIRE(q >= 0 && q < num_qubits(), "qubit index out of range");
    return qubits_[q];
}

double
Calibration::cx_error(int a, int b) const
{
    const auto it = cx_error_.find(key(a, b));
    FQ_REQUIRE(it != cx_error_.end(),
               "cx_error queried for an uncoupled qubit pair");
    return it->second;
}

std::vector<std::pair<int, int>>
Calibration::couplings() const
{
    std::vector<std::pair<int, int>> out;
    out.reserve(cx_error_.size());
    for (const auto& [key, _] : cx_error_) {
        out.emplace_back(static_cast<int>(key >> 32),
                         static_cast<int>(key & 0xffffffffull));
    }
    return out;
}

double
Calibration::average_cx_error() const
{
    if (cx_error_.empty())
        return 0.0;
    double s = 0.0;
    for (const auto& [_, e] : cx_error_)
        s += e;
    return s / static_cast<double>(cx_error_.size());
}

double
Calibration::average_readout_error() const
{
    if (qubits_.empty())
        return 0.0;
    double s = 0.0;
    for (const auto& q : qubits_)
        s += q.readout_error;
    return s / static_cast<double>(qubits_.size());
}

} // namespace fq::device
