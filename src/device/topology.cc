#include "device/topology.h"

#include <deque>
#include <limits>

#include "common/error.h"

namespace fq::device {

namespace {

constexpr std::uint16_t kUnreached = std::numeric_limits<std::uint16_t>::max();

} // namespace

Topology::Topology(std::string name, graph::Graph coupling)
    : name_(std::move(name)), coupling_(std::move(coupling))
{
    distance_rows_.resize(coupling_.num_nodes());
}

bool
Topology::are_coupled(int a, int b) const
{
    return coupling_.has_edge(a, b);
}

std::vector<int>
Topology::neighbors(int q) const
{
    std::vector<int> out;
    out.reserve(coupling_.neighbors(q).size());
    for (const auto& [v, _] : coupling_.neighbors(q))
        out.push_back(v);
    return out;
}

void
Topology::ensure_row(int source) const
{
    auto& row = distance_rows_[source];
    if (!row.empty())
        return;
    row.assign(coupling_.num_nodes(), kUnreached);
    row[source] = 0;
    std::deque<int> frontier{source};
    while (!frontier.empty()) {
        const int u = frontier.front();
        frontier.pop_front();
        for (const auto& [v, _] : coupling_.neighbors(u)) {
            if (row[v] == kUnreached) {
                row[v] = static_cast<std::uint16_t>(row[u] + 1);
                frontier.push_back(v);
            }
        }
    }
}

int
Topology::distance(int a, int b) const
{
    FQ_REQUIRE(a >= 0 && a < num_qubits() && b >= 0 && b < num_qubits(),
               "qubit index out of range");
    ensure_row(a);
    const std::uint16_t d = distance_rows_[a][b];
    return d == kUnreached ? std::numeric_limits<int>::max() / 2 : d;
}

Topology
make_grid(int rows, int cols)
{
    FQ_REQUIRE(rows >= 1 && cols >= 1, "grid dimensions must be positive");
    graph::Graph g(rows * cols);
    auto id = [cols](int r, int c) { return r * cols + c; };
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            if (c + 1 < cols)
                g.add_edge(id(r, c), id(r, c + 1));
            if (r + 1 < rows)
                g.add_edge(id(r, c), id(r + 1, c));
        }
    }
    return Topology("grid-" + std::to_string(rows) + "x" +
                        std::to_string(cols),
                    std::move(g));
}

Topology
make_linear(int n)
{
    FQ_REQUIRE(n >= 1, "linear topology needs at least one qubit");
    graph::Graph g(n);
    for (int q = 1; q < n; ++q)
        g.add_edge(q - 1, q);
    return Topology("linear-" + std::to_string(n), std::move(g));
}

Topology
make_all_to_all(int n)
{
    FQ_REQUIRE(n >= 1, "topology needs at least one qubit");
    graph::Graph g(n);
    for (int a = 0; a < n; ++a)
        for (int b = a + 1; b < n; ++b)
            g.add_edge(a, b);
    return Topology("all-to-all-" + std::to_string(n), std::move(g));
}

Topology
make_falcon_27(const std::string& name)
{
    // The published 27-qubit Falcon r4 lattice (ibmq_montreal and siblings).
    static constexpr int kEdges[][2] = {
        {0, 1},   {1, 2},   {1, 4},   {2, 3},   {3, 5},   {4, 7},
        {5, 8},   {6, 7},   {7, 10},  {8, 9},   {8, 11},  {10, 12},
        {11, 14}, {12, 13}, {12, 15}, {13, 14}, {14, 16}, {15, 18},
        {16, 19}, {17, 18}, {18, 21}, {19, 20}, {19, 22}, {21, 23},
        {22, 25}, {23, 24}, {24, 25}, {25, 26},
    };
    graph::Graph g(27);
    for (const auto& e : kEdges)
        g.add_edge(e[0], e[1]);
    return Topology(name, std::move(g));
}

Topology
make_heavy_hex(int rows, int row_len, const std::string& name)
{
    FQ_REQUIRE(rows >= 2, "heavy-hex needs at least two rows");
    FQ_REQUIRE(row_len >= 5, "heavy-hex rows must have at least 5 columns");

    graph::Graph g;
    // qubit_at[r][c] = physical index of the row-r qubit in column c (-1 if
    // the column is truncated away on the first/last row); bridge_at[r][c]
    // = index of the bridge qubit below row r in column c. Ids are assigned
    // in reading order: each row's qubits, then its bridges.
    std::vector<std::vector<int>> qubit_at(rows,
                                           std::vector<int>(row_len, -1));
    std::vector<std::vector<int>> bridge_at(rows,
                                            std::vector<int>(row_len, -1));
    int next = 0;
    for (int r = 0; r < rows; ++r) {
        const int c_begin = (r == rows - 1) ? 1 : 0;
        const int c_end = (r == 0) ? row_len - 1 : row_len;
        for (int c = c_begin; c < c_end; ++c)
            qubit_at[r][c] = next++;
        // Bridges between row r and r+1, alternating column offsets 0 / 2.
        if (r + 1 < rows) {
            const int offset = (r % 2 == 0) ? 0 : 2;
            for (int c = offset; c < row_len; c += 4)
                bridge_at[r][c] = next++;
        }
    }
    g.ensure_nodes(next);

    for (int r = 0; r < rows; ++r) {
        // Intra-row chain.
        for (int c = 1; c < row_len; ++c)
            if (qubit_at[r][c - 1] != -1 && qubit_at[r][c] != -1)
                g.add_edge(qubit_at[r][c - 1], qubit_at[r][c]);
        // Bridge columns connect this row to the next.
        if (r + 1 < rows) {
            for (int c = 0; c < row_len; ++c) {
                const int b = bridge_at[r][c];
                if (b == -1)
                    continue;
                if (qubit_at[r][c] != -1)
                    g.add_edge(qubit_at[r][c], b);
                if (qubit_at[r + 1][c] != -1)
                    g.add_edge(b, qubit_at[r + 1][c]);
            }
        }
    }
    return Topology(name, std::move(g));
}

} // namespace fq::device
