/**
 * @file
 * Device topology: the qubit coupling map plus all-pairs shortest-path
 * distances (computed lazily by per-source BFS and cached). NISQ devices
 * only execute CNOTs between coupled qubits; the router consults distances
 * to pick SWAPs (Section 2.2).
 *
 * Constructors cover the topology families used in the paper: the IBM
 * heavy-hex family (27q Falcon exact map; a parameterized row/bridge
 * constructor for the 65q and 127q classes), 2-D grids (Figure 3 and the
 * Section 6 50x50 practical-scale study), and linear chains.
 */
#ifndef FQ_DEVICE_TOPOLOGY_H
#define FQ_DEVICE_TOPOLOGY_H

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace fq::device {

/** Immutable coupling map with cached BFS distances. */
class Topology
{
  public:
    Topology() = default;

    /** Wrap a coupling graph; @p name is used in reports. */
    Topology(std::string name, graph::Graph coupling);

    const std::string& name() const { return name_; }
    int num_qubits() const { return coupling_.num_nodes(); }
    int num_couplings() const { return coupling_.num_edges(); }
    const graph::Graph& coupling_graph() const { return coupling_; }

    /** True when a CX can execute directly between @p a and @p b. */
    bool are_coupled(int a, int b) const;

    /** Physical neighbors of qubit @p q. */
    std::vector<int> neighbors(int q) const;

    /** Hop distance between qubits; INT_MAX/2 when disconnected. */
    int distance(int a, int b) const;

    /** Degree of physical qubit @p q. */
    int degree(int q) const { return coupling_.degree(q); }

    /** Physical qubits sorted by descending connectivity. */
    std::vector<int> qubits_by_degree_desc() const
    {
        return coupling_.nodes_by_degree_desc();
    }

  private:
    void ensure_row(int source) const;

    std::string name_;
    graph::Graph coupling_;
    // Lazy per-source BFS rows; ~N^2 bytes worst case (uint16 hops).
    mutable std::vector<std::vector<std::uint16_t>> distance_rows_;
};

/** k x l grid (nearest-neighbor couplings). */
Topology make_grid(int rows, int cols);

/** Linear chain of n qubits. */
Topology make_linear(int n);

/** Fully connected coupling (idealized; routing becomes a no-op). */
Topology make_all_to_all(int n);

/** The exact 27-qubit IBM Falcon coupling map (Montreal et al.). */
Topology make_falcon_27(const std::string& name = "falcon-27");

/**
 * Parameterized heavy-hex lattice: @p rows long rows of @p row_len qubits
 * each, consecutive rows joined through bridge qubits every 4 columns with
 * the column offset alternating 0/2; the first row drops its last column and
 * the last row its first (IBM Eagle convention). rows=7, row_len=15 yields
 * the 127-qubit Eagle count; rows=5, row_len=11 yields the 65-qubit
 * Hummingbird count.
 */
Topology make_heavy_hex(int rows, int row_len, const std::string& name);

} // namespace fq::device

#endif // FQ_DEVICE_TOPOLOGY_H
