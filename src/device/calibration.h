/**
 * @file
 * Device calibration data: per-qubit coherence/readout properties and
 * per-coupling CX error rates, plus a synthesizer that generates realistic
 * calibration from per-device summary statistics.
 *
 * Substitution note (see DESIGN.md): the paper queried live IBMQ calibration;
 * we synthesize per-device calibration from published error magnitudes
 * (CX ~1e-2, readout ~1e-2..1e-1, T1/T2 ~100us, CX 400ns / 1q 35ns latency)
 * with a per-device seeded RNG, so every "machine" has stable, distinct
 * qubit quality variation — the property noise-adaptive layout exploits.
 */
#ifndef FQ_DEVICE_CALIBRATION_H
#define FQ_DEVICE_CALIBRATION_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "circuit/metrics.h"
#include "common/rng.h"
#include "device/topology.h"

namespace fq::device {

/** Per-qubit coherence and measurement properties. */
struct QubitProperties
{
    double t1_us = 100.0;
    double t2_us = 100.0;
    double readout_error = 0.02;
    double sq_error = 3e-4;
};

/** Summary statistics from which a device's calibration is synthesized. */
struct CalibrationProfile
{
    double cx_error_mean = 1.0e-2;
    double cx_error_spread = 0.35;  ///< lognormal sigma
    double sq_error_mean = 3.0e-4;
    double readout_error_mean = 2.5e-2;
    double t1_mean_us = 110.0;
    double t2_mean_us = 95.0;
    /** Crosstalk coefficient: effective CX error scales as
     *  eps * (1 + kappa * (average simultaneous CX count - 1)). Real
     *  devices show strongly correlated errors when neighboring couplers
     *  fire together (Murali et al. ASPLOS'20; Xie et al. ASPLOS'22);
     *  kappa = 0 recovers the independent-error model. */
    double crosstalk_kappa = 2.0;
    circuit::GateDurations durations{};
};

/** Full calibration snapshot for one device. */
class Calibration
{
  public:
    Calibration() = default;

    /** Synthesize calibration for @p topology from @p profile. */
    static Calibration synthesize(const Topology& topology,
                                  const CalibrationProfile& profile,
                                  std::uint64_t seed);

    /** Uniform calibration (every qubit/link identical) — the Section 6.3
     *  "optimistic error model": useful for grid-scale studies. */
    static Calibration uniform(const Topology& topology,
                               double cx_error, double readout_error,
                               double t_decoherence_us,
                               circuit::GateDurations durations = {});

    const QubitProperties& qubit(int q) const;
    int num_qubits() const { return static_cast<int>(qubits_.size()); }

    /** CX error rate on coupling (a,b); requires the pair to be coupled. */
    double cx_error(int a, int b) const;

    /** All calibrated couplings as normalized (low, high) pairs. */
    std::vector<std::pair<int, int>> couplings() const;

    const circuit::GateDurations& durations() const { return durations_; }

    /** Crosstalk coefficient (see CalibrationProfile::crosstalk_kappa). */
    double crosstalk_kappa() const { return crosstalk_kappa_; }
    void set_crosstalk_kappa(double kappa) { crosstalk_kappa_ = kappa; }

    /** Mean CX error over all couplings. */
    double average_cx_error() const;

    /** Mean readout error over all qubits. */
    double average_readout_error() const;

  private:
    static std::uint64_t key(int a, int b);

    std::vector<QubitProperties> qubits_;
    std::unordered_map<std::uint64_t, double> cx_error_;
    circuit::GateDurations durations_{};
    double crosstalk_kappa_ = 0.0;
};

} // namespace fq::device

#endif // FQ_DEVICE_CALIBRATION_H
