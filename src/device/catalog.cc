#include "device/catalog.h"

#include "common/error.h"
#include "common/rng.h"

namespace fq::device {

namespace {

/** Catalog entry: device class + per-device error magnitudes. */
struct CatalogEntry
{
    const char* name;
    enum class Family { Falcon27, Hummingbird65, Eagle127 } family;
    double cx_error_mean;
    double readout_error_mean;
    double t1_mean_us;
};

// Error magnitudes loosely follow the relative quality of these systems in
// the paper's era: Montreal/Hanoi among the better Falcons, Washington the
// larger but noisier Eagle, Brooklyn the noisier Hummingbird.
constexpr CatalogEntry kCatalog[] = {
    {"ibm-washington", CatalogEntry::Family::Eagle127, 1.30e-2, 3.2e-2, 95.0},
    {"ibm-brooklyn", CatalogEntry::Family::Hummingbird65, 1.45e-2, 3.5e-2,
     80.0},
    {"ibm-montreal", CatalogEntry::Family::Falcon27, 0.85e-2, 2.2e-2, 120.0},
    {"ibm-auckland", CatalogEntry::Family::Falcon27, 0.90e-2, 2.0e-2, 140.0},
    {"ibm-toronto", CatalogEntry::Family::Falcon27, 1.25e-2, 3.0e-2, 100.0},
    {"ibm-mumbai", CatalogEntry::Family::Falcon27, 1.05e-2, 2.6e-2, 110.0},
    {"ibm-hanoi", CatalogEntry::Family::Falcon27, 0.80e-2, 1.8e-2, 130.0},
    {"ibm-cairo", CatalogEntry::Family::Falcon27, 0.95e-2, 2.4e-2, 115.0},
};

Topology
make_family_topology(CatalogEntry::Family family, const std::string& name)
{
    switch (family) {
      case CatalogEntry::Family::Falcon27:
        return make_falcon_27(name);
      case CatalogEntry::Family::Hummingbird65:
        return make_heavy_hex(5, 11, name); // 65 qubits
      case CatalogEntry::Family::Eagle127:
        return make_heavy_hex(7, 15, name); // 127 qubits
    }
    FQ_REQUIRE(false, "unknown device family");
    return Topology(); // unreachable
}

} // namespace

Device
make_device(const std::string& name)
{
    for (const auto& entry : kCatalog) {
        if (name == entry.name) {
            Device dev;
            dev.name = name;
            dev.topology = make_family_topology(entry.family, name);

            CalibrationProfile profile;
            profile.cx_error_mean = entry.cx_error_mean;
            profile.readout_error_mean = entry.readout_error_mean;
            profile.t1_mean_us = entry.t1_mean_us;
            profile.t2_mean_us = 0.85 * entry.t1_mean_us;
            dev.calibration = Calibration::synthesize(
                dev.topology, profile, hash_seed(name));
            return dev;
        }
    }
    FQ_REQUIRE(false, "unknown device: " + name);
    return Device(); // unreachable
}

std::vector<std::string>
ibm_device_names()
{
    std::vector<std::string> names;
    for (const auto& entry : kCatalog)
        names.emplace_back(entry.name);
    return names;
}

std::vector<Device>
all_ibm_devices()
{
    std::vector<Device> devices;
    for (const auto& name : ibm_device_names())
        devices.push_back(make_device(name));
    return devices;
}

Device
make_grid_device(int rows, int cols)
{
    Device dev;
    dev.topology = make_grid(rows, cols);
    dev.name = dev.topology.name();
    // Section 6.3 optimistic model: 0.1% CX, 0.5% readout, 500 us coherence.
    dev.calibration =
        Calibration::uniform(dev.topology, 1.0e-3, 5.0e-3, 500.0);
    return dev;
}

} // namespace fq::device
