/**
 * @file
 * Device catalog: the eight IBMQ systems the paper evaluates on
 * (Section 4.2 — Washington, Brooklyn, Montreal, Auckland, Toronto, Mumbai,
 * Hanoi, Cairo) plus the 50x50 grid device of the Section 6 practical-scale
 * study. Topologies follow the IBM heavy-hex family; calibration is
 * synthesized per device (see calibration.h for the substitution note).
 */
#ifndef FQ_DEVICE_CATALOG_H
#define FQ_DEVICE_CATALOG_H

#include <string>
#include <vector>

#include "device/calibration.h"
#include "device/topology.h"

namespace fq::device {

/** A named device: topology + calibration snapshot. */
struct Device
{
    std::string name;
    Topology topology;
    Calibration calibration;

    int num_qubits() const { return topology.num_qubits(); }
};

/** Build one of the catalog devices by name (case-sensitive). */
Device make_device(const std::string& name);

/** Names of the eight IBMQ systems used in the paper, evaluation order. */
std::vector<std::string> ibm_device_names();

/** All eight IBMQ devices. */
std::vector<Device> all_ibm_devices();

/**
 * k x k grid device with the Section 6.3 optimistic uniform error model:
 * 0.1% CX error, 0.5% readout error, 500 us decoherence.
 */
Device make_grid_device(int rows, int cols);

} // namespace fq::device

#endif // FQ_DEVICE_CATALOG_H
