/**
 * @file
 * Circuit metrics: gate counts, circuit depth (ASAP leveling), and wall-time
 * duration under a gate-latency model. These are the paper's figures of
 * merit for circuit quality (Figures 7, 14, 15) and the decoherence input
 * to the EPS model (Figure 16).
 */
#ifndef FQ_CIRCUIT_METRICS_H
#define FQ_CIRCUIT_METRICS_H

#include <vector>

#include "circuit/circuit.h"

namespace fq::circuit {

/** Per-gate-class latencies in nanoseconds (IBM-like defaults, Section 1). */
struct GateDurations
{
    double single_qubit_ns = 35.0;
    double cx_ns = 400.0;
    double measure_ns = 700.0;

    double duration_of(GateType t) const;
};

/** Aggregate structural metrics for a circuit. */
struct CircuitMetrics
{
    int num_qubits = 0;
    int total_gates = 0;
    int cx_gates = 0;     ///< CX count with SWAPs decomposed (3 CX each)
    int swap_gates = 0;   ///< router-inserted SWAPs (before decomposition)
    int single_qubit_gates = 0;
    int rz_gates = 0;     ///< error-free software gates
    int measurements = 0;
    int depth = 0;        ///< ASAP level count (SWAP counted as 3 levels)
    double duration_ns = 0.0; ///< critical-path latency
};

/** Compute all metrics for @p c under @p durations. */
CircuitMetrics compute_metrics(const Circuit& c,
                               const GateDurations& durations = {});

/**
 * Circuit depth alone: the length of the longest qubit-dependency chain.
 * SWAPs count as 3 levels (their CX decomposition); RZ gates count as 0
 * levels when @p free_rz is set (they are "software" gates per Section 3.3,
 * folded into subsequent pulses on IBM hardware).
 */
int circuit_depth(const Circuit& c, bool free_rz = false);

/** Critical-path duration in ns under @p durations (RZ contributes 0). */
double circuit_duration_ns(const Circuit& c,
                           const GateDurations& durations = {});

/**
 * Two-qubit-only depth: the critical path counting just CX (1 level) and
 * SWAP (3 levels). cx_count / cx_depth estimates the average number of
 * simultaneously executing CXs — the crosstalk-exposure density used by
 * the noise model.
 */
int cx_depth(const Circuit& c);

} // namespace fq::circuit

#endif // FQ_CIRCUIT_METRICS_H
