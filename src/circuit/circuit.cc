#include "circuit/circuit.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace fq::circuit {

const char*
gate_name(GateType t)
{
    switch (t) {
      case GateType::H: return "h";
      case GateType::X: return "x";
      case GateType::SX: return "sx";
      case GateType::RZ: return "rz";
      case GateType::RX: return "rx";
      case GateType::RY: return "ry";
      case GateType::CX: return "cx";
      case GateType::SWAP: return "swap";
      case GateType::MEASURE: return "measure";
      case GateType::BARRIER: return "barrier";
    }
    return "?";
}

double
Parameter::resolve(const std::vector<double>& gammas,
                   const std::vector<double>& betas) const
{
    switch (kind) {
      case Kind::Constant:
        return coefficient;
      case Kind::Gamma:
        FQ_REQUIRE(layer >= 0 && layer < static_cast<int>(gammas.size()),
                   "gamma layer index out of range");
        return coefficient * gammas[layer];
      case Kind::Beta:
        FQ_REQUIRE(layer >= 0 && layer < static_cast<int>(betas.size()),
                   "beta layer index out of range");
        return coefficient * betas[layer];
    }
    return 0.0;
}

Circuit::Circuit(int num_qubits) : num_qubits_(num_qubits)
{
    FQ_REQUIRE(num_qubits >= 0, "negative qubit count");
}

void
Circuit::check_qubit(int q) const
{
    FQ_REQUIRE(q >= 0 && q < num_qubits_, "qubit index out of range");
}

void
Circuit::append(const Gate& gate)
{
    if (gate.type != GateType::BARRIER) {
        check_qubit(gate.q0);
        if (is_two_qubit(gate.type)) {
            check_qubit(gate.q1);
            FQ_REQUIRE(gate.q0 != gate.q1,
                       "two-qubit gate needs distinct qubits");
        }
    }
    gates_.push_back(gate);
}

void Circuit::h(int q) { append(Gate::one_qubit(GateType::H, q)); }
void Circuit::x(int q) { append(Gate::one_qubit(GateType::X, q)); }
void Circuit::sx(int q) { append(Gate::one_qubit(GateType::SX, q)); }

void
Circuit::rz(int q, Parameter angle)
{
    append(Gate::rotation(GateType::RZ, q, angle));
}

void Circuit::rz(int q, double angle) { rz(q, Parameter::constant(angle)); }

void
Circuit::rx(int q, Parameter angle)
{
    append(Gate::rotation(GateType::RX, q, angle));
}

void Circuit::rx(int q, double angle) { rx(q, Parameter::constant(angle)); }

void
Circuit::ry(int q, Parameter angle)
{
    append(Gate::rotation(GateType::RY, q, angle));
}

void
Circuit::cx(int control, int target)
{
    append(Gate::two_qubit(GateType::CX, control, target));
}

void
Circuit::swap(int a, int b)
{
    append(Gate::two_qubit(GateType::SWAP, a, b));
}

void Circuit::measure(int q) { append(Gate::one_qubit(GateType::MEASURE, q)); }

void
Circuit::measure_all()
{
    for (int q = 0; q < num_qubits_; ++q)
        measure(q);
}

void
Circuit::barrier()
{
    Gate g;
    g.type = GateType::BARRIER;
    g.q0 = 0;
    gates_.push_back(g);
}

void
Circuit::extend(const Circuit& other)
{
    FQ_REQUIRE(other.num_qubits() == num_qubits_,
               "extend requires matching qubit counts");
    for (const Gate& g : other.gates())
        gates_.push_back(g);
}

bool
Circuit::is_parametric() const
{
    return std::any_of(gates_.begin(), gates_.end(), [](const Gate& g) {
        return has_angle(g.type) && !g.angle.is_constant();
    });
}

int
Circuit::num_layers() const
{
    int layers = 0;
    for (const Gate& g : gates_)
        if (has_angle(g.type) && !g.angle.is_constant())
            layers = std::max(layers, g.angle.layer + 1);
    return layers;
}

Circuit
Circuit::bind(const std::vector<double>& gammas,
              const std::vector<double>& betas) const
{
    Circuit out(num_qubits_);
    out.gates_.reserve(gates_.size());
    for (Gate g : gates_) {
        if (has_angle(g.type) && !g.angle.is_constant())
            g.angle = Parameter::constant(g.angle.resolve(gammas, betas));
        out.gates_.push_back(g);
    }
    return out;
}

Circuit
Circuit::remap_qubits(const std::vector<int>& mapping,
                      int new_num_qubits) const
{
    FQ_REQUIRE(static_cast<int>(mapping.size()) == num_qubits_,
               "mapping size must equal qubit count");
    Circuit out(new_num_qubits);
    out.gates_.reserve(gates_.size());
    for (Gate g : gates_) {
        if (g.type != GateType::BARRIER) {
            g.q0 = mapping[g.q0];
            if (is_two_qubit(g.type))
                g.q1 = mapping[g.q1];
        }
        out.append(g);
    }
    return out;
}

int
Circuit::count(GateType t) const
{
    return static_cast<int>(
        std::count_if(gates_.begin(), gates_.end(),
                      [t](const Gate& g) { return g.type == t; }));
}

int
Circuit::cx_count() const
{
    return count(GateType::CX) + 3 * count(GateType::SWAP);
}

Circuit
Circuit::decompose_swaps() const
{
    Circuit out(num_qubits_);
    for (const Gate& g : gates_) {
        if (g.type == GateType::SWAP) {
            out.cx(g.q0, g.q1);
            out.cx(g.q1, g.q0);
            out.cx(g.q0, g.q1);
        } else {
            out.gates_.push_back(g);
        }
    }
    return out;
}

Circuit
Circuit::drop_trivial_rotations(double epsilon) const
{
    Circuit out(num_qubits_);
    for (const Gate& g : gates_) {
        const bool trivial = has_angle(g.type) && g.angle.is_constant() &&
                             std::abs(g.angle.coefficient) <= epsilon;
        if (!trivial)
            out.gates_.push_back(g);
    }
    return out;
}

} // namespace fq::circuit
