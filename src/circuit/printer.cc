#include "circuit/printer.h"

#include <sstream>

#include "common/error.h"

namespace fq::circuit {

std::string
parameter_to_string(const Parameter& p)
{
    std::ostringstream os;
    switch (p.kind) {
      case Parameter::Kind::Constant:
        os << p.coefficient;
        break;
      case Parameter::Kind::Gamma:
        os << p.coefficient << "*g" << p.layer;
        break;
      case Parameter::Kind::Beta:
        os << p.coefficient << "*b" << p.layer;
        break;
    }
    return os.str();
}

std::string
to_text(const Circuit& c)
{
    std::ostringstream os;
    os << "circuit(" << c.num_qubits() << " qubits, " << c.size()
       << " gates)\n";
    for (const Gate& g : c.gates()) {
        os << "  " << gate_name(g.type);
        if (has_angle(g.type))
            os << "(" << parameter_to_string(g.angle) << ")";
        if (g.type == GateType::BARRIER) {
            os << "\n";
            continue;
        }
        os << " q" << g.q0;
        if (is_two_qubit(g.type))
            os << ", q" << g.q1;
        os << "\n";
    }
    return os.str();
}

std::string
to_qasm(const Circuit& c)
{
    FQ_REQUIRE(!c.is_parametric(),
               "bind parameters before exporting to QASM");
    std::ostringstream os;
    os << "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";
    os << "qreg q[" << c.num_qubits() << "];\n";
    os << "creg m[" << c.num_qubits() << "];\n";
    for (const Gate& g : c.gates()) {
        switch (g.type) {
          case GateType::BARRIER:
            os << "barrier q;\n";
            break;
          case GateType::MEASURE:
            os << "measure q[" << g.q0 << "] -> m[" << g.q0 << "];\n";
            break;
          case GateType::CX:
            os << "cx q[" << g.q0 << "],q[" << g.q1 << "];\n";
            break;
          case GateType::SWAP:
            os << "swap q[" << g.q0 << "],q[" << g.q1 << "];\n";
            break;
          default:
            os << gate_name(g.type);
            if (has_angle(g.type))
                os << "(" << g.angle.coefficient << ")";
            os << " q[" << g.q0 << "];\n";
            break;
        }
    }
    return os.str();
}

} // namespace fq::circuit
