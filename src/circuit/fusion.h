/**
 * @file
 * Diagonal-layer fusion pass.
 *
 * A QAOA cost layer is |E| CX-RZ-CX sandwiches plus up to |V| linear RZs —
 * all diagonal in the computational basis, so their combined action on a
 * basis state s is a single phase. This pass coalesces maximal runs of
 * diagonal gates (plain RZs and CX(a,b)-RZ(b)-CX(a,b) ZZ sandwiches) into
 * one DiagonalLayer op per run, represented as Z-parity terms:
 *
 *   phase(s) = scale * sum_t coefficient_t * parity_sign(s & mask_t),
 *
 * where parity_sign is +1 for even parity of the masked bits and -1 for
 * odd, and scale is 1 for constant-angle runs or the run's shared symbolic
 * parameter (gamma_l / beta_l). Applying the layer for ANY angle is then
 * one pass `amps[s] *= polar(1, scale * w[s])` over a per-state weight
 * table that depends only on circuit structure and coefficients — the
 * simulator side (sim/qaoa_kernel.h) compiles and caches that table so all
 * optimizer iterations, and every consumer of the same structure, reuse it.
 *
 * The pass also recognizes mixer walls — maximal runs of RX gates sharing
 * one angle parameter on distinct qubits — so the simulator can apply them
 * with two-qubit-per-pass kernels. Everything else passes through as
 * ordinary gates; fusion never changes circuit semantics.
 */
#ifndef FQ_CIRCUIT_FUSION_H
#define FQ_CIRCUIT_FUSION_H

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "circuit/circuit.h"

namespace fq::circuit {

/**
 * One Z-parity phase contribution: coefficient * parity_sign(state & mask).
 * A one-bit mask is an RZ, a two-bit mask a fused ZZ sandwich.
 */
struct ParityTerm
{
    std::uint64_t mask = 0;
    double coefficient = 0.0;
};

/** One op of a fused circuit. */
struct FusedOp
{
    enum class Kind : std::uint8_t {
        Diagonal, ///< run of diagonal gates -> parity terms * scale
        Mixer,    ///< run of RX gates sharing one angle on distinct qubits
        Gate,     ///< passthrough
    };

    Kind kind = Kind::Gate;

    /** Kind::Gate — the original gate. */
    Gate gate{};

    /**
     * Kind::Diagonal — the run's shared angle scale: Constant runs apply
     * with scale 1; Gamma/Beta runs scale by the layer's parameter value.
     * Kind::Mixer — the per-qubit RX angle (coefficient * parameter).
     */
    Parameter::Kind scale_kind = Parameter::Kind::Constant;
    int scale_layer = 0;
    /** Kind::Mixer — coefficient of the shared RX angle. */
    double mixer_coefficient = 0.0;

    /** Kind::Diagonal — accumulated parity terms (unique masks). */
    std::vector<ParityTerm> terms;

    /** Kind::Mixer — target qubits, in circuit order. */
    std::vector<int> qubits;

    /** Source gates this op absorbed (1 for passthrough). */
    int fused_gates = 1;
};

/** Fusion result: an op sequence semantically equal to the source. */
struct FusedCircuit
{
    int num_qubits = 0;
    std::vector<FusedOp> ops;
    /** Gate count of the source circuit (MEASURE/BARRIER included). */
    int source_gates = 0;

    int num_diagonal_ops() const;
    int num_mixer_ops() const;
    /** Source gates absorbed into Diagonal/Mixer ops. */
    int gates_fused() const;
};

/** Pass options. */
struct FusionOptions
{
    /** Recognize CX(a,b) RZ(b) CX(a,b) as a ZZ parity term. */
    bool fuse_zz_sandwiches = true;
    /** Recognize same-angle RX runs as mixer walls. */
    bool fuse_mixer_walls = true;
};

/**
 * Fuse @p c. Works on parametric and bound circuits alike: a run of
 * diagonal gates joins one Diagonal op when every member shares the same
 * (parameter kind, layer) — constants with constants, gamma_l with gamma_l
 * — so the run collapses to one weight table times one scalar. Runs with
 * mixed parameters split into adjacent Diagonal ops (diagonals commute, so
 * this is exact). MEASURE and BARRIER pass through and end the current run.
 */
FusedCircuit fuse_diagonals(const Circuit& c,
                            const FusionOptions& options = {});

/**
 * A fused circuit with coefficient-slot indirection: the op/mask/scale
 * STRUCTURE of a FusedCircuit, with every Diagonal parity coefficient
 * replaced by an index into a per-problem slot-value vector. One skeleton
 * serves every problem instance sharing the structure — binding concrete
 * (J, h) values is a linear coefficient patch, with no circuit build and
 * no fusion scan.
 *
 * Slot convention (matching the QAOA builder's term tags): slot i in
 * [0, num_spins) is the linear term of spin i, slot num_spins + t is
 * quadratic term t in the model's quadratic_terms() order. The slot VALUE
 * is the bound parity coefficient itself (the ising-aware caller supplies
 * -h_i / -J_t per the RZ phase convention documented in fusion.cc), so
 * bind_fused stays model-agnostic.
 */
struct ParametricFusedCircuit
{
    /** Op structure with placeholder (zeroed) diagonal coefficients. */
    FusedCircuit skeleton;
    /** One patch per diagonal parity term: ops[op].terms[term] reads
     *  slot_values[slot] at bind time. Every Diagonal term is patched. */
    struct Patch
    {
        int op = 0;
        int term = 0;
        int slot = 0;
    };
    std::vector<Patch> patches;
    int num_slots = 0;

    /** Estimated heap + struct footprint (cache accounting). */
    std::size_t bytes() const;
};

/**
 * Derive the coefficient-slot skeleton of @p fused for the labeled
 * structure (@p num_spins spins, @p quadratic_pairs in term order).
 * Returns nullopt when the circuit's values cannot be expressed as slot
 * reads — a diagonal run not scaled by gamma (constant or beta diagonals
 * bake values the slot scheme cannot re-derive), a parity mask that is not
 * a known linear/quadratic term, or a passthrough rotation gate (its angle
 * could carry problem values). QAOA circuits from the builder always
 * parametrize.
 */
std::optional<ParametricFusedCircuit>
parametrize_fused(const FusedCircuit& fused, int num_spins,
                  const std::vector<std::pair<int, int>>& quadratic_pairs);

/**
 * Bind @p slot_values into @p skeleton: a copy of the skeleton ops with
 * every patched coefficient set to its slot's value. Bit-identical to
 * fusing a from-scratch circuit built with the same values (the builder's
 * -coefficient/2 arithmetic is exact in IEEE754 for the 2h / 2J angle
 * coefficients the QAOA builder emits).
 */
FusedCircuit bind_fused(const ParametricFusedCircuit& skeleton,
                        const std::vector<double>& slot_values);

} // namespace fq::circuit

#endif // FQ_CIRCUIT_FUSION_H
