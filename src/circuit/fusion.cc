#include "circuit/fusion.h"

#include <unordered_map>

#include "common/error.h"

namespace fq::circuit {

namespace {

/**
 * One recognized diagonal unit: a plain RZ (1-bit mask) or a ZZ sandwich
 * (2-bit mask), with the phase convention
 *
 *   RZ(q, theta)  = diag(e^{-i theta/2}, e^{+i theta/2})
 *     -> phase(s) = -(theta/2) * parity_sign(s & (1<<q)),
 *   CX RZ(theta) CX = RZZ(theta)
 *     -> phase(s) = -(theta/2) * parity_sign(s & (1<<a | 1<<b)),
 *
 * so the parity coefficient is -coefficient/2 in both cases, with theta =
 * coefficient * (1 | gamma_l | beta_l).
 */
struct DiagonalUnit
{
    std::uint64_t mask = 0;
    Parameter angle{};
    int gates = 0; ///< source gates consumed (1 or 3)
};

/** Try to match a diagonal unit starting at gate index @p i. */
bool
match_diagonal(const std::vector<Gate>& gates, std::size_t i,
               const FusionOptions& options, DiagonalUnit* unit)
{
    const Gate& g = gates[i];
    if (g.type == GateType::RZ) {
        unit->mask = std::uint64_t(1) << g.q0;
        unit->angle = g.angle;
        unit->gates = 1;
        return true;
    }
    if (options.fuse_zz_sandwiches && g.type == GateType::CX &&
        i + 2 < gates.size()) {
        const Gate& rz = gates[i + 1];
        const Gate& cx = gates[i + 2];
        if (rz.type == GateType::RZ && rz.q0 == g.q1 &&
            cx.type == GateType::CX && cx.q0 == g.q0 && cx.q1 == g.q1) {
            unit->mask = (std::uint64_t(1) << g.q0) |
                         (std::uint64_t(1) << g.q1);
            unit->angle = rz.angle;
            unit->gates = 3;
            return true;
        }
    }
    return false;
}

/** True when @p angle can join a Diagonal op with the given scale. */
bool
joins_scale(const Parameter& angle, Parameter::Kind kind, int layer)
{
    if (angle.kind != kind)
        return false;
    return angle.is_constant() || angle.layer == layer;
}

class Builder
{
  public:
    explicit Builder(const Circuit& c) : out_{}
    {
        out_.num_qubits = c.num_qubits();
        out_.source_gates = static_cast<int>(c.size());
    }

    void
    add_diagonal_unit(const DiagonalUnit& unit)
    {
        if (current_ == nullptr ||
            !joins_scale(unit.angle, current_->scale_kind,
                         current_->scale_layer)) {
            flush();
            FusedOp op;
            op.kind = FusedOp::Kind::Diagonal;
            op.scale_kind = unit.angle.kind;
            op.scale_layer = unit.angle.layer;
            op.fused_gates = 0;
            out_.ops.push_back(std::move(op));
            current_ = &out_.ops.back();
            mask_slot_.clear();
        }
        // Accumulate onto an existing term with the same mask (duplicate
        // RZs on a qubit, parallel edges) instead of growing the term list.
        const auto it = mask_slot_.find(unit.mask);
        if (it != mask_slot_.end()) {
            current_->terms[it->second].coefficient +=
                -unit.angle.coefficient / 2.0;
        } else {
            mask_slot_[unit.mask] = current_->terms.size();
            current_->terms.push_back(
                {unit.mask, -unit.angle.coefficient / 2.0});
        }
        current_->fused_gates += unit.gates;
    }

    void
    add_mixer_gate(const Gate& g)
    {
        const bool joins =
            mixer_ != nullptr && g.angle.kind == mixer_->scale_kind &&
            (g.angle.is_constant() ||
             g.angle.layer == mixer_->scale_layer) &&
            g.angle.coefficient == mixer_->mixer_coefficient &&
            !mixer_covers(g.q0);
        if (!joins) {
            flush();
            FusedOp op;
            op.kind = FusedOp::Kind::Mixer;
            op.scale_kind = g.angle.kind;
            op.scale_layer = g.angle.layer;
            op.mixer_coefficient = g.angle.coefficient;
            op.fused_gates = 0;
            out_.ops.push_back(std::move(op));
            mixer_ = &out_.ops.back();
        }
        mixer_->qubits.push_back(g.q0);
        ++mixer_->fused_gates;
    }

    void
    add_gate(const Gate& g)
    {
        flush();
        FusedOp op;
        op.kind = FusedOp::Kind::Gate;
        op.gate = g;
        out_.ops.push_back(std::move(op));
    }

    FusedCircuit
    take()
    {
        flush();
        return std::move(out_);
    }

  private:
    bool
    mixer_covers(int q) const
    {
        for (int covered : mixer_->qubits)
            if (covered == q)
                return true;
        return false;
    }

    void
    flush()
    {
        current_ = nullptr;
        mixer_ = nullptr;
        mask_slot_.clear();
    }

    FusedCircuit out_;
    FusedOp* current_ = nullptr; ///< open Diagonal op, if any
    FusedOp* mixer_ = nullptr;   ///< open Mixer op, if any
    std::unordered_map<std::uint64_t, std::size_t> mask_slot_;
};

} // namespace

int
FusedCircuit::num_diagonal_ops() const
{
    int n = 0;
    for (const auto& op : ops)
        if (op.kind == FusedOp::Kind::Diagonal)
            ++n;
    return n;
}

int
FusedCircuit::num_mixer_ops() const
{
    int n = 0;
    for (const auto& op : ops)
        if (op.kind == FusedOp::Kind::Mixer)
            ++n;
    return n;
}

int
FusedCircuit::gates_fused() const
{
    int n = 0;
    for (const auto& op : ops)
        if (op.kind != FusedOp::Kind::Gate)
            n += op.fused_gates;
    return n;
}

std::size_t
ParametricFusedCircuit::bytes() const
{
    std::size_t total = sizeof(ParametricFusedCircuit);
    total += skeleton.ops.capacity() * sizeof(FusedOp);
    for (const auto& op : skeleton.ops) {
        total += op.terms.capacity() * sizeof(ParityTerm);
        total += op.qubits.capacity() * sizeof(int);
    }
    total += patches.capacity() * sizeof(Patch);
    return total;
}

std::optional<ParametricFusedCircuit>
parametrize_fused(const FusedCircuit& fused, int num_spins,
                  const std::vector<std::pair<int, int>>& quadratic_pairs)
{
    // Pair -> quadratic-term index, both orientations (the builder and the
    // model normalize i < j, but the mask has no orientation anyway).
    std::unordered_map<std::uint64_t, int> pair_slot;
    for (std::size_t t = 0; t < quadratic_pairs.size(); ++t) {
        const auto [i, j] = quadratic_pairs[t];
        if (i < 0 || j < 0 || i >= num_spins || j >= num_spins || i == j)
            return std::nullopt;
        const std::uint64_t mask =
            (std::uint64_t(1) << i) | (std::uint64_t(1) << j);
        if (!pair_slot.emplace(mask, static_cast<int>(t)).second)
            return std::nullopt; // parallel edges cannot slot-split
    }

    ParametricFusedCircuit out;
    out.skeleton = fused;
    out.num_slots = num_spins + static_cast<int>(quadratic_pairs.size());
    for (std::size_t oi = 0; oi < out.skeleton.ops.size(); ++oi) {
        auto& op = out.skeleton.ops[oi];
        switch (op.kind) {
        case FusedOp::Kind::Diagonal: {
            // Only gamma-scaled diagonals are pure slot reads; a constant
            // or beta diagonal run has values baked into its coefficients.
            if (op.scale_kind != Parameter::Kind::Gamma)
                return std::nullopt;
            for (std::size_t ti = 0; ti < op.terms.size(); ++ti) {
                auto& term = op.terms[ti];
                const std::uint64_t mask = term.mask;
                int slot = -1;
                if (mask != 0 && (mask & (mask - 1)) == 0) {
                    int bit = 0;
                    while ((mask >> bit) != 1)
                        ++bit;
                    if (bit >= num_spins)
                        return std::nullopt;
                    slot = bit;
                } else {
                    const auto it = pair_slot.find(mask);
                    if (it == pair_slot.end())
                        return std::nullopt;
                    slot = num_spins + it->second;
                }
                out.patches.push_back({static_cast<int>(oi),
                                       static_cast<int>(ti), slot});
                // Zero the placeholder: the stored skeleton is value-free,
                // so identically-structured owners produce bit-identical
                // family entries and no owner value can leak into a bind.
                term.coefficient = 0.0;
            }
            break;
        }
        case FusedOp::Kind::Mixer:
            break; // beta * structural coefficient; value-free
        case FusedOp::Kind::Gate:
            // A passthrough rotation could carry a problem value in its
            // angle; the H walls / MEASURE / BARRIER the builder passes
            // through cannot.
            if (has_angle(op.gate.type))
                return std::nullopt;
            break;
        }
    }
    return out;
}

FusedCircuit
bind_fused(const ParametricFusedCircuit& skeleton,
           const std::vector<double>& slot_values)
{
    FQ_REQUIRE(static_cast<int>(slot_values.size()) == skeleton.num_slots,
               "bind_fused: slot-value count does not match skeleton");
    FusedCircuit out = skeleton.skeleton;
    for (const auto& patch : skeleton.patches) {
        out.ops[static_cast<std::size_t>(patch.op)]
            .terms[static_cast<std::size_t>(patch.term)]
            .coefficient = slot_values[static_cast<std::size_t>(patch.slot)];
    }
    return out;
}

FusedCircuit
fuse_diagonals(const Circuit& c, const FusionOptions& options)
{
    Builder builder(c);
    const auto& gates = c.gates();
    std::size_t i = 0;
    while (i < gates.size()) {
        DiagonalUnit unit;
        if (match_diagonal(gates, i, options, &unit)) {
            builder.add_diagonal_unit(unit);
            i += unit.gates;
            continue;
        }
        if (options.fuse_mixer_walls && gates[i].type == GateType::RX) {
            builder.add_mixer_gate(gates[i]);
            ++i;
            continue;
        }
        builder.add_gate(gates[i]);
        ++i;
    }
    return builder.take();
}

} // namespace fq::circuit
