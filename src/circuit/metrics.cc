#include "circuit/metrics.h"

#include <algorithm>

#include "common/error.h"

namespace fq::circuit {

double
GateDurations::duration_of(GateType t) const
{
    switch (t) {
      case GateType::CX:
        return cx_ns;
      case GateType::SWAP:
        return 3.0 * cx_ns;
      case GateType::MEASURE:
        return measure_ns;
      case GateType::RZ:
        // Virtual-Z: implemented as a frame change, zero duration.
        return 0.0;
      case GateType::BARRIER:
        return 0.0;
      default:
        return single_qubit_ns;
    }
}

namespace {

/** Levels a gate occupies in the depth metric. */
int
gate_levels(GateType t, bool free_rz)
{
    switch (t) {
      case GateType::SWAP:
        return 3;
      case GateType::BARRIER:
        return 0;
      case GateType::RZ:
        return free_rz ? 0 : 1;
      default:
        return 1;
    }
}

/**
 * Generic ASAP critical-path accumulator over per-qubit frontiers.
 * @p cost_of yields each gate's contribution (levels or nanoseconds).
 */
template <typename CostFn>
double
critical_path(const Circuit& c, CostFn&& cost_of)
{
    std::vector<double> frontier(c.num_qubits(), 0.0);
    double barrier_floor = 0.0;
    for (const Gate& g : c.gates()) {
        if (g.type == GateType::BARRIER) {
            for (double f : frontier)
                barrier_floor = std::max(barrier_floor, f);
            continue;
        }
        double start = std::max(barrier_floor, frontier[g.q0]);
        if (is_two_qubit(g.type))
            start = std::max(start, frontier[g.q1]);
        const double finish = start + cost_of(g.type);
        frontier[g.q0] = finish;
        if (is_two_qubit(g.type))
            frontier[g.q1] = finish;
    }
    double depth = barrier_floor;
    for (double f : frontier)
        depth = std::max(depth, f);
    return depth;
}

} // namespace

int
circuit_depth(const Circuit& c, bool free_rz)
{
    const double d = critical_path(c, [free_rz](GateType t) {
        return static_cast<double>(gate_levels(t, free_rz));
    });
    return static_cast<int>(d);
}

double
circuit_duration_ns(const Circuit& c, const GateDurations& durations)
{
    return critical_path(
        c, [&durations](GateType t) { return durations.duration_of(t); });
}

int
cx_depth(const Circuit& c)
{
    const double d = critical_path(c, [](GateType t) {
        switch (t) {
          case GateType::CX:
            return 1.0;
          case GateType::SWAP:
            return 3.0;
          default:
            return 0.0;
        }
    });
    return static_cast<int>(d);
}

CircuitMetrics
compute_metrics(const Circuit& c, const GateDurations& durations)
{
    CircuitMetrics m;
    m.num_qubits = c.num_qubits();
    for (const Gate& g : c.gates()) {
        if (g.type == GateType::BARRIER)
            continue;
        ++m.total_gates;
        switch (g.type) {
          case GateType::CX:
            ++m.cx_gates;
            break;
          case GateType::SWAP:
            ++m.swap_gates;
            m.cx_gates += 3;
            break;
          case GateType::MEASURE:
            ++m.measurements;
            break;
          case GateType::RZ:
            ++m.rz_gates;
            ++m.single_qubit_gates;
            break;
          default:
            ++m.single_qubit_gates;
            break;
        }
    }
    m.depth = circuit_depth(c);
    m.duration_ns = circuit_duration_ns(c, durations);
    return m;
}

} // namespace fq::circuit
