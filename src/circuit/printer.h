/**
 * @file
 * Human-readable circuit dumps: a line-per-gate textual format (symbolic
 * parameters rendered as "0.5*g0" / "2*b1") and an OpenQASM-2-like export
 * for bound circuits. Intended for debugging and the examples.
 */
#ifndef FQ_CIRCUIT_PRINTER_H
#define FQ_CIRCUIT_PRINTER_H

#include <string>

#include "circuit/circuit.h"

namespace fq::circuit {

/** One line per gate, e.g. "cx q2, q5" / "rz(1.5*g0) q3". */
std::string to_text(const Circuit& c);

/** OpenQASM 2.0-style dump; requires a fully bound (constant) circuit. */
std::string to_qasm(const Circuit& c);

/** Render a parameter, e.g. "0.785", "1.5*g0", "-2*b1". */
std::string parameter_to_string(const Parameter& p);

} // namespace fq::circuit

#endif // FQ_CIRCUIT_PRINTER_H
