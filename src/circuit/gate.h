/**
 * @file
 * Gate-level IR: gate kinds and symbolic rotation parameters.
 *
 * QAOA circuits are parametric (Section 2.1): every RZ angle is a problem
 * coefficient times a layer's gamma, and every RX mixer angle is a layer's
 * beta. Keeping the (kind, layer, coefficient) structure symbolic is what
 * enables the paper's compile-one-template-then-edit optimization
 * (Section 3.7.1): a compiled template is rebound to a sub-problem by
 * rewriting coefficients only, without re-running the transpiler.
 */
#ifndef FQ_CIRCUIT_GATE_H
#define FQ_CIRCUIT_GATE_H

#include <cstdint>
#include <string>
#include <vector>

namespace fq::circuit {

/** Supported gate kinds. SWAP is three CNOTs when decomposed. */
enum class GateType : std::uint8_t {
    H,       ///< Hadamard
    X,       ///< Pauli-X
    SX,      ///< sqrt(X) (IBM basis gate; used by 1q resynthesis)
    RZ,      ///< Z rotation — "software" gate, error-free per Section 3.3
    RX,      ///< X rotation (QAOA mixer)
    RY,      ///< Y rotation
    CX,      ///< CNOT — the error-dominant gate
    SWAP,    ///< SWAP (router-inserted; = 3 CX)
    MEASURE, ///< z-basis measurement
    BARRIER, ///< scheduling barrier across all qubits
};

/** True for gates acting on two qubits. */
constexpr bool
is_two_qubit(GateType t)
{
    return t == GateType::CX || t == GateType::SWAP;
}

/** True for gates that carry a rotation angle. */
constexpr bool
has_angle(GateType t)
{
    return t == GateType::RZ || t == GateType::RX || t == GateType::RY;
}

/** Gate-kind mnemonic ("cx", "rz", ...). */
const char* gate_name(GateType t);

/**
 * A rotation angle, either a constant or coefficient * (gamma_l | beta_l).
 *
 * Layer index l selects which of the 2p trainable parameters scales the
 * angle. resolve() with concrete parameter vectors yields the numeric angle.
 *
 * The optional @c tag records which Hamiltonian term produced the angle
 * (assigned by the QAOA builder): it is what lets a compiled template be
 * edited into a sibling sub-problem's executable by coefficient rewriting
 * alone (Section 3.7.1), surviving qubit remapping and routing.
 */
struct Parameter
{
    enum class Kind : std::uint8_t { Constant, Gamma, Beta };

    Kind kind = Kind::Constant;
    int layer = 0;
    double coefficient = 0.0;
    /** Hamiltonian-term identity (-1 = untagged). */
    int tag = -1;

    static Parameter constant(double value)
    {
        return {Kind::Constant, 0, value, -1};
    }
    static Parameter gamma(int layer, double coefficient, int tag = -1)
    {
        return {Kind::Gamma, layer, coefficient, tag};
    }
    static Parameter beta(int layer, double coefficient, int tag = -1)
    {
        return {Kind::Beta, layer, coefficient, tag};
    }

    bool is_constant() const { return kind == Kind::Constant; }

    /** Numeric angle for the given per-layer parameter values. */
    double resolve(const std::vector<double>& gammas,
                   const std::vector<double>& betas) const;

    bool operator==(const Parameter& o) const
    {
        return kind == o.kind && layer == o.layer &&
               coefficient == o.coefficient && tag == o.tag;
    }
    bool operator!=(const Parameter& o) const { return !(*this == o); }
};

/** One gate instance. q1 is -1 for single-qubit gates and MEASURE. */
struct Gate
{
    GateType type = GateType::H;
    int q0 = 0;
    int q1 = -1;
    Parameter angle = Parameter::constant(0.0);

    static Gate one_qubit(GateType t, int q)
    {
        return {t, q, -1, Parameter::constant(0.0)};
    }
    static Gate rotation(GateType t, int q, Parameter p)
    {
        return {t, q, -1, p};
    }
    static Gate two_qubit(GateType t, int a, int b)
    {
        return {t, a, b, Parameter::constant(0.0)};
    }
};

} // namespace fq::circuit

#endif // FQ_CIRCUIT_GATE_H
