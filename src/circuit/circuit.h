/**
 * @file
 * Quantum circuit container: an ordered gate list over a fixed qubit count,
 * with builder helpers, parameter binding, and structural queries. Metric
 * computation (depth, duration) lives in circuit/metrics.h.
 */
#ifndef FQ_CIRCUIT_CIRCUIT_H
#define FQ_CIRCUIT_CIRCUIT_H

#include <string>
#include <vector>

#include "circuit/gate.h"

namespace fq::circuit {

/** Ordered list of gates over num_qubits() qubits. */
class Circuit
{
  public:
    Circuit() = default;
    explicit Circuit(int num_qubits);

    int num_qubits() const { return num_qubits_; }
    const std::vector<Gate>& gates() const { return gates_; }
    std::size_t size() const { return gates_.size(); }
    bool empty() const { return gates_.empty(); }

    /** Append an arbitrary gate (validates qubit indices). */
    void append(const Gate& gate);

    /// @name Builder helpers
    /// @{
    void h(int q);
    void x(int q);
    void sx(int q);
    void rz(int q, Parameter angle);
    void rz(int q, double angle);
    void rx(int q, Parameter angle);
    void rx(int q, double angle);
    void ry(int q, Parameter angle);
    void cx(int control, int target);
    void swap(int a, int b);
    void measure(int q);
    void measure_all();
    void barrier();
    /// @}

    /** Append every gate of @p other (qubit counts must match). */
    void extend(const Circuit& other);

    /** True when any gate has a non-constant (symbolic) angle. */
    bool is_parametric() const;

    /** Number of distinct QAOA layers referenced by symbolic parameters. */
    int num_layers() const;

    /**
     * Resolve all symbolic angles against concrete per-layer (gamma, beta)
     * values; the result contains only constant parameters. This is the
     * cheap "editing the compiled circuit" step of Section 3.7.1.
     */
    Circuit bind(const std::vector<double>& gammas,
                 const std::vector<double>& betas) const;

    /**
     * Apply a qubit relabeling: gate qubit q becomes mapping[q]. Used to
     * place a logical circuit onto physical qubits. @p new_num_qubits lets
     * the result live on a larger register (a device).
     */
    Circuit remap_qubits(const std::vector<int>& mapping,
                         int new_num_qubits) const;

    /** Gates counted by type. */
    int count(GateType t) const;

    /** CX count with SWAPs decomposed: #CX + 3 * #SWAP. */
    int cx_count() const;

    /** Replace each SWAP with its 3-CX decomposition. */
    Circuit decompose_swaps() const;

    /** Remove rotations with numerically zero constant angles. */
    Circuit drop_trivial_rotations(double epsilon = 1e-12) const;

  private:
    void check_qubit(int q) const;

    int num_qubits_ = 0;
    std::vector<Gate> gates_;
};

} // namespace fq::circuit

#endif // FQ_CIRCUIT_CIRCUIT_H
