#include "frozenqubits/template_editor.h"

#include "common/error.h"

namespace fq::frozenqubits {

circuit::Circuit
edit_template(const circuit::Circuit& compiled_template,
              const ising::IsingModel& target)
{
    const int n = target.num_spins();
    const auto& terms = target.quadratic_terms();

    circuit::Circuit out(compiled_template.num_qubits());
    for (circuit::Gate g : compiled_template.gates()) {
        if (circuit::has_angle(g.type) && !g.angle.is_constant() &&
            g.angle.kind == circuit::Parameter::Kind::Gamma &&
            g.angle.tag >= 0) {
            const int tag = g.angle.tag;
            if (tag < n) {
                g.angle.coefficient = 2.0 * target.linear(tag);
            } else {
                const int t = tag - n;
                FQ_REQUIRE(t < static_cast<int>(terms.size()),
                           "template tag exceeds target term count");
                g.angle.coefficient = 2.0 * terms[t].coefficient;
            }
        }
        out.append(g);
    }
    return out;
}

bool
templates_compatible(const ising::IsingModel& source,
                     const ising::IsingModel& target)
{
    if (source.num_spins() != target.num_spins())
        return false;
    const auto& a = source.quadratic_terms();
    const auto& b = target.quadratic_terms();
    if (a.size() != b.size())
        return false;
    for (std::size_t t = 0; t < a.size(); ++t)
        if (a[t].i != b[t].i || a[t].j != b[t].j)
            return false;
    return true;
}

} // namespace fq::frozenqubits
