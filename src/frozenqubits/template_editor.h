/**
 * @file
 * Compiled-template editing (Section 3.7.1).
 *
 * All 2^m sub-problems of a freeze share the same quadratic structure and
 * differ only in linear coefficients and offset, so their compiled circuits
 * are identical up to RZ rotation angles. FrozenQubits therefore compiles
 * ONE template (built with placeholder RZ slots for every linear term) and
 * derives each sibling executable by rewriting coefficients on the tagged
 * symbolic parameters — an O(gates) string-of-angles edit instead of a full
 * transpiler run, giving the O(1) compilation complexity of Table 3.
 */
#ifndef FQ_FROZENQUBITS_TEMPLATE_EDITOR_H
#define FQ_FROZENQUBITS_TEMPLATE_EDITOR_H

#include "circuit/circuit.h"
#include "ising/ising_model.h"

namespace fq::frozenqubits {

/**
 * Rewrite the tagged gamma-parameters of @p compiled_template to the
 * coefficients of @p target: tag i in [0, N) takes 2*h_i, tag N+t takes
 * 2*J_t (aligned with target.quadratic_terms()). The template must come
 * from a sibling sub-problem with identical quadratic structure, built
 * with BuildOptions::keep_zero_linear_rz = true.
 */
circuit::Circuit edit_template(const circuit::Circuit& compiled_template,
                               const ising::IsingModel& target);

/**
 * Check that @p target is structurally edit-compatible with @p source:
 * same spin count and identical quadratic term list (indices and order).
 */
bool templates_compatible(const ising::IsingModel& source,
                          const ising::IsingModel& target);

} // namespace fq::frozenqubits

#endif // FQ_FROZENQUBITS_TEMPLATE_EDITOR_H
