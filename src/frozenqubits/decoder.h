/**
 * @file
 * Outcome decoding (Section 3.6).
 *
 * Each sub-problem explores one cell of the partitioned state space; its
 * measured assignments are lifted back to the original variable space by
 * re-inserting the frozen values. The final FrozenQubits answer is simply
 * the minimum-cost lifted solution over all sub-problems — no exponential
 * post-processing (the contrast with CutQC, Section 3.9). Lifting one
 * outcome is O(m); verifying its cost is O(N + |J|).
 */
#ifndef FQ_FROZENQUBITS_DECODER_H
#define FQ_FROZENQUBITS_DECODER_H

#include <vector>

#include "frozenqubits/freeze.h"
#include "sim/counts.h"

namespace fq::frozenqubits {

/** Re-insert frozen values: sub-space assignment -> original assignment. */
ising::SpinVector lift_assignment(const SubProblem& sub,
                                  const ising::SpinVector& sub_assignment);

/** Lift a basis-state index measured on the sub-problem register. */
ising::SpinVector lift_state(const SubProblem& sub, std::uint64_t state,
                             int original_num_spins);

/** A decoded candidate solution in the original variable space. */
struct DecodedSolution
{
    double cost = 0.0;
    ising::SpinVector assignment;
    int subproblem_index = -1;
};

/**
 * Decode the best (minimum original-Hamiltonian cost) outcome across
 * per-sub-problem output distributions. @p counts_per_sub must align with
 * @p subproblems; empty distributions are skipped.
 */
DecodedSolution decode_best(const ising::IsingModel& original,
                            const std::vector<SubProblem>& subproblems,
                            const std::vector<sim::Counts>& counts_per_sub);

/**
 * Verify the offset bookkeeping: for every observed outcome the sub-model
 * cost must equal the original-model cost of the lifted assignment.
 * Returns the largest absolute discrepancy (0 when exact).
 */
double decoding_consistency_error(const ising::IsingModel& original,
                                  const SubProblem& sub,
                                  const sim::Counts& counts);

} // namespace fq::frozenqubits

#endif // FQ_FROZENQUBITS_DECODER_H
