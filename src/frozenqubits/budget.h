/**
 * @file
 * Choosing how many qubits to freeze (Section 3.4).
 *
 * Freezing is a fidelity-vs-quantum-cost trade-off: every extra frozen
 * qubit halves nothing and doubles the circuit count, while the CNOT
 * savings per frozen qubit shrink once the true hotspots are gone
 * (power-law degree decay). The paper proposes picking m from circuit
 * properties — CNOT count and depth predict the fidelity trend (Fig 9b) —
 * under a user-supplied quantum budget. This module implements that
 * recommendation rule without any hardware execution: it inspects the
 * dropped-edge curve of iterative hotspot freezing.
 */
#ifndef FQ_FROZENQUBITS_BUDGET_H
#define FQ_FROZENQUBITS_BUDGET_H

#include <vector>

#include "frozenqubits/hotspot.h"
#include "ising/ising_model.h"

namespace fq::frozenqubits {

/** Constraints and stop criteria for the recommendation. */
struct FreezeBudget
{
    /** Maximum circuits the user will run (>= 1); with symmetry pruning a
     *  budget of 2^{k-1} admits m = k. */
    long long max_circuits = 2;
    /** Stop when freezing one more qubit would drop fewer than this
     *  fraction of the REMAINING quadratic terms (diminishing returns). */
    double min_marginal_edge_fraction = 0.10;
    /** Never freeze more than this many qubits regardless of budget. */
    int hard_cap = 10;
    bool symmetry_pruning = true;
};

/** Per-candidate-m diagnostics backing a recommendation. */
struct FreezePlanStep
{
    int m = 0;
    int spin = -1;              ///< hotspot frozen at this step
    int edges_dropped = 0;      ///< by this step alone
    int edges_remaining = 0;
    long long circuits = 1;     ///< executed circuits at this m
    double marginal_fraction = 0.0;
};

/** A full recommendation: the chosen m plus the per-step trace. */
struct FreezeRecommendation
{
    int num_freeze = 0;
    std::vector<FreezePlanStep> steps; ///< steps[0] is m=1
};

/**
 * Recommend how many hotspots to freeze for @p model under @p budget.
 * Returns m = 0 when even one freeze fails the criteria (e.g. no edges).
 * The candidate m is clamped to hard_cap BEFORE any budget comparison and
 * all circuit counts are saturating, so a budget of LLONG_MAX can never
 * overflow the doubling.
 */
FreezeRecommendation recommend_num_freeze(const ising::IsingModel& model,
                                          const FreezeBudget& budget = {});

/**
 * Saturating 2^m circuit count (2^{m-1} with symmetry pruning): returns
 * LLONG_MAX instead of overflowing once the exponent leaves the signed
 * 64-bit range. The overflow-safe core of every budget comparison here.
 */
long long saturating_quantum_cost(int num_frozen, bool symmetry_pruned);

/**
 * Leaf-circuit count of a depth-d recursive freeze with m hotspots per
 * level, saturating. Mirror pruning only applies to a flat (d = 1) tree —
 * deeper levels freeze asymmetric children (matching the engine's
 * SolveTree expansion), so d > 1 costs 2^{m*d}.
 */
long long tree_leaf_circuits(int num_frozen, int depth,
                             bool symmetry_pruned);

/** Whole-tree recommendation: freeze count per level plus a depth. */
struct TreeRecommendation
{
    int num_freeze = 0;
    int depth = 1;
    /** Saturating leaf-circuit count of the recommended (m, depth). */
    long long leaf_circuits = 1;
    /** The flat per-level recommendation the depth search started from. */
    FreezeRecommendation base;
};

/**
 * Recommend (num_freeze, depth <= @p max_depth) for a recursive SolveTree
 * solve under @p budget: picks m via recommend_num_freeze, then the
 * deepest depth whose total leaf count still fits max_circuits. All
 * arithmetic saturates, so huge budgets and depths are safe.
 */
TreeRecommendation recommend_tree_freeze(const ising::IsingModel& model,
                                         const FreezeBudget& budget,
                                         int max_depth);

// ---------------------------------------- per-node-kind cost model --

/**
 * Classical optimizer-loop cost of tuning one leaf, in coefficient-
 * evaluation units: the analytic p=1 tuner (qaoa/analytic_p1.h) scans a
 * grid_resolution^2 (gamma, beta) grid and every landscape evaluation is
 * linear in the model's quadratic term count, so the planning estimate
 * is grid^2 * terms, saturating. This is the cost a Sparsify arm buys
 * down — its proxy keeps fewer terms, so the same grid costs
 * proportionally less — while Freeze/Partition leaves tune their full
 * sub-model. Quantum sampling cost is separate (tree_leaf_circuits /
 * 2^width wave slots) and identical across arms: Sparsify samples the
 * FULL model.
 */
long long optimizer_loop_cost(long long num_quadratic_terms,
                              int grid_resolution);

/**
 * Quadratic terms a Sparsify proxy keeps for a width-@p num_nodes leaf
 * with @p num_edges couplings at @p keep_fraction — the plan-time
 * estimate mirroring graph::sparsify_edges' keep target:
 * max(spanning-forest size, ceil(keep * E)). Uses min(n-1, E) for the
 * forest (exact on connected leaf graphs, an upper bound otherwise).
 * keep_fraction outside (0, 1) means sparsification is off: returns
 * @p num_edges unchanged.
 */
long long sparsify_proxy_terms(int num_nodes, long long num_edges,
                               double keep_fraction);

} // namespace fq::frozenqubits

#endif // FQ_FROZENQUBITS_BUDGET_H
