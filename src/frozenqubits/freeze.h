/**
 * @file
 * The freeze transform (Sections 3.3 and 3.7.2) — the paper's core
 * contribution.
 *
 * Freezing spin k with measured value s in {-1,+1} substitutes z_k = s in
 * the Ising Hamiltonian (Equations (2)-(3), Table 2):
 *
 *   h'_i     = h_i + s * J_ki        for every i coupled to k,
 *   offset'  = offset + s * h_k,
 *   J'       = J with row/column k deleted,
 *
 * yielding a sub-problem over N-1 spins. Freezing m spins produces 2^m
 * sub-problems that exactly partition the original state space. When the
 * ORIGINAL Hamiltonian has all-zero linear coefficients, sub-problems come
 * in mirror pairs — the one frozen at s and the one frozen at -s satisfy
 * H_{-s}(z) = H_{s}(-z) — so only 2^{m-1} need to be executed; the other
 * half is inferred by flipping bits (symmetry pruning).
 */
#ifndef FQ_FROZENQUBITS_FREEZE_H
#define FQ_FROZENQUBITS_FREEZE_H

#include <vector>

#include "ising/ising_model.h"

namespace fq::frozenqubits {

/** One frozen spin: its index in the ORIGINAL model and its value. */
struct FrozenSpin
{
    int original_index = 0;
    int value = +1; ///< -1 or +1
};

/** A sub-problem: reduced Hamiltonian plus index bookkeeping. */
struct SubProblem
{
    /** Hamiltonian over the surviving spins (dense indices 0..N-m-1). */
    ising::IsingModel model;
    /** original_of[i] = index in the original model of sub-spin i. */
    std::vector<int> original_of;
    /** Frozen assignment, in freeze order. */
    std::vector<FrozenSpin> frozen;
};

/** Wrap an unfrozen model as the trivial (identity) sub-problem. */
SubProblem as_subproblem(const ising::IsingModel& model);

/**
 * Freeze one spin of @p parent. @p original_index identifies the spin by
 * its index in the ORIGINAL model (must be present, i.e. not yet frozen).
 */
SubProblem freeze_spin(const SubProblem& parent, int original_index,
                       int value);

/**
 * Freeze all of @p spins (original indices) in order, enumerating all 2^m
 * value assignments. Result order: assignment bits follow the freeze order
 * with bit b of the enumeration index giving spin b's value (0 -> +1,
 * 1 -> -1), so result[0] is the all-+1 freeze.
 */
std::vector<SubProblem> freeze_all(const ising::IsingModel& model,
                                   const std::vector<int>& spins);

/**
 * Symmetry-pruned execution plan (Section 3.7.2).
 * Entry (solve, mirrors): run QAOA on sub-problem index `solve`; each index
 * in `mirrors` is recovered from it by flipping all output bits.
 */
struct ExecutionPlanEntry
{
    int solve = 0;
    std::vector<int> mirrors;
};

/**
 * Build the execution plan for the sub-problems of @p original_model. When
 * the original linear coefficients are all zero (and @p enable_pruning),
 * mirror pairs (s, -s) collapse into one executed circuit — 2^{m-1} runs
 * for 2^m sub-spaces. Otherwise every sub-problem is executed.
 */
std::vector<ExecutionPlanEntry> plan_executions(
    const ising::IsingModel& original_model, int num_frozen,
    bool enable_pruning = true);

} // namespace fq::frozenqubits

#endif // FQ_FROZENQUBITS_FREEZE_H
