#include "frozenqubits/driver.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "frozenqubits/decoder.h"
#include "frozenqubits/template_editor.h"
#include "qaoa/qaoa_builder.h"
#include "sim/noise_model.h"
#include "sim/statevector.h"

namespace fq::frozenqubits {

double
Report::improvement(double floor) const
{
    return arg_baseline / std::max(arg_fq, floor);
}

namespace {

/** Fill a CircuitStats from a compiled circuit + per-term expectations. */
CircuitStats
stats_from_compile(const ising::IsingModel& model, const device::Device& dev,
                   const transpiler::CompileResult& compiled,
                   const qaoa::P1OptimizationResult& tuned)
{
    CircuitStats s;
    s.num_qubits = model.num_spins();
    s.pre_routing_cx = compiled.pre_routing_cx;
    s.post_routing_cx = compiled.metrics.cx_gates;
    s.swaps = compiled.swaps_inserted;
    s.depth = compiled.metrics.depth;
    s.duration_ns = compiled.metrics.duration_ns;
    s.compile_time_ms = compiled.compile_time_ms;
    s.angles = tuned.angles;
    s.ev_ideal = tuned.energy;

    const auto attenuation =
        sim::compute_attenuation(compiled.physical, dev.calibration);
    s.eps = sim::expected_probability_of_success(compiled.physical,
                                                 dev.calibration);

    const auto ideal = qaoa::evaluate_p1(model, tuned.angles);
    s.ev_noisy = sim::noisy_expectation(model, ideal.z, ideal.zz,
                                        attenuation, compiled.final_layout);
    return s;
}

} // namespace

CircuitStats
evaluate_instance(const ising::IsingModel& model, const device::Device& dev,
                  const DriverConfig& config)
{
    const auto tuned = qaoa::optimize_p1(model, config.p1_grid_resolution);
    qaoa::BuildOptions build;
    build.num_layers = 1;
    const auto logical = qaoa::build_qaoa_circuit(model, build);
    const auto compiled = transpiler::compile(logical, dev, config.compile);
    return stats_from_compile(model, dev, compiled, tuned);
}

Report
run_pipeline(const ising::IsingModel& model, const device::Device& dev,
             const DriverConfig& config)
{
    FQ_REQUIRE(config.num_freeze >= 1,
               "run_pipeline needs at least one frozen qubit");
    Report report;

    // --- Baseline arm -----------------------------------------------------
    report.baseline = evaluate_instance(model, dev, config);
    report.arg_baseline = sim::approximation_ratio_gap(
        report.baseline.ev_ideal, report.baseline.ev_noisy);

    // --- FrozenQubits arm ---------------------------------------------------
    Rng rng(config.seed);
    report.hotspots =
        select_hotspots(model, config.num_freeze, config.policy, rng);
    const auto subproblems = freeze_all(model, report.hotspots);
    const auto plan = plan_executions(model, config.num_freeze,
                                      config.symmetry_pruning);
    report.num_subproblems = static_cast<int>(subproblems.size());
    report.num_executed = static_cast<int>(plan.size());

    // Compile ONE template (placeholder RZ slots on every spin) and reuse
    // it for every sibling: identical structure => identical routing and
    // identical attenuation; only RZ angles differ (Section 3.7.1).
    qaoa::BuildOptions build;
    build.num_layers = 1;
    build.keep_zero_linear_rz = true;

    bool have_template = false;
    transpiler::CompileResult template_compiled;
    const ising::IsingModel* template_model = nullptr;

    double best_ideal = std::numeric_limits<double>::infinity();
    double best_noisy = std::numeric_limits<double>::infinity();

    for (const auto& entry : plan) {
        const auto& sub = subproblems[entry.solve];
        const auto tuned =
            qaoa::optimize_p1(sub.model, config.p1_grid_resolution);

        CircuitStats stats;
        if (config.use_template_editing && have_template &&
            templates_compatible(*template_model, sub.model)) {
            transpiler::CompileResult edited = template_compiled;
            edited.physical =
                edit_template(template_compiled.physical, sub.model);
            edited.compile_time_ms = 0.0; // edit, not compile
            stats = stats_from_compile(sub.model, dev, edited, tuned);
        } else {
            const auto logical = qaoa::build_qaoa_circuit(sub.model, build);
            template_compiled =
                transpiler::compile(logical, dev, config.compile);
            template_model = &subproblems[entry.solve].model;
            have_template = true;
            stats = stats_from_compile(sub.model, dev, template_compiled,
                                       tuned);
        }

        best_ideal = std::min(best_ideal, stats.ev_ideal);
        best_noisy = std::min(best_noisy, stats.ev_noisy);
        // Mirror sub-problems share the executed circuit's spectrum
        // (H_mirror(z) = H(-z)), so their EVs equal the solved one and need
        // no separate accounting.
        report.executed.push_back(stats);
    }

    report.ev_ideal_fq = best_ideal;
    report.ev_noisy_fq = best_noisy;
    report.arg_fq =
        sim::approximation_ratio_gap(best_ideal, best_noisy);
    return report;
}

SampledSolve
solve_with_sampling(const ising::IsingModel& model, const device::Device& dev,
                    const DriverConfig& config, int shots, Rng& rng)
{
    FQ_REQUIRE(shots >= 1, "need at least one shot");
    const auto hotspots =
        select_hotspots(model, config.num_freeze, config.policy, rng);
    const auto subproblems = freeze_all(model, hotspots);
    const auto plan = plan_executions(model, config.num_freeze,
                                      config.symmetry_pruning);

    qaoa::BuildOptions build;
    build.num_layers = 1;
    build.keep_zero_linear_rz = true;

    std::vector<sim::Counts> distributions(
        subproblems.size(), sim::Counts(model.num_spins() -
                                        config.num_freeze));

    for (const auto& entry : plan) {
        const auto& sub = subproblems[entry.solve];
        const auto tuned =
            qaoa::optimize_p1(sub.model, config.p1_grid_resolution);

        const auto logical = qaoa::build_qaoa_circuit(sub.model, build);
        const auto compiled =
            transpiler::compile(logical, dev, config.compile);
        const auto attenuation =
            sim::compute_attenuation(compiled.physical, dev.calibration);

        // Ideal state on the LOGICAL register (statevector width limits).
        auto bound = logical.bind({tuned.angles.gamma}, {tuned.angles.beta});
        const auto sv = sim::run_circuit(bound);

        std::vector<double> readout_flip(sub.model.num_spins());
        for (int q = 0; q < sub.model.num_spins(); ++q) {
            readout_flip[q] =
                dev.calibration.qubit(compiled.final_layout[q])
                    .readout_error;
        }
        const auto counts = sim::sample_noisy_counts(
            sv, attenuation.global_state_survival(), readout_flip, shots,
            rng);
        distributions[entry.solve] = counts;
        // Mirror distributions: flip every bit (Section 3.7.2).
        for (int mirror : entry.mirrors)
            distributions[mirror] = counts.flip_all_bits();
    }

    const auto decoded = decode_best(model, subproblems, distributions);
    SampledSolve out;
    out.best_assignment = decoded.assignment;
    out.best_cost = decoded.cost;
    out.from_subproblem = decoded.subproblem_index;
    out.distributions = std::move(distributions);
    return out;
}

} // namespace fq::frozenqubits
