/**
 * @file
 * Legacy driver entry points, now a thin facade over the ExecutionEngine
 * (src/engine/): planning, thread-pooled batch execution and reduction all
 * live there. Each call constructs a private engine so repeated calls stay
 * semantically independent (fresh template cache); callers that want
 * cross-call template reuse and a persistent thread pool should hold an
 * engine::ExecutionEngine themselves.
 */
#include "frozenqubits/driver.h"

#include <algorithm>

#include "engine/engine.h"

namespace fq::frozenqubits {

double
Report::improvement(double floor) const
{
    return arg_baseline / std::max(arg_fq, floor);
}

CircuitStats
evaluate_instance(const ising::IsingModel& model, const device::Device& dev,
                  const DriverConfig& config)
{
    // Single-arm evaluation is serial; don't spin up a worker pool for it.
    engine::ExecutionEngine eng(1);
    return eng.evaluate(model, dev, config);
}

Report
run_pipeline(const ising::IsingModel& model, const device::Device& dev,
             const DriverConfig& config)
{
    engine::ExecutionEngine eng(config.threads);
    return eng.run(model, dev, config);
}

SampledSolve
solve_with_sampling(const ising::IsingModel& model, const device::Device& dev,
                    const DriverConfig& config, int shots, Rng& rng)
{
    engine::ExecutionEngine eng(config.threads);
    return eng.solve(model, dev, config, shots, rng);
}

} // namespace fq::frozenqubits
