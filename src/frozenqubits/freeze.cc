#include "frozenqubits/freeze.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"

namespace fq::frozenqubits {

SubProblem
as_subproblem(const ising::IsingModel& model)
{
    SubProblem sp;
    sp.model = model;
    sp.original_of.resize(model.num_spins());
    std::iota(sp.original_of.begin(), sp.original_of.end(), 0);
    return sp;
}

SubProblem
freeze_spin(const SubProblem& parent, int original_index, int value)
{
    FQ_REQUIRE(value == +1 || value == -1, "frozen value must be +-1");
    // Locate the spin inside the parent's dense index space.
    int k = -1;
    for (std::size_t i = 0; i < parent.original_of.size(); ++i) {
        if (parent.original_of[i] == original_index) {
            k = static_cast<int>(i);
            break;
        }
    }
    FQ_REQUIRE(k != -1, "spin is not present (already frozen?)");

    const auto& pm = parent.model;
    const int n = pm.num_spins();
    FQ_REQUIRE(n >= 2, "cannot freeze the last remaining spin");

    SubProblem sub;
    sub.model = ising::IsingModel(n - 1);
    sub.frozen = parent.frozen;
    sub.frozen.push_back({original_index, value});

    // Dense remap: parent index -> sub index, skipping k.
    std::vector<int> remap(n, -1);
    int next = 0;
    for (int i = 0; i < n; ++i)
        if (i != k)
            remap[i] = next++;

    sub.original_of.resize(n - 1);
    for (int i = 0; i < n; ++i)
        if (i != k)
            sub.original_of[remap[i]] = parent.original_of[i];

    // Table 2 update rules.
    // offset' = offset + s * h_k
    sub.model.set_offset(pm.offset() + value * pm.linear(k));
    // h'_i = h_i (+ s * J_ki for neighbors of k)
    for (int i = 0; i < n; ++i)
        if (i != k)
            sub.model.set_linear(remap[i], pm.linear(i));
    for (const auto& [j, J] : pm.couplings_of(k))
        sub.model.add_linear(remap[j], value * J);
    // J' = J minus row/column k.
    for (const auto& term : pm.quadratic_terms())
        if (term.i != k && term.j != k)
            sub.model.add_quadratic(remap[term.i], remap[term.j],
                                    term.coefficient);
    return sub;
}

std::vector<SubProblem>
freeze_all(const ising::IsingModel& model, const std::vector<int>& spins)
{
    const int m = static_cast<int>(spins.size());
    FQ_REQUIRE(m >= 0 && m < model.num_spins(),
               "must freeze fewer spins than exist");
    FQ_REQUIRE(m <= 20, "2^m sub-problems: m capped at 20");

    std::vector<SubProblem> out;
    out.reserve(std::size_t(1) << m);
    for (std::uint64_t assignment = 0; assignment < (std::uint64_t(1) << m);
         ++assignment) {
        SubProblem sp = as_subproblem(model);
        for (int b = 0; b < m; ++b) {
            const int value = (assignment >> b) & 1 ? -1 : +1;
            sp = freeze_spin(sp, spins[b], value);
        }
        out.push_back(std::move(sp));
    }
    return out;
}

std::vector<ExecutionPlanEntry>
plan_executions(const ising::IsingModel& original_model, int num_frozen,
                bool enable_pruning)
{
    FQ_REQUIRE(num_frozen >= 0 && num_frozen <= 20,
               "m capped at 20 (2^m sub-problems)");
    const std::uint64_t total = std::uint64_t(1) << num_frozen;

    std::vector<ExecutionPlanEntry> plan;
    const bool symmetric =
        enable_pruning && original_model.has_zero_linear_terms();
    if (!symmetric || num_frozen == 0) {
        for (std::uint64_t i = 0; i < total; ++i)
            plan.push_back({static_cast<int>(i), {}});
        return plan;
    }

    // Assignment i's mirror is the bitwise complement (every frozen value
    // negated). Canonical representative: the one with bit 0 == 0 (first
    // frozen spin = +1). For a flip-symmetric parent, H_mirror(z) = H(-z).
    const std::uint64_t mask = total - 1;
    for (std::uint64_t i = 0; i < total; ++i) {
        const std::uint64_t mirror = (~i) & mask;
        if (i < mirror)
            plan.push_back({static_cast<int>(i),
                            {static_cast<int>(mirror)}});
    }
    return plan;
}

} // namespace fq::frozenqubits
