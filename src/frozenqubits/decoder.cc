#include "frozenqubits/decoder.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/bitops.h"
#include "common/error.h"

namespace fq::frozenqubits {

ising::SpinVector
lift_assignment(const SubProblem& sub, const ising::SpinVector& sub_assignment)
{
    FQ_REQUIRE(static_cast<int>(sub_assignment.size()) ==
                   sub.model.num_spins(),
               "sub-assignment size mismatch");
    const int original_n =
        sub.model.num_spins() + static_cast<int>(sub.frozen.size());
    ising::SpinVector full(original_n, 0);
    for (std::size_t i = 0; i < sub_assignment.size(); ++i)
        full[sub.original_of[i]] = sub_assignment[i];
    for (const auto& fs : sub.frozen)
        full[fs.original_index] = static_cast<std::int8_t>(fs.value);
    return full;
}

ising::SpinVector
lift_state(const SubProblem& sub, std::uint64_t state, int original_num_spins)
{
    FQ_REQUIRE(original_num_spins ==
                   sub.model.num_spins() +
                       static_cast<int>(sub.frozen.size()),
               "original width mismatch");
    return lift_assignment(
        sub, ising::state_to_spins(state, sub.model.num_spins()));
}

DecodedSolution
decode_best(const ising::IsingModel& original,
            const std::vector<SubProblem>& subproblems,
            const std::vector<sim::Counts>& counts_per_sub)
{
    FQ_REQUIRE(subproblems.size() == counts_per_sub.size(),
               "one distribution per sub-problem required");
    DecodedSolution best;
    best.cost = std::numeric_limits<double>::infinity();

    for (std::size_t s = 0; s < subproblems.size(); ++s) {
        const auto& sub = subproblems[s];
        const auto& counts = counts_per_sub[s];
        if (counts.total_shots() == 0)
            continue;
        for (const auto& [state, _] : counts.histogram()) {
            const auto lifted =
                lift_state(sub, state, original.num_spins());
            const double cost = original.evaluate(lifted);
            if (cost < best.cost) {
                best.cost = cost;
                best.assignment = lifted;
                best.subproblem_index = static_cast<int>(s);
            }
        }
    }
    FQ_REQUIRE(best.subproblem_index >= 0,
               "no outcomes to decode (all distributions empty)");
    return best;
}

double
decoding_consistency_error(const ising::IsingModel& original,
                           const SubProblem& sub, const sim::Counts& counts)
{
    double worst = 0.0;
    for (const auto& [state, _] : counts.histogram()) {
        const double sub_cost = sub.model.evaluate_state(state);
        const double full_cost =
            original.evaluate(lift_state(sub, state, original.num_spins()));
        worst = std::max(worst, std::abs(sub_cost - full_cost));
    }
    return worst;
}

} // namespace fq::frozenqubits
