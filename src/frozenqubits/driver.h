/**
 * @file
 * End-to-end FrozenQubits driver (Figure 4): the orchestration layer that
 * the benchmark harnesses and examples call.
 *
 * For a problem Hamiltonian and a target device it runs both arms:
 *   baseline — one QAOA circuit, noise-adaptively compiled, angles tuned on
 *     the ideal p=1 landscape, executed under the device noise model;
 *   FrozenQubits — select m hotspots, freeze into 2^m sub-problems, prune
 *     mirrors (Section 3.7.2), compile ONE template and edit it per
 *     sub-problem (Section 3.7.1), tune and execute each, decode the best.
 * The report carries per-circuit structure (CX/depth/duration/EPS) and
 * fidelity (EV_ideal, EV_noisy, ARG) for every figure in the evaluation.
 */
#ifndef FQ_FROZENQUBITS_DRIVER_H
#define FQ_FROZENQUBITS_DRIVER_H

#include <vector>

#include "device/catalog.h"
#include "frozenqubits/freeze.h"
#include "frozenqubits/hotspot.h"
#include "ising/ising_model.h"
#include "qaoa/analytic_p1.h"
#include "sim/counts.h"
#include "transpiler/pipeline.h"

namespace fq::frozenqubits {

/** Driver configuration. */
struct DriverConfig
{
    int num_freeze = 1;                      ///< m
    HotspotPolicy policy = HotspotPolicy::MaxDegree;
    bool symmetry_pruning = true;            ///< Section 3.7.2
    bool use_template_editing = true;        ///< Section 3.7.1
    /**
     * Simulate sub-circuits through the fused QAOA fast path (diagonal
     * weight tables + cached energy tables) instead of gate-by-gate.
     * Amplitude-exact to ~1e-12; disable (fqtool --no-fusion) only for
     * A/B debugging against the naive path.
     */
    bool fuse_simulation = true;
    transpiler::CompileOptions compile{};
    int p1_grid_resolution = 32;             ///< angle-search coarse grid
    std::uint64_t seed = 7;
    /**
     * Worker threads for the execution engine: <= 0 = auto (hardware
     * concurrency), 1 = serial. Any value produces bit-identical results
     * (the engine's determinism guarantee).
     */
    int threads = 0;
};

/** Structure + fidelity record for one executed circuit. */
struct CircuitStats
{
    int num_qubits = 0;
    int pre_routing_cx = 0;     ///< before SWAP insertion
    int post_routing_cx = 0;    ///< after compilation (SWAPs as 3 CX)
    int swaps = 0;
    int depth = 0;
    double duration_ns = 0.0;
    double compile_time_ms = 0.0;
    double eps = 0.0;           ///< expected probability of success
    qaoa::P1Angles angles{};    ///< tuned parameters
    double ev_ideal = 0.0;      ///< noiseless EV at tuned angles (with offset)
    double ev_noisy = 0.0;      ///< device-noise EV at tuned angles
};

/** Full baseline-vs-FrozenQubits comparison for one instance. */
struct Report
{
    CircuitStats baseline;
    std::vector<int> hotspots;          ///< frozen original spin indices
    int num_subproblems = 0;            ///< 2^m
    int num_executed = 0;               ///< 2^{m-1} with pruning
    std::vector<CircuitStats> executed; ///< one per executed sub-circuit
    double ev_ideal_fq = 0.0;           ///< best sub-problem ideal EV
    double ev_noisy_fq = 0.0;           ///< best sub-problem noisy EV
    double arg_baseline = 0.0;          ///< Equation (4)
    double arg_fq = 0.0;

    /** ARG improvement factor (floored denominator). */
    double improvement(double floor = 1e-3) const;
};

/**
 * Evaluate one circuit-arm on @p dev (exposed for ablations).
 *
 * This and the functions below are thin facades over
 * engine::ExecutionEngine, constructing a fresh engine (thread pool +
 * template cache) per call. Hold an ExecutionEngine directly to amortize
 * those across calls.
 */
CircuitStats evaluate_instance(const ising::IsingModel& model,
                               const device::Device& dev,
                               const DriverConfig& config);

/** Run the full baseline-vs-FQ comparison. */
Report run_pipeline(const ising::IsingModel& model,
                    const device::Device& dev, const DriverConfig& config);

/**
 * Sampled end-to-end solve (examples / integration tests; statevector
 * width limits apply): executes every planned sub-circuit with the sampled
 * global-depolarizing + readout noise channel, infers mirror distributions
 * by bit flipping, decodes the best solution.
 */
struct SampledSolve
{
    ising::SpinVector best_assignment;
    double best_cost = 0.0;
    int from_subproblem = -1;
    std::vector<sim::Counts> distributions; ///< per sub-problem (2^m)
};

SampledSolve solve_with_sampling(const ising::IsingModel& model,
                                 const device::Device& dev,
                                 const DriverConfig& config, int shots,
                                 Rng& rng);

} // namespace fq::frozenqubits

#endif // FQ_FROZENQUBITS_DRIVER_H
