/**
 * @file
 * End-to-end FrozenQubits driver (Figure 4): the orchestration layer that
 * the benchmark harnesses and examples call.
 *
 * For a problem Hamiltonian and a target device it runs both arms:
 *   baseline — one QAOA circuit, noise-adaptively compiled, angles tuned on
 *     the ideal p=1 landscape, executed under the device noise model;
 *   FrozenQubits — select m hotspots, freeze into 2^m sub-problems, prune
 *     mirrors (Section 3.7.2), compile ONE template and edit it per
 *     sub-problem (Section 3.7.1), tune and execute each, decode the best.
 * The report carries per-circuit structure (CX/depth/duration/EPS) and
 * fidelity (EV_ideal, EV_noisy, ARG) for every figure in the evaluation.
 */
#ifndef FQ_FROZENQUBITS_DRIVER_H
#define FQ_FROZENQUBITS_DRIVER_H

#include <vector>

#include "device/catalog.h"
#include "frozenqubits/freeze.h"
#include "frozenqubits/hotspot.h"
#include "ising/ising_model.h"
#include "qaoa/analytic_p1.h"
#include "sim/backend.h"
#include "sim/counts.h"
#include "transpiler/pipeline.h"

namespace fq::frozenqubits {

/** Driver configuration. */
struct DriverConfig
{
    int num_freeze = 1;                      ///< m
    HotspotPolicy policy = HotspotPolicy::MaxDegree;
    bool symmetry_pruning = true;            ///< Section 3.7.2
    bool use_template_editing = true;        ///< Section 3.7.1
    /**
     * Simulate sub-circuits through the fused QAOA fast path (diagonal
     * weight tables + cached energy tables) instead of gate-by-gate.
     * Amplitude-exact to ~1e-12; disable (fqtool --no-fusion) only for
     * A/B debugging against the naive path.
     */
    bool fuse_simulation = true;
    /**
     * Family-level parametric templates (fqtool --no-param-templates to
     * disable): plan-time template resolution goes through
     * TemplateCache::get_or_bind — one structure-only compile per
     * (graph-family, p, width, device) class, after which planning a
     * member instance is a signature hash + O(E) verification, and leaf
     * execution patches coefficients into the cached fusion skeleton
     * instead of rebuilding circuits. Never affects results: bound
     * templates are bit-identical to from-scratch compiles (asserted in
     * tests); only plan latency and cache residency change.
     */
    bool parametric_templates = true;
    /**
     * Kernel backend policy for fused leaf simulation (fqtool --backend):
     * Auto picks per leaf by width (scalar below
     * sim::kAutoVectorizeMinQubits, vectorized at and above); Scalar/Simd
     * force one backend everywhere. Recorded per leaf at PLAN time, so
     * any thread count and solo-vs-service execution see identical
     * kernels — and the backends agree bitwise on sampled counts anyway.
     */
    sim::BackendSelection backend = sim::BackendSelection::Auto;
    transpiler::CompileOptions compile{};
    int p1_grid_resolution = 32;             ///< angle-search coarse grid
    std::uint64_t seed = 7;
    /**
     * Worker threads for the execution engine: <= 0 = auto (hardware
     * concurrency), 1 = serial. Any value produces bit-identical results
     * (the engine's determinism guarantee).
     */
    int threads = 0;

    // ------------------------------------------------- SolveTree controls --
    /**
     * Recursive-freezing depth of the solve tree: 1 = the paper's flat
     * pipeline (freeze once, execute the 2^{m-1} siblings), d > 1 re-freezes
     * each sub-problem up to d levels deep ("Adaptive Qubit Freezing"
     * composition). Mirror pruning only applies at the terminal level;
     * recursion trades it for deeper CX savings.
     */
    int max_depth = 1;
    /**
     * Quantum budget: execute at most this many leaf circuits, best-first
     * by the scheduler's classical score (Skipper-style partial execution).
     * 0 = unlimited (every planned leaf runs). Deterministic: the ranked
     * cut is fixed at plan time, so any thread count executes exactly the
     * same leaves.
     */
    long long max_circuits = 0;
    /**
     * Hybrid D&C + freeze: when > 0, tree nodes wider than this many spins
     * are bisected (cut couplings dropped, fragments repaired classically
     * at decode) instead of frozen. Needs max_depth >= 2 for the fragments
     * to then be frozen or solved. 0 disables partitioning.
     */
    int partition_width = 0;
    /**
     * Plan-time sibling pruning: skip leaves whose optimistic cost bound
     * (frozen-offset minus total coefficient magnitude) cannot beat the
     * classical SA presolve incumbent. Off by default — it may skip every
     * quantum circuit on instances SA already solves optimally.
     */
    bool prune_dominated = false;
    /**
     * Adaptive budget re-ranking: every `rerank_interval` folded leaves the
     * wave loop re-scores the request's not-yet-dispatched leaves against
     * the reducer's incumbent (epoch snapshot over exactly that many folds),
     * prunes stale dominated leaves and re-cuts the remaining circuit
     * budget. 0 = off: the plan-time ranking is final and execution is
     * bit-identical to the pre-epoch engine at any thread count.
     *
     * Determinism contract: a re-rank is a pure function of THIS request's
     * fold count — never of wave composition, tenant interleaving or thread
     * count — so results are identical between a solo ExecutionEngine::solve
     * and a multi-tenant SolveService at any parallelism.
     */
    long long rerank_interval = 0;

    // ------------------------------------------------ SolveService controls --
    /**
     * Self-cap on how many of THIS request's leaves may ride in one shared
     * executor wave when the solve goes through a multi-tenant
     * engine::SolveService: the wave assembler stops drawing from this
     * request once the cap is hit, leaving the remaining slots of every
     * wave to co-tenants. How a bulk submitter keeps itself polite — it
     * cannot restrict anyone else's share. 0 = no per-wave cap (fair
     * round-robin only). Never affects results — only which wave a leaf
     * rides in.
     */
    int wave_share = 0;

    // ------------------------------------------------- durability controls --
    /**
     * Deadline budget in wave-slot cost units (a leaf charges 2^width —
     * engine/wave_loop.h). 0 = no deadline. At plan time the schedule is
     * greedily trimmed to the leaves that fit (typed engine::DeadlineError
     * when not even one does), and the trim re-applies after each adaptive
     * re-rank against the units already consumed. A trimmed solve
     * completes with its anytime incumbent and is flagged degraded
     * (SampledSolve::degraded) instead of erroring. In an
     * engine::SolveService, submit() additionally rejects with
     * DeadlineError when the serial backlog ahead of the request plus its
     * own schedule projects past the deadline. The trim itself is a pure
     * function of the request's own schedule and fold count — bit-identical
     * at any thread count, solo or service.
     */
    long long deadline_cost_units = 0;
    /**
     * Durable solves: checkpoint boundary granularity in folded leaves.
     * When > 0 AND the caller hands a checkpoint sink (the durable
     * ExecutionEngine::solve overload, SolveService::submit's
     * on_checkpoint), the wave loop inserts an epoch barrier every
     * this-many folded leaves and passes a SolveCheckpoint snapshot to the
     * sink. Barrier placement never changes results (folds are
     * order-independent and re-ranks fire at exact fold counts), so a
     * checkpointed run stays bit-identical to an uncheckpointed one.
     * 0 = off.
     */
    long long checkpoint_interval = 0;
    /**
     * Red-QAOA sparsification (the Sparsify node kind): when in (0, 1),
     * every terminal tree node with prunable couplings tunes its QAOA
     * angles on a proxy model keeping roughly this fraction of its
     * quadratic terms (spanning structure always preserved), while the
     * executed circuit, sampling and every energy evaluation stay on
     * the full model. The proxy is a pure function of (leaf model, leaf
     * stream seed) fixed at plan time, so results remain bit-identical
     * across thread counts and solo-vs-service. 0 = off (the default;
     * every pre-sparsify config plans byte-identically to before).
     * >= 1 keeps everything and is equivalent to off.
     */
    double sparsify_keep = 0.0;

    // ---------------------------------------------- distributed controls --
    /**
     * Distributed execution opt-out (serve-batch trace key `workers=0`):
     * when false, every leaf of this request runs on the local
     * BatchExecutor even when a net::WorkerPool is attached to the
     * engine. Never affects results — remote and local leaf execution
     * are bit-identical by the determinism contract — so, like
     * `threads`, it is excluded from the config fingerprint and is NOT
     * transmitted to workers.
     */
    bool allow_remote = true;
};

/** Structure + fidelity record for one executed circuit. */
struct CircuitStats
{
    int num_qubits = 0;
    int pre_routing_cx = 0;     ///< before SWAP insertion
    int post_routing_cx = 0;    ///< after compilation (SWAPs as 3 CX)
    int swaps = 0;
    int depth = 0;
    double duration_ns = 0.0;
    double compile_time_ms = 0.0;
    double eps = 0.0;           ///< expected probability of success
    qaoa::P1Angles angles{};    ///< tuned parameters
    double ev_ideal = 0.0;      ///< noiseless EV at tuned angles (with offset)
    double ev_noisy = 0.0;      ///< device-noise EV at tuned angles
};

/** Full baseline-vs-FrozenQubits comparison for one instance. */
struct Report
{
    CircuitStats baseline;
    std::vector<int> hotspots;          ///< frozen original spin indices
    int num_subproblems = 0;            ///< 2^m
    int num_executed = 0;               ///< 2^{m-1} with pruning
    std::vector<CircuitStats> executed; ///< one per executed sub-circuit
    double ev_ideal_fq = 0.0;           ///< best sub-problem ideal EV
    double ev_noisy_fq = 0.0;           ///< best sub-problem noisy EV
    double arg_baseline = 0.0;          ///< Equation (4)
    double arg_fq = 0.0;

    /** ARG improvement factor (floored denominator). */
    double improvement(double floor = 1e-3) const;
};

/**
 * Evaluate one circuit-arm on @p dev (exposed for ablations).
 *
 * This and the functions below are thin facades over
 * engine::ExecutionEngine, constructing a fresh engine (thread pool +
 * template cache) per call. Hold an ExecutionEngine directly to amortize
 * those across calls.
 */
CircuitStats evaluate_instance(const ising::IsingModel& model,
                               const device::Device& dev,
                               const DriverConfig& config);

/** Run the full baseline-vs-FQ comparison. */
Report run_pipeline(const ising::IsingModel& model,
                    const device::Device& dev, const DriverConfig& config);

/**
 * Sampled end-to-end solve (examples / integration tests; statevector
 * width limits apply): executes every planned sub-circuit with the sampled
 * global-depolarizing + readout noise channel, infers mirror distributions
 * by bit flipping, decodes the best solution.
 */
/** One point of the anytime-quality trajectory of a budgeted solve. */
struct AnytimePoint
{
    /** Leaf circuits folded so far (0 = classical presolve only). */
    int circuits = 0;
    /** Incumbent best decoded cost after folding them. */
    double incumbent_cost = 0.0;
    /** Leaf that produced the incumbent (-1 = classical presolve). */
    int leaf = -1;
};

struct SampledSolve
{
    /**
     * The overall incumbent — the answer the anytime trace converges to.
     * Whenever a classical presolve was computed (budgeted, recursive or
     * partitioned solves) it participates: if it beats every quantum
     * decode, best_* report it and from_subproblem is -1. Flat unbudgeted
     * solves have no presolve, so this is exactly the legacy decode.
     */
    ising::SpinVector best_assignment;
    double best_cost = 0.0;
    /**
     * Flat solves: index into the 2^m sub-problems. Tree solves
     * (max_depth > 1 or partition_width > 0): the leaf id. -1 when the
     * classical presolve is the incumbent.
     */
    int from_subproblem = -1;

    /** Best QUANTUM decode regardless of the presolve (equals best_cost
     *  when a leaf wins; the mode-comparison metric in the bench suite). */
    double best_quantum_cost = 0.0;
    /** Producer of best_quantum_cost (sub-problem / leaf id as above). */
    int best_quantum_leaf = -1;
    /**
     * Flat solves: one distribution per sub-problem (2^m, mirrors
     * inferred, budget-skipped entries empty). Tree solves: one per
     * executed leaf, in schedule (rank) order.
     */
    std::vector<sim::Counts> distributions;

    // --------------------------------------- budgeted-execution telemetry --
    int leaves_total = 0;    ///< executable leaves planned (mirrors excluded)
    int leaves_executed = 0; ///< leaves actually run (== budget when capped)
    /** Incumbent cost after each executed circuit, in schedule order;
     *  starts with the classical presolve point when one was computed. */
    std::vector<AnytimePoint> anytime;

    /**
     * True when the solve completed EARLY under deadline pressure
     * (deadline_cost_units trimmed scheduled leaves) or a checkpoint-sink
     * suspension: the answer is the valid anytime incumbent over the
     * leaves that did fold, not the full planned schedule.
     */
    bool degraded = false;
    /** Deadline-trim demotion events that shaped this result. */
    int deadline_trimmed = 0;
};

SampledSolve solve_with_sampling(const ising::IsingModel& model,
                                 const device::Device& dev,
                                 const DriverConfig& config, int shots,
                                 Rng& rng);

} // namespace fq::frozenqubits

#endif // FQ_FROZENQUBITS_DRIVER_H
