#include "frozenqubits/hotspot.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace fq::frozenqubits {

std::vector<int>
select_hotspots(const ising::IsingModel& model, int m, HotspotPolicy policy,
                Rng& rng)
{
    const int n = model.num_spins();
    FQ_REQUIRE(m >= 0 && m < n, "must freeze fewer qubits than exist");

    std::vector<int> chosen;
    if (m == 0)
        return chosen;

    if (policy == HotspotPolicy::Random) {
        auto idx = rng.sample_without_replacement(n, m);
        chosen.assign(idx.begin(), idx.end());
        return chosen;
    }

    // Iterative greedy: pick the best-scoring spin, drop its edges from the
    // live degree view, repeat. Scores: edge count or summed |J|.
    std::vector<bool> frozen(n, false);
    std::vector<double> score(n, 0.0);
    for (int i = 0; i < n; ++i) {
        for (const auto& [j, J] : model.couplings_of(i)) {
            (void)j;
            score[i] += policy == HotspotPolicy::MaxDegree ? 1.0
                                                           : std::abs(J);
        }
    }

    for (int pick = 0; pick < m; ++pick) {
        int best = -1;
        for (int i = 0; i < n; ++i) {
            if (frozen[i])
                continue;
            if (best == -1 || score[i] > score[best])
                best = i;
        }
        FQ_ASSERT(best != -1, "ran out of spins to freeze");
        chosen.push_back(best);
        frozen[best] = true;
        for (const auto& [j, J] : model.couplings_of(best)) {
            if (!frozen[j]) {
                score[j] -= policy == HotspotPolicy::MaxDegree ? 1.0
                                                               : std::abs(J);
            }
        }
    }
    return chosen;
}

int
dropped_edge_count(const ising::IsingModel& model,
                   const std::vector<int>& spins)
{
    std::vector<bool> selected(model.num_spins(), false);
    for (int s : spins) {
        FQ_REQUIRE(s >= 0 && s < model.num_spins(),
                   "spin index out of range");
        selected[s] = true;
    }
    int dropped = 0;
    for (const auto& term : model.quadratic_terms())
        if (selected[term.i] || selected[term.j])
            ++dropped;
    return dropped;
}

} // namespace fq::frozenqubits
