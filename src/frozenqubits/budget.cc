#include "frozenqubits/budget.h"

#include <algorithm>
#include <climits>
#include <cmath>

#include "common/error.h"

namespace fq::frozenqubits {

namespace {

/** 2^exp as long long, saturating at LLONG_MAX. */
long long
saturating_shift(int exp)
{
    if (exp >= 62)
        return LLONG_MAX;
    return 1ll << exp;
}

} // namespace

long long
saturating_quantum_cost(int num_frozen, bool symmetry_pruned)
{
    FQ_REQUIRE(num_frozen >= 0, "m must be non-negative");
    if (num_frozen == 0)
        return 1;
    return saturating_shift(symmetry_pruned ? num_frozen - 1 : num_frozen);
}

long long
tree_leaf_circuits(int num_frozen, int depth, bool symmetry_pruned)
{
    FQ_REQUIRE(num_frozen >= 0 && depth >= 1,
               "need m >= 0 and depth >= 1");
    if (num_frozen == 0)
        return 1;
    if (depth == 1)
        return saturating_quantum_cost(num_frozen, symmetry_pruned);
    // Saturate the exponent product itself: m * depth can overflow int
    // for adversarial inputs long before the shift would.
    if (num_frozen > 62 / depth)
        return LLONG_MAX;
    return saturating_shift(num_frozen * depth);
}

FreezeRecommendation
recommend_num_freeze(const ising::IsingModel& model,
                     const FreezeBudget& budget)
{
    FQ_REQUIRE(budget.max_circuits >= 1, "budget must admit one circuit");
    FQ_REQUIRE(budget.hard_cap >= 0 && budget.hard_cap <= 20,
               "hard cap out of range");

    FreezeRecommendation rec;
    // Clamp the candidate range to hard_cap FIRST: the budget comparison
    // below must never see an m the cap forbids, and every circuit count
    // computed inside the loop stays within the saturating helper's range.
    const int max_m =
        std::min(budget.hard_cap, std::max(0, model.num_spins() - 2));

    // Iterative hotspot ranking on the live degree view (Section 3.5).
    Rng rng(0); // MaxDegree never consults it
    const auto order = max_m > 0
        ? select_hotspots(model, max_m, HotspotPolicy::MaxDegree, rng)
        : std::vector<int>{};

    int remaining = model.num_quadratic_terms();
    std::vector<int> frozen_prefix;
    for (int m = 1; m <= max_m; ++m) {
        frozen_prefix.push_back(order[m - 1]);
        const int dropped_total =
            dropped_edge_count(model, frozen_prefix);
        FreezePlanStep step;
        step.m = m;
        step.spin = order[m - 1];
        step.edges_dropped =
            dropped_total - (model.num_quadratic_terms() - remaining);
        step.marginal_fraction =
            remaining > 0
                ? static_cast<double>(step.edges_dropped) / remaining
                : 0.0;
        remaining -= step.edges_dropped;
        step.edges_remaining = remaining;
        step.circuits =
            saturating_quantum_cost(m, budget.symmetry_pruning);

        // Stop criteria: over budget or diminishing returns. The circuit
        // count saturates instead of overflowing, so a max_circuits of
        // LLONG_MAX admits every m the hard cap allows.
        if (step.circuits > budget.max_circuits)
            break;
        if (step.marginal_fraction < budget.min_marginal_edge_fraction)
            break;
        rec.steps.push_back(step);
        rec.num_freeze = m;
    }
    return rec;
}

TreeRecommendation
recommend_tree_freeze(const ising::IsingModel& model,
                      const FreezeBudget& budget, int max_depth)
{
    FQ_REQUIRE(max_depth >= 1, "tree depth must be at least 1");

    TreeRecommendation rec;
    rec.base = recommend_num_freeze(model, budget);
    rec.num_freeze = rec.base.num_freeze;
    if (rec.num_freeze == 0)
        return rec;

    // Deepen while the whole tree's leaf count still fits the budget. The
    // per-level m is fixed by the flat recommendation; depth multiplies
    // the exponent, so this loop runs at most max_depth times and every
    // comparison is against a saturating count.
    rec.leaf_circuits =
        tree_leaf_circuits(rec.num_freeze, 1, budget.symmetry_pruning);
    for (int d = 2; d <= max_depth; ++d) {
        const long long circuits =
            tree_leaf_circuits(rec.num_freeze, d, budget.symmetry_pruning);
        if (circuits > budget.max_circuits)
            break;
        rec.depth = d;
        rec.leaf_circuits = circuits;
    }
    return rec;
}

long long
optimizer_loop_cost(long long num_quadratic_terms, int grid_resolution)
{
    FQ_REQUIRE(num_quadratic_terms >= 0 && grid_resolution >= 1,
               "need terms >= 0 and a positive grid");
    const long long grid = static_cast<long long>(grid_resolution) *
                           static_cast<long long>(grid_resolution);
    if (num_quadratic_terms != 0 &&
        grid > LLONG_MAX / num_quadratic_terms)
        return LLONG_MAX;
    return grid * num_quadratic_terms;
}

long long
sparsify_proxy_terms(int num_nodes, long long num_edges,
                     double keep_fraction)
{
    FQ_REQUIRE(num_nodes >= 0 && num_edges >= 0,
               "need non-negative node and edge counts");
    if (!(keep_fraction > 0.0) || keep_fraction >= 1.0)
        return num_edges;
    const long long forest =
        std::min<long long>(std::max(num_nodes - 1, 0), num_edges);
    const auto kept = static_cast<long long>(
        std::ceil(keep_fraction * static_cast<double>(num_edges)));
    return std::clamp(std::max(forest, kept), forest, num_edges);
}

} // namespace fq::frozenqubits
