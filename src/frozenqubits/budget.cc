#include "frozenqubits/budget.h"

#include <algorithm>

#include "common/error.h"
#include "runtime/cost_model.h"

namespace fq::frozenqubits {

FreezeRecommendation
recommend_num_freeze(const ising::IsingModel& model,
                     const FreezeBudget& budget)
{
    FQ_REQUIRE(budget.max_circuits >= 1, "budget must admit one circuit");
    FQ_REQUIRE(budget.hard_cap >= 0 && budget.hard_cap <= 20,
               "hard cap out of range");

    FreezeRecommendation rec;
    const int max_m =
        std::min(budget.hard_cap, std::max(0, model.num_spins() - 2));

    // Iterative hotspot ranking on the live degree view (Section 3.5).
    Rng rng(0); // MaxDegree never consults it
    const auto order = max_m > 0
        ? select_hotspots(model, max_m, HotspotPolicy::MaxDegree, rng)
        : std::vector<int>{};

    int remaining = model.num_quadratic_terms();
    std::vector<int> frozen_prefix;
    for (int m = 1; m <= max_m; ++m) {
        frozen_prefix.push_back(order[m - 1]);
        const int dropped_total =
            dropped_edge_count(model, frozen_prefix);
        FreezePlanStep step;
        step.m = m;
        step.spin = order[m - 1];
        step.edges_dropped =
            dropped_total - (model.num_quadratic_terms() - remaining);
        step.marginal_fraction =
            remaining > 0
                ? static_cast<double>(step.edges_dropped) / remaining
                : 0.0;
        remaining -= step.edges_dropped;
        step.edges_remaining = remaining;
        step.circuits = runtime::quantum_cost(m, budget.symmetry_pruning);

        // Stop criteria: over budget or diminishing returns.
        if (step.circuits > budget.max_circuits)
            break;
        if (step.marginal_fraction < budget.min_marginal_edge_fraction)
            break;
        rec.steps.push_back(step);
        rec.num_freeze = m;
    }
    return rec;
}

} // namespace fq::frozenqubits
