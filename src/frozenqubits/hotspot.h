/**
 * @file
 * Hotspot-qubit selection (Section 3.5).
 *
 * FrozenQubits freezes the qubits that contribute the most CNOTs — in the
 * problem graph, the highest-degree (hotspot) nodes. Selection is
 * iterative: after the top hotspot is (conceptually) removed, degrees are
 * recomputed before picking the next, which matters on power-law graphs
 * where hubs share many neighbors. Alternative policies exist for the
 * ablation study (random selection, weighted CNOT contribution).
 */
#ifndef FQ_FROZENQUBITS_HOTSPOT_H
#define FQ_FROZENQUBITS_HOTSPOT_H

#include <vector>

#include "common/rng.h"
#include "ising/ising_model.h"

namespace fq::frozenqubits {

/** Which qubits to freeze. */
enum class HotspotPolicy {
    /** Iteratively remove the max-degree node (the paper's policy). */
    MaxDegree,
    /** Max total |J| weight (CNOT contribution weighted by coupling). */
    WeightedDegree,
    /** Uniform random choice — the ablation baseline Section 3.5 argues
     *  against. */
    Random,
};

/**
 * Pick @p m spins of @p model to freeze under @p policy. The returned
 * indices refer to the original model and are ordered by selection (first
 * entry = first frozen). @p rng is only consulted by Random.
 */
std::vector<int> select_hotspots(const ising::IsingModel& model, int m,
                                 HotspotPolicy policy, Rng& rng);

/**
 * Number of quadratic terms dropped by freezing @p spins (edges incident to
 * the selected set) — the paper's "dropped edges" metric (Figure 14).
 */
int dropped_edge_count(const ising::IsingModel& model,
                       const std::vector<int>& spins);

} // namespace fq::frozenqubits

#endif // FQ_FROZENQUBITS_HOTSPOT_H
