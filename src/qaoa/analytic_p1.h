/**
 * @file
 * Closed-form single-layer (p = 1) QAOA expectation values for arbitrary
 * Ising Hamiltonians, after Ozaeta, van Dam and McMahon (arXiv:2012.03421):
 *
 *   <Z_i>    = sin(2b) sin(2g h_i) prod_{k != i} cos(2g J_ik)
 *   <Z_i Z_j> = (sin(4b)/2) sin(2g J_ij)
 *                 [cos(2g h_i) prod_{k != i,j} cos(2g J_ik)
 *                  + cos(2g h_j) prod_{k != i,j} cos(2g J_jk)]
 *             - (sin^2(2b)/2)
 *                 [cos(2g (h_i+h_j)) prod_{k != i,j} cos(2g (J_ik+J_jk))
 *                  - cos(2g (h_i-h_j)) prod_{k != i,j} cos(2g (J_ik-J_jk))]
 *
 * with J_ik = 0 for uncoupled pairs (cos(0) = 1 drops out of products).
 * Cost per evaluation is O(sum of term-neighborhood sizes), so 500-qubit
 * instances (the Section 6 practical-scale study) evaluate in microseconds
 * where a statevector would need 2^500 amplitudes. Property-tested against
 * the dense simulator for random instances.
 */
#ifndef FQ_QAOA_ANALYTIC_P1_H
#define FQ_QAOA_ANALYTIC_P1_H

#include <vector>

#include "ising/ising_model.h"

namespace fq::qaoa {

/** The 2p QAOA parameters for p = 1. */
struct P1Angles
{
    double gamma = 0.0;
    double beta = 0.0;
};

/** Per-term expectation values at given angles. */
struct P1Expectations
{
    /** <Z_i> for every spin. */
    std::vector<double> z;
    /** <Z_i Z_j> aligned with model.quadratic_terms() order. */
    std::vector<double> zz;
    /** <C> = offset + sum h_i <Z_i> + sum J_ij <Z_i Z_j>. */
    double energy = 0.0;
};

/** Evaluate all per-term expectations and the energy at @p angles. */
P1Expectations evaluate_p1(const ising::IsingModel& model,
                           const P1Angles& angles);

/** Energy only (skips storing per-term values). */
double evaluate_p1_energy(const ising::IsingModel& model,
                          const P1Angles& angles);

/**
 * Optimize (gamma, beta) by dense grid search followed by local refinement
 * around the best cell. Returns the minimizing angles and energy. Grid
 * covers gamma, beta in [0, pi) x [0, pi), sufficient for one period of
 * integer-weight instances.
 */
struct P1OptimizationResult
{
    P1Angles angles;
    double energy = 0.0;
    int evaluations = 0;
};

P1OptimizationResult optimize_p1(const ising::IsingModel& model,
                                 int grid_resolution = 48,
                                 int refine_iterations = 24);

} // namespace fq::qaoa

#endif // FQ_QAOA_ANALYTIC_P1_H
