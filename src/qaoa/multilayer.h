/**
 * @file
 * Multi-layer (p >= 2) QAOA evaluation. Closed forms stop at p=1, so
 * deeper circuits are evaluated on the dense statevector (<= ~20 qubits)
 * and tuned with Nelder–Mead over the 2p angles seeded from the p=1
 * optimum. Used by the layers ablation: deeper circuits raise the ideal
 * EV but multiply the CNOT count per layer, and under hardware noise the
 * paper's Section 2.2 expectation — more layers exacerbate errors — shows
 * up as a p=1-vs-p=2 fidelity crossover.
 *
 * The optimizer loop runs on QaoaEvaluator — the cached-expectation entry
 * point: the parametric circuit is fused once into per-state weight tables
 * (sim/qaoa_kernel.h), the energy table is built once, and every
 * evaluation is then one fused re-simulation plus a dot product instead of
 * a gate-by-gate run plus a full per-state model re-evaluation.
 */
#ifndef FQ_QAOA_MULTILAYER_H
#define FQ_QAOA_MULTILAYER_H

#include <vector>

#include "ising/ising_model.h"
#include "sim/qaoa_kernel.h"
#include "sim/statevector.h"

namespace fq::qaoa {

/** Per-term expectations of a prepared state. */
struct StateExpectations
{
    std::vector<double> z;  ///< <Z_i>
    std::vector<double> zz; ///< aligned with model.quadratic_terms()
    double energy = 0.0;    ///< includes the offset
};

/** Compute per-term expectations of @p state under @p model. */
StateExpectations state_expectations(const ising::IsingModel& model,
                                     const sim::Statevector& state);

/**
 * Cached fast evaluator for the QAOA optimizer loop. Construction fuses
 * the p-layer circuit (compiling its diagonal weight tables) and builds
 * the model's energy table; energy() is then the per-iteration cost the
 * classical optimizer actually pays. One evaluator owns one scratch
 * statevector — share across iterations, not across threads.
 */
class QaoaEvaluator
{
  public:
    QaoaEvaluator(const ising::IsingModel& model, int num_layers);

    int num_layers() const { return num_layers_; }
    int num_qubits() const { return program_.num_qubits(); }

    /** Ideal <C> at the given angles (offset included). */
    double energy(const std::vector<double>& gammas,
                  const std::vector<double>& betas);

    /** Ideal <C> from the flat [gammas..., betas...] optimizer layout. */
    double energy_flat(const std::vector<double>& point);

    /** The state left by the most recent energy() call. */
    const sim::Statevector& state() const { return scratch_; }

    /** Evaluations served since construction. */
    int evaluations() const { return evaluations_; }

    const sim::FusedProgram& program() const { return program_; }
    const sim::EnergyTable& energy_table() const { return energy_table_; }

  private:
    int num_layers_;
    sim::FusedProgram program_;
    sim::EnergyTable energy_table_;
    sim::Statevector scratch_;
    int evaluations_ = 0;
};

/** Result of multi-layer angle optimization. */
struct MultilayerResult
{
    std::vector<double> gammas;
    std::vector<double> betas;
    double energy = 0.0;
    int evaluations = 0;
};

/**
 * Tune a p-layer QAOA for @p model (statevector-based; N <= 20). Layers
 * are seeded by linear interpolation of the p=1 optimum, the standard
 * warm-start heuristic.
 */
MultilayerResult optimize_multilayer(const ising::IsingModel& model,
                                     int num_layers,
                                     int max_evaluations = 600);

/** Ideal per-term expectations at given multi-layer angles. */
StateExpectations evaluate_multilayer(const ising::IsingModel& model,
                                      const std::vector<double>& gammas,
                                      const std::vector<double>& betas);

} // namespace fq::qaoa

#endif // FQ_QAOA_MULTILAYER_H
