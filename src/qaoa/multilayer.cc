#include "qaoa/multilayer.h"

#include "common/bitops.h"
#include "common/error.h"
#include "optimizer/nelder_mead.h"
#include "qaoa/analytic_p1.h"
#include "qaoa/qaoa_builder.h"

namespace fq::qaoa {

namespace {

circuit::Circuit
parametric_circuit(const ising::IsingModel& model, int num_layers)
{
    BuildOptions opts;
    opts.num_layers = num_layers;
    opts.include_measurements = false;
    return build_qaoa_circuit(model, opts);
}

} // namespace

StateExpectations
state_expectations(const ising::IsingModel& model,
                   const sim::Statevector& state)
{
    FQ_REQUIRE(model.num_spins() == state.num_qubits(),
               "model/state width mismatch");
    const int n = model.num_spins();
    StateExpectations out;
    out.z.assign(n, 0.0);
    const auto& terms = model.quadratic_terms();
    out.zz.assign(terms.size(), 0.0);

    const auto probs = state.probabilities();
    for (std::uint64_t s = 0; s < probs.size(); ++s) {
        const double p = probs[s];
        if (p == 0.0)
            continue;
        for (int i = 0; i < n; ++i)
            out.z[i] += p * spin_of_bit(s, i);
        for (std::size_t t = 0; t < terms.size(); ++t)
            out.zz[t] += p * spin_of_bit(s, terms[t].i) *
                         spin_of_bit(s, terms[t].j);
    }

    out.energy = model.offset();
    for (int i = 0; i < n; ++i)
        out.energy += model.linear(i) * out.z[i];
    for (std::size_t t = 0; t < terms.size(); ++t)
        out.energy += terms[t].coefficient * out.zz[t];
    return out;
}

QaoaEvaluator::QaoaEvaluator(const ising::IsingModel& model, int num_layers)
    : num_layers_(num_layers),
      program_(parametric_circuit(model, num_layers), /*build_luts=*/true),
      energy_table_(model)
{
    FQ_REQUIRE(num_layers >= 1, "need at least one layer");
}

double
QaoaEvaluator::energy(const std::vector<double>& gammas,
                      const std::vector<double>& betas)
{
    FQ_REQUIRE(gammas.size() == static_cast<std::size_t>(num_layers_) &&
                   betas.size() == static_cast<std::size_t>(num_layers_),
               "need one (gamma, beta) pair per layer");
    program_.run(gammas, betas, scratch_);
    ++evaluations_;
    return energy_table_.expectation(scratch_);
}

double
QaoaEvaluator::energy_flat(const std::vector<double>& point)
{
    FQ_REQUIRE(point.size() == 2 * static_cast<std::size_t>(num_layers_),
               "flat point must hold 2p angles");
    const std::vector<double> gammas(point.begin(),
                                     point.begin() + num_layers_);
    const std::vector<double> betas(point.begin() + num_layers_,
                                    point.end());
    return energy(gammas, betas);
}

StateExpectations
evaluate_multilayer(const ising::IsingModel& model,
                    const std::vector<double>& gammas,
                    const std::vector<double>& betas)
{
    FQ_REQUIRE(!gammas.empty() && gammas.size() == betas.size(),
               "need one (gamma, beta) pair per layer");
    FQ_REQUIRE(model.num_spins() <= 20,
               "statevector evaluation limited to 20 spins");
    // One-shot evaluation: fuse without the level LUT (its build cost only
    // pays off across repeated runs of the same structure).
    const sim::FusedProgram program(
        parametric_circuit(model, static_cast<int>(gammas.size())),
        /*build_luts=*/false);
    sim::Statevector state;
    program.run(gammas, betas, state);
    return state_expectations(model, state);
}

MultilayerResult
optimize_multilayer(const ising::IsingModel& model, int num_layers,
                    int max_evaluations)
{
    FQ_REQUIRE(num_layers >= 1, "need at least one layer");
    FQ_REQUIRE(model.num_spins() <= 20,
               "statevector evaluation limited to 20 spins");

    // Warm start: p=1 optimum, layers ramped linearly (gamma up, beta
    // down) — the standard interpolation heuristic.
    const auto seed = optimize_p1(model, 32);
    std::vector<double> start;
    for (int l = 0; l < num_layers; ++l) {
        start.push_back(seed.angles.gamma * (l + 1) /
                        static_cast<double>(num_layers));
    }
    for (int l = 0; l < num_layers; ++l) {
        start.push_back(seed.angles.beta * (num_layers - l) /
                        static_cast<double>(num_layers));
    }

    // The whole optimizer loop shares ONE fused program and ONE energy
    // table: per iteration only the diagonal scales and mixer angles
    // change, so the tables compiled at construction are reused verbatim.
    QaoaEvaluator evaluator(model, num_layers);

    optimizer::NelderMeadOptions opts;
    opts.max_evaluations = max_evaluations;
    opts.initial_step = 0.15;
    const auto tuned = optimizer::nelder_mead(
        [&](const std::vector<double>& x) {
            return evaluator.energy_flat(x);
        },
        start, opts);

    MultilayerResult out;
    out.gammas.assign(tuned.best_point.begin(),
                      tuned.best_point.begin() + num_layers);
    out.betas.assign(tuned.best_point.begin() + num_layers,
                     tuned.best_point.end());
    out.energy = tuned.best_value;
    out.evaluations = tuned.evaluations;
    return out;
}

} // namespace fq::qaoa
