/**
 * @file
 * QAOA circuit construction (Section 2.1, Figure 2).
 *
 * For an Ising Hamiltonian H_Z and p layers the circuit is
 *
 *   |+>^N  then for each layer l:  e^{-i gamma_l H_Z}  e^{-i beta_l B},
 *
 * realized as: H on every qubit; per linear term an RZ(2 h_i gamma_l); per
 * quadratic term the CX - RZ(2 J_ij gamma_l) - CX sandwich (two CNOTs per
 * edge per layer — the paper's core cost observation); and an RX(2 beta_l)
 * mixer on every qubit. Angles are emitted symbolically so one build serves
 * all parameter values and, after compilation, all sub-problems that share
 * the template (Section 3.7.1).
 */
#ifndef FQ_QAOA_QAOA_BUILDER_H
#define FQ_QAOA_QAOA_BUILDER_H

#include "circuit/circuit.h"
#include "ising/ising_model.h"

namespace fq::qaoa {

/** Construction options. */
struct BuildOptions
{
    int num_layers = 1;          ///< p
    bool include_measurements = true;
    /** Emit RZ for zero linear coefficients too (keeps templates editable
     *  across sub-problems whose h differ only by becoming non-zero). */
    bool keep_zero_linear_rz = false;
};

/** Build the parametric QAOA circuit for @p model. */
circuit::Circuit build_qaoa_circuit(const ising::IsingModel& model,
                                    const BuildOptions& options = {});

/** Expected gate counts for a build (used by tests and cost estimates). */
struct QaoaGateBudget
{
    int cx = 0;
    int rz = 0;
    int rx = 0;
    int h = 0;
    int measure = 0;
};

/** Predict the gate budget of build_qaoa_circuit without building. */
QaoaGateBudget predict_gate_budget(const ising::IsingModel& model,
                                   const BuildOptions& options = {});

} // namespace fq::qaoa

#endif // FQ_QAOA_QAOA_BUILDER_H
