#include "qaoa/analytic_p1.h"

#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/error.h"

namespace fq::qaoa {

namespace {

/** prod_{k in N(i)} cos(2g J_ik), optionally excluding one neighbor. */
double
neighbor_cos_product(const ising::IsingModel& model, int i, double gamma,
                     int exclude)
{
    double prod = 1.0;
    for (const auto& [k, J] : model.couplings_of(i)) {
        if (k == exclude)
            continue;
        prod *= std::cos(2.0 * gamma * J);
    }
    return prod;
}

/**
 * The sin^2(2b) bracket of <Z_i Z_j>: products of cos(2g(J_ik +- J_jk))
 * over the union of the two neighborhoods, excluding i and j themselves.
 */
void
union_cos_products(const ising::IsingModel& model, int i, int j, double gamma,
                   double& prod_sum, double& prod_diff)
{
    prod_sum = 1.0;
    prod_diff = 1.0;
    // Merge the two sparse neighbor lists: k -> (J_ik, J_jk).
    std::unordered_map<int, std::pair<double, double>> merged;
    for (const auto& [k, J] : model.couplings_of(i)) {
        if (k != j)
            merged[k].first = J;
    }
    for (const auto& [k, J] : model.couplings_of(j)) {
        if (k != i)
            merged[k].second = J;
    }
    for (const auto& [k, Js] : merged) {
        (void)k;
        prod_sum *= std::cos(2.0 * gamma * (Js.first + Js.second));
        prod_diff *= std::cos(2.0 * gamma * (Js.first - Js.second));
    }
}

} // namespace

P1Expectations
evaluate_p1(const ising::IsingModel& model, const P1Angles& angles)
{
    const double g = angles.gamma;
    const double b = angles.beta;
    const int n = model.num_spins();

    P1Expectations out;
    out.z.resize(n);

    const double sin_2b = std::sin(2.0 * b);
    const double sin_4b = std::sin(4.0 * b);

    for (int i = 0; i < n; ++i) {
        out.z[i] = sin_2b * std::sin(2.0 * g * model.linear(i)) *
                   neighbor_cos_product(model, i, g, /*exclude=*/-1);
    }

    out.zz.reserve(model.quadratic_terms().size());
    for (const auto& term : model.quadratic_terms()) {
        const int i = term.i, j = term.j;
        const double hi = model.linear(i), hj = model.linear(j);

        const double prod_i = neighbor_cos_product(model, i, g, j);
        const double prod_j = neighbor_cos_product(model, j, g, i);
        const double first =
            0.5 * sin_4b * std::sin(2.0 * g * term.coefficient) *
            (std::cos(2.0 * g * hi) * prod_i +
             std::cos(2.0 * g * hj) * prod_j);

        double prod_sum, prod_diff;
        union_cos_products(model, i, j, g, prod_sum, prod_diff);
        const double second =
            0.5 * sin_2b * sin_2b *
            (std::cos(2.0 * g * (hi + hj)) * prod_sum -
             std::cos(2.0 * g * (hi - hj)) * prod_diff);

        out.zz.push_back(first - second);
    }

    out.energy = model.offset();
    for (int i = 0; i < n; ++i)
        out.energy += model.linear(i) * out.z[i];
    const auto& terms = model.quadratic_terms();
    for (std::size_t t = 0; t < terms.size(); ++t)
        out.energy += terms[t].coefficient * out.zz[t];
    return out;
}

double
evaluate_p1_energy(const ising::IsingModel& model, const P1Angles& angles)
{
    return evaluate_p1(model, angles).energy;
}

P1OptimizationResult
optimize_p1(const ising::IsingModel& model, int grid_resolution,
            int refine_iterations)
{
    FQ_REQUIRE(grid_resolution >= 2, "grid too coarse");
    P1OptimizationResult result;
    result.energy = std::numeric_limits<double>::infinity();

    const double pi = M_PI;
    // Coarse grid over one period.
    for (int a = 0; a < grid_resolution; ++a) {
        for (int c = 0; c < grid_resolution; ++c) {
            P1Angles angles{a * pi / grid_resolution,
                            c * pi / grid_resolution};
            const double e = evaluate_p1_energy(model, angles);
            ++result.evaluations;
            if (e < result.energy) {
                result.energy = e;
                result.angles = angles;
            }
        }
    }

    // Pattern-search refinement: shrink a step around the best cell.
    double step = pi / grid_resolution;
    for (int it = 0; it < refine_iterations; ++it) {
        bool improved = false;
        const P1Angles base = result.angles;
        const P1Angles candidates[] = {
            {base.gamma + step, base.beta}, {base.gamma - step, base.beta},
            {base.gamma, base.beta + step}, {base.gamma, base.beta - step},
        };
        for (const auto& cand : candidates) {
            const double e = evaluate_p1_energy(model, cand);
            ++result.evaluations;
            if (e < result.energy) {
                result.energy = e;
                result.angles = cand;
                improved = true;
            }
        }
        if (!improved)
            step *= 0.5;
    }
    return result;
}

} // namespace fq::qaoa
