#include "qaoa/qaoa_builder.h"

#include "common/error.h"

namespace fq::qaoa {

circuit::Circuit
build_qaoa_circuit(const ising::IsingModel& model, const BuildOptions& options)
{
    FQ_REQUIRE(options.num_layers >= 1, "QAOA needs at least one layer");
    const int n = model.num_spins();
    FQ_REQUIRE(n >= 1, "QAOA circuit needs at least one qubit");

    circuit::Circuit c(n);
    for (int q = 0; q < n; ++q)
        c.h(q);

    for (int layer = 0; layer < options.num_layers; ++layer) {
        // Cost unitary e^{-i gamma_l H_Z}: linear terms first (Fig 2(b)),
        // then the two-CNOT sandwich per quadratic term.
        // Term tags: linear term i -> tag i; quadratic term t -> tag N + t.
        // These survive compilation and let the template editor rebind a
        // sibling sub-problem's coefficients (Section 3.7.1).
        for (int i = 0; i < n; ++i) {
            const double h_i = model.linear(i);
            if (h_i != 0.0 || options.keep_zero_linear_rz)
                c.rz(i, circuit::Parameter::gamma(layer, 2.0 * h_i, i));
        }
        const auto& terms = model.quadratic_terms();
        for (std::size_t t = 0; t < terms.size(); ++t) {
            const auto& term = terms[t];
            c.cx(term.i, term.j);
            c.rz(term.j,
                 circuit::Parameter::gamma(layer, 2.0 * term.coefficient,
                                           n + static_cast<int>(t)));
            c.cx(term.i, term.j);
        }
        // Mixer e^{-i beta_l sum X}.
        for (int q = 0; q < n; ++q)
            c.rx(q, circuit::Parameter::beta(layer, 2.0));
    }

    if (options.include_measurements) {
        c.barrier();
        c.measure_all();
    }
    return c;
}

QaoaGateBudget
predict_gate_budget(const ising::IsingModel& model,
                    const BuildOptions& options)
{
    QaoaGateBudget b;
    const int n = model.num_spins();
    int linear_rz = 0;
    if (options.keep_zero_linear_rz) {
        linear_rz = n;
    } else {
        for (int i = 0; i < n; ++i)
            if (model.linear(i) != 0.0)
                ++linear_rz;
    }
    const int terms = model.num_quadratic_terms();
    b.h = n;
    b.cx = 2 * terms * options.num_layers;
    b.rz = (terms + linear_rz) * options.num_layers;
    b.rx = n * options.num_layers;
    b.measure = options.include_measurements ? n : 0;
    return b;
}

} // namespace fq::qaoa
