#include "sim/simd.h"

#include <cmath>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define FQ_SIMD_X86_CPUID 1
#include <cpuid.h>
#endif

namespace fq::sim::simd {

// ------------------------------------------------------------------------
// CPU feature detection

#if defined(FQ_SIMD_X86_CPUID)

namespace {

/** XCR0: which register state the OS saves/restores (xmm/ymm/zmm). */
std::uint64_t
read_xcr0()
{
    std::uint32_t eax = 0, edx = 0;
    __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
    return (static_cast<std::uint64_t>(edx) << 32) | eax;
}

} // namespace

CpuFeatures
detect_cpu_features()
{
    CpuFeatures f;
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx))
        return f;
    const bool osxsave = (ecx & (1u << 27)) != 0;
    const bool cpu_avx = (ecx & (1u << 28)) != 0;
    const bool cpu_fma = (ecx & (1u << 12)) != 0;
    // A CPU flag alone is not enough: the OS must save the wider register
    // file across context switches (XCR0 bits 1-2 for ymm, 5-7 for zmm).
    const std::uint64_t xcr0 = osxsave ? read_xcr0() : 0;
    const bool os_ymm = (xcr0 & 0x06) == 0x06;
    const bool os_zmm = (xcr0 & 0xe6) == 0xe6;
    f.avx = cpu_avx && os_ymm;
    f.fma = cpu_fma && os_ymm;
    unsigned eax7 = 0, ebx7 = 0, ecx7 = 0, edx7 = 0;
    if (__get_cpuid_count(7, 0, &eax7, &ebx7, &ecx7, &edx7)) {
        f.avx2 = f.avx && (ebx7 & (1u << 5)) != 0;
        f.avx512f = os_zmm && (ebx7 & (1u << 16)) != 0;
    }
    return f;
}

#else // non-x86 (or non-GNU toolchain): no cpuid, report baseline.

CpuFeatures
detect_cpu_features()
{
    return CpuFeatures{};
}

#endif

const char*
compiled_isa()
{
#if defined(__AVX2__)
    return "avx2";
#else
    return "portable";
#endif
}

bool
compiled_isa_supported()
{
#if defined(__AVX2__)
    return detect_cpu_features().avx2;
#else
    return true;
#endif
}

// ------------------------------------------------------------------------
// Kernels
//
// All loops run over raw doubles (amps viewed as interleaved re/im) so the
// complex multiplies are open-coded — no __muldc3, no NaN-recovery branch
// — and each amplitude's update keeps the same expression tree as the
// scalar backend (bit-stable counts under fixed seeds).

namespace {

/** One RX-tensor-RX quadrant update over raw doubles. Indices are in
 *  DOUBLE units (2 * basis state). Mirrors kernels::apply_rx_pair:
 *  new00 = cc*a00 + ics*(a01 + a10) + mss*a11, ics = -i cs, mss = -ss. */
inline void
rx_quad_update(double* A, std::uint64_t i00, std::uint64_t i01,
               std::uint64_t i10, std::uint64_t i11, double cc, double cs,
               double ss)
{
    const double a00r = A[i00], a00i = A[i00 + 1];
    const double a01r = A[i01], a01i = A[i01 + 1];
    const double a10r = A[i10], a10i = A[i10 + 1];
    const double a11r = A[i11], a11i = A[i11 + 1];
    const double sor = a01r + a10r, soi = a01i + a10i; // a01 + a10
    const double sdr = a00r + a11r, sdi = a00i + a11i; // a00 + a11
    A[i00] = cc * a00r + cs * soi - ss * a11r;
    A[i00 + 1] = cc * a00i - cs * sor - ss * a11i;
    A[i01] = cc * a01r + cs * sdi - ss * a10r;
    A[i01 + 1] = cc * a01i - cs * sdr - ss * a10i;
    A[i10] = cc * a10r + cs * sdi - ss * a01r;
    A[i10 + 1] = cc * a10i - cs * sdr - ss * a01i;
    A[i11] = cc * a11r + cs * soi - ss * a00r;
    A[i11 + 1] = cc * a11i - cs * sor - ss * a00i;
}

/** One RX pair update over raw doubles (double-unit indices). */
inline void
rx_pair_update(double* A, std::uint64_t i0, std::uint64_t i1, double c,
               double s)
{
    const double a0r = A[i0], a0i = A[i0 + 1];
    const double a1r = A[i1], a1i = A[i1 + 1];
    A[i0] = c * a0r + s * a1i;
    A[i0 + 1] = c * a0i - s * a1r;
    A[i1] = c * a1r + s * a0i;
    A[i1 + 1] = c * a1i - s * a0r;
}

#if defined(__AVX2__)

/** Multiply each packed complex by -i: (r, i) -> (i, -r). */
inline __m256d
mul_neg_i(__m256d v)
{
    const __m256d signs = _mm256_setr_pd(1.0, -1.0, 1.0, -1.0);
    return _mm256_mul_pd(_mm256_permute_pd(v, 0x5), signs);
}

#endif

} // namespace

void
diag_apply_lut(Amp* amps, const std::uint16_t* level_index,
               const Amp* phases, std::uint64_t dim)
{
    double* A = reinterpret_cast<double*>(amps);
    const double* P = reinterpret_cast<const double*>(phases);
    std::uint64_t s = 0;
#if defined(__AVX2__)
    for (; s + 2 <= dim; s += 2) {
        const __m128d p0 = _mm_loadu_pd(P + 2 * level_index[s]);
        const __m128d p1 = _mm_loadu_pd(P + 2 * level_index[s + 1]);
        const __m256d ph = _mm256_set_m128d(p1, p0);
        const __m256d a = _mm256_loadu_pd(A + 2 * s);
        // (ar + i ai)(pr + i pi): addsub of [ar*pr, ai*pr] and
        // [ai*pi, ar*pi] gives [ar*pr - ai*pi, ai*pr + ar*pi].
        const __m256d pr = _mm256_movedup_pd(ph);
        const __m256d pi = _mm256_permute_pd(ph, 0xf);
        const __m256d asw = _mm256_permute_pd(a, 0x5);
        _mm256_storeu_pd(A + 2 * s,
                         _mm256_addsub_pd(_mm256_mul_pd(a, pr),
                                          _mm256_mul_pd(asw, pi)));
    }
#else
    for (; s + 2 <= dim; s += 2) {
        const std::uint64_t k0 = level_index[s], k1 = level_index[s + 1];
        const double p0r = P[2 * k0], p0i = P[2 * k0 + 1];
        const double p1r = P[2 * k1], p1i = P[2 * k1 + 1];
        const double a0r = A[2 * s], a0i = A[2 * s + 1];
        const double a1r = A[2 * s + 2], a1i = A[2 * s + 3];
        A[2 * s] = a0r * p0r - a0i * p0i;
        A[2 * s + 1] = a0r * p0i + a0i * p0r;
        A[2 * s + 2] = a1r * p1r - a1i * p1i;
        A[2 * s + 3] = a1r * p1i + a1i * p1r;
    }
#endif
    for (; s < dim; ++s) {
        const std::uint64_t k = level_index[s];
        const double pr = P[2 * k], pi = P[2 * k + 1];
        const double ar = A[2 * s], ai = A[2 * s + 1];
        A[2 * s] = ar * pr - ai * pi;
        A[2 * s + 1] = ar * pi + ai * pr;
    }
}

void
diag_apply_raw(Amp* amps, const double* weights, double scale,
               std::uint64_t dim)
{
    // Per-state sincos dominates — no vector win without a vector math
    // library; open-coded complex multiply still skips __muldc3.
    double* A = reinterpret_cast<double*>(amps);
    for (std::uint64_t s = 0; s < dim; ++s) {
        const double phase = scale * weights[s];
        const double pr = std::cos(phase), pi = std::sin(phase);
        const double ar = A[2 * s], ai = A[2 * s + 1];
        A[2 * s] = ar * pr - ai * pi;
        A[2 * s + 1] = ar * pi + ai * pr;
    }
}

void
mixer_rx_pair(Amp* amps, std::uint64_t dim, int qa, int qb, double theta)
{
    const std::uint64_t ma = std::uint64_t(1) << qa;
    const std::uint64_t mb = std::uint64_t(1) << qb;
    const std::uint64_t lo = ma < mb ? ma : mb;
    const std::uint64_t hi = ma < mb ? mb : ma;
    const double c = std::cos(theta / 2.0);
    const double s = std::sin(theta / 2.0);
    const double cc = c * c, cs = c * s, ss = s * s;
    double* A = reinterpret_cast<double*>(amps);

#if defined(__AVX2__)
    if (lo >= 2) {
        // The innermost run of the quad decomposition is lo contiguous
        // complex values; walk it two complex (one ymm) at a time.
        const __m256d vcc = _mm256_set1_pd(cc);
        const __m256d vcs = _mm256_set1_pd(cs);
        const __m256d vss = _mm256_set1_pd(ss);
        for (std::uint64_t a = 0; a < dim; a += hi << 1)
            for (std::uint64_t b = a; b < a + hi; b += lo << 1)
                for (std::uint64_t q = b; q < b + lo; q += 2) {
                    double* p00 = A + 2 * q;
                    double* p01 = A + 2 * (q | lo);
                    double* p10 = A + 2 * (q | hi);
                    double* p11 = A + 2 * (q | lo | hi);
                    const __m256d v00 = _mm256_loadu_pd(p00);
                    const __m256d v01 = _mm256_loadu_pd(p01);
                    const __m256d v10 = _mm256_loadu_pd(p10);
                    const __m256d v11 = _mm256_loadu_pd(p11);
                    const __m256d jso =
                        mul_neg_i(_mm256_add_pd(v01, v10));
                    const __m256d jsd =
                        mul_neg_i(_mm256_add_pd(v00, v11));
                    _mm256_storeu_pd(
                        p00, _mm256_sub_pd(
                                 _mm256_add_pd(_mm256_mul_pd(vcc, v00),
                                               _mm256_mul_pd(vcs, jso)),
                                 _mm256_mul_pd(vss, v11)));
                    _mm256_storeu_pd(
                        p01, _mm256_sub_pd(
                                 _mm256_add_pd(_mm256_mul_pd(vcc, v01),
                                               _mm256_mul_pd(vcs, jsd)),
                                 _mm256_mul_pd(vss, v10)));
                    _mm256_storeu_pd(
                        p10, _mm256_sub_pd(
                                 _mm256_add_pd(_mm256_mul_pd(vcc, v10),
                                               _mm256_mul_pd(vcs, jsd)),
                                 _mm256_mul_pd(vss, v01)));
                    _mm256_storeu_pd(
                        p11, _mm256_sub_pd(
                                 _mm256_add_pd(_mm256_mul_pd(vcc, v11),
                                               _mm256_mul_pd(vcs, jso)),
                                 _mm256_mul_pd(vss, v00)));
                }
        return;
    }
#endif
    for (std::uint64_t a = 0; a < dim; a += hi << 1)
        for (std::uint64_t b = a; b < a + hi; b += lo << 1)
            for (std::uint64_t q = b; q < b + lo; ++q)
                rx_quad_update(A, 2 * q, 2 * (q | lo), 2 * (q | hi),
                               2 * (q | lo | hi), cc, cs, ss);
}

void
mixer_rx(Amp* amps, std::uint64_t dim, int q, double theta)
{
    const std::uint64_t bit = std::uint64_t(1) << q;
    const double c = std::cos(theta / 2.0);
    const double s = std::sin(theta / 2.0);
    double* A = reinterpret_cast<double*>(amps);

#if defined(__AVX2__)
    if (bit >= 2) {
        const __m256d vc = _mm256_set1_pd(c);
        const __m256d vs = _mm256_set1_pd(s);
        for (std::uint64_t outer = 0; outer < dim; outer += bit << 1)
            for (std::uint64_t inner = 0; inner < bit; inner += 2) {
                double* p0 = A + 2 * (outer | inner);
                double* p1 = A + 2 * ((outer | inner) | bit);
                const __m256d v0 = _mm256_loadu_pd(p0);
                const __m256d v1 = _mm256_loadu_pd(p1);
                _mm256_storeu_pd(
                    p0, _mm256_add_pd(_mm256_mul_pd(vc, v0),
                                      _mm256_mul_pd(vs, mul_neg_i(v1))));
                _mm256_storeu_pd(
                    p1, _mm256_add_pd(_mm256_mul_pd(vc, v1),
                                      _mm256_mul_pd(vs, mul_neg_i(v0))));
            }
        return;
    }
#endif
    for (std::uint64_t outer = 0; outer < dim; outer += bit << 1)
        for (std::uint64_t inner = 0; inner < bit; ++inner) {
            const std::uint64_t i0 = outer | inner;
            rx_pair_update(A, 2 * i0, 2 * (i0 | bit), c, s);
        }
}

double
energy_fold(const Amp* amps, const double* energies, std::uint64_t dim)
{
    const double* A = reinterpret_cast<const double*>(amps);
    std::uint64_t s = 0;
    double total = 0.0;
#if defined(__AVX2__)
    __m256d acc = _mm256_setzero_pd();
    for (; s + 4 <= dim; s += 4) {
        const __m256d v0 = _mm256_loadu_pd(A + 2 * s);     // r0 i0 r1 i1
        const __m256d v1 = _mm256_loadu_pd(A + 2 * s + 4); // r2 i2 r3 i3
        // hadd of the squares interleaves the lanes: [p0, p2, p1, p3].
        const __m256d probs = _mm256_hadd_pd(_mm256_mul_pd(v0, v0),
                                             _mm256_mul_pd(v1, v1));
        const __m256d e = _mm256_permute4x64_pd(
            _mm256_loadu_pd(energies + s), _MM_SHUFFLE(3, 1, 2, 0));
        acc = _mm256_add_pd(acc, _mm256_mul_pd(probs, e));
    }
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, acc);
    total = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
#else
    double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
    for (; s + 4 <= dim; s += 4) {
        acc0 += (A[2 * s] * A[2 * s] + A[2 * s + 1] * A[2 * s + 1]) *
                energies[s];
        acc1 += (A[2 * s + 2] * A[2 * s + 2] +
                 A[2 * s + 3] * A[2 * s + 3]) *
                energies[s + 1];
        acc2 += (A[2 * s + 4] * A[2 * s + 4] +
                 A[2 * s + 5] * A[2 * s + 5]) *
                energies[s + 2];
        acc3 += (A[2 * s + 6] * A[2 * s + 6] +
                 A[2 * s + 7] * A[2 * s + 7]) *
                energies[s + 3];
    }
    total = (acc0 + acc1) + (acc2 + acc3);
#endif
    for (; s < dim; ++s)
        total += (A[2 * s] * A[2 * s] + A[2 * s + 1] * A[2 * s + 1]) *
                 energies[s];
    return total;
}

} // namespace fq::sim::simd
