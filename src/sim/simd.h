/**
 * @file
 * Explicitly vectorized statevector kernels and CPU-feature detection —
 * the micro-layer under VectorizedFusedBackend (sim/backend.h).
 *
 * Each kernel here is the data-parallel twin of a scalar loop in
 * qaoa_kernel.cc / kernels.h, written over raw doubles instead of
 * std::complex so the compiler never emits the __muldc3 NaN-recovery
 * branch that the complex operator* drags into every multiply, and so the
 * inner loops are straight-line SIMD-friendly code:
 *
 *   diag_apply_lut  — one LUT-compressed diagonal layer: gather the phase
 *                     per state through the uint16 level index and complex-
 *                     multiply 2-4 amplitudes per vector iteration;
 *   diag_apply_raw  — the uncompressed fallback (per-state sincos bounds
 *                     it; kept for tables past the 4096-level cap);
 *   mixer_rx_pair   — RX(theta) tensor RX(theta), the mixer wall's unit of
 *                     work, vectorized over the contiguous inner run of the
 *                     three-level quad decomposition;
 *   mixer_rx        — the odd-width tail qubit of a mixer wall;
 *   energy_fold     — sum_s |amp_s|^2 E[s] with independent accumulators.
 *
 * Dispatch is compile-time: with __AVX2__ the kernels run on AVX2
 * intrinsics, otherwise on portable unrolled loops — so non-x86 builds
 * compile unchanged and the CI matrix exercises both legs. Runtime cpuid
 * detection (detect_cpu_features) exists for diagnostics and for asserting
 * that an AVX2 binary is not run on a machine without it.
 *
 * Numerical contract: the vectorized expressions reassociate nothing
 * inside one amplitude update (same expression tree as the scalar path up
 * to the complex-arithmetic identities), so amplitudes match the scalar
 * backend to <= 1e-12 and sampled counts are bit-identical under fixed
 * seeds; only energy_fold reassociates (multiple accumulators), which
 * perturbs expectation values at the 1e-15 level and touches no sampling
 * path.
 */
#ifndef FQ_SIM_SIMD_H
#define FQ_SIM_SIMD_H

#include <complex>
#include <cstdint>

namespace fq::sim::simd {

using Amp = std::complex<double>;

/** Runtime CPU capabilities relevant to the vector kernels. */
struct CpuFeatures
{
    bool avx = false;
    bool fma = false;
    bool avx2 = false;
    bool avx512f = false;
};

/** Query cpuid (x86) for vector features, including the OS xsave check
 *  that ymm/zmm state is actually saved. All-false on non-x86. */
CpuFeatures detect_cpu_features();

/** ISA the vector kernels in this binary were compiled for:
 *  "avx2" under -mavx2 (or wider), else "portable". */
const char* compiled_isa();

/** True when the running CPU supports compiled_isa() (always true for
 *  the portable build — it assumes nothing beyond baseline). */
bool compiled_isa_supported();

/** amps[s] *= phases[level_index[s]] for all s in [0, dim). */
void diag_apply_lut(Amp* amps, const std::uint16_t* level_index,
                    const Amp* phases, std::uint64_t dim);

/** amps[s] *= e^{i scale weights[s]} for all s (uncompressed tables). */
void diag_apply_raw(Amp* amps, const double* weights, double scale,
                    std::uint64_t dim);

/** RX(theta) on qubits @p qa and @p qb in one pass (see
 *  kernels::apply_rx_pair for the quadrant algebra). */
void mixer_rx_pair(Amp* amps, std::uint64_t dim, int qa, int qb,
                   double theta);

/** RX(theta) on one qubit (mixer-wall odd tail). */
void mixer_rx(Amp* amps, std::uint64_t dim, int q, double theta);

/** sum_s |amps[s]|^2 energies[s]. Reassociated (vector accumulators). */
double energy_fold(const Amp* amps, const double* energies,
                   std::uint64_t dim);

} // namespace fq::sim::simd

#endif // FQ_SIM_SIMD_H
